// Flight-recorder-overhead guard: the always-on black box must be nearly
// free on the hot path. The recorder only logs rare lifecycle events —
// watcher add/remove/lag-out, segment seal/retire — never per-append or
// per-delivery, so the steady-state append/fan-out cost of an attached
// recorder is a handful of nil-receiver branches. This test pins that cost:
// a hub with a recorder attached must run the BenchmarkHubAppendFanout8
// workload within 5% of a hub with no recorder at all. Benchmark-grade
// timing is too noisy for ordinary CI `go test`, so the guard only runs
// when REC_GUARD is set (see `make recguard`).
package unbundle_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"unbundle"
)

// recGuardRun measures the fan-out workload against a fresh hub with the
// given recorder (nil = bare baseline) and returns ns/op.
func recGuardRun(t *testing.T, rec *unbundle.FlightRecorder) float64 {
	t.Helper()
	// Settle the heap between rounds so the previous hub's retention garbage
	// doesn't charge its collection to whichever config runs next.
	runtime.GC()
	hub := unbundle.NewHub(unbundle.HubConfig{
		Retention:     1 << 16,
		WatcherBuffer: 1 << 20,
		Metrics:       unbundle.NewMetricsRegistry(),
		Recorder:      rec,
	})
	defer hub.Close()
	for w := 0; w < 8; w++ {
		lo := unbundle.Key(fmt.Sprintf("%d", w))
		hi := unbundle.Key(fmt.Sprintf("%d", w+1))
		cancel, err := hub.Watch(unbundle.Range{Low: lo, High: hi}, 0, unbundle.Callbacks{
			Event: func(unbundle.ChangeEvent) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
	}
	res := testing.Benchmark(guardWorkload(hub))
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// TestFlightRecorderOverheadGuard compares recorder-attached against
// recorder-free hubs in the same process, interleaving round order and
// taking the best of each config to shed scheduler noise (same protocol as
// TestTracingOverheadGuard). The 5% budget is the acceptance bar.
func TestFlightRecorderOverheadGuard(t *testing.T) {
	if os.Getenv("REC_GUARD") == "" {
		t.Skip("set REC_GUARD=1 to run the flight-recorder-overhead guard (see make recguard)")
	}
	const rounds, maxRounds = 5, 15
	rec := unbundle.NewFlightRecorder(unbundle.FlightRecorderConfig{
		Metrics: unbundle.NewMetricsRegistry(),
	})
	if !rec.Enabled() {
		t.Fatal("NewFlightRecorder must yield an enabled recorder")
	}
	base, recorded := -1.0, -1.0
	ratio := 0.0
	for i := 0; i < maxRounds; i++ {
		// Alternate which config runs first so slot-position costs
		// (frequency ramps, cache state, background load) are paid evenly.
		runs := [2]*unbundle.FlightRecorder{nil, rec}
		if i%2 == 1 {
			runs[0], runs[1] = runs[1], runs[0]
		}
		for _, r := range runs {
			v := recGuardRun(t, r)
			if r == nil {
				if base < 0 || v < base {
					base = v
				}
			} else if recorded < 0 || v < recorded {
				recorded = v
			}
		}
		ratio = recorded / base
		if i >= rounds-1 && ratio <= 1.05 {
			break
		}
	}
	t.Logf("no recorder: %.1f ns/op, recorder attached: %.1f ns/op, ratio %.3f", base, recorded, ratio)
	if ratio > 1.05 {
		t.Errorf("attached recorder costs %.1f%% on the hot append path (budget 5%%)", (ratio-1)*100)
	}
}
