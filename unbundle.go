// Package unbundle is a from-scratch implementation of the storage-plus-
// watch architecture proposed in "Understanding the limitations of pubsub
// systems" (Adya, Bogle, Meek — HotOS 2025), together with the complete
// pubsub baseline the paper critiques.
//
// The public API re-exports the building blocks:
//
//   - the watch contract (§4.2): ChangeEvent, ProgressEvent, resync signals,
//     Watchable on the consumer side and Ingester on the store side;
//   - Hub, a standalone watch system holding only recoverable soft state;
//   - KnowledgeSet, the Figure 5 bookkeeping for snapshot-consistent serving;
//   - ResyncWatcher, the snapshot-then-watch recovery loop;
//   - Store, an MVCC producer store with monotonic commit versions, CDC and
//     filtered views; IngestStore, an append-optimized ingestion store;
//   - Broker, a Kafka-class pubsub broker (partitioned durable logs,
//     consumer groups, retention GC, compaction, DLQs) — the baseline;
//   - Sharder, a Slicer-style auto-sharder for dynamically sharded
//     consumers.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	store := unbundle.NewWatchableStore(unbundle.HubConfig{})
//	defer store.Close()
//	store.Put("greeting", []byte("hello"))
//	entries, at, _ := store.SnapshotRange(unbundle.FullRange())
//	cancel, _ := store.Watch(unbundle.FullRange(), at, unbundle.Callbacks{
//	    Event: func(ev unbundle.ChangeEvent) { fmt.Println(ev.Key, ev.Version) },
//	})
//	defer cancel()
package unbundle

import (
	"log/slog"

	"unbundle/internal/core"
	"unbundle/internal/debugz"
	"unbundle/internal/flightrec"
	"unbundle/internal/govern"
	"unbundle/internal/ingeststore"
	"unbundle/internal/keyspace"
	"unbundle/internal/logz"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/remote"
	"unbundle/internal/sharder"
	"unbundle/internal/trace"
)

// Key and range vocabulary (see internal/keyspace).
type (
	// Key is an ordered byte-string key.
	Key = keyspace.Key
	// Range is a half-open key interval [Low, High).
	Range = keyspace.Range
	// RangeSet is a normalized set of ranges.
	RangeSet = keyspace.RangeSet
)

// FullRange returns the range covering the whole keyspace.
func FullRange() Range { return keyspace.Full() }

// PrefixRange returns the range of keys with the given prefix.
func PrefixRange(p Key) Range { return keyspace.Prefix(p) }

// PointRange returns the range containing exactly k.
func PointRange(k Key) Range { return keyspace.Point(k) }

// NumericKey formats n as a fixed-width ordered key — the numeric-domain
// convention shard boundaries (Hub shards, ShardedHub, Sharder) are aligned
// to.
func NumericKey(n int) Key { return keyspace.NumericKey(n) }

// NumericRange returns the range [NumericKey(lo), NumericKey(hi)).
func NumericRange(lo, hi int) Range { return keyspace.NumericRange(lo, hi) }

// The watch contract (§4.2 of the paper; see internal/core).
type (
	// Version is a monotonic transaction version from the source of truth.
	Version = core.Version
	// ChangeEvent reports a key change at a version.
	ChangeEvent = core.ChangeEvent
	// ProgressEvent reports range-scoped completeness up to a version.
	ProgressEvent = core.ProgressEvent
	// ResyncEvent tells a watcher to recover from the store.
	ResyncEvent = core.ResyncEvent
	// Mutation is a put or delete payload.
	Mutation = core.Mutation
	// WatchCallback receives a watch stream.
	WatchCallback = core.WatchCallback
	// Callbacks adapts plain functions to WatchCallback.
	Callbacks = core.Funcs
	// Cancel stops a watch.
	Cancel = core.Cancel
	// Watchable is the consumer-side contract.
	Watchable = core.Watchable
	// Ingester is the store-side contract.
	Ingester = core.Ingester
	// Snapshotter is the narrow store read view used for recovery.
	Snapshotter = core.Snapshotter
	// Entry is one key's state in a snapshot.
	Entry = core.Entry
	// Hub is a standalone watch system (soft state only).
	Hub = core.Hub
	// HubConfig tunes a Hub.
	HubConfig = core.HubConfig
	// KnowledgeSet tracks Figure 5 knowledge regions.
	KnowledgeSet = core.KnowledgeSet
	// KnowledgeRegion is one range × version-window region.
	KnowledgeRegion = core.KnowledgeRegion
	// ResyncWatcher runs the snapshot-then-watch recovery loop.
	ResyncWatcher = core.ResyncWatcher
	// SyncedConsumer is what a ResyncWatcher drives.
	SyncedConsumer = core.SyncedConsumer
	// VersionMap is an interval map from ranges to versions (frontiers).
	VersionMap = core.VersionMap
)

// Mutation op codes.
const (
	OpPut    = core.OpPut
	OpDelete = core.OpDelete
)

// NoVersion precedes every committed version.
const NoVersion = core.NoVersion

// NewHub creates a standalone watch system.
func NewHub(cfg HubConfig) *Hub { return core.NewHub(cfg) }

// NewKnowledgeSet creates empty Figure 5 bookkeeping.
func NewKnowledgeSet() *KnowledgeSet { return core.NewKnowledgeSet() }

// NewResyncWatcher composes a store view and a watch system into a
// self-recovering consumer over r.
func NewResyncWatcher(store Snapshotter, src Watchable, r Range, consumer SyncedConsumer) *ResyncWatcher {
	return core.NewResyncWatcher(store, src, r, consumer)
}

// Producer storage (see internal/mvcc).
type (
	// Store is an MVCC key-value store with serializable transactions,
	// snapshot reads and a CDC tap.
	Store = mvcc.Store
	// Tx is an open transaction.
	Tx = mvcc.Tx
	// View is a filtered, read-only window over a Store (§4.1).
	View = mvcc.View
	// WatchableStore bundles a Store with a built-in watch hub.
	WatchableStore = mvcc.WatchableStore
)

// NewStore creates an empty MVCC store.
func NewStore() *Store { return mvcc.NewStore() }

// NewView creates a filtered read-only view of a store.
func NewView(store *Store, r Range, transform func(Entry) (Entry, bool)) *View {
	return mvcc.NewView(store, r, transform)
}

// NewWatchableStore creates a store with built-in watch (the Figure 3
// "producer storage with built-in watch" quadrant).
func NewWatchableStore(cfg HubConfig) *WatchableStore {
	return mvcc.NewWatchableStore(cfg)
}

// Ingestion storage (see internal/ingeststore).
type (
	// IngestStore is an append-optimized event store.
	IngestStore = ingeststore.Store
	// IngestEvent is one ingested record.
	IngestEvent = ingeststore.Event
	// IngestConfig tunes an ingestion store.
	IngestConfig = ingeststore.Config
	// WatchableIngestStore bundles an ingestion store with built-in watch.
	WatchableIngestStore = ingeststore.Watchable
)

// NewIngestStore creates an ingestion store.
func NewIngestStore(cfg IngestConfig) *IngestStore { return ingeststore.NewStore(cfg) }

// NewWatchableIngestStore creates an ingestion store with built-in watch.
func NewWatchableIngestStore(cfg IngestConfig, hubCfg HubConfig) *WatchableIngestStore {
	return ingeststore.NewWatchable(cfg, hubCfg)
}

// SeriesRange returns the key range covering one ingestion series.
func SeriesRange(series Key) Range { return ingeststore.SeriesRange(series) }

// The pubsub baseline (see internal/pubsub).
type (
	// Broker is an in-process pubsub broker.
	Broker = pubsub.Broker
	// BrokerConfig tunes a broker.
	BrokerConfig = pubsub.BrokerConfig
	// TopicConfig configures a topic.
	TopicConfig = pubsub.TopicConfig
	// GroupConfig configures a consumer group.
	GroupConfig = pubsub.GroupConfig
	// Group is a consumer group.
	Group = pubsub.Group
	// Consumer is a group member.
	Consumer = pubsub.Consumer
	// FreeConsumer reads a whole partition without coordination.
	FreeConsumer = pubsub.FreeConsumer
	// Message is a delivered message.
	Message = pubsub.Message
)

// NewBroker starts a pubsub broker.
func NewBroker(cfg BrokerConfig) *Broker { return pubsub.NewBroker(cfg) }

// Auto-sharding (see internal/sharder).
type (
	// Sharder assigns key ranges to pods dynamically.
	Sharder = sharder.Sharder
	// SharderConfig tunes a sharder.
	SharderConfig = sharder.Config
	// Pod identifies a serving process.
	Pod = sharder.Pod
	// Assignment maps one range to its owner.
	Assignment = sharder.Assignment
	// AssignmentTable is a complete assignment snapshot.
	AssignmentTable = sharder.Table
)

// NewSharder creates an auto-sharder over the given pods.
func NewSharder(cfg SharderConfig, pods ...Pod) *Sharder {
	return sharder.New(cfg, pods...)
}

// §5 extensions: the scaled-out standalone watch system and the remote
// watch protocol.
type (
	// ShardedHub is a watch system scaled out over range-partitioned Hub
	// shards, behind the same Ingester/Watchable contracts.
	ShardedHub = core.ShardedHub
	// WatchServer exposes a Watchable + Snapshotter on a TCP listener.
	WatchServer = remote.Server
	// WatchClient implements Watchable + Snapshotter against a WatchServer.
	WatchClient = remote.Client
	// WatchServerConfig wires metrics and tracing into a WatchServer.
	WatchServerConfig = remote.ServerConfig
	// WatchClientConfig wires metrics and tracing into a WatchClient.
	WatchClientConfig = remote.ClientConfig
	// ReconnectPolicy enables client auto-reconnect with backoff
	// (WatchClientConfig.Reconnect); watches resume from the last delivered
	// version, falling back to an explicit resync when retention can't cover
	// the gap.
	ReconnectPolicy = remote.ReconnectPolicy
	// WatchConnInfo describes one live server connection (WatchServer.Conns,
	// the debug server's /conns endpoint).
	WatchConnInfo = remote.ConnInfo
)

// NewShardedHub creates a watch system of n range-partitioned shards.
func NewShardedHub(n int, cfg HubConfig) *ShardedHub {
	return core.NewShardedHub(n, cfg)
}

// ServeWatch exposes a watch system and its recovery snapshot view on addr
// (e.g. "127.0.0.1:0").
func ServeWatch(addr string, w Watchable, s Snapshotter) (*WatchServer, error) {
	return remote.Serve(addr, w, s)
}

// DialWatch connects to a ServeWatch endpoint; the returned client is a
// Watchable and a Snapshotter, so consumer stacks run against it unchanged.
func DialWatch(addr string) (*WatchClient, error) {
	return remote.Dial(addr)
}

// ServeWatchWith is ServeWatch with a metrics registry and tracer attached:
// the server records remote_server_* counters and stamps the remote-enqueue
// trace stage as batches enter a connection's outbox.
func ServeWatchWith(addr string, w Watchable, s Snapshotter, cfg WatchServerConfig) (*WatchServer, error) {
	return remote.ServeWith(addr, w, s, cfg)
}

// DialWatchWith is DialWatch with a metrics registry and tracer attached:
// the client records remote_client_* counters and stamps the remote-deliver
// trace stage as events reach the local callback.
func DialWatchWith(addr string, cfg WatchClientConfig) (*WatchClient, error) {
	return remote.DialWith(addr, cfg)
}

// Sentinel errors from the remote watch transport, for errors.Is against the
// terminal-resync reasons and Watch/SnapshotRange failures.
var (
	// ErrWatchClientClosed: the client was closed locally.
	ErrWatchClientClosed = remote.ErrClientClosed
	// ErrWatchServerDraining: the server announced a graceful shutdown.
	ErrWatchServerDraining = remote.ErrServerDraining
	// ErrWatchReconnectBudget: auto-reconnect exhausted its retry budget.
	ErrWatchReconnectBudget = remote.ErrReconnectBudget
)

// Observability (see internal/metrics): every subsystem records named
// counters, gauges and histograms into a registry — either one passed via
// its config's Metrics field, or the shared process-wide default.
type (
	// MetricsRegistry collects named counters, gauges and histograms.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's instruments.
	MetricsSnapshot = metrics.RegistrySnapshot
)

// NewMetricsRegistry returns an empty registry to pass into HubConfig,
// BrokerConfig, WatchConfig or PubSubConfig for isolated measurement.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// DefaultMetrics returns the process-wide registry that subsystems fall
// back to when their config leaves Metrics nil. Dump it with WriteTo.
func DefaultMetrics() *MetricsRegistry { return metrics.Default() }

// Causal tracing (see internal/trace): a Tracer samples 1-in-N source
// events and records per-stage timestamps (commit → append → enqueue →
// deliver) as they flow through the pipeline. Wire one Tracer into the
// store (Store.SetTracer, IngestConfig.Tracer, BrokerConfig.Tracer) and the
// watch system (HubConfig.Tracer) to trace end to end.
type (
	// Tracer samples events and collects per-stage timestamps.
	Tracer = trace.Tracer
	// TraceConfig tunes a Tracer (sampling rate, ring sizes, clock).
	TraceConfig = trace.Config
	// EventTrace is one completed trace: stage timestamps for one event.
	EventTrace = trace.Trace
	// WatcherLag is one watcher's staleness snapshot from Hub.WatcherLags:
	// version lag and time behind the ingest frontier.
	WatcherLag = core.WatcherLag
)

// NewTracer creates a Tracer; SampleEvery <= 0 yields a disabled tracer
// that costs one branch per pipeline stage.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// TraceStage identifies one pipeline stage in an EventTrace.
type TraceStage = trace.Stage

// Final stages for TraceConfig.FinalStage: local consumers complete at
// deliver (the default); consumers behind a WatchClient complete at
// remote-deliver, so traces span commit → client callback.
const (
	TraceStageDeliver       = trace.StageDeliver
	TraceStageRemoteDeliver = trace.StageRemoteDeliver
)

// The operational debug server (see internal/debugz): /metrics, /watchers
// (lag radar), /traces, /regions, and /debug/pprof.
type (
	// DebugConfig names the data sources behind the debug endpoints.
	DebugConfig = debugz.Config
	// DebugServer is a running debug HTTP server.
	DebugServer = debugz.Server
)

// ServeDebug starts the debug server on addr (e.g. "127.0.0.1:6060" or
// ":0"); every Config field is optional.
func ServeDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	return debugz.Serve(addr, cfg)
}

// Flight recorder + black-box dumps (see internal/flightrec): an always-on,
// fixed-memory ring of the stack's rare lifecycle events (lag-outs, segment
// seals, disconnects, GC drops, range moves), anomaly detectors polling the
// metrics registry against EWMA baselines, and a capturer that freezes a
// self-contained dump — timeline, traces, metrics delta, lag radar — the
// instant a detector fires. Wire a FlightRecorder into HubConfig,
// WatchServerConfig, WatchClientConfig, BrokerConfig and SharderConfig via
// their Recorder fields, or use NewFlightStack for the standard wiring.
type (
	// FlightRecorder is the always-on event ring; nil is a valid disabled
	// recorder (one branch per record).
	FlightRecorder = flightrec.Recorder
	// FlightRecorderConfig tunes ring sizing and the clock.
	FlightRecorderConfig = flightrec.Config
	// FlightRecord is one recorded event with its sequence and timestamp.
	FlightRecord = flightrec.Record
	// FlightEvent is the typed payload of a FlightRecord.
	FlightEvent = flightrec.Event
	// FlightKind classifies a FlightRecord.
	FlightKind = flightrec.Kind
	// FlightMonitor periodically evaluates anomaly detectors.
	FlightMonitor = flightrec.Monitor
	// FlightCapturer assembles and retains black-box dumps.
	FlightCapturer = flightrec.Capturer
	// FlightDump is one captured black box.
	FlightDump = flightrec.Dump
	// FlightStack bundles recorder, monitor and capturer.
	FlightStack = flightrec.Stack
	// FlightStackConfig configures NewFlightStack.
	FlightStackConfig = flightrec.StackConfig
)

// NewFlightRecorder creates an always-on flight recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder { return flightrec.New(cfg) }

// NewFlightStack wires recorder → standard detectors → capturer; call
// Mon.Start to begin anomaly detection.
func NewFlightStack(cfg FlightStackConfig) *FlightStack { return flightrec.NewStack(cfg) }

// Overload protection (see internal/govern): a process-wide memory governor
// with hierarchical budget accounts. Wire one Governor into HubConfig,
// WatchServerConfig and BrokerConfig via their Governor fields; the stack
// then degrades in contract order under memory pressure — accelerate segment
// eviction, shed the worst-backlogged watchers onto the resync path, and
// finally admission-control new watches and snapshots with a typed
// retry-after error (ErrOverloaded via errors.Is, *Overloaded via errors.As).
type (
	// Governor is the process-wide memory governor.
	Governor = govern.Governor
	// GovernorConfig tunes a Governor (budget, pressure thresholds,
	// quarantine policy).
	GovernorConfig = govern.Config
	// GovernorStats is a point-in-time governor snapshot (debugz /govern).
	GovernorStats = govern.Stats
	// GovernorAccount is one named budget account (Hub retention, watcher
	// rings, remote outbox, pubsub logs).
	GovernorAccount = govern.Account
	// Overloaded is the typed admission refusal carrying a RetryAfter hint.
	Overloaded = govern.Overloaded
)

// ErrOverloaded matches (via errors.Is) any admission refusal issued by a
// Governor, locally or over the remote watch protocol.
var ErrOverloaded = govern.ErrOverloaded

// NewGovernor creates a memory governor with the given budget and starts its
// relief goroutine; Close stops it.
func NewGovernor(cfg GovernorConfig) *Governor { return govern.NewGovernor(cfg) }

// Structured logging (see internal/logz): component-tagged slog.Loggers
// writing into a bounded in-memory ring served at the debug server's /logz.
type (
	// LogRing is a bounded log-record buffer behind a slog.Handler.
	LogRing = logz.Ring
	// LogEntry is one retained log record.
	LogEntry = logz.Entry
)

// NewLogRing creates a log ring retaining the last capacity records.
func NewLogRing(capacity int) *LogRing { return logz.NewRing(capacity) }

// DefaultLogRing returns the process-wide log ring components fall back to.
func DefaultLogRing() *LogRing { return logz.Default() }

// ComponentLogger returns a component-tagged slog.Logger on the process-wide
// log ring.
func ComponentLogger(component string) *slog.Logger { return logz.Logger(component) }
