package workqueue

import (
	"fmt"
	"strconv"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
)

// The §4.3 coordinator example: ensure every workload runs on its desired
// number of virtual machines, while VMs crash and desired counts change
// underneath. Two coordinators:
//
//   - EventCoordinator (the pubsub model): provisioning *tasks* are enqueued
//     when a workload's desired count changes. The coordinator processes the
//     task against the world as it is when the message arrives — but VM
//     crashes produce no task, so drift between desired and actual state is
//     invisible to it until the next desired-state change happens to pass by.
//
//   - WatchCoordinator (the watch model): watches BOTH the desired
//     configuration and the actual VM state, and reconciles whenever either
//     side changes. Drift is just another observed state change.
//
// Both share one store so the experiment can score them identically.

// Key layout.
const (
	desiredPrefix = "desired/"
	vmPrefix      = "vm/"
)

func desiredKey(workload string) keyspace.Key {
	return keyspace.Key(desiredPrefix + workload)
}

func vmKey(workload string, i int) keyspace.Key {
	return keyspace.Key(fmt.Sprintf("%s%s/%04d", vmPrefix, workload, i))
}

func vmRange(workload string) keyspace.Range {
	return keyspace.Prefix(keyspace.Key(vmPrefix + workload + "/"))
}

// Fleet is the environment: the store holding desired and actual state, with
// helpers for the chaos the experiment injects.
type Fleet struct {
	Store *mvcc.Store
}

// NewFleet creates an empty fleet store.
func NewFleet() *Fleet {
	return &Fleet{Store: mvcc.NewStore()}
}

// SetDesired declares the desired VM count for a workload.
func (f *Fleet) SetDesired(workload string, replicas int) {
	f.Store.Put(desiredKey(workload), []byte(strconv.Itoa(replicas)))
}

// CrashVM destroys one running VM of the workload (no event is emitted
// anywhere — machines do not file tickets when they die).
func (f *Fleet) CrashVM(workload string) bool {
	entries, _ := f.Store.Scan(vmRange(workload), core.NoVersion, 1)
	if len(entries) == 0 {
		return false
	}
	f.Store.Delete(entries[0].Key)
	return true
}

// Divergence counts workloads whose actual VM count differs from desired.
func (f *Fleet) Divergence() int {
	desired, _ := f.Store.Scan(keyspace.Prefix(desiredPrefix), core.NoVersion, 0)
	n := 0
	for _, d := range desired {
		workload := string(d.Key[len(desiredPrefix):])
		want, _ := strconv.Atoi(string(d.Value))
		vms, _ := f.Store.Scan(vmRange(workload), core.NoVersion, 0)
		if len(vms) != want {
			n++
		}
	}
	return n
}

// reconcile advances one workload's actual state toward desired: boot
// missing VMs, tear down extras. Returns how many actions were taken.
func reconcile(store *mvcc.Store, workload string) int {
	dval, _, ok, _ := store.Get(desiredKey(workload), core.NoVersion)
	want := 0
	if ok {
		want, _ = strconv.Atoi(string(dval))
	}
	vms, _ := store.Scan(vmRange(workload), core.NoVersion, 0)
	actions := 0
	// Boot missing VMs into the first free slots.
	used := map[keyspace.Key]bool{}
	for _, vm := range vms {
		used[vm.Key] = true
	}
	for i := 0; len(vms)+actions < want; i++ {
		k := vmKey(workload, i)
		if used[k] {
			continue
		}
		store.Put(k, []byte("running"))
		used[k] = true
		actions++
	}
	// Tear down extras from the top.
	for i := len(vms) - 1; i >= want; i-- {
		store.Delete(vms[i].Key)
		actions++
	}
	return actions
}

// EventCoordinator drives provisioning from a task queue.
type EventCoordinator struct {
	fleet    *Fleet
	broker   *pubsub.Broker
	consumer *pubsub.Consumer
	detach   func()
	actions  int64
}

const provisionTopic = "provision-requests"

// NewEventCoordinator wires desired-state changes into a provisioning topic
// and starts consuming it.
func NewEventCoordinator(fleet *Fleet) (*EventCoordinator, error) {
	b := pubsub.NewBroker(pubsub.BrokerConfig{})
	if err := b.CreateTopic(provisionTopic, pubsub.TopicConfig{Partitions: 1}); err != nil {
		b.Close()
		return nil, err
	}
	g, err := b.Group(provisionTopic, "coordinator", pubsub.GroupConfig{StartAtEarliest: true})
	if err != nil {
		b.Close()
		return nil, err
	}
	c, err := g.Join("coord-0")
	if err != nil {
		b.Close()
		return nil, err
	}
	ec := &EventCoordinator{fleet: fleet, broker: b, consumer: c}
	// Desired-state changes become tasks. Nothing else does: a VM crash is
	// not a change to the desired table, so no task is enqueued for it.
	ec.detach = fleet.Store.AttachCDC(keyspace.Prefix(desiredPrefix), taskPublisher{broker: b})
	return ec, nil
}

// taskPublisher converts desired-table CDC into provisioning tasks.
type taskPublisher struct {
	broker *pubsub.Broker
}

func (t taskPublisher) Append(ev core.ChangeEvent) error {
	workload := string(ev.Key[len(desiredPrefix):])
	_, _, err := t.broker.Publish(provisionTopic, keyspace.Key(workload), nil)
	return err
}

func (t taskPublisher) AppendBatch(evs []core.ChangeEvent) error {
	for i := range evs {
		if err := t.Append(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (t taskPublisher) Progress(core.ProgressEvent) error { return nil }

// Step processes up to n queued provisioning tasks.
func (ec *EventCoordinator) Step(n int) {
	for i := 0; i < n; i++ {
		msg, ok, err := ec.consumer.Poll()
		if err != nil || !ok {
			return
		}
		ec.actions += int64(reconcile(ec.fleet.Store, string(msg.Key)))
		ec.consumer.Ack(msg)
	}
}

// Actions returns the number of provisioning actions taken.
func (ec *EventCoordinator) Actions() int64 { return ec.actions }

// Close releases the broker.
func (ec *EventCoordinator) Close() {
	ec.detach()
	ec.broker.Close()
}

// WatchCoordinator drives provisioning from observed state: it watches the
// desired table AND the VM table, marking workloads dirty on any change.
type WatchCoordinator struct {
	fleet  *Fleet
	hub    *core.Hub
	detach func()
	cancel core.Cancel

	mu      sync.Mutex
	dirty   map[string]bool
	actions int64
}

// NewWatchCoordinator starts watching.
func NewWatchCoordinator(fleet *Fleet) (*WatchCoordinator, error) {
	wc := &WatchCoordinator{
		fleet: fleet,
		hub:   core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 16}),
		dirty: make(map[string]bool),
	}
	wc.detach = fleet.Store.AttachCDC(keyspace.Full(), wc.hub)
	// Seed: everything currently desired is dirty (initial reconcile pass).
	desired, _ := fleet.Store.Scan(keyspace.Prefix(desiredPrefix), core.NoVersion, 0)
	for _, d := range desired {
		wc.dirty[string(d.Key[len(desiredPrefix):])] = true
	}
	cancel, err := wc.hub.Watch(keyspace.Full(), fleet.Store.CurrentVersion(), core.Funcs{
		Event: func(ev core.ChangeEvent) {
			if w, ok := workloadOf(ev.Key); ok {
				wc.mu.Lock()
				wc.dirty[w] = true
				wc.mu.Unlock()
			}
		},
		Resync: func(core.ResyncEvent) {
			// Lost watch state: mark the whole world dirty and re-scan —
			// the programmatic recovery path (§4.4).
			desired, _ := fleet.Store.Scan(keyspace.Prefix(desiredPrefix), core.NoVersion, 0)
			wc.mu.Lock()
			for _, d := range desired {
				wc.dirty[string(d.Key[len(desiredPrefix):])] = true
			}
			wc.mu.Unlock()
		},
	})
	if err != nil {
		wc.detach()
		wc.hub.Close()
		return nil, err
	}
	wc.cancel = cancel
	return wc, nil
}

// workloadOf extracts the workload name from a desired or vm key.
func workloadOf(k keyspace.Key) (string, bool) {
	s := string(k)
	if len(s) > len(desiredPrefix) && s[:len(desiredPrefix)] == desiredPrefix {
		return s[len(desiredPrefix):], true
	}
	if len(s) > len(vmPrefix) && s[:len(vmPrefix)] == vmPrefix {
		rest := s[len(vmPrefix):]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				return rest[:i], true
			}
		}
	}
	return "", false
}

// Step reconciles up to n dirty workloads. Reconciling may itself dirty the
// workload again (its own writes come back as events); that is harmless —
// the next pass observes a converged state and takes no action.
func (wc *WatchCoordinator) Step(n int) {
	for i := 0; i < n; i++ {
		wc.mu.Lock()
		var pick string
		for w := range wc.dirty {
			pick = w
			break
		}
		if pick == "" {
			wc.mu.Unlock()
			return
		}
		delete(wc.dirty, pick)
		wc.mu.Unlock()
		acted := reconcile(wc.fleet.Store, pick)
		wc.mu.Lock()
		wc.actions += int64(acted)
		wc.mu.Unlock()
	}
}

// DirtyCount returns how many workloads await reconciliation.
func (wc *WatchCoordinator) DirtyCount() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return len(wc.dirty)
}

// Actions returns the number of provisioning actions taken.
func (wc *WatchCoordinator) Actions() int64 {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.actions
}

// Hub exposes the coordinator's hub for failure injection.
func (wc *WatchCoordinator) Hub() *core.Hub { return wc.hub }

// Close stops watching.
func (wc *WatchCoordinator) Close() {
	wc.cancel()
	wc.detach()
	wc.hub.Close()
}
