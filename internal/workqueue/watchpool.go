package workqueue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/sharder"
)

// statusPrefix is where workers record per-entity completion in the store.
// Completion is state too: any worker (including a new owner after a
// handoff) can tell whether an entity still needs attention by comparing
// the entity row with its status row — no delivery bookkeeping required.
const statusPrefix = "status/"

func statusKey(entity keyspace.Key) keyspace.Key {
	return statusPrefix + entity
}

// WatchPool runs workers over watched entity state: the §4.3 model. Work is
// "advance this entity to its desired state", discovered via snapshot +
// watch over sharder-assigned ranges.
type WatchPool struct {
	store  *mvcc.Store
	hub    *core.Hub
	detach func()
	shd    *sharder.Sharder

	mu      sync.Mutex
	workers map[string]*wWorker
	unsubs  map[string]func()
	tick    int64
	done    map[keyspace.Key]int

	completed  int64
	coalesced  atomic.Int64 // updated from watch dispatch goroutines
	warmHits   int64
	warmMisses int64
	latency    *metrics.Histogram
	cheapLat   *metrics.Histogram
	slowCost   int
	met        wqMetrics
}

var _ Pool = (*WatchPool)(nil)

// NewWatchPool creates the watch-model pool. shards is the sharder's initial
// range count (ranges move stickily as workers come and go).
func NewWatchPool(shards, slowCost int) *WatchPool {
	return NewGovernedWatchPool(shards, slowCost, nil)
}

// NewGovernedWatchPool is NewWatchPool with the pool's internal hub charging
// its retention and watcher rings against gov's budget, so a worker fleet
// shares the process-wide memory envelope with the rest of the watch stack.
// Under pressure the hub may refuse new watcher admissions with a typed
// retry hint; workers back off and retry (see admitWatcher) rather than
// leaving part of their assignment silently unwatched. A nil gov means
// ungoverned.
func NewGovernedWatchPool(shards, slowCost int, gov *govern.Governor) *WatchPool {
	store := mvcc.NewStore()
	hub := core.NewHub(core.HubConfig{Retention: 1 << 18, WatcherBuffer: 1 << 18, Governor: gov})
	detach := store.AttachCDC(keyspace.Full(), hub)
	return &WatchPool{
		store:    store,
		hub:      hub,
		detach:   detach,
		shd:      sharder.New(sharder.Config{InitialShards: shards}),
		workers:  make(map[string]*wWorker),
		unsubs:   make(map[string]func()),
		done:     make(map[keyspace.Key]int),
		latency:  metrics.NewHistogram(),
		cheapLat: metrics.NewHistogram(),
		slowCost: slowCost,
		met:      newWQMetrics(nil, "watch"),
	}
}

// Submit implements Pool: desired state lands in the store; watches do the
// rest. Re-submitting an entity before it is processed coalesces naturally.
func (p *WatchPool) Submit(w Work) error {
	p.store.Put(w.Entity, encodeWork(w))
	return nil
}

// Store exposes the state store (the coordinator experiment shares it).
func (p *WatchPool) Store() *mvcc.Store { return p.store }

// Sharder exposes the sharder for churn scripting.
func (p *WatchPool) Sharder() *sharder.Sharder { return p.shd }

// AddWorker implements Pool: the sharder moves a minimal set of ranges to
// the new worker; warm state elsewhere survives.
func (p *WatchPool) AddWorker(name string) error {
	w := newWWorker(name, p)
	p.mu.Lock()
	if _, dup := p.workers[name]; dup {
		p.mu.Unlock()
		return fmt.Errorf("workqueue: worker %q already exists", name)
	}
	p.workers[name] = w
	p.mu.Unlock()
	if err := p.shd.AddPod(sharder.Pod(name)); err != nil {
		return err
	}
	unsub := p.shd.Subscribe(0, func(t sharder.Table) {
		w.setRanges(t.RangesOf(sharder.Pod(name)))
	})
	p.mu.Lock()
	p.unsubs[name] = unsub
	p.mu.Unlock()
	return nil
}

// RemoveWorker implements Pool.
func (p *WatchPool) RemoveWorker(name string) error {
	p.mu.Lock()
	w, ok := p.workers[name]
	delete(p.workers, name)
	unsub := p.unsubs[name]
	delete(p.unsubs, name)
	p.mu.Unlock()
	if !ok {
		return nil
	}
	if unsub != nil {
		unsub()
	}
	if err := p.shd.RemovePod(sharder.Pod(name)); err != nil {
		return err
	}
	w.stop()
	return nil
}

// now returns the pool's current virtual tick.
func (p *WatchPool) now() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tick
}

// Tick implements Pool.
func (p *WatchPool) Tick() {
	p.mu.Lock()
	p.tick++
	tick := p.tick
	workers := make([]*wWorker, 0, len(p.workers))
	for _, w := range p.workers {
		workers = append(workers, w)
	}
	p.mu.Unlock()
	for _, w := range workers {
		w.tickOnce(tick)
	}
}

// recordCompletion is called by workers when an entity's work finishes.
func (p *WatchPool) recordCompletion(w Work, tick int64, cold bool) {
	p.store.Put(statusKey(w.Entity), []byte(fmt.Sprintf("%d", w.Seq)))
	p.mu.Lock()
	p.completed++
	if cold {
		p.warmMisses++
	} else {
		p.warmHits++
	}
	if w.Seq > p.done[w.Entity] {
		p.done[w.Entity] = w.Seq
	}
	lat := tick - w.Submit
	p.latency.Observe(lat)
	if w.Cost < p.slowCost {
		p.cheapLat.Observe(lat)
	}
	p.mu.Unlock()
	p.met.completed.Inc()
	if cold {
		p.met.warmMisses.Inc()
	} else {
		p.met.warmHits.Inc()
	}
	p.met.latency.Observe(lat)
}

// Done implements Pool.
func (p *WatchPool) Done() map[keyspace.Key]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[keyspace.Key]int, len(p.done))
	for k, v := range p.done {
		out[k] = v
	}
	return out
}

// Stats implements Pool.
func (p *WatchPool) Stats() PoolStats {
	p.mu.Lock()
	workers := make([]*wWorker, 0, len(p.workers))
	for _, w := range p.workers {
		workers = append(workers, w)
	}
	st := PoolStats{
		Completed:  p.completed,
		Coalesced:  p.coalesced.Load(),
		WarmHits:   p.warmHits,
		WarmMisses: p.warmMisses,
		Latency:    p.latency.Snapshot(),
		CheapLat:   p.cheapLat.Snapshot(),
		Workers:    len(p.workers),
	}
	p.mu.Unlock()
	for _, w := range workers {
		st.Outstanding += int64(w.pendingLen())
		if w.busy() {
			st.Busy++
		}
	}
	return st
}

// Close implements Pool.
func (p *WatchPool) Close() {
	p.mu.Lock()
	workers := make([]*wWorker, 0, len(p.workers))
	for _, w := range p.workers {
		workers = append(workers, w)
	}
	unsubs := make([]func(), 0, len(p.unsubs))
	for _, u := range p.unsubs {
		unsubs = append(unsubs, u)
	}
	p.workers = map[string]*wWorker{}
	p.unsubs = map[string]func(){}
	p.mu.Unlock()
	for _, u := range unsubs {
		u()
	}
	for _, w := range workers {
		w.stop()
	}
	p.shd.Close()
	p.detach()
	p.hub.Close()
}

// wWorker is one watch-model worker: a pending set of entities needing
// attention over its assigned ranges, a warm-state cache, and the freedom to
// pick its next entity by priority.
type wWorker struct {
	name string
	pool *WatchPool

	mu       sync.Mutex
	stopped  bool
	pending  map[keyspace.Key]Work
	warm     map[keyspace.Key]bool
	watchers map[string]*core.ResyncWatcher
	wanted   map[string]bool // assigned range keys (RangeSet merges ranges, so it can't answer this)
	ranges   keyspace.RangeSet

	cur       *Work
	remaining int
	coldStart bool
}

var _ core.SyncedConsumer = (*wWorker)(nil)

func newWWorker(name string, pool *WatchPool) *wWorker {
	return &wWorker{
		name:     name,
		pool:     pool,
		pending:  make(map[keyspace.Key]Work),
		warm:     make(map[keyspace.Key]bool),
		watchers: make(map[string]*core.ResyncWatcher),
	}
}

// isEntityKey filters out bookkeeping rows sharing the keyspace.
func isEntityKey(k keyspace.Key) bool {
	return len(k) > 0 && k[0] >= '0' && k[0] <= '9'
}

// setRanges reconciles the worker's watchers with a new assignment.
func (w *wWorker) setRanges(ranges []keyspace.Range) {
	want := keyspace.NewRangeSet(ranges...)
	w.mu.Lock()
	have := w.ranges
	w.ranges = want
	w.wanted = make(map[string]bool, len(ranges))
	for _, r := range ranges {
		w.wanted[r.String()] = true
	}
	var stop []*core.ResyncWatcher
	for key, rw := range w.watchers {
		keep := false
		for _, r := range ranges {
			if r.String() == key {
				keep = true
				break
			}
		}
		if !keep {
			stop = append(stop, rw)
			delete(w.watchers, key)
		}
	}
	w.mu.Unlock()
	for _, rw := range stop {
		rw.Stop()
	}
	for _, r := range have.Subtract(want).Ranges() {
		w.mu.Lock()
		for k := range w.pending {
			if r.Contains(k) {
				delete(w.pending, k)
			}
		}
		for k := range w.warm {
			if r.Contains(k) {
				delete(w.warm, k) // moved away: warm state is useless now
			}
		}
		w.mu.Unlock()
	}
	for _, r := range ranges {
		key := r.String()
		w.mu.Lock()
		_, exists := w.watchers[key]
		w.mu.Unlock()
		if exists {
			continue
		}
		if err := w.admitWatcher(key, r); err != nil {
			go w.admitLoop(key, r, err)
		}
	}
}

// admitWatcher builds and starts the watcher for r, registering it only once
// the hub has admitted it. A failed establish consumes a ResyncWatcher's
// generation, so every attempt uses a fresh watcher. Returns the refusal
// when the start was rejected (the governed hub admission-controls under
// memory pressure) and the caller should retry; nil when the watcher is
// registered or no longer wanted.
func (w *wWorker) admitWatcher(key string, r keyspace.Range) error {
	rw := core.NewResyncWatcher(w.pool.store, w.pool.hub, r, w)
	err := rw.Start()
	w.mu.Lock()
	if w.stopped || !w.wantsLocked(key) || w.watchers[key] != nil {
		w.mu.Unlock()
		rw.Stop()
		return nil // no longer wanted: nothing left to admit
	}
	if err == nil {
		w.watchers[key] = rw
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	rw.Stop()
	return err
}

// admitLoop retries a refused admission with backoff, honoring the
// governor's RetryAfter hint when the refusal carries one. Dropping the
// error instead would leave part of the worker's assignment silently
// unwatched — the exact failure mode the explicit refusal exists to
// prevent. The loop ends when the watcher is admitted, the range is
// reassigned elsewhere, or the worker stops.
func (w *wWorker) admitLoop(key string, r keyspace.Range, err error) {
	backoff := 25 * time.Millisecond
	for {
		wait := backoff
		var ov *govern.Overloaded
		if errors.As(err, &ov) && ov.RetryAfter > wait {
			wait = ov.RetryAfter
		}
		if backoff < time.Second {
			backoff *= 2
		}
		time.Sleep(wait)
		w.mu.Lock()
		stale := w.stopped || !w.wantsLocked(key) || w.watchers[key] != nil
		w.mu.Unlock()
		if stale {
			return
		}
		if err = w.admitWatcher(key, r); err == nil {
			return
		}
	}
}

// wantsLocked reports whether key is still part of the worker's assignment.
func (w *wWorker) wantsLocked(key string) bool {
	return w.wanted[key]
}

// ResetSnapshot implements core.SyncedConsumer: every entity in the snapshot
// is a candidate; already-done ones are skipped at processing time via the
// status row (state-based de-duplication).
func (w *wWorker) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for k := range w.pending {
		if r.Contains(k) {
			delete(w.pending, k)
		}
	}
	now := w.pool.now()
	for _, e := range entries {
		if !isEntityKey(e.Key) {
			continue
		}
		if work, err := decodeWork(e.Key, e.Value); err == nil {
			// Latency is measured from visibility: delivery transit (real
			// time) is not virtual queueing time.
			if work.Submit < now {
				work.Submit = now
			}
			w.pending[e.Key] = work
		}
	}
}

// ApplyChange implements core.SyncedConsumer.
func (w *wWorker) ApplyChange(ev core.ChangeEvent) {
	if !isEntityKey(ev.Key) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if ev.Mut.Op == core.OpDelete {
		delete(w.pending, ev.Key)
		return
	}
	work, err := decodeWork(ev.Key, ev.Mut.Value)
	if err != nil {
		return
	}
	if now := w.pool.now(); work.Submit < now {
		work.Submit = now // latency counts from visibility, not transit
	}
	if _, had := w.pending[ev.Key]; had {
		// A newer desired state subsumes the queued one: the state-based
		// model coalesces redundant work instead of queueing it.
		w.pool.coalesced.Add(1)
		w.pool.met.coalesced.Inc()
	}
	w.pending[ev.Key] = work
}

// AdvanceFrontier implements core.SyncedConsumer (unused: the worker acts on
// state presence, not snapshot consistency).
func (w *wWorker) AdvanceFrontier(core.ProgressEvent) {}

// tickOnce advances the worker by one tick.
func (w *wWorker) tickOnce(tick int64) {
	w.mu.Lock()
	if w.cur == nil {
		w.pickLocked()
	}
	if w.cur == nil {
		w.mu.Unlock()
		return
	}
	w.remaining--
	if w.remaining > 0 {
		w.mu.Unlock()
		return
	}
	work := *w.cur
	cold := w.coldStart
	w.cur = nil
	w.mu.Unlock()
	w.pool.recordCompletion(work, tick, cold)
}

// pickLocked selects the next entity: cheapest first (known-slow work never
// blocks cheap work — the watch model's head-of-line mitigation), skipping
// entities whose status row already covers the desired seq.
func (w *wWorker) pickLocked() {
	for {
		var best *Work
		for k := range w.pending {
			work := w.pending[k]
			if best == nil || work.Cost < best.Cost {
				b := work
				best = &b
			}
		}
		if best == nil {
			return
		}
		delete(w.pending, best.Entity)
		if doneSeq := w.statusSeq(best.Entity); doneSeq >= best.Seq {
			continue // already advanced by a previous owner
		}
		w.cur = best
		w.remaining = best.Cost
		w.coldStart = !w.warm[best.Entity]
		if w.coldStart {
			w.remaining += WarmCost
		}
		w.warm[best.Entity] = true
		return
	}
}

// statusSeq reads the entity's completion status from the store.
func (w *wWorker) statusSeq(entity keyspace.Key) int {
	val, _, ok, err := w.pool.store.Get(statusKey(entity), core.NoVersion)
	if err != nil || !ok {
		return 0
	}
	var seq int
	fmt.Sscanf(string(val), "%d", &seq)
	return seq
}

func (w *wWorker) pendingLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// busy reports whether the worker is mid-task.
func (w *wWorker) busy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur != nil
}

func (w *wWorker) stop() {
	w.mu.Lock()
	w.stopped = true
	ws := make([]*core.ResyncWatcher, 0, len(w.watchers))
	for _, rw := range w.watchers {
		ws = append(ws, rw)
	}
	w.watchers = map[string]*core.ResyncWatcher{}
	w.mu.Unlock()
	for _, rw := range ws {
		rw.Stop()
	}
}
