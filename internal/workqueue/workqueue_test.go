package workqueue

import (
	"fmt"
	"testing"
	"time"

	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWorkCodec(t *testing.T) {
	w := Work{Entity: keyspace.NumericKey(7), Seq: 3, Cost: 9, Submit: 42}
	back, err := decodeWork(w.Entity, encodeWork(w))
	if err != nil || back != w {
		t.Fatalf("roundtrip: %+v vs %+v (%v)", w, back, err)
	}
	if _, err := decodeWork("k", []byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := decodeWork("k", []byte("a|b|c")); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

// driveToCompletion submits n work units across entities and ticks the pool
// until all entities reach their final seq.
func driveToCompletion(t *testing.T, p Pool, entities, rounds int) {
	t.Helper()
	var tick int64
	for r := 1; r <= rounds; r++ {
		for e := 0; e < entities; e++ {
			if err := p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: r, Cost: 2, Submit: tick}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			p.Tick()
			tick++
		}
	}
	waitUntil(t, "all entities processed", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e < entities; e++ {
			if done[keyspace.NumericKey(e)] < rounds {
				return false
			}
		}
		return true
	})
}

func TestPubSubPoolProcessesAll(t *testing.T) {
	p, err := NewPubSubPool(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if err := p.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	driveToCompletion(t, p, 20, 3)
	st := p.Stats()
	if st.Completed < 60 {
		t.Fatalf("completed = %d, want >= 60", st.Completed)
	}
	if st.Workers != 3 {
		t.Fatalf("workers = %d", st.Workers)
	}
}

func TestWatchPoolProcessesAllAndCoalesces(t *testing.T) {
	p := NewWatchPool(8, 100)
	defer p.Close()
	for i := 0; i < 3; i++ {
		if err := p.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Round 1 also establishes every watcher (the initial snapshot may
	// absorb it); wait for it to finish so later rounds arrive as events.
	for e := 0; e < 20; e++ {
		p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: 1, Cost: 2, Submit: 0})
	}
	waitUntil(t, "round 1 done", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e < 20; e++ {
			if done[keyspace.NumericKey(e)] < 1 {
				return false
			}
		}
		return true
	})
	// Rounds 2..4 back-to-back with no ticks in between: the state-based
	// pool coalesces superseded rounds instead of queueing them.
	for r := 2; r <= 4; r++ {
		for e := 0; e < 20; e++ {
			p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: r, Cost: 2, Submit: 0})
		}
	}
	waitUntil(t, "all entities at seq 4", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e < 20; e++ {
			if done[keyspace.NumericKey(e)] < 4 {
				return false
			}
		}
		return true
	})
	st := p.Stats()
	if st.Completed > 80 {
		t.Fatalf("completed = %d — more completions than submissions?", st.Completed)
	}
	if st.Coalesced == 0 {
		t.Fatal("coalesced = 0")
	}
}

func TestPubSubHeadOfLineBlocking(t *testing.T) {
	// One worker, one partition: a slow task ahead of cheap tasks delays
	// them all; delivery order is the processing order.
	p, err := NewPubSubPool(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.AddWorker("w0")
	p.Submit(Work{Entity: keyspace.NumericKey(0), Seq: 1, Cost: 100, Submit: 0}) // slow
	for e := 1; e <= 5; e++ {
		p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: 1, Cost: 1, Submit: 0})
	}
	for i := 0; i < 300; i++ {
		p.Tick()
	}
	st := p.Stats()
	// Every cheap task waited behind the 100-tick task.
	if st.CheapLat.Min < 100 {
		t.Fatalf("cheap min latency = %d, want >= 100 (blocked)", st.CheapLat.Min)
	}
}

func TestWatchPoolPrioritizesAroundSlowTask(t *testing.T) {
	p := NewWatchPool(4, 50)
	defer p.Close()
	p.AddWorker("w0")
	p.Submit(Work{Entity: keyspace.NumericKey(0), Seq: 1, Cost: 100, Submit: 0}) // slow
	for e := 1; e <= 5; e++ {
		p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: 1, Cost: 1, Submit: 0})
	}
	waitUntil(t, "all done", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e <= 5; e++ {
			if done[keyspace.NumericKey(e)] < 1 {
				return false
			}
		}
		return true
	})
	st := p.Stats()
	// Cheap tasks ran first: even the worst cheap latency is far below the
	// slow task's cost.
	if st.CheapLat.Max >= 100 {
		t.Fatalf("cheap max latency = %d, want < 100 (prioritized)", st.CheapLat.Max)
	}
}

func TestChurnAffinity(t *testing.T) {
	// Same workload, same churn; compare warm-state survival.
	run := func(p Pool) (hits, misses int64) {
		for i := 0; i < 4; i++ {
			p.AddWorker(fmt.Sprintf("w%d", i))
		}
		var tick int64
		seq := 0
		submitRound := func() {
			seq++
			for e := 0; e < 64; e++ {
				p.Submit(Work{Entity: keyspace.NumericKey(e * 50), Seq: seq, Cost: 1, Submit: tick})
			}
		}
		drain := func() {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				p.Tick()
				tick++
				done := p.Done()
				ok := true
				for e := 0; e < 64; e++ {
					if done[keyspace.NumericKey(e*50)] < seq {
						ok = false
						break
					}
				}
				if ok {
					return
				}
			}
			t.Fatal("drain timed out")
		}
		submitRound()
		drain() // warm everything
		// Churn: one worker joins.
		p.AddWorker("w-late")
		time.Sleep(20 * time.Millisecond) // let rebalance notifications land
		before := p.Stats()
		submitRound()
		drain()
		after := p.Stats()
		return after.WarmHits - before.WarmHits, after.WarmMisses - before.WarmMisses
	}

	ps, err := NewPubSubPool(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	psHits, psMisses := run(ps)
	ps.Close()

	wp := NewWatchPool(16, 100)
	wpHits, wpMisses := run(wp)
	wp.Close()

	psRate := float64(psHits) / float64(psHits+psMisses)
	wpRate := float64(wpHits) / float64(wpHits+wpMisses)
	t.Logf("affinity after churn: pubsub %.2f (%d/%d), watch %.2f (%d/%d)",
		psRate, psHits, psHits+psMisses, wpRate, wpHits, wpHits+wpMisses)
	if wpRate <= psRate {
		t.Fatalf("watch affinity (%.2f) should beat pubsub (%.2f) after churn", wpRate, psRate)
	}
}

func TestWatchPoolWorkerChurnStillCompletes(t *testing.T) {
	p := NewWatchPool(8, 100)
	defer p.Close()
	p.AddWorker("w0")
	p.AddWorker("w1")
	for e := 0; e < 30; e++ {
		p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: 1, Cost: 3, Submit: 0})
	}
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	// A worker dies mid-stream; its ranges move; work finishes elsewhere.
	if err := p.RemoveWorker("w0"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "all done despite churn", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e < 30; e++ {
			if done[keyspace.NumericKey(e)] < 1 {
				return false
			}
		}
		return true
	})
}

func TestCoordinatorEventVsWatchOnCrashes(t *testing.T) {
	// Event-driven coordinator: converges on desired changes, blind to
	// crashes. Watch coordinator: converges on both.
	fleet := NewFleet()
	ec, err := NewEventCoordinator(fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()

	for i := 0; i < 5; i++ {
		fleet.SetDesired(fmt.Sprintf("wl%d", i), 3)
	}
	ec.Step(100)
	if d := fleet.Divergence(); d != 0 {
		t.Fatalf("event coordinator did not converge on desired changes: %d", d)
	}
	// Crash some VMs: no events flow; the event coordinator has nothing to
	// process and the fleet stays diverged.
	fleet.CrashVM("wl0")
	fleet.CrashVM("wl1")
	ec.Step(100)
	if d := fleet.Divergence(); d != 2 {
		t.Fatalf("divergence after crashes = %d, want 2 (event coordinator is blind)", d)
	}

	// The watch coordinator sees the same store and fixes it.
	wc, err := NewWatchCoordinator(fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	waitUntil(t, "watch coordinator converges", func() bool {
		wc.Step(50)
		return fleet.Divergence() == 0
	})

	// Ongoing chaos: crashes and desired changes; the watch coordinator
	// keeps converging.
	fleet.SetDesired("wl2", 5)
	fleet.CrashVM("wl3")
	fleet.CrashVM("wl4")
	waitUntil(t, "converges under chaos", func() bool {
		wc.Step(50)
		return fleet.Divergence() == 0
	})
	if wc.Actions() == 0 {
		t.Fatal("watch coordinator took no actions")
	}
}

func TestCoordinatorSurvivesHubWipe(t *testing.T) {
	fleet := NewFleet()
	wc, err := NewWatchCoordinator(fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	fleet.SetDesired("wl0", 2)
	waitUntil(t, "initial converge", func() bool {
		wc.Step(20)
		return fleet.Divergence() == 0
	})
	wc.Hub().Wipe()
	fleet.CrashVM("wl0")
	waitUntil(t, "converges after wipe", func() bool {
		wc.Step(20)
		return fleet.Divergence() == 0
	})
}

func TestFleetHelpers(t *testing.T) {
	fleet := NewFleet()
	fleet.SetDesired("a", 2)
	if fleet.CrashVM("a") {
		t.Fatal("crashed a VM that does not exist")
	}
	if got := fleet.Divergence(); got != 1 {
		t.Fatalf("divergence = %d, want 1", got)
	}
	if n := reconcile(fleet.Store, "a"); n != 2 {
		t.Fatalf("reconcile actions = %d, want 2", n)
	}
	if got := fleet.Divergence(); got != 0 {
		t.Fatalf("divergence after reconcile = %d", got)
	}
	// Scale down.
	fleet.SetDesired("a", 1)
	if n := reconcile(fleet.Store, "a"); n != 1 {
		t.Fatalf("scale-down actions = %d, want 1", n)
	}
	if !fleet.CrashVM("a") {
		t.Fatal("crash failed with a running VM")
	}
	if got := fleet.Divergence(); got != 1 {
		t.Fatalf("divergence after crash = %d", got)
	}
	// workloadOf parsing.
	if w, ok := workloadOf(desiredKey("x")); !ok || w != "x" {
		t.Fatalf("workloadOf desired = %q/%v", w, ok)
	}
	if w, ok := workloadOf(vmKey("y", 3)); !ok || w != "y" {
		t.Fatalf("workloadOf vm = %q/%v", w, ok)
	}
	if _, ok := workloadOf("unrelated"); ok {
		t.Fatal("workloadOf accepted junk")
	}
}

// TestGovernedWatchPoolChargesAndCompletes wires the watch pool's internal
// hub into a memory governor: the fleet's retention must show up as charged
// bytes while the pool runs, everything must still complete, and closing the
// pool must return every charged byte to the budget.
func TestGovernedWatchPoolChargesAndCompletes(t *testing.T) {
	gov := govern.NewGovernor(govern.Config{Budget: 1 << 30})
	defer gov.Close()
	p := NewGovernedWatchPool(8, 100, gov)
	p.AddWorker("w0")
	p.AddWorker("w1")
	for e := 0; e < 20; e++ {
		p.Submit(Work{Entity: keyspace.NumericKey(e), Seq: 1, Cost: 2, Submit: 0})
	}
	waitUntil(t, "all entities done", func() bool {
		p.Tick()
		done := p.Done()
		for e := 0; e < 20; e++ {
			if done[keyspace.NumericKey(e)] < 1 {
				return false
			}
		}
		return true
	})
	if used := gov.Snapshot().UsedBytes; used == 0 {
		t.Fatal("governed pool never charged the budget")
	}
	p.Close()
	if used := gov.Snapshot().UsedBytes; used != 0 {
		t.Fatalf("pool closed but %d bytes still charged", used)
	}
}
