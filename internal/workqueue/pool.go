// Package workqueue implements the §3.2.4/§4.3 work-queueing scenario both
// ways:
//
//   - PubSubPool: tasks are messages in a partitioned topic consumed by a
//     worker group. Delivery is serial per partition and in offset order, so
//     a slow task blocks every key behind it (head-of-line blocking), and a
//     membership change reshuffles partition ownership wholesale, destroying
//     per-key warm state (no affinitized dynamic sharding).
//
//   - WatchPool: work is *state* — entities in the store needing attention.
//     Workers own sharder-assigned key ranges, learn of entities via watch,
//     choose what to process next (priority mitigates head-of-line blocking
//     entirely), coalesce redundant updates, and keep warm state across
//     sticky rebalances.
//
// Both pools run on a virtual tick so throughput/latency comparisons are
// deterministic. A separate Coordinator (coordinator.go) implements the
// paper's VM-provisioning reconciler.
package workqueue

import (
	"fmt"
	"strconv"
	"strings"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Work describes one unit of submitted work for an entity.
type Work struct {
	Entity keyspace.Key
	Seq    int   // per-entity sequence; the entity's state version
	Cost   int   // ticks to process once warm
	Submit int64 // tick at which it was submitted
}

// WarmCost is the extra ticks to build per-entity state on a cold worker
// (the affinity benefit being measured).
const WarmCost = 4

// Pool is the common driver interface for both implementations.
type Pool interface {
	// Submit enqueues work for an entity.
	Submit(w Work) error
	// Tick advances virtual time by one unit: every idle worker may start a
	// task; every busy worker makes one tick of progress.
	Tick()
	// AddWorker and RemoveWorker change membership (rebalancing semantics
	// differ per implementation — that difference is the experiment).
	AddWorker(name string) error
	RemoveWorker(name string) error
	// Done returns the highest processed Seq per entity.
	Done() map[keyspace.Key]int
	// Stats returns pool counters.
	Stats() PoolStats
	// Close releases resources.
	Close()
}

// PoolStats aggregates pool behaviour.
type PoolStats struct {
	Completed   int64
	Coalesced   int64 // submitted units subsumed by processing a newer state
	WarmHits    int64
	WarmMisses  int64
	Latency     metrics.Snapshot // ticks from submit to completion
	CheapLat    metrics.Snapshot // latency of cheap (non-slow) tasks only
	Workers     int
	Outstanding int64 // submitted entities visible but not yet picked up
	Busy        int   // workers currently mid-task
}

// wqMetrics holds the registry instruments shared by both pool flavors,
// split by model so one snapshot compares them. Latency histograms stay
// pool-local (PoolStats must not mix pools); the registry sees counters and
// a model-wide latency histogram in virtual ticks.
type wqMetrics struct {
	completed, coalesced *metrics.Counter
	warmHits, warmMisses *metrics.Counter
	latency              *metrics.Histogram
}

func newWQMetrics(reg *metrics.Registry, model string) wqMetrics {
	reg = reg.Or()
	return wqMetrics{
		completed:  reg.Counter("workqueue_" + model + "_completed_total"),
		coalesced:  reg.Counter("workqueue_" + model + "_coalesced_total"),
		warmHits:   reg.Counter("workqueue_" + model + "_warm_hits_total"),
		warmMisses: reg.Counter("workqueue_" + model + "_warm_misses_total"),
		latency:    reg.Histogram("workqueue_" + model + "_latency_ticks"),
	}
}

// encodeWork serializes work for the pubsub transport.
func encodeWork(w Work) []byte {
	return []byte(fmt.Sprintf("%d|%d|%d", w.Seq, w.Cost, w.Submit))
}

// decodeWork reverses encodeWork.
func decodeWork(entity keyspace.Key, b []byte) (Work, error) {
	parts := strings.Split(string(b), "|")
	if len(parts) != 3 {
		return Work{}, fmt.Errorf("workqueue: bad payload %q", b)
	}
	seq, err1 := strconv.Atoi(parts[0])
	cost, err2 := strconv.Atoi(parts[1])
	submit, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return Work{}, fmt.Errorf("workqueue: bad payload %q", b)
	}
	return Work{Entity: entity, Seq: seq, Cost: cost, Submit: submit}, nil
}
