package workqueue

import (
	"sync"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/pubsub"
)

const taskTopic = "tasks"

// PubSubPool runs workers as a consumer group over a task topic.
type PubSubPool struct {
	broker *pubsub.Broker
	group  *pubsub.Group

	mu      sync.Mutex
	workers map[string]*psWorker
	tick    int64
	done    map[keyspace.Key]int

	completed  int64
	warmHits   int64
	warmMisses int64
	latency    *metrics.Histogram
	cheapLat   *metrics.Histogram
	slowCost   int // tasks with Cost >= slowCost count as slow
	met        wqMetrics
}

// psWorker is one group member: single-threaded, processing its delivered
// messages strictly in order.
type psWorker struct {
	name     string
	consumer *pubsub.Consumer
	warm     map[keyspace.Key]bool

	cur       *pubsub.Message
	work      Work
	remaining int
	coldStart bool
}

// NewPubSubPool creates the baseline pool with the given topic partitioning.
func NewPubSubPool(partitions, slowCost int) (*PubSubPool, error) {
	b := pubsub.NewBroker(pubsub.BrokerConfig{})
	if err := b.CreateTopic(taskTopic, pubsub.TopicConfig{Partitions: partitions}); err != nil {
		b.Close()
		return nil, err
	}
	g, err := b.Group(taskTopic, "workers", pubsub.GroupConfig{StartAtEarliest: true})
	if err != nil {
		b.Close()
		return nil, err
	}
	return &PubSubPool{
		broker:   b,
		group:    g,
		workers:  make(map[string]*psWorker),
		done:     make(map[keyspace.Key]int),
		latency:  metrics.NewHistogram(),
		cheapLat: metrics.NewHistogram(),
		slowCost: slowCost,
		met:      newWQMetrics(nil, "pubsub"),
	}, nil
}

var _ Pool = (*PubSubPool)(nil)

// Submit implements Pool.
func (p *PubSubPool) Submit(w Work) error {
	_, _, err := p.broker.Publish(taskTopic, w.Entity, encodeWork(w))
	return err
}

// AddWorker implements Pool. Joining rebalances the group: partitions move
// between members and in-flight work is redelivered — and every moved
// partition's keys arrive at a worker with cold state.
func (p *PubSubPool) AddWorker(name string) error {
	c, err := p.group.Join(name)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.workers[name] = &psWorker{name: name, consumer: c, warm: make(map[keyspace.Key]bool)}
	p.mu.Unlock()
	return nil
}

// RemoveWorker implements Pool.
func (p *PubSubPool) RemoveWorker(name string) error {
	p.mu.Lock()
	w, ok := p.workers[name]
	delete(p.workers, name)
	p.mu.Unlock()
	if !ok {
		return nil
	}
	w.consumer.Leave()
	return nil
}

// Tick implements Pool.
func (p *PubSubPool) Tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++
	for _, w := range p.workers {
		if w.cur == nil {
			// Take the next delivered message, in order. No peeking, no
			// reordering: the contract delivers by offset.
			msg, ok, err := w.consumer.Poll()
			if err != nil || !ok {
				continue
			}
			work, derr := decodeWork(msg.Key, msg.Value)
			if derr != nil {
				w.consumer.Ack(msg)
				continue
			}
			w.cur = &msg
			w.work = work
			w.remaining = work.Cost
			w.coldStart = !w.warm[work.Entity]
			if w.coldStart {
				w.remaining += WarmCost
				p.warmMisses++
				p.met.warmMisses.Inc()
			} else {
				p.warmHits++
				p.met.warmHits.Inc()
			}
			w.warm[work.Entity] = true
		}
		if w.cur == nil {
			continue
		}
		w.remaining--
		if w.remaining <= 0 {
			w.consumer.Ack(*w.cur)
			p.completed++
			if w.work.Seq > p.done[w.work.Entity] {
				p.done[w.work.Entity] = w.work.Seq
			}
			lat := p.tick - w.work.Submit
			p.latency.Observe(lat)
			if w.work.Cost < p.slowCost {
				p.cheapLat.Observe(lat)
			}
			p.met.completed.Inc()
			p.met.latency.Observe(lat)
			w.cur = nil
		}
	}
}

// Done implements Pool.
func (p *PubSubPool) Done() map[keyspace.Key]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[keyspace.Key]int, len(p.done))
	for k, v := range p.done {
		out[k] = v
	}
	return out
}

// Stats implements Pool.
func (p *PubSubPool) Stats() PoolStats {
	lag := p.group.Lag()
	p.mu.Lock()
	defer p.mu.Unlock()
	busy := 0
	for _, w := range p.workers {
		if w.cur != nil {
			busy++
		}
	}
	return PoolStats{
		Completed:   p.completed,
		WarmHits:    p.warmHits,
		WarmMisses:  p.warmMisses,
		Latency:     p.latency.Snapshot(),
		CheapLat:    p.cheapLat.Snapshot(),
		Workers:     len(p.workers),
		Outstanding: lag,
		Busy:        busy,
	}
}

// Group exposes the underlying consumer group for assignment assertions.
func (p *PubSubPool) Group() *pubsub.Group { return p.group }

// Close implements Pool.
func (p *PubSubPool) Close() {
	p.broker.Close()
}
