// Package govern bounds the process's soft state in bytes.
//
// The stack bounds its queues in *events* (hub retention, WatcherBuffer,
// remote outbound limits), but the paper's §3 backlog pathologies are about
// *bytes*: a resume storm of large-value watchers, or a snapshot burst, can
// grow sealed segments, watcher rings, and outbound frames without limit
// until the OS OOM-killer intervenes — the least graceful degradation
// possible. The governor makes overload a first-class state instead: one
// root budget, child accounts per subsystem (hub segments, watcher rings,
// remote outbound, pubsub logs), and a degradation ladder that trades
// freshness for survival in priority order:
//
//	Evict  — accelerate segment eviction down to a configured floor
//	         (soft state shrinks; watchers are untouched)
//	Shed   — lag out the worst-offending watchers onto the existing
//	         resync path (explicit, recoverable; repeat offenders are
//	         quarantined with a jittered re-admit delay)
//	Reject — admission-control new Watch/resume/snapshot requests with a
//	         typed Overloaded{RetryAfter} the wire protocol carries so
//	         remote clients back off instead of hammering
//
// Every transition is observable: a govern_pressure_level gauge (which the
// flight recorder's memory-pressure detector watches), shed/reject counters,
// and a /govern debugz endpoint fed by Snapshot.
//
// The fast path is two atomic adds; a nil *Governor or nil *Account is a
// no-op, so ungoverned builds pay a single predictable branch.
package govern

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/flightrec"
	"unbundle/internal/logz"
	"unbundle/internal/metrics"
)

// Pressure is the governor's degradation level, ordered by severity.
type Pressure int32

const (
	// Steady: usage below the evict threshold; nothing degrades.
	Steady Pressure = iota
	// Evict: relievers run, evicting retained soft state down to floors.
	Evict
	// Shed: eviction alone is not enough; worst-offending watchers are
	// lagged out onto the resync path.
	Shed
	// Reject: new admissions are refused with Overloaded{RetryAfter}.
	Reject
)

func (p Pressure) String() string {
	switch p {
	case Steady:
		return "steady"
	case Evict:
		return "evict"
	case Shed:
		return "shed"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("pressure(%d)", int32(p))
	}
}

// ErrOverloaded is the sentinel matched by errors.Is for any admission
// refusal. The concrete error is *Overloaded, which carries RetryAfter.
var ErrOverloaded = errors.New("govern: overloaded")

// Overloaded is the typed admission-control refusal. RetryAfter is the
// server's backoff hint; the wire protocol carries it to remote clients.
type Overloaded struct {
	// RetryAfter is how long the caller should wait before retrying.
	RetryAfter time.Duration
	// Reason is a short human-readable cause ("over budget", "quarantined").
	Reason string
}

func (e *Overloaded) Error() string {
	return fmt.Sprintf("govern: overloaded (%s): retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any *Overloaded.
func (e *Overloaded) Is(target error) bool { return target == ErrOverloaded }

// Config parameterizes a Governor. Budget is required; everything else
// defaults sanely.
type Config struct {
	// Budget is the root byte budget for all accounted soft state.
	Budget int64
	// EvictFrac, ShedFrac, RejectFrac are the budget fractions at which each
	// pressure level engages. Defaults: 0.70, 0.85, 0.95. They must be
	// ascending; zero values take the defaults.
	EvictFrac, ShedFrac, RejectFrac float64
	// RetryAfterBase is the base backoff hint attached to rejections
	// (jittered up to 2x). Default 500ms.
	RetryAfterBase time.Duration
	// QuarantineBase is the re-admit delay after a watcher's first shed;
	// it doubles per repeat offense up to QuarantineMax. Defaults 1s / 30s.
	QuarantineBase, QuarantineMax time.Duration
	// Seed fixes the jitter source for deterministic tests (0 = fixed
	// default seed; jitter stays deterministic either way).
	Seed int64
	// Metrics receives the governor's gauges and counters; nil uses the
	// process-default registry.
	Metrics *metrics.Registry
	// Recorder receives flight records for pressure transitions and sheds.
	Recorder *flightrec.Recorder
	// Clock drives quarantine expiry; nil uses the real clock.
	Clock clockwork.Clock
	// Log receives structured records for transitions; nil uses the
	// process-wide logz ring under component "govern".
	Log *slog.Logger
}

type governMetrics struct {
	level       *metrics.Gauge // govern_pressure_level — detector input
	transitions *metrics.Counter
	sheds       *metrics.Counter
	rejects     *metrics.Counter
	reliefRuns  *metrics.Counter
	quarantines *metrics.Counter
}

// Governor is the process-wide memory governor. All methods are safe for
// concurrent use; Charge/Release on its Accounts are two atomic adds plus a
// threshold compare. A nil *Governor is a valid no-op.
type Governor struct {
	cfg   Config
	met   governMetrics
	clock clockwork.Clock
	rec   *flightrec.Recorder
	log   *slog.Logger

	evictAt, shedAt, rejectAt int64

	used  atomic.Int64
	level atomic.Int32

	reliefCh chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	mu        sync.Mutex
	accounts  []*Account
	relievers []reliever
	quar      map[string]quarEntry
	jitter    *rand.Rand
}

type reliever struct {
	priority int
	name     string
	fn       func(need int64) int64
}

type quarEntry struct {
	strikes int
	until   time.Time
}

// Account is one subsystem's child budget line. It tracks its own usage for
// attribution (debugz /govern) and forwards every delta to the root.
// A nil *Account is a valid no-op.
type Account struct {
	g    *Governor
	name string
	used atomic.Int64
}

// NewGovernor builds and starts a governor. Close releases its relief
// goroutine.
func NewGovernor(cfg Config) *Governor {
	if cfg.Budget <= 0 {
		panic("govern: Config.Budget must be positive")
	}
	if cfg.EvictFrac <= 0 {
		cfg.EvictFrac = 0.70
	}
	if cfg.ShedFrac <= 0 {
		cfg.ShedFrac = 0.85
	}
	if cfg.RejectFrac <= 0 {
		cfg.RejectFrac = 0.95
	}
	if !(cfg.EvictFrac < cfg.ShedFrac && cfg.ShedFrac < cfg.RejectFrac) {
		panic("govern: thresholds must ascend: EvictFrac < ShedFrac < RejectFrac")
	}
	if cfg.RetryAfterBase <= 0 {
		cfg.RetryAfterBase = 500 * time.Millisecond
	}
	if cfg.QuarantineBase <= 0 {
		cfg.QuarantineBase = time.Second
	}
	if cfg.QuarantineMax <= 0 {
		cfg.QuarantineMax = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x60BE51
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clockwork.Real()
	}
	log := cfg.Log
	if log == nil {
		log = logz.Logger("govern")
	}
	reg := cfg.Metrics.Or()
	g := &Governor{
		cfg:      cfg,
		clock:    clk,
		rec:      cfg.Recorder,
		log:      log,
		evictAt:  int64(float64(cfg.Budget) * cfg.EvictFrac),
		shedAt:   int64(float64(cfg.Budget) * cfg.ShedFrac),
		rejectAt: int64(float64(cfg.Budget) * cfg.RejectFrac),
		reliefCh: make(chan struct{}, 1),
		done:     make(chan struct{}),
		quar:     make(map[string]quarEntry),
		jitter:   rand.New(rand.NewSource(seed)),
	}
	g.met = governMetrics{
		level:       reg.Gauge("govern_pressure_level"),
		transitions: reg.Counter("govern_pressure_transitions_total"),
		sheds:       reg.Counter("govern_sheds_total"),
		rejects:     reg.Counter("govern_rejects_total"),
		reliefRuns:  reg.Counter("govern_relief_runs_total"),
		quarantines: reg.Counter("govern_quarantines_total"),
	}
	reg.Gauge("govern_budget_bytes").Set(cfg.Budget)
	reg.GaugeFunc("govern_used_bytes", g.used.Load)
	g.wg.Add(1)
	go g.reliefLoop()
	return g
}

// Account returns the named child account, creating it on first use. The
// name feeds a govern_used_bytes_<name> gauge and the /govern breakdown.
// A nil governor returns a nil (no-op) account.
func (g *Governor) Account(name string) *Account {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, a := range g.accounts {
		if a.name == name {
			return a
		}
	}
	a := &Account{g: g, name: name}
	g.accounts = append(g.accounts, a)
	g.cfg.Metrics.Or().GaugeFunc("govern_used_bytes_"+name, a.used.Load)
	return a
}

// Charge adds n bytes to the account (and the root). Negative n releases.
func (a *Account) Charge(n int64) {
	if a == nil || n == 0 {
		return
	}
	a.used.Add(n)
	a.g.adjust(n)
}

// Release subtracts n bytes from the account (and the root).
func (a *Account) Release(n int64) {
	if a == nil || n == 0 {
		return
	}
	a.used.Add(-n)
	a.g.adjust(-n)
}

// Used reports the account's current accounted bytes.
func (a *Account) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Name reports the account's registered name.
func (a *Account) Name() string {
	if a == nil {
		return ""
	}
	return a.name
}

func (g *Governor) adjust(n int64) {
	used := g.used.Add(n)
	lvl := g.levelFor(used)
	if old := Pressure(g.level.Load()); lvl != old {
		g.transition(old, lvl)
	}
	// Prod the relief goroutine on any charge made under pressure — not only
	// on the upward transition — so sustained growth keeps relief running.
	if n > 0 && lvl >= Evict {
		select {
		case g.reliefCh <- struct{}{}:
		default:
		}
	}
}

func (g *Governor) levelFor(used int64) Pressure {
	switch {
	case used >= g.rejectAt:
		return Reject
	case used >= g.shedAt:
		return Shed
	case used >= g.evictAt:
		return Evict
	default:
		return Steady
	}
}

func (g *Governor) transition(old, lvl Pressure) {
	if !g.level.CompareAndSwap(int32(old), int32(lvl)) {
		return // raced with another transition; its view wins
	}
	g.met.level.Set(int64(lvl))
	g.met.transitions.Inc()
	if lvl > old {
		used := g.used.Load()
		g.rec.Record(flightrec.KindMemoryPressure, flightrec.Event{
			Comp:   "govern",
			N:      used,
			Detail: fmt.Sprintf("pressure %s -> %s (%d/%d bytes)", old, lvl, used, g.cfg.Budget),
		})
		g.log.Warn("memory pressure rising",
			"from", old.String(), "to", lvl.String(),
			"used", used, "budget", g.cfg.Budget)
	} else {
		g.log.Info("memory pressure easing", "from", old.String(), "to", lvl.String())
	}
}

// Pressure reports the current degradation level. Nil-safe (Steady).
func (g *Governor) Pressure() Pressure {
	if g == nil {
		return Steady
	}
	return Pressure(g.level.Load())
}

// Used reports the root's accounted bytes. Nil-safe (0).
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Budget reports the configured root budget. Nil-safe (0).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.Budget
}

// RegisterReliever adds a degradation step invoked (in ascending priority
// order) while usage sits above the evict threshold. fn is asked to free
// `need` bytes and returns how many it actually freed (via Releases it
// triggered); returning 0 means it has nothing left to give and the loop
// moves to the next priority. Relievers run on the governor's relief
// goroutine, never on a Charge caller.
func (g *Governor) RegisterReliever(priority int, name string, fn func(need int64) int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.relievers = append(g.relievers, reliever{priority: priority, name: name, fn: fn})
	sort.SliceStable(g.relievers, func(i, j int) bool {
		return g.relievers[i].priority < g.relievers[j].priority
	})
}

func (g *Governor) reliefLoop() {
	defer g.wg.Done()
	for {
		select {
		case <-g.done:
			return
		case <-g.reliefCh:
		}
		for {
			used := g.used.Load()
			if used < g.evictAt {
				break
			}
			// Free down past the evict threshold with ~5%-of-budget
			// hysteresis so relief doesn't re-trigger on the next charge.
			need := used - g.evictAt + g.cfg.Budget/20
			if g.runRelievers(need) <= 0 {
				break // nothing left to free; wait for the next signal
			}
		}
	}
}

func (g *Governor) runRelievers(need int64) int64 {
	g.mu.Lock()
	rs := append([]reliever(nil), g.relievers...)
	g.mu.Unlock()
	g.met.reliefRuns.Inc()
	var freed int64
	for _, r := range rs {
		if freed >= need {
			break
		}
		select {
		case <-g.done:
			return freed
		default:
		}
		freed += r.fn(need - freed)
	}
	return freed
}

// Admit is the admission-control gate for new Watch/resume/snapshot
// requests. It refuses with *Overloaded when pressure has reached Reject,
// or when key (a caller identity such as a watcher's range) is quarantined
// after repeated sheds. Nil-safe; an empty key skips the quarantine check.
func (g *Governor) Admit(key string) error {
	if g == nil {
		return nil
	}
	if Pressure(g.level.Load()) >= Reject {
		g.met.rejects.Inc()
		return &Overloaded{RetryAfter: g.retryAfter(), Reason: "over budget"}
	}
	if key == "" {
		return nil
	}
	g.mu.Lock()
	e, ok := g.quar[key]
	if !ok {
		g.mu.Unlock()
		return nil
	}
	now := g.clock.Now()
	if now.Before(e.until) {
		wait := e.until.Sub(now)
		g.mu.Unlock()
		g.met.rejects.Inc()
		return &Overloaded{RetryAfter: wait, Reason: "quarantined after repeated sheds"}
	}
	// Expired long ago: the offender has served its time; forget the
	// strike history so it does not escalate forever.
	if now.Sub(e.until) > 2*g.cfg.QuarantineMax {
		delete(g.quar, key)
	}
	g.mu.Unlock()
	return nil
}

// Quarantine records a shed against key and returns the jittered re-admit
// delay: QuarantineBase doubling per strike, capped at QuarantineMax, with
// ±25% jitter so a herd of offenders does not re-admit in lockstep.
func (g *Governor) Quarantine(key string) time.Duration {
	if g == nil || key == "" {
		return 0
	}
	g.mu.Lock()
	e := g.quar[key]
	e.strikes++
	d := g.cfg.QuarantineBase << uint(min(e.strikes-1, 16))
	if d > g.cfg.QuarantineMax || d <= 0 {
		d = g.cfg.QuarantineMax
	}
	// jitter in [0.75d, 1.25d)
	d = d*3/4 + time.Duration(g.jitter.Int63n(int64(d/2)+1))
	e.until = g.clock.Now().Add(d)
	g.quar[key] = e
	g.mu.Unlock()
	g.met.sheds.Inc()
	g.met.quarantines.Inc()
	g.rec.Record(flightrec.KindMemoryPressure, flightrec.Event{
		Comp:   "govern",
		N:      int64(e.strikes),
		Detail: "shed+quarantine " + key + " for " + d.String(),
	})
	return d
}

func (g *Governor) retryAfter() time.Duration {
	base := g.cfg.RetryAfterBase
	g.mu.Lock()
	j := time.Duration(g.jitter.Int63n(int64(base) + 1))
	g.mu.Unlock()
	return base + j
}

// AccountStats is one account line in Stats.
type AccountStats struct {
	Name string `json:"name"`
	Used int64  `json:"used_bytes"`
}

// Stats is the governor's observable state, served at debugz /govern.
type Stats struct {
	BudgetBytes int64          `json:"budget_bytes"`
	UsedBytes   int64          `json:"used_bytes"`
	Pressure    string         `json:"pressure"`
	Level       int            `json:"level"`
	Sheds       int64          `json:"sheds"`
	Rejects     int64          `json:"rejects"`
	ReliefRuns  int64          `json:"relief_runs"`
	Quarantined int            `json:"quarantined"`
	Accounts    []AccountStats `json:"accounts,omitempty"`
}

// Snapshot returns a point-in-time view of the governor. Nil-safe (zero).
func (g *Governor) Snapshot() Stats {
	if g == nil {
		return Stats{Pressure: Steady.String()}
	}
	lvl := g.Pressure()
	st := Stats{
		BudgetBytes: g.cfg.Budget,
		UsedBytes:   g.used.Load(),
		Pressure:    lvl.String(),
		Level:       int(lvl),
		Sheds:       g.met.sheds.Value(),
		Rejects:     g.met.rejects.Value(),
		ReliefRuns:  g.met.reliefRuns.Value(),
	}
	g.mu.Lock()
	now := g.clock.Now()
	for _, e := range g.quar {
		if now.Before(e.until) {
			st.Quarantined++
		}
	}
	for _, a := range g.accounts {
		st.Accounts = append(st.Accounts, AccountStats{Name: a.name, Used: a.used.Load()})
	}
	g.mu.Unlock()
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].Name < st.Accounts[j].Name })
	return st
}

// Close stops the relief goroutine. Accounts remain usable (charges still
// tally) but no further relief runs. Nil-safe, idempotent.
func (g *Governor) Close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	g.mu.Unlock()
	g.wg.Wait()
}
