package govern

import (
	"errors"
	"sync"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/metrics"
)

func wait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	var a *Account
	a.Charge(100)
	a.Release(100)
	if a.Used() != 0 || g.Used() != 0 || g.Budget() != 0 {
		t.Fatal("nil accounting should be zero")
	}
	if g.Pressure() != Steady {
		t.Fatalf("nil pressure = %v, want steady", g.Pressure())
	}
	if err := g.Admit("x"); err != nil {
		t.Fatalf("nil Admit = %v, want nil", err)
	}
	if d := g.Quarantine("x"); d != 0 {
		t.Fatalf("nil Quarantine = %v, want 0", d)
	}
	g.RegisterReliever(0, "none", func(int64) int64 { return 0 })
	if st := g.Snapshot(); st.Pressure != "steady" {
		t.Fatalf("nil Snapshot pressure = %q", st.Pressure)
	}
	g.Close()
	if a := g.Account("x"); a != nil {
		t.Fatal("nil governor should hand out nil accounts")
	}
}

func TestPressureLevelsAndThresholds(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGovernor(Config{Budget: 1000, Metrics: reg})
	defer g.Close()
	a := g.Account("test")

	a.Charge(500) // 50% — steady
	if p := g.Pressure(); p != Steady {
		t.Fatalf("at 50%%: pressure %v, want steady", p)
	}
	a.Charge(250) // 75% — evict
	if p := g.Pressure(); p != Evict {
		t.Fatalf("at 75%%: pressure %v, want evict", p)
	}
	a.Charge(150) // 90% — shed
	if p := g.Pressure(); p != Shed {
		t.Fatalf("at 90%%: pressure %v, want shed", p)
	}
	a.Charge(60) // 96% — reject
	if p := g.Pressure(); p != Reject {
		t.Fatalf("at 96%%: pressure %v, want reject", p)
	}
	if v, ok := reg.GaugeValue("govern_pressure_level"); !ok || v != int64(Reject) {
		t.Fatalf("govern_pressure_level = %d,%v want %d", v, ok, Reject)
	}
	a.Release(960)
	if p := g.Pressure(); p != Steady {
		t.Fatalf("after release: pressure %v, want steady", p)
	}
	if g.Used() != 0 || a.Used() != 0 {
		t.Fatalf("usage after symmetric release: root=%d acct=%d", g.Used(), a.Used())
	}
}

func TestAccountAttribution(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGovernor(Config{Budget: 1 << 20, Metrics: reg})
	defer g.Close()
	hub := g.Account("hub")
	rings := g.Account("rings")
	if again := g.Account("hub"); again != hub {
		t.Fatal("Account should return the same instance per name")
	}
	hub.Charge(100)
	rings.Charge(50)
	if hub.Used() != 100 || rings.Used() != 50 || g.Used() != 150 {
		t.Fatalf("attribution: hub=%d rings=%d root=%d", hub.Used(), rings.Used(), g.Used())
	}
	if v, ok := reg.GaugeValue("govern_used_bytes_hub"); !ok || v != 100 {
		t.Fatalf("govern_used_bytes_hub = %d,%v", v, ok)
	}
	st := g.Snapshot()
	if len(st.Accounts) != 2 || st.Accounts[0].Name != "hub" || st.Accounts[0].Used != 100 {
		t.Fatalf("snapshot accounts: %+v", st.Accounts)
	}
}

func TestReliefRunsRelieversInPriorityOrder(t *testing.T) {
	g := NewGovernor(Config{Budget: 1000, Metrics: metrics.NewRegistry()})
	defer g.Close()
	a := g.Account("test")

	var mu sync.Mutex
	var order []string
	g.RegisterReliever(20, "shed", func(need int64) int64 {
		mu.Lock()
		order = append(order, "shed")
		mu.Unlock()
		a.Release(400)
		return 400
	})
	g.RegisterReliever(10, "evict", func(need int64) int64 {
		mu.Lock()
		order = append(order, "evict")
		mu.Unlock()
		a.Release(200)
		return 200
	})

	a.Charge(990) // deep into reject: needs ~340 freed to clear evictAt+5%
	wait(t, "relief to bring usage below evict threshold", func() bool {
		return g.Pressure() == Steady
	})
	mu.Lock()
	defer mu.Unlock()
	if len(order) < 2 || order[0] != "evict" || order[1] != "shed" {
		t.Fatalf("reliever order = %v, want evict before shed", order)
	}
}

func TestReliefStopsWhenNothingFreed(t *testing.T) {
	g := NewGovernor(Config{Budget: 1000, Metrics: metrics.NewRegistry()})
	defer g.Close()
	a := g.Account("test")
	calls := make(chan struct{}, 64)
	g.RegisterReliever(10, "dry", func(need int64) int64 {
		calls <- struct{}{}
		return 0 // nothing to free
	})
	a.Charge(800)
	<-calls
	// The loop must not spin: after a dry round it waits for the next signal.
	select {
	case <-calls:
		t.Fatal("relief loop spun on a reliever that freed nothing")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestAdmitRejectsUnderPressure(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGovernor(Config{Budget: 1000, Metrics: reg, RetryAfterBase: 100 * time.Millisecond})
	defer g.Close()
	a := g.Account("test")
	if err := g.Admit("w1"); err != nil {
		t.Fatalf("steady Admit = %v", err)
	}
	a.Charge(960) // reject territory
	err := g.Admit("w1")
	if err == nil {
		t.Fatal("Admit under reject pressure should fail")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err %v should match ErrOverloaded", err)
	}
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err %T should be *Overloaded", err)
	}
	if ov.RetryAfter < 100*time.Millisecond || ov.RetryAfter > 200*time.Millisecond {
		t.Fatalf("RetryAfter %v outside [base, 2*base]", ov.RetryAfter)
	}
	if got := reg.Counter("govern_rejects_total").Value(); got != 1 {
		t.Fatalf("rejects counter = %d, want 1", got)
	}
}

func TestQuarantineEscalatesAndExpires(t *testing.T) {
	clk := clockwork.NewFake()
	g := NewGovernor(Config{
		Budget: 1 << 20, Metrics: metrics.NewRegistry(), Clock: clk,
		QuarantineBase: time.Second, QuarantineMax: 8 * time.Second,
	})
	defer g.Close()

	d1 := g.Quarantine("w1")
	if d1 < 750*time.Millisecond || d1 > 1250*time.Millisecond {
		t.Fatalf("first quarantine %v outside jittered base", d1)
	}
	err := g.Admit("w1")
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("quarantined Admit = %v, want *Overloaded", err)
	}
	if g.Admit("w2") != nil {
		t.Fatal("unrelated key should still be admitted")
	}
	// Strikes escalate: the second offense waits roughly twice as long.
	d2 := g.Quarantine("w1")
	if d2 < 1500*time.Millisecond || d2 > 2500*time.Millisecond {
		t.Fatalf("second quarantine %v, want ~2s jittered", d2)
	}
	// Doubling caps at QuarantineMax (8s) regardless of strikes.
	for i := 0; i < 10; i++ {
		if d := g.Quarantine("w1"); d > 10*time.Second {
			t.Fatalf("quarantine %v exceeded jittered max", d)
		}
	}
	clk.Advance(11 * time.Second)
	if err := g.Admit("w1"); err != nil {
		t.Fatalf("Admit after quarantine expiry = %v", err)
	}
	st := g.Snapshot()
	if st.Quarantined != 0 {
		t.Fatalf("snapshot quarantined = %d after expiry", st.Quarantined)
	}
	if st.Sheds != 12 {
		t.Fatalf("sheds counter = %d, want 12", st.Sheds)
	}
}

func TestSnapshotShape(t *testing.T) {
	g := NewGovernor(Config{Budget: 4096, Metrics: metrics.NewRegistry()})
	defer g.Close()
	g.Account("b").Charge(10)
	g.Account("a").Charge(5)
	st := g.Snapshot()
	if st.BudgetBytes != 4096 || st.UsedBytes != 15 || st.Pressure != "steady" || st.Level != 0 {
		t.Fatalf("snapshot %+v", st)
	}
	if len(st.Accounts) != 2 || st.Accounts[0].Name != "a" || st.Accounts[1].Name != "b" {
		t.Fatalf("accounts not sorted: %+v", st.Accounts)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	g := NewGovernor(Config{Budget: 100, Metrics: metrics.NewRegistry()})
	g.Close()
	g.Close()
	// Accounts still tally after close; only relief stops.
	a := g.Account("late")
	a.Charge(50)
	if g.Used() != 50 {
		t.Fatalf("post-close charge lost: %d", g.Used())
	}
}
