package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms shared
// across subsystems: the broker, the watch hub, the caches, the work queues
// and the remote transport all register their instruments here, so one
// snapshot shows the whole pipeline — publishes in, deliveries out, and
// every resync or drop in between.
//
// Instruments are created on first use and live forever; callers resolve
// them once at construction time and hold the returned pointer, so the hot
// path is a single atomic add with no map lookup and no lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry used by subsystems whose
// configuration does not name one explicitly.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the default registry when r is nil — the idiom every
// subsystem config uses to resolve its Metrics field.
func (r *Registry) Or() *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// snapshot time — used for derived values like consumer-group lag, where
// keeping a stored gauge current would add work to the hot path.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// GaugeValue reads the named gauge's current value, whether it is a stored
// gauge or a registered gauge function (evaluated here, with the same
// panic-to--1 guard Snapshot applies). ok is false when no gauge of either
// form carries the name. Pollers (the flight recorder's detectors) use this
// to sample one derived gauge without paying for a whole Snapshot.
func (r *Registry) GaugeValue(name string) (v int64, ok bool) {
	r.mu.RLock()
	g := r.gauges[name]
	fn := r.gaugeFns[name]
	r.mu.RUnlock()
	if g != nil {
		return g.Value(), true
	}
	if fn != nil {
		return evalGaugeFn(fn), true
	}
	return 0, false
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time copy of every instrument's value.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]Snapshot
}

// Snapshot captures every instrument. Gauge functions are evaluated here;
// a panicking function reports -1 rather than killing the scrape.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		fns[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(fns)),
		Histograms: make(map[string]Snapshot, len(hists)),
	}
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, fn := range fns {
		snap.Gauges[n] = evalGaugeFn(fn)
	}
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

func evalGaugeFn(fn func() int64) (v int64) {
	defer func() {
		if recover() != nil {
			v = -1
		}
	}()
	return fn()
}

// WriteTo renders the registry in a /metrics-style plain-text format, one
// instrument per line, sorted by name: counters and gauges as `name value`,
// histograms as `name count=N mean=M p50=... p90=... p99=... max=...`.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	var sb strings.Builder
	for _, n := range sortedKeys(snap.Counters) {
		fmt.Fprintf(&sb, "%s %d\n", n, snap.Counters[n])
	}
	for _, n := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(&sb, "%s %d\n", n, snap.Gauges[n])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := snap.Histograms[n]
		fmt.Fprintf(&sb, "%s count=%d mean=%.0f p50=%d p90=%d p99=%d max=%d\n",
			n, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the registry dump to a string.
func (r *Registry) String() string {
	var sb strings.Builder
	r.WriteTo(&sb)
	return sb.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
