// Package metrics provides the lightweight instrumentation used by every
// experiment harness: atomic counters and gauges, log-bucketed latency
// histograms with quantile estimation, and fixed-width table rendering for
// the paper-style result tables in EXPERIMENTS.md.
//
// The package is deliberately allocation-light so that instrumenting the
// pubsub broker or the watch hub does not distort the measurements it exists
// to take.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (delta may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max atomically raises the gauge to n if n is larger.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// histBuckets is the number of sub-buckets per power of two. 16 sub-buckets
// give ~6% relative error on quantiles, plenty for shape comparisons.
const histSubBuckets = 16

// Histogram records positive int64 observations (typically nanoseconds) in
// logarithmic buckets. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int32]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int32]int64), min: math.MaxInt64}
}

// bucketOf maps v to a logarithmic bucket index.
func bucketOf(v int64) int32 {
	if v < 1 {
		v = 1
	}
	exp := 63 - int32(leadingZeros(uint64(v)))
	// Sub-bucket within the power of two.
	var sub int64
	if exp > 4 {
		sub = (v >> (exp - 4)) & (histSubBuckets - 1)
	} else {
		sub = v & (histSubBuckets - 1)
	}
	return exp*histSubBuckets + int32(sub)
}

// bucketLow returns a representative value (lower bound) for bucket index b.
func bucketLow(b int32) int64 {
	exp := b / histSubBuckets
	sub := int64(b % histSubBuckets)
	if exp > 4 {
		return (1 << uint(exp)) | (sub << uint(exp-4))
	}
	return (1 << uint(exp)) | sub
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1). Within-bucket error is
// bounded by the sub-bucket width (~6%).
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	idxs := make([]int32, 0, len(h.buckets))
	for b := range h.buckets {
		idxs = append(idxs, b)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var seen int64
	for _, b := range idxs {
		seen += h.buckets[b]
		if seen > target {
			return bucketLow(b)
		}
	}
	return h.max
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count         int64
	Mean          float64
	Min, P50, P90 int64
	P99, Max      int64
}

// Snapshot returns a summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
	h.mu.Lock()
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	h.mu.Unlock()
	return s
}

// DurString formats a nanosecond value as a human duration.
func DurString(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
