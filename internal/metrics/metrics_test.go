package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	g.Max(5) // no-op
	g.Max(100)
	if got := g.Value(); got != 100 {
		t.Fatalf("after Max, Value = %d, want 100", got)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if mean := h.Mean(); mean < 500 || mean > 501 {
		t.Fatalf("Mean = %f, want ~500.5", mean)
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	// p50 within bucket error of 500.
	if s.P50 < 400 || s.P50 > 600 {
		t.Fatalf("P50 = %d, want ~500", s.P50)
	}
	if s.P99 < 900 || s.P99 > 1100 {
		t.Fatalf("P99 = %d, want ~990", s.P99)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 200; i++ {
			h.Observe(rng.Int63n(1 << 40))
		}
		last := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const v = 123456789
	h.Observe(v)
	got := h.Quantile(0.5)
	rel := float64(v-got) / float64(v)
	if rel < 0 || rel > 0.07 {
		t.Fatalf("bucket lower bound %d too far from %d (rel %.3f)", got, v, rel)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 500; j++ {
				h.Observe(base + j)
			}
		}(int64(i * 1000))
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("Count = %d, want 2000", h.Count())
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(time.Millisecond)
	if h.Snapshot().Min != int64(time.Millisecond) {
		t.Fatal("duration not recorded in nanoseconds")
	}
	if s := DurString(int64(1500 * time.Microsecond)); s != "1.5ms" {
		t.Fatalf("DurString = %q", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0 demo", "system", "lost", "p99")
	tb.AddRow("pubsub", 120, "4ms")
	tb.AddRow("watch", 0, "900µs")
	tb.AddNote("lower is better")
	out := tb.String()
	for _, want := range []string{"== E0 demo ==", "system", "pubsub", "watch", "note: lower is better"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and both data rows align on the first column width.
	if !strings.HasPrefix(lines[1], "system") || !strings.HasPrefix(lines[3], "pubsub") {
		t.Errorf("unexpected layout:\n%s", out)
	}
}

func TestTableFloatFormat(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(3.14159)
	tb.AddRow(42.5)
	tb.AddRow(123456.0)
	out := tb.String()
	for _, want := range []string{"0", "3.142", "42.5", "123456"} {
		if !strings.Contains(out, want) {
			t.Errorf("float formatting missing %q in:\n%s", want, out)
		}
	}
}
