package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	if c != r.Counter("a_total") {
		t.Fatal("counter not interned")
	}
	g := r.Gauge("a_depth")
	if g != r.Gauge("a_depth") {
		t.Fatal("gauge not interned")
	}
	h := r.Histogram("a_lat")
	if h != r.Histogram("a_lat") {
		t.Fatal("histogram not interned")
	}
	c.Add(3)
	g.Set(7)
	h.Observe(100)
	snap := r.Snapshot()
	if snap.Counters["a_total"] != 3 {
		t.Fatalf("counter = %d, want 3", snap.Counters["a_total"])
	}
	if snap.Gauges["a_depth"] != 7 {
		t.Fatalf("gauge = %d, want 7", snap.Gauges["a_depth"])
	}
	if snap.Histograms["a_lat"].Count != 1 {
		t.Fatalf("hist count = %d, want 1", snap.Histograms["a_lat"].Count)
	}
}

func TestRegistryOr(t *testing.T) {
	var nilReg *Registry
	if nilReg.Or() != Default() {
		t.Fatal("nil.Or() should resolve to the default registry")
	}
	r := NewRegistry()
	if r.Or() != r {
		t.Fatal("non-nil.Or() should return itself")
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.GaugeFunc("derived", func() int64 { return v + 1 })
	if got := r.Snapshot().Gauges["derived"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
	r.GaugeFunc("boom", func() int64 { panic("scrape must survive") })
	if got := r.Snapshot().Gauges["boom"]; got != -1 {
		t.Fatalf("panicking gauge func = %d, want -1", got)
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("depth").Set(5)
	r.Histogram("lat_ns").Observe(1000)
	out := r.String()
	for _, want := range []string{"a_total 1", "z_total 2", "depth 5", "lat_ns count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Counters render sorted.
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatalf("dump not sorted:\n%s", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_lat").Observe(int64(j + 1))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["shared_total"] != 8000 {
		t.Fatalf("counter = %d, want 8000", snap.Counters["shared_total"])
	}
	if snap.Histograms["shared_lat"].Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", snap.Histograms["shared_lat"].Count)
	}
}
