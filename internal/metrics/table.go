package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned plain-text table,
// the format used for every experiment's output (and recorded verbatim in
// EXPERIMENTS.md).
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// TableData is the machine-readable form of a Table.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Data returns the table's contents as plain data (copies, safe to retain).
func (t *Table) Data() TableData {
	d := TableData{Title: t.title, Headers: append([]string(nil), t.headers...)}
	d.Rows = make([][]string, len(t.rows))
	for i, r := range t.rows {
		d.Rows[i] = append([]string(nil), r...)
	}
	d.Notes = append([]string(nil), t.notes...)
	return d
}

// MarshalJSON renders the table as its Data form, so result structs that
// embed a *Table serialize cleanly.
func (t *Table) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(t.Data())
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
