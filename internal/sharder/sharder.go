// Package sharder implements a Slicer/Shard-Manager-style auto-sharder: it
// dynamically assigns key ranges to pods, splits and moves ranges in
// response to load and membership changes, and notifies interested parties
// of assignment changes — each with its own configurable propagation delay.
//
// Two properties matter for the paper's arguments:
//
//   - Assignments are *dynamic key ranges*, which pubsub's static key-hash →
//     partition → member routing cannot follow (§3.1, §3.2.2). The watch
//     model's range-scoped subscriptions can.
//
//   - Different observers learn about a reassignment at different times. The
//     Figure 2 race exists precisely because the new owner pod can learn
//     about a handoff before the pubsub system's routing does. The
//     per-subscriber notification delay models that skew directly.
//
// An optional lease mode serializes handoffs (at most one owner at a time,
// with an ownerless gap) — the mitigation §3.2.2 describes, whose
// availability cost experiment E6 measures.
package sharder

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/flightrec"
	"unbundle/internal/keyspace"
)

// Pod identifies a serving process.
type Pod string

// NoPod is returned when a key currently has no owner (lease gap, or no pods).
const NoPod Pod = ""

// Assignment maps one range to its owner. Generation increases with every
// assignment-table change, so observers can order what they see.
type Assignment struct {
	Range      keyspace.Range
	Pod        Pod
	Generation int64
	// ActiveAt is when the owner may begin serving. In lease mode a moved
	// range's new owner activates only after the old lease expires.
	ActiveAt time.Time
}

// Table is a complete assignment snapshot, sorted by range, covering the
// entire keyspace.
type Table struct {
	Generation  int64
	Assignments []Assignment
}

// Owner returns the pod owning k at time now (NoPod during a lease gap).
func (t Table) Owner(k keyspace.Key, now time.Time) Pod {
	for _, a := range t.Assignments {
		if a.Range.Contains(k) {
			if now.Before(a.ActiveAt) {
				return NoPod
			}
			return a.Pod
		}
	}
	return NoPod
}

// RangesOf returns the ranges owned by pod in this table (regardless of
// activation time).
func (t Table) RangesOf(pod Pod) []keyspace.Range {
	var out []keyspace.Range
	for _, a := range t.Assignments {
		if a.Pod == pod {
			out = append(out, a.Range)
		}
	}
	return out
}

// Config tunes the sharder.
type Config struct {
	// Clock drives activation times and notification delays.
	Clock clockwork.Clock
	// LeaseDuration, when positive, enables lease mode: a moved range has no
	// active owner until this long after the move. Zero disables leases (the
	// new owner is active immediately — and the old owner may still think it
	// owns the range until its notification arrives).
	LeaseDuration time.Duration
	// InitialShards is how many ranges the keyspace starts split into
	// (default: one per pod, minimum 1).
	InitialShards int
	// CoalesceRanges merges adjacent same-owner ranges after every change,
	// as production sharders do, bounding table fragmentation under heavy
	// move traffic.
	CoalesceRanges bool
	// Recorder, when non-nil, receives one flight record per assignment-table
	// change that moved ranges, so black-box dumps can correlate routing churn
	// with the watch-side symptoms it causes.
	Recorder *flightrec.Recorder
}

// Sharder assigns key ranges to pods.
type Sharder struct {
	clock    clockwork.Clock
	lease    time.Duration
	coalesce bool
	rec      *flightrec.Recorder

	mu         sync.Mutex
	asgs       []Assignment // sorted by Range.Low, covering the keyspace
	pods       []Pod        // sorted
	generation int64
	listeners  map[int]*listener
	nextLID    int
	moves      int64
	splits     int64
	closed     bool
}

// Errors returned by the sharder.
var (
	ErrNoSuchPod = errors.New("sharder: no such pod")
	ErrClosed    = errors.New("sharder: closed")
)

// New creates a sharder over the given pods with the keyspace split evenly
// (by the numeric-key convention) into InitialShards ranges.
func New(cfg Config, pods ...Pod) *Sharder {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	shards := cfg.InitialShards
	if shards <= 0 {
		shards = len(pods)
	}
	if shards <= 0 {
		shards = 1
	}
	s := &Sharder{
		clock:     cfg.Clock,
		lease:     cfg.LeaseDuration,
		coalesce:  cfg.CoalesceRanges,
		rec:       cfg.Recorder,
		listeners: make(map[int]*listener),
	}
	s.pods = append(s.pods, pods...)
	sort.Slice(s.pods, func(i, j int) bool { return s.pods[i] < s.pods[j] })
	now := s.clock.Now()
	for i, r := range keyspace.EvenSplit(shards*1000, shards) {
		pod := NoPod
		if len(s.pods) > 0 {
			pod = s.pods[i%len(s.pods)]
		}
		s.asgs = append(s.asgs, Assignment{Range: r, Pod: pod, Generation: 1, ActiveAt: now})
	}
	s.generation = 1
	return s
}

// Subscribe registers fn to receive every future assignment table, each
// delivered delay after the change occurs (modelling propagation skew).
// Tables are delivered in order on a dedicated goroutine. The current table
// is delivered immediately as the first notification. Returns an unsubscribe
// function.
func (s *Sharder) Subscribe(delay time.Duration, fn func(Table)) (unsubscribe func()) {
	s.mu.Lock()
	id := s.nextLID
	s.nextLID++
	l := newListener(s.clock, delay, fn)
	s.listeners[id] = l
	l.enqueue(s.tableLocked(), s.clock.Now()) // immediate initial table
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		if ll, ok := s.listeners[id]; ok {
			delete(s.listeners, id)
			ll.stop()
		}
		s.mu.Unlock()
	}
}

func (s *Sharder) tableLocked() Table {
	t := Table{Generation: s.generation, Assignments: make([]Assignment, len(s.asgs))}
	copy(t.Assignments, s.asgs)
	return t
}

// Table returns the current assignment snapshot.
func (s *Sharder) Table() Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tableLocked()
}

// Owner returns the pod currently serving k (NoPod during a lease gap).
// Unlike Table().Owner it does not copy the assignment table, so it is the
// right call on read hot paths.
func (s *Sharder) Owner(k keyspace.Key) Pod {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.asgs {
		if a.Range.Contains(k) {
			if now.Before(a.ActiveAt) {
				return NoPod
			}
			return a.Pod
		}
	}
	return NoPod
}

// notifyLocked bumps the generation and fans the new table out.
func (s *Sharder) notifyLocked() {
	if s.coalesce {
		s.coalesceLocked()
	}
	s.generation++
	for i := range s.asgs {
		s.asgs[i].Generation = s.generation
	}
	t := s.tableLocked()
	now := s.clock.Now()
	for _, l := range s.listeners {
		l.enqueue(t, now)
	}
}

// coalesceLocked merges adjacent assignments with the same owner, provided
// their activation states agree: either identical ActiveAt (same lease
// window) or both already active.
func (s *Sharder) coalesceLocked() {
	now := s.clock.Now()
	out := s.asgs[:0]
	for _, a := range s.asgs {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			bothActive := !now.Before(prev.ActiveAt) && !now.Before(a.ActiveAt)
			if prev.Pod == a.Pod && prev.Range.Adjacent(a.Range) &&
				(prev.ActiveAt.Equal(a.ActiveAt) || bothActive) {
				prev.Range = prev.Range.Union(a.Range)
				if a.ActiveAt.After(prev.ActiveAt) {
					prev.ActiveAt = a.ActiveAt
				}
				continue
			}
		}
		out = append(out, a)
	}
	s.asgs = out
}

// MoveRange reassigns the exact range r to pod. Ranges are split as needed
// so r's boundaries exist. In lease mode the new owner activates after the
// lease duration.
func (s *Sharder) MoveRange(r keyspace.Range, to Pod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.hasPodLocked(to) {
		return fmt.Errorf("%w: %q", ErrNoSuchPod, to)
	}
	s.splitAtLocked(r.Low)
	if r.High < keyspace.Inf { // bounded: the upper boundary must exist too
		s.splitAtLocked(r.High)
	}
	now := s.clock.Now()
	activeAt := now
	changed := false
	movesBefore := s.moves
	for i := range s.asgs {
		a := &s.asgs[i]
		if !r.ContainsRange(a.Range) {
			continue
		}
		if a.Pod == to {
			continue
		}
		if s.lease > 0 {
			a.ActiveAt = now.Add(s.lease)
		} else {
			a.ActiveAt = activeAt
		}
		a.Pod = to
		changed = true
		s.moves++
	}
	if changed {
		moved := s.moves - movesBefore
		s.notifyLocked()
		s.recordMovesLocked(moved, "move→"+string(to))
	}
	return nil
}

// recordMovesLocked emits one range-move flight record covering every range
// moved by the table change just notified — churn is legible as one event
// per generation, not one per range.
func (s *Sharder) recordMovesLocked(moved int64, detail string) {
	s.rec.Record(flightrec.KindRangeMove, flightrec.Event{
		Comp: "sharder", Version: uint64(s.generation), N: moved, Detail: detail,
	})
}

// Split introduces a shard boundary at key k (no-op if one exists).
func (s *Sharder) Split(k keyspace.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.splitAtLocked(k) {
		s.splits++
		s.notifyLocked()
	}
}

func (s *Sharder) splitAtLocked(k keyspace.Key) bool {
	if k == "" || k >= keyspace.Inf {
		return false
	}
	for i, a := range s.asgs {
		if !a.Range.Contains(k) || a.Range.Low == k {
			continue
		}
		left, right := a.Range.Split(k)
		la, ra := a, a
		la.Range, ra.Range = left, right
		s.asgs = append(s.asgs[:i], append([]Assignment{la, ra}, s.asgs[i+1:]...)...)
		return true
	}
	return false
}

// AddPod adds a pod and rebalances: ranges are redistributed round-robin
// over the sorted pod list; only ranges whose owner changes move.
func (s *Sharder) AddPod(p Pod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.hasPodLocked(p) {
		return fmt.Errorf("sharder: pod %q already present", p)
	}
	s.pods = append(s.pods, p)
	sort.Slice(s.pods, func(i, j int) bool { return s.pods[i] < s.pods[j] })
	s.rebalanceLocked()
	return nil
}

// RemovePod drains a pod: its ranges move to the remaining pods.
func (s *Sharder) RemovePod(p Pod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.hasPodLocked(p) {
		return fmt.Errorf("%w: %q", ErrNoSuchPod, p)
	}
	for i, pod := range s.pods {
		if pod == p {
			s.pods = append(s.pods[:i], s.pods[i+1:]...)
			break
		}
	}
	s.rebalanceLocked()
	return nil
}

func (s *Sharder) hasPodLocked(p Pod) bool {
	for _, pod := range s.pods {
		if pod == p {
			return true
		}
	}
	return false
}

// rebalanceLocked redistributes ranges with minimal movement (sticky
// assignment, as Slicer does): only as many ranges move as are needed to
// even out counts and to drain departed pods. Minimal movement is what
// preserves consumer affinity across membership changes — the property
// pubsub's modulo-style rebalancing lacks (§3.2.4).
func (s *Sharder) rebalanceLocked() {
	now := s.clock.Now()
	changed := false
	movesBefore := s.moves
	assign := func(i int, want Pod) {
		if s.asgs[i].Pod == want {
			return
		}
		s.asgs[i].Pod = want
		if s.lease > 0 {
			s.asgs[i].ActiveAt = now.Add(s.lease)
		} else {
			s.asgs[i].ActiveAt = now
		}
		s.moves++
		changed = true
	}
	if len(s.pods) == 0 {
		for i := range s.asgs {
			assign(i, NoPod)
		}
		if changed {
			moved := s.moves - movesBefore
			s.notifyLocked()
			s.recordMovesLocked(moved, "rebalance")
		}
		return
	}
	valid := make(map[Pod]bool, len(s.pods))
	for _, p := range s.pods {
		valid[p] = true
	}
	count := make(map[Pod]int, len(s.pods))
	var orphans []int // ranges owned by departed pods (or unowned)
	for i, a := range s.asgs {
		if valid[a.Pod] {
			count[a.Pod]++
		} else {
			orphans = append(orphans, i)
		}
	}
	// Capacity per pod: ceil for the first (R mod n) pods in sorted order.
	n := len(s.pods)
	base := len(s.asgs) / n
	extra := len(s.asgs) % n
	cap := make(map[Pod]int, n)
	for i, p := range s.pods {
		cap[p] = base
		if i < extra {
			cap[p]++
		}
	}
	// Shed overflow from pods above capacity.
	for i, a := range s.asgs {
		if valid[a.Pod] && count[a.Pod] > cap[a.Pod] {
			count[a.Pod]--
			orphans = append(orphans, i)
		}
	}
	// Hand orphans to pods with spare capacity, in sorted-pod order.
	for _, idx := range orphans {
		for _, p := range s.pods {
			if count[p] < cap[p] {
				assign(idx, p)
				count[p]++
				break
			}
		}
	}
	if changed {
		moved := s.moves - movesBefore
		s.notifyLocked()
		s.recordMovesLocked(moved, "rebalance")
	}
}

// Balance applies load reports: the single hottest range (by reported load)
// is split at its midpoint when its load exceeds splitThreshold, and moved
// to the least-loaded pod otherwise. Load is an opaque per-range scalar
// (requests, bytes, anything). Returns whether the table changed.
func (s *Sharder) Balance(load map[Pod]float64, hottest keyspace.Range, hotLoad, splitThreshold float64, splitAt keyspace.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.pods) == 0 {
		return false
	}
	if hotLoad > splitThreshold && hottest.Contains(splitAt) && splitAt != hottest.Low {
		if s.splitAtLocked(splitAt) {
			s.splits++
			s.notifyLocked()
			return true
		}
		return false
	}
	// Move the hottest range to the coolest pod.
	coolest := s.pods[0]
	for _, p := range s.pods[1:] {
		if load[p] < load[coolest] {
			coolest = p
		}
	}
	now := s.clock.Now()
	for i := range s.asgs {
		if s.asgs[i].Range == hottest && s.asgs[i].Pod != coolest {
			s.asgs[i].Pod = coolest
			if s.lease > 0 {
				s.asgs[i].ActiveAt = now.Add(s.lease)
			} else {
				s.asgs[i].ActiveAt = now
			}
			s.moves++
			s.notifyLocked()
			s.recordMovesLocked(1, "balance→"+string(coolest))
			return true
		}
	}
	return false
}

// SharderStats reports counters.
type SharderStats struct {
	Generation int64
	Moves      int64
	Splits     int64
	Ranges     int
	Pods       int
}

// Stats returns counters.
func (s *Sharder) Stats() SharderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SharderStats{
		Generation: s.generation,
		Moves:      s.moves,
		Splits:     s.splits,
		Ranges:     len(s.asgs),
		Pods:       len(s.pods),
	}
}

// Close stops all listener dispatchers.
func (s *Sharder) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, l := range s.listeners {
		l.stop()
		delete(s.listeners, id)
	}
}

// listener delivers tables in order after a fixed delay.
type listener struct {
	clock clockwork.Clock
	delay time.Duration
	fn    func(Table)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []delayedTable
	stopped  bool
	stopc    chan struct{}
	stopOnce sync.Once
}

type delayedTable struct {
	table     Table
	deliverAt time.Time
}

func newListener(clock clockwork.Clock, delay time.Duration, fn func(Table)) *listener {
	l := &listener{clock: clock, delay: delay, fn: fn, stopc: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

func (l *listener) enqueue(t Table, now time.Time) {
	l.mu.Lock()
	l.queue = append(l.queue, delayedTable{table: t, deliverAt: now.Add(l.delay)})
	l.cond.Signal()
	l.mu.Unlock()
}

func (l *listener) stop() {
	l.mu.Lock()
	l.stopped = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stopOnce.Do(func() { close(l.stopc) })
}

func (l *listener) run() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.stopped {
			l.cond.Wait()
		}
		if l.stopped {
			l.mu.Unlock()
			return
		}
		item := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		// Wait out the propagation delay on the (possibly fake) clock.
		for {
			now := l.clock.Now()
			if !now.Before(item.deliverAt) {
				break
			}
			timer := l.clock.NewTimer(item.deliverAt.Sub(now))
			select {
			case <-timer.C():
			case <-l.stopc:
				timer.Stop()
				return
			}
		}
		select {
		case <-l.stopc:
			return
		default:
		}
		l.fn(item.table)
	}
}
