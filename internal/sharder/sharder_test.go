package sharder

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInitialAssignmentCoversKeyspace(t *testing.T) {
	s := New(Config{}, "p0", "p1", "p2")
	defer s.Close()
	tbl := s.Table()
	set := keyspace.NewRangeSet()
	owners := map[Pod]int{}
	for _, a := range tbl.Assignments {
		set = set.Add(a.Range)
		owners[a.Pod]++
	}
	if !set.ContainsRange(keyspace.Full()) {
		t.Fatalf("assignments do not cover keyspace: %v", set)
	}
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	for i := 0; i < 3000; i += 17 {
		if s.Owner(keyspace.NumericKey(i)) == NoPod {
			t.Fatalf("key %d unowned", i)
		}
	}
}

func TestMoveRangeSplitsAndReassigns(t *testing.T) {
	s := New(Config{InitialShards: 1}, "p0", "p1")
	defer s.Close()
	k := keyspace.NumericKey(100)
	before := s.Owner(k)
	target := Pod("p1")
	if before == target {
		target = "p0"
	}
	r := keyspace.Range{Low: keyspace.NumericKey(50), High: keyspace.NumericKey(150)}
	if err := s.MoveRange(r, target); err != nil {
		t.Fatal(err)
	}
	if got := s.Owner(k); got != target {
		t.Fatalf("owner after move = %q, want %q", got, target)
	}
	// Keys outside the moved range keep their owner.
	if got := s.Owner(keyspace.NumericKey(10)); got != before {
		t.Fatalf("outside key moved: %q -> %q", before, got)
	}
	if err := s.MoveRange(r, "ghost"); err == nil {
		t.Fatal("move to unknown pod accepted")
	}
	st := s.Stats()
	if st.Moves == 0 || st.Ranges < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSplit(t *testing.T) {
	s := New(Config{InitialShards: 1}, "p0")
	defer s.Close()
	n0 := s.Stats().Ranges
	s.Split(keyspace.NumericKey(123))
	if got := s.Stats().Ranges; got != n0+1 {
		t.Fatalf("ranges = %d, want %d", got, n0+1)
	}
	s.Split(keyspace.NumericKey(123)) // idempotent
	if got := s.Stats().Ranges; got != n0+1 {
		t.Fatalf("duplicate split changed table: %d", got)
	}
	// Coverage preserved.
	set := keyspace.NewRangeSet()
	for _, a := range s.Table().Assignments {
		set = set.Add(a.Range)
	}
	if !set.ContainsRange(keyspace.Full()) {
		t.Fatal("split broke coverage")
	}
}

func TestAddRemovePodRebalances(t *testing.T) {
	s := New(Config{InitialShards: 6}, "p0", "p1")
	defer s.Close()
	if err := s.AddPod("p2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPod("p2"); err == nil {
		t.Fatal("duplicate AddPod accepted")
	}
	owners := map[Pod]int{}
	for _, a := range s.Table().Assignments {
		owners[a.Pod]++
	}
	if owners["p2"] == 0 {
		t.Fatalf("new pod got nothing: %v", owners)
	}
	if err := s.RemovePod("p0"); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Table().Assignments {
		if a.Pod == "p0" {
			t.Fatal("removed pod still owns ranges")
		}
	}
	if err := s.RemovePod("ghost"); err == nil {
		t.Fatal("removing unknown pod accepted")
	}
}

func TestSubscribeImmediateAndOrdered(t *testing.T) {
	s := New(Config{}, "p0", "p1")
	defer s.Close()
	var mu sync.Mutex
	var gens []int64
	unsub := s.Subscribe(0, func(tbl Table) {
		mu.Lock()
		gens = append(gens, tbl.Generation)
		mu.Unlock()
	})
	defer unsub()
	waitUntil(t, "initial table", func() bool { mu.Lock(); defer mu.Unlock(); return len(gens) == 1 })

	for i := 0; i < 5; i++ {
		s.Split(keyspace.NumericKey(100 + i))
	}
	waitUntil(t, "all updates", func() bool { mu.Lock(); defer mu.Unlock(); return len(gens) == 6 })
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(gens); i++ {
		if gens[i] <= gens[i-1] {
			t.Fatalf("generations out of order: %v", gens)
		}
	}
}

func TestSubscribeDelaySkew(t *testing.T) {
	// The Figure 2 ingredient: a fast observer (the new pod) and a slow
	// observer (the pubsub router) see the same move at different times.
	clock := clockwork.NewFake()
	s := New(Config{Clock: clock, InitialShards: 1}, "p0", "p1")
	defer s.Close()

	var mu sync.Mutex
	fastGen, slowGen := int64(0), int64(0)
	unsubFast := s.Subscribe(10*time.Millisecond, func(tbl Table) {
		mu.Lock()
		fastGen = tbl.Generation
		mu.Unlock()
	})
	defer unsubFast()
	unsubSlow := s.Subscribe(500*time.Millisecond, func(tbl Table) {
		mu.Lock()
		slowGen = tbl.Generation
		mu.Unlock()
	})
	defer unsubSlow()
	clock.Advance(time.Second) // initial tables land
	waitUntil(t, "initial delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fastGen == 1 && slowGen == 1
	})

	s.MoveRange(keyspace.NumericRange(0, 500), "p1")
	clock.Advance(20 * time.Millisecond)
	waitUntil(t, "fast observer", func() bool { mu.Lock(); defer mu.Unlock(); return fastGen == 2 })
	// The slow observer still sees the old world: the race window is open.
	mu.Lock()
	if slowGen != 1 {
		t.Fatalf("slow observer already updated: gen %d", slowGen)
	}
	mu.Unlock()
	clock.Advance(500 * time.Millisecond)
	waitUntil(t, "slow observer", func() bool { mu.Lock(); defer mu.Unlock(); return slowGen == 2 })
}

func TestLeaseModeOwnerlessWindow(t *testing.T) {
	clock := clockwork.NewFake()
	s := New(Config{Clock: clock, LeaseDuration: time.Minute, InitialShards: 1}, "p0", "p1")
	defer s.Close()
	k := keyspace.NumericKey(10)
	old := s.Owner(k)
	target := Pod("p1")
	if old == target {
		target = "p0"
	}
	s.MoveRange(keyspace.Full(), target)
	// During the lease window nobody owns the key: the availability price of
	// closing the invalidation race with leases.
	if got := s.Owner(k); got != NoPod {
		t.Fatalf("owner during lease window = %q, want none", got)
	}
	clock.Advance(time.Minute)
	if got := s.Owner(k); got != target {
		t.Fatalf("owner after lease = %q, want %q", got, target)
	}
}

func TestBalanceMovesHotRange(t *testing.T) {
	s := New(Config{InitialShards: 4}, "p0", "p1")
	defer s.Close()
	tbl := s.Table()
	hot := tbl.Assignments[0].Range
	hotOwner := tbl.Assignments[0].Pod
	other := Pod("p0")
	if hotOwner == other {
		other = "p1"
	}
	load := map[Pod]float64{hotOwner: 100, other: 1}
	if !s.Balance(load, hot, 50, 1000, "") {
		t.Fatal("balance did not move the hot range")
	}
	for _, a := range s.Table().Assignments {
		if a.Range == hot && a.Pod != other {
			t.Fatalf("hot range still on %q", a.Pod)
		}
	}
}

func TestBalanceSplitsVeryHotRange(t *testing.T) {
	s := New(Config{InitialShards: 2}, "p0", "p1")
	defer s.Close()
	tbl := s.Table()
	hot := tbl.Assignments[0].Range
	mid := keyspace.NumericKey(500)
	if !hot.Contains(mid) {
		t.Fatalf("test setup: %v does not contain %q", hot, string(mid))
	}
	before := s.Stats().Ranges
	if !s.Balance(map[Pod]float64{}, hot, 5000, 1000, mid) {
		t.Fatal("balance did not split")
	}
	if got := s.Stats().Ranges; got != before+1 {
		t.Fatalf("ranges = %d, want %d", got, before+1)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	s := New(Config{}, "p0")
	defer s.Close()
	var mu sync.Mutex
	count := 0
	unsub := s.Subscribe(0, func(Table) { mu.Lock(); count++; mu.Unlock() })
	waitUntil(t, "initial", func() bool { mu.Lock(); defer mu.Unlock(); return count == 1 })
	unsub()
	unsub() // idempotent
	s.Split(keyspace.NumericKey(5))
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("delivery after unsubscribe: %d", count)
	}
}

func TestCloseStopsEverything(t *testing.T) {
	s := New(Config{}, "p0")
	s.Subscribe(0, func(Table) {})
	s.Close()
	s.Close() // idempotent
	if err := s.MoveRange(keyspace.Full(), "p0"); err != ErrClosed {
		t.Fatalf("move after close = %v", err)
	}
	if err := s.AddPod("p9"); err != ErrClosed {
		t.Fatalf("add after close = %v", err)
	}
}

func TestTableOwnerHelpers(t *testing.T) {
	s := New(Config{InitialShards: 4}, "p0", "p1")
	defer s.Close()
	tbl := s.Table()
	now := time.Now().Add(time.Hour) // all active
	for _, a := range tbl.Assignments {
		if got := tbl.Owner(a.Range.Low, now); got != a.Pod {
			t.Fatalf("Owner(%q) = %q, want %q", string(a.Range.Low), got, a.Pod)
		}
	}
	r0 := tbl.RangesOf("p0")
	r1 := tbl.RangesOf("p1")
	if len(r0)+len(r1) != len(tbl.Assignments) {
		t.Fatalf("RangesOf split wrong: %d + %d != %d", len(r0), len(r1), len(tbl.Assignments))
	}
}

func TestStickyRebalanceMovesMinimally(t *testing.T) {
	s := New(Config{InitialShards: 12}, "p0", "p1", "p2")
	defer s.Close()
	before := map[keyspace.Key]Pod{}
	for _, a := range s.Table().Assignments {
		before[a.Range.Low] = a.Pod
	}
	if err := s.AddPod("p3"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, a := range s.Table().Assignments {
		if before[a.Range.Low] != a.Pod {
			moved++
		}
	}
	// 12 ranges over 4 pods: the new pod needs exactly 3; nothing else moves.
	if moved != 3 {
		t.Fatalf("sticky rebalance moved %d ranges, want 3", moved)
	}
	// Counts are balanced.
	counts := map[Pod]int{}
	for _, a := range s.Table().Assignments {
		counts[a.Pod]++
	}
	for p, c := range counts {
		if c != 3 {
			t.Fatalf("pod %q owns %d ranges, want 3 (%v)", p, c, counts)
		}
	}
}

func TestStickyRebalanceDrainsDepartedOnly(t *testing.T) {
	s := New(Config{InitialShards: 9}, "p0", "p1", "p2")
	defer s.Close()
	before := map[keyspace.Key]Pod{}
	for _, a := range s.Table().Assignments {
		before[a.Range.Low] = a.Pod
	}
	if err := s.RemovePod("p1"); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Table().Assignments {
		if a.Pod == "p1" {
			t.Fatal("departed pod still owns ranges")
		}
		// Survivors keep their ranges unless they came from p1 or overflow.
		if before[a.Range.Low] != "p1" && before[a.Range.Low] != a.Pod {
			// Allowed only if capacity rebalancing required it; with 9 ranges
			// moving from 3 to 2 pods (cap 5/4), survivors keep all 3 each.
			t.Fatalf("range %v moved from %q to %q unnecessarily",
				a.Range, before[a.Range.Low], a.Pod)
		}
	}
}

// TestQuickAssignmentsAlwaysPartitionKeyspace: after any sequence of splits,
// moves, and membership changes, the assignment table remains a disjoint
// cover of the whole keyspace.
func TestQuickAssignmentsAlwaysPartitionKeyspace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(Config{InitialShards: 4}, "p0", "p1")
		defer s.Close()
		pods := []Pod{"p0", "p1"}
		for i := 0; i < 30; i++ {
			switch rng.Intn(4) {
			case 0:
				s.Split(keyspace.NumericKey(rng.Intn(4000)))
			case 1:
				lo := rng.Intn(3900)
				target := pods[rng.Intn(len(pods))]
				s.MoveRange(keyspace.NumericRange(lo, lo+rng.Intn(90)+10), target)
			case 2:
				p := Pod(fmt.Sprintf("p%d", rng.Intn(5)+2))
				if s.AddPod(p) == nil {
					pods = append(pods, p)
				}
			case 3:
				if len(pods) > 1 {
					idx := rng.Intn(len(pods))
					if s.RemovePod(pods[idx]) == nil {
						pods = append(pods[:idx], pods[idx+1:]...)
					}
				}
			}
		}
		tbl := s.Table()
		cover := keyspace.NewRangeSet()
		for i, a := range tbl.Assignments {
			if a.Range.Empty() {
				return false
			}
			for j := i + 1; j < len(tbl.Assignments); j++ {
				if a.Range.Overlaps(tbl.Assignments[j].Range) {
					return false
				}
			}
			cover = cover.Add(a.Range)
		}
		return cover.ContainsRange(keyspace.Full())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceRanges(t *testing.T) {
	s := New(Config{InitialShards: 1, CoalesceRanges: true}, "p0", "p1")
	defer s.Close()
	// Carve a range out to p1 and back: with coalescing the table returns
	// to a single assignment per contiguous owner run.
	r := keyspace.NumericRange(100, 200)
	owner := s.Owner(keyspace.NumericKey(150))
	other := Pod("p1")
	if owner == other {
		other = "p0"
	}
	if err := s.MoveRange(r, other); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Ranges; got != 3 {
		t.Fatalf("ranges after carve = %d, want 3", got)
	}
	if err := s.MoveRange(r, owner); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Ranges; got != 1 {
		t.Fatalf("ranges after return = %d, want 1 (coalesced)", got)
	}
	// Coverage intact.
	set := keyspace.NewRangeSet()
	for _, a := range s.Table().Assignments {
		set = set.Add(a.Range)
	}
	if !set.ContainsRange(keyspace.Full()) {
		t.Fatal("coalescing broke coverage")
	}
}

func TestCoalesceBoundedUnderMoveStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(Config{InitialShards: 8, CoalesceRanges: true}, "p0", "p1", "p2", "p3")
	defer s.Close()
	pods := []Pod{"p0", "p1", "p2", "p3"}
	for i := 0; i < 500; i++ {
		lo := rng.Intn(7900)
		s.MoveRange(keyspace.NumericRange(lo, lo+rng.Intn(90)+10), pods[rng.Intn(4)])
	}
	// Without coalescing this storm would leave ~1000 ranges; with it the
	// table stays near the number of owner alternations.
	if got := s.Stats().Ranges; got > 300 {
		t.Fatalf("table fragmented to %d ranges despite coalescing", got)
	}
}
