package replication

import (
	"fmt"
	"testing"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
	"unbundle/internal/workload"
)

// runScript commits txns to a fresh source through the replicator, stepping
// appliers and sampling ACL pairs along the way. Returns the checker.
func runScript(t *testing.T, strategy Strategy, rounds int) (*Replicator, *Checker, *mvcc.Store) {
	t.Helper()
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: strategy, Seed: 7}, src)
	if err != nil {
		t.Fatal(err)
	}
	check := NewChecker(src)
	txns := workload.ACLScript(3, rounds, 6)
	round := 0
	for i, txn := range txns {
		_, err := src.Commit(func(tx *mvcc.Tx) error {
			for _, op := range txn.Ops {
				if op.Value == nil {
					tx.Delete(op.Key)
				} else {
					tx.Put(op.Key, op.Value)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		repl.Step(4)
		// Sample aggressively while the pipeline is mid-flight.
		if i%2 == 0 {
			for r := 0; r <= round && r < rounds; r++ {
				check.SampleACLPair(repl, r)
			}
		}
		if len(txn.Label) > 5 && txn.Label[:5] == "grant" {
			round++
		}
	}
	repl.Drain()
	for r := 0; r < rounds; r++ {
		check.SampleACLPair(repl, r)
	}
	return repl, check, src
}

func TestSerialIsConsistent(t *testing.T) {
	repl, check, _ := runScript(t, Serial, 10)
	defer repl.Close()
	if check.SnapshotViolations != 0 {
		t.Fatalf("serial produced %d snapshot violations", check.SnapshotViolations)
	}
	div, err := check.EventualDivergence(repl)
	if err != nil || div != 0 {
		t.Fatalf("serial diverged: %d (%v)", div, err)
	}
}

func TestPartitionedViolatesSnapshotNotEventual(t *testing.T) {
	var violations int64
	// The race is probabilistic per run; accumulate across seeds.
	for seed := int64(0); seed < 5; seed++ {
		src := mvcc.NewStore()
		repl, err := New(Config{Strategy: Partitioned, Partitions: 8, Seed: seed}, src)
		if err != nil {
			t.Fatal(err)
		}
		check := NewChecker(src)
		txns := workload.ACLScript(seed, 20, 6)
		round := 0
		for _, txn := range txns {
			src.Commit(func(tx *mvcc.Tx) error {
				for _, op := range txn.Ops {
					if op.Value == nil {
						tx.Delete(op.Key)
					} else {
						tx.Put(op.Key, op.Value)
					}
				}
				return nil
			})
			repl.Step(3)
			for r := 0; r <= round && r < 20; r++ {
				check.SampleACLPair(repl, r)
			}
			if len(txn.Label) > 5 && txn.Label[:5] == "grant" {
				round++
			}
		}
		repl.Drain()
		// Eventual consistency holds: per-key order is preserved.
		div, err := check.EventualDivergence(repl)
		if err != nil || div != 0 {
			t.Fatalf("partitioned diverged eventually: %d (%v)", div, err)
		}
		violations += check.SnapshotViolations
		repl.Close()
	}
	if violations == 0 {
		t.Fatal("partitioned replication never violated snapshot consistency — the anomaly did not reproduce")
	}
}

func TestConcurrentBlindViolatesEventual(t *testing.T) {
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: ConcurrentBlind, Window: 64, Seed: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	// Rapid rewrites of a small key set inside the permutation window:
	// reordering must leave stale winners or resurrected deletes.
	for i := 0; i < 400; i++ {
		k := keyspace.NumericKey(i % 5)
		if i%17 == 0 {
			src.Delete(k)
		} else {
			src.Put(k, []byte(fmt.Sprintf("v%d", i)))
		}
		// Step rarely, with a small budget: the applier pool runs behind the
		// producer, so the permutation window has rewrites to reorder.
		if i%10 == 0 {
			repl.Step(4)
		}
	}
	repl.Drain()
	check := NewChecker(src)
	div, err := check.EventualDivergence(repl)
	if err != nil {
		t.Fatal(err)
	}
	if div == 0 {
		t.Fatal("blind concurrent apply converged — reordering had no effect?")
	}
}

func TestConcurrentCheckedConvergesButViolatesSnapshot(t *testing.T) {
	// Eventual consistency restored by version checks + tombstones.
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: ConcurrentChecked, Window: 64, Seed: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		k := keyspace.NumericKey(i % 5)
		if i%17 == 0 {
			src.Delete(k)
		} else {
			src.Put(k, []byte(fmt.Sprintf("v%d", i)))
		}
		if i%10 == 0 {
			repl.Step(4)
		}
	}
	repl.Drain()
	check := NewChecker(src)
	div, err := check.EventualDivergence(repl)
	if err != nil || div != 0 {
		t.Fatalf("checked concurrent diverged: %d (%v)", div, err)
	}
	repl.Close()

	// But snapshot consistency is still violated on the ACL workload.
	var violations int64
	for seed := int64(0); seed < 5; seed++ {
		src := mvcc.NewStore()
		repl, err := New(Config{Strategy: ConcurrentChecked, Window: 64, Seed: seed}, src)
		if err != nil {
			t.Fatal(err)
		}
		check := NewChecker(src)
		txns := workload.ACLScript(seed, 20, 6)
		round := 0
		for i, txn := range txns {
			src.Commit(func(tx *mvcc.Tx) error {
				for _, op := range txn.Ops {
					if op.Value == nil {
						tx.Delete(op.Key)
					} else {
						tx.Put(op.Key, op.Value)
					}
				}
				return nil
			})
			// Step less often than commits arrive so the racing worker pool
			// has a backlog to permute.
			if i%3 == 0 {
				repl.Step(2)
			}
			for r := 0; r <= round && r < 20; r++ {
				check.SampleACLPair(repl, r)
			}
			if len(txn.Label) > 5 && txn.Label[:5] == "grant" {
				round++
			}
		}
		repl.Drain()
		violations += check.SnapshotViolations
		repl.Close()
	}
	if violations == 0 {
		t.Fatal("version checks should not restore snapshot consistency, yet no violations observed")
	}
}

func TestWatchIsSnapshotConsistentAndConverges(t *testing.T) {
	repl, check, _ := runScript(t, Watch, 10)
	defer repl.Close()
	if check.SnapshotViolations != 0 {
		t.Fatalf("watch produced %d snapshot violations over %d samples",
			check.SnapshotViolations, check.PairSamples)
	}
	div, err := check.EventualDivergence(repl)
	if err != nil || div != 0 {
		t.Fatalf("watch diverged: %d (%v)", div, err)
	}
	if repl.Applied() == 0 {
		t.Fatal("watch applied nothing")
	}
}

func TestWatchExternalizationIsAlwaysPointInTime(t *testing.T) {
	// Stronger than the ACL predicate: every externalized pair must match
	// some exact source version, verified against full history.
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: Watch, Partitions: 4, Seed: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	check := NewChecker(src)
	a, b := keyspace.NumericKey(1), keyspace.NumericKey(3001) // different shards
	for i := 0; i < 100; i++ {
		src.Commit(func(tx *mvcc.Tx) error { // cross-shard transaction
			tx.Put(a, []byte(fmt.Sprintf("a%d", i)))
			tx.Put(b, []byte(fmt.Sprintf("b%d", i)))
			return nil
		})
		av, bv, aok, bok := repl.ReadPair(a, b)
		consistent, err := check.VerifyPairAgainstHistory(a, b, av, bv, aok, bok)
		if err != nil {
			t.Fatal(err)
		}
		if !consistent {
			t.Fatalf("iteration %d externalized (%q,%v)/(%q,%v): no source version matches",
				i, av, aok, bv, bok)
		}
	}
	repl.Drain()
}

func TestEncodeDecodeEvent(t *testing.T) {
	cases := []core.ChangeEvent{
		{Key: "k", Mut: core.Mutation{Op: core.OpPut, Value: []byte("hello")}, Version: 42},
		{Key: "k", Mut: core.Mutation{Op: core.OpPut, Value: []byte{}}, Version: 1},
		{Key: "gone", Mut: core.Mutation{Op: core.OpDelete}, Version: 7},
	}
	for _, ev := range cases {
		back, err := DecodeEvent(ev.Key, EncodeEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		if back.Version != ev.Version || back.Mut.Op != ev.Mut.Op || string(back.Mut.Value) != string(ev.Mut.Value) {
			t.Fatalf("roundtrip: %+v vs %+v", ev, back)
		}
	}
	if _, err := DecodeEvent("k", []byte("short")); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestTargetVersionChecks(t *testing.T) {
	tgt := NewTarget(true)
	tgt.Apply(core.ChangeEvent{Key: "k", Mut: core.Mutation{Op: core.OpPut, Value: []byte("new")}, Version: 10})
	tgt.Apply(core.ChangeEvent{Key: "k", Mut: core.Mutation{Op: core.OpPut, Value: []byte("old")}, Version: 5})
	if v, ok := tgt.Read("k"); !ok || string(v) != "new" {
		t.Fatalf("stale overwrite: %q/%v", v, ok)
	}
	// Tombstone beats an older reordered put.
	tgt.Apply(core.ChangeEvent{Key: "g", Mut: core.Mutation{Op: core.OpDelete}, Version: 20})
	tgt.Apply(core.ChangeEvent{Key: "g", Mut: core.Mutation{Op: core.OpPut, Value: []byte("zombie")}, Version: 15})
	if _, ok := tgt.Read("g"); ok {
		t.Fatal("resurrected delete")
	}
	_, stale := tgt.Applied()
	if stale != 2 {
		t.Fatalf("stale count = %d", stale)
	}
	// Blind target: last arrival wins, deletes can resurrect.
	blind := NewTarget(false)
	blind.Apply(core.ChangeEvent{Key: "g", Mut: core.Mutation{Op: core.OpDelete}, Version: 20})
	blind.Apply(core.ChangeEvent{Key: "g", Mut: core.Mutation{Op: core.OpPut, Value: []byte("zombie")}, Version: 15})
	if _, ok := blind.Read("g"); !ok {
		t.Fatal("blind target should have resurrected the row")
	}
}

func TestWatchTargetFrontierGating(t *testing.T) {
	wt := NewWatchTarget()
	wt.Apply(core.ChangeEvent{Key: "a", Mut: core.Mutation{Op: core.OpPut, Value: []byte("a1")}, Version: 1})
	wt.Apply(core.ChangeEvent{Key: "a", Mut: core.Mutation{Op: core.OpPut, Value: []byte("a2")}, Version: 5})
	// No progress yet: nothing is externalized.
	if _, ok := wt.Read("a"); ok {
		t.Fatal("read before any progress")
	}
	wt.Progress(keyspace.Full(), 1)
	if v, ok := wt.Read("a"); !ok || string(v) != "a1" {
		t.Fatalf("read at frontier 1 = %q/%v", v, ok)
	}
	wt.Progress(keyspace.Full(), 5)
	if v, _ := wt.Read("a"); string(v) != "a2" {
		t.Fatalf("read at frontier 5 = %q", v)
	}
	// Partial progress gates on the minimum across ranges.
	wt2 := NewWatchTarget()
	wt2.Apply(core.ChangeEvent{Key: "a", Mut: core.Mutation{Op: core.OpPut, Value: []byte("x")}, Version: 3})
	wt2.Progress(keyspace.Range{Low: "", High: "m"}, 3)
	if wt2.ExternalVersion() != core.NoVersion {
		t.Fatalf("partial coverage externalized %v", wt2.ExternalVersion())
	}
}

// TestWatchReplicatorSurvivesHubWipe injects the watch system's worst
// failure — total soft-state loss mid-replication — and requires the
// replicator to recover via resync and still converge exactly.
func TestWatchReplicatorSurvivesHubWipe(t *testing.T) {
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: Watch, Partitions: 4, Seed: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	for i := 0; i < 200; i++ {
		k := keyspace.NumericKey(i % 20)
		if i%13 == 0 {
			src.Delete(k)
		} else {
			src.Put(k, []byte(fmt.Sprintf("v%d", i)))
		}
		if i == 100 {
			repl.Hub().Wipe() // lose every retained event and the frontier
		}
	}
	repl.Drain()
	if repl.Resyncs() == 0 {
		t.Fatal("wipe did not trigger resyncs")
	}
	check := NewChecker(src)
	div, err := check.EventualDivergence(repl)
	if err != nil {
		t.Fatal(err)
	}
	if div != 0 {
		t.Fatalf("diverged after wipe recovery: %d keys", div)
	}
}

// TestWatchReplicatorRecoversDeletes: a key deleted while the watcher was
// dead must not survive in the target after recovery (the snapshot, not
// tombstone bookkeeping, is the authority).
func TestWatchReplicatorRecoversDeletes(t *testing.T) {
	src := mvcc.NewStore()
	repl, err := New(Config{Strategy: Watch, Partitions: 2, Seed: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	src.Put(keyspace.NumericKey(1), []byte("doomed"))
	repl.Drain()
	repl.Hub().Wipe()
	src.Delete(keyspace.NumericKey(1)) // happens while watch state is gone
	src.Put(keyspace.NumericKey(2), []byte("alive"))
	repl.Drain()
	tbl := repl.Table()
	if _, ok := tbl[keyspace.NumericKey(1)]; ok {
		t.Fatalf("deleted key resurrected after recovery: %v", tbl)
	}
	if tbl[keyspace.NumericKey(2)] != "alive" {
		t.Fatalf("post-wipe write lost: %v", tbl)
	}
}
