package replication

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
)

// Strategy selects a replication pipeline.
type Strategy int

const (
	// Serial publishes every change to a single partition applied by a
	// single consumer in commit order.
	Serial Strategy = iota
	// Partitioned hashes keys over P partitions, each applied serially but
	// independently — pubsub's standard scaling answer.
	Partitioned
	// ConcurrentBlind applies a prefetched window of messages in random
	// order with no safeguards.
	ConcurrentBlind
	// ConcurrentChecked is ConcurrentBlind plus version checks + tombstones.
	ConcurrentChecked
	// Watch replicates through a watch hub with R range-partitioned
	// appliers; reads externalize at the progress frontier.
	Watch
)

// String names the strategy for result tables.
func (s Strategy) String() string {
	switch s {
	case Serial:
		return "pubsub-serial"
	case Partitioned:
		return "pubsub-partitioned"
	case ConcurrentBlind:
		return "pubsub-concurrent"
	case ConcurrentChecked:
		return "pubsub-conc+vers"
	case Watch:
		return "watch"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

const replTopic = "cdc"

// Config tunes a Replicator.
type Config struct {
	Strategy   Strategy
	Partitions int // pubsub partitions / watch range appliers (default 4)
	// Window is the concurrent strategies' prefetch window: messages within
	// a window apply in a random permutation, modelling a racing worker
	// pool (default 32).
	Window int
	// Seed drives the permutations and applier skew.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Window <= 0 {
		c.Window = 32
	}
}

// Replicator wires a source store to a target through the chosen pipeline.
// Drive it by committing to the source (events flow automatically into the
// transport) and calling Step to let the appliers make progress; the
// interleaving of commits, Steps and reads is the experiment's schedule.
type Replicator struct {
	cfg    Config
	src    *mvcc.Store
	rng    *rand.Rand
	detach func()

	// pubsub transport
	broker      *pubsub.Broker
	consumers   []*pubsub.Consumer
	buffer      []pubsub.Message // concurrent strategies' prefetch window
	bufConsumer *pubsub.Consumer

	// targets
	target   *Target      // pubsub strategies
	wt       *WatchTarget // watch strategy
	hub      *core.Hub
	watchers []*core.ResyncWatcher
}

// shardApplier adapts a WatchTarget shard to core.SyncedConsumer.
type shardApplier struct {
	wt *WatchTarget
}

func (a *shardApplier) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	a.wt.ResetRange(r, entries, at)
}

func (a *shardApplier) ApplyChange(ev core.ChangeEvent) { a.wt.Apply(ev) }

func (a *shardApplier) AdvanceFrontier(p core.ProgressEvent) {
	a.wt.Progress(p.Range, p.Version)
}

// New builds a replicator over src.
func New(cfg Config, src *mvcc.Store) (*Replicator, error) {
	cfg.applyDefaults()
	r := &Replicator{cfg: cfg, src: src, rng: rand.New(rand.NewSource(cfg.Seed))}

	switch cfg.Strategy {
	case Watch:
		r.wt = NewWatchTarget()
		// Retention and buffers sized to hold any experiment run: the
		// replication scenarios study ordering, not hub overflow (that's E2).
		r.hub = core.NewHub(core.HubConfig{Retention: 1 << 20, WatcherBuffer: 1 << 20})
		r.detach = src.AttachCDC(keyspace.Full(), r.hub)
		// R range-partitioned appliers, each independently applying its
		// share and reporting progress — the scalable shape of §4.3.
		for _, shard := range keyspace.EvenSplit(cfg.Partitions*1000, cfg.Partitions) {
			// Each shard applier is a full snapshot-then-watch consumer: if
			// it lags or the hub loses its soft state, it recovers from the
			// source via the §4.4 protocol and keeps replicating.
			rw := core.NewResyncWatcher(src, r.hub, shard, &shardApplier{wt: r.wt})
			if err := rw.Start(); err != nil {
				return nil, err
			}
			r.watchers = append(r.watchers, rw)
		}
		return r, nil
	default:
		parts := cfg.Partitions
		if cfg.Strategy == Serial || cfg.Strategy == ConcurrentBlind || cfg.Strategy == ConcurrentChecked {
			parts = 1 // the transport is one ordered stream
		}
		r.broker = pubsub.NewBroker(pubsub.BrokerConfig{})
		if err := r.broker.CreateTopic(replTopic, pubsub.TopicConfig{Partitions: parts}); err != nil {
			return nil, err
		}
		r.target = NewTarget(cfg.Strategy == ConcurrentChecked)
		group, err := r.broker.Group(replTopic, "repl", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return nil, err
		}
		switch cfg.Strategy {
		case Partitioned:
			// One member per partition: per-partition serial appliers.
			for i := 0; i < parts; i++ {
				c, err := group.Join(fmt.Sprintf("applier-%02d", i))
				if err != nil {
					return nil, err
				}
				r.consumers = append(r.consumers, c)
			}
		default:
			c, err := group.Join("applier-00")
			if err != nil {
				return nil, err
			}
			r.bufConsumer = c
			r.consumers = []*pubsub.Consumer{c}
		}
		// CDC → publish: the producer side of the pipeline.
		r.detach = src.AttachCDC(keyspace.Full(), publishIngester{broker: r.broker})
		return r, nil
	}
}

// publishIngester forwards CDC events into the pubsub topic. Progress events
// are dropped on the floor: the pubsub transport has nowhere to put them,
// which is precisely why its targets cannot gate externalization.
type publishIngester struct {
	broker *pubsub.Broker
}

func (p publishIngester) Append(ev core.ChangeEvent) error {
	_, _, err := p.broker.Publish(replTopic, ev.Key, EncodeEvent(ev))
	return err
}

func (p publishIngester) AppendBatch(evs []core.ChangeEvent) error {
	// Publish is per-message on this transport; the batch only saves CDC
	// round-trips upstream.
	for i := range evs {
		if err := p.Append(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (p publishIngester) Progress(core.ProgressEvent) error { return nil }

// EncodeEvent serializes a change event for transport: version (8 bytes,
// big endian) | op (1 byte) | value.
func EncodeEvent(ev core.ChangeEvent) []byte {
	out := make([]byte, 9+len(ev.Mut.Value))
	binary.BigEndian.PutUint64(out, uint64(ev.Version))
	out[8] = byte(ev.Mut.Op)
	copy(out[9:], ev.Mut.Value)
	return out
}

// DecodeEvent reverses EncodeEvent.
func DecodeEvent(key keyspace.Key, b []byte) (core.ChangeEvent, error) {
	if len(b) < 9 {
		return core.ChangeEvent{}, fmt.Errorf("replication: short event payload (%d bytes)", len(b))
	}
	ev := core.ChangeEvent{
		Key:     key,
		Version: core.Version(binary.BigEndian.Uint64(b)),
		Mut:     core.Mutation{Op: core.Op(b[8])},
	}
	if ev.Mut.Op == core.OpPut {
		ev.Mut.Value = append([]byte(nil), b[9:]...)
	}
	return ev, nil
}

// Step lets the appliers make bounded progress: each applier processes up to
// budget messages, with per-applier random skew so parallel pipelines
// interleave (that skew is where cross-partition reordering comes from).
// It reports whether any work was done.
func (r *Replicator) Step(budget int) bool {
	if budget <= 0 {
		budget = 16
	}
	switch r.cfg.Strategy {
	case Watch:
		// The hub pushes asynchronously; stepping is a no-op. Report no
		// work so Drain terminates; callers observe progress via the
		// frontier instead.
		return false
	case ConcurrentBlind, ConcurrentChecked:
		return r.stepConcurrent(budget)
	default:
		worked := false
		for _, c := range r.consumers {
			// Skew: an applier may process nothing this step (it is busy,
			// GC-pausing, on a slow node, …). Uneven applier progress across
			// partitions is exactly what reorders cross-partition
			// transactions in real deployments.
			n := r.rng.Intn(budget + 1)
			for i := 0; i < n; i++ {
				msg, ok, err := c.Poll()
				if err != nil || !ok {
					break
				}
				ev, err := DecodeEvent(msg.Key, msg.Value)
				if err == nil {
					r.target.Apply(ev)
				}
				c.Ack(msg)
				worked = true
			}
		}
		return worked
	}
}

// stepConcurrent prefetches a window of messages and applies a random
// permutation of it — the racing worker pool.
func (r *Replicator) stepConcurrent(budget int) bool {
	for len(r.buffer) < r.cfg.Window {
		msg, ok, err := r.bufConsumer.Poll()
		if err != nil || !ok {
			break
		}
		r.bufConsumer.Ack(msg) // workers ack on handoff; application races
		r.buffer = append(r.buffer, msg)
	}
	if len(r.buffer) == 0 {
		return false
	}
	n := budget
	if n > len(r.buffer) {
		n = len(r.buffer)
	}
	// Apply n messages chosen in random order from the window.
	r.rng.Shuffle(len(r.buffer), func(i, j int) {
		r.buffer[i], r.buffer[j] = r.buffer[j], r.buffer[i]
	})
	for _, msg := range r.buffer[:n] {
		if ev, err := DecodeEvent(msg.Key, msg.Value); err == nil {
			r.target.Apply(ev)
		}
	}
	r.buffer = r.buffer[n:]
	return true
}

// Drain steps until the pipeline quiesces. For the watch strategy it waits
// until the target's frontier reaches the source's current version.
func (r *Replicator) Drain() {
	switch r.cfg.Strategy {
	case Watch:
		want := r.src.CurrentVersion()
		for r.wt.ExternalVersion() < want {
			// The hub delivers on its own goroutines; wait until caught up.
			time.Sleep(50 * time.Microsecond)
		}
	case ConcurrentBlind, ConcurrentChecked:
		for {
			for len(r.buffer) < r.cfg.Window {
				msg, ok, err := r.bufConsumer.Poll()
				if err != nil || !ok {
					break
				}
				r.bufConsumer.Ack(msg)
				r.buffer = append(r.buffer, msg)
			}
			if len(r.buffer) == 0 {
				return
			}
			// Apply the remaining window, still in racing order.
			r.rng.Shuffle(len(r.buffer), func(i, j int) {
				r.buffer[i], r.buffer[j] = r.buffer[j], r.buffer[i]
			})
			for _, msg := range r.buffer {
				if ev, err := DecodeEvent(msg.Key, msg.Value); err == nil {
					r.target.Apply(ev)
				}
			}
			r.buffer = nil
		}
	default:
		for {
			worked := false
			for _, c := range r.consumers {
				for {
					msg, ok, err := c.Poll()
					if err != nil || !ok {
						break
					}
					if ev, err := DecodeEvent(msg.Key, msg.Value); err == nil {
						r.target.Apply(ev)
					}
					c.Ack(msg)
					worked = true
				}
			}
			if !worked {
				return
			}
		}
	}
}

// ReadPair externalizes two keys the way a reader of this strategy's target
// would see them (the watch target pins both to one frontier version).
func (r *Replicator) ReadPair(a, b keyspace.Key) (av, bv []byte, aok, bok bool) {
	if r.cfg.Strategy == Watch {
		v := r.wt.ExternalVersion()
		av, aok = r.wt.ReadAt(a, v)
		bv, bok = r.wt.ReadAt(b, v)
		return
	}
	av, aok = r.target.Read(a)
	bv, bok = r.target.Read(b)
	return
}

// Table dumps the target's externalized rows.
func (r *Replicator) Table() map[keyspace.Key]string {
	if r.cfg.Strategy == Watch {
		return r.wt.Dump()
	}
	return r.target.Dump()
}

// Applied returns how many events the target has applied.
func (r *Replicator) Applied() int64 {
	if r.cfg.Strategy == Watch {
		return r.wt.Applied()
	}
	n, _ := r.target.Applied()
	return n
}

// Resyncs sums resync counts across the watch strategy's shard appliers.
func (r *Replicator) Resyncs() int64 {
	var n int64
	for _, rw := range r.watchers {
		n += rw.Resyncs()
	}
	return n
}

// Hub exposes the watch strategy's hub for failure injection (nil for the
// pubsub strategies).
func (r *Replicator) Hub() *core.Hub { return r.hub }

// Close releases the transport.
func (r *Replicator) Close() {
	if r.detach != nil {
		r.detach()
	}
	for _, rw := range r.watchers {
		rw.Stop()
	}
	if r.hub != nil {
		r.hub.Close()
	}
	if r.broker != nil {
		r.broker.Close()
	}
}
