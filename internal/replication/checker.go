package replication

import (
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
	"unbundle/internal/workload"
)

// Checker scores a replication run against the source's ground truth.
type Checker struct {
	src *mvcc.Store

	// SnapshotViolations counts externalized pair-reads showing a state the
	// source never externalized (the §3.2.1 member/document anomaly).
	SnapshotViolations int64
	// PairSamples counts how many pair-reads were scored.
	PairSamples int64
}

// NewChecker builds a checker over the source store.
func NewChecker(src *mvcc.Store) *Checker {
	return &Checker{src: src}
}

// SampleACLPair reads round k's (member, doc) pair through the replicator's
// externalized view and scores it. The ACL script guarantees the source
// never externalizes a state with the member present AND the grant present,
// so observing both is a point-in-time consistency violation.
func (c *Checker) SampleACLPair(r *Replicator, round int) {
	member, doc := workload.ACLPair(round)
	_, _, memberPresent, docPresent := r.ReadPair(member, doc)
	c.PairSamples++
	if memberPresent && docPresent {
		c.SnapshotViolations++
	}
}

// VerifyPairAgainstHistory is the general point-in-time check used to
// validate the targeted ACL predicate: it reports whether some source
// version externalizes exactly the observed pair of values. (The ACL check
// above is the O(1) special case; this one is exact and is used in tests.)
func (c *Checker) VerifyPairAgainstHistory(a, b keyspace.Key, av, bv []byte, aok, bok bool) (consistent bool, err error) {
	cur := c.src.CurrentVersion()
	// Candidate versions are bounded by the source history; scanning all of
	// them is fine at experiment scale.
	for v := core.Version(1); v <= cur; v++ {
		wantA, okA, errA := c.src.ValueAt(a, v)
		if errA != nil {
			return false, errA
		}
		wantB, okB, errB := c.src.ValueAt(b, v)
		if errB != nil {
			return false, errB
		}
		if okA == aok && okB == bok &&
			(!okA || string(wantA) == string(av)) &&
			(!okB || string(wantB) == string(bv)) {
			return true, nil
		}
	}
	// Version 0: the empty store.
	if !aok && !bok {
		return true, nil
	}
	return false, nil
}

// EventualDivergence compares the drained target with the source's latest
// state, returning how many keys disagree (missing, extra, or wrong value).
func (c *Checker) EventualDivergence(r *Replicator) (divergent int, err error) {
	got := r.Table()
	want, err := c.src.Scan(keyspace.Full(), core.NoVersion, 0)
	if err != nil {
		return 0, err
	}
	wantMap := make(map[keyspace.Key]string, len(want))
	for _, e := range want {
		wantMap[e.Key] = string(e.Value)
	}
	for k, v := range wantMap {
		if got[k] != v {
			divergent++
		}
	}
	for k := range got {
		if _, ok := wantMap[k]; !ok {
			divergent++ // resurrected or phantom row
		}
	}
	return divergent, nil
}
