// Package replication implements the §3.2.1 scenario: replicating a source
// MVCC store into a target store through a change feed, five ways:
//
//	serial pubsub        — one partition, one applier: consistent, unscalable
//	partitioned pubsub   — key-hash partitions applied in parallel: per-key
//	                       order holds, cross-partition transaction order
//	                       doesn't → snapshot violations
//	concurrent (blind)   — a worker pool applies out of order: stale
//	                       overwrites and resurrected deletes → eventual
//	                       consistency violations
//	concurrent (checked) — version checks + tombstones repair eventual
//	                       consistency, but externalized states still never
//	                       existed at the source → snapshot violations
//	watch                — range-partitioned appliers, externalization gated
//	                       by the progress frontier: scalable AND snapshot
//	                       consistent (§4.3)
//
// The ACL workload of workload.ACLScript provides transactions whose
// reordering is detectable: a member-removal followed by a document-grant,
// where observing both "member present" and "grant present" is a state the
// source never externalized.
package replication

import (
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

// row is one key's state in a pubsub-replicated target.
type row struct {
	value     []byte
	version   core.Version
	tombstone bool
}

// Target is the destination store for the pubsub strategies. Readers see its
// current rows directly — there is no mechanism to gate externalization,
// because the pubsub feed carries no progress information.
type Target struct {
	mu      sync.Mutex
	rows    map[keyspace.Key]row
	checked bool // version checks + tombstones enabled

	applied int64
	stale   int64 // events rejected by version checks
}

// NewTarget creates a target store. checked enables version checks and
// tombstones (the §3.2.1 mitigation that fixes eventual but not snapshot
// consistency).
func NewTarget(checked bool) *Target {
	return &Target{rows: make(map[keyspace.Key]row), checked: checked}
}

// Apply installs one change event.
func (t *Target) Apply(ev core.ChangeEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.applied++
	cur, exists := t.rows[ev.Key]
	if t.checked && exists && ev.Version <= cur.version {
		// A newer write (or tombstone) already landed; this event is stale.
		t.stale++
		return
	}
	switch ev.Mut.Op {
	case core.OpDelete:
		if t.checked {
			// Tombstones must persist: a blind delete would let an older,
			// reordered put resurrect the row.
			t.rows[ev.Key] = row{version: ev.Version, tombstone: true}
		} else {
			delete(t.rows, ev.Key)
		}
	default:
		t.rows[ev.Key] = row{value: ev.Mut.Value, version: ev.Version}
	}
}

// Read externalizes one key as a target reader sees it right now.
func (t *Target) Read(k keyspace.Key) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[k]
	if !ok || r.tombstone {
		return nil, false
	}
	return r.value, true
}

// Dump returns the live rows (for the eventual-consistency check).
func (t *Target) Dump() map[keyspace.Key]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[keyspace.Key]string, len(t.rows))
	for k, r := range t.rows {
		if !r.tombstone {
			out[k] = string(r.value)
		}
	}
	return out
}

// Applied returns (applied, rejected-as-stale) counters.
func (t *Target) Applied() (int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applied, t.stale
}

// WatchTarget is the destination store for the watch strategy: per-key
// version chains plus a range-scoped progress frontier. Externalized reads
// are served at the frontier version, so every observable state is a
// consistent snapshot of the source — by construction, not by luck.
type WatchTarget struct {
	mu       sync.Mutex
	chains   map[keyspace.Key][]row
	frontier core.VersionMap
	applied  int64
}

// NewWatchTarget creates an empty watch target.
func NewWatchTarget() *WatchTarget {
	return &WatchTarget{chains: make(map[keyspace.Key][]row)}
}

// Apply installs one change event (idempotent per version; order within a
// key must be non-decreasing, which the watch contract provides).
func (wt *WatchTarget) Apply(ev core.ChangeEvent) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.applied++
	chain := wt.chains[ev.Key]
	if n := len(chain); n > 0 && chain[n-1].version >= ev.Version {
		return
	}
	wt.chains[ev.Key] = append(chain, row{
		value:     ev.Mut.Value,
		version:   ev.Version,
		tombstone: ev.Mut.Op == core.OpDelete,
	})
}

// ResetRange replaces all state in r with a snapshot taken at version at:
// the recovery path after a resync. Chains in r are rebuilt from the
// snapshot (which also removes rows the source deleted while the watcher was
// away), and the frontier over r jumps to the snapshot version.
func (wt *WatchTarget) ResetRange(r keyspace.Range, entries []core.Entry, at core.Version) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for k := range wt.chains {
		if r.Contains(k) {
			delete(wt.chains, k)
		}
	}
	for _, e := range entries {
		wt.chains[e.Key] = []row{{value: e.Value, version: e.Version}}
	}
	wt.frontier.Raise(r, at)
}

// Progress raises the frontier over r to v.
func (wt *WatchTarget) Progress(r keyspace.Range, v core.Version) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	wt.frontier.Raise(r, v)
}

// ExternalVersion is the version at which reads externalize: complete
// knowledge over the whole keyspace.
func (wt *WatchTarget) ExternalVersion() core.Version {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return wt.frontier.MinOver(keyspace.Full())
}

// Read externalizes k at the frontier.
func (wt *WatchTarget) Read(k keyspace.Key) ([]byte, bool) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	v := wt.frontier.MinOver(keyspace.Full())
	return wt.readAtLocked(k, v)
}

// ReadAt externalizes k at an explicit version (used by the pair sampler so
// both keys of a pair read at one version).
func (wt *WatchTarget) ReadAt(k keyspace.Key, v core.Version) ([]byte, bool) {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return wt.readAtLocked(k, v)
}

func (wt *WatchTarget) readAtLocked(k keyspace.Key, v core.Version) ([]byte, bool) {
	chain := wt.chains[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].version <= v {
			if chain[i].tombstone {
				return nil, false
			}
			return chain[i].value, true
		}
	}
	return nil, false
}

// Dump returns the live rows at the frontier.
func (wt *WatchTarget) Dump() map[keyspace.Key]string {
	wt.mu.Lock()
	v := wt.frontier.MinOver(keyspace.Full())
	keys := make([]keyspace.Key, 0, len(wt.chains))
	for k := range wt.chains {
		keys = append(keys, k)
	}
	wt.mu.Unlock()
	out := make(map[keyspace.Key]string, len(keys))
	for _, k := range keys {
		if val, ok := wt.ReadAt(k, v); ok {
			out[k] = string(val)
		}
	}
	return out
}

// Applied returns the applied-event count.
func (wt *WatchTarget) Applied() int64 {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return wt.applied
}
