package keyspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeContains(t *testing.T) {
	tests := []struct {
		name string
		r    Range
		k    Key
		want bool
	}{
		{"interior", Range{"b", "d"}, "c", true},
		{"low inclusive", Range{"b", "d"}, "b", true},
		{"high exclusive", Range{"b", "d"}, "d", false},
		{"below", Range{"b", "d"}, "a", false},
		{"above", Range{"b", "d"}, "e", false},
		{"empty range", Range{}, "", false},
		{"inverted is empty", Range{"d", "b"}, "c", false},
		{"full contains min", Full(), "", true},
		{"full contains anything", Full(), "zzzz", true},
		{"unbounded high", Range{"m", Inf}, "zzzz", true},
		{"point contains key", Point("k"), "k", true},
		{"point excludes successor", Point("k"), Key("k").Next(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Contains(tt.k); got != tt.want {
				t.Errorf("%v.Contains(%q) = %v, want %v", tt.r, string(tt.k), got, tt.want)
			}
		})
	}
}

func TestRangeIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Range
		want Range
	}{
		{"overlap", Range{"a", "d"}, Range{"c", "f"}, Range{"c", "d"}},
		{"nested", Range{"a", "z"}, Range{"c", "f"}, Range{"c", "f"}},
		{"disjoint", Range{"a", "b"}, Range{"c", "d"}, Range{}},
		{"adjacent", Range{"a", "c"}, Range{"c", "e"}, Range{}},
		{"full vs bounded", Full(), Range{"c", "f"}, Range{"c", "f"}},
		{"unbounded tails", Range{"c", Inf}, Range{"f", Inf}, Range{"f", Inf}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersect(tt.b)
			if got != tt.want {
				t.Errorf("%v.Intersect(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			// Intersection is commutative.
			if rev := tt.b.Intersect(tt.a); rev != got {
				t.Errorf("intersect not commutative: %v vs %v", got, rev)
			}
		})
	}
}

func TestRangeContainsRange(t *testing.T) {
	if !Full().ContainsRange(Range{"a", "b"}) {
		t.Error("full range must contain any bounded range")
	}
	if (Range{"a", "b"}).ContainsRange(Full()) {
		t.Error("bounded range must not contain the full range")
	}
	if !(Range{"a", "z"}).ContainsRange(Range{"a", "z"}) {
		t.Error("range must contain itself")
	}
	if !(Range{"a", "b"}).ContainsRange(Range{}) {
		t.Error("every range contains the empty range")
	}
	if (Range{"c", "d"}).ContainsRange(Range{"a", "z"}) {
		t.Error("subset check inverted")
	}
}

func TestRangeSplit(t *testing.T) {
	left, right := (Range{"a", "z"}).Split("m")
	if left != (Range{"a", "m"}) || right != (Range{"m", "z"}) {
		t.Fatalf("Split = %v, %v", left, right)
	}
	if left.Overlaps(right) {
		t.Error("split halves overlap")
	}
	if !left.Adjacent(right) {
		t.Error("split halves must be adjacent")
	}

	defer func() {
		if recover() == nil {
			t.Error("Split at boundary must panic")
		}
	}()
	(Range{"a", "z"}).Split("a")
}

func TestPrefix(t *testing.T) {
	r := Prefix("user/")
	for _, k := range []Key{"user/", "user/1", "user/\xff\xff"} {
		if !r.Contains(k) {
			t.Errorf("%v should contain %q", r, string(k))
		}
	}
	for _, k := range []Key{"user", "user0", "vser/"} {
		if r.Contains(k) {
			t.Errorf("%v should not contain %q", r, string(k))
		}
	}
	if !Prefix("").ContainsRange(Full()) {
		t.Error("empty prefix must be the full range")
	}
	// All-0xff prefix has no finite upper bound.
	if got := Prefix("\xff\xff"); !got.unbounded() {
		t.Errorf("Prefix(all-0xff) must be unbounded, got %v", got)
	}
}

func TestRangeSetNormalization(t *testing.T) {
	s := NewRangeSet(
		Range{"d", "f"},
		Range{"a", "c"},
		Range{"b", "e"}, // merges all three
		Range{},         // ignored
		Range{"x", "z"},
	)
	want := NewRangeSet(Range{"a", "f"}, Range{"x", "z"})
	if !s.Equal(want) {
		t.Fatalf("normalized set = %v, want %v", s, want)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Adjacent ranges merge.
	s2 := NewRangeSet(Range{"a", "c"}, Range{"c", "e"})
	if s2.Len() != 1 || !s2.ContainsRange(Range{"a", "e"}) {
		t.Fatalf("adjacent ranges must merge, got %v", s2)
	}
}

func TestRangeSetOps(t *testing.T) {
	a := NewRangeSet(Range{"a", "e"}, Range{"m", "q"})
	b := NewRangeSet(Range{"c", "n"})

	union := a.Union(b)
	if !union.Equal(NewRangeSet(Range{"a", "q"})) {
		t.Errorf("union = %v", union)
	}
	inter := a.Intersect(b)
	if !inter.Equal(NewRangeSet(Range{"c", "e"}, Range{"m", "n"})) {
		t.Errorf("intersect = %v", inter)
	}
	diff := a.Subtract(b)
	if !diff.Equal(NewRangeSet(Range{"a", "c"}, Range{"n", "q"})) {
		t.Errorf("subtract = %v", diff)
	}
	if !a.Covers(inter) || !union.Covers(a) || !union.Covers(b) {
		t.Error("covers relations violated")
	}
	hole := NewRangeSet(Full()).SubtractRange(Range{"g", "k"})
	if hole.Contains("h") || !hole.Contains("f") || !hole.Contains("k") {
		t.Errorf("subtract from full broken: %v", hole)
	}
}

func TestRangeSetContains(t *testing.T) {
	s := NewRangeSet(Range{"b", "d"}, Range{"j", Inf})
	tests := []struct {
		k    Key
		want bool
	}{
		{"a", false}, {"b", true}, {"c", true}, {"d", false},
		{"i", false}, {"j", true}, {"zzzz", true},
	}
	for _, tt := range tests {
		if got := s.Contains(tt.k); got != tt.want {
			t.Errorf("Contains(%q) = %v, want %v", string(tt.k), got, tt.want)
		}
	}
}

func TestEvenSplit(t *testing.T) {
	shards := EvenSplit(1000, 7)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	set := NewRangeSet(shards...)
	if !set.ContainsRange(Full()) {
		t.Errorf("EvenSplit must cover the full keyspace, got %v", set)
	}
	for i := 0; i < len(shards)-1; i++ {
		if shards[i].Overlaps(shards[i+1]) {
			t.Errorf("shards %d and %d overlap", i, i+1)
		}
		if !shards[i].Adjacent(shards[i+1]) {
			t.Errorf("shards %d and %d not adjacent", i, i+1)
		}
	}
	// Every numeric key lands in exactly one shard.
	for i := 0; i < 1000; i += 37 {
		n := 0
		for _, s := range shards {
			if s.Contains(NumericKey(i)) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("key %d in %d shards", i, n)
		}
	}
}

func TestHashPartitionStable(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := NumericKey(i)
		p := HashPartition(k, 16)
		if p < 0 || p >= 16 {
			t.Fatalf("partition %d out of range", p)
		}
		if HashPartition(k, 16) != p {
			t.Fatalf("HashPartition not deterministic for %q", string(k))
		}
	}
}

// randomRange draws a small bounded range (possibly empty) over a compact
// alphabet so that property tests exercise overlaps and adjacency heavily.
func randomRange(r *rand.Rand) Range {
	letters := "abcdefghij"
	lo := letters[r.Intn(len(letters))]
	hi := letters[r.Intn(len(letters))]
	rg := Range{Low: Key(lo), High: Key(hi)}
	if r.Intn(10) == 0 {
		rg.High = Inf
	}
	return rg
}

func randomSet(r *rand.Rand) RangeSet {
	var s RangeSet
	for i := 0; i < r.Intn(5); i++ {
		s = s.Add(randomRange(r))
	}
	return s
}

var probeKeys = []Key{"", "a", "a\x00", "b", "c", "d", "e", "f", "g", "h", "i", "j", "zz"}

// TestQuickSetSemantics verifies that RangeSet operations agree with the
// pointwise set semantics over a probe set of keys.
func TestQuickSetSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		union, inter, diff := a.Union(b), a.Intersect(b), a.Subtract(b)
		for _, k := range probeKeys {
			inA, inB := a.Contains(k), b.Contains(k)
			if union.Contains(k) != (inA || inB) {
				t.Logf("union wrong at %q: a=%v b=%v", string(k), a, b)
				return false
			}
			if inter.Contains(k) != (inA && inB) {
				t.Logf("intersect wrong at %q: a=%v b=%v", string(k), a, b)
				return false
			}
			if diff.Contains(k) != (inA && !inB) {
				t.Logf("subtract wrong at %q: a=%v b=%v", string(k), a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalized verifies that every constructed set stays normalized:
// sorted, disjoint, non-adjacent, no empty ranges.
func TestQuickNormalized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSet(rng).Union(randomSet(rng)).Subtract(randomSet(rng))
		rs := s.Ranges()
		for i, r := range rs {
			if r.Empty() {
				return false
			}
			if i > 0 {
				prev := rs[i-1]
				if prev.Overlaps(r) || prev.Adjacent(r) || prev.Low >= r.Low {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubtractAddInverse: (s \ r) ∪ r ⊇ s and (s ∪ r) \ r = s \ r.
func TestQuickSubtractAddInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSet(rng)
		r := randomRange(rng)
		back := s.SubtractRange(r).Add(r)
		if !back.Covers(s) {
			return false
		}
		viaUnion := s.Add(r).SubtractRange(r)
		return viaUnion.Equal(s.SubtractRange(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyNextOrdering(t *testing.T) {
	keys := []Key{"", "a", "ab", "b", NumericKey(0), NumericKey(999)}
	for _, k := range keys {
		n := k.Next()
		if n <= k {
			t.Errorf("Next(%q) = %q not greater", string(k), string(n))
		}
		// Nothing fits strictly between k and k.Next() among byte strings of
		// the probe set.
		for _, other := range keys {
			if other > k && other < n {
				t.Errorf("key %q between %q and its successor", string(other), string(k))
			}
		}
	}
}

func BenchmarkRangeSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ranges := make([]Range, 256)
	for i := range ranges {
		lo := rng.Intn(100000)
		ranges[i] = NumericRange(lo, lo+rng.Intn(500)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s RangeSet
		for _, r := range ranges {
			s = s.Add(r)
		}
	}
}

func BenchmarkRangeSetContains(b *testing.B) {
	var s RangeSet
	for i := 0; i < 1024; i++ {
		s = s.Add(NumericRange(i*10, i*10+5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(NumericKey(i % 10240))
	}
}
