package keyspace

import (
	"fmt"
	"hash/fnv"
)

// HashPartition returns the partition index for k under a static modulo-hash
// partitioner with n partitions. This is the scheme pubsub systems use to
// route keyed messages to topic partitions; its key property — and the
// limitation §3.1 of the paper calls out — is that the mapping is *static*:
// it cannot follow an auto-sharder's dynamic range assignments.
func HashPartition(k Key, n int) int {
	if n <= 0 {
		panic("keyspace: HashPartition with non-positive partition count")
	}
	h := fnv.New32a()
	h.Write([]byte(k)) // hash.Hash never returns an error
	return int(h.Sum32() % uint32(n))
}

// NumericKey renders i as a fixed-width decimal key so that numeric order and
// key order coincide. Experiment workloads use numeric keys throughout, which
// makes range arithmetic (splits, even partitions) exact.
func NumericKey(i int) Key {
	return Key(fmt.Sprintf("%012d", i))
}

// NumericRange returns the range covering NumericKey(lo) .. NumericKey(hi-1).
func NumericRange(lo, hi int) Range {
	return Range{Low: NumericKey(lo), High: NumericKey(hi)}
}

// EvenSplit partitions the numeric key domain [0, n) into p contiguous
// ranges of near-equal size, in key order. The last range is unbounded above
// so that the union covers the entire keyspace (keys beyond the numeric
// domain still land somewhere — an invariant the sharder relies on).
func EvenSplit(n, p int) []Range {
	if p <= 0 {
		panic("keyspace: EvenSplit with non-positive shard count")
	}
	out := make([]Range, 0, p)
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		r := Range{Low: NumericKey(lo), High: NumericKey(hi)}
		if i == 0 {
			r.Low = ""
		}
		if i == p-1 {
			r.High = Inf
		}
		out = append(out, r)
	}
	return out
}
