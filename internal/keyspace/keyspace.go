// Package keyspace defines the key and key-range vocabulary shared by every
// layer of the system: the MVCC store, the pubsub partitioners, the
// auto-sharder and the watch system.
//
// Keys are ordered byte strings. Ranges are half-open intervals [Low, High);
// a High of "" denotes +infinity, so Range{"", ""} covers the whole keyspace.
// This is the same convention used by etcd and by range-sharded systems such
// as Slicer, and it is what makes range-scoped progress events (the paper's
// central scalability mechanism) composable: ranges can be split, merged and
// compared without any out-of-band metadata.
package keyspace

import (
	"fmt"
	"sort"
	"strings"
)

// Key is an ordered byte-string key. The zero value is the minimum key.
type Key string

// Compare returns -1, 0 or +1 comparing k to other lexicographically.
func (k Key) Compare(other Key) int {
	switch {
	case k < other:
		return -1
	case k > other:
		return 1
	default:
		return 0
	}
}

// Next returns the immediate successor of k in the key order: the smallest
// key strictly greater than k. It is used to build single-key ranges.
func (k Key) Next() Key {
	return k + "\x00"
}

// Range is a half-open key interval [Low, High). High == "" means +infinity.
// The zero Range is empty (["" , "")); use Full() for the whole keyspace.
type Range struct {
	Low  Key
	High Key
}

// Full returns the range covering the entire keyspace.
func Full() Range {
	return Range{Low: "", High: Inf}
}

// Inf is the sentinel High bound meaning +infinity.
//
// An empty string is a valid Low (the minimum key) but can never be a
// meaningful exclusive High, so "" is reserved for the zero/empty range and
// Inf marks unbounded ranges explicitly.
const Inf Key = "\xff\xff\xff\xff\xff\xff\xff\xff"

// Point returns the range containing exactly key k.
func Point(k Key) Range {
	return Range{Low: k, High: k.Next()}
}

// Prefix returns the range of all keys having prefix p.
func Prefix(p Key) Range {
	if p == "" {
		return Full()
	}
	return Range{Low: p, High: prefixEnd(p)}
}

// prefixEnd computes the smallest key greater than every key with prefix p.
func prefixEnd(p Key) Key {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return Key(b[:i+1])
		}
	}
	return Inf // p is all 0xff bytes: no upper bound below infinity.
}

// unbounded reports whether the High bound means +infinity.
func (r Range) unbounded() bool { return r.High >= Inf }

// Empty reports whether the range contains no keys.
func (r Range) Empty() bool {
	if r.unbounded() {
		return false
	}
	return r.Low >= r.High
}

// Contains reports whether k lies inside the range.
func (r Range) Contains(k Key) bool {
	if r.Empty() {
		return false
	}
	if k < r.Low {
		return false
	}
	return r.unbounded() || k < r.High
}

// ContainsRange reports whether other is entirely inside r.
func (r Range) ContainsRange(other Range) bool {
	if other.Empty() {
		return true
	}
	if r.Empty() {
		return false
	}
	if other.Low < r.Low {
		return false
	}
	if r.unbounded() {
		return true
	}
	if other.unbounded() {
		return false
	}
	return other.High <= r.High
}

// Overlaps reports whether the two ranges share at least one key.
func (r Range) Overlaps(other Range) bool {
	return !r.Intersect(other).Empty()
}

// Intersect returns the intersection of the two ranges (possibly empty).
func (r Range) Intersect(other Range) Range {
	if r.Empty() || other.Empty() {
		return Range{}
	}
	low := r.Low
	if other.Low > low {
		low = other.Low
	}
	high := r.High
	if other.High < high {
		high = other.High
	}
	out := Range{Low: low, High: high}
	if out.Empty() {
		return Range{}
	}
	return out
}

// Adjacent reports whether the two ranges touch without overlapping,
// i.e. one ends exactly where the other begins.
func (r Range) Adjacent(other Range) bool {
	if r.Empty() || other.Empty() {
		return false
	}
	return (!r.unbounded() && r.High == other.Low) ||
		(!other.unbounded() && other.High == r.Low)
}

// Union returns the smallest single range covering both r and other.
// It is only a true set union when the ranges overlap or are adjacent;
// callers that need exact unions should use RangeSet.
func (r Range) Union(other Range) Range {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	low := r.Low
	if other.Low < low {
		low = other.Low
	}
	high := r.High
	if other.High > high {
		high = other.High
	}
	return Range{Low: low, High: high}
}

// Split divides the range at key mid, returning [Low, mid) and [mid, High).
// It panics if mid is not strictly inside the range, since splitting at a
// boundary would silently produce an empty shard — a bug in every caller.
func (r Range) Split(mid Key) (left, right Range) {
	if !r.Contains(mid) || mid == r.Low {
		panic(fmt.Sprintf("keyspace: split point %q not interior to %v", string(mid), r))
	}
	return Range{Low: r.Low, High: mid}, Range{Low: mid, High: r.High}
}

// String renders the range in [low, high) form for logs and test output.
func (r Range) String() string {
	if r.Empty() {
		return "[)"
	}
	if r.unbounded() {
		return fmt.Sprintf("[%q, +inf)", string(r.Low))
	}
	return fmt.Sprintf("[%q, %q)", string(r.Low), string(r.High))
}

// RangeSet is an immutable, normalized set of keys represented as sorted,
// non-overlapping, non-adjacent ranges. The zero value is the empty set.
//
// RangeSet is the working currency of the watch frontier, the sharder's
// assignment table and knowledge regions, so its operations must be exact:
// Union/Subtract/Intersect are true set operations, unlike Range.Union.
type RangeSet struct {
	ranges []Range // sorted by Low, pairwise disjoint and non-adjacent
}

// NewRangeSet builds a normalized set from arbitrary (possibly overlapping,
// unordered, empty) ranges in O(n log n): sort by Low, then merge in one
// pass. (Add is O(n) per call; constructing large sets through it would be
// quadratic.)
func NewRangeSet(ranges ...Range) RangeSet {
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if !r.Empty() {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Low < rs[j].Low })
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && (out[n-1].Overlaps(r) || out[n-1].Adjacent(r)) {
			out[n-1] = out[n-1].Union(r)
			continue
		}
		out = append(out, r)
	}
	return RangeSet{ranges: out}
}

// Ranges returns the normalized ranges in order. The slice must not be
// modified by the caller.
func (s RangeSet) Ranges() []Range { return s.ranges }

// Empty reports whether the set contains no keys.
func (s RangeSet) Empty() bool { return len(s.ranges) == 0 }

// Len returns the number of normalized ranges in the set.
func (s RangeSet) Len() int { return len(s.ranges) }

// Contains reports whether k is a member of the set.
func (s RangeSet) Contains(k Key) bool {
	// Binary search for the first range with High > k (or unbounded).
	i := sort.Search(len(s.ranges), func(i int) bool {
		r := s.ranges[i]
		return r.unbounded() || r.High > k
	})
	return i < len(s.ranges) && s.ranges[i].Contains(k)
}

// ContainsRange reports whether every key of r is a member of the set.
// Because the set is normalized (no adjacent ranges), r must fit in a single
// stored range.
func (s RangeSet) ContainsRange(r Range) bool {
	if r.Empty() {
		return true
	}
	for _, have := range s.ranges {
		if have.ContainsRange(r) {
			return true
		}
	}
	return false
}

// Add returns the set with r added (a true union with one range).
func (s RangeSet) Add(r Range) RangeSet {
	if r.Empty() {
		return s
	}
	out := make([]Range, 0, len(s.ranges)+1)
	merged := r
	for _, have := range s.ranges {
		if have.Overlaps(merged) || have.Adjacent(merged) {
			merged = merged.Union(have)
		} else {
			out = append(out, have)
		}
	}
	out = append(out, merged)
	sort.Slice(out, func(i, j int) bool { return out[i].Low < out[j].Low })
	return RangeSet{ranges: out}
}

// Union returns the exact set union of s and other.
func (s RangeSet) Union(other RangeSet) RangeSet {
	out := s
	for _, r := range other.ranges {
		out = out.Add(r)
	}
	return out
}

// Intersect returns the exact set intersection of s and other.
func (s RangeSet) Intersect(other RangeSet) RangeSet {
	var out []Range
	for _, a := range s.ranges {
		for _, b := range other.ranges {
			if x := a.Intersect(b); !x.Empty() {
				out = append(out, x)
			}
		}
	}
	return RangeSet{ranges: out} // disjoint inputs produce disjoint outputs, already sorted per a
}

// IntersectRange returns the subset of s inside r.
func (s RangeSet) IntersectRange(r Range) RangeSet {
	return s.Intersect(NewRangeSet(r))
}

// Subtract returns the set difference s \ other.
func (s RangeSet) Subtract(other RangeSet) RangeSet {
	cur := s.ranges
	for _, b := range other.ranges {
		var next []Range
		for _, a := range cur {
			next = append(next, subtractRange(a, b)...)
		}
		cur = next
	}
	return RangeSet{ranges: cur}
}

// SubtractRange returns the set difference s \ r.
func (s RangeSet) SubtractRange(r Range) RangeSet {
	return s.Subtract(NewRangeSet(r))
}

// subtractRange returns a \ b as zero, one or two ranges.
func subtractRange(a, b Range) []Range {
	x := a.Intersect(b)
	if x.Empty() {
		return []Range{a}
	}
	var out []Range
	if a.Low < x.Low {
		out = append(out, Range{Low: a.Low, High: x.Low})
	}
	if !x.unbounded() && (a.unbounded() || x.High < a.High) {
		out = append(out, Range{Low: x.High, High: a.High})
	}
	return out
}

// Equal reports whether the two sets contain exactly the same keys.
func (s RangeSet) Equal(other RangeSet) bool {
	if len(s.ranges) != len(other.ranges) {
		return false
	}
	for i, r := range s.ranges {
		o := other.ranges[i]
		if r.Low != o.Low {
			return false
		}
		if r.unbounded() != o.unbounded() {
			return false
		}
		if !r.unbounded() && r.High != o.High {
			return false
		}
	}
	return true
}

// Covers reports whether the set contains every key of other.
func (s RangeSet) Covers(other RangeSet) bool {
	return other.Subtract(s).Empty()
}

// String renders the set as a list of ranges.
func (s RangeSet) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
