package cache

import "unbundle/internal/metrics"

// cacheMetrics holds the cache layer's registry instruments, resolved once
// at cluster construction. Both cluster flavors report here, so one snapshot
// compares the watch-model cache and the pubsub-invalidated baseline on the
// same axes: hits, misses, and how often clients fell through to the store.
type cacheMetrics struct {
	watchHits, watchMisses   *metrics.Counter
	pubsubHits, pubsubMisses *metrics.Counter
	storeFallbacks           *metrics.Counter
	snapQueries, snapMisses  *metrics.Counter
}

func newCacheMetrics(reg *metrics.Registry) cacheMetrics {
	reg = reg.Or()
	return cacheMetrics{
		watchHits:      reg.Counter("cache_watch_hits_total"),
		watchMisses:    reg.Counter("cache_watch_misses_total"),
		pubsubHits:     reg.Counter("cache_pubsub_hits_total"),
		pubsubMisses:   reg.Counter("cache_pubsub_misses_total"),
		storeFallbacks: reg.Counter("cache_store_fallbacks_total"),
		snapQueries:    reg.Counter("cache_snapshot_queries_total"),
		snapMisses:     reg.Counter("cache_snapshot_query_misses_total"),
	}
}
