package cache

import (
	"fmt"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
	"unbundle/internal/sharder"
	"unbundle/internal/workload"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPodBasics(t *testing.T) {
	clock := clockwork.NewFake()
	p := NewPod("p0")
	now := clock.Now()
	if _, ok := p.Get("k", now, 0); ok {
		t.Fatal("empty pod hit")
	}
	p.Put("k", Entry{Value: []byte("v"), StoredAt: now})
	if e, ok := p.Get("k", now, 0); !ok || string(e.Value) != "v" {
		t.Fatalf("get = %+v %v", e, ok)
	}
	// TTL expiry.
	clock.Advance(time.Minute)
	if _, ok := p.Get("k", clock.Now(), 30*time.Second); ok {
		t.Fatal("expired entry served")
	}
	st := p.Stats()
	if st.TTLExpiries != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	p.Put("a", Entry{})
	p.Put("b", Entry{})
	p.DropRange(keyspace.Range{Low: "a", High: "b"})
	if _, ok := p.Get("a", now, 0); ok {
		t.Fatal("dropped entry served")
	}
	if _, ok := p.Get("b", now, 0); !ok {
		t.Fatal("out-of-range entry dropped")
	}
}

// TestFigure2Race reproduces the paper's Figure 2 deterministically: the
// invalidation for x is acknowledged by p_old because the pubsub router's
// view of the auto-sharder lags, so p_new caches a stale value forever.
func TestFigure2Race(t *testing.T) {
	clock := clockwork.NewFake()
	c, err := NewPubSubCluster(PubSubConfig{
		Clock:         clock,
		Mode:          ModeRouted,
		Pods:          []sharder.Pod{"p0", "p1"},
		RouterLag:     time.Second,
		InitialShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle := NewOracle(c.Store())

	// Let the router learn the initial table.
	clock.Advance(time.Second)
	waitUntil(t, "router init", func() bool { return c.RouterGeneration() >= 1 })

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	clock.Advance(10 * time.Millisecond)
	c.Pump() // v1 invalidation lands wherever; nothing cached yet

	pOld := c.Sharder().Owner(x)
	pNew := sharder.Pod("p1")
	if pOld == pNew {
		pNew = "p0"
	}
	// p_old serves and caches x.
	if res, _ := c.Read(x); res.Pod != pOld {
		t.Fatalf("setup: read served by %q, want %q", res.Pod, pOld)
	}

	// The auto-sharder moves x to p_new; p_new immediately serves (fetches
	// the current value v1); the router still routes to p_old.
	target := keyspace.NumericRange(100, 101)
	if err := c.Sharder().MoveRange(target, pNew); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Read(x) // p_new fetches v1 and caches it
	if res.Pod != pNew || res.CacheHit {
		t.Fatalf("post-move read = %+v", res)
	}

	// The write races with the handoff: x updates to v2, the invalidation is
	// published, and the router — still on the old table — delivers it to
	// p_old, which acknowledges it into the void.
	c.Update(x, workload.Value(x, 2))
	c.Pump()

	// The router eventually catches up; too late.
	clock.Advance(2 * time.Second)
	waitUntil(t, "router catchup", func() bool { return c.RouterGeneration() >= 2 })
	c.Pump()

	// p_new still serves v1 — permanently stale.
	res, _ = c.Read(x)
	if !res.CacheHit || res.Pod != pNew {
		t.Fatalf("final read = %+v", res)
	}
	if oracle.ScoreRead(x, res.Value) {
		t.Fatal("read was fresh; the race did not reproduce")
	}
	stale, checked := oracle.SweepPubSub(c)
	if stale == 0 || checked == 0 {
		t.Fatalf("sweep found %d/%d stale", stale, checked)
	}
	if st := oracle.Stats(); st.StaleReads != 1 {
		t.Fatalf("oracle stats = %+v", st)
	}
}

// TestFigure2LeaseClosesRace: with leases, the invalidation is requeued
// until the new owner is active, so no stale entry survives — but reads
// during the lease window fall back to the store (the availability price).
func TestFigure2LeaseClosesRace(t *testing.T) {
	clock := clockwork.NewFake()
	c, err := NewPubSubCluster(PubSubConfig{
		Clock:         clock,
		Mode:          ModeLease,
		Pods:          []sharder.Pod{"p0", "p1"},
		RouterLag:     time.Second,
		LeaseDuration: 5 * time.Second,
		InitialShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle := NewOracle(c.Store())

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	c.Pump()
	pOld := c.Sharder().Owner(x)
	pNew := sharder.Pod("p1")
	if pOld == pNew {
		pNew = "p0"
	}
	c.Read(x)

	if err := c.Sharder().MoveRange(keyspace.NumericRange(100, 101), pNew); err != nil {
		t.Fatal(err)
	}
	// During the lease window, reads are unavailable (store fallback).
	res, _ := c.Read(x)
	if !res.Unavailable {
		t.Fatalf("read during lease window = %+v, want unavailable", res)
	}
	// The racing update's invalidation cannot be acknowledged yet.
	c.Update(x, workload.Value(x, 2))
	c.Pump()
	if st := c.Stats(); st.Requeued == 0 {
		t.Fatalf("invalidation was not requeued: %+v", st)
	}
	// Lease matures; the requeued invalidation delivers to p_new.
	clock.Advance(6 * time.Second)
	c.Pump()
	res, _ = c.Read(x) // p_new fetches fresh v2
	if res.Unavailable {
		t.Fatal("still unavailable after lease")
	}
	if !oracle.ScoreRead(x, res.Value) {
		t.Fatal("lease mode served stale data")
	}
	stale, _ := oracle.SweepPubSub(c)
	if stale != 0 {
		t.Fatalf("stale entries with leases: %d", stale)
	}
	if c.Stats().Unavailable == 0 {
		t.Fatal("lease mode reported no unavailability — the tradeoff vanished")
	}
}

// TestFanoutAvoidsRaceAtFullCost: free-consumer fanout invalidates
// everywhere, so the moved entry is fixed — but every pod pays for every
// message.
func TestFanoutAvoidsRaceAtFullCost(t *testing.T) {
	clock := clockwork.NewFake()
	c, err := NewPubSubCluster(PubSubConfig{
		Clock:         clock,
		Mode:          ModeFanout,
		Pods:          []sharder.Pod{"p0", "p1", "p2", "p3"},
		InitialShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle := NewOracle(c.Store())

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	c.Pump()
	pOld := c.Sharder().Owner(x)
	c.Read(x)
	pNew := sharder.Pod("p0")
	if pOld == pNew {
		pNew = "p1"
	}
	c.Sharder().MoveRange(keyspace.NumericRange(100, 101), pNew)
	c.Read(x) // p_new caches v1
	c.Update(x, workload.Value(x, 2))
	c.Pump() // fanout reaches p_new too

	res, _ := c.Read(x)
	if !oracle.ScoreRead(x, res.Value) {
		t.Fatal("fanout served stale data")
	}
	// Cost: 2 updates × 4 pods-worth of deliveries (each pod consumed both
	// messages).
	if st := c.Stats(); st.PodMessages != 8 {
		t.Fatalf("pod messages = %d, want 8 (every pod pays for every message)", st.PodMessages)
	}
}

// TestWatchClusterConvergesThroughHandoff: the same Figure 2 schedule on the
// watch cluster produces a fresh read — the new owner's knowledge comes from
// the store and the range watch, not from a racing router.
func TestWatchClusterConvergesThroughHandoff(t *testing.T) {
	c := NewWatchCluster(WatchConfig{
		Pods:          []sharder.Pod{"p0", "p1"},
		InitialShards: 2,
	})
	defer c.Close()
	oracle := NewOracle(c.Store())

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	pOld := c.Sharder().Owner(x)
	pNew := sharder.Pod("p1")
	if pOld == pNew {
		pNew = "p0"
	}
	waitUntil(t, "initial coverage", func() bool { return c.Pods()[pOld].Covers(x) })
	if res, _ := c.Read(x); !res.CacheHit {
		t.Fatalf("owner did not serve from knowledge")
	}

	if err := c.Sharder().MoveRange(keyspace.NumericRange(100, 101), pNew); err != nil {
		t.Fatal(err)
	}
	// The racing update lands mid-handoff.
	c.Update(x, workload.Value(x, 2))
	waitUntil(t, "new owner coverage", func() bool { return c.Pods()[pNew].Covers(x) })
	waitUntil(t, "fresh value propagated", func() bool {
		res, _ := c.Read(x)
		return string(res.Value) == string(workload.Value(x, 2))
	})
	res, _ := c.Read(x)
	if !oracle.ScoreRead(x, res.Value) {
		t.Fatal("watch cluster served stale data")
	}
	stale, checked := oracle.SweepWatch(c)
	if stale != 0 {
		t.Fatalf("stale entries: %d/%d", stale, checked)
	}
	// The old owner dropped its copy.
	waitUntil(t, "old owner dropped range", func() bool { return !c.Pods()[pOld].Covers(x) })
}

// TestWatchClusterSurvivesHubWipe: destroying the watch system's soft state
// costs a resync, not correctness.
func TestWatchClusterSurvivesHubWipe(t *testing.T) {
	c := NewWatchCluster(WatchConfig{
		Pods:          []sharder.Pod{"p0"},
		InitialShards: 1,
	})
	defer c.Close()
	oracle := NewOracle(c.Store())

	x := keyspace.NumericKey(5)
	c.Update(x, workload.Value(x, 1))
	waitUntil(t, "coverage", func() bool { return c.Pods()["p0"].Covers(x) })

	c.Hub().Wipe()
	c.Update(x, workload.Value(x, 2))
	waitUntil(t, "recovered freshness", func() bool {
		res, _ := c.Read(x)
		return oracleFresh(oracle, x, res.Value)
	})
	if c.Pods()["p0"].Resyncs() == 0 {
		t.Fatal("wipe did not resync the pod")
	}
}

func oracleFresh(o *Oracle, k keyspace.Key, served []byte) bool {
	// ScoreRead mutates counters; use a throwaway comparison for polling.
	want, _, ok, _ := o.store.Get(k, 0)
	return ok && string(want) == string(served)
}

func TestWatchPodSnapshotServing(t *testing.T) {
	c := NewWatchCluster(WatchConfig{Pods: []sharder.Pod{"p0"}, InitialShards: 1})
	defer c.Close()

	a, b := keyspace.NumericKey(10), keyspace.NumericKey(20)
	c.Update(a, []byte("a1"))
	c.Update(b, []byte("b1"))
	pod := c.Pods()["p0"]
	waitUntil(t, "coverage", func() bool { return pod.Covers(a) && pod.Covers(b) })

	v, ok := pod.StitchVersion(keyspace.Point(a), keyspace.Point(b))
	if !ok {
		t.Fatalf("stitch failed: %v", pod.Knowledge())
	}
	waitUntil(t, "frontier catches writes", func() bool {
		v2, ok2 := pod.StitchVersion(keyspace.Point(a), keyspace.Point(b))
		return ok2 && v2 >= 2
	})
	v, _ = pod.StitchVersion(keyspace.Point(a), keyspace.Point(b))
	val, ok, served := pod.GetAt(a, v)
	if !served || !ok || string(val) != "a1" {
		t.Fatalf("GetAt = %q/%v/%v", val, ok, served)
	}
	entries, ok := pod.SnapshotAt(keyspace.NumericRange(0, 100), v)
	if !ok || len(entries) != 2 {
		t.Fatalf("SnapshotAt = %v ok=%v", entries, ok)
	}
	// Update a; old snapshot at v still serves a1 (immutability).
	c.Update(a, []byte("a2"))
	waitUntil(t, "new version arrives", func() bool {
		latest, _, ok2, served := pod.GetLatest(a)
		return ok2 && served && string(latest) == "a2"
	})
	valOld, okOld, _ := pod.GetAt(a, v)
	if !okOld || string(valOld) != "a1" {
		t.Fatalf("knowledge region mutated: %q", valOld)
	}
}

func TestWatchPodPrune(t *testing.T) {
	c := NewWatchCluster(WatchConfig{Pods: []sharder.Pod{"p0"}, InitialShards: 1})
	defer c.Close()
	x := keyspace.NumericKey(1)
	c.Update(x, []byte("v1"))
	c.Update(x, []byte("v2"))
	c.Update(x, []byte("v3"))
	pod := c.Pods()["p0"]
	waitUntil(t, "v3 arrives", func() bool {
		v, _, ok, served := pod.GetLatest(x)
		return ok && served && string(v) == "v3"
	})
	pod.PruneBelow(keyspace.Full(), 3)
	if _, ok, served := pod.GetAt(x, 1); ok && served {
		t.Fatal("pruned version still servable")
	}
	if v, _, ok, _ := pod.GetLatest(x); !ok || string(v) != "v3" {
		t.Fatal("latest lost by pruning")
	}
}

// TestQuerySnapshotStitchesAcrossPods: a multi-range query spanning pods is
// served at one consistent version, verified against the store oracle.
func TestQuerySnapshotStitchesAcrossPods(t *testing.T) {
	c := NewWatchCluster(WatchConfig{
		Pods:          []sharder.Pod{"p0", "p1", "p2", "p3"},
		InitialShards: 4,
	})
	defer c.Close()
	for i := 0; i < 200; i++ {
		k := keyspace.NumericKey(i * 20) // spread over all shards
		c.Update(k, workload.Value(k, 1))
	}
	q1 := keyspace.NumericRange(0, 100)     // pod of shard 0
	q2 := keyspace.NumericRange(3000, 3100) // a different pod
	waitUntil(t, "stitchable", func() bool {
		_, _, ok := c.QuerySnapshot(q1, q2)
		return ok
	})
	v, entries, ok := c.QuerySnapshot(q1, q2)
	if !ok {
		t.Fatal("query not servable")
	}
	// Verify against the store at exactly v.
	var want []core.Entry
	for _, r := range []keyspace.Range{q1, q2} {
		es, err := c.Store().Scan(r, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, es...)
	}
	got := map[keyspace.Key]string{}
	for _, e := range entries {
		got[e.Key] = string(e.Value)
	}
	if len(got) != len(want) {
		t.Fatalf("stitched %d entries, store has %d at %v", len(got), len(want), v)
	}
	for _, e := range want {
		if got[e.Key] != string(e.Value) {
			t.Fatalf("stitched %q=%q, store %q", e.Key, got[e.Key], e.Value)
		}
	}
}

// TestQuerySnapshotConsistentUnderWrites: while writes keep flowing, every
// successful stitched query must still equal the store at its version —
// never a torn mixture.
func TestQuerySnapshotConsistentUnderWrites(t *testing.T) {
	c := NewWatchCluster(WatchConfig{
		Pods:          []sharder.Pod{"p0", "p1"},
		InitialShards: 2,
	})
	defer c.Close()
	a, b := keyspace.NumericKey(100), keyspace.NumericKey(1500) // different shards
	// Let the pods establish knowledge before querying.
	c.Update(a, []byte("a0"))
	c.Update(b, []byte("b0"))
	waitUntil(t, "coverage", func() bool {
		_, _, ok := c.QuerySnapshot(keyspace.Point(a), keyspace.Point(b))
		return ok
	})
	served := 0
	for i := 1; i <= 100; i++ {
		time.Sleep(200 * time.Microsecond) // writer pacing
		// A cross-shard transaction: both keys move together.
		c.Store().Commit(func(tx *mvcc.Tx) error {
			tx.Put(a, []byte(fmt.Sprintf("a%d", i)))
			tx.Put(b, []byte(fmt.Sprintf("b%d", i)))
			return nil
		})
		v, entries, ok := c.QuerySnapshot(keyspace.Point(a), keyspace.Point(b))
		if !ok {
			continue
		}
		served++
		vals := map[keyspace.Key]string{}
		for _, e := range entries {
			vals[e.Key] = string(e.Value)
		}
		// Both values must come from the same committed transaction.
		wantA, _, okA, _ := c.Store().Get(a, v)
		wantB, _, okB, _ := c.Store().Get(b, v)
		if okA != (vals[a] != "") || okB != (vals[b] != "") ||
			vals[a] != string(wantA) || vals[b] != string(wantB) {
			t.Fatalf("iteration %d: torn snapshot at %v: %v (want %q/%q)", i, v, vals, wantA, wantB)
		}
		if vals[a] != "" && vals[b] != "" && vals[a][1:] != vals[b][1:] {
			t.Fatalf("iteration %d: cross-shard tear: %q vs %q", i, vals[a], vals[b])
		}
	}
	if served == 0 {
		t.Fatal("no query was ever servable")
	}
}

// TestReadAtLeastSessionConsistency: a client that just wrote at version v
// never observes an older value through the cache, even mid-propagation.
func TestReadAtLeastSessionConsistency(t *testing.T) {
	c := NewWatchCluster(WatchConfig{Pods: []sharder.Pod{"p0"}, InitialShards: 1})
	defer c.Close()
	k := keyspace.NumericKey(7)
	c.Update(k, []byte("v0"))
	waitUntil(t, "coverage", func() bool { return c.Pods()["p0"].Covers(k) })

	for i := 1; i <= 200; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		v := c.Store().Put(k, want) // the client's own write at version v
		res, err := c.ReadAtLeast(k, v)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Value) != string(want) {
			t.Fatalf("iteration %d: read-your-writes violated: %q (wrote %q)", i, res.Value, want)
		}
	}
	// Plain GetAtLeast refuses to serve beyond its frontier.
	pod := c.Pods()["p0"]
	future := c.Store().CurrentVersion() + 100
	if _, _, served := pod.GetAtLeast(k, future); served {
		t.Fatal("pod claimed freshness it cannot have")
	}
}
