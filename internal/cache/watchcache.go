package cache

import (
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/sharder"
)

// versionedValue is one version of a key in a watch pod's cache.
type versionedValue struct {
	version core.Version
	value   []byte
	deleted bool
}

// WatchPod is a cache server in the watch model: for each key range the
// auto-sharder assigns it, the pod runs the snapshot-then-watch protocol
// against the store, keeps small per-key version chains, and tracks its
// knowledge regions (Figure 5). It can therefore serve
//
//   - fresh reads (latest known version), with staleness bounded by
//     propagation — never permanent, because every change to an owned range
//     arrives either as an event or as a resync;
//   - snapshot-consistent reads at any version inside its knowledge windows,
//     stitched across ranges (§4.3).
type WatchPod struct {
	Name sharder.Pod

	store core.Snapshotter
	src   core.Watchable

	mu       sync.Mutex
	chains   map[keyspace.Key][]versionedValue
	know     *core.KnowledgeSet
	ranges   keyspace.RangeSet
	watchers map[string]*core.ResyncWatcher

	met          cacheMetrics
	hits, misses int64
}

var _ core.SyncedConsumer = (*WatchPod)(nil)

// NewWatchPod creates a pod that recovers from store and watches src.
func NewWatchPod(name sharder.Pod, store core.Snapshotter, src core.Watchable) *WatchPod {
	return &WatchPod{
		Name:     name,
		store:    store,
		src:      src,
		chains:   make(map[keyspace.Key][]versionedValue),
		know:     core.NewKnowledgeSet(),
		watchers: make(map[string]*core.ResyncWatcher),
		met:      newCacheMetrics(nil),
	}
}

// SetRanges reconciles the pod's watchers with a new assignment: lost ranges
// stop watching and drop their data and knowledge; gained ranges snapshot
// and watch. Handoffs are safe *because* knowledge regions are immutable —
// the new owner rebuilds exact versioned state from the store (§4.3).
func (wp *WatchPod) SetRanges(ranges []keyspace.Range) error {
	want := keyspace.NewRangeSet(ranges...)
	wp.mu.Lock()
	have := wp.ranges
	wp.ranges = want
	var toStop []*core.ResyncWatcher
	for key, w := range wp.watchers {
		covered := false
		for _, r := range ranges {
			if r.String() == key {
				covered = true
				break
			}
		}
		if !covered {
			toStop = append(toStop, w)
			delete(wp.watchers, key)
		}
	}
	wp.mu.Unlock()

	for _, w := range toStop {
		w.Stop()
	}
	// Drop data the pod no longer owns.
	for _, r := range have.Subtract(want).Ranges() {
		wp.dropRange(r)
	}
	// Start watching gained ranges.
	var firstErr error
	for _, r := range ranges {
		key := r.String()
		wp.mu.Lock()
		_, exists := wp.watchers[key]
		wp.mu.Unlock()
		if exists {
			continue
		}
		w := core.NewResyncWatcher(wp.store, wp.src, r, wp)
		wp.mu.Lock()
		wp.watchers[key] = w
		wp.mu.Unlock()
		if err := w.Start(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (wp *WatchPod) dropRange(r keyspace.Range) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for k := range wp.chains {
		if r.Contains(k) {
			delete(wp.chains, k)
		}
	}
	wp.know.Drop(r)
}

// ResetSnapshot implements core.SyncedConsumer.
func (wp *WatchPod) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for k := range wp.chains {
		if r.Contains(k) {
			delete(wp.chains, k)
		}
	}
	for _, e := range entries {
		wp.chains[e.Key] = []versionedValue{{version: e.Version, value: e.Value}}
	}
	wp.know.AddSnapshot(r, at)
}

// ApplyChange implements core.SyncedConsumer.
func (wp *WatchPod) ApplyChange(ev core.ChangeEvent) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	chain := wp.chains[ev.Key]
	if n := len(chain); n > 0 && chain[n-1].version >= ev.Version {
		return // duplicate or stale replay; per-key order makes this a no-op
	}
	wp.chains[ev.Key] = append(chain, versionedValue{
		version: ev.Version,
		value:   ev.Mut.Value,
		deleted: ev.Mut.Op == core.OpDelete,
	})
}

// AdvanceFrontier implements core.SyncedConsumer.
func (wp *WatchPod) AdvanceFrontier(p core.ProgressEvent) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	wp.know.ExtendTo(p.Range, p.Version)
}

// Covers reports whether the pod currently has knowledge covering k.
func (wp *WatchPod) Covers(k keyspace.Key) bool {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	_, _, ok := wp.know.WindowAt(k)
	return ok
}

// GetLatest serves the freshest known value of k. served=false means the pod
// has no knowledge for k (not assigned, or still snapshotting) and the
// caller should fall back to the store; ok=false with served=true means the
// key is known not to exist.
func (wp *WatchPod) GetLatest(k keyspace.Key) (val []byte, ver core.Version, ok, served bool) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if _, _, covered := wp.know.WindowAt(k); !covered {
		wp.misses++
		wp.met.watchMisses.Inc()
		return nil, 0, false, false
	}
	chain := wp.chains[k]
	if len(chain) == 0 {
		wp.hits++
		wp.met.watchHits.Inc()
		return nil, 0, false, true
	}
	tail := chain[len(chain)-1]
	wp.hits++
	wp.met.watchHits.Inc()
	if tail.deleted {
		return nil, tail.version, false, true
	}
	return tail.value, tail.version, true, true
}

// GetAt serves k exactly as of version v, if v is inside the pod's knowledge
// window for k.
func (wp *WatchPod) GetAt(k keyspace.Key, v core.Version) (val []byte, ok, served bool) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	lo, hi, covered := wp.know.WindowAt(k)
	if !covered || v < lo || v > hi {
		return nil, false, false
	}
	chain := wp.chains[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].version <= v {
			if chain[i].deleted {
				return nil, false, true
			}
			return chain[i].value, true, true
		}
	}
	return nil, false, true // key did not exist at v
}

// StitchVersion exposes the pod's knowledge stitching (Figure 5).
func (wp *WatchPod) StitchVersion(ranges ...keyspace.Range) (core.Version, bool) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return wp.know.StitchVersion(ranges...)
}

// SnapshotAt returns all live entries of r at version v, if servable.
func (wp *WatchPod) SnapshotAt(r keyspace.Range, v core.Version) ([]core.Entry, bool) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if !wp.know.CanServe(r, v) {
		return nil, false
	}
	var out []core.Entry
	for k, chain := range wp.chains {
		if !r.Contains(k) {
			continue
		}
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].version <= v {
				if !chain[i].deleted {
					out = append(out, core.Entry{Key: k, Value: chain[i].value, Version: chain[i].version})
				}
				break
			}
		}
	}
	return out, true
}

// Knowledge returns a copy-safe view of the pod's regions (test assertions).
func (wp *WatchPod) Knowledge() []core.KnowledgeRegion {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return append([]core.KnowledgeRegion(nil), wp.know.Regions()...)
}

// PruneBelow evicts value history below v for r, updating knowledge floors.
func (wp *WatchPod) PruneBelow(r keyspace.Range, v core.Version) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for k, chain := range wp.chains {
		if !r.Contains(k) {
			continue
		}
		// Keep the newest version <= v (still visible at v) and everything
		// after it.
		keepFrom := 0
		for i, vv := range chain {
			if vv.version <= v {
				keepFrom = i
			}
		}
		if keepFrom > 0 {
			wp.chains[k] = append([]versionedValue(nil), chain[keepFrom:]...)
		}
	}
	wp.know.PruneBelow(r, v)
}

// Resyncs sums resync counts across the pod's watchers.
func (wp *WatchPod) Resyncs() int64 {
	wp.mu.Lock()
	ws := make([]*core.ResyncWatcher, 0, len(wp.watchers))
	for _, w := range wp.watchers {
		ws = append(ws, w)
	}
	wp.mu.Unlock()
	var n int64
	for _, w := range ws {
		n += w.Resyncs()
	}
	return n
}

// HitStats returns (hits, misses).
func (wp *WatchPod) HitStats() (int64, int64) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return wp.hits, wp.misses
}

// Stop stops all watchers.
func (wp *WatchPod) Stop() {
	wp.mu.Lock()
	ws := make([]*core.ResyncWatcher, 0, len(wp.watchers))
	for _, w := range wp.watchers {
		ws = append(ws, w)
	}
	wp.watchers = make(map[string]*core.ResyncWatcher)
	wp.mu.Unlock()
	for _, w := range ws {
		w.Stop()
	}
}

// WatchConfig configures a watch-model cache cluster.
type WatchConfig struct {
	Clock clockwork.Clock
	Pods  []sharder.Pod
	// PodLag is how far each pod's view of the sharder trails reality.
	// Unlike the pubsub router lag, this costs only brief store fallbacks,
	// never staleness.
	PodLag        time.Duration
	InitialShards int
	// Coalesce enables sharder range coalescing.
	Coalesce bool
	Hub      core.HubConfig
	// Metrics is the registry the cluster's instruments register in; nil
	// uses metrics.Default(). The embedded hub inherits it unless Hub.Metrics
	// names its own.
	Metrics *metrics.Registry
}

// WatchCluster is the unbundled counterpart: store + watch hub + sharded
// watch pods. No invalidation topic exists; the store's CDC feed and the
// watch contract replace it.
type WatchCluster struct {
	clock  clockwork.Clock
	store  *mvcc.Store
	hub    *core.Hub
	detach func()
	shd    *sharder.Sharder
	pods   map[sharder.Pod]*WatchPod
	unsubs []func()
	met    cacheMetrics

	mu            sync.Mutex
	storeFallback int64
}

// NewWatchCluster wires the unbundled architecture (Figure 4).
func NewWatchCluster(cfg WatchConfig) *WatchCluster {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	if cfg.Hub.Metrics == nil {
		cfg.Hub.Metrics = cfg.Metrics
	}
	store := mvcc.NewStore()
	hub := core.NewHub(cfg.Hub)
	detach := store.AttachCDC(keyspace.Full(), hub)
	c := &WatchCluster{
		clock:  cfg.Clock,
		store:  store,
		hub:    hub,
		detach: detach,
		shd: sharder.New(sharder.Config{
			Clock:          cfg.Clock,
			InitialShards:  cfg.InitialShards,
			CoalesceRanges: cfg.Coalesce,
		}, cfg.Pods...),
		pods: make(map[sharder.Pod]*WatchPod),
		met:  newCacheMetrics(cfg.Metrics),
	}
	for _, p := range cfg.Pods {
		pod := NewWatchPod(p, store, hub)
		pod.met = c.met
		c.pods[p] = pod
		podName := p
		unsub := c.shd.Subscribe(cfg.PodLag, func(t sharder.Table) {
			_ = pod.SetRanges(t.RangesOf(podName))
		})
		c.unsubs = append(c.unsubs, unsub)
	}
	return c
}

// Store exposes the authoritative store.
func (c *WatchCluster) Store() *mvcc.Store { return c.store }

// Hub exposes the watch hub (stats, failure injection).
func (c *WatchCluster) Hub() *core.Hub { return c.hub }

// Sharder exposes the auto-sharder.
func (c *WatchCluster) Sharder() *sharder.Sharder { return c.shd }

// Pods returns the pod map.
func (c *WatchCluster) Pods() map[sharder.Pod]*WatchPod { return c.pods }

// Update writes to the store; the CDC→hub→watchers pipeline does the rest.
func (c *WatchCluster) Update(k keyspace.Key, v []byte) {
	c.store.Put(k, v)
}

// Delete removes a key.
func (c *WatchCluster) Delete(k keyspace.Key) {
	c.store.Delete(k)
}

// Read serves k through the cluster.
func (c *WatchCluster) Read(k keyspace.Key) (ReadResult, error) {
	owner := c.shd.Owner(k)
	if owner == sharder.NoPod {
		c.mu.Lock()
		c.storeFallback++
		c.mu.Unlock()
		c.met.storeFallbacks.Inc()
		val, _, _, err := c.store.Get(k, core.NoVersion)
		return ReadResult{Value: val, Unavailable: true}, err
	}
	pod := c.pods[owner]
	val, _, ok, served := pod.GetLatest(k)
	if served {
		if !ok {
			return ReadResult{Pod: owner, CacheHit: true}, nil
		}
		return ReadResult{Value: val, CacheHit: true, Pod: owner}, nil
	}
	// The pod hasn't established knowledge yet (handoff in flight): the
	// client reads through to the store — brief latency, never staleness.
	c.mu.Lock()
	c.storeFallback++
	c.mu.Unlock()
	c.met.storeFallbacks.Inc()
	val2, _, _, err := c.store.Get(k, core.NoVersion)
	return ReadResult{Value: val2, Pod: owner}, err
}

// StoreFallbacks returns how many reads bypassed the cache.
func (c *WatchCluster) StoreFallbacks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeFallback
}

// Close stops pods, sharder and hub.
func (c *WatchCluster) Close() {
	for _, unsub := range c.unsubs {
		unsub()
	}
	c.shd.Close()
	for _, p := range c.pods {
		p.Stop()
	}
	c.detach()
	c.hub.Close()
}

// QuerySnapshot answers a multi-range query with a snapshot-consistent
// result stitched across the cluster's pods — the §5 research direction
// ("efficiently stitching together consistent views of source data from
// knowledge regions, potentially spread across multiple cache servers").
//
// It merges every pod's knowledge regions, finds the freshest version v at
// which all requested ranges are covered (Figure 5's green box), then serves
// each range at exactly v from a pod able to do so. ok=false means no
// consistent version currently spans the query; the caller may retry or
// fall back to the store.
func (c *WatchCluster) QuerySnapshot(ranges ...keyspace.Range) (core.Version, []core.Entry, bool) {
	c.met.snapQueries.Inc()
	pods := make([]*WatchPod, 0, len(c.pods))
	for _, p := range c.pods {
		pods = append(pods, p)
	}
	// Merge knowledge across pods.
	merged := core.NewKnowledgeSet()
	for _, p := range pods {
		for _, reg := range p.Knowledge() {
			one := core.NewKnowledgeSet()
			one.AddSnapshot(reg.Range, reg.Low)
			one.ExtendTo(reg.Range, reg.High)
			merged = merged.Union(one)
		}
	}
	v, ok := merged.StitchVersion(ranges...)
	if !ok || v == core.NoVersion {
		c.met.snapMisses.Inc()
		return 0, nil, false
	}
	// Serve each range at v from whichever pod can; ranges may need to be
	// pieced together from several pods' slices.
	var out []core.Entry
	for _, r := range ranges {
		remaining := keyspace.NewRangeSet(r)
		for _, p := range pods {
			if remaining.Empty() {
				break
			}
			for _, piece := range remaining.Ranges() {
				for _, reg := range p.Knowledge() {
					sub := piece.Intersect(reg.Range)
					if sub.Empty() {
						continue
					}
					entries, served := p.SnapshotAt(sub, v)
					if !served {
						continue
					}
					out = append(out, entries...)
					remaining = remaining.SubtractRange(sub)
				}
			}
		}
		if !remaining.Empty() {
			// Knowledge moved between the stitch and the fetch (a pod lost
			// the range mid-query): no consistent answer this round.
			c.met.snapMisses.Inc()
			return 0, nil, false
		}
	}
	return v, out, true
}

// GetAtLeast serves k only if the pod's knowledge is complete through at
// least version v — the "read your writes / monotonic reads" session
// guarantee: a client that wrote at version v passes v here and can never
// observe the cache rewind its own write, no matter which pod it lands on.
// served=false means this pod cannot yet prove freshness ≥ v; the caller
// waits or reads through to the store.
func (wp *WatchPod) GetAtLeast(k keyspace.Key, v core.Version) (val []byte, ok, served bool) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	_, hi, covered := wp.know.WindowAt(k)
	if !covered || hi < v {
		return nil, false, false
	}
	chain := wp.chains[k]
	if len(chain) == 0 {
		return nil, false, true // known absent through hi ≥ v
	}
	tail := chain[len(chain)-1]
	if tail.deleted {
		return nil, false, true
	}
	return tail.value, true, true
}

// ReadAtLeast routes a session-consistent read through the cluster: the
// owning pod serves it once its frontier reaches v; until then the client
// reads through to the store (which is trivially ≥ v).
func (c *WatchCluster) ReadAtLeast(k keyspace.Key, v core.Version) (ReadResult, error) {
	owner := c.shd.Owner(k)
	if owner != sharder.NoPod {
		if val, ok, served := c.pods[owner].GetAtLeast(k, v); served {
			if !ok {
				return ReadResult{Pod: owner, CacheHit: true}, nil
			}
			return ReadResult{Value: val, CacheHit: true, Pod: owner}, nil
		}
	}
	c.mu.Lock()
	c.storeFallback++
	c.mu.Unlock()
	c.met.storeFallbacks.Inc()
	val, _, _, err := c.store.Get(k, core.NoVersion)
	return ReadResult{Value: val, Pod: owner}, err
}
