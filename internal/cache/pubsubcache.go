package cache

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/sharder"
	"unbundle/internal/workload"
)

// Mode selects the pubsub invalidation topology.
type Mode int

const (
	// ModeRouted delivers each invalidation to the pod the *router's* view
	// of the auto-sharder says owns the key. The router's view lags reality
	// by RouterLag — Figure 2's race window.
	ModeRouted Mode = iota
	// ModeLease is ModeRouted plus sharder leases: a moved range has no
	// active owner until the old lease expires, and undeliverable
	// invalidations are requeued instead of acknowledged by a stale owner.
	// The race closes; availability pays for it.
	ModeLease
	// ModeFanout delivers every invalidation to every pod (free consumers on
	// the entire feed) — the §3.2.2 fallback "that does not scale as update
	// rates increase".
	ModeFanout
)

// String names the mode for tables.
func (m Mode) String() string {
	switch m {
	case ModeRouted:
		return "pubsub-routed"
	case ModeLease:
		return "pubsub-lease"
	case ModeFanout:
		return "pubsub-fanout"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// invalTopic is the invalidation topic name.
const invalTopic = "cache-invalidations"

// PubSubConfig configures a pubsub-invalidated cache cluster.
type PubSubConfig struct {
	Clock      clockwork.Clock
	Mode       Mode
	Pods       []sharder.Pod
	Partitions int // invalidation topic partitions (default 8)
	// RouterLag is how far the router's view of the sharder trails reality.
	RouterLag time.Duration
	// LeaseDuration configures the sharder's lease in ModeLease.
	LeaseDuration time.Duration
	// TTL, when positive, bounds staleness by expiring cache entries — the
	// §3.1 fallback whose cost is repeated refetching and whose benefit is
	// only eventual.
	TTL time.Duration
	// InitialShards for the sharder (default: one per pod).
	InitialShards int
	// Coalesce enables sharder range coalescing (production hygiene for
	// long move-heavy runs).
	Coalesce bool
	// Metrics is the registry the cluster's instruments register in; nil
	// uses metrics.Default(). The embedded broker shares it.
	Metrics *metrics.Registry
}

// PubSubCluster is the baseline: store + pubsub invalidations + sharded pods.
type PubSubCluster struct {
	cfg    PubSubConfig
	clock  clockwork.Clock
	store  *mvcc.Store
	broker *pubsub.Broker
	shd    *sharder.Sharder
	pods   map[sharder.Pod]*Pod

	// The router consumes the invalidation feed and forwards by ownership.
	feeds   []*pubsub.FreeConsumer // one per partition
	podFeed map[sharder.Pod][]*pubsub.FreeConsumer

	mu         sync.Mutex
	routerView sharder.Table // delayed view (ModeRouted)
	pending    []pubsub.Message

	met           cacheMetrics
	unsub         func()
	podUnsubs     []func()
	unavailable   int64 // reads that found no active owner (lease gaps)
	storeFallback int64 // reads served directly from the store
	delivered     int64 // invalidations applied to some pod
	requeued      int64
}

// NewPubSubCluster wires the baseline together.
func NewPubSubCluster(cfg PubSubConfig) (*PubSubCluster, error) {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	lease := time.Duration(0)
	if cfg.Mode == ModeLease {
		lease = cfg.LeaseDuration
		if lease <= 0 {
			lease = time.Second
		}
	}
	c := &PubSubCluster{
		cfg:    cfg,
		clock:  cfg.Clock,
		store:  mvcc.NewStore(),
		broker: pubsub.NewBroker(pubsub.BrokerConfig{Clock: cfg.Clock, Metrics: cfg.Metrics}),
		met:    newCacheMetrics(cfg.Metrics),
		shd: sharder.New(sharder.Config{
			Clock:          cfg.Clock,
			LeaseDuration:  lease,
			InitialShards:  cfg.InitialShards,
			CoalesceRanges: cfg.Coalesce,
		}, cfg.Pods...),
		pods:    make(map[sharder.Pod]*Pod),
		podFeed: make(map[sharder.Pod][]*pubsub.FreeConsumer),
	}
	if err := c.broker.CreateTopic(invalTopic, pubsub.TopicConfig{Partitions: cfg.Partitions}); err != nil {
		return nil, err
	}
	for _, p := range cfg.Pods {
		c.pods[p] = NewPod(p)
	}
	// Pods practice standard handoff hygiene: when the sharder takes a range
	// away, the pod drops its entries for it (they are unreachable by reads
	// anyway — and must not come back to life if the range ever returns).
	// This is pod-side knowledge, delivered promptly; the Figure 2 race is
	// about the *pubsub system's* routing knowledge, which lags separately.
	for _, p := range cfg.Pods {
		pod := c.pods[p]
		podName := p
		var prev keyspace.RangeSet
		first := true
		unsub := c.shd.Subscribe(0, func(t sharder.Table) {
			now := keyspace.NewRangeSet(t.RangesOf(podName)...)
			if !first {
				for _, lost := range prev.Subtract(now).Ranges() {
					pod.DropRange(lost)
				}
			}
			first = false
			prev = now
		})
		c.podUnsubs = append(c.podUnsubs, unsub)
	}
	switch cfg.Mode {
	case ModeFanout:
		for _, p := range cfg.Pods {
			for part := 0; part < cfg.Partitions; part++ {
				fc, err := c.broker.NewFreeConsumer(invalTopic, part, pubsub.FromLatest)
				if err != nil {
					return nil, err
				}
				c.podFeed[p] = append(c.podFeed[p], fc)
			}
		}
	default:
		for part := 0; part < cfg.Partitions; part++ {
			fc, err := c.broker.NewFreeConsumer(invalTopic, part, pubsub.FromLatest)
			if err != nil {
				return nil, err
			}
			c.feeds = append(c.feeds, fc)
		}
		// The router's assignment view trails the sharder by RouterLag.
		c.unsub = c.shd.Subscribe(cfg.RouterLag, func(t sharder.Table) {
			c.mu.Lock()
			c.routerView = t
			c.mu.Unlock()
		})
	}
	return c, nil
}

// Store exposes the authoritative store (the oracle reads it).
func (c *PubSubCluster) Store() *mvcc.Store { return c.store }

// Sharder exposes the auto-sharder (experiments script moves through it).
func (c *PubSubCluster) Sharder() *sharder.Sharder { return c.shd }

// Broker exposes the broker (for topic stats in E10).
func (c *PubSubCluster) Broker() *pubsub.Broker { return c.broker }

// Update writes a value to the store and publishes an invalidation — the
// producer-storage → pubsub pipeline of Figure 2.
func (c *PubSubCluster) Update(k keyspace.Key, v []byte) error {
	c.store.Put(k, v)
	_, _, err := c.broker.Publish(invalTopic, k, nil) // invalidation carries just the key
	return err
}

// Pump drains published invalidations and delivers them per the cluster's
// mode. Experiments call it after advancing the clock; the explicit pump
// keeps the race deterministic instead of schedule-dependent.
func (c *PubSubCluster) Pump() {
	switch c.cfg.Mode {
	case ModeFanout:
		for pod, feeds := range c.podFeed {
			for _, fc := range feeds {
				for {
					msg, ok := fc.Poll()
					if !ok {
						break
					}
					// Every pod sees every invalidation and applies it
					// locally; unowned keys are simply absent.
					if c.pods[pod].Invalidate(msg.Key) {
						c.bump(&c.delivered)
					}
				}
			}
		}
	default:
		c.mu.Lock()
		pending := c.pending
		c.pending = nil
		c.mu.Unlock()
		for _, fc := range c.feeds {
			for {
				msg, ok := fc.Poll()
				if !ok {
					break
				}
				pending = append(pending, msg)
			}
		}
		now := c.clock.Now()
		for _, msg := range pending {
			c.route(msg, now)
		}
	}
}

// route delivers one invalidation per the mode's ownership rule.
func (c *PubSubCluster) route(msg pubsub.Message, now time.Time) {
	var owner sharder.Pod
	switch c.cfg.Mode {
	case ModeLease:
		// Lease mode consults the authoritative table, but a range in its
		// lease gap has no owner allowed to acknowledge: requeue.
		owner = c.shd.Owner(msg.Key)
		if owner == sharder.NoPod {
			c.mu.Lock()
			c.pending = append(c.pending, msg)
			c.requeued++
			c.mu.Unlock()
			return
		}
	default: // ModeRouted
		// The router uses its *delayed* view — Figure 2: the pubsub system
		// learns about the reassignment late and picks p_old, which
		// acknowledges an invalidation that p_new needed.
		c.mu.Lock()
		view := c.routerView
		c.mu.Unlock()
		owner = view.Owner(msg.Key, now)
		if owner == sharder.NoPod {
			return // no view yet; ack and drop, as a real router would
		}
	}
	if pod, ok := c.pods[owner]; ok {
		pod.Invalidate(msg.Key)
		c.bump(&c.delivered)
	}
}

func (c *PubSubCluster) bump(f *int64) {
	c.mu.Lock()
	*f++
	c.mu.Unlock()
}

// RouterGeneration reports which sharder generation the router's (delayed)
// view reflects; tests and experiments use it to place themselves before or
// after the race window deterministically.
func (c *PubSubCluster) RouterGeneration() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routerView.Generation
}

// ReadResult describes how a read was served.
type ReadResult struct {
	Value       []byte
	CacheHit    bool
	Unavailable bool // no active owner; served from the store
	Pod         sharder.Pod
}

// Read serves k through the cluster: route to the current owner pod, serve
// from its cache or fetch from the store on miss.
func (c *PubSubCluster) Read(k keyspace.Key) (ReadResult, error) {
	now := c.clock.Now()
	owner := c.shd.Owner(k)
	if owner == sharder.NoPod {
		// Lease gap (or no pods): the client falls back to the store.
		c.mu.Lock()
		c.unavailable++
		c.storeFallback++
		c.mu.Unlock()
		c.met.storeFallbacks.Inc()
		val, _, _, err := c.store.Get(k, core.NoVersion)
		return ReadResult{Value: val, Unavailable: true}, err
	}
	pod := c.pods[owner]
	if e, ok := pod.Get(k, now, c.cfg.TTL); ok {
		c.met.pubsubHits.Inc()
		return ReadResult{Value: e.Value, CacheHit: true, Pod: owner}, nil
	}
	c.met.pubsubMisses.Inc()
	val, ver, ok, err := c.store.Get(k, core.NoVersion)
	if err != nil {
		return ReadResult{}, err
	}
	if ok {
		pod.Put(k, Entry{Value: val, Version: ver, StoredAt: now})
	}
	return ReadResult{Value: val, Pod: owner}, nil
}

// ClusterStats aggregates cluster counters.
type ClusterStats struct {
	Unavailable    int64
	StoreFallbacks int64
	Delivered      int64
	Requeued       int64
	PodMessages    int64 // total invalidation messages received across pods (fanout cost)
}

// Stats returns cluster counters.
func (c *PubSubCluster) Stats() ClusterStats {
	c.mu.Lock()
	st := ClusterStats{
		Unavailable:    c.unavailable,
		StoreFallbacks: c.storeFallback,
		Delivered:      c.delivered,
		Requeued:       c.requeued,
	}
	c.mu.Unlock()
	for _, feeds := range c.podFeed {
		for _, fc := range feeds {
			st.PodMessages += fc.Stats().Delivered
		}
	}
	return st
}

// Pods returns the pod map (for the oracle's final sweep).
func (c *PubSubCluster) Pods() map[sharder.Pod]*Pod { return c.pods }

// Close releases broker and sharder resources.
func (c *PubSubCluster) Close() {
	if c.unsub != nil {
		c.unsub()
	}
	for _, unsub := range c.podUnsubs {
		unsub()
	}
	c.shd.Close()
	c.broker.Close()
}

// SeqOfValue re-exports the workload payload parser so oracle users don't
// import workload directly.
func SeqOfValue(v []byte) int { return workload.SeqFromValue(v) }
