// Package cache implements the distributed cache-invalidation scenario of
// §3.2.2 twice, so the experiments can compare contracts head-to-head:
//
//   - PubSubCluster: pods cache on demand and rely on invalidation messages
//     routed through a pubsub broker. Three modes mirror the paper: keyed
//     consumer routing (whose view of the auto-sharder lags — the Figure 2
//     race), lease-serialized routing (closes the race, costs availability),
//     and free-consumer fanout (correct-ish, pays the full feed per pod).
//
//   - WatchCluster: pods watch their assigned key ranges against the store
//     through the core watch contract, maintain knowledge regions, and serve
//     reads whose staleness is bounded by propagation — with resync, never
//     silent loss, when they fall behind or acquire new ranges.
//
// A staleness oracle (oracle.go) scores every read and the final cache
// contents against the MVCC store's ground truth.
package cache

import (
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/sharder"
)

// Entry is one cached value.
type Entry struct {
	Value    []byte
	Version  core.Version // store version that wrote the value (0 if unknown)
	StoredAt time.Time    // cache-insert time, drives TTL expiry
}

// PodStats counts one pod's cache activity.
type PodStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	TTLExpiries   int64
	Entries       int
}

// Pod is a single cache server's local store: a flat map with TTL support.
// It is deliberately simple — the interesting behaviour lives in *who gets
// told* about invalidations, which is the clusters' job.
type Pod struct {
	Name sharder.Pod

	mu      sync.Mutex
	entries map[keyspace.Key]Entry

	hits, misses, invalidations, ttlExpiries int64
}

// NewPod creates an empty pod.
func NewPod(name sharder.Pod) *Pod {
	return &Pod{Name: name, entries: make(map[keyspace.Key]Entry)}
}

// Get returns the cached entry for k if present and, when ttl > 0, not
// expired at time now.
func (p *Pod) Get(k keyspace.Key, now time.Time, ttl time.Duration) (Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[k]
	if !ok {
		p.misses++
		return Entry{}, false
	}
	if ttl > 0 && now.Sub(e.StoredAt) >= ttl {
		delete(p.entries, k)
		p.ttlExpiries++
		p.misses++
		return Entry{}, false
	}
	p.hits++
	return e, true
}

// Put caches an entry.
func (p *Pod) Put(k keyspace.Key, e Entry) {
	p.mu.Lock()
	p.entries[k] = e
	p.mu.Unlock()
}

// Invalidate removes k, reporting whether an entry existed. Receiving an
// invalidation for a key one no longer caches is normal (and is how missed
// invalidations hide: the wrong pod "successfully" processes the message).
func (p *Pod) Invalidate(k keyspace.Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[k]
	delete(p.entries, k)
	p.invalidations++
	return ok
}

// DropRange removes every entry in r (ownership moved away).
func (p *Pod) DropRange(r keyspace.Range) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.entries {
		if r.Contains(k) {
			delete(p.entries, k)
		}
	}
}

// Snapshot returns a copy of current entries (for the oracle's final sweep).
func (p *Pod) Snapshot() map[keyspace.Key]Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[keyspace.Key]Entry, len(p.entries))
	for k, e := range p.entries {
		out[k] = e
	}
	return out
}

// Stats returns the pod's counters.
func (p *Pod) Stats() PodStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PodStats{
		Hits:          p.hits,
		Misses:        p.misses,
		Invalidations: p.invalidations,
		TTLExpiries:   p.ttlExpiries,
		Entries:       len(p.entries),
	}
}
