package cache

import (
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/sharder"
	"unbundle/internal/workload"
)

// TestTTLBoundsButDoesNotPreventStaleness: the §3.1 fallback. With a TTL,
// the Figure 2 victim entry is eventually refetched — so staleness is
// bounded by the TTL — but until then every read of it is stale, and the
// system spent the whole window serving wrong data.
func TestTTLBoundsButDoesNotPreventStaleness(t *testing.T) {
	clock := clockwork.NewFake()
	c, err := NewPubSubCluster(PubSubConfig{
		Clock:         clock,
		Mode:          ModeRouted,
		Pods:          []sharder.Pod{"p0", "p1"},
		RouterLag:     time.Second,
		TTL:           time.Minute,
		InitialShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle := NewOracle(c.Store())
	clock.Advance(time.Second)
	waitUntil(t, "router init", func() bool { return c.RouterGeneration() >= 1 })

	// Reproduce the Figure 2 race exactly as in TestFigure2Race.
	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	c.Pump()
	pOld := c.Sharder().Owner(x)
	pNew := sharder.Pod("p1")
	if pOld == pNew {
		pNew = "p0"
	}
	c.Read(x)
	c.Sharder().MoveRange(keyspace.NumericRange(100, 101), pNew)
	c.Read(x) // p_new caches the soon-stale value
	c.Update(x, workload.Value(x, 2))
	c.Pump()
	clock.Advance(2 * time.Second)
	waitUntil(t, "router catchup", func() bool { return c.RouterGeneration() >= 2 })
	c.Pump()

	// Within the TTL window: stale on every read.
	for i := 0; i < 5; i++ {
		clock.Advance(10 * time.Second) // 50s total < TTL
		res, _ := c.Read(x)
		if i < 4 && oracle.ScoreRead(x, res.Value) {
			t.Fatalf("read %d unexpectedly fresh before TTL expiry", i)
		}
	}
	// Past the TTL: the entry expires, the next read refetches — bounded
	// staleness, at the price of having served garbage for a minute.
	clock.Advance(time.Minute)
	res, _ := c.Read(x)
	if !oracle.ScoreRead(x, res.Value) {
		t.Fatal("read after TTL expiry still stale")
	}
	st := oracle.Stats()
	if st.StaleReads == 0 {
		t.Fatal("no staleness recorded during the TTL window")
	}
}
