package cache

import (
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/sharder"
)

// Oracle scores cache behaviour against the store's ground truth. It is
// omniscient by construction (it reads the MVCC store directly), which is
// exactly what the cache pods cannot be — the gap between what the oracle
// sees and what consumers are told is the paper's complaint.
type Oracle struct {
	store *mvcc.Store

	mu         sync.Mutex
	reads      int64
	staleReads int64
	staleness  *metrics.Histogram // versions behind, for stale reads
}

// NewOracle builds an oracle over the authoritative store.
func NewOracle(store *mvcc.Store) *Oracle {
	return &Oracle{store: store, staleness: metrics.NewHistogram()}
}

// ScoreRead records whether a served value matches the store's current value
// for k. Returns true when fresh.
func (o *Oracle) ScoreRead(k keyspace.Key, served []byte) bool {
	want, _, ok, _ := o.store.Get(k, core.NoVersion)
	fresh := string(served) == string(want) || (!ok && served == nil)
	o.mu.Lock()
	o.reads++
	if !fresh {
		o.staleReads++
		// Quantify the gap via the self-describing payload when possible.
		if ws, ss := SeqOfValue(want), SeqOfValue(served); ws > 0 && ss >= 0 && ws > ss {
			o.staleness.Observe(int64(ws - ss))
		} else {
			o.staleness.Observe(1)
		}
	}
	o.mu.Unlock()
	return fresh
}

// OracleStats summarizes read scoring.
type OracleStats struct {
	Reads      int64
	StaleReads int64
	Staleness  metrics.Snapshot // distribution of versions-behind on stale reads
}

// Stats returns the oracle's read scores.
func (o *Oracle) Stats() OracleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OracleStats{Reads: o.reads, StaleReads: o.staleReads, Staleness: o.staleness.Snapshot()}
}

// SweepPubSub inspects a quiesced pubsub cluster: for every entry a pod still
// caches in a range it currently owns, compare with the store. Entries that
// disagree are *permanently* stale — no future invalidation will fix them,
// only a TTL (if configured) or luck. This is Figure 2's end state.
func (o *Oracle) SweepPubSub(c *PubSubCluster) (staleEntries, checked int) {
	tbl := c.Sharder().Table()
	for name, pod := range c.Pods() {
		for k, e := range pod.Snapshot() {
			if ownerOf(tbl, k) != name {
				continue // orphaned entry on a non-owner: unreachable by reads
			}
			checked++
			want, _, ok, _ := o.store.Get(k, core.NoVersion)
			if !ok || string(want) != string(e.Value) {
				staleEntries++
			}
		}
	}
	return staleEntries, checked
}

// SweepWatch inspects a quiesced watch cluster the same way.
func (o *Oracle) SweepWatch(c *WatchCluster) (staleEntries, checked int) {
	tbl := c.Sharder().Table()
	for name, pod := range c.Pods() {
		for _, reg := range pod.Knowledge() {
			entries, okSnap := pod.SnapshotAt(reg.Range, reg.High)
			if !okSnap {
				continue
			}
			for _, e := range entries {
				if ownerOf(tbl, e.Key) != name {
					continue
				}
				checked++
				want, _, ok, _ := o.store.Get(e.Key, core.NoVersion)
				if !ok || string(want) != string(e.Value) {
					staleEntries++
				}
			}
		}
	}
	return staleEntries, checked
}

// ownerOf resolves an owner ignoring lease activation (the sweep runs after
// quiescence, when all leases have matured).
func ownerOf(t sharder.Table, k keyspace.Key) sharder.Pod {
	for _, a := range t.Assignments {
		if a.Range.Contains(k) {
			return a.Pod
		}
	}
	return sharder.NoPod
}
