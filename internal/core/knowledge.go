package core

import (
	"fmt"
	"sort"
	"strings"

	"unbundle/internal/keyspace"
)

// KnowledgeRegion is one blue rectangle of the paper's Figure 5: a key range
// and the inclusive version window [Low, High] for which the watcher has
// complete, versioned knowledge. Holding a region means: the watcher took a
// snapshot of Range at Low and has applied every change event with version
// in (Low, High], so it can reconstruct the exact state of Range at *any*
// version inside the window. Regions are immutable in the Figure 5 sense —
// the state at a version never changes once known — which is what makes
// dynamic replication and repartitioning safe (§4.3).
type KnowledgeRegion struct {
	Range keyspace.Range
	Low   Version // snapshot base (inclusive)
	High  Version // progress frontier (inclusive)
}

// String renders the region for logs.
func (k KnowledgeRegion) String() string {
	return fmt.Sprintf("%v@[%v,%v]", k.Range, k.Low, k.High)
}

// KnowledgeSet tracks a watcher's knowledge regions and answers the central
// query of §4.3: at which version (if any) can a snapshot-consistent view of
// a set of ranges be served or stitched together?
//
// Not safe for concurrent use; the owning watcher serializes access (watch
// callbacks are already single-goroutine).
type KnowledgeSet struct {
	regions []KnowledgeRegion // sorted by Range.Low, disjoint
}

// NewKnowledgeSet returns an empty set.
func NewKnowledgeSet() *KnowledgeSet { return &KnowledgeSet{} }

// Regions returns the normalized regions in key order. Callers must not
// modify the returned slice.
func (s *KnowledgeSet) Regions() []KnowledgeRegion { return s.regions }

// AddSnapshot records that a snapshot of r at version v was installed. Where
// the existing window already contains v the knowledge is kept (the snapshot
// taught us nothing new); elsewhere the window resets to [v, v] — a snapshot
// alone cannot bridge to disjoint older knowledge.
func (s *KnowledgeSet) AddSnapshot(r keyspace.Range, v Version) {
	s.apply(r, func(old *KnowledgeRegion) (Version, Version, bool) {
		if old != nil && old.Low <= v && v <= old.High {
			return old.Low, old.High, true
		}
		return v, v, true
	})
}

// ExtendTo records a progress event: every change in r up to v has been
// applied, so windows covering r extend their High to v. Parts of r with no
// existing window gain nothing — progress without a base snapshot is not
// knowledge.
func (s *KnowledgeSet) ExtendTo(r keyspace.Range, v Version) {
	s.apply(r, func(old *KnowledgeRegion) (Version, Version, bool) {
		if old == nil {
			return 0, 0, false
		}
		hi := old.High
		if v > hi {
			hi = v
		}
		return old.Low, hi, true
	})
}

// PruneBelow raises the window floor over r to v, modelling eviction of
// value history older than v from the watcher's cache. Windows that vanish
// (Low > High) are dropped.
func (s *KnowledgeSet) PruneBelow(r keyspace.Range, v Version) {
	s.apply(r, func(old *KnowledgeRegion) (Version, Version, bool) {
		if old == nil {
			return 0, 0, false
		}
		lo := old.Low
		if v > lo {
			lo = v
		}
		if lo > old.High {
			return 0, 0, false
		}
		return lo, old.High, true
	})
}

// Drop removes all knowledge over r (range reassigned away, or resync).
func (s *KnowledgeSet) Drop(r keyspace.Range) {
	s.apply(r, func(*KnowledgeRegion) (Version, Version, bool) {
		return 0, 0, false
	})
}

// apply rewrites the windows over r: for each sub-piece of r, f receives the
// existing region (nil if uncovered) and returns the new window and whether
// to keep it. Regions outside r are untouched.
func (s *KnowledgeSet) apply(r keyspace.Range, f func(old *KnowledgeRegion) (Version, Version, bool)) {
	if r.Empty() {
		return
	}
	out := make([]KnowledgeRegion, 0, len(s.regions)+2)
	uncovered := keyspace.NewRangeSet(r)
	for _, reg := range s.regions {
		inter := reg.Range.Intersect(r)
		if inter.Empty() {
			out = append(out, reg)
			continue
		}
		uncovered = uncovered.SubtractRange(reg.Range)
		for _, rest := range keyspace.NewRangeSet(reg.Range).SubtractRange(r).Ranges() {
			out = append(out, KnowledgeRegion{Range: rest, Low: reg.Low, High: reg.High})
		}
		if lo, hi, keep := f(&reg); keep {
			out = append(out, KnowledgeRegion{Range: inter, Low: lo, High: hi})
		}
	}
	for _, rest := range uncovered.Ranges() {
		if lo, hi, keep := f(nil); keep {
			out = append(out, KnowledgeRegion{Range: rest, Low: lo, High: hi})
		}
	}
	s.regions = normalizeRegions(out)
}

func normalizeRegions(regs []KnowledgeRegion) []KnowledgeRegion {
	sort.Slice(regs, func(i, j int) bool { return regs[i].Range.Low < regs[j].Range.Low })
	out := regs[:0]
	for _, reg := range regs {
		if reg.Range.Empty() {
			continue
		}
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Low == reg.Low && prev.High == reg.High && prev.Range.Adjacent(reg.Range) {
				prev.Range = prev.Range.Union(reg.Range)
				continue
			}
		}
		out = append(out, reg)
	}
	return out
}

// WindowAt returns the knowledge window covering key k.
func (s *KnowledgeSet) WindowAt(k keyspace.Key) (low, high Version, ok bool) {
	for _, reg := range s.regions {
		if reg.Range.Contains(k) {
			return reg.Low, reg.High, true
		}
		if reg.Range.Low > k {
			break
		}
	}
	return 0, 0, false
}

// CanServe reports whether a snapshot-consistent read of r at exactly
// version v can be served from this knowledge.
func (s *KnowledgeSet) CanServe(r keyspace.Range, v Version) bool {
	_, ok := s.stitch([]keyspace.Range{r}, v, v)
	return ok
}

// StitchVersion finds the freshest version at which a snapshot-consistent
// view spanning all the given ranges can be served — the paper's green box
// in Figure 5: a version inside every covering region's window. It returns
// false when no such version exists (coverage gap, or the windows do not
// overlap in version space).
func (s *KnowledgeSet) StitchVersion(ranges ...keyspace.Range) (Version, bool) {
	return s.stitch(ranges, NoVersion, Version(^uint64(0)))
}

// stitch computes the freshest servable version within [vlo, vhi].
func (s *KnowledgeSet) stitch(ranges []keyspace.Range, vlo, vhi Version) (Version, bool) {
	needed := keyspace.NewRangeSet(ranges...)
	if needed.Empty() {
		return NoVersion, false
	}
	low, high := vlo, vhi
	remaining := needed
	for _, reg := range s.regions {
		if !needed.IntersectRange(reg.Range).Empty() {
			remaining = remaining.SubtractRange(reg.Range)
			if reg.Low > low {
				low = reg.Low
			}
			if reg.High < high {
				high = reg.High
			}
		}
	}
	if !remaining.Empty() || low > high {
		return NoVersion, false
	}
	return high, true
}

// Union merges knowledge from another watcher (overlapping, redundant
// regions across affinitized servers, §4.3). For overlapping key ranges the
// windows combine only when they overlap in version space; otherwise the
// fresher window (higher High) wins.
func (s *KnowledgeSet) Union(other *KnowledgeSet) *KnowledgeSet {
	out := &KnowledgeSet{regions: append([]KnowledgeRegion(nil), s.regions...)}
	for _, reg := range other.regions {
		out.apply(reg.Range, func(old *KnowledgeRegion) (Version, Version, bool) {
			if old == nil {
				return reg.Low, reg.High, true
			}
			// Overlapping version windows merge into a wider window.
			if reg.Low <= old.High && old.Low <= reg.High {
				lo, hi := old.Low, old.High
				if reg.Low < lo {
					lo = reg.Low
				}
				if reg.High > hi {
					hi = reg.High
				}
				return lo, hi, true
			}
			// Disjoint windows: keep the fresher one.
			if reg.High > old.High {
				return reg.Low, reg.High, true
			}
			return old.Low, old.High, true
		})
	}
	return out
}

// String renders the set for logs and test failures.
func (s *KnowledgeSet) String() string {
	if len(s.regions) == 0 {
		return "knowledge{}"
	}
	parts := make([]string, len(s.regions))
	for i, reg := range s.regions {
		parts[i] = reg.String()
	}
	return "knowledge{" + strings.Join(parts, " ") + "}"
}
