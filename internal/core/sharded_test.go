package core

import (
	"fmt"
	"testing"

	"unbundle/internal/keyspace"
)

func TestShardedHubRoutesAndMerges(t *testing.T) {
	sh := NewShardedHub(4, HubConfig{})
	defer sh.Close()
	if sh.Shards() != 4 {
		t.Fatalf("shards = %d", sh.Shards())
	}
	var c collector
	// A watch spanning all shards.
	cancel, err := sh.Watch(keyspace.Full(), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const n = 400
	for i := 0; i < n; i++ {
		if err := sh.Append(ChangeEvent{
			Key:     keyspace.NumericKey(i * 10),
			Mut:     Mutation{Op: OpPut},
			Version: Version(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "all events", func() bool { evs, _, _ := c.snapshot(); return len(evs) == n })
	// Per-key order holds (trivially here), and every event arrived once.
	evs, _, _ := c.snapshot()
	seen := map[keyspace.Key]bool{}
	for _, ev := range evs {
		if seen[ev.Key] {
			t.Fatalf("duplicate delivery for %q", string(ev.Key))
		}
		seen[ev.Key] = true
	}
	st := sh.Stats()
	if st.Appends != n {
		t.Fatalf("aggregate appends = %d", st.Appends)
	}
}

func TestShardedHubRangeWatchTouchesOnlyOwningShards(t *testing.T) {
	sh := NewShardedHub(4, HubConfig{})
	defer sh.Close()
	var c collector
	// [0, 1000) is exactly shard 0's slice.
	cancel, err := sh.Watch(keyspace.NumericRange(0, 1000), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	sh.Append(ChangeEvent{Key: keyspace.NumericKey(500), Mut: Mutation{Op: OpPut}, Version: 1})
	sh.Append(ChangeEvent{Key: keyspace.NumericKey(2500), Mut: Mutation{Op: OpPut}, Version: 2})
	waitUntil(t, "in-range event", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 1 })
	evs, _, _ := c.snapshot()
	if evs[0].Key != keyspace.NumericKey(500) {
		t.Fatalf("wrong event: %v", evs[0])
	}
	// Only one shard carries a watcher.
	watchers := 0
	for i := 0; i < sh.Shards(); i++ {
		watchers += int(sh.Stats().Watchers)
		break
	}
	if sh.Stats().Watchers != 1 {
		t.Fatalf("watchers = %d, want 1", sh.Stats().Watchers)
	}
}

func TestShardedHubProgressSplitAlongShards(t *testing.T) {
	sh := NewShardedHub(2, HubConfig{})
	defer sh.Close()
	var c collector
	cancel, _ := sh.Watch(keyspace.Full(), NoVersion, &c)
	defer cancel()

	// A global progress claim must arrive as per-shard claims, each clipped
	// to its shard — no shard overclaims.
	if err := sh.Progress(ProgressEvent{Range: keyspace.Full(), Version: 9}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "split progress", func() bool { _, ps, _ := c.snapshot(); return len(ps) == 2 })
	_, ps, _ := c.snapshot()
	cover := keyspace.NewRangeSet()
	for _, p := range ps {
		if p.Version != 9 {
			t.Fatalf("progress version = %v", p.Version)
		}
		if cover.IntersectRange(p.Range).Len() > 0 {
			t.Fatalf("overlapping progress claims: %v", ps)
		}
		cover = cover.Add(p.Range)
	}
	if !cover.ContainsRange(keyspace.Full()) {
		t.Fatalf("progress does not cover the claim: %v", cover)
	}
}

func TestShardedHubShardWipeIsScoped(t *testing.T) {
	sh := NewShardedHub(4, HubConfig{})
	defer sh.Close()
	var cLeft, cRight collector
	cancelL, _ := sh.Watch(keyspace.NumericRange(0, 1000), NoVersion, &cLeft) // shard 0
	defer cancelL()
	cancelR, _ := sh.Watch(keyspace.Range{Low: keyspace.NumericKey(3000), High: keyspace.Inf}, NoVersion, &cRight) // shard 3
	defer cancelR()

	sh.WipeShard(0)
	// Fences to both shards so we know dispatch has flushed.
	sh.Append(ChangeEvent{Key: keyspace.NumericKey(3500), Mut: Mutation{Op: OpPut}, Version: 1})
	waitUntil(t, "right fence", func() bool { evs, _, _ := cRight.snapshot(); return len(evs) == 1 })
	waitUntil(t, "left resync", func() bool { _, _, rs := cLeft.snapshot(); return len(rs) == 1 })
	if _, _, rs := cRight.snapshot(); len(rs) != 0 {
		t.Fatalf("wipe of shard 0 resynced shard 3's watcher: %v", rs)
	}
}

func TestShardedHubValidationAndClose(t *testing.T) {
	sh := NewShardedHub(2, HubConfig{})
	if _, err := sh.Watch(keyspace.Full(), 0, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if _, err := sh.Watch(keyspace.Range{}, 0, &collector{}); err == nil {
		t.Fatal("empty range accepted")
	}
	cancel, err := sh.Watch(keyspace.Full(), 0, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // idempotent
	sh.Close()
	if err := sh.Append(put("k", 1)); err != ErrClosed {
		t.Fatalf("append after close = %v", err)
	}
	if _, err := sh.Watch(keyspace.Full(), 0, &collector{}); err != ErrClosed {
		t.Fatalf("watch after close = %v", err)
	}
}

func TestShardedHubPerKeyOrderAcrossShards(t *testing.T) {
	sh := NewShardedHub(4, HubConfig{})
	defer sh.Close()
	var c collector
	cancel, _ := sh.Watch(keyspace.Full(), NoVersion, &c)
	defer cancel()
	const n = 400
	for i := 1; i <= n; i++ {
		k := keyspace.NumericKey((i % 8) * 500) // 8 keys spread over shards
		sh.Append(ChangeEvent{Key: k, Mut: Mutation{Op: OpPut, Value: []byte(fmt.Sprint(i))}, Version: Version(i)})
	}
	waitUntil(t, "all", func() bool { evs, _, _ := c.snapshot(); return len(evs) == n })
	evs, _, _ := c.snapshot()
	last := map[keyspace.Key]Version{}
	for _, ev := range evs {
		if ev.Version <= last[ev.Key] {
			t.Fatalf("per-key order violated: %v after %v", ev, last[ev.Key])
		}
		last[ev.Key] = ev.Version
	}
}
