package core

import (
	"fmt"
	"sync"

	"unbundle/internal/keyspace"
)

// ShardedHub is the §5 "standalone watch system" research direction made
// concrete: a watch system scaled out over multiple Hub shards, each owning
// a key range. It implements the same Ingester/Watchable contracts as a
// single Hub — consumers cannot tell the difference — which is exactly the
// loose coupling range-scoped progress was designed to buy (§4.2.2: "each
// system layer [defines] its own partition boundaries which can evolve
// independently").
//
// Ingestion routes each event to its range's shard and splits progress
// claims along shard boundaries. A watch spanning multiple shards fans out
// to each and merges the streams; per-key ordering survives because a key
// lives in exactly one shard, and progress events remain range-scoped
// truthful because each shard only claims its slice.
type ShardedHub struct {
	shards []shardEntry
	mu     sync.Mutex
	closed bool
}

type shardEntry struct {
	rng keyspace.Range
	hub *Hub
}

// NewShardedHub creates n hub shards evenly partitioning the numeric key
// domain (the last shard is unbounded, so every key routes somewhere).
func NewShardedHub(n int, cfg HubConfig) *ShardedHub {
	if n <= 0 {
		n = 1
	}
	sh := &ShardedHub{}
	// Each member hub IS one shard of this system; its own internal
	// sharding is forced to 1 so range splits (progress claims, stats)
	// happen only at this level.
	cfg.Shards = 1
	for _, r := range keyspace.EvenSplit(n*1000, n) {
		sh.shards = append(sh.shards, shardEntry{rng: r, hub: NewHub(cfg)})
	}
	return sh
}

var (
	_ Ingester  = (*ShardedHub)(nil)
	_ Watchable = (*ShardedHub)(nil)
)

// shardFor returns the shard owning k.
func (s *ShardedHub) shardFor(k keyspace.Key) *Hub {
	for _, e := range s.shards {
		if e.rng.Contains(k) {
			return e.hub
		}
	}
	// EvenSplit covers the full keyspace; this is unreachable.
	return s.shards[len(s.shards)-1].hub
}

// Append implements Ingester: route by key.
func (s *ShardedHub) Append(ev ChangeEvent) error {
	return s.shardFor(ev.Key).Append(ev)
}

// AppendBatch implements Ingester: split the batch along shard boundaries
// and hand each shard its slice in one call. Relative order within a shard
// is preserved, so per-key version order is too (a key lives in exactly one
// shard).
func (s *ShardedHub) AppendBatch(evs []ChangeEvent) error {
	if len(evs) == 0 {
		return nil
	}
	var sub []ChangeEvent // reused scratch across shards
	for _, e := range s.shards {
		sub = sub[:0]
		for i := range evs {
			if e.rng.Contains(evs[i].Key) {
				sub = append(sub, evs[i])
			}
		}
		if len(sub) == 0 {
			continue
		}
		if err := e.hub.AppendBatch(sub); err != nil {
			return fmt.Errorf("core: sharded append batch over %v: %w", e.rng, err)
		}
	}
	return nil
}

// Progress implements Ingester: split the claim along shard boundaries so
// each shard only asserts completeness for keys it owns.
func (s *ShardedHub) Progress(p ProgressEvent) error {
	for _, e := range s.shards {
		clipped := p.Range.Intersect(e.rng)
		if clipped.Empty() {
			continue
		}
		if err := e.hub.Progress(ProgressEvent{Range: clipped, Version: p.Version}); err != nil {
			return fmt.Errorf("core: sharded progress over %v: %w", clipped, err)
		}
	}
	return nil
}

// Watch implements Watchable: fan out to every shard the range overlaps and
// merge the streams. The callback contract (serialized invocations) is
// preserved by a mutex around the delegate callbacks.
func (s *ShardedHub) Watch(r keyspace.Range, from Version, cb WatchCallback) (Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", ErrBadWatch, r)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()

	merged := &mergedCallback{cb: cb}
	var cancels []Cancel
	for _, e := range s.shards {
		clipped := r.Intersect(e.rng)
		if clipped.Empty() {
			continue
		}
		cancel, err := e.hub.Watch(clipped, from, merged)
		if err != nil {
			for _, c := range cancels {
				c()
			}
			return nil, err
		}
		cancels = append(cancels, cancel)
	}
	if len(cancels) == 0 {
		return nil, fmt.Errorf("%w: range %v overlaps no shard", ErrBadWatch, r)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, c := range cancels {
				c()
			}
		})
	}, nil
}

// mergedCallback serializes callbacks arriving from several shard streams.
type mergedCallback struct {
	mu sync.Mutex
	cb WatchCallback
}

func (m *mergedCallback) OnEvent(ev ChangeEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cb.OnEvent(ev)
}

func (m *mergedCallback) OnProgress(p ProgressEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cb.OnProgress(p)
}

func (m *mergedCallback) OnResync(r ResyncEvent) {
	// A resync from any shard means the watcher's knowledge of that slice is
	// broken; forward it scoped to the shard's range so the consumer can
	// recover just that slice.
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cb.OnResync(r)
}

// Stats aggregates shard statistics.
func (s *ShardedHub) Stats() HubStats {
	var out HubStats
	for _, e := range s.shards {
		st := e.hub.Stats()
		out.Appends += st.Appends
		out.ProgressEvents += st.ProgressEvents
		out.Evictions += st.Evictions
		out.Resyncs += st.Resyncs
		out.Delivered += st.Delivered
		out.RetainedEvents += st.RetainedEvents
		out.Watchers += st.Watchers
		out.Shards += st.Shards
		if st.MaxSeen > out.MaxSeen {
			out.MaxSeen = st.MaxSeen
		}
	}
	return out
}

// Shards returns the shard count.
func (s *ShardedHub) Shards() int { return len(s.shards) }

// WipeShard wipes one shard's soft state (failure injection): only watchers
// overlapping that shard resync.
func (s *ShardedHub) WipeShard(i int) {
	if i >= 0 && i < len(s.shards) {
		s.shards[i].hub.Wipe()
	}
}

// Close shuts all shards down.
func (s *ShardedHub) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for _, e := range s.shards {
		e.hub.Close()
	}
}
