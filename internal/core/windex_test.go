package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unbundle/internal/keyspace"
)

// TestQuickWatcherIndexMatchesNaive: under random add/remove traffic, index
// lookups agree with a naive scan over the live watch set.
func TestQuickWatcherIndexMatchesNaive(t *testing.T) {
	probe := []keyspace.Key{"", "a", "b", "c", "d", "e", "f", "g", "h", "zz"}
	letters := "abcdefgh"
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x watcherIndex
		live := map[int64]keyspace.Range{}
		nextID := int64(0)
		for step := 0; step < 60; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				lo := letters[rng.Intn(len(letters))]
				hi := letters[rng.Intn(len(letters))]
				r := keyspace.Range{Low: keyspace.Key(lo), High: keyspace.Key(hi)}
				if rng.Intn(8) == 0 {
					r.High = keyspace.Inf
				}
				if r.Empty() {
					continue
				}
				x.add(nextID, r)
				live[nextID] = r
				nextID++
			} else {
				// Remove a random live watcher.
				for id, r := range live {
					x.remove(id, r)
					delete(live, id)
					break
				}
			}
			// Compare lookups against the naive model.
			for _, k := range probe {
				got := map[int64]bool{}
				x.lookup(k, func(id int64) { got[id] = true })
				want := map[int64]bool{}
				for id, r := range live {
					if r.Contains(k) {
						want[id] = true
					}
				}
				if len(got) != len(want) {
					return false
				}
				for id := range want {
					if !got[id] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWatcherIndexLookupRangeMatchesNaive: range lookups agree with a
// naive overlap scan, and each overlapping watcher is reported exactly once
// even when its range was split across several index segments.
func TestQuickWatcherIndexLookupRangeMatchesNaive(t *testing.T) {
	letters := "abcdefgh"
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x watcherIndex
		live := map[int64]keyspace.Range{}
		seen := map[int64]struct{}{}
		nextID := int64(0)
		randRange := func() keyspace.Range {
			r := keyspace.Range{
				Low:  keyspace.Key(letters[rng.Intn(len(letters))]),
				High: keyspace.Key(letters[rng.Intn(len(letters))]),
			}
			if rng.Intn(8) == 0 {
				r.High = keyspace.Inf
			}
			if rng.Intn(8) == 0 {
				r.Low = ""
			}
			return r
		}
		for step := 0; step < 60; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				r := randRange()
				if r.Empty() {
					continue
				}
				x.add(nextID, r)
				live[nextID] = r
				nextID++
			} else {
				for id, r := range live {
					x.remove(id, r)
					delete(live, id)
					break
				}
			}
			probe := randRange()
			got := map[int64]int{}
			x.lookupRange(probe, seen, func(id int64) { got[id]++ })
			want := map[int64]bool{}
			for id, r := range live {
				if !r.Intersect(probe).Empty() {
					want[id] = true
				}
			}
			if len(got) != len(want) {
				return false
			}
			for id := range want {
				if got[id] != 1 { // exactly once, despite segment splits
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWatcherIndexSegmentsBounded: removing watchers merges segments back,
// so boundaries do not accumulate from departed watchers.
func TestWatcherIndexSegmentsBounded(t *testing.T) {
	var x watcherIndex
	// One long-lived watcher plus heavy churn.
	x.add(0, keyspace.Full())
	for i := int64(1); i <= 500; i++ {
		r := keyspace.NumericRange(int(i%100)*10, int(i%100)*10+10)
		x.add(i, r)
		x.remove(i, r)
	}
	if got := x.size(); got > 3 {
		t.Fatalf("segments after churn = %d, want <= 3", got)
	}
	// The survivor still works.
	found := false
	x.lookup(keyspace.NumericKey(555), func(id int64) { found = found || id == 0 })
	if !found {
		t.Fatal("long-lived watcher lost during churn")
	}
}
