package core

import (
	"sort"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/trace"
)

// segView is one pinned slice of a shard's retention chain, snapshotted at
// watch registration: the events evs[lo:hi] of a segment whose refcount the
// view holds, to be filtered by the watcher's clip and streamed by the
// dispatch goroutine with no shard lock held.
type segView struct {
	seg *segment
	// evs is the segment's event slice as captured under the shard lock.
	// The tail's evs *field* keeps moving with appends, so the view must
	// hold its own header: the slots below hi are written exactly once and
	// never again, making this snapshot safe to read lock-free.
	evs    []ChangeEvent
	sh     *hubShard // delivered-counter attribution
	lo, hi int
	clip   keyspace.Range // watcher range ∩ shard range
}

// snapshotReplayLocked pins the shard's chain for a watcher registering with
// cut version from over clip, appending one view per segment that may hold a
// matching event. The caller holds s.mu; the work here is O(segments) — a
// handful of pointer pins and index probes — regardless of how many events
// the replay will stream. Segments are skipped outright when their version
// bound proves nothing exceeds the cut or their key summary proves no
// overlap with the clip; a version-sorted segment additionally binary-
// searches the cut so the view starts at the first qualifying event.
func (s *hubShard) snapshotReplayLocked(views []segView, clip keyspace.Range, from Version) []segView {
	for _, g := range s.segs {
		lo, hi := g.trim, len(g.evs)
		if lo >= hi || g.maxVer <= from {
			continue
		}
		if !g.overlaps(clip) {
			continue
		}
		if g.sorted && from >= g.minVer {
			evs := g.evs
			lo += sort.Search(hi-lo, func(i int) bool { return evs[lo+i].Version > from })
			if lo >= hi {
				continue
			}
		}
		g.acquire()
		views = append(views, segView{seg: g, evs: g.evs[:hi], sh: s, lo: lo, hi: hi, clip: clip})
	}
	return views
}

// runReplay streams the watcher's pinned retained-history snapshot to its
// callback before the live drain loop starts, outside every shard lock.
// Delivery is zero-copy: a batch-capable callback receives contiguous
// sub-slices of the pinned segment arrays directly. The stream is bounded by
// the watcher's buffer size — exactly WatcherBuffer replayed events succeed;
// one more lags the watcher out with a resync, the same contract the live
// path enforces. Every pinned view is released whether or not it streamed.
func (w *hubWatcher) runReplay() {
	views := w.replay
	w.replay = nil
	if len(views) == 0 {
		return
	}
	h := w.hub
	start := time.Now()
	budget := h.cfg.WatcherBuffer
	streamed := 0
	overflowed := false
	for _, v := range views {
		if overflowed || w.lagged.Load() || w.q.isCancelled() {
			continue // keep going: every view below must still be released
		}
		n, over := w.streamView(v, budget-streamed)
		streamed += n
		if n > 0 {
			v.sh.mu.Lock()
			v.sh.delivered += int64(n)
			v.sh.mu.Unlock()
		}
		overflowed = over
	}
	for _, v := range views {
		v.seg.release(&h.segPool)
	}
	if streamed > 0 {
		h.met.delivered.Add(int64(streamed))
		h.met.replayEvents.Add(int64(streamed))
	}
	h.met.replayLatency.ObserveDuration(time.Since(start))
	if overflowed {
		h.met.replayOverflow.Inc()
		var fx ingestFx
		h.lagOutLocked(w, nil, "retained-window replay exceeds watcher buffer", 0, &fx)
		h.finishLagged(&fx)
	}
}

// streamView streams one view's matching events — Version > from, key in the
// clip — in contiguous runs, bounded by budget. It returns how many events
// were delivered and whether a matching event remained past the budget
// (replay overflow). The run slices alias the pinned segment array; the
// callback contract (no retention after return) is what makes that safe.
func (w *hubWatcher) streamView(v segView, budget int) (delivered int, overflowed bool) {
	evs := v.evs
	h := w.hub
	maxSeen := w.lastSeen.Load()
	defer func() {
		if maxSeen > w.lastSeen.Load() {
			w.lastSeen.Store(maxSeen)
		}
	}()
	i := v.lo
	for i < v.hi {
		if w.lagged.Load() || w.q.isCancelled() {
			return delivered, false
		}
		for i < v.hi && !(evs[i].Version > w.from && v.clip.Contains(evs[i].Key)) {
			i++
		}
		if i >= v.hi {
			break
		}
		j := i + 1
		for j < v.hi && evs[j].Version > w.from && v.clip.Contains(evs[j].Key) {
			j++
		}
		run := evs[i:j]
		if delivered+len(run) > budget {
			run = run[:budget-delivered]
			overflowed = true
		}
		for k := range run {
			ev := &run[k]
			if ev.Trace != 0 {
				h.tracer.Record(ev.Trace, trace.StageReplay)
				h.tracer.Record(ev.Trace, trace.StageDeliver)
			}
			if v := uint64(ev.Version); v > maxSeen {
				maxSeen = v
			}
		}
		if len(run) > 0 {
			w.nDelivered.Add(int64(len(run)))
			if w.batchCB != nil {
				w.batchCB.OnEventBatch(run)
			} else {
				for k := range run {
					w.cb.OnEvent(run[k])
				}
			}
			delivered += len(run)
		}
		if overflowed {
			return delivered, true
		}
		i = j
	}
	return delivered, false
}
