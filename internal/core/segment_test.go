package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"unbundle/internal/keyspace"
)

// TestSegmentByteEstimateTracksAllocation pins the accuracy of the byte
// accounting the governor budgets retention against: for each payload mix,
// a sealed segment's estimate must land within 2x of the heap actually
// allocated for the segment array and its payloads. If the estimate drifts
// further than that, a budget expressed in bytes stops meaning bytes.
func TestSegmentByteEstimateTracksAllocation(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates heap allocations; accuracy is pinned in the non-race run")
	}
	const n = 512
	mixes := []struct {
		name  string
		build func(i int) ChangeEvent
	}{
		{"small-values", func(i int) ChangeEvent {
			return ChangeEvent{
				Key:     keyspace.Key(fmt.Sprintf("user/%06d", i)),
				Mut:     Mutation{Op: OpPut, Value: []byte(fmt.Sprintf("value-%06d", i))},
				Version: Version(i + 1),
			}
		}},
		{"large-values", func(i int) ChangeEvent {
			v := make([]byte, 4096)
			for j := range v {
				v[j] = byte(i + j)
			}
			return ChangeEvent{
				Key:     keyspace.Key(fmt.Sprintf("blob/%06d", i)),
				Mut:     Mutation{Op: OpPut, Value: v},
				Version: Version(i + 1),
			}
		}},
		{"deletes", func(i int) ChangeEvent {
			return ChangeEvent{
				Key:     keyspace.Key(fmt.Sprintf("gone/%06d", i)),
				Mut:     Mutation{Op: OpDelete},
				Version: Version(i + 1),
			}
		}},
		{"mixed", func(i int) ChangeEvent {
			switch i % 3 {
			case 0:
				return ChangeEvent{
					Key:     keyspace.Key(fmt.Sprintf("user/%06d", i)),
					Mut:     Mutation{Op: OpPut, Value: []byte("small")},
					Version: Version(i + 1),
				}
			case 1:
				return ChangeEvent{
					Key:     keyspace.Key(fmt.Sprintf("blob/%06d", i)),
					Mut:     Mutation{Op: OpPut, Value: make([]byte, 2048)},
					Version: Version(i + 1),
				}
			default:
				return ChangeEvent{
					Key:     keyspace.Key(fmt.Sprintf("gone/%06d", i)),
					Mut:     Mutation{Op: OpDelete},
					Version: Version(i + 1),
				}
			}
		}},
	}
	for _, mix := range mixes {
		t.Run(mix.name, func(t *testing.T) {
			// GC off for the measurement window so nothing allocated inside
			// it is collected before the second ReadMemStats.
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)

			p := &segPool{size: n}
			g := p.get()
			for i := 0; i < n; i++ {
				g.push(mix.build(i))
			}

			runtime.ReadMemStats(&after)
			g.seal()
			estimate := g.bytes
			measured := int64(after.HeapAlloc - before.HeapAlloc)
			runtime.KeepAlive(g)

			if estimate <= 0 || measured <= 0 {
				t.Fatalf("degenerate measurement: estimate %d, measured %d", estimate, measured)
			}
			if estimate*2 < measured {
				t.Fatalf("estimate %d undercounts measured allocation %d by more than 2x", estimate, measured)
			}
			if estimate > measured*2 {
				t.Fatalf("estimate %d overcounts measured allocation %d by more than 2x", estimate, measured)
			}
			t.Logf("%s: estimate %d bytes, measured %d bytes (ratio %.2f)",
				mix.name, estimate, measured, float64(estimate)/float64(measured))
		})
	}
}
