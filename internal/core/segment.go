package core

import (
	"sync"
	"sync/atomic"

	"unbundle/internal/keyspace"
)

// A hub shard's retention window is a chain of segments in arrival order:
// every segment but the last is sealed — immutable, shared zero-copy with
// replaying watchers — and the last is the active tail, append-only within a
// preallocated array. Slots are written exactly once, under the shard lock,
// and never rewritten afterwards; a snapshot of a segment's event slice
// taken under the lock can therefore be streamed lock-free, concurrently
// with appends, trims and seals.
type segment struct {
	// evs is the event array; cap is fixed at the hub's segment size.
	evs []ChangeEvent
	// trim is the logical start: evs[trim:] are retained, evs[:trim]
	// evicted. Only the chain's oldest segment advances it, one event per
	// eviction, under the shard lock. A pinned replay view may still be
	// streaming trimmed slots — trimming is a bookkeeping move, not a
	// rewrite, so those reads stay valid.
	trim int
	// sealed flips when the array reaches capacity; a sealed segment's
	// contents and summaries are frozen.
	sealed bool

	// Version index, maintained incrementally on append. minVer/maxVer
	// bound every event in the segment; sorted records that versions arrived
	// in non-decreasing order, which lets a replay cut binary-search its
	// lower bound instead of scanning. (Per-shard arrival order is NOT
	// globally version-sorted when concurrent producers interleave, so
	// sorted is a property observed per segment, never assumed.)
	minVer, maxVer Version
	lastVer        Version
	sorted         bool

	// Key-range summary, computed once at seal time: minKey <= every key in
	// the segment <= maxKey. Replay skips sealed segments whose summary
	// cannot intersect the watcher's clip.
	minKey, maxKey keyspace.Key
	// bytes approximates the sealed payload footprint (keys + values),
	// reported by the core_hub_sealed_segment_bytes gauge.
	bytes int64

	// refs counts owners: the shard chain holds one, and every pinned
	// replay view holds one. The array returns to the pool only at zero, so
	// recycling can never race an in-flight replay.
	refs atomic.Int32
}

// segEventOverhead is the per-event struct footprint counted into a sealed
// segment's bytes alongside its key and value payloads.
const segEventOverhead = 64

// evFootprint is the governor's byte estimate for one retained or queued
// event: payload (key + value) plus the per-event struct overhead. It is the
// same formula seal() folds into segment.bytes, so segment accounting and
// governor accounting agree by construction.
func evFootprint(ev *ChangeEvent) int64 {
	return int64(len(ev.Key)+len(ev.Mut.Value)) + segEventOverhead
}

// push appends one event, updating the incremental version index. Caller
// holds the shard lock and has checked capacity.
func (g *segment) push(ev ChangeEvent) {
	if len(g.evs) == 0 {
		g.minVer, g.maxVer = ev.Version, ev.Version
	} else {
		if ev.Version < g.lastVer {
			g.sorted = false
		}
		if ev.Version > g.maxVer {
			g.maxVer = ev.Version
		}
		if ev.Version < g.minVer {
			g.minVer = ev.Version
		}
	}
	g.lastVer = ev.Version
	g.evs = append(g.evs, ev)
}

// full reports whether the segment's array is at capacity (seal time).
func (g *segment) full() bool { return len(g.evs) == cap(g.evs) }

// seal freezes the segment and computes its key-range summary and byte
// footprint in one pass. Amortized over the segment's size, this is O(1)
// per append.
func (g *segment) seal() {
	g.sealed = true
	if len(g.evs) == 0 {
		return
	}
	g.minKey, g.maxKey = g.evs[0].Key, g.evs[0].Key
	for i := range g.evs {
		ev := &g.evs[i]
		if ev.Key < g.minKey {
			g.minKey = ev.Key
		}
		if ev.Key > g.maxKey {
			g.maxKey = ev.Key
		}
		g.bytes += int64(len(ev.Key) + len(ev.Mut.Value) + segEventOverhead)
	}
}

// overlaps reports whether the sealed segment's key summary intersects r.
// Only meaningful after seal; the tail has no summary and always overlaps.
func (g *segment) overlaps(r keyspace.Range) bool {
	if !g.sealed {
		return true
	}
	if g.maxKey < r.Low {
		return false
	}
	if r.High < keyspace.Inf && g.minKey >= r.High {
		return false
	}
	return true
}

// acquire pins the segment for a replay view.
func (g *segment) acquire() { g.refs.Add(1) }

// release drops one reference; the last owner clears the slots (releasing
// payload references) and recycles the array through the pool.
func (g *segment) release(p *segPool) {
	if g.refs.Add(-1) == 0 {
		p.put(g)
	}
}

// segPool recycles segment arrays so steady-state eviction (drop oldest,
// open a new tail) allocates nothing.
type segPool struct {
	size int // event capacity of every pooled array
	pool sync.Pool
}

// get returns a reset segment with one reference (the caller's).
func (p *segPool) get() *segment {
	g, _ := p.pool.Get().(*segment)
	if g == nil {
		g = &segment{evs: make([]ChangeEvent, 0, p.size)}
	}
	g.refs.Store(1)
	g.sorted = true
	return g
}

// put clears and returns a segment to the pool. Called only from release at
// refcount zero, so no reader can still hold a view of the array.
func (p *segPool) put(g *segment) {
	clear(g.evs[:cap(g.evs)])
	g.evs = g.evs[:0]
	g.trim = 0
	g.sealed = false
	g.sorted = false
	g.minVer, g.maxVer, g.lastVer = 0, 0, 0
	g.minKey, g.maxKey = "", ""
	g.bytes = 0
	p.pool.Put(g)
}

// segSizeFor picks the per-segment event capacity for a retention bound:
// about eight segments per shard window, clamped so tiny retentions still
// seal (exercising the whole lifecycle) and huge ones keep seal passes
// short.
func segSizeFor(retention int) int {
	size := retention / 8
	if size < 64 {
		size = 64
	}
	if size > 1024 {
		size = 1024
	}
	return size
}
