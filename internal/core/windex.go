package core

import (
	"sort"

	"unbundle/internal/keyspace"
)

// watcherIndex answers "which watchers cover key k?" in O(log S + matches)
// instead of scanning every watcher per event. It keeps the watched portion
// of the keyspace as sorted, disjoint segments, each carrying the id set of
// watchers covering it; watch ranges split segments at their boundaries, the
// way the hub's frontier map splits version segments.
//
// Not safe for concurrent use; the hub's lock guards it.
type watcherIndex struct {
	segs []idxSegment
}

type idxSegment struct {
	r   keyspace.Range
	ids map[int64]struct{}
}

// add registers id as covering r.
func (x *watcherIndex) add(id int64, r keyspace.Range) {
	if r.Empty() {
		return
	}
	out := make([]idxSegment, 0, len(x.segs)+2)
	uncovered := keyspace.NewRangeSet(r)
	for _, s := range x.segs {
		inter := s.r.Intersect(r)
		if inter.Empty() {
			out = append(out, s)
			continue
		}
		uncovered = uncovered.SubtractRange(s.r)
		for _, rest := range keyspace.NewRangeSet(s.r).SubtractRange(r).Ranges() {
			out = append(out, idxSegment{r: rest, ids: s.ids})
		}
		merged := make(map[int64]struct{}, len(s.ids)+1)
		for i := range s.ids {
			merged[i] = struct{}{}
		}
		merged[id] = struct{}{}
		out = append(out, idxSegment{r: inter, ids: merged})
	}
	for _, rest := range uncovered.Ranges() {
		out = append(out, idxSegment{r: rest, ids: map[int64]struct{}{id: {}}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].r.Low < out[j].r.Low })
	x.segs = out
}

// remove deregisters id from r (its original watch range).
func (x *watcherIndex) remove(id int64, r keyspace.Range) {
	if r.Empty() {
		return
	}
	out := x.segs[:0]
	for _, s := range x.segs {
		if s.r.Overlaps(r) {
			if _, ok := s.ids[id]; ok {
				trimmed := make(map[int64]struct{}, len(s.ids)-1)
				for i := range s.ids {
					if i != id {
						trimmed[i] = struct{}{}
					}
				}
				s.ids = trimmed
			}
			if len(s.ids) == 0 {
				continue
			}
		}
		// Merge with the previous segment when the id sets are identical, so
		// boundaries left behind by removed watchers do not accumulate.
		if n := len(out); n > 0 && out[n-1].r.Adjacent(s.r) && sameIDs(out[n-1].ids, s.ids) {
			out[n-1].r = out[n-1].r.Union(s.r)
			continue
		}
		out = append(out, s)
	}
	x.segs = out
}

func sameIDs(a, b map[int64]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if _, ok := b[i]; !ok {
			return false
		}
	}
	return true
}

// lookup calls fn for every watcher id covering k.
func (x *watcherIndex) lookup(k keyspace.Key, fn func(id int64)) {
	i := sort.Search(len(x.segs), func(i int) bool {
		s := x.segs[i]
		return s.r.High >= keyspace.Inf || s.r.High > k
	})
	if i < len(x.segs) && x.segs[i].r.Contains(k) {
		for id := range x.segs[i].ids {
			fn(id)
		}
	}
}

// size returns the segment count (for tests and stats).
func (x *watcherIndex) size() int { return len(x.segs) }
