package core

import (
	"sort"

	"unbundle/internal/keyspace"
)

// watcherIndex answers "which watchers cover key k?" in O(log S + matches)
// instead of scanning every watcher per event. It keeps the watched portion
// of the keyspace as sorted, disjoint segments, each carrying the id set of
// watchers covering it; watch ranges split segments at their boundaries, the
// way the hub's frontier map splits version segments.
//
// Ids are kept as small sorted slices, not maps: the per-event fanout
// iterates them on the append hot path, and ranging over a one-element map
// costs more than the rest of the lookup combined.
//
// Not safe for concurrent use; the hub's lock guards it.
type watcherIndex struct {
	segs []idxSegment
}

type idxSegment struct {
	r   keyspace.Range
	ids []int64 // sorted ascending
}

// withID returns ids plus id (ids is not mutated; the result may share no
// memory with it, since sibling segments alias the same backing slice).
func withID(ids []int64, id int64) []int64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	out := make([]int64, 0, len(ids)+1)
	out = append(out, ids[:i]...)
	out = append(out, id)
	return append(out, ids[i:]...)
}

// withoutID returns ids minus id (copying; see withID).
func withoutID(ids []int64, id int64) []int64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i == len(ids) || ids[i] != id {
		return ids
	}
	out := make([]int64, 0, len(ids)-1)
	out = append(out, ids[:i]...)
	return append(out, ids[i+1:]...)
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// add registers id as covering r.
func (x *watcherIndex) add(id int64, r keyspace.Range) {
	if r.Empty() {
		return
	}
	out := make([]idxSegment, 0, len(x.segs)+2)
	uncovered := keyspace.NewRangeSet(r)
	for _, s := range x.segs {
		inter := s.r.Intersect(r)
		if inter.Empty() {
			out = append(out, s)
			continue
		}
		uncovered = uncovered.SubtractRange(s.r)
		for _, rest := range keyspace.NewRangeSet(s.r).SubtractRange(r).Ranges() {
			out = append(out, idxSegment{r: rest, ids: s.ids})
		}
		out = append(out, idxSegment{r: inter, ids: withID(s.ids, id)})
	}
	for _, rest := range uncovered.Ranges() {
		out = append(out, idxSegment{r: rest, ids: []int64{id}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].r.Low < out[j].r.Low })
	x.segs = out
}

// remove deregisters id from r (its original watch range).
func (x *watcherIndex) remove(id int64, r keyspace.Range) {
	if r.Empty() {
		return
	}
	out := x.segs[:0]
	for _, s := range x.segs {
		if s.r.Overlaps(r) {
			s.ids = withoutID(s.ids, id)
			if len(s.ids) == 0 {
				continue
			}
		}
		// Merge with the previous segment when the id sets are identical, so
		// boundaries left behind by removed watchers do not accumulate.
		if n := len(out); n > 0 && out[n-1].r.Adjacent(s.r) && sameIDs(out[n-1].ids, s.ids) {
			out[n-1].r = out[n-1].r.Union(s.r)
			continue
		}
		out = append(out, s)
	}
	x.segs = out
}

// lookup calls fn for every watcher id covering k.
func (x *watcherIndex) lookup(k keyspace.Key, fn func(id int64)) {
	i := sort.Search(len(x.segs), func(i int) bool {
		s := x.segs[i]
		return s.r.High >= keyspace.Inf || s.r.High > k
	})
	if i < len(x.segs) && x.segs[i].r.Contains(k) {
		for _, id := range x.segs[i].ids {
			fn(id)
		}
	}
}

// lookupRange calls fn once per watcher id whose coverage overlaps r. A
// watcher's range may have been split across several segments, so seen (a
// caller-owned scratch set, cleared on entry) dedupes ids across them. Like
// lookup, the walk starts at the first overlapping segment by binary search
// and stops at the first segment past r, so cost scales with overlap, not
// index size.
func (x *watcherIndex) lookupRange(r keyspace.Range, seen map[int64]struct{}, fn func(id int64)) {
	if r.Empty() {
		return
	}
	for id := range seen {
		delete(seen, id)
	}
	i := sort.Search(len(x.segs), func(i int) bool {
		s := x.segs[i]
		return s.r.High >= keyspace.Inf || s.r.High > r.Low
	})
	for ; i < len(x.segs); i++ {
		s := x.segs[i]
		if r.High < keyspace.Inf && s.r.Low >= r.High {
			break
		}
		if s.r.Intersect(r).Empty() {
			continue
		}
		for _, id := range s.ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			fn(id)
		}
	}
}

// size returns the segment count (for tests and stats).
func (x *watcherIndex) size() int { return len(x.segs) }
