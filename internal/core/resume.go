package core

import "sync/atomic"

// ResumePoint tracks the highest version a watch stream has supplied —
// delivered change events and progress frontiers both advance it — so a
// broken transport can re-establish the watch exactly where delivery
// stopped. Resuming from Version() cannot duplicate (every delivered event
// had a version at or below it, and a watch from v supplies only events
// above v); the watch system's own retention check then decides whether the
// gap since then is still coverable, lagging the watcher out with a resync
// if it is not. This is the client half of the paper's recovery contract:
// the resume point says where delivery provably reached, the resync says
// when that point has fallen off the retained window. The hub keeps the
// server half cheap even when many points resume at once: re-registering a
// watch pins sealed retention segments by reference and replays them off
// the ingest locks, so a reconnect storm costs O(segments) lock work per
// watch, not O(backlog) (see BenchmarkHubResumeStorm*).
//
// All methods are safe for concurrent use; advancement is monotonic (a
// stale note never moves the point backward). Reset is the one exception —
// it reinitializes the point to the watch's starting version and must not
// race with notes.
type ResumePoint struct {
	v atomic.Uint64
}

// Reset initializes the point to the watch's starting version.
func (r *ResumePoint) Reset(v Version) { r.v.Store(uint64(v)) }

// NoteEvent records a delivered change event.
func (r *ResumePoint) NoteEvent(ev ChangeEvent) { r.advance(ev.Version) }

// NoteProgress records a delivered progress frontier: every event up to and
// including its version has been supplied, so the stream may resume past it.
func (r *ResumePoint) NoteProgress(p ProgressEvent) { r.advance(p.Version) }

// Version returns the version to resume the watch from.
func (r *ResumePoint) Version() Version { return Version(r.v.Load()) }

func (r *ResumePoint) advance(v Version) {
	for {
		cur := r.v.Load()
		if uint64(v) <= cur || r.v.CompareAndSwap(cur, uint64(v)) {
			return
		}
	}
}
