package core

import (
	"sync"
	"sync/atomic"

	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
)

// itemKind tags which delivery an item carries.
type itemKind uint8

const (
	kindEvent itemKind = iota + 1
	kindProgress
	kindResync
)

// item is one queued delivery for a watcher. Items are held by value: the
// live fanout copies events straight into ring slots, so delivery costs no
// per-event heap allocation. (Retained-window replay does not pass through
// the ring at all — it streams zero-copy from pinned retention segments
// before the dispatch goroutine starts draining; see runReplay.)
type item struct {
	kind   itemKind
	ev     ChangeEvent
	prog   ProgressEvent
	resync ResyncEvent
}

// ringState is the delivery queue's lifecycle.
type ringState uint8

const (
	// ringOpen accepts events, progress and resyncs.
	ringOpen ringState = iota
	// ringLagged holds only the pending resync; further deliveries are
	// dropped — they are covered by the resync's recovery snapshot, which is
	// always taken after the resync is observed.
	ringLagged
	// ringCancelled accepts nothing and wakes the dispatcher to exit.
	ringCancelled
)

// ring is a watcher's delivery queue: a growable circular buffer, bounded at
// max, drained in whole batches by the watcher's run goroutine. Compared to
// the append-one/signal-one slice+cond queue it replaces, it
//
//   - never allocates per enqueued item (slots are reused in place; the
//     backing array doubles geometrically up to max instead of being
//     reallocated by append),
//   - coalesces queued ProgressEvents for the same clipped range — only the
//     newest frontier claim matters, so a burst of progress ticks occupies
//     one slot instead of filling the buffer,
//   - tracks its highwater locally and leaves publishing it to the drain
//     side, keeping metrics entirely off the enqueue path.
type ring struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf   []item
	start int // index of the oldest queued item
	n     int // queued item count
	max   int // bound; enqueue past it fails (resyncs bypass)

	state     ringState
	cancelled atomic.Bool // mirrors state==ringCancelled for lock-free checks

	enqueued uint64 // total items accepted (including coalesced updates)
	high     int    // highwater since the last drain

	// progAt maps a clipped progress range to the absolute sequence number of
	// its queued item, enabling O(1) in-place coalescing. Sequence numbers
	// (headSeq + offset) survive buffer growth and rotation.
	progAt  map[keyspace.Range]uint64
	headSeq uint64 // absolute sequence number of buf[start]

	// acct, when non-nil, is the governor's "rings" account: heldBytes — the
	// undelivered backlog's payload footprint — is charged on enqueue and
	// released on drain/lag-out/stop, and is what the shed reliever ranks
	// watchers by. Payloads queued here share backing arrays with retained
	// segments, so the charge deliberately counts a slow watcher's backlog
	// at full weight — held backlog is exactly the cost shedding recovers.
	acct      *govern.Account
	heldBytes int64
}

// itemBytes is the governor footprint of one queued item: event payloads at
// full weight, progress/resync marks at the flat struct overhead.
func itemBytes(it *item) int64 {
	if it.kind == kindEvent {
		return int64(len(it.ev.Key)+len(it.ev.Mut.Value)) + segEventOverhead
	}
	return segEventOverhead
}

// ringMinCap is the initial backing-array size; queues grow geometrically
// from here, so an idle watcher with a huge configured buffer stays small.
const ringMinCap = 64

func newRing(max int) *ring {
	r := &ring{max: max}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// growLocked doubles the backing array (bounded by max), rewriting the
// circular contents in order.
func (r *ring) growLocked() {
	newCap := len(r.buf) * 2
	if newCap < ringMinCap {
		newCap = ringMinCap
	}
	if newCap > r.max {
		newCap = r.max
	}
	nb := make([]item, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.buf = nb
	r.start = 0
}

// pushLocked appends one item, reporting false when the queue is full.
func (r *ring) pushLocked(it item) bool {
	if it.kind == kindProgress {
		// Coalesce: a queued frontier claim for the same clipped range is
		// superseded by the newer one in place.
		if pos, ok := r.progAt[it.prog.Range]; ok && pos >= r.headSeq {
			slot := &r.buf[(r.start+int(pos-r.headSeq))%len(r.buf)]
			if slot.kind == kindProgress && slot.prog.Range == it.prog.Range {
				if it.prog.Version > slot.prog.Version {
					slot.prog.Version = it.prog.Version
				}
				r.enqueued++
				return true
			}
		}
	}
	if r.n >= r.max {
		return false
	}
	if r.n == len(r.buf) {
		r.growLocked()
	}
	pos := r.start + r.n
	if pos >= len(r.buf) {
		pos -= len(r.buf)
	}
	r.buf[pos] = it
	if it.kind == kindProgress {
		if r.progAt == nil {
			r.progAt = make(map[keyspace.Range]uint64, 4)
		}
		r.progAt[it.prog.Range] = r.headSeq + uint64(r.n)
	}
	if r.acct != nil {
		r.heldBytes += itemBytes(&it)
	}
	r.n++
	r.enqueued++
	if r.n > r.high {
		r.high = r.n
	}
	return true
}

// enqueue adds one item; it reports false when the queue is full (the caller
// lags the watcher out). Items offered to a lagged or cancelled ring are
// dropped and reported true: a lagged watcher's pending resync covers them,
// and a cancelled watcher is going away.
func (r *ring) enqueue(it item) bool {
	r.mu.Lock()
	if r.state != ringOpen {
		r.mu.Unlock()
		return true
	}
	before := r.heldBytes
	ok := r.pushLocked(it)
	if ok && r.n == 1 {
		r.cond.Signal()
	}
	delta := r.heldBytes - before
	r.mu.Unlock()
	r.acct.Charge(delta)
	return ok
}

// enqueueBatch adds items under one lock acquisition. It reports how many
// were accepted and whether all fit; on overflow the accepted prefix stays
// queued (the caller lags the watcher out, which replaces the queue anyway).
func (r *ring) enqueueBatch(items []item) (accepted int, ok bool) {
	if len(items) == 0 {
		return 0, true
	}
	r.mu.Lock()
	if r.state != ringOpen {
		r.mu.Unlock()
		return 0, true
	}
	before := r.heldBytes
	wasEmpty := r.n == 0
	for i := range items {
		if !r.pushLocked(items[i]) {
			if wasEmpty && r.n > 0 {
				r.cond.Signal()
			}
			delta := r.heldBytes - before
			r.mu.Unlock()
			r.acct.Charge(delta)
			return i, false
		}
	}
	if wasEmpty && r.n > 0 {
		r.cond.Signal()
	}
	delta := r.heldBytes - before
	r.mu.Unlock()
	r.acct.Charge(delta)
	return len(items), true
}

// lagOut drops everything queued and replaces it with the resync. Events
// already dispatched cannot be unsent, but per-key prefix delivery remains
// intact: delivery order equals enqueue order. No-op on a cancelled ring.
func (r *ring) lagOut(rs ResyncEvent) {
	r.mu.Lock()
	if r.state == ringCancelled {
		r.mu.Unlock()
		return
	}
	r.state = ringLagged
	// Shed the (possibly grown) backing array: the resync is the last thing
	// this queue will ever carry.
	r.buf = []item{{kind: kindResync, resync: rs}}
	r.start = 0
	r.n = 1
	r.headSeq += uint64(r.n)
	r.progAt = nil
	var delta int64
	if r.acct != nil {
		delta = r.heldBytes - segEventOverhead // backlog dropped, resync queued
		r.heldBytes = segEventOverhead
	}
	r.cond.Signal()
	r.mu.Unlock()
	r.acct.Release(delta)
}

// reopen re-arms a lagged ring so a fresh resync can be queued (state wipes
// resync every watcher, including previously lagged ones).
func (r *ring) reopen() {
	r.mu.Lock()
	if r.state == ringLagged {
		r.state = ringOpen
	}
	r.mu.Unlock()
}

// stop cancels the ring: the dispatcher wakes and exits, and all further
// enqueues are dropped.
func (r *ring) stop() {
	r.mu.Lock()
	r.state = ringCancelled
	r.cancelled.Store(true)
	r.buf = nil
	r.start, r.n = 0, 0
	r.progAt = nil
	freed := r.heldBytes
	r.heldBytes = 0
	r.cond.Broadcast()
	r.mu.Unlock()
	r.acct.Release(freed)
}

// isCancelled is the lock-free mid-dispatch check.
func (r *ring) isCancelled() bool { return r.cancelled.Load() }

// drain blocks until items are queued or the ring is cancelled, then moves
// the whole backlog into dst (reused across calls) and returns it with the
// highwater observed since the last drain. ok is false once cancelled.
func (r *ring) drain(dst []item) (batch []item, high int, ok bool) {
	r.mu.Lock()
	for r.n == 0 && r.state != ringCancelled {
		r.cond.Wait()
	}
	if r.state == ringCancelled {
		r.mu.Unlock()
		return dst[:0], 0, false
	}
	// Move the backlog out as at most two contiguous copies, then zero the
	// vacated slots so the queue releases its payload references.
	dst = dst[:0]
	head := r.buf[r.start:]
	if len(head) > r.n {
		head = head[:r.n]
	}
	dst = append(dst, head...)
	for i := range head {
		head[i] = item{}
	}
	if rest := r.n - len(head); rest > 0 {
		tail := r.buf[:rest]
		dst = append(dst, tail...)
		for i := range tail {
			tail[i] = item{}
		}
	}
	r.headSeq += uint64(r.n)
	r.start, r.n = 0, 0
	for k := range r.progAt {
		delete(r.progAt, k)
	}
	high = r.high
	r.high = 0
	freed := r.heldBytes
	r.heldBytes = 0
	r.mu.Unlock()
	r.acct.Release(freed)
	return dst, high, true
}

// enqueues returns the total accepted item count — used by tests to prove a
// fanout path never touched this watcher.
func (r *ring) enqueues() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enqueued
}

// held returns the queued backlog's governor footprint — what the shed
// reliever ranks watchers by. Zero when the ring is ungoverned.
func (r *ring) held() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heldBytes
}

// depth returns the current queue length (tests only).
func (r *ring) depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
