package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
)

// SyncedConsumer is what a self-recovering watcher drives. Implementations
// (caches, replicas, workers) receive an initial snapshot, then incremental
// changes and progress; on resync they receive a fresh snapshot that
// supersedes previous state for the range.
//
// Calls are serialized: implementations need no internal locking against the
// watcher (only against their own readers).
type SyncedConsumer interface {
	// ResetSnapshot replaces all state for r with the given snapshot taken at
	// version at. Called once at start and once per resync.
	ResetSnapshot(r keyspace.Range, entries []Entry, at Version)
	// ApplyChange applies one change event (version > the snapshot version).
	ApplyChange(ev ChangeEvent)
	// AdvanceFrontier reports range-scoped progress.
	AdvanceFrontier(p ProgressEvent)
}

// ResyncWatcher composes a Snapshotter (the store's read view) with a
// Watchable (the watch system) into the full §4.4 recovery loop:
//
//	snapshot(range) at v  →  watch(range, from=v)  →  … events/progress …
//	        ↑                                               |
//	        └────────────── OnResync ───────────────────────┘
//
// A lagging or late consumer is therefore *programmatically* recoverable —
// the capability whose absence in pubsub systems §3.1 identifies as the root
// of backlog emergencies. The snapshot may be stale (read from any replica);
// correctness only needs snapshot-version ≥ the resync's MinVersion, which
// any fresh read of the authoritative store satisfies.
type ResyncWatcher struct {
	store    Snapshotter
	src      Watchable
	rng      keyspace.Range
	consumer SyncedConsumer

	mu      sync.Mutex
	gen     int // current watch generation; stale callbacks are ignored
	cancel  Cancel
	stopped bool
	resyncs int64
	events  int64
}

// NewResyncWatcher builds a watcher over r; call Start to begin.
func NewResyncWatcher(store Snapshotter, src Watchable, r keyspace.Range, consumer SyncedConsumer) *ResyncWatcher {
	return &ResyncWatcher{store: store, src: src, rng: r, consumer: consumer}
}

// Start performs the initial snapshot and registers the watch.
func (rw *ResyncWatcher) Start() error {
	return rw.establish(0)
}

// establish runs one snapshot-then-watch cycle for generation expectGen.
func (rw *ResyncWatcher) establish(expectGen int) error {
	rw.mu.Lock()
	if rw.stopped || rw.gen != expectGen {
		rw.mu.Unlock()
		return nil
	}
	rw.gen++
	gen := rw.gen
	if rw.cancel != nil {
		rw.cancel()
		rw.cancel = nil
	}
	rw.mu.Unlock()

	entries, at, err := rw.store.SnapshotRange(rw.rng)
	if err != nil {
		return fmt.Errorf("core: resync snapshot of %v: %w", rw.rng, err)
	}
	rw.consumer.ResetSnapshot(rw.rng, entries, at)
	// The snapshot itself is complete knowledge of the range at `at`.
	rw.consumer.AdvanceFrontier(ProgressEvent{Range: rw.rng, Version: at})

	cancel, err := rw.src.Watch(rw.rng, at, Funcs{
		Event: func(ev ChangeEvent) {
			if !rw.current(gen) {
				return
			}
			rw.mu.Lock()
			rw.events++
			rw.mu.Unlock()
			rw.consumer.ApplyChange(ev)
		},
		Progress: func(p ProgressEvent) {
			if !rw.current(gen) {
				return
			}
			rw.consumer.AdvanceFrontier(p)
		},
		Resync: func(r ResyncEvent) {
			if !rw.current(gen) {
				return
			}
			rw.mu.Lock()
			rw.resyncs++
			rw.mu.Unlock()
			// Recover: fresh snapshot, new watch — on its own goroutine, never
			// the delivery goroutine. When the watch source is a remote client
			// the recovery snapshot arrives over the same connection that is
			// delivering this resync; re-snapshotting synchronously would
			// deadlock the read loop against itself. establish re-checks gen,
			// so a superseded recovery is a no-op.
			go rw.recover(gen)
		},
	})
	if err != nil {
		return fmt.Errorf("core: resync watch of %v: %w", rw.rng, err)
	}

	rw.mu.Lock()
	if rw.stopped || rw.gen != gen {
		rw.mu.Unlock()
		cancel()
		return nil
	}
	rw.cancel = cancel
	rw.mu.Unlock()
	return nil
}

// recover drives establish to completion with backoff. A recovery cycle can
// fail transiently — most importantly with govern.Overloaded when the source
// is admission-controlling under memory pressure, the very moment resyncs
// cluster. Giving up there would be a silent drop wearing a different hat,
// so recover retries, honoring the server's RetryAfter hint when one is
// attached and doubling an own backoff otherwise.
func (rw *ResyncWatcher) recover(gen int) {
	backoff := 25 * time.Millisecond
	for {
		err := rw.establish(gen)
		if err == nil {
			return
		}
		gen++ // the failed establish consumed this generation
		wait := backoff
		var ov *govern.Overloaded
		if errors.As(err, &ov) && ov.RetryAfter > wait {
			wait = ov.RetryAfter
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
		time.Sleep(wait)
		rw.mu.Lock()
		stale := rw.stopped || rw.gen != gen
		rw.mu.Unlock()
		if stale {
			return
		}
	}
}

func (rw *ResyncWatcher) current(gen int) bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return !rw.stopped && rw.gen == gen
}

// Stop cancels the watch; no further consumer calls are started.
func (rw *ResyncWatcher) Stop() {
	rw.mu.Lock()
	rw.stopped = true
	c := rw.cancel
	rw.cancel = nil
	rw.mu.Unlock()
	if c != nil {
		c()
	}
}

// Resyncs returns how many resync cycles this watcher has performed.
func (rw *ResyncWatcher) Resyncs() int64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.resyncs
}

// Events returns how many change events this watcher has applied.
func (rw *ResyncWatcher) Events() int64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.events
}
