package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// watcherRing digs a registered watcher's delivery queue out of the hub, so
// tests can assert on enqueue counts (e.g. "this fanout never touched that
// watcher").
func watcherRing(h *Hub, id int64) *ring {
	h.regMu.Lock()
	defer h.regMu.Unlock()
	w := h.watchers[id]
	if w == nil {
		return nil
	}
	return w.q
}

// TestHubDeliveredMetricsMatchStats is the regression test for the metrics
// drift bug: the retained-window replay used to bump the hub's internal
// delivered counter but not core_hub_delivered_total, so Stats() and the
// registry disagreed after any replaying watch.
func TestHubDeliveredMetricsMatchStats(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{Metrics: reg})
	defer h.Close()
	for i := 1; i <= 50; i++ {
		h.Append(put("k", Version(i)))
	}
	var c collector
	cancel, err := h.Watch(keyspace.Full(), 0, &c) // replays all 50
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 51; i <= 60; i++ { // then some live deliveries on top
		h.Append(put("k", Version(i)))
	}
	waitUntil(t, "all deliveries", func() bool {
		evs, _, _ := c.snapshot()
		return len(evs) == 60
	})
	internal := h.Stats().Delivered
	registry := reg.Snapshot().Counters["core_hub_delivered_total"]
	if internal != 60 {
		t.Fatalf("Stats().Delivered = %d, want 60", internal)
	}
	if registry != internal {
		t.Fatalf("core_hub_delivered_total = %d, Stats().Delivered = %d — counters drifted", registry, internal)
	}
}

// TestHubProgressShardIsolation: a progress claim over shard A's range must
// never touch a watcher registered only in shard B — not even with a dropped
// enqueue. The watcher's ring enqueue counter proves "never touched".
func TestHubProgressShardIsolation(t *testing.T) {
	h := NewHub(HubConfig{Shards: 4})
	defer h.Close()
	// Shard boundaries sit at NumericKey(1000·i). Watcher A lives entirely in
	// shard 0, watcher B entirely in shard 1. IDs are assigned in Watch order
	// starting at 0.
	var a, b collector
	cancelA, err := h.Watch(keyspace.NumericRange(0, 1000), NoVersion, &a)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelA()
	cancelB, err := h.Watch(keyspace.NumericRange(1000, 2000), NoVersion, &b)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelB()

	for i := 0; i < 10; i++ {
		if err := h.Progress(ProgressEvent{Range: keyspace.NumericRange(0, 1000), Version: Version(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "shard-A progress", func() bool {
		_, ps, _ := a.snapshot()
		return len(ps) >= 1 && ps[len(ps)-1].Version == 10
	})
	if got := watcherRing(h, 1).enqueues(); got != 0 {
		t.Fatalf("shard-B watcher was touched %d times by shard-A progress", got)
	}
	// Sanity: the claim reached A clipped to its range.
	_, ps, _ := a.snapshot()
	for _, p := range ps {
		if p.Range != keyspace.NumericRange(0, 1000) {
			t.Fatalf("progress range = %v, want [0,1000)", p.Range)
		}
	}
}

// TestHubProgressCoalescing: queued progress claims for the same clipped
// range coalesce to the newest version instead of each taking a slot — a
// burst of same-range ticks can no longer lag a wedged watcher out.
func TestHubProgressCoalescing(t *testing.T) {
	// Shards pinned to 1: coalescing is a per-queue property, and a
	// multi-shard hub would split each Full-range claim into several
	// distinct clipped ranges.
	h := NewHub(HubConfig{WatcherBuffer: 4, Shards: 1})
	defer h.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var got []ProgressEvent
	var resyncs int
	cb := Funcs{
		Progress: func(p ProgressEvent) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
			once.Do(func() { close(entered) })
			<-release
		},
		Resync: func(ResyncEvent) { mu.Lock(); resyncs++; mu.Unlock() },
	}
	cancel, err := h.Watch(keyspace.Full(), NoVersion, cb)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 1})
	<-entered // consumer wedged inside the first claim's callback
	// Far more same-range claims than the watcher buffer holds.
	for i := 2; i <= 40; i++ {
		h.Progress(ProgressEvent{Range: keyspace.Full(), Version: Version(i)})
	}
	close(release)
	waitUntil(t, "final coalesced claim", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2 && got[len(got)-1].Version == 40
	})
	mu.Lock()
	defer mu.Unlock()
	if resyncs != 0 {
		t.Fatalf("same-range progress burst lagged the watcher out (%d resyncs)", resyncs)
	}
	// The 39 queued claims collapsed into very few deliveries (the wedged one
	// plus whatever raced in during drains), each newer than the last.
	if len(got) > 5 {
		t.Fatalf("got %d progress deliveries for 40 same-range claims — not coalescing", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Version <= got[i-1].Version {
			t.Fatalf("coalesced claims out of order: %v", got)
		}
	}
}

// TestQuickHubAppendBatchPerKeyOrder is the cross-shard ordering property
// test: randomized batches with interleaved keys, fed through AppendBatch
// into a multi-shard hub, must reach every overlapping watcher complete and
// in per-key version order.
func TestQuickHubAppendBatchPerKeyOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHub(HubConfig{Shards: 4, Retention: 1 << 14, WatcherBuffer: 1 << 14})
		defer h.Close()

		type watchState struct {
			rng  keyspace.Range
			mu   sync.Mutex
			evs  []ChangeEvent
			want int
		}
		// A full-range watcher plus watchers straddling shard boundaries.
		ranges := []keyspace.Range{
			keyspace.Full(),
			keyspace.NumericRange(0, 2000),                       // shards 0-1
			keyspace.NumericRange(500, 3500),                     // clips all four shards
			{Low: keyspace.NumericKey(2500), High: keyspace.Inf}, // shards 2-3
		}
		var watchers []*watchState
		for _, r := range ranges {
			ws := &watchState{rng: r}
			watchers = append(watchers, ws)
			cancel, err := h.Watch(r, NoVersion, Funcs{Event: func(ev ChangeEvent) {
				ws.mu.Lock()
				ws.evs = append(ws.evs, ev)
				ws.mu.Unlock()
			}})
			if err != nil {
				t.Fatal(err)
			}
			defer cancel()
		}

		// Randomized batches: random sizes, random keys across all shards,
		// versions globally increasing (as a commit-ordered CDC feed would
		// produce).
		version := Version(0)
		total := 400 + rng.Intn(400)
		var batch []ChangeEvent
		for sent := 0; sent < total; {
			batch = batch[:0]
			n := 1 + rng.Intn(24)
			for i := 0; i < n && sent < total; i++ {
				version++
				k := keyspace.NumericKey(rng.Intn(4000))
				ev := ChangeEvent{Key: k, Mut: Mutation{Op: OpPut, Value: []byte("v")}, Version: version}
				batch = append(batch, ev)
				for _, ws := range watchers {
					if ws.rng.Contains(k) {
						ws.want++
					}
				}
				sent++
			}
			if err := h.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}

		deadline := time.Now().Add(5 * time.Second)
		for _, ws := range watchers {
			for {
				ws.mu.Lock()
				done := len(ws.evs) >= ws.want
				ws.mu.Unlock()
				if done || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			ws.mu.Lock()
			evs, want := append([]ChangeEvent(nil), ws.evs...), ws.want
			ws.mu.Unlock()
			if len(evs) != want {
				t.Logf("watcher %v: delivered %d events, want %d", ws.rng, len(evs), want)
				return false
			}
			last := map[keyspace.Key]Version{}
			for _, ev := range evs {
				if !ws.rng.Contains(ev.Key) {
					t.Logf("watcher %v: out-of-range key %q", ws.rng, ev.Key)
					return false
				}
				if ev.Version <= last[ev.Key] {
					t.Logf("watcher %v: key %q version %v after %v", ws.rng, ev.Key, ev.Version, last[ev.Key])
					return false
				}
				last[ev.Key] = ev.Version
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestHubSlowWatcherLatencyIsolation is the stress test for shard isolation:
// a deliberately wedged watcher on shard A, with an appender hammering its
// shard, must not collapse append throughput on shard B. The bound is
// deliberately generous — on a loaded 1-CPU -race run everything slows
// together — but it fails decisively if shard B's appends ever serialize
// behind shard A's congestion or the wedged consumer.
func TestHubSlowWatcherLatencyIsolation(t *testing.T) {
	h := NewHub(HubConfig{Shards: 2, Retention: 1 << 12, WatcherBuffer: 1 << 20})
	defer h.Close()

	const n = 20000
	keyB := keyspace.NumericKey(1500) // shard B (boundary at 1000)
	measureB := func(base Version) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			h.Append(ChangeEvent{Key: keyB, Mut: Mutation{Op: OpPut}, Version: base + Version(i+1)})
		}
		return time.Since(start)
	}

	baseline := measureB(0)

	// Wedge a watcher on shard A inside its first callback and keep shard A
	// under live append pressure for the whole measured window.
	wedged := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cancel, err := h.Watch(keyspace.NumericRange(0, 1000), n, Funcs{
		Event: func(ChangeEvent) {
			once.Do(func() { close(wedged) })
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	h.Append(ChangeEvent{Key: keyspace.NumericKey(500), Mut: Mutation{Op: OpPut}, Version: n + 1})
	<-wedged

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := Version(n + 2)
		for {
			select {
			case <-stop:
				return
			default:
				h.Append(ChangeEvent{Key: keyspace.NumericKey(500), Mut: Mutation{Op: OpPut}, Version: v})
				v++
			}
		}
	}()

	contended := measureB(n + 1)
	close(stop)
	close(release)
	wg.Wait()

	// The background appender legitimately costs CPU; serializing behind the
	// wedged consumer or a global lock would cost orders of magnitude more.
	const maxRatio = 25.0
	if ratio := float64(contended) / float64(baseline); ratio > maxRatio {
		t.Fatalf("shard-B append throughput degraded %.1f× (baseline %v, contended %v) — shards are not isolated",
			ratio, baseline, contended)
	}
}

// BenchmarkHubWatchReplay measures a watch registration replaying a full
// retained window — the satellite target for the per-event clone allocation:
// replay now batch-copies window slices into the watcher's ring, so allocs/op
// stays flat instead of scaling with the window size.
func BenchmarkHubWatchReplay(b *testing.B) {
	const window = 4096
	h := NewHub(HubConfig{Retention: window, WatcherBuffer: window * 2})
	defer h.Close()
	for i := 1; i <= window; i++ {
		h.Append(put("k", Version(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var seen atomic.Int64
		cancel, err := h.Watch(keyspace.Full(), 0, Funcs{
			Event: func(ChangeEvent) { seen.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		for seen.Load() < window {
			time.Sleep(10 * time.Microsecond)
		}
		cancel()
	}
	b.ReportMetric(float64(window), "events/replay")
}

// BenchmarkHubAppendBatch measures batched ingest against the same hub shape
// as BenchmarkHubAppendFanout8 upstream: one lock round-trip per shard per
// batch instead of per event.
func BenchmarkHubAppendBatch(b *testing.B) {
	h := NewHub(HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20})
	defer h.Close()
	var delivered atomic.Int64
	for w := 0; w < 8; w++ {
		lo := keyspace.NumericKey(w * 1000)
		hi := keyspace.NumericKey(w*1000 + 1000)
		cancel, err := h.Watch(keyspace.Range{Low: lo, High: hi}, 0, Funcs{
			Event: func(ChangeEvent) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cancel()
	}
	const batchSize = 64
	batch := make([]ChangeEvent, batchSize)
	var version Version
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := 0; j < batchSize; j++ {
			version++
			batch[j] = ChangeEvent{
				Key:     keyspace.NumericKey((int(version) % 8) * 1000),
				Mut:     Mutation{Op: OpPut, Value: []byte("v")},
				Version: version,
			}
		}
		if err := h.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
