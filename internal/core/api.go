// Package core implements the paper's primary contribution: the unbundled
// storage-plus-watch model of §4.
//
// It defines the watch contract exactly as §4.2 presents it — ChangeEvent,
// ProgressEvent and resync signals on the consumer side (Watchable), and the
// Ingester interface on the store side — plus the two engines that make the
// contract useful:
//
//   - Hub: a standalone watch system (the paper's "Snappy" sketch). It holds
//     only soft state: a bounded retention window of change events and a
//     range-scoped progress frontier. Consumers whose requested version has
//     been evicted, or who lag too far, receive an explicit resync signal and
//     recover from the authoritative store — the end-to-end behaviour pubsub
//     cannot offer (§3.1).
//
//   - KnowledgeSet: the Figure 5 bookkeeping. A watcher tracks, per key
//     range, the version window over which it has complete knowledge, and can
//     therefore serve snapshot-consistent reads and stitch consistent
//     snapshots across ranges (§4.3).
//
// Everything here is deliberately store-agnostic: any system that can emit
// per-key version-ordered change events and range-scoped progress (an MVCC
// database CDC feed, an ingestion store, even a refined pubsub log — the
// Figure 3 quadrants) can sit below the Hub via Ingester.
package core

import (
	"fmt"

	"unbundle/internal/keyspace"
	"unbundle/internal/trace"
)

// Version is a monotonic transaction version assigned by the source of
// truth — the paper's simplifying assumption (§4.2): TrueTime commit
// timestamps in Spanner, TSO timestamps in TiDB, gtid in MySQL. Version 0
// (NoVersion) precedes every committed version.
type Version uint64

// NoVersion is the version before any committed transaction. Watching from
// NoVersion means "everything from the beginning of retained history".
const NoVersion Version = 0

// String renders the version for logs.
func (v Version) String() string { return fmt.Sprintf("v%d", uint64(v)) }

// Op distinguishes the two mutation kinds.
type Op uint8

const (
	// OpPut writes a value for a key.
	OpPut Op = iota + 1
	// OpDelete removes a key. Delete events are first-class (they are what
	// makes tombstone hacks unnecessary in the watch model).
	OpDelete
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mutation is the payload of a change event: what happened to the key.
type Mutation struct {
	Op    Op
	Value []byte // nil for OpDelete
}

// ChangeEvent reports that a key changed at a transaction version — the
// paper's `ChangeEvent { Key key; Mutation mutation; Version version; }`.
// Events for a single key are always delivered in version order; no cross-key
// order is promised (the store is the authority on ordering; consumers that
// need cross-key consistency use progress events, not event order).
type ChangeEvent struct {
	Key     keyspace.Key
	Mut     Mutation
	Version Version
	// Trace carries the event's sampled trace ID through every pipeline
	// stage; 0 (the overwhelmingly common case) means the event is untraced
	// and costs each stage exactly one branch. Stamped by the source store
	// when a trace.Tracer is configured there.
	Trace trace.ID
}

// ProgressEvent states that all change events affecting keys in Range up to
// and including Version have been supplied — the paper's
// `ProgressEvent { Key low; Key high; Version version; }`. Progress is
// range-scoped rather than global or partition-bound, which is what lets
// every layer define and evolve its own partition boundaries independently
// (§4.2.2).
type ProgressEvent struct {
	Range   keyspace.Range
	Version Version
}

// ResyncEvent tells a watcher that the version it knows is no longer
// retained, or that it lagged beyond the watch system's buffering. The
// watcher must read a recent snapshot of the watched range from the store
// (any replica — a stale snapshot is fine) and re-watch from the snapshot
// version. This signal is the heart of the paper's backlog argument: loss is
// impossible to hide because recovery is part of the contract.
type ResyncEvent struct {
	// Range is the watched range that needs resynchronization.
	Range keyspace.Range
	// MinVersion is the earliest version for which the watch system can still
	// supply a complete event stream; the recovery snapshot must be at or
	// after it.
	MinVersion Version
	// Reason is a human-readable explanation (eviction, overflow, wipe).
	Reason string
}

// WatchCallback receives the watch stream. Callbacks for one watch are
// invoked sequentially from a single goroutine; implementations may therefore
// keep unsynchronized per-watch state. Callbacks must not block indefinitely:
// a slow consumer is lagged out with a resync, never allowed to wedge the
// watch system (unbounded backlogs are exactly the pubsub failure mode the
// design removes).
type WatchCallback interface {
	OnEvent(ChangeEvent)
	OnProgress(ProgressEvent)
	OnResync(ResyncEvent)
}

// EventBatchCallback is an optional extension of WatchCallback. A callback
// that also implements it receives each contiguous run of change events the
// dispatcher drained from the watch queue as one OnEventBatch call instead of
// one OnEvent call per event — the batch hand-off that lets a transport (the
// remote server's connection outbox) move a whole ring-drain's worth of
// events in one synchronized step. Semantics are otherwise identical to
// per-event delivery: events arrive in enqueue order, per-key version order
// holds within and across batches, and progress/resync callbacks interleave
// at their queued positions. The callee must not retain or mutate evs (or
// the slice's backing array) after returning — a live drain's array is
// reused by the dispatcher, and a catch-up replay's is a view of sealed
// retention history shared read-only with every other replaying watcher;
// the event *values* (including Mutation.Value bytes) may be retained as
// usual.
type EventBatchCallback interface {
	OnEventBatch(evs []ChangeEvent)
}

// Funcs adapts plain functions to WatchCallback; nil fields are no-ops.
type Funcs struct {
	Event    func(ChangeEvent)
	Progress func(ProgressEvent)
	Resync   func(ResyncEvent)
}

// OnEvent implements WatchCallback.
func (f Funcs) OnEvent(ev ChangeEvent) {
	if f.Event != nil {
		f.Event(ev)
	}
}

// OnProgress implements WatchCallback.
func (f Funcs) OnProgress(p ProgressEvent) {
	if f.Progress != nil {
		f.Progress(p)
	}
}

// OnResync implements WatchCallback.
func (f Funcs) OnResync(r ResyncEvent) {
	if f.Resync != nil {
		f.Resync(r)
	}
}

// Cancel stops a watch. It is idempotent and safe to call from any
// goroutine; after it returns no further callbacks are delivered.
type Cancel func()

// Watchable is the consumer-facing contract (§4.2.1): request change state
// for a key range starting after a transaction version.
//
// Semantics: the stream contains every change event with version > from for
// keys in r, in per-key version order, unless a resync intervenes. Watching
// from a version older than retained history yields an immediate resync, not
// silent truncation. Catch-up replay of retained history is not performed
// inside the Watch call: Watch pins the covering history and returns, and
// the replay streams to cb on the watch's own delivery goroutine, ahead of
// any live events.
type Watchable interface {
	Watch(r keyspace.Range, from Version, cb WatchCallback) (Cancel, error)
}

// Ingester is the store-facing contract (§4.2.2): the store (or a CDC feed
// reading it) pushes change events and range-scoped progress into the watch
// system. The watch system keeps only soft state — deleting it loses no data
// and no consistency, only freshness, because consumers recover via resync.
type Ingester interface {
	// Append supplies one change event. Events for a given key must be
	// appended in non-decreasing version order.
	Append(ev ChangeEvent) error
	// AppendBatch supplies a batch of change events in one call — typically
	// everything one store commit produced — letting the watch system
	// amortize per-call synchronization. The batch must respect the same
	// per-key version ordering as a sequence of Appends, and the callee must
	// not retain evs after returning (the caller keeps ownership). An
	// implementation without a native batch path can delegate to the Batch
	// adapter.
	AppendBatch(evs []ChangeEvent) error
	// Progress declares that every change below and at the given version for
	// the given range has been appended.
	Progress(p ProgressEvent) error
}

// SingleIngester is the pre-batching store-facing contract: one event per
// call. Wrap one with Batch to obtain a full Ingester.
type SingleIngester interface {
	Append(ev ChangeEvent) error
	Progress(p ProgressEvent) error
}

// Batch adapts a SingleIngester to the full Ingester contract by looping
// AppendBatch over Append. Implementations with a real batch path should
// implement Ingester directly instead.
func Batch(si SingleIngester) Ingester { return batchAdapter{si} }

type batchAdapter struct{ SingleIngester }

func (a batchAdapter) AppendBatch(evs []ChangeEvent) error {
	for i := range evs {
		if err := a.Append(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Entry is one key's state in a snapshot read, used during resync.
type Entry struct {
	Key     keyspace.Key
	Value   []byte
	Version Version // version at which this value was written
}

// Snapshotter is the narrow read-only store view a watcher needs for
// recovery (§4.1): a consistent (possibly stale) snapshot of a range,
// together with the version it reflects. Producers expose a filtered view;
// consumers never see producer-store internals beyond it.
type Snapshotter interface {
	SnapshotRange(r keyspace.Range) (entries []Entry, at Version, err error)
}
