package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Hub errors.
var (
	// ErrClosed is returned by operations on a closed Hub.
	ErrClosed = errors.New("core: hub closed")
	// ErrBadWatch is returned for invalid watch requests.
	ErrBadWatch = errors.New("core: invalid watch request")
)

// HubConfig tunes a Hub's soft-state footprint.
type HubConfig struct {
	// Retention is the maximum number of change events kept in the hub's
	// in-memory window. Evicting an event a watcher would still need turns
	// into an explicit resync for that watcher — never silent loss.
	// Default 8192.
	Retention int
	// WatcherBuffer is the maximum number of undelivered items queued for one
	// watcher before it is lagged out with a resync. Default 1024.
	WatcherBuffer int
	// Metrics is the registry the hub's instruments register in; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
}

// hubMetrics holds the hub's registry instruments, resolved once at
// construction so the hot paths touch only atomics.
type hubMetrics struct {
	appends, progress, evictions *metrics.Counter
	resyncs, delivered           *metrics.Counter
	// The three overflow counters split resyncs by cause; each one is a
	// "would have been a silent drop" that the watch contract converts into
	// an explicit resync.
	appendOverflow, progressOverflow, replayOverflow *metrics.Counter
	appendLatency                                    *metrics.Histogram
	queueHighwater                                   *metrics.Gauge
	watchers, retained                               *metrics.Gauge
}

func newHubMetrics(reg *metrics.Registry) hubMetrics {
	reg = reg.Or()
	return hubMetrics{
		appends:          reg.Counter("core_hub_appends_total"),
		progress:         reg.Counter("core_hub_progress_total"),
		evictions:        reg.Counter("core_hub_evictions_total"),
		resyncs:          reg.Counter("core_hub_resyncs_total"),
		delivered:        reg.Counter("core_hub_delivered_total"),
		appendOverflow:   reg.Counter("core_hub_append_overflow_total"),
		progressOverflow: reg.Counter("core_hub_progress_overflow_total"),
		replayOverflow:   reg.Counter("core_hub_replay_overflow_total"),
		appendLatency:    reg.Histogram("core_hub_append_latency_ns"),
		queueHighwater:   reg.Gauge("core_hub_watcher_queue_highwater"),
		watchers:         reg.Gauge("core_hub_watchers"),
		retained:         reg.Gauge("core_hub_retained_events"),
	}
}

func (c *HubConfig) applyDefaults() {
	if c.Retention <= 0 {
		c.Retention = 8192
	}
	if c.WatcherBuffer <= 0 {
		c.WatcherBuffer = 1024
	}
}

// HubStats is a snapshot of a Hub's counters, used by the efficiency
// experiments (E10): the hub holds no hard state, so its entire cost is the
// soft-state window reported here.
type HubStats struct {
	Appends        int64 // change events ingested
	ProgressEvents int64 // progress events ingested
	Evictions      int64 // events evicted from the retention window
	Resyncs        int64 // resync signals issued to watchers
	Delivered      int64 // change events delivered to watchers
	RetainedEvents int   // current soft-state window size
	Watchers       int   // currently registered watchers
	MaxSeen        Version
}

// Hub is a standalone watch system: it implements Ingester on its input side
// and Watchable on its output side, holding only recoverable soft state.
//
// The contract it provides to each watcher registered over range R from
// version V:
//
//   - every ChangeEvent with Version > V for a key in R is delivered in
//     per-key version order, OR the watcher receives OnResync — there is no
//     third outcome (contrast §3.1: pubsub retention GC has exactly this
//     third, silent outcome);
//   - ProgressEvents are forwarded clipped to R, and never claim more than
//     the store has confirmed;
//   - a watcher that requests pre-eviction history, lags beyond its buffer,
//     or survives a hub state wipe gets OnResync with the minimum version its
//     recovery snapshot must reflect.
type Hub struct {
	cfg HubConfig
	met hubMetrics

	mu       sync.Mutex
	closed   bool
	events   []ChangeEvent // retained window, arrival order
	start    int           // ring start index within events
	evicted  Version       // max version among evicted events
	maxSeen  Version       // max version ever appended
	frontier VersionMap
	watchers map[int64]*hubWatcher
	index    watcherIndex // range → watcher ids, for O(log n) event fanout
	nextID   int64

	appends, progress, evictions, resyncs, delivered int64
}

var (
	_ Ingester  = (*Hub)(nil)
	_ Watchable = (*Hub)(nil)
)

// NewHub creates a Hub with the given configuration.
func NewHub(cfg HubConfig) *Hub {
	cfg.applyDefaults()
	return &Hub{
		cfg:      cfg,
		met:      newHubMetrics(cfg.Metrics),
		watchers: make(map[int64]*hubWatcher),
	}
}

// Append implements Ingester. Events for one key must arrive in
// non-decreasing version order (the store's CDC feed guarantees this).
func (h *Hub) Append(ev ChangeEvent) error {
	start := time.Now()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	h.appends++
	sampleLatency := h.appends&7 == 0 // 1-in-8 sample keeps the histogram lock off most appends
	evictionsBefore := h.evictions
	if ev.Version > h.maxSeen {
		h.maxSeen = ev.Version
	}
	h.events = append(h.events, ev)
	// Evict beyond the retention window (FIFO by arrival).
	for len(h.events)-h.start > h.cfg.Retention {
		old := h.events[h.start]
		if old.Version > h.evicted {
			h.evicted = old.Version
		}
		h.events[h.start] = ChangeEvent{} // release value for GC
		h.start++
		h.evictions++
	}
	if h.start > len(h.events)/2 && h.start > 1024 {
		h.events = append([]ChangeEvent(nil), h.events[h.start:]...)
		h.start = 0
	}
	// Fan out through the range index: only watchers covering the key are
	// touched, so cost scales with interested watchers, not all watchers.
	var lagged []*hubWatcher
	delivered := int64(0)
	h.index.lookup(ev.Key, func(id int64) {
		w := h.watchers[id]
		if w == nil || w.lagged || ev.Version <= w.from {
			return
		}
		if !w.enqueue(item{ev: &ev}) {
			lagged = append(lagged, w)
		} else {
			h.delivered++
			delivered++
		}
	})
	for _, w := range lagged {
		h.lagOutLocked(w, "watcher buffer overflow")
	}
	evicted := h.evictions - evictionsBefore
	retained := int64(len(h.events) - h.start)
	h.mu.Unlock()
	h.met.appends.Inc()
	h.met.delivered.Add(delivered)
	h.met.appendOverflow.Add(int64(len(lagged)))
	h.met.retained.Set(retained)
	h.met.evictions.Add(evicted)
	if sampleLatency {
		h.met.appendLatency.ObserveDuration(time.Since(start))
	}
	return nil
}

// Progress implements Ingester: the store confirms completeness of the event
// stream for a range up to a version.
func (h *Hub) Progress(p ProgressEvent) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	h.progress++
	if p.Version > h.maxSeen {
		h.maxSeen = p.Version
	}
	h.frontier.Raise(p.Range, p.Version)
	// A full watcher buffer must lag the watcher out here exactly as Append
	// does: dropping the progress event instead would stall the watcher's
	// knowledge frontier forever with no signal — the "third outcome" the
	// contract forbids.
	var lagged []*hubWatcher
	for _, w := range h.watchers {
		if w.lagged {
			continue
		}
		clipped := p.Range.Intersect(w.rng)
		if clipped.Empty() {
			continue
		}
		if !w.enqueue(item{prog: &ProgressEvent{Range: clipped, Version: p.Version}}) {
			lagged = append(lagged, w)
		}
	}
	for _, w := range lagged {
		h.lagOutLocked(w, "watcher buffer overflow on progress")
	}
	h.mu.Unlock()
	h.met.progress.Inc()
	h.met.progressOverflow.Add(int64(len(lagged)))
	return nil
}

// Watch implements Watchable.
func (h *Hub) Watch(r keyspace.Range, from Version, cb WatchCallback) (Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", ErrBadWatch, r)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	w := newHubWatcher(h, h.nextID, r, from, cb, h.cfg.WatcherBuffer)
	h.nextID++
	h.watchers[w.id] = w

	if from < h.evicted {
		// The history this watcher needs is gone from the soft-state window:
		// tell it immediately rather than delivering a gapped stream.
		h.lagOutLocked(w, fmt.Sprintf("requested version %v predates retained history (evicted through %v)", from, h.evicted))
	} else {
		h.index.add(w.id, w.rng)
		// Replay the retained window (arrival order preserves per-key
		// version order), then the watcher rides the live stream. A replay
		// larger than the watcher's buffer lags it out with a resync — the
		// truncated stream a silent drop would leave behind is precisely the
		// gapped delivery the contract forbids.
		overflowed := false
		for _, ev := range h.events[h.start:] {
			if ev.Version > from && r.Contains(ev.Key) {
				if !w.enqueue(item{ev: cloneEvent(ev)}) {
					overflowed = true
					break
				}
				h.delivered++
			}
		}
		if !overflowed {
			// Tell the watcher the current frontier over its range so it can
			// establish knowledge without waiting for the next progress tick.
			for _, seg := range h.frontier.Segments() {
				clipped := seg.Range.Intersect(r)
				if clipped.Empty() {
					continue
				}
				if !w.enqueue(item{prog: &ProgressEvent{Range: clipped, Version: seg.Version}}) {
					overflowed = true
					break
				}
			}
		}
		if overflowed {
			h.met.replayOverflow.Inc()
			h.lagOutLocked(w, "retained-window replay exceeds watcher buffer")
		}
	}
	h.met.watchers.Set(int64(len(h.watchers)))
	h.mu.Unlock()

	go w.run()
	return func() { h.cancel(w) }, nil
}

func cloneEvent(ev ChangeEvent) *ChangeEvent {
	c := ev
	return &c
}

// lagOutLocked marks w as lagged, drops its queue and schedules a resync.
func (h *Hub) lagOutLocked(w *hubWatcher, reason string) {
	if w.lagged {
		return
	}
	w.lagged = true
	h.index.remove(w.id, w.rng)
	h.resyncs++
	h.met.resyncs.Inc()
	min := h.maxSeen
	if h.evicted > min {
		min = h.evicted
	}
	w.replaceQueue(item{resync: &ResyncEvent{Range: w.rng, MinVersion: min, Reason: reason}})
}

func (h *Hub) cancel(w *hubWatcher) {
	h.mu.Lock()
	if !w.lagged {
		h.index.remove(w.id, w.rng)
	}
	delete(h.watchers, w.id)
	h.met.watchers.Set(int64(len(h.watchers)))
	h.mu.Unlock()
	w.stop()
}

// Wipe discards the hub's entire soft state — retained events and frontier —
// and resyncs every watcher. It models losing the watch system's storage:
// per §4.2.2 this costs latency, never data or consistency, because every
// consumer recovers from the authoritative store. Experiments use it for
// failure injection.
func (h *Hub) Wipe() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.events = nil
	h.start = 0
	h.evicted = h.maxSeen
	h.frontier = VersionMap{}
	for _, w := range h.watchers {
		w.lagged = false // re-evaluate: everyone resyncs afresh
		h.lagOutLocked(w, "watch system state wiped")
	}
}

// Frontier returns a copy of the current progress frontier.
func (h *Hub) Frontier() *VersionMap {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frontier.Clone()
}

// Stats returns a snapshot of the hub's counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Appends:        h.appends,
		ProgressEvents: h.progress,
		Evictions:      h.evictions,
		Resyncs:        h.resyncs,
		Delivered:      h.delivered,
		RetainedEvents: len(h.events) - h.start,
		Watchers:       len(h.watchers),
		MaxSeen:        h.maxSeen,
	}
}

// Close shuts the hub down; all watchers are stopped without further
// callbacks, and subsequent operations fail with ErrClosed.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ws := make([]*hubWatcher, 0, len(h.watchers))
	for _, w := range h.watchers {
		ws = append(ws, w)
	}
	h.watchers = map[int64]*hubWatcher{}
	h.met.watchers.Set(0)
	h.mu.Unlock()
	for _, w := range ws {
		w.stop()
	}
}

// item is one queued delivery for a watcher; exactly one field is set.
type item struct {
	ev     *ChangeEvent
	prog   *ProgressEvent
	resync *ResyncEvent
}

// hubWatcher is the per-watch delivery state. Callbacks run on a dedicated
// goroutine so a slow consumer can never block the hub — it simply overflows
// its own bounded queue and is resynced.
type hubWatcher struct {
	id   int64
	hub  *Hub
	rng  keyspace.Range
	from Version
	cb   WatchCallback
	max  int

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []item
	cancelled bool

	// lagged is owned by hub.mu: once true the hub stops feeding events; the
	// only remaining delivery is the resync already queued.
	lagged bool
}

func newHubWatcher(h *Hub, id int64, r keyspace.Range, from Version, cb WatchCallback, max int) *hubWatcher {
	w := &hubWatcher{id: id, hub: h, rng: r, from: from, cb: cb, max: max}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// enqueue adds an item; it reports false when the queue is full (the caller
// lags the watcher out). Resync items bypass the bound.
func (w *hubWatcher) enqueue(it item) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancelled {
		return true // drop silently; watcher is going away
	}
	if it.resync == nil && len(w.queue) >= w.max {
		return false
	}
	w.queue = append(w.queue, it)
	w.hub.met.queueHighwater.Max(int64(len(w.queue)))
	w.cond.Signal()
	return true
}

// replaceQueue drops everything queued and replaces it with a single item
// (the resync). Events already dispatched cannot be unsent, but per-key
// prefix-delivery remains intact: delivery order equals enqueue order.
func (w *hubWatcher) replaceQueue(it item) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancelled {
		return
	}
	w.queue = append(w.queue[:0], it)
	w.cond.Signal()
}

func (w *hubWatcher) stop() {
	w.mu.Lock()
	w.cancelled = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *hubWatcher) run() {
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.cancelled {
			w.cond.Wait()
		}
		if w.cancelled {
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()

		for _, it := range batch {
			w.mu.Lock()
			c := w.cancelled
			w.mu.Unlock()
			if c {
				return
			}
			switch {
			case it.ev != nil:
				w.cb.OnEvent(*it.ev)
			case it.prog != nil:
				w.cb.OnProgress(*it.prog)
			case it.resync != nil:
				w.cb.OnResync(*it.resync)
			}
		}
	}
}
