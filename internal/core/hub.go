package core

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/flightrec"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/logz"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// Hub errors.
var (
	// ErrClosed is returned by operations on a closed Hub.
	ErrClosed = errors.New("core: hub closed")
	// ErrBadWatch is returned for invalid watch requests.
	ErrBadWatch = errors.New("core: invalid watch request")
)

// HubConfig tunes a Hub's soft-state footprint and parallelism.
type HubConfig struct {
	// Retention is the maximum number of change events kept in each shard's
	// in-memory window (total soft state is therefore at most
	// Shards×Retention). Evicting an event a watcher would still need turns
	// into an explicit resync for that watcher — never silent loss.
	// Default 8192.
	Retention int
	// WatcherBuffer is the maximum number of undelivered items queued for one
	// watcher before it is lagged out with a resync. Default 1024.
	WatcherBuffer int
	// Shards is the number of key-range shards the hub's ingest state
	// (retained window, frontier, watcher index) is partitioned into. Appends
	// to disjoint ranges never contend: each shard has its own lock. Shard
	// boundaries follow keyspace.EvenSplit over the numeric key domain, the
	// same convention the auto-sharder and ShardedHub use. Default
	// GOMAXPROCS; reproduction experiments that depend on a single global
	// eviction window pin Shards to 1.
	Shards int
	// Metrics is the registry the hub's instruments register in; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Clock supplies the timestamps behind the lag radar (WatcherLags and
	// the version→time checkpoints); nil uses the real clock. Tests inject
	// clockwork.NewFake() for deterministic staleness measurements.
	Clock clockwork.Clock
	// Tracer, when non-nil, receives per-stage stamps (append, enqueue,
	// deliver) for events the source sampled. Wire the same Tracer into the
	// store and the hub so one trace spans commit→deliver. Nil disables the
	// hub's tracing stages at the cost of one branch per stage.
	Tracer *trace.Tracer
	// Recorder, when non-nil, receives flight-recorder records for the
	// hub's rare lifecycle events: watcher add/remove/lag-out, segment
	// seal/retire, state wipes. The hot append/deliver paths record
	// nothing per event, so the always-on cost is one branch at each
	// already-rare transition; nil disables recording entirely.
	Recorder *flightrec.Recorder
	// Log receives structured records for the same lifecycle transitions;
	// nil uses the process-wide logz ring under component "core.hub".
	Log *slog.Logger
	// Governor, when non-nil, bounds the hub's soft state in bytes: retained
	// segments charge the "hub" account and watcher rings the "rings"
	// account, the hub registers its degradation relievers (accelerated
	// eviction, then watcher shedding), and Watch admission-controls new
	// registrations under Reject pressure. Nil disables governance at the
	// cost of one branch per charge site.
	Governor *govern.Governor
	// RetentionFloor is the per-shard retained-event count accelerated
	// eviction may trim down to under memory pressure — the freshness the
	// hub refuses to trade away. Default Retention/4.
	RetentionFloor int
}

// hubMetrics holds the hub's registry instruments, resolved once at
// construction so the hot paths touch only atomics.
type hubMetrics struct {
	appends, progress, evictions *metrics.Counter
	resyncs, delivered           *metrics.Counter
	// The three overflow counters split resyncs by cause; each one is a
	// "would have been a silent drop" that the watch contract converts into
	// an explicit resync.
	appendOverflow, progressOverflow, replayOverflow *metrics.Counter
	// replayEvents counts change events delivered through the catch-up
	// (retained-history) stream, as opposed to the live fanout; replayLatency
	// observes one whole-watch replay stream each.
	replayEvents       *metrics.Counter
	appendLatency      *metrics.Histogram
	replayLatency      *metrics.Histogram
	queueHighwater     *metrics.Gauge
	watchers, retained *metrics.Gauge
	// sealedSegments/sealedBytes track the immutable portion of the
	// retention windows: how many sealed segments the shards hold and their
	// approximate payload footprint.
	sealedSegments, sealedBytes *metrics.Gauge
}

func newHubMetrics(reg *metrics.Registry) hubMetrics {
	reg = reg.Or()
	return hubMetrics{
		appends:          reg.Counter("core_hub_appends_total"),
		progress:         reg.Counter("core_hub_progress_total"),
		evictions:        reg.Counter("core_hub_evictions_total"),
		resyncs:          reg.Counter("core_hub_resyncs_total"),
		delivered:        reg.Counter("core_hub_delivered_total"),
		appendOverflow:   reg.Counter("core_hub_append_overflow_total"),
		progressOverflow: reg.Counter("core_hub_progress_overflow_total"),
		replayOverflow:   reg.Counter("core_hub_replay_overflow_total"),
		replayEvents:     reg.Counter("core_hub_replay_events_total"),
		appendLatency:    reg.Histogram("core_hub_append_latency_ns"),
		replayLatency:    reg.Histogram("core_hub_replay_latency_ns"),
		queueHighwater:   reg.Gauge("core_hub_watcher_queue_highwater"),
		watchers:         reg.Gauge("core_hub_watchers"),
		retained:         reg.Gauge("core_hub_retained_events"),
		sealedSegments:   reg.Gauge("core_hub_sealed_segments"),
		sealedBytes:      reg.Gauge("core_hub_sealed_segment_bytes"),
	}
}

func (c *HubConfig) applyDefaults() {
	if c.Retention <= 0 {
		c.Retention = 8192
	}
	if c.WatcherBuffer <= 0 {
		c.WatcherBuffer = 1024
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.RetentionFloor <= 0 {
		c.RetentionFloor = c.Retention / 4
	}
	if c.RetentionFloor > c.Retention {
		c.RetentionFloor = c.Retention
	}
}

// HubStats is a snapshot of a Hub's counters, used by the efficiency
// experiments (E10): the hub holds no hard state, so its entire cost is the
// soft-state window reported here.
type HubStats struct {
	Appends        int64 // change events ingested
	ProgressEvents int64 // progress events ingested
	Evictions      int64 // events evicted from the retention windows
	Resyncs        int64 // resync signals issued to watchers
	Delivered      int64 // change events delivered to watchers
	RetainedEvents int   // current soft-state window size, summed over shards
	Watchers       int   // currently registered watchers
	Shards         int   // key-range shards
	MaxSeen        Version
}

// Hub is a standalone watch system: it implements Ingester on its input side
// and Watchable on its output side, holding only recoverable soft state.
//
// The contract it provides to each watcher registered over range R from
// version V:
//
//   - every ChangeEvent with Version > V for a key in R is delivered in
//     per-key version order, OR the watcher receives OnResync — there is no
//     third outcome (contrast §3.1: pubsub retention GC has exactly this
//     third, silent outcome);
//   - ProgressEvents are forwarded clipped to R (possibly split along shard
//     boundaries — each piece is range-scoped truthful), and never claim
//     more than the store has confirmed;
//   - a watcher that requests pre-eviction history, lags beyond its buffer,
//     or survives a hub state wipe gets OnResync with the minimum version its
//     recovery snapshot must reflect.
//
// Internally the hub is partitioned into key-range shards, each owning a
// slice of the retained window, the progress frontier, and the watcher
// index, under its own lock. A key lives in exactly one shard, so per-key
// version order survives sharding; a watcher spanning several shards
// registers in each and funnels every shard's deliveries through one
// ring-buffer queue drained by one dispatch goroutine, so its callbacks stay
// serialized.
//
// Lock order (outermost first): regMu, then shard locks in ascending shard
// index, then watcher ring locks. Ingest paths (Append/AppendBatch/Progress)
// take only shard and ring locks.
type Hub struct {
	cfg    HubConfig
	met    hubMetrics
	clock  clockwork.Clock
	tracer *trace.Tracer
	rec    *flightrec.Recorder
	log    *slog.Logger

	// verTimes maps versions to the wall-clock instant the hub's frontier
	// first passed them — the substrate for time-behind-frontier lag.
	verTimes verClock

	lows   []keyspace.Key // shard lower bounds, ascending (lows[0] == "")
	shards []*hubShard

	// segPool recycles retention-segment arrays across all shards; the
	// per-segment event capacity is fixed at construction from Retention.
	segPool segPool

	// gov and its two child accounts are nil when ungoverned; every charge
	// site is nil-safe, so the ungoverned hot path pays one branch.
	gov      *govern.Governor
	segAcct  *govern.Account // retained-window footprint ("hub")
	ringAcct *govern.Account // queued-but-undelivered footprint ("rings")

	regMu    sync.Mutex // watcher lifecycle: Watch, cancel, Wipe, Close
	closed   bool
	watchers map[int64]*hubWatcher
	nextID   int64

	resyncs       atomic.Int64
	progressCalls atomic.Int64 // Progress() invocations (not per-shard slices)
}

// hubShard owns one key range's ingest state.
type hubShard struct {
	idx int // position in Hub.shards, for flight-record attribution
	rng keyspace.Range

	mu     sync.Mutex
	closed bool

	// Retained window: a chain of segments in arrival order. All but the
	// last are sealed — immutable and shared zero-copy with replaying
	// watchers; the last is the active tail, the only part of the window a
	// live append mutates. Steady state recycles arrays through the hub's
	// segment pool, so an append writes one slot and allocates nothing.
	segs  []*segment
	count int // retained events, summed over the chain
	// chargedBytes mirrors what this shard's retained window has charged the
	// governor's hub account: evFootprint summed over evs[trim:] of the
	// chain. Maintained under s.mu so Wipe/Close can release exactly.
	chargedBytes int64

	evicted  atomic.Uint64 // max version among evicted events (read cross-shard)
	maxSeen  atomic.Uint64 // max version ever appended here (read cross-shard)
	frontier VersionMap
	watchers map[int64]*hubWatcher // watchers registered in this shard
	index    watcherIndex          // shard-clipped range → watcher ids
	progSet  map[int64]struct{}    // reusable dedupe set for progress fanout

	appends, evictions, delivered int64
}

// tailLocked returns the shard's active tail segment, opening the chain's
// first segment on demand. Caller holds s.mu.
func (s *hubShard) tailLocked(h *Hub) *segment {
	if len(s.segs) == 0 {
		s.segs = append(s.segs, h.segPool.get())
	}
	return s.segs[len(s.segs)-1]
}

var (
	_ Ingester  = (*Hub)(nil)
	_ Watchable = (*Hub)(nil)
)

// NewHub creates a Hub with the given configuration.
func NewHub(cfg HubConfig) *Hub {
	cfg.applyDefaults()
	clock := cfg.Clock
	if clock == nil {
		clock = clockwork.Real()
	}
	log := cfg.Log
	if log == nil {
		log = logz.Logger("core.hub")
	}
	h := &Hub{
		cfg:      cfg,
		met:      newHubMetrics(cfg.Metrics),
		clock:    clock,
		tracer:   cfg.Tracer,
		rec:      cfg.Recorder,
		log:      log,
		watchers: make(map[int64]*hubWatcher),
		segPool:  segPool{size: segSizeFor(cfg.Retention)},
	}
	for i, r := range keyspace.EvenSplit(cfg.Shards*1000, cfg.Shards) {
		h.lows = append(h.lows, r.Low)
		h.shards = append(h.shards, &hubShard{
			idx:      i,
			rng:      r,
			watchers: make(map[int64]*hubWatcher),
			progSet:  make(map[int64]struct{}),
		})
	}
	h.registerLagGauges(cfg.Metrics.Or())
	if cfg.Governor != nil {
		h.gov = cfg.Governor
		h.segAcct = h.gov.Account("hub")
		h.ringAcct = h.gov.Account("rings")
		// The degradation ladder's first two rungs, in priority order:
		// shrink soft state before touching watchers, shed watchers before
		// (the governor starts) rejecting admissions.
		h.gov.RegisterReliever(10, "hub-evict", h.relieveEvict)
		h.gov.RegisterReliever(20, "hub-shed", h.relieveShed)
	}
	return h
}

// NumShards returns the hub's shard count.
func (h *Hub) NumShards() int { return len(h.shards) }

// shardFor returns the shard owning k. Shard ranges partition the keyspace,
// so the owner is the last shard whose lower bound is <= k.
func (h *Hub) shardFor(k keyspace.Key) *hubShard {
	if len(h.shards) == 1 {
		return h.shards[0]
	}
	i := sort.Search(len(h.lows), func(i int) bool { return h.lows[i] > k }) - 1
	return h.shards[i]
}

// minResyncVersion is the version a resyncing watcher's recovery snapshot
// must reflect: the highest version the hub has seen or evicted anywhere.
// Per-shard values are read atomically, so no shard lock is required.
func (h *Hub) minResyncVersion() Version {
	var min uint64
	for _, s := range h.shards {
		if v := s.maxSeen.Load(); v > min {
			min = v
		}
		if v := s.evicted.Load(); v > min {
			min = v
		}
	}
	return Version(min)
}

// ingestFx accumulates one ingest call's side effects so that registry
// counters are flushed once, outside every shard lock.
type ingestFx struct {
	appends, delivered, evictions, retained int64
	appendOverflow, progressOverflow        int64
	sampleLatency                           bool
	lagged                                  []laggedRef // cross-shard index removal, deferred
}

// laggedRef records where a lag-out originated so the deferred cleanup can
// skip the shard whose lock already removed the index entry.
type laggedRef struct {
	w      *hubWatcher
	origin *hubShard
}

func (h *Hub) flushIngest(fx *ingestFx) {
	if fx.appends > 0 {
		h.met.appends.Add(fx.appends)
	}
	if fx.delivered > 0 {
		h.met.delivered.Add(fx.delivered)
	}
	if fx.evictions > 0 {
		h.met.evictions.Add(fx.evictions)
	}
	if fx.retained != 0 {
		h.met.retained.Add(fx.retained)
	}
	if fx.appendOverflow > 0 {
		h.met.appendOverflow.Add(fx.appendOverflow)
	}
	if fx.progressOverflow > 0 {
		h.met.progressOverflow.Add(fx.progressOverflow)
	}
}

// finishLagged removes lagged watchers from the shards the lag-out origin
// could not touch (their locks were not held). Until this runs, stale index
// entries are harmless: every fanout checks the watcher's lagged flag, and
// the ring itself drops post-resync deliveries.
func (h *Hub) finishLagged(fx *ingestFx) {
	for _, ref := range fx.lagged {
		for _, s := range h.shards {
			if s == ref.origin {
				continue
			}
			clip := ref.w.rng.Intersect(s.rng)
			if clip.Empty() {
				continue
			}
			s.mu.Lock()
			s.index.remove(ref.w.id, clip)
			s.mu.Unlock()
		}
	}
}

// lagOutLocked marks w as lagged, replaces its queue with a resync, and
// removes it from the origin shard's index (whose lock the caller holds).
// Index entries in other shards are cleaned up by finishLagged after the
// origin lock is released; the atomic lagged flag keeps them inert until
// then. Exactly one caller wins the flag, so accounting happens once.
// tid, when nonzero, is the trace of the event whose delivery failure
// caused the cut-over — it correlates the flight record with the sampled
// trace that hit the full buffer.
func (h *Hub) lagOutLocked(w *hubWatcher, origin *hubShard, reason string, tid trace.ID, fx *ingestFx) {
	if !w.lagged.CompareAndSwap(false, true) {
		return
	}
	h.resyncs.Add(1)
	h.met.resyncs.Inc()
	if origin != nil {
		origin.index.remove(w.id, w.rng.Intersect(origin.rng))
	}
	min := h.minResyncVersion()
	w.q.lagOut(ResyncEvent{Range: w.rng, MinVersion: min, Reason: reason})
	fx.lagged = append(fx.lagged, laggedRef{w: w, origin: origin})
	h.rec.Record(flightrec.KindWatcherLagOut, flightrec.Event{
		Comp: "core.hub", ID: w.id, Version: uint64(min), Trace: tid, Detail: reason,
	})
	h.log.Warn("watcher lagged out", "id", w.id, "reason", reason, "min_version", uint64(min), "trace", tid)
}

// evictOneLocked trims the shard's oldest retained event, dropping the
// oldest segment once fully consumed; the caller holds s.mu and must have
// checked s.count > 0. It returns the event's governor footprint (0 when
// ungoverned); the caller settles chargedBytes and the hub account.
func (s *hubShard) evictOneLocked(h *Hub, fx *ingestFx) int64 {
	oldest := s.segs[0]
	ev := &oldest.evs[oldest.trim]
	var freed int64
	if h.segAcct != nil {
		freed = evFootprint(ev)
	}
	if v := uint64(ev.Version); v > s.evicted.Load() {
		s.evicted.Store(v)
	}
	oldest.trim++
	s.count--
	s.evictions++
	fx.evictions++
	fx.retained--
	if oldest.sealed && oldest.trim == len(oldest.evs) {
		s.segs[0] = nil
		s.segs = s.segs[1:]
		h.met.sealedSegments.Add(-1)
		h.met.sealedBytes.Add(-oldest.bytes)
		// One retire record stands in for the len(evs) per-event trims
		// that consumed the segment — eviction is flight-recorded at
		// segment granularity, never per event.
		h.rec.Record(flightrec.KindSegmentRetire, flightrec.Event{
			Comp: "core.hub", ID: int64(s.idx), Version: uint64(oldest.maxVer), N: int64(len(oldest.evs)),
		})
		oldest.release(&h.segPool)
	}
	return freed
}

// relieveEvict is the governor's first-rung reliever: accelerate retention
// eviction down to the configured floor, shard by shard, until `need` bytes
// are freed or every shard sits at its floor. Eviction never lags a live
// watcher (fanout happens at append time); it only shortens the catch-up
// window new watchers can replay.
func (h *Hub) relieveEvict(need int64) int64 {
	var freed int64
	var fx ingestFx
	for _, s := range h.shards {
		if freed >= need {
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		var shardFreed int64
		for s.count > h.cfg.RetentionFloor && len(s.segs) > 0 && freed+shardFreed < need {
			shardFreed += s.evictOneLocked(h, &fx)
		}
		s.chargedBytes -= shardFreed
		s.mu.Unlock()
		freed += shardFreed
	}
	h.segAcct.Release(freed)
	h.flushIngest(&fx)
	return freed
}

// relieveShed is the second rung: when eviction alone cannot clear the
// pressure, lag out the watcher holding the largest undelivered backlog —
// onto the ordinary resync path, so the cut is explicit and recoverable —
// and quarantine it so a repeat offender waits out a jittered re-admit
// delay before Watch lets it back in.
func (h *Hub) relieveShed(int64) int64 {
	if h.gov.Pressure() < govern.Shed {
		return 0 // eviction pressure only: watchers are not touched yet
	}
	h.regMu.Lock()
	if h.closed {
		h.regMu.Unlock()
		return 0
	}
	var worst *hubWatcher
	var worstBytes int64
	for _, w := range h.watchers {
		if w.lagged.Load() {
			continue
		}
		if b := w.q.held(); b > worstBytes {
			worst, worstBytes = w, b
		}
	}
	if worst == nil {
		h.regMu.Unlock()
		return 0
	}
	var fx ingestFx
	h.gov.Quarantine(worst.rng.String())
	h.lagOutLocked(worst, nil, "shed under memory pressure", 0, &fx)
	h.regMu.Unlock()
	h.finishLagged(&fx)
	h.flushIngest(&fx)
	return worstBytes
}

// appendLocked ingests one event into the shard; the caller holds s.mu.
func (s *hubShard) appendLocked(h *Hub, ev ChangeEvent, fx *ingestFx) {
	s.appends++
	fx.appends++
	if s.appends&7 == 0 { // 1-in-8 sample keeps the histogram lock off most appends
		fx.sampleLatency = true
	}
	if v := uint64(ev.Version); v > s.maxSeen.Load() {
		s.maxSeen.Store(v)
	}
	// FIFO eviction beyond the per-shard retention: advance the oldest
	// segment's trim one event at a time (exact per-event accounting) and
	// drop the segment once fully consumed. A pinned replay view keeps a
	// dropped array alive — and readable — until it releases its reference.
	if s.count >= h.cfg.Retention && len(s.segs) > 0 {
		freed := s.evictOneLocked(h, fx)
		s.chargedBytes -= freed
		h.segAcct.Release(freed)
	}
	tail := s.tailLocked(h)
	if tail.full() {
		tail.seal()
		h.met.sealedSegments.Add(1)
		h.met.sealedBytes.Add(tail.bytes)
		h.rec.Record(flightrec.KindSegmentSeal, flightrec.Event{
			Comp: "core.hub", ID: int64(s.idx), Version: uint64(tail.maxVer), N: int64(len(tail.evs)),
		})
		tail = h.segPool.get()
		s.segs = append(s.segs, tail)
	}
	tail.push(ev)
	s.count++
	fx.retained++
	if h.segAcct != nil {
		fp := evFootprint(&ev)
		s.chargedBytes += fp
		h.segAcct.Charge(fp)
	}
	if ev.Trace != 0 {
		h.tracer.Record(ev.Trace, trace.StageAppend)
	}

	// Fan out through the range index: only watchers covering the key are
	// touched, so cost scales with interested watchers, not all watchers.
	s.index.lookup(ev.Key, func(id int64) {
		w := s.watchers[id]
		if w == nil || w.lagged.Load() || ev.Version <= w.from {
			return
		}
		if w.q.enqueue(item{kind: kindEvent, ev: ev}) {
			s.delivered++
			fx.delivered++
			if ev.Trace != 0 {
				h.tracer.Record(ev.Trace, trace.StageEnqueue)
			}
		} else {
			fx.appendOverflow++
			h.lagOutLocked(w, s, "watcher buffer overflow", ev.Trace, fx)
		}
	})
}

// Append implements Ingester. Events for one key must arrive in
// non-decreasing version order (the store's CDC feed guarantees this).
func (h *Hub) Append(ev ChangeEvent) error {
	start := time.Now()
	s := h.shardFor(ev.Key)
	var fx ingestFx
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.appendLocked(h, ev, &fx)
	s.mu.Unlock()
	h.finishLagged(&fx)
	h.flushIngest(&fx)
	if fx.sampleLatency {
		h.met.appendLatency.ObserveDuration(time.Since(start))
	}
	return nil
}

// AppendBatch implements Ingester: it ingests a batch of events, taking each
// touched shard's lock once instead of once per event. Per-key version order
// is preserved because batch order is kept within each shard and a key lives
// in exactly one shard. The hub copies what it retains; the caller keeps
// ownership of evs.
func (h *Hub) AppendBatch(evs []ChangeEvent) error {
	if len(evs) == 0 {
		return nil
	}
	start := time.Now()
	var fx ingestFx
	if len(h.shards) == 1 {
		s := h.shards[0]
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		for i := range evs {
			s.appendLocked(h, evs[i], &fx)
		}
		s.mu.Unlock()
	} else {
		for _, s := range h.shards {
			locked := false
			for i := range evs {
				if !s.rng.Contains(evs[i].Key) {
					continue
				}
				if !locked {
					s.mu.Lock()
					if s.closed {
						s.mu.Unlock()
						h.finishLagged(&fx)
						h.flushIngest(&fx)
						return ErrClosed
					}
					locked = true
				}
				s.appendLocked(h, evs[i], &fx)
			}
			if locked {
				s.mu.Unlock()
			}
		}
	}
	h.finishLagged(&fx)
	h.flushIngest(&fx)
	if fx.sampleLatency {
		h.met.appendLatency.ObserveDuration(time.Since(start))
	}
	return nil
}

// Progress implements Ingester: the store confirms completeness of the event
// stream for a range up to a version. The claim is split along shard
// boundaries; each shard raises its frontier slice and fans the clipped
// claim out through its range index, so watchers with no overlap are never
// touched.
func (h *Hub) Progress(p ProgressEvent) error {
	var fx ingestFx
	for _, s := range h.shards {
		clipped := p.Range.Intersect(s.rng)
		if clipped.Empty() {
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			h.finishLagged(&fx)
			h.flushIngest(&fx)
			return ErrClosed
		}
		if v := uint64(p.Version); v > s.maxSeen.Load() {
			s.maxSeen.Store(v)
		}
		s.frontier.Raise(clipped, p.Version)
		// A full watcher buffer must lag the watcher out here exactly as
		// Append does: dropping the progress event instead would stall the
		// watcher's knowledge frontier forever with no signal — the "third
		// outcome" the contract forbids.
		s.index.lookupRange(clipped, s.progSet, func(id int64) {
			w := s.watchers[id]
			if w == nil || w.lagged.Load() {
				return
			}
			wc := clipped.Intersect(w.rng)
			if wc.Empty() {
				return
			}
			if !w.q.enqueue(item{kind: kindProgress, prog: ProgressEvent{Range: wc, Version: p.Version}}) {
				fx.progressOverflow++
				h.lagOutLocked(w, s, "watcher buffer overflow on progress", 0, &fx)
			}
		})
		s.mu.Unlock()
	}
	h.finishLagged(&fx)
	h.flushIngest(&fx)
	h.progressCalls.Add(1)
	h.met.progress.Inc()
	// Checkpoint the frontier's passage of p.Version for the lag radar:
	// time-behind-frontier is "now minus the instant the hub first moved
	// past the watcher's position". Progress is the only caller, so the
	// append hot path stays checkpoint-free.
	h.verTimes.note(uint64(p.Version), h.clock.Now().UnixNano())
	return nil
}

// Watch implements Watchable. The watcher registers in every shard its range
// overlaps; each shard does O(segments) work under its lock — pin the
// retention chain's segments and record the cut version — and the watcher's
// dispatch goroutine then streams the replay outside every lock, zero-copy
// from the pinned arrays, before falling into the live stream. Registration
// and the replay snapshot are atomic per shard: an append that ran before
// registration is in the snapshot, one that ran after is enqueued live.
func (h *Hub) Watch(r keyspace.Range, from Version, cb WatchCallback) (Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", ErrBadWatch, r)
	}
	// Admission control is the ladder's last rung: under Reject pressure —
	// or while this range is quarantined after repeated sheds — the request
	// fails fast with a typed, retryable govern.Overloaded instead of
	// growing a ring the governor would immediately shed.
	if err := h.gov.Admit(r.String()); err != nil {
		h.log.Warn("watch admission refused", "range", r.String(), "err", err)
		return nil, err
	}
	h.regMu.Lock()
	if h.closed {
		h.regMu.Unlock()
		return nil, ErrClosed
	}
	w := newHubWatcher(h, h.nextID, r, from, cb, h.cfg.WatcherBuffer)
	h.nextID++
	h.watchers[w.id] = w

	var fx ingestFx
	var marks []item // frontier marks, reused across this watch's shards
	failReason := ""
	for _, s := range h.shards {
		clip := r.Intersect(s.rng)
		if clip.Empty() {
			continue
		}
		s.mu.Lock()
		if from < Version(s.evicted.Load()) {
			// The history this watcher needs is gone from this shard's
			// soft-state window: tell it immediately rather than delivering a
			// gapped stream.
			failReason = fmt.Sprintf("requested version %v predates retained history (evicted through %v)", from, Version(s.evicted.Load()))
			s.mu.Unlock()
			break
		}
		s.index.add(w.id, clip)
		s.watchers[w.id] = w
		// Pin the shard's retention chain for off-lock replay (arrival order
		// preserves per-key version order). The events are not copied here:
		// the dispatch goroutine streams them straight out of the pinned
		// segment arrays, and a replay larger than the watcher's buffer lags
		// it out with a resync there — the truncated stream a silent drop
		// would leave behind is precisely the gapped delivery the contract
		// forbids.
		w.replay = s.snapshotReplayLocked(w.replay, clip, from)
		// Tell the watcher the current frontier over its range so it can
		// establish knowledge without waiting for the next progress tick.
		// The marks ride the ring, which drains only after the replay stream
		// finishes, so no claim outruns the replayed events it covers.
		marks = marks[:0]
		for _, seg := range s.frontier.Segments() {
			fc := seg.Range.Intersect(clip)
			if fc.Empty() {
				continue
			}
			marks = append(marks, item{kind: kindProgress, prog: ProgressEvent{Range: fc, Version: seg.Version}})
		}
		_, ok := w.q.enqueueBatch(marks)
		s.mu.Unlock()
		if !ok {
			failReason = "retained-window replay exceeds watcher buffer"
			break
		}
	}
	if failReason != "" {
		h.lagOutLocked(w, nil, failReason, 0, &fx)
	}
	h.met.watchers.Set(int64(len(h.watchers)))
	h.regMu.Unlock()
	h.finishLagged(&fx)
	h.flushIngest(&fx)
	h.rec.Record(flightrec.KindWatcherAdd, flightrec.Event{
		Comp: "core.hub", ID: w.id, Version: uint64(from), Detail: r.String(),
	})
	h.log.Debug("watch registered", "id", w.id, "range", r.String(), "from", uint64(from))

	go w.run()
	return func() { h.cancel(w) }, nil
}

func (h *Hub) cancel(w *hubWatcher) {
	h.regMu.Lock()
	delete(h.watchers, w.id)
	h.met.watchers.Set(int64(len(h.watchers)))
	h.regMu.Unlock()
	h.rec.Record(flightrec.KindWatcherRemove, flightrec.Event{Comp: "core.hub", ID: w.id})
	h.log.Debug("watch cancelled", "id", w.id)
	for _, s := range h.shards {
		clip := w.rng.Intersect(s.rng)
		if clip.Empty() {
			continue
		}
		s.mu.Lock()
		s.index.remove(w.id, clip)
		delete(s.watchers, w.id)
		s.mu.Unlock()
	}
	w.q.stop()
}

// Wipe discards the hub's entire soft state — retained events and frontier —
// and resyncs every watcher. It models losing the watch system's storage:
// per §4.2.2 this costs latency, never data or consistency, because every
// consumer recovers from the authoritative store. Experiments use it for
// failure injection. Wipe takes every shard lock (in order), so the wipe is
// atomic with respect to concurrent ingest.
func (h *Hub) Wipe() {
	h.regMu.Lock()
	defer h.regMu.Unlock()
	if h.closed {
		return
	}
	for _, s := range h.shards {
		s.mu.Lock()
	}
	for _, s := range h.shards {
		for _, g := range s.segs {
			if g.sealed {
				h.met.sealedSegments.Add(-1)
				h.met.sealedBytes.Add(-g.bytes)
			}
			g.release(&h.segPool)
		}
		s.segs = nil
		s.count = 0
		h.segAcct.Release(s.chargedBytes)
		s.chargedBytes = 0
		s.evicted.Store(s.maxSeen.Load())
		s.frontier = VersionMap{}
	}
	min := h.minResyncVersion()
	for _, w := range h.watchers {
		// Re-evaluate: everyone resyncs afresh, including previously lagged
		// watchers.
		w.lagged.Store(true)
		w.q.reopen()
		h.resyncs.Add(1)
		h.met.resyncs.Inc()
		for _, s := range h.shards {
			s.index.remove(w.id, w.rng.Intersect(s.rng))
		}
		w.q.lagOut(ResyncEvent{Range: w.rng, MinVersion: min, Reason: "watch system state wiped"})
	}
	h.met.retained.Set(0)
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.Unlock()
	}
	h.rec.Record(flightrec.KindHubWipe, flightrec.Event{
		Comp: "core.hub", Version: uint64(min), N: int64(len(h.watchers)),
	})
	h.log.Warn("hub state wiped", "watchers", len(h.watchers), "min_version", uint64(min))
}

// Frontier returns a copy of the current progress frontier, merged across
// shards.
func (h *Hub) Frontier() *VersionMap {
	var segs []RangeVersion
	for _, s := range h.shards {
		s.mu.Lock()
		segs = append(segs, s.frontier.Segments()...)
		s.mu.Unlock()
	}
	// Shards are disjoint and ascending, so the concatenation is sorted;
	// normalize to merge equal-version segments across shard boundaries.
	return &VersionMap{segs: normalizeSegments(segs)}
}

// Stats returns a snapshot of the hub's counters.
func (h *Hub) Stats() HubStats {
	st := HubStats{Shards: len(h.shards)}
	for _, s := range h.shards {
		s.mu.Lock()
		st.Appends += s.appends
		st.Evictions += s.evictions
		st.Delivered += s.delivered
		st.RetainedEvents += s.count
		if v := Version(s.maxSeen.Load()); v > st.MaxSeen {
			st.MaxSeen = v
		}
		s.mu.Unlock()
	}
	st.ProgressEvents = h.progressCalls.Load()
	st.Resyncs = h.resyncs.Load()
	h.regMu.Lock()
	st.Watchers = len(h.watchers)
	h.regMu.Unlock()
	return st
}

// Close shuts the hub down; all watchers are stopped without further
// callbacks, and subsequent operations fail with ErrClosed.
func (h *Hub) Close() {
	h.regMu.Lock()
	if h.closed {
		h.regMu.Unlock()
		return
	}
	h.closed = true
	for _, s := range h.shards {
		s.mu.Lock()
		s.closed = true
		h.segAcct.Release(s.chargedBytes)
		s.chargedBytes = 0
		s.mu.Unlock()
	}
	ws := make([]*hubWatcher, 0, len(h.watchers))
	for _, w := range h.watchers {
		ws = append(ws, w)
	}
	h.watchers = map[int64]*hubWatcher{}
	h.met.watchers.Set(0)
	h.regMu.Unlock()
	for _, w := range ws {
		w.q.stop()
	}
}

// hubWatcher is the per-watch delivery state. Callbacks run on a dedicated
// goroutine so a slow consumer can never block the hub — it simply overflows
// its own bounded ring and is resynced. One watcher spans any number of
// shards; all of them feed the same ring, which serializes delivery.
type hubWatcher struct {
	id   int64
	hub  *Hub
	rng  keyspace.Range
	from Version
	cb   WatchCallback
	// batchCB is cb's EventBatchCallback view, resolved once at registration;
	// non-nil switches the dispatch loop to whole-batch event hand-off.
	batchCB EventBatchCallback
	q       *ring

	// replay is the pinned retained-history snapshot assembled at
	// registration: segment views this watcher's dispatch goroutine streams
	// (and releases) exactly once, before entering the live drain loop.
	replay []segView

	// lagged marks that the hub has stopped feeding this watcher; the only
	// remaining delivery is the resync already queued. It is a fast-path
	// filter — the ring's own state is what makes the cut-over atomic.
	lagged atomic.Bool

	// lastSeen is the highest version this watcher has consumed — via a
	// delivered change event or a progress mark — and the watcher's position
	// on the lag radar. Written only by the dispatch goroutine; read
	// atomically by WatcherLags.
	lastSeen atomic.Uint64
	// nDelivered counts change events dispatched to the callback.
	nDelivered atomic.Int64
}

func newHubWatcher(h *Hub, id int64, r keyspace.Range, from Version, cb WatchCallback, max int) *hubWatcher {
	w := &hubWatcher{id: id, hub: h, rng: r, from: from, cb: cb, q: newRing(max)}
	w.q.acct = h.ringAcct
	w.batchCB, _ = cb.(EventBatchCallback)
	w.lastSeen.Store(uint64(from))
	return w
}

// run is the watcher's dispatch loop: it drains whole batches from the ring
// and invokes the callbacks in enqueue order. When the callback implements
// EventBatchCallback, each contiguous run of change events inside a drain is
// handed over as one OnEventBatch call (the batch survives from ring to wire
// untouched); otherwise events dispatch one OnEvent at a time. The queue
// highwater gauge is published here, off the ingest path.
func (w *hubWatcher) run() {
	// Stream the pinned retained-history snapshot first: the ring holds only
	// frontier marks and live events enqueued after registration, so the
	// catch-up prefix lands before anything the live stream produced.
	w.runReplay()
	var buf []item
	var evs []ChangeEvent // batch hand-off scratch, reused across drains
	for {
		batch, high, ok := w.q.drain(buf)
		if !ok {
			return
		}
		buf = batch
		if high > 0 {
			w.hub.met.queueHighwater.Max(int64(high))
		}
		i := 0
		for i < len(batch) {
			if w.q.isCancelled() {
				return
			}
			if w.batchCB != nil && batch[i].kind == kindEvent {
				// Collect the contiguous event run starting at i.
				evs = evs[:0]
				j := i
				for j < len(batch) && batch[j].kind == kindEvent {
					evs = append(evs, batch[j].ev)
					j++
				}
				maxSeen := w.lastSeen.Load()
				for k := range evs {
					ev := &evs[k]
					if ev.Trace != 0 {
						w.hub.tracer.Record(ev.Trace, trace.StageDeliver)
					}
					if v := uint64(ev.Version); v > maxSeen {
						maxSeen = v
					}
				}
				if maxSeen > w.lastSeen.Load() {
					w.lastSeen.Store(maxSeen)
				}
				w.nDelivered.Add(int64(len(evs)))
				w.batchCB.OnEventBatch(evs)
				for k := range evs {
					evs[k] = ChangeEvent{} // release payload refs until the next run
				}
				i = j
				continue
			}
			switch it := &batch[i]; it.kind {
			case kindEvent:
				if it.ev.Trace != 0 {
					w.hub.tracer.Record(it.ev.Trace, trace.StageDeliver)
				}
				if v := uint64(it.ev.Version); v > w.lastSeen.Load() {
					w.lastSeen.Store(v)
				}
				w.nDelivered.Add(1)
				w.cb.OnEvent(it.ev)
			case kindProgress:
				if v := uint64(it.prog.Version); v > w.lastSeen.Load() {
					w.lastSeen.Store(v)
				}
				w.cb.OnProgress(it.prog)
			case kindResync:
				w.cb.OnResync(it.resync)
			}
			i++
		}
		for i := range batch {
			batch[i] = item{} // release payload refs until the next drain
		}
	}
}
