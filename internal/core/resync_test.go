package core

import (
	"sync"
	"testing"

	"unbundle/internal/keyspace"
)

// fakeStore is a minimal versioned store for resync tests: it applies puts
// under a lock, serves snapshots at its current version, and feeds a hub.
type fakeStore struct {
	mu      sync.Mutex
	data    map[keyspace.Key][]byte
	vers    map[keyspace.Key]Version
	version Version
	hub     *Hub
	// snapshotHook runs while holding no locks, before each snapshot read;
	// tests use it to interleave writes with recovery.
	snapshotHook func()
}

func newFakeStore(h *Hub) *fakeStore {
	return &fakeStore{data: map[keyspace.Key][]byte{}, vers: map[keyspace.Key]Version{}, hub: h}
}

func (s *fakeStore) Put(k keyspace.Key, v []byte) Version {
	s.mu.Lock()
	s.version++
	ver := s.version
	s.data[k] = append([]byte(nil), v...)
	s.vers[k] = ver
	s.mu.Unlock()
	if s.hub != nil {
		s.hub.Append(ChangeEvent{Key: k, Mut: Mutation{Op: OpPut, Value: v}, Version: ver})
		s.hub.Progress(ProgressEvent{Range: keyspace.Full(), Version: ver})
	}
	return ver
}

func (s *fakeStore) SnapshotRange(r keyspace.Range) ([]Entry, Version, error) {
	if s.snapshotHook != nil {
		s.snapshotHook()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for k, v := range s.data {
		if r.Contains(k) {
			out = append(out, Entry{Key: k, Value: append([]byte(nil), v...), Version: s.vers[k]})
		}
	}
	return out, s.version, nil
}

// tableConsumer materializes the watched range into a map — the simplest
// possible SyncedConsumer.
type tableConsumer struct {
	mu        sync.Mutex
	data      map[keyspace.Key]string
	frontier  VersionMap
	snapshots int
}

func newTableConsumer() *tableConsumer {
	return &tableConsumer{data: map[keyspace.Key]string{}}
}

func (tc *tableConsumer) ResetSnapshot(r keyspace.Range, entries []Entry, at Version) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.snapshots++
	for k := range tc.data {
		if r.Contains(k) {
			delete(tc.data, k)
		}
	}
	for _, e := range entries {
		tc.data[e.Key] = string(e.Value)
	}
}

func (tc *tableConsumer) ApplyChange(ev ChangeEvent) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	switch ev.Mut.Op {
	case OpPut:
		tc.data[ev.Key] = string(ev.Mut.Value)
	case OpDelete:
		delete(tc.data, ev.Key)
	}
}

func (tc *tableConsumer) AdvanceFrontier(p ProgressEvent) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.frontier.Raise(p.Range, p.Version)
}

func (tc *tableConsumer) get(k keyspace.Key) (string, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	v, ok := tc.data[k]
	return v, ok
}

func (tc *tableConsumer) frontierMin(r keyspace.Range) Version {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.frontier.MinOver(r)
}

func TestResyncWatcherInitialSnapshotThenLive(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	st := newFakeStore(h)
	st.Put("a", []byte("1"))
	st.Put("b", []byte("2"))

	tc := newTableConsumer()
	rw := NewResyncWatcher(st, h, keyspace.Full(), tc)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	if v, _ := tc.get("a"); v != "1" {
		t.Fatalf("snapshot missing: a=%q", v)
	}
	st.Put("a", []byte("3"))
	waitUntil(t, "live update", func() bool { v, _ := tc.get("a"); return v == "3" })
	waitUntil(t, "frontier", func() bool { return tc.frontierMin(keyspace.Full()) >= 3 })
	if rw.Resyncs() != 0 {
		t.Fatalf("unexpected resyncs: %d", rw.Resyncs())
	}
}

func TestResyncWatcherRecoversFromWipe(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	st := newFakeStore(h)
	st.Put("a", []byte("1"))

	tc := newTableConsumer()
	rw := NewResyncWatcher(st, h, keyspace.Full(), tc)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	// Lose the hub's entire soft state, then write more. The update after
	// the wipe reaches the consumer only via the recovery snapshot.
	h.Wipe()
	st.Put("a", []byte("2"))
	st.Put("c", []byte("9"))

	waitUntil(t, "recovery", func() bool {
		a, _ := tc.get("a")
		c, _ := tc.get("c")
		return a == "2" && c == "9"
	})
	if rw.Resyncs() < 1 {
		t.Fatal("wipe did not trigger resync")
	}
}

func TestResyncWatcherRecoversFromEvictedHistory(t *testing.T) {
	h := NewHub(HubConfig{Retention: 4})
	defer h.Close()
	st := newFakeStore(h)
	// History far larger than retention before the watcher arrives at v0.
	for i := 0; i < 50; i++ {
		st.Put(keyspace.NumericKey(i%7), []byte{byte(i)})
	}
	tc := newTableConsumer()
	rw := NewResyncWatcher(st, h, keyspace.Full(), tc)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	// Initial snapshot is at the current version, so no resync needed; the
	// interesting case: watcher established, then a burst evicts its spot.
	for i := 0; i < 50; i++ {
		st.Put(keyspace.NumericKey(i%7), []byte{byte(100 + i)})
	}
	waitUntil(t, "converged", func() bool {
		for k := 0; k < 7; k++ {
			lastWrite := 49 - ((49 - k) % 7) // largest i < 50 with i%7 == k
			want := byte(100 + lastWrite)
			got, ok := tc.get(keyspace.NumericKey(k))
			if !ok || got[0] != want {
				return false
			}
		}
		return true
	})
}

func TestResyncWatcherStopsCleanly(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	st := newFakeStore(h)
	tc := newTableConsumer()
	rw := NewResyncWatcher(st, h, keyspace.Full(), tc)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	rw.Stop()
	rw.Stop() // idempotent
	st.Put("x", []byte("1"))
	// The fence: hub has no watchers left.
	waitUntil(t, "deregistered", func() bool { return h.Stats().Watchers == 0 })
	if _, ok := tc.get("x"); ok {
		t.Fatal("consumer updated after Stop")
	}
}

func TestResyncWatcherRangeScoped(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	st := newFakeStore(h)
	st.Put(keyspace.NumericKey(1), []byte("in"))
	st.Put(keyspace.NumericKey(900), []byte("out"))

	tc := newTableConsumer()
	rw := NewResyncWatcher(st, h, keyspace.NumericRange(0, 100), tc)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	if _, ok := tc.get(keyspace.NumericKey(900)); ok {
		t.Fatal("snapshot leaked out-of-range key")
	}
	st.Put(keyspace.NumericKey(2), []byte("in2"))
	st.Put(keyspace.NumericKey(901), []byte("out2"))
	waitUntil(t, "in-range update", func() bool { v, _ := tc.get(keyspace.NumericKey(2)); return v == "in2" })
	if _, ok := tc.get(keyspace.NumericKey(901)); ok {
		t.Fatal("watch leaked out-of-range key")
	}
}
