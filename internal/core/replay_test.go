package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// TestHubReplayExactlyWatcherBufferSucceeds pins the replay-overflow
// boundary: a retained-window replay of exactly the watcher's buffer size
// must deliver cleanly, and one event more must lag the watcher out with a
// resync. (The pre-segment implementation had this boundary buried in a ring
// enqueueBatch result at watch time; it now lives in the off-lock stream's
// budget check, and either way it must not be off by one.)
func TestHubReplayExactlyWatcherBufferSucceeds(t *testing.T) {
	const buffer = 16
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{Retention: 64, WatcherBuffer: buffer, Shards: 1, Metrics: reg})
	defer h.Close()
	for i := 1; i <= buffer; i++ {
		h.Append(put("k", Version(i)))
	}

	var c collector
	cancel, err := h.Watch(keyspace.Full(), 0, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitUntil(t, "exact-buffer replay", func() bool {
		evs, _, _ := c.snapshot()
		return len(evs) == buffer
	})
	evs, _, rs := c.snapshot()
	if len(rs) != 0 {
		t.Fatalf("replay of exactly WatcherBuffer events resynced: %+v", rs[0])
	}
	for i, ev := range evs {
		if ev.Version != Version(i+1) {
			t.Fatalf("event %d has version %v, want %d", i, ev.Version, i+1)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core_hub_replay_overflow_total"]; got != 0 {
		t.Fatalf("core_hub_replay_overflow_total = %d, want 0", got)
	}
	if got := snap.Counters["core_hub_replay_events_total"]; got != buffer {
		t.Fatalf("core_hub_replay_events_total = %d, want %d", got, buffer)
	}

	// One event past the buffer: the next full-history watch overflows, and
	// what it saw before the resync is a clean prefix.
	h.Append(put("k", Version(buffer+1)))
	var c2 collector
	cancel2, err := h.Watch(keyspace.Full(), 0, &c2)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	waitUntil(t, "buffer+1 replay resync", func() bool {
		_, _, rs := c2.snapshot()
		return len(rs) == 1
	})
	evs2, _, rs2 := c2.snapshot()
	if len(evs2) > buffer {
		t.Fatalf("overflowing replay delivered %d events, want <= %d", len(evs2), buffer)
	}
	for i, ev := range evs2 {
		if ev.Version != Version(i+1) {
			t.Fatalf("overflow prefix event %d has version %v, want %d", i, ev.Version, i+1)
		}
	}
	if rs2[0].MinVersion != Version(buffer+1) {
		t.Fatalf("resync MinVersion = %v, want %d", rs2[0].MinVersion, buffer+1)
	}
	if got := reg.Snapshot().Counters["core_hub_replay_overflow_total"]; got != 1 {
		t.Fatalf("core_hub_replay_overflow_total = %d, want 1", got)
	}
}

// TestHubResumeAtSegmentSealBoundary covers resume cuts landing exactly on
// segment seal boundaries: the last version of a sealed segment (the whole
// segment is skipped by its maxVer bound), the first version inside one (a
// binary-search cut at position 1), and the window's newest version (nothing
// replays; the watcher rides the live stream).
func TestHubResumeAtSegmentSealBoundary(t *testing.T) {
	const retention = 512
	h := NewHub(HubConfig{Retention: retention, WatcherBuffer: 1024, Shards: 1, Metrics: metrics.NewRegistry()})
	defer h.Close()
	segSize := h.segPool.size
	if segSize != 64 {
		t.Fatalf("segPool.size = %d, want 64 (test assumes Retention/8)", segSize)
	}
	total := 4 * segSize // fills four segments exactly; three are sealed
	for i := 1; i <= total; i++ {
		h.Append(put("k", Version(i)))
	}
	s := h.shards[0]
	s.mu.Lock()
	if len(s.segs) != 4 {
		s.mu.Unlock()
		t.Fatalf("segment chain length = %d, want 4", len(s.segs))
	}
	first := s.segs[0]
	if !first.sealed || !first.sorted || first.minVer != 1 || first.maxVer != Version(segSize) {
		s.mu.Unlock()
		t.Fatalf("segment 0 index = sealed:%v sorted:%v [%v,%v], want sealed sorted [1,%d]",
			first.sealed, first.sorted, first.minVer, first.maxVer, segSize)
	}
	s.mu.Unlock()

	check := func(from Version) {
		t.Helper()
		var c collector
		cancel, err := h.Watch(keyspace.Full(), from, &c)
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
		want := total - int(from)
		waitUntil(t, fmt.Sprintf("replay from %d", from), func() bool {
			evs, _, _ := c.snapshot()
			return len(evs) == want
		})
		evs, _, rs := c.snapshot()
		if len(rs) != 0 {
			t.Fatalf("resume from %d resynced: %+v", from, rs[0])
		}
		for i, ev := range evs {
			if ev.Version != from+Version(i+1) {
				t.Fatalf("resume from %d: event %d has version %v, want %v", from, i, ev.Version, from+Version(i+1))
			}
		}
	}
	check(Version(2 * segSize)) // exactly the last version of sealed segment 2
	check(Version(segSize + 1)) // exactly the first version inside segment 2
	check(1)                    // one past the window's oldest event

	// Cut at the newest version: nothing replays, the live stream follows.
	var c collector
	cancel, err := h.Watch(keyspace.Full(), Version(total), &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	h.Append(put("k", Version(total+1)))
	waitUntil(t, "live event after empty replay", func() bool {
		evs, _, _ := c.snapshot()
		return len(evs) == 1
	})
	evs, _, rs := c.snapshot()
	if len(rs) != 0 || evs[0].Version != Version(total+1) {
		t.Fatalf("resume at window head: events %+v resyncs %+v", evs, rs)
	}
}

// TestHubReplaySegmentKeySummarySkip: a sealed segment whose key summary
// cannot intersect the watcher's range is skipped whole, and the filter is
// conservative — everything the watcher should see still arrives.
func TestHubReplaySegmentKeySummarySkip(t *testing.T) {
	h := NewHub(HubConfig{Retention: 512, WatcherBuffer: 1024, Shards: 1, Metrics: metrics.NewRegistry()})
	defer h.Close()
	segSize := h.segPool.size
	v := Version(0)
	fill := func(prefix string) {
		for i := 0; i < segSize; i++ {
			v++
			h.Append(put(fmt.Sprintf("%s%03d", prefix, i), v))
		}
	}
	fill("a")               // segment 1: keys a000..a063
	fill("b")               // segment 2: keys b000..b063
	h.Append(put("c", v+1)) // seals segment 2

	s := h.shards[0]
	s.mu.Lock()
	aSeg, bSeg := s.segs[0], s.segs[1]
	bRange := keyspace.Range{Low: "b", High: "c"}
	if aSeg.overlaps(bRange) {
		s.mu.Unlock()
		t.Fatalf("segment [%q,%q] claims overlap with [b,c)", aSeg.minKey, aSeg.maxKey)
	}
	if !bSeg.overlaps(bRange) {
		s.mu.Unlock()
		t.Fatalf("segment [%q,%q] claims no overlap with [b,c)", bSeg.minKey, bSeg.maxKey)
	}
	s.mu.Unlock()

	var c collector
	cancel, err := h.Watch(bRange, 0, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitUntil(t, "b-range replay", func() bool {
		evs, _, _ := c.snapshot()
		return len(evs) == segSize
	})
	evs, _, rs := c.snapshot()
	if len(rs) != 0 {
		t.Fatalf("unexpected resync: %+v", rs[0])
	}
	for i, ev := range evs {
		if ev.Version != Version(segSize+i+1) {
			t.Fatalf("event %d has version %v, want %d", i, ev.Version, segSize+i+1)
		}
	}
}

// TestHubReplayBatchDispatch: the catch-up stream hands contiguous runs to a
// batch-capable callback as whole OnEventBatch calls, never via OnEvent —
// the zero-copy hand-off the remote transport rides.
func TestHubReplayBatchDispatch(t *testing.T) {
	h := NewHub(HubConfig{Retention: 512, WatcherBuffer: 1024, Shards: 1, Metrics: metrics.NewRegistry()})
	defer h.Close()
	const n = 100
	for i := 1; i <= n; i++ {
		h.Append(put("k", Version(i)))
	}
	sink := &batchSink{}
	cancel, err := h.Watch(keyspace.Full(), 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitUntil(t, "batched replay", func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return len(sink.events) == n
	})
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.singles != 0 {
		t.Fatalf("replay dispatched %d events via OnEvent, want 0 (all batched)", sink.singles)
	}
	if sink.batches == 0 {
		t.Fatal("replay dispatched no batches")
	}
	for i, ev := range sink.events {
		if ev.Version != Version(i+1) {
			t.Fatalf("event %d has version %v, want %d", i, ev.Version, i+1)
		}
	}
}

// TestHubReplayTraceStage: replayed events complete their traces through the
// replay stage, with no live enqueue stamp — the alternation Complete()
// accepts.
func TestHubReplayTraceStage(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{SampleEvery: 1, Metrics: reg})
	h := NewHub(HubConfig{Tracer: tracer, Metrics: reg, Shards: 1})
	defer h.Close()
	const n = 20
	for i := 1; i <= n; i++ {
		ev := put("k", Version(i))
		ev.Trace = tracer.Begin(ev.Key, uint64(i))
		h.Append(ev)
	}
	var c collector
	cancel, err := h.Watch(keyspace.Full(), 0, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitUntil(t, "traced replay", func() bool { return tracer.CompletedCount() >= n })
	for _, tr := range tracer.Completed() {
		if !tr.Complete() {
			t.Fatalf("replayed trace incomplete: %+v", tr)
		}
		if tr.Stages[trace.StageReplay] == 0 {
			t.Fatalf("replayed trace missing replay stamp: %+v", tr)
		}
		if tr.Stages[trace.StageEnqueue] != 0 {
			t.Fatalf("replayed trace carries a live enqueue stamp: %+v", tr)
		}
		if tr.Stages[trace.StageReplay] < tr.Stages[trace.StageAppend] {
			t.Fatalf("replay stamped before append: %+v", tr)
		}
	}
}

// stormSink counts deliveries with the batch fast path, the shape a remote
// connection's sink has.
type stormSink struct{ n *atomic.Int64 }

func (s stormSink) OnEvent(ChangeEvent) { s.n.Add(1) }
func (s stormSink) OnEventBatch(evs []ChangeEvent) {
	s.n.Add(int64(len(evs)))
}
func (s stormSink) OnProgress(ProgressEvent) {}
func (s stormSink) OnResync(r ResyncEvent) {
	panic("resume storm: unexpected resync: " + r.Reason)
}

// benchHubResumeStorm measures a reconnect storm: `watchers` full-range
// watchers resume at once, each with the same 1024-event backlog cut, the
// shape a network blip leaves behind (PR 5's auto-reconnect turns one sever
// into exactly this). Registration is O(segments) under each shard lock and
// the streams run on the watchers' own goroutines, so per-watcher cost
// should stay flat as the storm grows — that is what ns/watcher tracks.
func benchHubResumeStorm(b *testing.B, watchers int) {
	const window = 1 << 13
	const backlog = 1024
	h := NewHub(HubConfig{Retention: window, WatcherBuffer: window, Shards: 4, Metrics: metrics.NewRegistry()})
	defer h.Close()
	val := []byte("0123456789abcdef")
	for i := 1; i <= window; i++ {
		h.Append(ChangeEvent{
			Key:     keyspace.NumericKey(i % 4000),
			Mut:     Mutation{Op: OpPut, Value: val},
			Version: Version(i),
		})
	}
	from := Version(window - backlog)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var seen atomic.Int64
		cancels := make([]Cancel, watchers)
		var wg sync.WaitGroup
		for wi := range cancels {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				cancel, err := h.Watch(keyspace.Full(), from, stormSink{n: &seen})
				if err != nil {
					panic(err)
				}
				cancels[wi] = cancel
			}(wi)
		}
		wg.Wait()
		target := int64(watchers) * backlog
		for seen.Load() < target {
			time.Sleep(20 * time.Microsecond)
		}
		for _, cancel := range cancels {
			cancel()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*watchers), "ns/watcher")
	b.ReportMetric(backlog, "events/watcher")
}

func BenchmarkHubResumeStorm64(b *testing.B)  { benchHubResumeStorm(b, 64) }
func BenchmarkHubResumeStorm256(b *testing.B) { benchHubResumeStorm(b, 256) }
func BenchmarkHubResumeStorm512(b *testing.B) { benchHubResumeStorm(b, 512) }
