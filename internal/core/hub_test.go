package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// collector records watch callbacks for assertions.
type collector struct {
	mu       sync.Mutex
	events   []ChangeEvent
	progress []ProgressEvent
	resyncs  []ResyncEvent
}

func (c *collector) OnEvent(ev ChangeEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}
func (c *collector) OnProgress(p ProgressEvent) {
	c.mu.Lock()
	c.progress = append(c.progress, p)
	c.mu.Unlock()
}
func (c *collector) OnResync(r ResyncEvent) {
	c.mu.Lock()
	c.resyncs = append(c.resyncs, r)
	c.mu.Unlock()
}

func (c *collector) snapshot() ([]ChangeEvent, []ProgressEvent, []ResyncEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ChangeEvent(nil), c.events...),
		append([]ProgressEvent(nil), c.progress...),
		append([]ResyncEvent(nil), c.resyncs...)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func put(k string, v Version) ChangeEvent {
	return ChangeEvent{Key: keyspace.Key(k), Mut: Mutation{Op: OpPut, Value: []byte(fmt.Sprintf("%s@%d", k, v))}, Version: v}
}

func TestHubDeliversLiveEvents(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	var c collector
	cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for i := 1; i <= 5; i++ {
		if err := h.Append(put("k", Version(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "5 events", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 5 })
	evs, _, _ := c.snapshot()
	for i, ev := range evs {
		if ev.Version != Version(i+1) || ev.Key != "k" {
			t.Fatalf("event %d = %v", i, ev)
		}
	}
}

func TestHubReplayAndFilter(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	// Pre-populate before any watcher exists.
	h.Append(put("a", 1))
	h.Append(put("m", 2))
	h.Append(put("a", 3))
	h.Append(put("z", 4))

	var c collector
	cancel, err := h.Watch(keyspace.Range{Low: "a", High: "n"}, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	waitUntil(t, "replayed events", func() bool {
		evs, _, _ := c.snapshot()
		return len(evs) == 2
	})
	evs, _, rs := c.snapshot()
	// from=1 excludes a@1; range excludes z@4.
	if evs[0].Key != "m" || evs[0].Version != 2 || evs[1].Key != "a" || evs[1].Version != 3 {
		t.Fatalf("replay = %v", evs)
	}
	if len(rs) != 0 {
		t.Fatalf("unexpected resync %v", rs)
	}
}

func TestHubPerKeyOrder(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	var c collector
	cancel, _ := h.Watch(keyspace.Full(), NoVersion, &c)
	defer cancel()

	const n = 200
	for i := 1; i <= n; i++ {
		h.Append(put(fmt.Sprintf("k%d", i%5), Version(i)))
	}
	waitUntil(t, "all events", func() bool { evs, _, _ := c.snapshot(); return len(evs) == n })
	evs, _, _ := c.snapshot()
	last := map[keyspace.Key]Version{}
	for _, ev := range evs {
		if ev.Version <= last[ev.Key] {
			t.Fatalf("per-key order violated at %v after %v", ev, last[ev.Key])
		}
		last[ev.Key] = ev.Version
	}
}

func TestHubWatchFromEvictedHistoryResyncs(t *testing.T) {
	h := NewHub(HubConfig{Retention: 10})
	defer h.Close()
	for i := 1; i <= 50; i++ {
		h.Append(put("k", Version(i)))
	}
	var c collector
	cancel, err := h.Watch(keyspace.Full(), 5, &c) // v5 long evicted
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	waitUntil(t, "resync", func() bool { _, _, rs := c.snapshot(); return len(rs) == 1 })
	evs, _, rs := c.snapshot()
	if len(evs) != 0 {
		t.Fatalf("gapped stream delivered events: %v", evs)
	}
	if rs[0].MinVersion < 40 {
		t.Fatalf("resync MinVersion = %v, want >= evicted horizon", rs[0].MinVersion)
	}
	// A watcher at the horizon is fine.
	var c2 collector
	cancel2, _ := h.Watch(keyspace.Full(), rs[0].MinVersion, &c2)
	defer cancel2()
	h.Append(put("k", 60))
	waitUntil(t, "fresh event", func() bool { evs, _, _ := c2.snapshot(); return len(evs) >= 1 })
	if _, _, rs2 := c2.snapshot(); len(rs2) != 0 {
		t.Fatalf("healthy watcher resynced: %v", rs2)
	}
}

func TestHubSlowWatcherLagsOut(t *testing.T) {
	h := NewHub(HubConfig{WatcherBuffer: 8})
	defer h.Close()

	block := make(chan struct{})
	var mu sync.Mutex
	var resynced []ResyncEvent
	var delivered int
	cb := Funcs{
		Event: func(ChangeEvent) {
			<-block // wedge the consumer
			mu.Lock()
			delivered++
			mu.Unlock()
		},
		Resync: func(r ResyncEvent) {
			mu.Lock()
			resynced = append(resynced, r)
			mu.Unlock()
		},
	}
	cancel, _ := h.Watch(keyspace.Full(), NoVersion, cb)
	defer cancel()

	for i := 1; i <= 100; i++ {
		h.Append(put("k", Version(i)))
	}
	close(block)
	waitUntil(t, "lag-out resync", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(resynced) == 1
	})
	mu.Lock()
	r := resynced[0]
	mu.Unlock()
	// The lag-out fires at the moment of overflow, so MinVersion is the
	// highest version the hub had seen then — at least the buffer size, and
	// never beyond the last append.
	if r.MinVersion < 8 || r.MinVersion > 100 {
		t.Fatalf("resync MinVersion = %v, want within [8,100]", r.MinVersion)
	}
	// After lag-out the hub stops feeding this watcher.
	before := h.Stats().Delivered
	h.Append(put("k", 101))
	if after := h.Stats().Delivered; after != before {
		t.Fatalf("lagged watcher still receiving (delivered %d -> %d)", before, after)
	}
}

func TestHubProgressClippedToRange(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	var c collector
	cancel, _ := h.Watch(keyspace.Range{Low: "f", High: "p"}, NoVersion, &c)
	defer cancel()

	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 9})
	waitUntil(t, "progress", func() bool { _, ps, _ := c.snapshot(); return len(ps) == 1 })
	_, ps, _ := c.snapshot()
	if ps[0].Range != (keyspace.Range{Low: "f", High: "p"}) || ps[0].Version != 9 {
		t.Fatalf("progress = %v", ps[0])
	}
	// Disjoint progress is not forwarded.
	h.Progress(ProgressEvent{Range: keyspace.Range{Low: "x", High: "z"}, Version: 12})
	h.Append(put("g", 13)) // fence: proves the disjoint progress would have arrived by now
	waitUntil(t, "fence event", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 1 })
	if _, ps, _ := c.snapshot(); len(ps) != 1 {
		t.Fatalf("disjoint progress forwarded: %v", ps)
	}
}

func TestHubInitialFrontierDelivered(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 7})

	var c collector
	cancel, _ := h.Watch(keyspace.Range{Low: "a", High: "m"}, 7, &c)
	defer cancel()
	waitUntil(t, "initial frontier", func() bool { _, ps, _ := c.snapshot(); return len(ps) >= 1 })
	_, ps, _ := c.snapshot()
	if ps[0].Version != 7 {
		t.Fatalf("initial frontier = %v", ps[0])
	}
}

func TestHubFrontierQuery(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	h.Progress(ProgressEvent{Range: keyspace.Range{Low: "a", High: "m"}, Version: 5})
	h.Progress(ProgressEvent{Range: keyspace.Range{Low: "m", High: keyspace.Inf}, Version: 3})
	f := h.Frontier()
	if got := f.MinOver(keyspace.Range{Low: "a", High: keyspace.Inf}); got != 3 {
		t.Fatalf("frontier MinOver = %v, want 3", got)
	}
	// The uncovered slice ["", "a") means no full-keyspace completeness yet.
	if got := f.MinOver(keyspace.Full()); got != NoVersion {
		t.Fatalf("frontier over gap = %v, want NoVersion", got)
	}
}

func TestHubWipeResyncsEverything(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	var c collector
	cancel, _ := h.Watch(keyspace.Full(), NoVersion, &c)
	defer cancel()
	h.Append(put("k", 1))
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 1})
	waitUntil(t, "event before wipe", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 1 })

	h.Wipe()
	waitUntil(t, "wipe resync", func() bool { _, _, rs := c.snapshot(); return len(rs) == 1 })
	st := h.Stats()
	if st.RetainedEvents != 0 {
		t.Fatalf("soft state survived wipe: %+v", st)
	}
	if h.Frontier().MaxOver(keyspace.Full()) != NoVersion {
		t.Fatal("frontier survived wipe")
	}
	// New watchers below the wipe horizon also resync.
	var c2 collector
	cancel2, _ := h.Watch(keyspace.Full(), NoVersion, &c2)
	defer cancel2()
	waitUntil(t, "post-wipe watcher resync", func() bool { _, _, rs := c2.snapshot(); return len(rs) == 1 })
}

func TestHubCancelStopsDelivery(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	var c collector
	cancel, _ := h.Watch(keyspace.Full(), NoVersion, &c)
	h.Append(put("k", 1))
	waitUntil(t, "event", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 1 })
	cancel()
	cancel() // idempotent
	h.Append(put("k", 2))
	time.Sleep(10 * time.Millisecond)
	if evs, _, _ := c.snapshot(); len(evs) != 1 {
		t.Fatalf("event delivered after cancel: %v", evs)
	}
	if h.Stats().Watchers != 0 {
		t.Fatal("watcher still registered after cancel")
	}
}

func TestHubValidation(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	if _, err := h.Watch(keyspace.Full(), 0, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := h.Watch(keyspace.Range{}, 0, &collector{}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub(HubConfig{})
	var c collector
	_, err := h.Watch(keyspace.Full(), 0, &c)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	h.Close() // idempotent
	if err := h.Append(put("k", 1)); err != ErrClosed {
		t.Fatalf("Append after close = %v", err)
	}
	if err := h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 1}); err != ErrClosed {
		t.Fatalf("Progress after close = %v", err)
	}
	if _, err := h.Watch(keyspace.Full(), 0, &c); err != ErrClosed {
		t.Fatalf("Watch after close = %v", err)
	}
}

func TestHubStats(t *testing.T) {
	h := NewHub(HubConfig{Retention: 4})
	defer h.Close()
	for i := 1; i <= 10; i++ {
		h.Append(put("k", Version(i)))
	}
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 10})
	st := h.Stats()
	if st.Appends != 10 || st.ProgressEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 6 || st.RetainedEvents != 4 {
		t.Fatalf("eviction accounting wrong: %+v", st)
	}
	if st.MaxSeen != 10 {
		t.Fatalf("MaxSeen = %v", st.MaxSeen)
	}
}

func TestHubManyWatchersFanout(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	const nw = 16
	cols := make([]*collector, nw)
	shards := keyspace.EvenSplit(1600, nw)
	for i := range cols {
		cols[i] = &collector{}
		cancel, err := h.Watch(shards[i], NoVersion, cols[i])
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
	}
	const n = 1600
	for i := 0; i < n; i++ {
		h.Append(ChangeEvent{Key: keyspace.NumericKey(i), Mut: Mutation{Op: OpPut}, Version: Version(i + 1)})
	}
	waitUntil(t, "all shards delivered", func() bool {
		total := 0
		for _, c := range cols {
			evs, _, _ := c.snapshot()
			total += len(evs)
		}
		return total == n
	})
	// Range watches mean each watcher received only its shard (§4.4
	// efficiency: consumers receive only the events they need).
	for i, c := range cols {
		evs, _, _ := c.snapshot()
		for _, ev := range evs {
			if !shards[i].Contains(ev.Key) {
				t.Fatalf("watcher %d got out-of-range key %q", i, string(ev.Key))
			}
		}
	}
}

// TestHubConcurrentStress hammers the hub with concurrent appenders,
// progress writers, and churning watchers; run with -race this verifies the
// synchronization, and the accounting must balance afterwards.
func TestHubConcurrentStress(t *testing.T) {
	h := NewHub(HubConfig{Retention: 1 << 14, WatcherBuffer: 1 << 14})
	defer h.Close()

	var produced atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Appenders: per-key version monotonicity maintained per goroutine key
	// space slice.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				v := Version(g*1000 + i)
				h.Append(ChangeEvent{
					Key:     keyspace.NumericKey(g*100 + i%10),
					Mut:     Mutation{Op: OpPut},
					Version: v,
				})
				produced.Add(1)
			}
		}(g)
	}
	// Progress writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 200; i++ {
			h.Progress(ProgressEvent{Range: keyspace.Full(), Version: Version(i)})
		}
	}()
	// Watcher churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var c collector
			cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
			if err != nil {
				return
			}
			cancel()
		}
	}()
	close(stop)
	wg.Wait()
	st := h.Stats()
	if st.Appends != produced.Load() {
		t.Fatalf("append accounting: %d vs %d", st.Appends, produced.Load())
	}
	if st.Watchers != 0 {
		t.Fatalf("leaked watchers: %d", st.Watchers)
	}
}

// BenchmarkHubRetentionAblation quantifies the soft-state design choice
// DESIGN.md calls out: the retention window is the hub's entire memory
// footprint and its only per-append maintenance cost. The bench measures
// append cost across window sizes (the functional effect of small windows —
// resyncs for late/lagging watchers — is covered by the E2/E3 experiments
// and the hub eviction tests).
func BenchmarkHubRetentionAblation(b *testing.B) {
	for _, retention := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("retention=%d", retention), func(b *testing.B) {
			h := NewHub(HubConfig{Retention: retention, WatcherBuffer: 1 << 20})
			defer h.Close()
			cancel, err := h.Watch(keyspace.Full(), NoVersion, Funcs{})
			if err != nil {
				b.Fatal(err)
			}
			defer cancel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Append(put("k", Version(i+1)))
			}
			b.ReportMetric(float64(h.Stats().RetainedEvents), "retained-events")
		})
	}
}

// BenchmarkHubWatcherCount measures fanout cost as watcher count grows —
// the scale dimension §4.4 says watch systems should be optimized per
// deployment ("different watch systems optimized for different scale
// points").
func BenchmarkHubWatcherCount(b *testing.B) {
	for _, watchers := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			h := NewHub(HubConfig{Retention: 1 << 12, WatcherBuffer: 1 << 20})
			defer h.Close()
			shards := keyspace.EvenSplit(watchers*100, watchers)
			for _, shard := range shards {
				cancel, err := h.Watch(shard, NoVersion, Funcs{})
				if err != nil {
					b.Fatal(err)
				}
				defer cancel()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Append(ChangeEvent{
					Key:     keyspace.NumericKey(i % (watchers * 100)),
					Mut:     Mutation{Op: OpPut},
					Version: Version(i + 1),
				})
			}
		})
	}
}

// Regression: Hub.Watch used to ignore enqueue overflow during the
// retained-window replay, so a watcher whose replay exceeded WatcherBuffer
// silently lost change events — the "third outcome" the contract forbids.
// With Retention > WatcherBuffer the replay must end in a resync instead.
func TestHubWatchReplayOverflowResyncs(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{Retention: 64, WatcherBuffer: 8, Metrics: reg})
	defer h.Close()

	for i := 1; i <= 50; i++ {
		h.Append(put(fmt.Sprintf("k%02d", i), Version(i)))
	}

	var c collector
	cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	waitUntil(t, "replay-overflow resync", func() bool {
		_, _, rs := c.snapshot()
		return len(rs) == 1
	})
	evs, _, rs := c.snapshot()
	if rs[0].MinVersion != 50 {
		t.Fatalf("resync MinVersion = %v, want 50 (maxSeen)", rs[0].MinVersion)
	}
	// No gapped stream: events delivered before the resync must be a prefix
	// of the replay, never a truncated-then-resumed stream.
	for i, ev := range evs {
		if ev.Version != Version(i+1) {
			t.Fatalf("gapped replay: event %d has version %v", i, ev.Version)
		}
	}
	if got := reg.Snapshot().Counters["core_hub_replay_overflow_total"]; got != 1 {
		t.Fatalf("replay overflow counter = %d, want 1", got)
	}

	// A replay that fits the buffer (watching from version 45: 5 events)
	// still works and ends without a resync.
	var c2 collector
	cancel2, err := h.Watch(keyspace.Full(), 45, &c2)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	waitUntil(t, "short replay", func() bool {
		evs, _, _ := c2.snapshot()
		return len(evs) == 5
	})
	if _, _, rs2 := c2.snapshot(); len(rs2) != 0 {
		t.Fatalf("short replay resynced unexpectedly: %v", rs2)
	}
}

// Regression: Hub.Progress used to ignore enqueue overflow, so a full
// watcher buffer silently dropped the progress event and the watcher's
// knowledge frontier stalled forever. Overflow must lag the watcher out.
func TestHubProgressOverflowResyncs(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{WatcherBuffer: 4, Metrics: reg})
	defer h.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var resyncs []ResyncEvent
	cb := Funcs{
		Progress: func(ProgressEvent) {
			once.Do(func() { close(entered) })
			<-release
		},
		Resync: func(r ResyncEvent) {
			mu.Lock()
			resyncs = append(resyncs, r)
			mu.Unlock()
		},
	}
	cancel, err := h.Watch(keyspace.Full(), NoVersion, cb)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// First progress event wedges the consumer inside its callback...
	h.Progress(ProgressEvent{Range: keyspace.Range{Low: "a", High: "b"}, Version: 1})
	<-entered
	// ...so the next WatcherBuffer distinct-range claims fill the queue
	// exactly (same-range claims would coalesce into one slot, by design:
	// only the newest frontier claim for a range matters)...
	for i := 2; i <= 5; i++ {
		lo := keyspace.Key(rune('a' + i))
		hi := keyspace.Key(rune('b' + i))
		h.Progress(ProgressEvent{Range: keyspace.Range{Low: lo, High: hi}, Version: Version(i)})
	}
	// ...and one more (again a fresh range) overflows it: the watcher must
	// be lagged out.
	h.Progress(ProgressEvent{Range: keyspace.Range{Low: "x", High: "y"}, Version: 6})
	close(release)

	waitUntil(t, "progress-overflow resync", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(resyncs) == 1
	})
	mu.Lock()
	r := resyncs[0]
	mu.Unlock()
	if r.MinVersion != 6 {
		t.Fatalf("resync MinVersion = %v, want 6", r.MinVersion)
	}
	if got := reg.Snapshot().Counters["core_hub_progress_overflow_total"]; got != 1 {
		t.Fatalf("progress overflow counter = %d, want 1", got)
	}
	// The lagged watcher is off the feed: further progress is not delivered.
	if h.Stats().Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", h.Stats().Resyncs)
	}
}

// TestHubStressFullLifecycle extends the concurrent stress to the full
// lifecycle surface: appenders, progress writers, watcher churn, a failure
// injector calling Wipe, and finally Close racing late operations. There are
// no throughput assertions — under -race this test exists to prove the
// synchronization of every public entry point, including the resync paths
// the Wipe calls keep exercising.
func TestHubStressFullLifecycle(t *testing.T) {
	h := NewHub(HubConfig{Retention: 256, WatcherBuffer: 64})

	var wg sync.WaitGroup
	// Appenders: per-goroutine key slices keep per-key versions monotonic.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 400; i++ {
				h.Append(ChangeEvent{
					Key:     keyspace.NumericKey(g*100 + i%10),
					Mut:     Mutation{Op: OpPut},
					Version: Version(g*1000 + i),
				})
			}
		}(g)
	}
	// Progress writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				h.Progress(ProgressEvent{Range: keyspace.Full(), Version: Version(g*500 + i)})
			}
		}(g)
	}
	// Watcher churn: each watch replays whatever is retained, then cancels.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var c collector
				cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
				if err != nil {
					return // closed under us — a valid interleaving
				}
				cancel()
			}
		}()
	}
	// Failure injector: wipes discard soft state and resync every watcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			h.Wipe()
		}
	}()
	// Reader: stats and frontier snapshots race everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.Stats()
			h.Frontier()
		}
	}()
	wg.Wait()
	h.Close()
	if err := h.Append(ChangeEvent{Key: keyspace.NumericKey(1), Mut: Mutation{Op: OpPut}, Version: 1 << 30}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
	if err := h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 1 << 30}); !errors.Is(err, ErrClosed) {
		t.Fatalf("progress after close: got %v, want ErrClosed", err)
	}
	if _, err := h.Watch(keyspace.Full(), NoVersion, &collector{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("watch after close: got %v, want ErrClosed", err)
	}
}

// batchSink records whether events arrived via OnEventBatch or OnEvent,
// preserving arrival order alongside interleaved progress marks.
type batchSink struct {
	mu         sync.Mutex
	events     []ChangeEvent
	batches    int
	singles    int
	progressAt []int // event count at each progress callback
	resyncs    int
}

func (b *batchSink) OnEvent(ev ChangeEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.singles++
	b.events = append(b.events, ev)
}

func (b *batchSink) OnEventBatch(evs []ChangeEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batches++
	b.events = append(b.events, evs...)
}

func (b *batchSink) OnProgress(ProgressEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.progressAt = append(b.progressAt, len(b.events))
}

func (b *batchSink) OnResync(ResyncEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resyncs++
}

// TestWatcherBatchDispatch: a callback implementing EventBatchCallback
// receives contiguous event runs as whole batches — never via OnEvent —
// with order preserved and progress marks interleaved at their queued
// positions.
func TestWatcherBatchDispatch(t *testing.T) {
	h := NewHub(HubConfig{Metrics: metrics.NewRegistry()})
	defer h.Close()
	sink := &batchSink{}
	cancel, err := h.Watch(keyspace.Full(), NoVersion, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const rounds, batch = 16, 32
	evs := make([]ChangeEvent, 0, batch)
	for r := 0; r < rounds; r++ {
		evs = evs[:0]
		for i := 0; i < batch; i++ {
			evs = append(evs, ChangeEvent{
				Key:     keyspace.NumericKey(i),
				Mut:     Mutation{Op: OpPut, Value: []byte("b")},
				Version: Version(r*batch + i + 1),
			})
		}
		if err := h.AppendBatch(evs); err != nil {
			t.Fatal(err)
		}
		if err := h.Progress(ProgressEvent{Range: keyspace.Full(), Version: Version((r + 1) * batch)}); err != nil {
			t.Fatal(err)
		}
	}

	const total = rounds * batch
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		sink.mu.Lock()
		n := len(sink.events)
		sink.mu.Unlock()
		if n >= total {
			break
		}
		time.Sleep(time.Millisecond)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.events) != total {
		t.Fatalf("delivered %d events, want %d", len(sink.events), total)
	}
	if sink.singles != 0 {
		t.Fatalf("%d events leaked through OnEvent despite EventBatchCallback", sink.singles)
	}
	if sink.batches == 0 || sink.batches >= total {
		t.Fatalf("%d batches for %d events, want batched delivery", sink.batches, total)
	}
	if sink.resyncs != 0 {
		t.Fatalf("unexpected resyncs: %d", sink.resyncs)
	}
	// Per-key order: events for one key must be version-ascending. With
	// NumericKey(i) repeated each round, global order is ascending too.
	for i := 1; i < len(sink.events); i++ {
		if sink.events[i].Version <= sink.events[i-1].Version {
			t.Fatalf("event %d version %v <= previous %v",
				i, sink.events[i].Version, sink.events[i-1].Version)
		}
	}
	if len(sink.progressAt) == 0 {
		t.Fatal("no progress callbacks interleaved")
	}
}
