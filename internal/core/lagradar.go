package core

import (
	"sort"
	"sync"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// The lag radar answers, per registered watcher, the two operational
// questions the paper's staleness discussion (§3.1) turns on: how many
// versions behind the hub's ingest frontier is this consumer, and for how
// long has it been behind? Version lag comes from comparing the watcher's
// consumed position against the per-shard ingest high-water marks;
// time-behind comes from the verClock, a bounded ring of (version, instant)
// checkpoints recorded as progress raises the frontier. Both read only
// atomics and the checkpoint ring, so scraping the radar never touches a
// shard lock or an ingest path.

// WatcherLag is one watcher's staleness snapshot.
type WatcherLag struct {
	// ID is the hub-assigned watcher id (stable for the watch's lifetime).
	ID int64 `json:"id"`
	// Range is the watched key range.
	Range keyspace.Range `json:"range"`
	// From is the version the watch started after.
	From Version `json:"from"`
	// LastSeen is the highest version the watcher has consumed, via a
	// delivered change event or a progress mark.
	LastSeen Version `json:"last_seen"`
	// Frontier is the highest version the hub has ingested over the
	// watcher's range (the max of the overlapping shards' high-water marks —
	// the same quantity HubStats.MaxSeen reports hub-wide).
	Frontier Version `json:"frontier"`
	// VersionLag = Frontier - LastSeen (0 when caught up).
	VersionLag uint64 `json:"version_lag"`
	// TimeBehind is how long ago the hub's frontier first passed the
	// watcher's current position; 0 when caught up or when no checkpoint
	// brackets the position (e.g. progress-free workloads).
	TimeBehind time.Duration `json:"time_behind_ns"`
	// QueueDepth is the watcher's undelivered queue length right now.
	QueueDepth int `json:"queue_depth"`
	// Delivered counts change events dispatched to the callback so far.
	Delivered int64 `json:"delivered"`
	// Lagged reports that the watcher has been resynced and is awaiting
	// recovery; its lag values describe the moment it was cut over.
	Lagged bool `json:"lagged"`
}

// verClockCap bounds the checkpoint ring; at one checkpoint per progress
// event this spans the last 512 frontier advances.
const verClockCap = 512

// verStamp is one (version, instant) checkpoint.
type verStamp struct {
	ver uint64
	at  int64 // UnixNano
}

// verClock is a bounded ring of frontier checkpoints, ascending in version.
type verClock struct {
	mu     sync.Mutex
	stamps [verClockCap]verStamp
	start  int
	n      int
}

// note records that the frontier passed ver at instant at. Non-advancing
// versions are ignored, keeping the ring strictly ascending.
func (vc *verClock) note(ver uint64, at int64) {
	if ver == 0 {
		return
	}
	vc.mu.Lock()
	if vc.n > 0 {
		last := vc.stamps[(vc.start+vc.n-1)%verClockCap]
		if ver <= last.ver {
			vc.mu.Unlock()
			return
		}
	}
	if vc.n == verClockCap {
		vc.start = (vc.start + 1) % verClockCap
		vc.n--
	}
	vc.stamps[(vc.start+vc.n)%verClockCap] = verStamp{ver: ver, at: at}
	vc.n++
	vc.mu.Unlock()
}

// firstAfter returns the instant of the earliest checkpoint with version
// strictly greater than v — the moment the frontier left v behind.
func (vc *verClock) firstAfter(v uint64) (int64, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	i := sort.Search(vc.n, func(i int) bool {
		return vc.stamps[(vc.start+i)%verClockCap].ver > v
	})
	if i == vc.n {
		return 0, false
	}
	return vc.stamps[(vc.start+i)%verClockCap].at, true
}

// WatcherLags returns the lag radar: one entry per registered watcher,
// ascending by watcher id. Safe to call concurrently with ingest; values
// are per-field atomic snapshots.
func (h *Hub) WatcherLags() []WatcherLag {
	now := h.clock.Now().UnixNano()
	h.regMu.Lock()
	ws := make([]*hubWatcher, 0, len(h.watchers))
	for _, w := range h.watchers {
		ws = append(ws, w)
	}
	h.regMu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })

	out := make([]WatcherLag, 0, len(ws))
	for _, w := range ws {
		var frontier uint64
		for _, s := range h.shards {
			if w.rng.Intersect(s.rng).Empty() {
				continue
			}
			if v := s.maxSeen.Load(); v > frontier {
				frontier = v
			}
		}
		last := w.lastSeen.Load()
		wl := WatcherLag{
			ID:         w.id,
			Range:      w.rng,
			From:       w.from,
			LastSeen:   Version(last),
			Frontier:   Version(frontier),
			QueueDepth: w.q.depth(),
			Delivered:  w.nDelivered.Load(),
			Lagged:     w.lagged.Load(),
		}
		if frontier > last {
			wl.VersionLag = frontier - last
			if at, ok := h.verTimes.firstAfter(last); ok && now > at {
				wl.TimeBehind = time.Duration(now - at)
			}
		}
		out = append(out, wl)
	}
	return out
}

// registerLagGauges publishes the radar's worst-case values as scrape-time
// gauges, so a plain /metrics dump shows the most stale watcher without
// anyone polling WatcherLags. Lagged watchers are excluded: they have been
// resynced and their frozen cut-over lag would otherwise read as a
// permanently stale consumer long after the client re-established the watch.
func (h *Hub) registerLagGauges(reg *metrics.Registry) {
	reg.GaugeFunc("core_hub_watcher_version_lag_max", func() int64 {
		var max uint64
		for _, wl := range h.WatcherLags() {
			if !wl.Lagged && wl.VersionLag > max {
				max = wl.VersionLag
			}
		}
		return int64(max)
	})
	reg.GaugeFunc("core_hub_watcher_time_behind_ns_max", func() int64 {
		var max time.Duration
		for _, wl := range h.WatcherLags() {
			if !wl.Lagged && wl.TimeBehind > max {
				max = wl.TimeBehind
			}
		}
		return int64(max)
	})
}
