//go:build race

package core

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation inflates heap allocations and breaks absolute
// memory-accounting assertions.
const raceEnabled = true
