package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unbundle/internal/keyspace"
)

func rng(lo, hi string) keyspace.Range {
	h := keyspace.Key(hi)
	if hi == "inf" {
		h = keyspace.Inf
	}
	return keyspace.Range{Low: keyspace.Key(lo), High: h}
}

func TestVersionMapRaiseAndQuery(t *testing.T) {
	var m VersionMap
	if got := m.VersionAt("a"); got != NoVersion {
		t.Fatalf("empty map VersionAt = %v", got)
	}
	m.Raise(rng("a", "m"), 10)
	m.Raise(rng("f", "z"), 5) // lower: must not lower existing coverage

	tests := []struct {
		k    keyspace.Key
		want Version
	}{
		{"a", 10}, {"e", 10}, {"f", 10}, {"l", 10},
		{"m", 5}, {"y", 5}, {"z", NoVersion},
	}
	for _, tt := range tests {
		if got := m.VersionAt(tt.k); got != tt.want {
			t.Errorf("VersionAt(%q) = %v, want %v", string(tt.k), got, tt.want)
		}
	}
	m.Raise(rng("c", "g"), 20)
	if got := m.VersionAt("d"); got != 20 {
		t.Errorf("after second raise VersionAt(d) = %v", got)
	}
	if got := m.VersionAt("b"); got != 10 {
		t.Errorf("neighbouring segment disturbed: VersionAt(b) = %v", got)
	}
}

func TestVersionMapMinOver(t *testing.T) {
	var m VersionMap
	m.Raise(rng("a", "m"), 10)
	m.Raise(rng("m", "z"), 7)

	if got := m.MinOver(rng("a", "z")); got != 7 {
		t.Errorf("MinOver full = %v, want 7", got)
	}
	if got := m.MinOver(rng("a", "m")); got != 10 {
		t.Errorf("MinOver left = %v, want 10", got)
	}
	// A gap anywhere yields NoVersion.
	if got := m.MinOver(rng("a", "zz")); got != NoVersion {
		t.Errorf("MinOver with gap = %v, want NoVersion", got)
	}
	if got := m.MinOver(keyspace.Range{}); got != NoVersion {
		t.Errorf("MinOver empty range = %v", got)
	}
	if !m.CoversAtLeast(rng("b", "y"), 7) {
		t.Error("CoversAtLeast(7) should hold")
	}
	if m.CoversAtLeast(rng("b", "y"), 8) {
		t.Error("CoversAtLeast(8) should fail: right half only at 7")
	}
}

func TestVersionMapMaxOver(t *testing.T) {
	var m VersionMap
	m.Raise(rng("a", "c"), 3)
	m.Raise(rng("x", "inf"), 9)
	if got := m.MaxOver(keyspace.Full()); got != 9 {
		t.Errorf("MaxOver = %v, want 9", got)
	}
	if got := m.MaxOver(rng("a", "d")); got != 3 {
		t.Errorf("MaxOver left = %v, want 3", got)
	}
	if got := m.MaxOver(rng("d", "e")); got != NoVersion {
		t.Errorf("MaxOver gap = %v, want 0", got)
	}
}

func TestVersionMapSegmentsNormalized(t *testing.T) {
	var m VersionMap
	m.Raise(rng("a", "c"), 5)
	m.Raise(rng("c", "f"), 5) // adjacent same version: must merge
	segs := m.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want single merged segment", m.String())
	}
	if segs[0].Range != rng("a", "f") || segs[0].Version != 5 {
		t.Fatalf("merged segment = %v", segs[0])
	}
	m.Raise(rng("b", "d"), 5) // fully covered, same version: no change
	if len(m.Segments()) != 1 {
		t.Fatalf("idempotent raise changed segments: %v", m.String())
	}
}

func TestVersionMapClone(t *testing.T) {
	var m VersionMap
	m.Raise(rng("a", "z"), 4)
	c := m.Clone()
	c.Raise(rng("a", "z"), 9)
	if got := m.VersionAt("b"); got != 4 {
		t.Fatalf("clone mutated original: %v", got)
	}
	if got := c.VersionAt("b"); got != 9 {
		t.Fatalf("clone not updated: %v", got)
	}
}

// TestQuickVersionMapPointwise checks Raise against a brute-force pointwise
// model over a probe key set.
func TestQuickVersionMapPointwise(t *testing.T) {
	letters := []keyspace.Key{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m VersionMap
		model := map[keyspace.Key]Version{}
		for i := 0; i < 20; i++ {
			lo := letters[r.Intn(len(letters))]
			hi := letters[r.Intn(len(letters))]
			v := Version(r.Intn(50))
			rg := keyspace.Range{Low: lo, High: hi}
			m.Raise(rg, v)
			for _, k := range letters {
				if rg.Contains(k) && v > model[k] {
					model[k] = v
				}
			}
		}
		for _, k := range letters {
			if m.VersionAt(k) != model[k] {
				t.Logf("mismatch at %q: got %v want %v (%v)", string(k), m.VersionAt(k), model[k], m.String())
				return false
			}
		}
		// MinOver agrees with pointwise min over a random probe range.
		lo := letters[r.Intn(len(letters))]
		hi := letters[r.Intn(len(letters))]
		probe := keyspace.Range{Low: lo, High: hi}
		if probe.Empty() {
			return true
		}
		min := Version(^uint64(0))
		for _, k := range letters {
			if probe.Contains(k) && model[k] < min {
				min = model[k]
			}
		}
		// Restrict to probes fully inside the letter grid (keys between
		// letters aren't modelled).
		got := m.MinOver(probe)
		if min == NoVersion && got != NoVersion {
			t.Logf("MinOver %v: got %v want NoVersion", probe, got)
			return false
		}
		if min != NoVersion && got > min {
			// got may be lower (sub-letter gaps don't exist: ranges are
			// letter-aligned so equality should hold).
			t.Logf("MinOver %v: got %v want %v (%v)", probe, got, min, m.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVersionMapSegmentsInvariant: segments stay sorted, disjoint,
// non-adjacent-equal and positive-version after arbitrary raises.
func TestQuickVersionMapSegmentsInvariant(t *testing.T) {
	letters := "abcdefghij"
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m VersionMap
		for i := 0; i < 30; i++ {
			lo := keyspace.Key(letters[r.Intn(len(letters))])
			hi := keyspace.Key(letters[r.Intn(len(letters))])
			m.Raise(keyspace.Range{Low: lo, High: hi}, Version(r.Intn(10)))
		}
		segs := m.Segments()
		for i, s := range segs {
			if s.Range.Empty() || s.Version == NoVersion {
				return false
			}
			if i > 0 {
				prev := segs[i-1]
				if prev.Range.Overlaps(s.Range) || prev.Range.Low >= s.Range.Low {
					return false
				}
				if prev.Version == s.Version && prev.Range.Adjacent(s.Range) {
					return false // should have merged
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
