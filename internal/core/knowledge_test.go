package core

import (
	"testing"

	"unbundle/internal/keyspace"
)

func TestKnowledgeSnapshotAndExtend(t *testing.T) {
	s := NewKnowledgeSet()
	if _, _, ok := s.WindowAt("c"); ok {
		t.Fatal("empty set claims knowledge")
	}
	s.AddSnapshot(rng("a", "m"), 10)
	lo, hi, ok := s.WindowAt("c")
	if !ok || lo != 10 || hi != 10 {
		t.Fatalf("window = [%v,%v] ok=%v, want [10,10]", lo, hi, ok)
	}
	s.ExtendTo(rng("a", "m"), 25)
	if lo, hi, _ = s.WindowAt("c"); lo != 10 || hi != 25 {
		t.Fatalf("after extend window = [%v,%v]", lo, hi)
	}
	// Progress over uncovered keys grants nothing.
	s.ExtendTo(rng("x", "z"), 25)
	if _, _, ok := s.WindowAt("y"); ok {
		t.Fatal("progress without a snapshot base granted knowledge")
	}
}

func TestKnowledgeSnapshotInsideWindowIsNoop(t *testing.T) {
	s := NewKnowledgeSet()
	s.AddSnapshot(rng("a", "m"), 10)
	s.ExtendTo(rng("a", "m"), 30)
	s.AddSnapshot(rng("a", "m"), 20) // inside [10,30]: keep wider window
	if lo, hi, _ := s.WindowAt("b"); lo != 10 || hi != 30 {
		t.Fatalf("window = [%v,%v], want [10,30]", lo, hi)
	}
	// A snapshot beyond the window resets it (gap in events).
	s.AddSnapshot(rng("a", "m"), 50)
	if lo, hi, _ := s.WindowAt("b"); lo != 50 || hi != 50 {
		t.Fatalf("window after gap snapshot = [%v,%v], want [50,50]", lo, hi)
	}
}

func TestKnowledgeCanServeAndStitch(t *testing.T) {
	s := NewKnowledgeSet()
	// Figure 5 shape: two regions with overlapping version windows.
	s.AddSnapshot(rng("a", "g"), 10)
	s.ExtendTo(rng("a", "g"), 40)
	s.AddSnapshot(rng("g", "p"), 30)
	s.ExtendTo(rng("g", "p"), 60)

	if !s.CanServe(rng("b", "f"), 15) {
		t.Error("must serve left range inside its window")
	}
	if s.CanServe(rng("b", "f"), 45) {
		t.Error("cannot serve above the left window")
	}
	// The green box: a version in both windows exists ([30,40]).
	v, ok := s.StitchVersion(rng("b", "f"), rng("h", "o"))
	if !ok {
		t.Fatalf("stitch failed: %v", s)
	}
	if v < 30 || v > 40 {
		t.Fatalf("stitch version %v outside [30,40]", v)
	}
	if v != 40 {
		t.Fatalf("stitch must pick freshest common version, got %v", v)
	}
	// A request spanning uncovered keys fails.
	if _, ok := s.StitchVersion(rng("b", "z")); ok {
		t.Error("stitch across a coverage gap must fail")
	}
}

func TestKnowledgeStitchDisjointWindows(t *testing.T) {
	s := NewKnowledgeSet()
	s.AddSnapshot(rng("a", "g"), 10)
	s.ExtendTo(rng("a", "g"), 20)
	s.AddSnapshot(rng("g", "p"), 30) // windows [10,20] and [30,30] don't meet
	if _, ok := s.StitchVersion(rng("b", "f"), rng("h", "o")); ok {
		t.Fatal("stitch must fail when version windows are disjoint")
	}
	// Extending the left region bridges the gap.
	s.ExtendTo(rng("a", "g"), 35)
	v, ok := s.StitchVersion(rng("b", "f"), rng("h", "o"))
	if !ok || v != 30 {
		t.Fatalf("stitch = %v,%v, want 30,true", v, ok)
	}
}

func TestKnowledgePruneAndDrop(t *testing.T) {
	s := NewKnowledgeSet()
	s.AddSnapshot(rng("a", "m"), 10)
	s.ExtendTo(rng("a", "m"), 50)
	s.PruneBelow(rng("a", "m"), 30)
	if lo, _, _ := s.WindowAt("c"); lo != 30 {
		t.Fatalf("prune floor = %v, want 30", lo)
	}
	if s.CanServe(rng("b", "c"), 20) {
		t.Error("pruned version still servable")
	}
	// Pruning past the ceiling removes the region entirely.
	s.PruneBelow(rng("a", "f"), 60)
	if _, _, ok := s.WindowAt("c"); ok {
		t.Error("region should be gone after pruning past High")
	}
	if _, _, ok := s.WindowAt("g"); !ok {
		t.Error("untouched sub-range lost")
	}
	s.Drop(rng("a", "z"))
	if len(s.Regions()) != 0 {
		t.Errorf("Drop left regions: %v", s)
	}
}

func TestKnowledgeRepartitionPreservesServability(t *testing.T) {
	// Splitting a region's range (dynamic repartitioning) must not change
	// what can be served — regions are immutable knowledge (§4.3).
	s := NewKnowledgeSet()
	s.AddSnapshot(rng("a", "z"), 10)
	s.ExtendTo(rng("a", "z"), 40)

	// Simulate handing [a,m) to another watcher: knowledge splits.
	left := NewKnowledgeSet()
	left.AddSnapshot(rng("a", "m"), 10)
	left.ExtendTo(rng("a", "m"), 40)
	right := NewKnowledgeSet()
	right.AddSnapshot(rng("m", "z"), 10)
	right.ExtendTo(rng("m", "z"), 40)

	merged := left.Union(right)
	vWant, okWant := s.StitchVersion(rng("b", "y"))
	vGot, okGot := merged.StitchVersion(rng("b", "y"))
	if okWant != okGot || vWant != vGot {
		t.Fatalf("repartition changed servability: (%v,%v) vs (%v,%v)", vWant, okWant, vGot, okGot)
	}
}

func TestKnowledgeUnionOverlapping(t *testing.T) {
	a := NewKnowledgeSet()
	a.AddSnapshot(rng("a", "m"), 10)
	a.ExtendTo(rng("a", "m"), 30)
	b := NewKnowledgeSet()
	b.AddSnapshot(rng("f", "s"), 25)
	b.ExtendTo(rng("f", "s"), 50)

	u := a.Union(b)
	// Overlap [f,m): windows [10,30] and [25,50] overlap → merge to [10,50].
	if lo, hi, _ := u.WindowAt("g"); lo != 10 || hi != 50 {
		t.Fatalf("merged window = [%v,%v], want [10,50]", lo, hi)
	}
	// Non-overlap pieces retained.
	if lo, hi, _ := u.WindowAt("b"); lo != 10 || hi != 30 {
		t.Fatalf("left window = [%v,%v]", lo, hi)
	}
	if lo, hi, _ := u.WindowAt("p"); lo != 25 || hi != 50 {
		t.Fatalf("right window = [%v,%v]", lo, hi)
	}
}

func TestKnowledgeUnionDisjointWindowsFresherWins(t *testing.T) {
	a := NewKnowledgeSet()
	a.AddSnapshot(rng("a", "m"), 10)
	b := NewKnowledgeSet()
	b.AddSnapshot(rng("a", "m"), 90)
	u := a.Union(b)
	if lo, hi, _ := u.WindowAt("c"); lo != 90 || hi != 90 {
		t.Fatalf("fresher window must win, got [%v,%v]", lo, hi)
	}
	// Union is value-symmetric here.
	u2 := b.Union(a)
	if lo, hi, _ := u2.WindowAt("c"); lo != 90 || hi != 90 {
		t.Fatalf("fresher window must win regardless of order, got [%v,%v]", lo, hi)
	}
}

func TestKnowledgeRegionsNormalized(t *testing.T) {
	s := NewKnowledgeSet()
	s.AddSnapshot(rng("a", "f"), 10)
	s.AddSnapshot(rng("f", "m"), 10) // adjacent identical windows must merge
	regs := s.Regions()
	if len(regs) != 1 {
		t.Fatalf("regions = %v, want one merged region", s)
	}
	if regs[0].Range != rng("a", "m") {
		t.Fatalf("merged range = %v", regs[0].Range)
	}
	_ = keyspace.Full() // keep import when table shrinks
}
