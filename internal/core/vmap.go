package core

import (
	"fmt"
	"sort"
	"strings"

	"unbundle/internal/keyspace"
)

// RangeVersion is one segment of a VersionMap: every key in Range carries
// Version.
type RangeVersion struct {
	Range   keyspace.Range
	Version Version
}

// VersionMap is an interval map from keys to versions, the data structure
// behind range-scoped progress (§4.2.2): the hub's frontier is a VersionMap
// recording, for every key, the highest version through which the event
// stream is known complete. Keys not covered by any segment implicitly carry
// NoVersion.
//
// VersionMap is not safe for concurrent use; owners guard it with their own
// lock. The zero value is an empty map.
type VersionMap struct {
	segs []RangeVersion // sorted by Range.Low, disjoint, version > NoVersion
}

// Raise sets the version over r to max(current, v) pointwise. Raising to
// NoVersion is a no-op. Progress can legitimately arrive out of order or
// overlap (each layer partitions independently), so Raise never lowers.
func (m *VersionMap) Raise(r keyspace.Range, v Version) {
	if r.Empty() || v == NoVersion {
		return
	}
	out := make([]RangeVersion, 0, len(m.segs)+2)
	uncovered := keyspace.NewRangeSet(r)
	for _, s := range m.segs {
		inter := s.Range.Intersect(r)
		if inter.Empty() {
			out = append(out, s)
			continue
		}
		uncovered = uncovered.SubtractRange(s.Range)
		// Pieces of s outside r keep their version.
		for _, rest := range keyspace.NewRangeSet(s.Range).SubtractRange(r).Ranges() {
			out = append(out, RangeVersion{Range: rest, Version: s.Version})
		}
		// The overlap takes the max.
		sv := s.Version
		if v > sv {
			sv = v
		}
		out = append(out, RangeVersion{Range: inter, Version: sv})
	}
	for _, rest := range uncovered.Ranges() {
		out = append(out, RangeVersion{Range: rest, Version: v})
	}
	m.segs = normalizeSegments(out)
}

// normalizeSegments sorts, then merges adjacent segments of equal version.
func normalizeSegments(segs []RangeVersion) []RangeVersion {
	sort.Slice(segs, func(i, j int) bool { return segs[i].Range.Low < segs[j].Range.Low })
	out := segs[:0]
	for _, s := range segs {
		if s.Range.Empty() || s.Version == NoVersion {
			continue
		}
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Version == s.Version && prev.Range.Adjacent(s.Range) {
				prev.Range = prev.Range.Union(s.Range)
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// VersionAt returns the version covering key k (NoVersion if uncovered).
func (m *VersionMap) VersionAt(k keyspace.Key) Version {
	for _, s := range m.segs {
		if s.Range.Contains(k) {
			return s.Version
		}
		if s.Range.Low > k {
			break
		}
	}
	return NoVersion
}

// MinOver returns the minimum version over every key of r: the version
// through which knowledge of r is complete. Any uncovered gap yields
// NoVersion. This is the query a watcher's progress tracker answers: "up to
// what version do I know everything about this range?"
func (m *VersionMap) MinOver(r keyspace.Range) Version {
	if r.Empty() {
		return NoVersion
	}
	remaining := keyspace.NewRangeSet(r)
	min := Version(^uint64(0))
	for _, s := range m.segs {
		inter := s.Range.Intersect(r)
		if inter.Empty() {
			continue
		}
		remaining = remaining.SubtractRange(s.Range)
		if s.Version < min {
			min = s.Version
		}
	}
	if !remaining.Empty() {
		return NoVersion
	}
	return min
}

// MaxOver returns the maximum version over keys of r (NoVersion if none).
func (m *VersionMap) MaxOver(r keyspace.Range) Version {
	var max Version
	for _, s := range m.segs {
		if !s.Range.Overlaps(r) {
			continue
		}
		if s.Version > max {
			max = s.Version
		}
	}
	return max
}

// CoversAtLeast reports whether every key of r carries version >= v.
func (m *VersionMap) CoversAtLeast(r keyspace.Range, v Version) bool {
	return m.MinOver(r) >= v && !r.Empty()
}

// Segments returns the normalized segments in key order. The caller must not
// modify the returned slice.
func (m *VersionMap) Segments() []RangeVersion { return m.segs }

// Clone returns an independent copy.
func (m *VersionMap) Clone() *VersionMap {
	out := &VersionMap{segs: make([]RangeVersion, len(m.segs))}
	copy(out.segs, m.segs)
	return out
}

// String renders the map for logs and test failures.
func (m *VersionMap) String() string {
	if len(m.segs) == 0 {
		return "frontier{}"
	}
	parts := make([]string, len(m.segs))
	for i, s := range m.segs {
		parts[i] = fmt.Sprintf("%v@%v", s.Range, s.Version)
	}
	return "frontier{" + strings.Join(parts, " ") + "}"
}
