package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// blockGate is a callback that can be paused, forcing a watcher to fall
// behind the frontier while the test measures its lag.
type blockGate struct {
	collector
	mu      sync.Mutex
	blocked bool
	wake    chan struct{}
}

func newBlockGate() *blockGate { return &blockGate{wake: make(chan struct{})} }

func (g *blockGate) block() {
	g.mu.Lock()
	g.blocked = true
	g.mu.Unlock()
}

func (g *blockGate) unblock() {
	g.mu.Lock()
	if g.blocked {
		g.blocked = false
		close(g.wake)
		g.wake = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *blockGate) OnEvent(ev ChangeEvent) {
	for {
		g.mu.Lock()
		blocked, wake := g.blocked, g.wake
		g.mu.Unlock()
		if !blocked {
			break
		}
		<-wake
	}
	g.collector.OnEvent(ev)
}

func TestVerClock(t *testing.T) {
	var vc verClock
	vc.note(0, 100) // version 0 is ignored
	vc.note(5, 50)
	vc.note(5, 60) // non-advancing, ignored
	vc.note(3, 70) // regressing, ignored
	vc.note(9, 90)

	if at, ok := vc.firstAfter(0); !ok || at != 50 {
		t.Fatalf("firstAfter(0) = %d,%v, want 50", at, ok)
	}
	if at, ok := vc.firstAfter(5); !ok || at != 90 {
		t.Fatalf("firstAfter(5) = %d,%v, want 90", at, ok)
	}
	if _, ok := vc.firstAfter(9); ok {
		t.Fatal("firstAfter(9) found a checkpoint past the frontier")
	}
}

func TestVerClockRingEviction(t *testing.T) {
	var vc verClock
	for i := 1; i <= verClockCap+10; i++ {
		vc.note(uint64(i), int64(i*100))
	}
	// The oldest 10 checkpoints fell off; firstAfter(0) now answers with the
	// earliest retained stamp.
	if at, ok := vc.firstAfter(0); !ok || at != int64(11*100) {
		t.Fatalf("firstAfter(0) after eviction = %d,%v, want %d", at, ok, 11*100)
	}
	if at, ok := vc.firstAfter(uint64(verClockCap)); !ok || at != int64((verClockCap+1)*100) {
		t.Fatalf("firstAfter(cap) = %d,%v", at, ok)
	}
}

func TestWatcherLagsCaughtUp(t *testing.T) {
	fc := clockwork.NewFake()
	h := NewHub(HubConfig{Clock: fc, Metrics: metrics.NewRegistry()})
	defer h.Close()
	var c collector
	cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for i := 1; i <= 8; i++ {
		h.Append(put(fmt.Sprintf("k%d", i), Version(i)))
	}
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 8})
	waitUntil(t, "8 events", func() bool { evs, _, _ := c.snapshot(); return len(evs) == 8 })
	waitUntil(t, "caught-up radar", func() bool {
		ls := h.WatcherLags()
		return len(ls) == 1 && ls[0].VersionLag == 0
	})

	ls := h.WatcherLags()
	wl := ls[0]
	if wl.LastSeen != 8 || wl.Frontier != 8 {
		t.Fatalf("caught-up watcher: %+v", wl)
	}
	if wl.TimeBehind != 0 || wl.Lagged {
		t.Fatalf("caught-up watcher shows staleness: %+v", wl)
	}
	if wl.Delivered != 8 {
		t.Fatalf("Delivered = %d, want 8", wl.Delivered)
	}
	if wl.Frontier != h.Stats().MaxSeen {
		t.Fatalf("radar frontier %v != Stats().MaxSeen %v", wl.Frontier, h.Stats().MaxSeen)
	}
}

func TestWatcherLagsBehindFrontier(t *testing.T) {
	fc := clockwork.NewFake()
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{Clock: fc, Metrics: reg})
	defer h.Close()

	g := newBlockGate()
	cancel, err := h.Watch(keyspace.Full(), NoVersion, g)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Let the watcher consume version 1, then stall it.
	h.Append(put("k", 1))
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 1})
	waitUntil(t, "first event", func() bool { evs, _, _ := g.snapshot(); return len(evs) == 1 })
	waitUntil(t, "lastSeen=1", func() bool {
		ls := h.WatcherLags()
		return len(ls) == 1 && ls[0].LastSeen == 1
	})
	g.block()

	// Advance the frontier while the watcher is stuck: versions 2..6, with a
	// progress checkpoint at a known fake-clock instant.
	fc.Advance(250 * time.Millisecond)
	for i := 2; i <= 6; i++ {
		h.Append(put("k", Version(i)))
	}
	h.Progress(ProgressEvent{Range: keyspace.Full(), Version: 6})
	fc.Advance(750 * time.Millisecond)

	// The blocked callback may have already dequeued v2 before stalling, so
	// accept LastSeen of 1 or 2; the lag math must agree either way.
	ls := h.WatcherLags()
	if len(ls) != 1 {
		t.Fatalf("radar has %d watchers, want 1", len(ls))
	}
	wl := ls[0]
	if wl.Frontier != 6 {
		t.Fatalf("frontier = %v, want 6", wl.Frontier)
	}
	if wl.Frontier != h.Stats().MaxSeen {
		t.Fatalf("radar frontier %v != Stats().MaxSeen %v", wl.Frontier, h.Stats().MaxSeen)
	}
	if want := uint64(wl.Frontier) - uint64(wl.LastSeen); wl.VersionLag != want {
		t.Fatalf("VersionLag = %d, want %d (%+v)", wl.VersionLag, want, wl)
	}
	if wl.VersionLag < 4 {
		t.Fatalf("VersionLag = %d, want >= 4", wl.VersionLag)
	}
	// The frontier passed the watcher's position at the checkpoint noted
	// 750 fake-ms ago.
	if wl.TimeBehind != 750*time.Millisecond {
		t.Fatalf("TimeBehind = %v, want 750ms", wl.TimeBehind)
	}

	// The scrape-time gauges report the same worst case.
	snap := reg.Snapshot()
	if got := snap.Gauges["core_hub_watcher_version_lag_max"]; got != int64(wl.VersionLag) {
		t.Fatalf("version_lag_max gauge = %d, want %d", got, wl.VersionLag)
	}
	if got := snap.Gauges["core_hub_watcher_time_behind_ns_max"]; got != int64(750*time.Millisecond) {
		t.Fatalf("time_behind_ns_max gauge = %d, want 750ms", got)
	}

	// Release the watcher; it catches up and the radar returns to zero.
	g.unblock()
	waitUntil(t, "radar back to zero", func() bool {
		ls := h.WatcherLags()
		return len(ls) == 1 && ls[0].VersionLag == 0 && ls[0].TimeBehind == 0
	})
}

func TestWatcherLagsConcurrentWithIngest(t *testing.T) {
	// Buffer exceeds total ingest so the watcher can stall behind the radar
	// scrapes without being lagged out.
	h := NewHub(HubConfig{WatcherBuffer: 4096, Metrics: metrics.NewRegistry()})
	defer h.Close()
	var c collector
	cancel, err := h.Watch(keyspace.Full(), NoVersion, &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 2000; i++ {
			h.Append(put(fmt.Sprintf("k%d", i%16), Version(i)))
			if i%100 == 0 {
				h.Progress(ProgressEvent{Range: keyspace.Full(), Version: Version(i)})
			}
		}
	}()
	// Scrape the radar while ingest is running: no races, sane invariants.
	for i := 0; i < 200; i++ {
		for _, wl := range h.WatcherLags() {
			if wl.Frontier < wl.LastSeen {
				t.Fatalf("frontier %v behind lastSeen %v", wl.Frontier, wl.LastSeen)
			}
			if wl.VersionLag != 0 && wl.VersionLag != uint64(wl.Frontier)-uint64(wl.LastSeen) {
				t.Fatalf("inconsistent lag: %+v", wl)
			}
		}
	}
	<-done
	waitUntil(t, "drain", func() bool {
		ls := h.WatcherLags()
		return len(ls) == 1 && ls[0].VersionLag == 0
	})
	if got := h.WatcherLags()[0].Frontier; got != h.Stats().MaxSeen {
		t.Fatalf("frontier %v != Stats().MaxSeen %v", got, h.Stats().MaxSeen)
	}
}

// TestLagGaugesExcludeLaggedAndCancelledWatchers is the regression test for
// the dead-watcher-reads-as-lagged bug: a watcher that lagged out (or was
// cancelled) must not pin core_hub_watcher_version_lag_max at its frozen
// cut-over lag forever.
func TestLagGaugesExcludeLaggedAndCancelledWatchers(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(HubConfig{WatcherBuffer: 4, Retention: 1024, Metrics: reg})
	defer h.Close()

	g := newBlockGate()
	g.block()
	cancel, err := h.Watch(keyspace.Full(), NoVersion, g)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Overflow the blocked watcher far past its buffer: it lags out with a
	// large frozen version lag.
	for i := 1; i <= 64; i++ {
		h.Append(put(fmt.Sprintf("k%d", i), Version(i)))
	}
	waitUntil(t, "lag-out", func() bool {
		_, _, rs := g.snapshot()
		return len(rs) > 0
	})
	g.unblock()

	ls := h.WatcherLags()
	if len(ls) != 1 || !ls[0].Lagged {
		t.Fatalf("radar = %+v, want one lagged watcher", ls)
	}
	if ls[0].VersionLag == 0 {
		t.Fatal("lagged watcher shows zero lag; test lost its premise")
	}
	// The radar still reports the lagged watcher (operators want to see it),
	// but the worst-case gauges exclude it: with no healthy watcher behind,
	// both must read zero.
	snap := reg.Snapshot()
	if got := snap.Gauges["core_hub_watcher_version_lag_max"]; got != 0 {
		t.Fatalf("version_lag_max = %d with only a lagged watcher, want 0", got)
	}
	if got := snap.Gauges["core_hub_watcher_time_behind_ns_max"]; got != 0 {
		t.Fatalf("time_behind_ns_max = %d with only a lagged watcher, want 0", got)
	}

	// Cancelling removes the watcher from the radar entirely.
	cancel()
	if ls := h.WatcherLags(); len(ls) != 0 {
		t.Fatalf("radar after cancel = %+v, want empty", ls)
	}
	if got, _ := reg.GaugeValue("core_hub_watcher_version_lag_max"); got != 0 {
		t.Fatalf("version_lag_max after cancel = %d, want 0", got)
	}
}
