package core

import (
	"sync"
	"testing"
)

func TestResumePointMonotonic(t *testing.T) {
	var rp ResumePoint
	rp.Reset(10)
	if got := rp.Version(); got != 10 {
		t.Fatalf("after Reset(10): %v", got)
	}
	rp.NoteEvent(ChangeEvent{Version: 15})
	rp.NoteProgress(ProgressEvent{Version: 12}) // stale: must not regress
	if got := rp.Version(); got != 15 {
		t.Fatalf("after event 15, progress 12: %v, want 15", got)
	}
	rp.NoteProgress(ProgressEvent{Version: 40})
	rp.NoteEvent(ChangeEvent{Version: 22}) // stale again
	if got := rp.Version(); got != 40 {
		t.Fatalf("after progress 40, event 22: %v, want 40", got)
	}
}

func TestResumePointConcurrent(t *testing.T) {
	var rp ResumePoint
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				if g%2 == 0 {
					rp.NoteEvent(ChangeEvent{Version: Version(i)})
				} else {
					rp.NoteProgress(ProgressEvent{Version: Version(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := rp.Version(); got != 1000 {
		t.Fatalf("concurrent max = %v, want 1000", got)
	}
}
