// Package clockwork provides the time source used by every time-driven
// component in the repository: pubsub retention GC, cache TTLs, sharder
// leases, backlog simulations.
//
// The paper's §3.1 pathologies involve wall-clock spans of days (retention
// horizons, multi-day consumer outages). To exercise them in milliseconds of
// test time, components never call time.Now directly; they take a Clock. The
// real clock delegates to package time; the fake clock advances only when the
// test says so, firing timers deterministically in order.
package clockwork

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that receives the then-current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) Ticker
}

// Timer fires once on its channel unless stopped first.
type Timer interface {
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the call
	// stopped the timer before it fired.
	Stop() bool
	// Reset re-arms the timer to fire after d.
	Reset(d time.Duration)
}

// Ticker fires repeatedly on its channel until stopped.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real returns a Clock backed by package time.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker       { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time   { return t.t.C }
func (t realTimer) Stop() bool            { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) { t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Fake is a manually advanced Clock. The zero value is not usable; construct
// with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter // sorted by deadline
	seq     uint64        // tiebreak so equal deadlines fire in arm order
}

// NewFake returns a fake clock starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2025, 5, 14, 0, 0, 0, 0, time.UTC)} // HotOS'25 day one
}

type fakeWaiter struct {
	deadline time.Time
	seq      uint64
	period   time.Duration // 0 for one-shot timers
	ch       chan time.Time
	stopped  bool
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel fired when the fake clock advances past d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C()
}

// Sleep blocks the calling goroutine until another goroutine advances the
// clock by at least d.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// NewTimer arms a one-shot timer at now+d.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.armLocked(d, 0)
	return &fakeTimer{f: f, w: w}
}

// NewTicker arms a periodic timer with period d.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clockwork: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.armLocked(d, d)
	return &fakeTicker{f: f, w: w}
}

func (f *Fake) armLocked(d, period time.Duration) *fakeWaiter {
	w := &fakeWaiter{
		deadline: f.now.Add(d),
		seq:      f.seq,
		period:   period,
		ch:       make(chan time.Time, 1),
	}
	f.seq++
	f.waiters = append(f.waiters, w)
	f.sortLocked()
	// A timer armed with d <= 0 fires immediately, matching package time.
	f.fireDueLocked()
	return w
}

func (f *Fake) sortLocked() {
	sort.SliceStable(f.waiters, func(i, j int) bool {
		if !f.waiters[i].deadline.Equal(f.waiters[j].deadline) {
			return f.waiters[i].deadline.Before(f.waiters[j].deadline)
		}
		return f.waiters[i].seq < f.waiters[j].seq
	})
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order. Periodic tickers re-arm and can fire multiple
// times within one Advance.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.fireDueLocked()
}

// AdvanceTo moves the clock to instant t (no-op if t is in the past).
func (f *Fake) AdvanceTo(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.After(f.now) {
		f.now = t
	}
	f.fireDueLocked()
}

func (f *Fake) fireDueLocked() {
	for len(f.waiters) > 0 {
		w := f.waiters[0]
		if w.stopped {
			f.waiters = f.waiters[1:]
			continue
		}
		if w.deadline.After(f.now) {
			return
		}
		// Non-blocking send, matching time.Ticker's drop-on-slow-receiver
		// behaviour; a fake timer channel has capacity 1.
		select {
		case w.ch <- w.deadline:
		default:
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			f.sortLocked()
		} else {
			f.waiters = f.waiters[1:]
		}
	}
}

// PendingTimers reports how many unfired, unstopped timers are armed. Tests
// use it to assert components shut their background loops down.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

type fakeTimer struct {
	f *Fake
	w *fakeWaiter
}

func (t *fakeTimer) C() <-chan time.Time { return t.w.ch }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := !t.w.stopped && t.w.deadline.After(t.f.now)
	t.w.stopped = true
	return was
}

func (t *fakeTimer) Reset(d time.Duration) {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.w.stopped = false
	t.w.deadline = t.f.now.Add(d)
	// The waiter may already have been popped (it fired, or it was stopped
	// and then reaped); make sure exactly one instance is queued.
	queued := false
	for _, w := range t.f.waiters {
		if w == t.w {
			queued = true
			break
		}
	}
	if !queued {
		t.f.waiters = append(t.f.waiters, t.w)
	}
	t.f.sortLocked()
	t.f.fireDueLocked()
}

type fakeTicker struct {
	f *Fake
	w *fakeWaiter
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.w.stopped = true
}
