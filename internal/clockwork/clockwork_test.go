package clockwork

import (
	"testing"
	"time"
)

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake()
	t0 := f.Now()
	f.Advance(5 * time.Second)
	if got := f.Now().Sub(t0); got != 5*time.Second {
		t.Fatalf("advanced %v, want 5s", got)
	}
	f.AdvanceTo(t0) // past: no-op
	if f.Now().Sub(t0) != 5*time.Second {
		t.Fatal("AdvanceTo must not move backwards")
	}
}

func TestFakeTimerFires(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Minute)
	select {
	case <-timer.C():
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(59 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired before deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-timer.C():
		if !at.Equal(f.Now()) {
			t.Fatalf("fire time %v, want %v", at, f.Now())
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestFakeTimerStopReset(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Minute)
	if !timer.Stop() {
		t.Fatal("Stop before firing must return true")
	}
	f.Advance(2 * time.Minute)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	timer.Reset(time.Second)
	f.Advance(time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("reset timer did not fire")
	}
	if timer.Stop() {
		t.Fatal("Stop after firing must return false")
	}
}

func TestFakeImmediateTimer(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(0)
	select {
	case <-timer.C():
	default:
		t.Fatal("zero-duration timer must fire immediately")
	}
}

func TestFakeTickerPeriodic(t *testing.T) {
	f := NewFake()
	tick := f.NewTicker(10 * time.Second)
	defer tick.Stop()

	fires := 0
	for i := 0; i < 5; i++ {
		f.Advance(10 * time.Second)
		select {
		case <-tick.C():
			fires++
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
	if fires != 5 {
		t.Fatalf("fires = %d, want 5", fires)
	}
	// One big advance past several periods delivers at least one tick
	// (channel capacity 1, like time.Ticker).
	f.Advance(time.Minute)
	select {
	case <-tick.C():
	default:
		t.Fatal("tick missing after large advance")
	}
	tick.Stop()
	f.Advance(time.Minute)
	select {
	case <-tick.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestFakeSleepUnblocks(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Hour)
		close(done)
	}()
	// Wait until the sleeper has armed its timer.
	for f.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(time.Hour)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestFakeTimerOrder(t *testing.T) {
	f := NewFake()
	a := f.NewTimer(2 * time.Second)
	b := f.NewTimer(1 * time.Second)
	f.Advance(3 * time.Second)
	ta := <-a.C()
	tb := <-b.C()
	if !tb.Before(ta) {
		t.Fatalf("deadline order violated: a=%v b=%v", ta, tb)
	}
}

func TestRealClockSmoke(t *testing.T) {
	c := Real()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(start) {
		t.Fatal("real clock did not advance")
	}
	timer := c.NewTimer(time.Millisecond)
	<-timer.C()
	tick := c.NewTicker(time.Millisecond)
	<-tick.C()
	tick.Stop()
	<-c.After(time.Millisecond)
}

func TestPendingTimers(t *testing.T) {
	f := NewFake()
	if f.PendingTimers() != 0 {
		t.Fatal("fresh clock has pending timers")
	}
	timer := f.NewTimer(time.Hour)
	tick := f.NewTicker(time.Hour)
	if got := f.PendingTimers(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	timer.Stop()
	tick.Stop()
	if got := f.PendingTimers(); got != 0 {
		t.Fatalf("pending after stop = %d, want 0", got)
	}
}
