// Package logz is the repository's structured logging substrate: a
// log/slog handler that writes records into a bounded in-memory ring
// instead of a process stream. Components log their rare lifecycle
// transitions (watch lag-outs, connection loss, drains) through component-
// tagged slog.Loggers; the debug server exposes the ring at /logz, so "what
// did the system say recently" is answerable next to /metrics and
// /flightrec without anyone tailing stderr — and without unstructured
// prints polluting machine-read stdout (unbundle-bench -json).
//
// The ring is the log's retention: fixed capacity, oldest overwritten,
// zero configuration. A CLI that also wants records on a terminal sets a
// mirror writer.
package logz

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Entry is one retained log record, JSON-ready for the /logz endpoint.
type Entry struct {
	At        time.Time      `json:"at"`
	Level     string         `json:"level"`
	Component string         `json:"component,omitempty"`
	Msg       string         `json:"msg"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// Ring is a bounded, concurrency-safe log record buffer.
type Ring struct {
	// level is the minimum retained slog.Level, stored atomically so the
	// Enabled gate every suppressed log call passes through is lock-free.
	level atomic.Int64

	mu     sync.Mutex
	buf    []Entry
	n      uint64
	mirror io.Writer
}

// NewRing creates a ring retaining the last capacity records (default 256)
// at Info level and above.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	r := &Ring{buf: make([]Entry, capacity)}
	r.level.Store(int64(slog.LevelInfo))
	return r
}

// SetLevel changes the minimum retained level.
func (r *Ring) SetLevel(l slog.Level) {
	r.level.Store(int64(l))
}

// SetMirror additionally writes each retained record, one line of
// logfmt-ish text, to w (nil disables). CLIs use this to surface the ring
// on stderr.
func (r *Ring) SetMirror(w io.Writer) {
	r.mu.Lock()
	r.mirror = w
	r.mu.Unlock()
}

// Records returns the retained entries, oldest first. The slice is a copy.
func (r *Ring) Records() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	window := r.n
	if window > uint64(len(r.buf)) {
		window = uint64(len(r.buf))
	}
	out := make([]Entry, 0, window)
	for i := r.n - window; i < r.n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

func (r *Ring) add(e Entry) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
	mirror := r.mirror
	r.mu.Unlock()
	if mirror != nil {
		line := fmt.Sprintf("%s %s %s %s", e.At.Format(time.RFC3339Nano), e.Level, e.Component, e.Msg)
		for k, v := range e.Attrs {
			line += fmt.Sprintf(" %s=%v", k, v)
		}
		fmt.Fprintln(mirror, line)
	}
}

// Logger returns a component-tagged slog.Logger writing into the ring.
// Components pass trace IDs and entity ids as ordinary attrs.
func (r *Ring) Logger(component string) *slog.Logger {
	return slog.New(&handler{ring: r}).With(slog.String("component", component))
}

// handler adapts the ring to slog.Handler. Attr groups flatten into
// dotted key prefixes; the "component" attr is hoisted into Entry.Component.
type handler struct {
	ring   *Ring
	attrs  []slog.Attr
	prefix string // accumulated group prefix, "" or "a.b."
}

func (h *handler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.Level(h.ring.level.Load())
}

func (h *handler) Handle(_ context.Context, rec slog.Record) error {
	e := Entry{At: rec.Time, Level: rec.Level.String(), Msg: rec.Message}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	put := func(prefix string, a slog.Attr) {
		key := prefix + a.Key
		if key == "component" {
			e.Component = a.Value.String()
			return
		}
		if e.Attrs == nil {
			e.Attrs = make(map[string]any)
		}
		e.Attrs[key] = a.Value.Resolve().Any()
	}
	for _, a := range h.attrs {
		put("", a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		put(h.prefix, a)
		return true
	})
	h.ring.add(e)
	return nil
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &handler{ring: h.ring, prefix: h.prefix}
	n.attrs = append(append([]slog.Attr{}, h.attrs...), prefixed(h.prefix, attrs)...)
	return n
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &handler{ring: h.ring, attrs: h.attrs, prefix: h.prefix + name + "."}
}

func prefixed(prefix string, attrs []slog.Attr) []slog.Attr {
	if prefix == "" {
		return attrs
	}
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

// defaultRing is the process-wide ring used by components whose
// configuration does not name a logger explicitly.
var defaultRing = NewRing(256)

// Default returns the process-wide ring.
func Default() *Ring { return defaultRing }

// Logger returns a component logger on the process-wide ring — the
// counterpart of metrics.Default() for logs.
func Logger(component string) *slog.Logger { return defaultRing.Logger(component) }
