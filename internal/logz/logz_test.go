package logz

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestRingRetainsComponentTaggedRecords(t *testing.T) {
	r := NewRing(4)
	log := r.Logger("core.hub")
	log.Info("watcher lagged out", "id", int64(7), "reason", "buffer overflow")
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	e := recs[0]
	if e.Component != "core.hub" || e.Msg != "watcher lagged out" || e.Level != "INFO" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Attrs["id"] != int64(7) || e.Attrs["reason"] != "buffer overflow" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
	if e.At.IsZero() {
		t.Fatal("entry not timestamped")
	}
}

func TestRingDropsBelowLevelAndOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	log := r.Logger("c")
	log.Debug("invisible") // below the default Info level
	if len(r.Records()) != 0 {
		t.Fatal("debug record retained at Info level")
	}
	r.SetLevel(slog.LevelDebug)
	log.Debug("visible now")
	if len(r.Records()) != 1 {
		t.Fatal("debug record dropped at Debug level")
	}
	for i := 0; i < 10; i++ {
		log.Info("spam", "i", i)
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(recs))
	}
	if recs[3].Attrs["i"] != int64(9) {
		t.Fatalf("newest record attrs = %v", recs[3].Attrs)
	}
}

func TestGroupsFlattenToDottedKeys(t *testing.T) {
	r := NewRing(4)
	log := r.Logger("c").WithGroup("conn").With("id", 3)
	log.Warn("draining", "watches", 2)
	e := r.Records()[0]
	if e.Attrs["conn.id"] != int64(3) || e.Attrs["conn.watches"] != int64(2) {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}

func TestMirrorWritesLines(t *testing.T) {
	r := NewRing(4)
	var sb strings.Builder
	var mu sync.Mutex
	r.SetMirror(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	}))
	r.Logger("cli").Info("hello", "k", "v")
	mu.Lock()
	line := sb.String()
	mu.Unlock()
	if !strings.Contains(line, "cli") || !strings.Contains(line, "hello") || !strings.Contains(line, "k=v") {
		t.Fatalf("mirror line = %q", line)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
