package coretest

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// GoroutineLeakGuard snapshots the goroutine count and returns a check to
// run (or defer) after the test has torn everything down. The check polls —
// forcing a GC each round so finalizer-driven cleanup can run — until the
// count settles back to within slack of the baseline, and fails the test
// with a full goroutine stack dump if it never does.
//
// The slack absorbs the runtime's own background goroutines and test
// harness machinery; 3 matches what the chaos suite has always tolerated.
// Call the guard FIRST in the test, before creating any system under test,
// so the baseline excludes everything the test is responsible for reaping.
func GoroutineLeakGuard(t testing.TB, slack int) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			n := runtime.NumGoroutine()
			if n <= baseline+slack {
				return
			}
			if time.Now().After(deadline) {
				var buf bytes.Buffer
				_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
				t.Fatalf("goroutine leak: %d live, baseline %d (slack %d)\n%s",
					n, baseline, slack, buf.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
