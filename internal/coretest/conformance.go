// Package coretest provides a reusable conformance suite for implementations
// of the core.Watchable contract. Every storage×notification wiring in the
// repository (the four Figure 3 quadrants) must pass it; this is what makes
// "the watch contract is store-agnostic" a tested property rather than a
// slogan.
package coretest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// Env is one system under test: a Watchable over some store, plus a way to
// commit a keyed change and to read the source's current version.
type Env struct {
	// Watch is the implementation under test.
	Watch core.Watchable
	// Put commits a change for key k with payload v and returns the version
	// it committed at. For append-only stores the "key" identifies a series.
	Put func(k keyspace.Key, v []byte) core.Version
	// KeyOf maps a delivered event back to the logical key given to Put
	// (identity for KV stores; series extraction for ingestion stores).
	KeyOf func(ev core.ChangeEvent) keyspace.Key
	// Close releases the system.
	Close func()
}

// Factory builds a fresh Env. hubCfg suggests soft-state sizing; small
// Retention values must translate into eviction behaviour (resyncs).
type Factory func(hubCfg core.HubConfig) Env

// Run exercises the Watchable contract against the factory.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name+"/DeliversInPerKeyOrder", func(t *testing.T) { runOrder(t, factory) })
	t.Run(name+"/RangeFiltering", func(t *testing.T) { runRangeFilter(t, factory) })
	t.Run(name+"/ProgressReachesSourceVersion", func(t *testing.T) { runProgress(t, factory) })
	t.Run(name+"/ResyncOnEvictedHistory", func(t *testing.T) { runResync(t, factory) })
	t.Run(name+"/CancelStopsDelivery", func(t *testing.T) { runCancel(t, factory) })
	t.Run(name+"/WatchValidation", func(t *testing.T) { runValidation(t, factory) })
	t.Run(name+"/TracedStagesComplete", func(t *testing.T) { runTracing(t, factory) })
}

func bigHub() core.HubConfig {
	return core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 18}
}

func wait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("conformance: timed out waiting for %s", what)
}

func runOrder(t *testing.T, factory Factory) {
	env := factory(bigHub())
	defer env.Close()
	var mu sync.Mutex
	seen := map[keyspace.Key][]core.Version{}
	total := 0
	cancel, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			mu.Lock()
			k := env.KeyOf(ev)
			seen[k] = append(seen[k], ev.Version)
			total++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	const n = 300
	for i := 0; i < n; i++ {
		env.Put(keyspace.Key(fmt.Sprintf("k%d", i%7)), []byte{byte(i)})
	}
	wait(t, "all events", func() bool { mu.Lock(); defer mu.Unlock(); return total == n })
	mu.Lock()
	defer mu.Unlock()
	for k, versions := range seen {
		for i := 1; i < len(versions); i++ {
			if versions[i] <= versions[i-1] {
				t.Fatalf("per-key order violated for %q: %v", string(k), versions)
			}
		}
	}
}

func runRangeFilter(t *testing.T, factory Factory) {
	env := factory(bigHub())
	defer env.Close()
	var mu sync.Mutex
	var got []keyspace.Key
	r := keyspace.Prefix("in/")
	cancel, err := env.Watch.Watch(r, core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			mu.Lock()
			got = append(got, env.KeyOf(ev))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	env.Put("in/a", []byte("1"))
	env.Put("out/a", []byte("2"))
	env.Put("in/b", []byte("3"))
	wait(t, "in-range events", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 2 })
	mu.Lock()
	defer mu.Unlock()
	for _, k := range got {
		if !r.Contains(k+"#") && !r.Contains(k) {
			t.Fatalf("out-of-range key delivered: %q", string(k))
		}
	}
}

func runProgress(t *testing.T, factory Factory) {
	env := factory(bigHub())
	defer env.Close()
	var mu sync.Mutex
	var frontier core.Version
	cancel, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Progress: func(p core.ProgressEvent) {
			mu.Lock()
			if p.Version > frontier {
				frontier = p.Version
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var last core.Version
	for i := 0; i < 50; i++ {
		last = env.Put("k", []byte{byte(i)})
	}
	wait(t, "frontier reaches source", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return frontier >= last
	})
	// Progress never overtakes what was committed.
	mu.Lock()
	defer mu.Unlock()
	if frontier > last {
		t.Fatalf("frontier %v beyond source version %v", frontier, last)
	}
}

func runResync(t *testing.T, factory Factory) {
	env := factory(core.HubConfig{Retention: 8, WatcherBuffer: 64})
	defer env.Close()
	var last core.Version
	for i := 0; i < 100; i++ {
		last = env.Put(keyspace.Key(fmt.Sprintf("k%d", i%5)), []byte{byte(i)})
	}
	// Watching from long-evicted history must resync, never silently gap.
	var mu sync.Mutex
	var resyncs []core.ResyncEvent
	events := 0
	cancel, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event:  func(core.ChangeEvent) { mu.Lock(); events++; mu.Unlock() },
		Resync: func(r core.ResyncEvent) { mu.Lock(); resyncs = append(resyncs, r); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	wait(t, "resync", func() bool { mu.Lock(); defer mu.Unlock(); return len(resyncs) == 1 })
	mu.Lock()
	defer mu.Unlock()
	if events != 0 {
		t.Fatalf("gapped stream delivered %d events before resync", events)
	}
	if resyncs[0].MinVersion == core.NoVersion || resyncs[0].MinVersion > last {
		t.Fatalf("resync MinVersion %v out of bounds (source at %v)", resyncs[0].MinVersion, last)
	}
}

func runCancel(t *testing.T, factory Factory) {
	env := factory(bigHub())
	defer env.Close()
	var mu sync.Mutex
	events := 0
	cancel, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { mu.Lock(); events++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Put("k", []byte("1"))
	wait(t, "first event", func() bool { mu.Lock(); defer mu.Unlock(); return events == 1 })
	cancel()
	cancel() // idempotent
	env.Put("k", []byte("2"))
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if events != 1 {
		t.Fatalf("delivery after cancel: %d events", events)
	}
}

// runTracing asserts the tracing contract: with sampling at 1-in-1, every
// event the source commits yields a completed trace whose four stages
// (commit, append, enqueue, deliver) are all stamped in non-decreasing
// order. This is what makes "the pipeline is traceable end to end" a tested
// property of every Ingester wiring, not just of the hub.
func runTracing(t *testing.T, factory Factory) {
	tracer := trace.New(trace.Config{
		SampleEvery: 1,
		Capacity:    1 << 10,
		MaxInflight: 1 << 10,
		Metrics:     metrics.NewRegistry(),
	})
	cfg := bigHub()
	cfg.Tracer = tracer
	env := factory(cfg)
	defer env.Close()

	delivered := 0
	var mu sync.Mutex
	cancel, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			mu.Lock()
			delivered++
			mu.Unlock()
			if ev.Trace == 0 {
				t.Errorf("1-in-1 sampling delivered an untraced event: %v", ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const n = 64
	for i := 0; i < n; i++ {
		env.Put(keyspace.Key(fmt.Sprintf("k%d", i%5)), []byte{byte(i)})
	}
	wait(t, "all traces complete", func() bool { return tracer.CompletedCount() >= n })

	done := tracer.Completed()
	if len(done) < n {
		t.Fatalf("completed ring holds %d traces, want >= %d", len(done), n)
	}
	for _, tr := range done {
		if !tr.Complete() {
			t.Fatalf("incomplete trace in completed ring: %+v", tr)
		}
		// Stamps must be monotone across the stages that were reached;
		// stages past the trace's final stage (the remote hops, for an
		// in-process pipeline) legitimately stay zero.
		prev := 0
		for s := 1; s < trace.NumStages; s++ {
			if tr.Stages[s] == 0 {
				continue
			}
			if tr.Stages[s] < tr.Stages[prev] {
				t.Fatalf("stage %v stamped before stage %v: %+v",
					trace.Stage(s), trace.Stage(prev), tr)
			}
			prev = s
		}
	}
	if tracer.InflightCount() != 0 {
		t.Fatalf("%d traces stuck in flight after full delivery", tracer.InflightCount())
	}
}

func runValidation(t *testing.T, factory Factory) {
	env := factory(bigHub())
	defer env.Close()
	if _, err := env.Watch.Watch(keyspace.Full(), core.NoVersion, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if _, err := env.Watch.Watch(keyspace.Range{}, core.NoVersion, core.Funcs{}); err == nil {
		t.Fatal("empty range accepted")
	}
}
