package coretest

import (
	"testing"

	"unbundle/internal/core"
	"unbundle/internal/ingeststore"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
)

// TestConformance runs the Watchable conformance suite against all four
// Figure 3 quadrants.
func TestConformance(t *testing.T) {
	Run(t, "producer-store-builtin", func(cfg core.HubConfig) Env {
		ws := mvcc.NewWatchableStore(cfg)
		return Env{
			Watch: ws,
			Put:   func(k keyspace.Key, v []byte) core.Version { return ws.Put(k, v) },
			KeyOf: func(ev core.ChangeEvent) keyspace.Key { return ev.Key },
			Close: ws.Close,
		}
	})

	Run(t, "producer-store-external-hub", func(cfg core.HubConfig) Env {
		st := mvcc.NewStore()
		st.SetTracer(cfg.Tracer)
		hub := core.NewHub(cfg)
		detach := st.AttachCDC(keyspace.Full(), hub)
		return Env{
			Watch: hub,
			Put:   func(k keyspace.Key, v []byte) core.Version { return st.Put(k, v) },
			KeyOf: func(ev core.ChangeEvent) keyspace.Key { return ev.Key },
			Close: func() { detach(); hub.Close() },
		}
	})

	Run(t, "ingest-store-builtin", func(cfg core.HubConfig) Env {
		ing := ingeststore.NewWatchable(ingeststore.Config{}, cfg)
		return Env{
			Watch: ing,
			Put: func(k keyspace.Key, v []byte) core.Version {
				return ing.Append(k, v).Seq
			},
			KeyOf: seriesOf,
			Close: ing.Close,
		}
	})

	Run(t, "ingest-store-external-hub", func(cfg core.HubConfig) Env {
		ing := ingeststore.NewStore(ingeststore.Config{Tracer: cfg.Tracer})
		hub := core.NewHub(cfg)
		detach := ing.AttachIngester(hub)
		return Env{
			Watch: hub,
			Put: func(k keyspace.Key, v []byte) core.Version {
				return ing.Append(k, v).Seq
			},
			KeyOf: seriesOf,
			Close: func() { detach(); hub.Close() },
		}
	})
}

// seriesOf maps "<series>#<seq>" event keys back to their series.
func seriesOf(ev core.ChangeEvent) keyspace.Key {
	s := string(ev.Key)
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			return keyspace.Key(s[:i])
		}
	}
	return ev.Key
}
