// Package pubsub implements the baseline under critique: a Kafka-class
// publish-subscribe broker with partitioned durable logs, consumer groups,
// bounded retention with background garbage collection, key compaction,
// free consumers, seek/replay and dead-letter queues.
//
// The broker is implemented sympathetically — it provides exactly the
// guarantees real systems provide (per-partition ordering, at-least-once
// delivery to consumer groups, durable buffering) — so that the failures the
// experiments measure are consequences of the pubsub *contract* the paper
// analyzes, not of a strawman implementation:
//
//   - retention GC destroys unconsumed messages without informing consumers
//     (§3.1): the broker silently resets a backlogged group's offsets to the
//     new log start, exactly like auto.offset.reset=earliest;
//   - compaction erases intermediate versions unseen by slow subscribers;
//   - routing is static (key-hash → partition → assigned member) and cannot
//     follow dynamically sharded consumers (§3.2.2);
//   - per-partition serial delivery means one slow message blocks every key
//     sharing the partition (§3.2.3 head-of-line blocking).
package pubsub

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/flightrec"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
	"unbundle/internal/wal"
)

// Broker errors.
var (
	ErrNoTopic   = errors.New("pubsub: no such topic")
	ErrTopicUsed = errors.New("pubsub: topic already exists")
	ErrClosed    = errors.New("pubsub: broker closed")
)

// Message is one delivered message.
type Message struct {
	Topic       string
	Partition   int
	Offset      int64
	Key         keyspace.Key
	Value       []byte
	PublishTime time.Time
	Attempt     int // delivery attempt number for this subscription (1 = first)
	// Trace is the message's sampled trace ID (0 = untraced), carried from
	// publish through the log so poll-side stages stamp the same trace.
	Trace trace.ID
}

// TopicConfig configures a topic at creation.
type TopicConfig struct {
	// Partitions is the number of partitions (default 4). Partitioning is
	// static for the topic's lifetime, as in production systems.
	Partitions int
	// Retention bounds message age; 0 keeps messages forever. GC runs in the
	// background at whole-segment granularity.
	Retention time.Duration
	// RetentionBytes bounds per-partition log size; 0 is unlimited.
	RetentionBytes int64
	// Compacted enables key compaction: history older than CompactionLag
	// collapses to the last value per key.
	Compacted bool
	// CompactionLag is the dirty window within which every version is kept
	// (default 1 minute when Compacted).
	CompactionLag time.Duration
	// Segment tunes the underlying logs.
	Segment wal.Config
}

func (c *TopicConfig) applyDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Compacted && c.CompactionLag <= 0 {
		c.CompactionLag = time.Minute
	}
}

// BrokerConfig configures the broker.
type BrokerConfig struct {
	// Clock drives publish timestamps, retention and compaction. Defaults to
	// the real clock; experiments inject a fake one.
	Clock clockwork.Clock
	// GCInterval is how often retention/compaction run (default 1s).
	GCInterval time.Duration
	// Metrics is the registry the broker's instruments register in; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, when non-nil, samples published messages so the baseline's
	// publish→log-append→fetch→poll pipeline reports the same stage
	// latencies as the watch path — the apples-to-apples instrumentation the
	// comparison experiments need.
	Tracer *trace.Tracer
	// Recorder, when non-nil, receives flight records for the broker's loss
	// events: retention-GC drops, silent offset resets, DLQ routing and
	// nack drops — the black box's view of the contract failures §3 analyzes.
	Recorder *flightrec.Recorder
	// Governor, when non-nil, charges the retained log payload of every topic
	// to its "pubsub" account, so comparison experiments run the baseline and
	// the watch stack under one memory budget. The broker is deliberately NOT
	// admission-controlled: its contract sheds memory by destroying unconsumed
	// history (retention GC), which is exactly the silent-loss failure mode
	// the governed watch stack exists to replace.
	Governor *govern.Governor
}

// brokerMetrics holds the broker's registry instruments, resolved once so
// hot paths pay only an atomic add. The silent-reset and skipped counters
// mirror the per-group oracle counters: the consumer-visible API still
// carries no error (the paper's point), but the operator plane now sees
// every loss as it happens.
type brokerMetrics struct {
	published, delivered, acked, nacked *metrics.Counter
	redelivered, deadLettered           *metrics.Counter
	nackDrops                           *metrics.Counter
	silentResets, skippedMsgs           *metrics.Counter
	gcRecords, compactedAway            *metrics.Counter
	deliverLatency                      *metrics.Histogram
}

func newBrokerMetrics(reg *metrics.Registry) brokerMetrics {
	reg = reg.Or()
	return brokerMetrics{
		published:      reg.Counter("pubsub_published_total"),
		delivered:      reg.Counter("pubsub_delivered_total"),
		acked:          reg.Counter("pubsub_acked_total"),
		nacked:         reg.Counter("pubsub_nacked_total"),
		redelivered:    reg.Counter("pubsub_redelivered_total"),
		deadLettered:   reg.Counter("pubsub_dead_lettered_total"),
		nackDrops:      reg.Counter("pubsub_nack_drops_total"),
		silentResets:   reg.Counter("pubsub_silent_resets_total"),
		skippedMsgs:    reg.Counter("pubsub_skipped_messages_total"),
		gcRecords:      reg.Counter("pubsub_gc_records_total"),
		compactedAway:  reg.Counter("pubsub_compacted_away_total"),
		deliverLatency: reg.Histogram("pubsub_deliver_latency_ns"),
	}
}

// Broker is an in-process pubsub broker. Safe for concurrent use.
type Broker struct {
	clock  clockwork.Clock
	reg    *metrics.Registry
	met    brokerMetrics
	tracer *trace.Tracer
	rec    *flightrec.Recorder
	acct   *govern.Account // governor's "pubsub" account; nil when ungoverned

	mu     sync.Mutex
	topics map[string]*topic
	closed bool
	stopGC chan struct{}
	gcDone chan struct{}
}

// newTopicCond builds the condition variable waking blocked consumers.
func newTopicCond(t *topic) *sync.Cond { return sync.NewCond(&t.mu) }

// topic bundles the partition logs and the groups subscribed to them.
type topic struct {
	name string
	cfg  TopicConfig

	mu        sync.Mutex
	parts     []*wal.Log
	groups    map[string]*Group
	published int64
	// rrNext is the dedicated round-robin cursor for unkeyed messages.
	// Indexing by `published` (which also counts keyed messages) skewed
	// mixed workloads: every keyed publish advanced the unkeyed cursor too.
	rrNext int64
	// cond wakes blocking consumers when new data or assignments arrive.
	cond *sync.Cond
}

// NewBroker starts a broker; Close releases its background GC loop.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = time.Second
	}
	b := &Broker{
		clock:  cfg.Clock,
		reg:    cfg.Metrics.Or(),
		met:    newBrokerMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
		rec:    cfg.Recorder,
		topics: make(map[string]*topic),
		stopGC: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	if cfg.Governor != nil {
		b.acct = cfg.Governor.Account("pubsub")
	}
	go b.gcLoop(cfg.GCInterval)
	return b
}

// CreateTopic registers a topic.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	cfg.applyDefaults()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicUsed, name)
	}
	t := &topic{name: name, cfg: cfg, groups: make(map[string]*Group)}
	t.cond = newTopicCond(t)
	for i := 0; i < cfg.Partitions; i++ {
		t.parts = append(t.parts, wal.NewLog(cfg.Segment))
	}
	b.topics[name] = t
	return nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, name)
	}
	return t, nil
}

// Publish appends a message. Keyed messages go to the key's hash partition —
// the static routing §3 analyzes; unkeyed messages round-robin.
func (b *Broker) Publish(topicName string, key keyspace.Key, value []byte) (partition int, offset int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	now := b.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if key != "" {
		partition = keyspace.HashPartition(key, len(t.parts))
	} else {
		partition = int(t.rrNext % int64(len(t.parts)))
		t.rrNext++
	}
	var traceID trace.ID
	if b.tracer.Enabled() {
		traceID = b.tracer.Begin(key, 0)
	}
	offset = t.parts[partition].AppendTraced(key, value, now, traceID)
	if traceID != 0 {
		// The log offset is the baseline's "version"; it exists only now.
		b.tracer.SetVersion(traceID, uint64(offset))
		b.tracer.Record(traceID, trace.StageAppend)
	}
	t.published++
	t.cond.Broadcast()
	b.met.published.Inc()
	// Charge exactly what the wal retains per record (len(key)+len(value));
	// RunGC releases the same formula via per-partition Stats().Bytes deltas,
	// so charge and release can never drift.
	if b.acct != nil {
		b.acct.Charge(int64(len(key) + len(value)))
	}
	return partition, offset, nil
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

// gcLoop applies retention and compaction on every tick, like a broker's
// log-cleaner thread. Consumers are not consulted and not informed.
func (b *Broker) gcLoop(interval time.Duration) {
	defer close(b.gcDone)
	tick := b.clock.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-b.stopGC:
			return
		case <-tick.C():
			b.RunGC()
		}
	}
}

// RunGC applies retention and compaction once, immediately. The GC ticker
// calls it periodically; deterministic tests call it directly.
func (b *Broker) RunGC() {
	b.mu.Lock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	now := b.clock.Now()
	var gcedDelta, compactedDelta, freedBytes int64
	for _, t := range topics {
		t.mu.Lock()
		var topicGCed int64
		for _, p := range t.parts {
			before := p.Stats()
			if t.cfg.Retention > 0 {
				p.RetainSince(now.Add(-t.cfg.Retention))
			}
			if t.cfg.RetentionBytes > 0 {
				p.RetainBytes(t.cfg.RetentionBytes)
			}
			if t.cfg.Compacted {
				p.Compact(now.Add(-t.cfg.CompactionLag))
			}
			after := p.Stats()
			topicGCed += after.GCedRecords - before.GCedRecords
			compactedDelta += after.CompactedAway - before.CompactedAway
			freedBytes += before.Bytes - after.Bytes
		}
		gcedDelta += topicGCed
		t.cond.Broadcast() // wake consumers so they observe resets promptly
		t.mu.Unlock()
		if topicGCed > 0 {
			// One record per topic per GC pass, not per destroyed message.
			b.rec.Record(flightrec.KindGCDrop, flightrec.Event{
				Comp: "pubsub.broker", N: topicGCed, Detail: t.name,
			})
		}
	}
	b.met.gcRecords.Add(gcedDelta)
	b.met.compactedAway.Add(compactedDelta)
	if freedBytes > 0 {
		b.acct.Release(freedBytes)
	}
}

// TopicStats aggregates a topic's counters; the GC-loss oracle in the
// experiments reads GCedRecords/CompactedAway from here — information the
// pubsub contract gives the operator but never the consumer.
type TopicStats struct {
	Published     int64
	Retained      int
	GCedRecords   int64
	CompactedAway int64
	BytesAppended int64 // hard-state write volume (E10)
	BytesRetained int64
	Groups        int
}

// Stats returns a topic's counters.
func (b *Broker) Stats(topicName string) (TopicStats, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return TopicStats{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TopicStats{Published: t.published, Groups: len(t.groups)}
	for _, p := range t.parts {
		ps := p.Stats()
		st.Retained += ps.Records
		st.GCedRecords += ps.GCedRecords
		st.CompactedAway += ps.CompactedAway
		st.BytesAppended += ps.BytesAppended
		st.BytesRetained += ps.Bytes
	}
	return st, nil
}

// Close stops the broker's GC loop and rejects further operations.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	close(b.stopGC)
	<-b.gcDone
	// Wake any blocked consumers so they observe closure, and hand the
	// retained payload back to the governor.
	var retained int64
	for _, t := range topics {
		t.mu.Lock()
		t.cond.Broadcast()
		if b.acct != nil {
			for _, p := range t.parts {
				retained += p.Stats().Bytes
			}
		}
		t.mu.Unlock()
	}
	b.acct.Release(retained)
}
