package pubsub

import "unbundle/internal/wal"

// walSmallSegments makes segments roll quickly so retention/compaction (which
// operate on sealed segments) have material to work with in small tests.
func walSmallSegments() wal.Config {
	return wal.Config{SegmentMaxRecords: 8}
}
