package pubsub

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"unbundle/internal/wal"
)

// topicImage is the serialized form of a topic: one WAL blob per partition.
// Group offsets are deliberately not part of the image — in real systems
// they live in their own (also truncatable) store, and restoring a topic
// without its groups is exactly the situation in which consumers discover
// how little the offset contract protects them.
type topicImage struct {
	Partitions [][]byte
}

// SaveTopic serializes a topic's retained log contents (all partitions).
func (b *Broker) SaveTopic(name string) ([]byte, error) {
	t, err := b.topic(name)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	img := topicImage{Partitions: make([][]byte, len(t.parts))}
	for i, p := range t.parts {
		data, err := p.Marshal()
		if err != nil {
			return nil, fmt.Errorf("pubsub: save %q partition %d: %w", name, i, err)
		}
		img.Partitions[i] = data
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("pubsub: save %q: %w", name, err)
	}
	return buf.Bytes(), nil
}

// RestoreTopic creates a topic from a SaveTopic image. The topic must not
// already exist; cfg's partition count must match the image.
func (b *Broker) RestoreTopic(name string, cfg TopicConfig, data []byte) error {
	var img topicImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("pubsub: restore %q: %w", name, err)
	}
	cfg.applyDefaults()
	if cfg.Partitions != len(img.Partitions) {
		return fmt.Errorf("pubsub: restore %q: config has %d partitions, image has %d",
			name, cfg.Partitions, len(img.Partitions))
	}
	parts := make([]*wal.Log, len(img.Partitions))
	var published int64
	for i, blob := range img.Partitions {
		log, err := wal.Unmarshal(blob, cfg.Segment)
		if err != nil {
			return fmt.Errorf("pubsub: restore %q partition %d: %w", name, i, err)
		}
		parts[i] = log
		published += log.NextOffset()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicUsed, name)
	}
	t := &topic{name: name, cfg: cfg, groups: make(map[string]*Group), parts: parts, published: published}
	t.cond = newTopicCond(t)
	b.topics[name] = t
	return nil
}
