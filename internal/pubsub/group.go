package pubsub

import (
	"errors"
	"fmt"
	"sort"

	"unbundle/internal/flightrec"
	"unbundle/internal/trace"
	"unbundle/internal/wal"
)

// Group errors.
var (
	ErrLeft      = errors.New("pubsub: consumer has left the group")
	ErrDupMember = errors.New("pubsub: member id already in group")
)

// GroupConfig configures a consumer group.
type GroupConfig struct {
	// MaxDeliveries bounds redelivery attempts per message; 0 means retry
	// forever (which is where unbounded head-of-line blocking comes from).
	MaxDeliveries int
	// DeadLetterTopic, when set with MaxDeliveries, receives messages that
	// exhausted their attempts — the §3.3 "ad hoc API" that patches over the
	// blocking problem by converting it into silent sidelining.
	DeadLetterTopic string
	// StartAtEarliest makes a new group begin at the log start instead of
	// the head.
	StartAtEarliest bool
}

// Group is a consumer group over one topic: each partition is owned by at
// most one member, messages are delivered serially per partition, and a
// message is redelivered until acknowledged (at-least-once).
type Group struct {
	name   string
	t      *topic
	broker *Broker
	cfg    GroupConfig

	// All group state is guarded by t.mu (the topic lock), so publishes,
	// rebalances and polls serialize naturally and t.cond can wake waiters.
	members    []string
	generation int
	assignment map[int]string // partition -> member id
	committed  []int64        // next offset to deliver, per partition
	inflight   []int64        // outstanding offset per partition, -1 = none
	attempts   []int          // attempts for the offset at committed[p]
	lastTried  []int64        // offset the attempts counter refers to

	delivered    int64
	acked        int64
	redelivered  int64
	deadLettered int64
	dropped      int64 // exhausted MaxDeliveries with no DLQ configured
	silentResets int64
	skippedMsgs  int64 // messages jumped over by silent resets (GC loss)
}

// Group returns (creating if needed) the named consumer group on a topic.
// The configuration is fixed by the first creator.
func (b *Broker) Group(topicName, groupName string, cfg GroupConfig) (*Group, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.groups[groupName]; ok {
		return g, nil
	}
	g := &Group{
		name:       groupName,
		t:          t,
		broker:     b,
		cfg:        cfg,
		assignment: make(map[int]string),
		committed:  make([]int64, len(t.parts)),
		inflight:   make([]int64, len(t.parts)),
		attempts:   make([]int, len(t.parts)),
		lastTried:  make([]int64, len(t.parts)),
	}
	for p := range t.parts {
		g.inflight[p] = -1
		g.lastTried[p] = -1
		if cfg.StartAtEarliest {
			g.committed[p] = t.parts[p].EarliestOffset()
		} else {
			g.committed[p] = t.parts[p].NextOffset()
		}
	}
	t.groups[groupName] = g
	// Lag is derived state: computing it on every ack would tax the hot
	// path, so it is registered as a gauge function evaluated at scrape.
	b.reg.GaugeFunc("pubsub_group_lag_"+topicName+"_"+groupName, g.Lag)
	return g, nil
}

// Consumer is one group member's handle.
type Consumer struct {
	g    *Group
	id   string
	rr   int // round-robin cursor over partitions
	left bool
}

// Join adds a member and rebalances. Uncommitted in-flight messages on
// reassigned partitions will be redelivered to their new owners.
func (g *Group) Join(memberID string) (*Consumer, error) {
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	for _, m := range g.members {
		if m == memberID {
			return nil, fmt.Errorf("%w: %q", ErrDupMember, memberID)
		}
	}
	g.members = append(g.members, memberID)
	g.rebalanceLocked()
	return &Consumer{g: g, id: memberID}, nil
}

// rebalanceLocked redistributes partitions round-robin over sorted members,
// bumps the generation and drops in-flight deliveries (their offsets remain
// uncommitted, so the new owners redeliver them: at-least-once).
func (g *Group) rebalanceLocked() {
	sort.Strings(g.members)
	g.generation++
	g.assignment = make(map[int]string)
	for p := range g.t.parts {
		if len(g.members) > 0 {
			g.assignment[p] = g.members[p%len(g.members)]
		}
		g.inflight[p] = -1
	}
	g.t.cond.Broadcast()
}

// Leave removes the member and rebalances.
func (c *Consumer) Leave() {
	c.g.t.mu.Lock()
	defer c.g.t.mu.Unlock()
	if c.left {
		return
	}
	c.left = true
	for i, m := range c.g.members {
		if m == c.id {
			c.g.members = append(c.g.members[:i], c.g.members[i+1:]...)
			break
		}
	}
	c.g.rebalanceLocked()
}

// Poll returns the next available message from one of the member's assigned
// partitions (round-robin), or ok=false when nothing is deliverable right
// now. Delivery is serial per partition: a partition with an unacknowledged
// message delivers nothing further — the ordering guarantee that causes
// head-of-line blocking (§3.2.3).
func (c *Consumer) Poll() (Message, bool, error) {
	c.g.t.mu.Lock()
	msg, ok, err := c.pollLocked()
	c.g.t.mu.Unlock()
	if ok {
		c.g.observeDeliverLatency(msg)
	}
	return msg, ok, err
}

// observeDeliverLatency records the publish→deliver latency of msg. Called
// outside the topic lock: the clock read and the histogram's own lock never
// extend the broker's critical sections.
func (g *Group) observeDeliverLatency(msg Message) {
	if lat := g.broker.clock.Now().Sub(msg.PublishTime); lat >= 0 {
		g.broker.met.deliverLatency.ObserveDuration(lat)
	}
	if msg.Trace != 0 {
		g.broker.tracer.Record(msg.Trace, trace.StageDeliver)
	}
}

func (c *Consumer) pollLocked() (Message, bool, error) {
	g := c.g
	if c.left {
		return Message{}, false, ErrLeft
	}
	n := len(g.t.parts)
	for i := 0; i < n; i++ {
		p := (c.rr + i) % n
		if g.assignment[p] != c.id || g.inflight[p] != -1 {
			continue
		}
		msg, ok := g.readLocked(p)
		if !ok {
			continue
		}
		c.rr = p + 1
		return msg, true, nil
	}
	return Message{}, false, nil
}

// readLocked fetches the record at the committed cursor of partition p,
// handling GC resets silently, exactly as auto.offset.reset does.
func (g *Group) readLocked(p int) (Message, bool) {
	log := g.t.parts[p]
	for {
		recs, _, err := log.ReadBatch(g.committed[p], 1)
		var oor *wal.OutOfRangeError
		if errors.As(err, &oor) {
			// The backlog was garbage collected. The consumer is *not*
			// informed; the group's cursor silently jumps to the new start
			// of the log and the skipped messages are simply gone (§3.1).
			if oor.Earliest > g.committed[p] {
				skipped := oor.Earliest - g.committed[p]
				g.skippedMsgs += skipped
				g.broker.met.skippedMsgs.Add(skipped)
				g.committed[p] = oor.Earliest
				g.silentResets++
				g.broker.met.silentResets.Inc()
				// The consumer-side face of a GC drop: the cursor jumped and
				// the group never hears about it — but the black box does.
				g.broker.rec.Record(flightrec.KindGCDrop, flightrec.Event{
					Comp: "pubsub.group", ID: int64(p), Version: uint64(oor.Earliest),
					N: skipped, Detail: g.t.name + "/" + g.name + " silent reset",
				})
				continue
			}
			return Message{}, false
		}
		if err != nil || len(recs) == 0 {
			return Message{}, false
		}
		rec := recs[0]
		if g.lastTried[p] == rec.Offset {
			g.attempts[p]++
			g.redelivered++
			g.broker.met.redelivered.Inc()
		} else {
			g.lastTried[p] = rec.Offset
			g.attempts[p] = 1
		}
		g.inflight[p] = rec.Offset
		g.delivered++
		g.broker.met.delivered.Inc()
		if rec.Trace != 0 {
			// The fetch is the pull model's enqueue-equivalent: the moment
			// the message becomes consumer-visible.
			g.broker.tracer.Record(rec.Trace, trace.StageEnqueue)
		}
		return Message{
			Topic:       g.t.name,
			Partition:   p,
			Offset:      rec.Offset,
			Key:         rec.Key,
			Value:       rec.Value,
			PublishTime: rec.Time,
			Attempt:     g.attempts[p],
			Trace:       rec.Trace,
		}, true
	}
}

// Ack commits the message's offset. Acks for messages the member no longer
// owns (it was rebalanced away) are ignored and report false — the stale-
// owner acknowledgment of Figure 2 is accepted only while the pubsub system
// still believes the old owner is the owner, which is precisely the window
// the experiment exploits.
func (c *Consumer) Ack(msg Message) bool {
	g := c.g
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	p := msg.Partition
	if p < 0 || p >= len(g.t.parts) || c.left || g.assignment[p] != c.id || g.inflight[p] != msg.Offset {
		return false
	}
	g.committed[p] = msg.Offset + 1
	g.inflight[p] = -1
	g.acked++
	g.broker.met.acked.Inc()
	g.t.cond.Broadcast()
	return true
}

// Nack abandons the delivery attempt. The message is redelivered unless it
// has exhausted MaxDeliveries, in which case it is committed past: moved to
// the dead-letter topic when one is configured, otherwise dropped (and
// counted) — MaxDeliveries bounds redelivery in both configurations, so a
// poison message can never block its partition forever.
func (c *Consumer) Nack(msg Message) {
	g := c.g
	dlqPublish := false
	g.t.mu.Lock()
	p := msg.Partition
	if p >= 0 && p < len(g.t.parts) && !c.left && g.assignment[p] == c.id && g.inflight[p] == msg.Offset {
		g.inflight[p] = -1
		g.broker.met.nacked.Inc()
		if g.cfg.MaxDeliveries > 0 && g.attempts[p] >= g.cfg.MaxDeliveries {
			g.committed[p] = msg.Offset + 1
			if g.cfg.DeadLetterTopic != "" {
				g.deadLettered++
				g.broker.met.deadLettered.Inc()
				g.broker.rec.Record(flightrec.KindDLQRoute, flightrec.Event{
					Comp: "pubsub.group", ID: msg.Offset, Trace: msg.Trace,
					N: int64(g.attempts[p]), Detail: g.t.name + "/" + g.name + "→" + g.cfg.DeadLetterTopic,
				})
				dlqPublish = true
			} else {
				g.dropped++
				g.broker.met.nackDrops.Inc()
				g.broker.rec.Record(flightrec.KindNackDrop, flightrec.Event{
					Comp: "pubsub.group", ID: msg.Offset, Trace: msg.Trace,
					N: int64(g.attempts[p]), Detail: g.t.name + "/" + g.name,
				})
			}
		}
		g.t.cond.Broadcast()
	}
	g.t.mu.Unlock()
	if dlqPublish {
		// Publish outside the topic lock; the DLQ is just another topic.
		_, _, _ = g.broker.Publish(g.cfg.DeadLetterTopic, msg.Key, msg.Value)
	}
}

// PollBlocking waits until a message is available, the stop channel closes,
// or the consumer leaves.
func (c *Consumer) PollBlocking(stop <-chan struct{}) (Message, bool, error) {
	// A waker goroutine converts stop-channel closure into a broadcast.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			c.g.t.mu.Lock()
			c.g.t.cond.Broadcast()
			c.g.t.mu.Unlock()
		case <-done:
		}
	}()
	c.g.t.mu.Lock()
	for {
		select {
		case <-stop:
			c.g.t.mu.Unlock()
			return Message{}, false, nil
		default:
		}
		msg, ok, err := c.pollLocked()
		if ok || err != nil {
			c.g.t.mu.Unlock()
			if ok {
				c.g.observeDeliverLatency(msg)
			}
			return msg, ok, err
		}
		c.g.t.cond.Wait()
	}
}

// Seek moves a partition's cursor (the GCP-style replay API of §3.3). Any
// in-flight delivery on the partition is dropped.
func (g *Group) Seek(partition int, offset int64) error {
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	if partition < 0 || partition >= len(g.t.parts) {
		return fmt.Errorf("pubsub: partition %d out of range", partition)
	}
	g.committed[partition] = offset
	g.inflight[partition] = -1
	g.t.cond.Broadcast()
	return nil
}

// Snapshot captures the group's committed offsets (GCP's "snapshot").
func (g *Group) Snapshot() map[int]int64 {
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	out := make(map[int]int64, len(g.committed))
	for p, off := range g.committed {
		out[p] = off
	}
	return out
}

// SeekSnapshot rewinds the group to a snapshot taken earlier.
func (g *Group) SeekSnapshot(snap map[int]int64) error {
	for p, off := range snap {
		if err := g.Seek(p, off); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the total number of retained messages not yet committed — the
// backlog. It cannot count messages already GC-ed from under the group;
// SkippedMessages reports those after the fact.
func (g *Group) Lag() int64 {
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	var lag int64
	for p, log := range g.t.parts {
		next := log.NextOffset()
		cur := g.committed[p]
		if cur < log.EarliestOffset() {
			cur = log.EarliestOffset()
		}
		if next > cur {
			lag += next - cur
		}
	}
	return lag
}

// GroupStats reports group counters. SilentResets and SkippedMessages are
// oracle-side observability: the *consumer-visible* API carries no error,
// which is the paper's point.
type GroupStats struct {
	Members         int
	Generation      int
	Delivered       int64
	Acked           int64
	Redelivered     int64
	DeadLettered    int64
	Dropped         int64 // exhausted MaxDeliveries without a DLQ
	SilentResets    int64
	SkippedMessages int64
	Lag             int64
}

// Stats returns the group's counters.
func (g *Group) Stats() GroupStats {
	lag := g.Lag()
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	return GroupStats{
		Members:         len(g.members),
		Generation:      g.generation,
		Delivered:       g.delivered,
		Acked:           g.acked,
		Redelivered:     g.redelivered,
		DeadLettered:    g.deadLettered,
		Dropped:         g.dropped,
		SilentResets:    g.silentResets,
		SkippedMessages: g.skippedMsgs,
		Lag:             lag,
	}
}

// Assignment returns the current partition→member map (for test assertions
// and the experiments' routing oracle).
func (g *Group) Assignment() map[int]string {
	g.t.mu.Lock()
	defer g.t.mu.Unlock()
	out := make(map[int]string, len(g.assignment))
	for p, m := range g.assignment {
		out[p] = m
	}
	return out
}
