package pubsub

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
)

func newTestBroker(t *testing.T, clock clockwork.Clock) *Broker {
	t.Helper()
	b := NewBroker(BrokerConfig{Clock: clock})
	t.Cleanup(b.Close)
	return b
}

func TestPublishPartitioning(t *testing.T) {
	b := newTestBroker(t, nil)
	if err := b.CreateTopic("t", TopicConfig{Partitions: 8}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", TopicConfig{}); !errors.Is(err, ErrTopicUsed) {
		t.Fatalf("duplicate create = %v", err)
	}
	// Keyed messages are stable per key.
	p1, _, err := b.Publish("t", "user/alpha", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	p2, o2, _ := b.Publish("t", "user/alpha", []byte("b"))
	if p1 != p2 {
		t.Fatalf("same key landed on partitions %d and %d", p1, p2)
	}
	if o2 != 1 {
		t.Fatalf("offset = %d, want 1", o2)
	}
	// Unkeyed messages round-robin.
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		p, _, _ := b.Publish("t", "", []byte("x"))
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatalf("round robin stuck on %v", seen)
	}
	if _, _, err := b.Publish("missing", "k", nil); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("missing topic = %v", err)
	}
}

func TestGroupDeliveryAndAck(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 2})
	g, err := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Join("m1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Publish("t", keyspace.NumericKey(i), []byte{byte(i)})
	}
	got := map[string]bool{}
	for len(got) < 10 {
		msg, ok, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stalled after %d messages", len(got))
		}
		if msg.Attempt != 1 {
			t.Fatalf("attempt = %d", msg.Attempt)
		}
		got[string(msg.Key)] = true
		if !c.Ack(msg) {
			t.Fatal("ack rejected")
		}
	}
	if st := g.Stats(); st.Delivered != 10 || st.Acked != 10 || st.Lag != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Nothing further.
	if _, ok, _ := c.Poll(); ok {
		t.Fatal("poll past head returned a message")
	}
}

func TestGroupSerialPerPartition(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m1")
	b.Publish("t", "a", []byte("1"))
	b.Publish("t", "b", []byte("2"))

	msg1, ok, _ := c.Poll()
	if !ok {
		t.Fatal("no first message")
	}
	// Second message is blocked behind the unacked first: the ordering
	// contract that creates head-of-line blocking.
	if _, ok, _ := c.Poll(); ok {
		t.Fatal("partition delivered concurrently")
	}
	c.Ack(msg1)
	msg2, ok, _ := c.Poll()
	if !ok || msg2.Offset != msg1.Offset+1 {
		t.Fatalf("second message = %+v ok=%v", msg2, ok)
	}
}

func TestGroupAtLeastOnceRedelivery(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m1")
	b.Publish("t", "k", []byte("v"))

	msg, _, _ := c.Poll()
	c.Nack(msg)
	again, ok, _ := c.Poll()
	if !ok || again.Offset != msg.Offset || again.Attempt != 2 {
		t.Fatalf("redelivery = %+v ok=%v", again, ok)
	}
	if st := g.Stats(); st.Redelivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGroupRebalanceRedeliversInflight(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 2})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c1, _ := g.Join("m1")
	for i := 0; i < 4; i++ {
		b.Publish("t", keyspace.NumericKey(i), []byte{byte(i)})
	}
	msg, ok, _ := c1.Poll()
	if !ok {
		t.Fatal("no message")
	}
	// m2 joins; rebalance drops inflight. m1's stale ack must be rejected if
	// the partition moved.
	c2, _ := g.Join("m2")
	assign := g.Assignment()
	if len(assign) != 2 || assign[0] == assign[1] {
		t.Fatalf("assignment after rebalance = %v", assign)
	}
	if assign[msg.Partition] != "m1" {
		if c1.Ack(msg) {
			t.Fatal("stale ack accepted after partition moved")
		}
	}
	// All four messages are eventually delivered and acked across members.
	acked := map[int64]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for len(acked) < 4 && time.Now().Before(deadline) {
		for _, c := range []*Consumer{c1, c2} {
			m, ok, err := c.Poll()
			if err != nil || !ok {
				continue
			}
			if c.Ack(m) {
				acked[int64(m.Partition)<<32|m.Offset] = true
			}
		}
	}
	if len(acked) != 4 {
		t.Fatalf("acked %d/4", len(acked))
	}
	c2.Leave()
	c2.Leave() // idempotent
	if _, _, err := c2.Poll(); !errors.Is(err, ErrLeft) {
		t.Fatalf("poll after leave = %v", err)
	}
}

func TestGroupJoinDuplicate(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{})
	g, _ := b.Group("t", "g", GroupConfig{})
	if _, err := g.Join("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join("m"); !errors.Is(err, ErrDupMember) {
		t.Fatalf("dup join = %v", err)
	}
}

func TestGroupStartAtHeadVsEarliest(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	b.Publish("t", "k", []byte("old"))

	gHead, _ := b.Group("t", "head", GroupConfig{})
	cHead, _ := gHead.Join("m")
	if _, ok, _ := cHead.Poll(); ok {
		t.Fatal("head group saw pre-join message")
	}
	gEarly, _ := b.Group("t", "early", GroupConfig{StartAtEarliest: true})
	cEarly, _ := gEarly.Join("m")
	if msg, ok, _ := cEarly.Poll(); !ok || string(msg.Value) != "old" {
		t.Fatalf("earliest group = %+v ok=%v", msg, ok)
	}
}

func TestRetentionGCSilentLoss(t *testing.T) {
	clock := clockwork.NewFake()
	b := newTestBroker(t, clock)
	b.CreateTopic("t", TopicConfig{
		Partitions: 1,
		Retention:  24 * time.Hour,
		Segment:    walSmallSegments(),
	})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m")

	// Publish 100 messages, consume 10, then stall for three days.
	for i := 0; i < 100; i++ {
		b.Publish("t", keyspace.NumericKey(i%10), []byte{byte(i)})
	}
	for i := 0; i < 10; i++ {
		msg, ok, _ := c.Poll()
		if !ok {
			t.Fatal("stalled early")
		}
		c.Ack(msg)
	}
	clock.Advance(72 * time.Hour)
	b.RunGC()

	st, _ := b.Stats("t")
	if st.GCedRecords == 0 {
		t.Fatal("retention GC did not run")
	}
	// The consumer resumes: no error, no signal — just silently skipped
	// messages.
	msg, ok, err := c.Poll()
	if err != nil {
		t.Fatalf("consumer saw an error (it must not): %v", err)
	}
	gs := g.Stats()
	if gs.SilentResets == 0 || gs.SkippedMessages == 0 {
		t.Fatalf("no silent reset recorded: %+v (msg=%v ok=%v)", gs, msg, ok)
	}
}

func TestCompactedTopicLosesIntermediateVersions(t *testing.T) {
	clock := clockwork.NewFake()
	b := newTestBroker(t, clock)
	b.CreateTopic("t", TopicConfig{
		Partitions:    1,
		Compacted:     true,
		CompactionLag: time.Hour,
		Segment:       walSmallSegments(),
	})
	// Many versions of few keys, all older than the dirty window.
	for i := 0; i < 40; i++ {
		b.Publish("t", keyspace.Key(fmt.Sprintf("k%d", i%4)), []byte{byte(i)})
	}
	clock.Advance(2 * time.Hour)
	b.Publish("t", "fresh", []byte("new")) // dirty tail
	b.RunGC()

	st, _ := b.Stats("t")
	if st.CompactedAway == 0 {
		t.Fatal("compaction did not run")
	}
	// A late subscriber sees only last versions; nothing tells it that
	// intermediate versions ever existed.
	g, _ := b.Group("t", "late", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m")
	versions := map[keyspace.Key]int{}
	for {
		msg, ok, _ := c.Poll()
		if !ok {
			break
		}
		versions[msg.Key]++
		c.Ack(msg)
	}
	for k, n := range versions {
		if k != "fresh" && n != 1 {
			t.Fatalf("key %q delivered %d versions after compaction", string(k), n)
		}
	}
}

func TestDeadLetterQueue(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	b.CreateTopic("t-dlq", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{
		StartAtEarliest: true,
		MaxDeliveries:   3,
		DeadLetterTopic: "t-dlq",
	})
	c, _ := g.Join("m")
	b.Publish("t", "poison", []byte("bad"))
	b.Publish("t", "good", []byte("ok"))

	// Fail the poison message repeatedly.
	for i := 0; i < 3; i++ {
		msg, ok, _ := c.Poll()
		if !ok || msg.Key != "poison" {
			t.Fatalf("iteration %d: %+v ok=%v", i, msg, ok)
		}
		c.Nack(msg)
	}
	// Poison is dead-lettered; the good message flows.
	msg, ok, _ := c.Poll()
	if !ok || msg.Key != "good" {
		t.Fatalf("after DLQ: %+v ok=%v", msg, ok)
	}
	if st := g.Stats(); st.DeadLettered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	dg, _ := b.Group("t-dlq", "reader", GroupConfig{StartAtEarliest: true})
	dc, _ := dg.Join("m")
	dmsg, ok, _ := dc.Poll()
	if !ok || dmsg.Key != "poison" {
		t.Fatalf("dlq content = %+v ok=%v", dmsg, ok)
	}
}

func TestSeekAndSnapshotReplay(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m")
	for i := 0; i < 5; i++ {
		b.Publish("t", "k", []byte{byte(i)})
	}
	snap := g.Snapshot()
	for i := 0; i < 5; i++ {
		msg, _, _ := c.Poll()
		c.Ack(msg)
	}
	if g.Lag() != 0 {
		t.Fatal("lag nonzero after drain")
	}
	if err := g.SeekSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	msg, ok, _ := c.Poll()
	if !ok || msg.Offset != 0 {
		t.Fatalf("replay start = %+v ok=%v", msg, ok)
	}
	if err := g.Seek(99, 0); err == nil {
		t.Fatal("seek to bad partition accepted")
	}
}

func TestFreeConsumerSeesEverything(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 2})
	for i := 0; i < 10; i++ {
		b.Publish("t", keyspace.NumericKey(i), []byte{byte(i)})
	}
	total := 0
	for p := 0; p < 2; p++ {
		fc, err := b.NewFreeConsumer("t", p, FromEarliest)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok := fc.Poll()
			if !ok {
				break
			}
			total++
		}
	}
	if total != 10 {
		t.Fatalf("free consumers saw %d/10", total)
	}
	if _, err := b.NewFreeConsumer("t", 9, FromEarliest); err == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestFreeConsumerFromLatestAndSilentSkip(t *testing.T) {
	clock := clockwork.NewFake()
	b := newTestBroker(t, clock)
	b.CreateTopic("t", TopicConfig{Partitions: 1, Retention: time.Hour, Segment: walSmallSegments()})
	b.Publish("t", "k", []byte("old"))
	fc, _ := b.NewFreeConsumer("t", 0, FromLatest)
	if _, ok := fc.Poll(); ok {
		t.Fatal("FromLatest saw history")
	}
	// Build a backlog under the stalled consumer, then GC it away.
	for i := 0; i < 50; i++ {
		b.Publish("t", "k", []byte{byte(i)})
	}
	clock.Advance(3 * time.Hour)
	b.Publish("t", "k", []byte("fresh"))
	b.RunGC()
	// Whole sealed segments were destroyed; the consumer silently resumes at
	// the surviving tail (the active segment can hold a few old records).
	var last Message
	n := 0
	for {
		msg, ok := fc.Poll()
		if !ok {
			break
		}
		last = msg
		n++
	}
	if string(last.Value) != "fresh" {
		t.Fatalf("tail = %+v", last)
	}
	if n >= 50 {
		t.Fatalf("nothing was skipped (%d delivered)", n)
	}
	if st := fc.Stats(); st.Skipped == 0 || st.Resets != 1 {
		t.Fatalf("silent skip not recorded: %+v", st)
	}
}

func TestBackgroundGCRunsOnFakeClock(t *testing.T) {
	clock := clockwork.NewFake()
	b := newTestBroker(t, clock)
	b.CreateTopic("t", TopicConfig{Partitions: 1, Retention: time.Minute, Segment: walSmallSegments()})
	for i := 0; i < 50; i++ {
		b.Publish("t", "k", []byte{byte(i)})
	}
	// Advance in GC-interval steps so the background ticker fires.
	deadline := time.Now().Add(5 * time.Second)
	for {
		clock.Advance(time.Minute)
		st, _ := b.Stats("t")
		if st.GCedRecords > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background GC never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPollBlockingWakesOnPublish(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{})
	c, _ := g.Join("m")

	done := make(chan Message, 1)
	go func() {
		msg, ok, _ := c.PollBlocking(nil)
		if ok {
			done <- msg
		}
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish("t", "k", []byte("wake"))
	select {
	case msg := <-done:
		if string(msg.Value) != "wake" {
			t.Fatalf("msg = %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PollBlocking never woke")
	}
}

func TestPollBlockingStops(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{})
	c, _ := g.Join("m")
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok, _ := c.PollBlocking(stop)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped poll returned a message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PollBlocking ignored stop")
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	b.CreateTopic("t", TopicConfig{})
	b.Close()
	b.Close() // idempotent
	if err := b.CreateTopic("u", TopicConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close = %v", err)
	}
	if _, _, err := b.Publish("t", "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after close = %v", err)
	}
}

func TestMoreMembersThanPartitions(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 2})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	var consumers []*Consumer
	for i := 0; i < 4; i++ {
		c, err := g.Join(fmt.Sprintf("m%d", i))
		if err != nil {
			t.Fatal(err)
		}
		consumers = append(consumers, c)
	}
	// Only two members can own partitions; the others idle — a real and
	// often-surprising consequence of partition-granular assignment.
	assign := g.Assignment()
	owners := map[string]bool{}
	for _, m := range assign {
		owners[m] = true
	}
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want exactly 2", owners)
	}
	for i := 0; i < 10; i++ {
		b.Publish("t", keyspace.NumericKey(i), nil)
	}
	got := 0
	for drained := false; !drained; {
		drained = true
		for _, c := range consumers {
			if msg, ok, _ := c.Poll(); ok {
				c.Ack(msg)
				got++
				drained = false
			}
		}
	}
	if got != 10 {
		t.Fatalf("delivered %d of 10", got)
	}
}

func TestGroupsAreIndependent(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g1, _ := b.Group("t", "g1", GroupConfig{StartAtEarliest: true})
	g2, _ := b.Group("t", "g2", GroupConfig{StartAtEarliest: true})
	c1, _ := g1.Join("m")
	c2, _ := g2.Join("m")
	b.Publish("t", "k", []byte("v"))

	m1, ok1, _ := c1.Poll()
	m2, ok2, _ := c2.Poll()
	if !ok1 || !ok2 {
		t.Fatal("both groups must receive the message independently")
	}
	c1.Ack(m1)
	// g2 not acking does not affect g1.
	if g1.Lag() != 0 {
		t.Fatalf("g1 lag = %d", g1.Lag())
	}
	if g2.Lag() != 1 {
		t.Fatalf("g2 lag = %d (unacked)", g2.Lag())
	}
	_ = m2
	// Same group handle returned for same name.
	g1b, _ := b.Group("t", "g1", GroupConfig{})
	if g1b != g1 {
		t.Fatal("group lookup returned a different handle")
	}
}

func TestRetentionBytesTopic(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{
		Partitions:     1,
		RetentionBytes: 200,
		Segment:        walSmallSegments(),
	})
	for i := 0; i < 100; i++ {
		b.Publish("t", "key", []byte("0123456789"))
	}
	b.RunGC()
	st, _ := b.Stats("t")
	if st.GCedRecords == 0 {
		t.Fatal("size-based retention did not run")
	}
	if st.BytesRetained > 400 { // some slack for the active segment
		t.Fatalf("retained %d bytes", st.BytesRetained)
	}
}

func TestLagAccounting(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 2})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m")
	for i := 0; i < 10; i++ {
		b.Publish("t", keyspace.NumericKey(i), nil)
	}
	if lag := g.Lag(); lag != 10 {
		t.Fatalf("lag = %d, want 10", lag)
	}
	for i := 0; i < 4; i++ {
		msg, ok, _ := c.Poll()
		if !ok {
			t.Fatal("stalled")
		}
		c.Ack(msg)
	}
	if lag := g.Lag(); lag != 6 {
		t.Fatalf("lag = %d, want 6", lag)
	}
}

func TestSaveRestoreTopic(t *testing.T) {
	b := newTestBroker(t, nil)
	b.CreateTopic("t", TopicConfig{Partitions: 3})
	for i := 0; i < 30; i++ {
		b.Publish("t", keyspace.NumericKey(i), []byte(fmt.Sprintf("v%d", i)))
	}
	img, err := b.SaveTopic("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SaveTopic("missing"); err == nil {
		t.Fatal("saved a missing topic")
	}

	// A new broker (a restarted node) restores the topic and serves it.
	b2 := newTestBroker(t, nil)
	if err := b2.RestoreTopic("t", TopicConfig{Partitions: 3}, img); err != nil {
		t.Fatal(err)
	}
	g, _ := b2.Group("t", "g", GroupConfig{StartAtEarliest: true})
	c, _ := g.Join("m")
	seen := map[string]string{}
	for {
		msg, ok, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[string(msg.Key)] = string(msg.Value)
		c.Ack(msg)
	}
	if len(seen) != 30 {
		t.Fatalf("restored topic served %d messages", len(seen))
	}
	// Appends continue from the preserved offsets.
	_, off, err := b2.Publish("t", keyspace.NumericKey(0), []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 {
		t.Fatal("offsets reset after restore")
	}
	// Validation paths.
	if err := b2.RestoreTopic("t", TopicConfig{Partitions: 3}, img); err == nil {
		t.Fatal("restore over existing topic accepted")
	}
	if err := b2.RestoreTopic("u", TopicConfig{Partitions: 2}, img); err == nil {
		t.Fatal("partition-count mismatch accepted")
	}
	if err := b2.RestoreTopic("v", TopicConfig{Partitions: 3}, []byte("junk")); err == nil {
		t.Fatal("garbage image accepted")
	}
}
