package pubsub

import (
	"fmt"
	"sync"
	"testing"

	"unbundle/internal/keyspace"
)

// TestBrokerConcurrentStress hammers one topic with concurrent publishers
// (keyed and unkeyed), a churning consumer-group membership, and pollers
// that ack or nack what they receive. Under -race this verifies the broker,
// group and consumer synchronization; afterwards the group's commit
// accounting must be internally consistent (nothing acked beyond what was
// published, lag never negative).
func TestBrokerConcurrentStress(t *testing.T) {
	b := newTestBroker(t, nil)
	if err := b.CreateTopic("stress", TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Group("stress", "workers", GroupConfig{StartAtEarliest: true, MaxDeliveries: 3})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Publishers: two keyed (stable partitions), one unkeyed (round-robin).
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("key-%d-%d", p, i%7)
				if _, _, err := b.Publish("stress", keyspace.Key(key), []byte("v")); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, _, err := b.Publish("stress", "", []byte("v")); err != nil {
				t.Errorf("publish unkeyed: %v", err)
				return
			}
		}
	}()

	// Pollers with membership churn: each goroutine joins, polls a while
	// (acking most, nacking some), then leaves — so rebalances race the
	// delivery paths throughout the run.
	for m := 0; m < 3; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				c, err := g.Join(fmt.Sprintf("member-%d-%d", m, round))
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				for i := 0; i < 100; i++ {
					msg, ok, err := c.Poll()
					if err != nil || !ok {
						break
					}
					if i%10 == 9 {
						c.Nack(msg)
					} else {
						c.Ack(msg)
					}
				}
				c.Leave()
			}
		}(m)
	}
	// Background GC races the lot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			b.RunGC()
		}
	}()
	wg.Wait()

	st := g.Stats()
	ts, err := b.Stats("stress")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Published != 900 {
		t.Fatalf("published = %d, want 900", ts.Published)
	}
	if st.Acked > st.Delivered {
		t.Fatalf("acked %d > delivered %d", st.Acked, st.Delivered)
	}
	if lag := g.Lag(); lag < 0 {
		t.Fatalf("negative lag %d", lag)
	}
}
