package pubsub

import (
	"fmt"
	"testing"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Regression: with MaxDeliveries set but no DeadLetterTopic, Nack used to
// redeliver the exhausted message forever — MaxDeliveries only took effect
// when a DLQ was configured, contradicting its documentation ("bounds
// redelivery attempts per message") and leaving the partition head-of-line
// blocked by the poison message for good.
func TestNackMaxDeliveriesWithoutDLQDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBroker(BrokerConfig{Metrics: reg})
	t.Cleanup(b.Close)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true, MaxDeliveries: 3})
	c, _ := g.Join("m")
	b.Publish("t", "poison", []byte("bad"))
	b.Publish("t", "good", []byte("ok"))

	for i := 1; i <= 3; i++ {
		msg, ok, _ := c.Poll()
		if !ok || msg.Key != "poison" {
			t.Fatalf("attempt %d: %+v ok=%v", i, msg, ok)
		}
		if msg.Attempt != i {
			t.Fatalf("attempt %d reported as %d", i, msg.Attempt)
		}
		c.Nack(msg)
	}
	// Attempts are exhausted: the poison message is dropped (counted, not
	// silent) and the partition unblocks.
	msg, ok, _ := c.Poll()
	if !ok || msg.Key != "good" {
		t.Fatalf("after exhaustion: %+v ok=%v (poison still blocking?)", msg, ok)
	}
	st := g.Stats()
	if st.Dropped != 1 || st.DeadLettered != 0 {
		t.Fatalf("stats = %+v, want Dropped=1 DeadLettered=0", st)
	}
	if got := reg.Snapshot().Counters["pubsub_nack_drops_total"]; got != 1 {
		t.Fatalf("nack drop counter = %d, want 1", got)
	}
}

// The DLQ configuration keeps its behavior: exhausted messages are
// sidelined, not dropped.
func TestNackMaxDeliveriesWithDLQSidelines(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBroker(BrokerConfig{Metrics: reg})
	t.Cleanup(b.Close)
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	b.CreateTopic("dlq", TopicConfig{Partitions: 1})
	g, _ := b.Group("t", "g", GroupConfig{StartAtEarliest: true, MaxDeliveries: 2, DeadLetterTopic: "dlq"})
	c, _ := g.Join("m")
	b.Publish("t", "poison", []byte("bad"))

	for i := 0; i < 2; i++ {
		msg, ok, _ := c.Poll()
		if !ok {
			t.Fatalf("poll %d failed", i)
		}
		c.Nack(msg)
	}
	st := g.Stats()
	if st.DeadLettered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want DeadLettered=1 Dropped=0", st)
	}
	fc, err := b.NewFreeConsumer("dlq", 0, FromEarliest)
	if err != nil {
		t.Fatal(err)
	}
	if msg, ok := fc.Poll(); !ok || msg.Key != "poison" {
		t.Fatalf("dlq content = %+v ok=%v", msg, ok)
	}
	snap := reg.Snapshot()
	if snap.Counters["pubsub_dead_lettered_total"] != 1 || snap.Counters["pubsub_nack_drops_total"] != 0 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// Regression: unkeyed round-robin used to index by t.published, which also
// counts keyed messages, so a mixed workload skewed unkeyed traffic onto a
// few partitions (e.g. 3 keyed + 1 unkeyed per cycle pinned every unkeyed
// message to one partition). A dedicated cursor keeps the spread even.
func TestUnkeyedRoundRobinUnskewedByKeyedTraffic(t *testing.T) {
	b := newTestBroker(t, nil)
	const parts = 4
	b.CreateTopic("t", TopicConfig{Partitions: parts})

	dist := make(map[int]int)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		// Three keyed publishes per unkeyed one: with the shared counter the
		// unkeyed index advanced by 4 per cycle and never moved.
		for j := 0; j < 3; j++ {
			if _, _, err := b.Publish("t", keyspace.Key(fmt.Sprintf("key-%d-%d", i, j)), []byte("k")); err != nil {
				t.Fatal(err)
			}
		}
		p, _, err := b.Publish("t", "", []byte("u"))
		if err != nil {
			t.Fatal(err)
		}
		dist[p]++
	}
	for p := 0; p < parts; p++ {
		if dist[p] != rounds/parts {
			t.Fatalf("unkeyed distribution skewed: %v (want %d per partition)", dist, rounds/parts)
		}
	}
}
