package pubsub

import (
	"errors"
	"fmt"

	"unbundle/internal/trace"
	"unbundle/internal/wal"
)

// Sentinel start positions for free consumers.
const (
	// FromEarliest starts at the oldest retained message.
	FromEarliest int64 = -1
	// FromLatest starts at the head (only new messages).
	FromLatest int64 = -2
)

// FreeConsumer reads every message of one partition without group
// coordination — the paper's "free consumer" ([26] terminology, §2). Cache
// fleets that subscribe every server to the entire feed use one free
// consumer per partition per server, which is the fallback §3.2.2 notes
// "does not scale as update rates increase": every server pays for every
// message. E10 measures exactly that.
type FreeConsumer struct {
	b         *Broker
	t         *topic
	partition int
	offset    int64
	delivered int64
	skipped   int64 // messages lost to GC under this consumer's cursor
	resets    int64
}

// NewFreeConsumer opens a free consumer on one partition. from is an offset,
// FromEarliest or FromLatest.
func (b *Broker) NewFreeConsumer(topicName string, partition int, from int64) (*FreeConsumer, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if partition < 0 || partition >= len(t.parts) {
		return nil, fmt.Errorf("pubsub: partition %d out of range for %q", partition, topicName)
	}
	fc := &FreeConsumer{b: b, t: t, partition: partition}
	switch from {
	case FromEarliest:
		fc.offset = t.parts[partition].EarliestOffset()
	case FromLatest:
		fc.offset = t.parts[partition].NextOffset()
	default:
		fc.offset = from
	}
	return fc, nil
}

// Poll returns the next message, auto-resetting (silently) if the cursor was
// garbage collected away.
func (fc *FreeConsumer) Poll() (Message, bool) {
	fc.t.mu.Lock()
	defer fc.t.mu.Unlock()
	log := fc.t.parts[fc.partition]
	for {
		recs, next, err := log.ReadBatch(fc.offset, 1)
		var oor *wal.OutOfRangeError
		if errors.As(err, &oor) {
			if oor.Earliest > fc.offset {
				fc.skipped += oor.Earliest - fc.offset
				fc.offset = oor.Earliest
				fc.resets++
				continue
			}
			return Message{}, false
		}
		if err != nil || len(recs) == 0 {
			return Message{}, false
		}
		rec := recs[0]
		fc.offset = rec.Offset + 1
		_ = next
		fc.delivered++
		if rec.Trace != 0 {
			// Fetch and hand-off coincide in a free consumer's poll: the
			// message becomes visible and is delivered in the same step.
			fc.b.tracer.Record(rec.Trace, trace.StageEnqueue)
			fc.b.tracer.Record(rec.Trace, trace.StageDeliver)
		}
		return Message{
			Topic:       fc.t.name,
			Partition:   fc.partition,
			Offset:      rec.Offset,
			Key:         rec.Key,
			Value:       rec.Value,
			PublishTime: rec.Time,
			Attempt:     1,
			Trace:       rec.Trace,
		}, true
	}
}

// SeekTo moves the cursor.
func (fc *FreeConsumer) SeekTo(offset int64) {
	fc.t.mu.Lock()
	defer fc.t.mu.Unlock()
	fc.offset = offset
}

// FreeConsumerStats reports the consumer's counters.
type FreeConsumerStats struct {
	Delivered int64
	Skipped   int64
	Resets    int64
	Offset    int64
}

// Stats returns counters.
func (fc *FreeConsumer) Stats() FreeConsumerStats {
	fc.t.mu.Lock()
	defer fc.t.mu.Unlock()
	return FreeConsumerStats{Delivered: fc.delivered, Skipped: fc.skipped, Resets: fc.resets, Offset: fc.offset}
}
