package mvcc

import (
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

// View is the §4.1 mechanism for hiding producer-store internals: a narrow,
// read-only window over a store, restricted to a key range, with an optional
// per-entry transform that exposes only derived values (e.g. projecting a
// contacts table down to the columns consumers may see).
//
// A View implements core.Snapshotter, so resyncing watchers can recover from
// it without ever touching the store's full keyspace — the consumed data
// lives in the producer's storage, not in a pubsub system's hidden storage,
// but consumers still see only what the producer chose to publish.
type View struct {
	store     *Store
	rng       keyspace.Range
	transform func(core.Entry) (core.Entry, bool)
}

var _ core.Snapshotter = (*View)(nil)

// NewView creates a read-only view of store restricted to r. transform, if
// non-nil, rewrites each entry (returning false drops the entry from the
// view entirely).
func NewView(store *Store, r keyspace.Range, transform func(core.Entry) (core.Entry, bool)) *View {
	return &View{store: store, rng: r, transform: transform}
}

// Range returns the view's key range.
func (v *View) Range() keyspace.Range { return v.rng }

// SnapshotRange implements core.Snapshotter over the view: the requested
// range is clipped to the view and every entry passes the transform.
func (v *View) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	clipped := r.Intersect(v.rng)
	if clipped.Empty() {
		return nil, v.store.CurrentVersion(), nil
	}
	entries, at, err := v.store.SnapshotRange(clipped)
	if err != nil {
		return nil, 0, err
	}
	if v.transform == nil {
		return entries, at, nil
	}
	out := entries[:0]
	for _, e := range entries {
		if t, keep := v.transform(e); keep {
			out = append(out, t)
		}
	}
	return out, at, nil
}

// AttachCDC feeds the view's change stream (clipped and transformed) into an
// ingester. Dropped entries become delete events so consumers converge to
// the view, not the raw table.
func (v *View) AttachCDC(ing core.Ingester) (detach func()) {
	if v.transform == nil {
		return v.store.AttachCDC(v.rng, ing)
	}
	return v.store.AttachCDC(v.rng, transformIngester{ing: ing, view: v})
}

// transformIngester rewrites CDC events through the view's transform.
type transformIngester struct {
	ing  core.Ingester
	view *View
}

func (t transformIngester) Append(ev core.ChangeEvent) error {
	if ev.Mut.Op == core.OpPut {
		e, keep := t.view.transform(core.Entry{Key: ev.Key, Value: ev.Mut.Value, Version: ev.Version})
		if !keep {
			// The view hides this entry: consumers must see it disappear.
			return t.ing.Append(core.ChangeEvent{Key: ev.Key, Mut: core.Mutation{Op: core.OpDelete}, Version: ev.Version, Trace: ev.Trace})
		}
		return t.ing.Append(core.ChangeEvent{Key: e.Key, Mut: core.Mutation{Op: core.OpPut, Value: e.Value}, Version: ev.Version, Trace: ev.Trace})
	}
	return t.ing.Append(ev)
}

func (t transformIngester) AppendBatch(evs []core.ChangeEvent) error {
	// Transform into a fresh slice (the batch is rewritten, and the
	// downstream ingester must not see the caller's backing array mutated).
	out := make([]core.ChangeEvent, 0, len(evs))
	for _, ev := range evs {
		if ev.Mut.Op == core.OpPut {
			e, keep := t.view.transform(core.Entry{Key: ev.Key, Value: ev.Mut.Value, Version: ev.Version})
			if !keep {
				out = append(out, core.ChangeEvent{Key: ev.Key, Mut: core.Mutation{Op: core.OpDelete}, Version: ev.Version, Trace: ev.Trace})
				continue
			}
			out = append(out, core.ChangeEvent{Key: e.Key, Mut: core.Mutation{Op: core.OpPut, Value: e.Value}, Version: ev.Version, Trace: ev.Trace})
			continue
		}
		out = append(out, ev)
	}
	return t.ing.AppendBatch(out)
}

func (t transformIngester) Progress(p core.ProgressEvent) error {
	return t.ing.Progress(p)
}

// WatchableStore bundles a Store with a built-in watch hub: the Figure 3
// "producer storage with built-in watch" quadrant (Spanner change streams,
// the Kubernetes API server over etcd). It implements both core.Watchable
// and core.Snapshotter, so consumers use one object for the whole
// snapshot-then-watch protocol.
type WatchableStore struct {
	*Store
	hub    *core.Hub
	detach func()
}

var (
	_ core.Watchable   = (*WatchableStore)(nil)
	_ core.Snapshotter = (*WatchableStore)(nil)
)

// NewWatchableStore creates a store with built-in watch support. A
// cfg.Tracer is installed at the store too, so sampled commits trace end to
// end without further wiring.
func NewWatchableStore(cfg core.HubConfig) *WatchableStore {
	s := NewStore()
	if cfg.Tracer.Enabled() {
		s.SetTracer(cfg.Tracer)
	}
	h := core.NewHub(cfg)
	detach := s.AttachCDC(keyspace.Full(), h)
	return &WatchableStore{Store: s, hub: h, detach: detach}
}

// Watch implements core.Watchable.
func (ws *WatchableStore) Watch(r keyspace.Range, from core.Version, cb core.WatchCallback) (core.Cancel, error) {
	return ws.hub.Watch(r, from, cb)
}

// Hub exposes the built-in watch hub (for stats and failure injection).
func (ws *WatchableStore) Hub() *core.Hub { return ws.hub }

// Close detaches the CDC tap and shuts the hub down.
func (ws *WatchableStore) Close() {
	ws.detach()
	ws.hub.Close()
}
