// Package mvcc implements the producer storage substrate: an in-memory
// multi-version key-value store with serializable transactions, monotonic
// commit versions from a timestamp oracle, snapshot reads and scans, version
// history garbage collection, and a change-data-capture tap that feeds watch
// systems through the core.Ingester contract.
//
// It stands in for the paper's Spanner/MySQL/TiDB producer stores (§4): what
// the watch model requires of a store is exactly what this package provides —
// monotonic transaction versions agreed with commit order (§4.2's simplifying
// assumption), consistent snapshots at a version, and an ordered change feed.
package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/trace"
)

// Store errors.
var (
	// ErrVersionGCed is returned for reads below the history GC horizon.
	ErrVersionGCed = errors.New("mvcc: requested version below GC horizon")
	// ErrTxnAborted is returned when a transaction callback fails.
	ErrTxnAborted = errors.New("mvcc: transaction aborted")
)

// versionedValue is one entry in a key's history.
type versionedValue struct {
	version core.Version
	value   []byte
	deleted bool
}

// history is a key's version chain, ascending by version.
type history struct {
	versions []versionedValue
}

// at returns the value visible at version v and whether any version <= v
// exists.
func (h *history) at(v core.Version) (versionedValue, bool) {
	// Histories are short (GC keeps them pruned); linear scan from the tail
	// is faster than binary search for the common read-latest case.
	for i := len(h.versions) - 1; i >= 0; i-- {
		if h.versions[i].version <= v {
			return h.versions[i], true
		}
	}
	return versionedValue{}, false
}

// Stats reports store counters; the efficiency experiment (E10) uses
// BytesWritten as the store's hard-state write volume.
type Stats struct {
	Commits      int64
	Keys         int
	VersionsHeld int64
	BytesWritten int64
	Horizon      core.Version
	Version      core.Version
}

// Store is the MVCC store. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	keys    *skiplist
	version core.Version // TSO: last committed version
	horizon core.Version // snapshot reads below this fail with ErrVersionGCed

	commits      int64
	versionsHeld int64
	bytesWritten int64

	// taps receive the CDC feed. Emission happens while holding mu, which
	// serializes events in commit order — exactly the per-key version-order
	// guarantee core.Ingester requires. Real systems use a commit log; the
	// lock is this simulator's commit log.
	taps []tap

	// batch and sub are per-commit CDC scratch buffers, reused under mu.
	// Ingesters must not retain the slices (the AppendBatch contract).
	batch, sub []core.ChangeEvent

	// tx is the transaction scratch, reused across Commit calls under mu:
	// the write map and order slice are cleared in place rather than
	// reallocated, so a steady-state commit's only allocations are the
	// value copies the transaction itself makes.
	tx Tx

	// tracer, when non-nil, samples committed events at the source: the
	// commit under mu is this store's StageCommit instant.
	tracer *trace.Tracer
}

type tap struct {
	id  int
	ing core.Ingester
	rng keyspace.Range
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{keys: newSkiplist(42)}
}

var _ core.Snapshotter = (*Store)(nil)

// SetTracer installs (or removes, with nil) the tracer that samples this
// store's commits. Install the same tracer in the downstream watch system so
// one trace spans commit→deliver.
func (s *Store) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// Tx is an open transaction. It provides read-your-writes semantics over the
// store's latest state; all writes commit atomically at a single version.
// Transactions are serializable: the store runs one writer at a time. A Tx
// is valid only inside its Commit callback — the store reuses the underlying
// scratch for the next transaction, so callers must not retain it.
type Tx struct {
	s      *Store
	writes map[keyspace.Key]core.Mutation
	order  []keyspace.Key
}

// Get reads a key inside the transaction (uncommitted writes are visible).
func (tx *Tx) Get(k keyspace.Key) ([]byte, bool) {
	if m, ok := tx.writes[k]; ok {
		if m.Op == core.OpDelete {
			return nil, false
		}
		return m.Value, true
	}
	h := tx.s.keys.find(k)
	if h == nil {
		return nil, false
	}
	vv, ok := h.at(tx.s.version)
	if !ok || vv.deleted {
		return nil, false
	}
	return vv.value, true
}

// Put writes a key inside the transaction.
func (tx *Tx) Put(k keyspace.Key, v []byte) {
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = core.Mutation{Op: core.OpPut, Value: append([]byte(nil), v...)}
}

// Delete removes a key inside the transaction.
func (tx *Tx) Delete(k keyspace.Key) {
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = core.Mutation{Op: core.OpDelete}
}

// Commit runs fn in a serializable transaction and atomically applies its
// writes at a fresh TSO version, which it returns. If fn returns an error the
// transaction aborts with no effect.
func (s *Store) Commit(fn func(tx *Tx) error) (core.Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := &s.tx
	tx.s = s
	if tx.writes == nil {
		tx.writes = make(map[keyspace.Key]core.Mutation)
	} else {
		clear(tx.writes)
	}
	tx.order = tx.order[:0]
	if err := fn(tx); err != nil {
		return core.NoVersion, fmt.Errorf("%w: %v", ErrTxnAborted, err)
	}
	return s.applyLocked(tx.order, tx.writes), nil
}

// Put writes a single key outside any explicit transaction.
func (s *Store) Put(k keyspace.Key, v []byte) core.Version {
	ver, _ := s.Commit(func(tx *Tx) error { tx.Put(k, v); return nil })
	return ver
}

// Delete removes a single key.
func (s *Store) Delete(k keyspace.Key) core.Version {
	ver, _ := s.Commit(func(tx *Tx) error { tx.Delete(k); return nil })
	return ver
}

// applyLocked installs the writes at the next version and emits CDC.
func (s *Store) applyLocked(order []keyspace.Key, writes map[keyspace.Key]core.Mutation) core.Version {
	s.version++
	v := s.version
	s.commits++
	for _, k := range order {
		m := writes[k]
		h := s.keys.getOrCreate(k)
		h.versions = append(h.versions, versionedValue{
			version: v,
			value:   m.Value,
			deleted: m.Op == core.OpDelete,
		})
		s.versionsHeld++
		s.bytesWritten += int64(len(k) + len(m.Value) + 16) // 16: version + flags overhead
	}
	// CDC emission, in commit order, then a progress mark: with the commit
	// lock held, every change at or below v has been emitted, so the
	// progress claim is exact. The whole commit goes out as one batch per
	// tap — one synchronization round-trip into the watch system per commit
	// instead of one per written key.
	if len(s.taps) > 0 && len(order) > 0 {
		s.batch = s.batch[:0]
		for _, k := range order {
			ev := core.ChangeEvent{Key: k, Mut: writes[k], Version: v}
			if s.tracer.Enabled() {
				ev.Trace = s.tracer.Begin(k, uint64(v))
			}
			s.batch = append(s.batch, ev)
		}
		for _, t := range s.taps {
			out := s.batch
			for i := range s.batch {
				if !t.rng.Contains(s.batch[i].Key) {
					// Slow path: the tap sees only a slice of the commit.
					s.sub = s.sub[:0]
					for j := range s.batch {
						if t.rng.Contains(s.batch[j].Key) {
							s.sub = append(s.sub, s.batch[j])
						}
					}
					out = s.sub
					break
				}
			}
			if len(out) == 0 {
				continue
			}
			_ = t.ing.AppendBatch(out)
			_ = t.ing.Progress(core.ProgressEvent{Range: t.rng, Version: v})
		}
	}
	return v
}

// EmitProgress pushes the current version as progress over r to all taps
// whose range overlaps r. Stores do this periodically so that watchers'
// frontiers advance even when no keys in their range are changing.
func (s *Store) EmitProgress(r keyspace.Range) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.taps {
		clipped := t.rng.Intersect(r)
		if clipped.Empty() {
			continue
		}
		_ = t.ing.Progress(core.ProgressEvent{Range: clipped, Version: s.version})
	}
}

// AttachCDC registers ing to receive all future change events for keys in r,
// with a progress event after each commit. It returns a detach function.
// This is the producer-store half of Figure 4: the store conveys its change
// feed into an external watch system through the Ingester contract.
func (s *Store) AttachCDC(r keyspace.Range, ing core.Ingester) (detach func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := 0
	if n := len(s.taps); n > 0 {
		id = s.taps[n-1].id + 1
	}
	s.taps = append(s.taps, tap{id: id, ing: ing, rng: r})
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, t := range s.taps {
			if t.id == id {
				s.taps = append(s.taps[:i], s.taps[i+1:]...)
				return
			}
		}
	}
}

// Get returns the value of k at version at (0 = latest), the version that
// wrote it, and whether the key exists at that snapshot.
func (s *Store) Get(k keyspace.Key, at core.Version) ([]byte, core.Version, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if at == core.NoVersion {
		at = s.version
	}
	if at < s.horizon {
		return nil, 0, false, fmt.Errorf("%w: %v < %v", ErrVersionGCed, at, s.horizon)
	}
	h := s.keys.find(k)
	if h == nil {
		return nil, 0, false, nil
	}
	vv, ok := h.at(at)
	if !ok || vv.deleted {
		return nil, 0, false, nil
	}
	return vv.value, vv.version, true, nil
}

// Scan returns the live entries of r at version at (0 = latest) in key
// order, up to limit (0 = unlimited).
func (s *Store) Scan(r keyspace.Range, at core.Version, limit int) ([]core.Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if at == core.NoVersion {
		at = s.version
	}
	if at < s.horizon {
		return nil, fmt.Errorf("%w: %v < %v", ErrVersionGCed, at, s.horizon)
	}
	var out []core.Entry
	s.keys.ascend(r, func(k keyspace.Key, h *history) bool {
		vv, ok := h.at(at)
		if ok && !vv.deleted {
			out = append(out, core.Entry{Key: k, Value: vv.value, Version: vv.version})
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out, nil
}

// SnapshotRange implements core.Snapshotter: a consistent snapshot of r at
// the current version. This is the read path resyncing watchers use.
func (s *Store) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	s.mu.RLock()
	at := s.version
	s.mu.RUnlock()
	entries, err := s.Scan(r, at, 0)
	if err != nil {
		return nil, 0, err
	}
	return entries, at, nil
}

// ValueAt returns the value of k exactly as of version v — the oracle the
// consistency checkers use. ok is false when the key had no live value at v.
func (s *Store) ValueAt(k keyspace.Key, v core.Version) (val []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v < s.horizon {
		return nil, false, fmt.Errorf("%w: %v < %v", ErrVersionGCed, v, s.horizon)
	}
	h := s.keys.find(k)
	if h == nil {
		return nil, false, nil
	}
	vv, found := h.at(v)
	if !found || vv.deleted {
		return nil, false, nil
	}
	return vv.value, true, nil
}

// CurrentVersion returns the last committed version.
func (s *Store) CurrentVersion() core.Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// GCBefore discards version history no longer needed to serve snapshots at
// or above v, and raises the horizon to v. For each key the newest version
// at or below v is retained (it is still visible at v); fully deleted keys
// whose tombstone predates v are dropped entirely.
func (s *Store) GCBefore(v core.Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.version {
		v = s.version
	}
	if v <= s.horizon {
		return
	}
	s.horizon = v
	s.keys.ascend(keyspace.Full(), func(k keyspace.Key, h *history) bool {
		// Find the newest index with version <= v; everything before it is
		// invisible to any snapshot >= v.
		keepFrom := 0
		for i, vv := range h.versions {
			if vv.version <= v {
				keepFrom = i
			} else {
				break
			}
		}
		if keepFrom > 0 {
			s.versionsHeld -= int64(keepFrom)
			h.versions = append([]versionedValue(nil), h.versions[keepFrom:]...)
		}
		// A lone tombstone below the horizon serves no snapshot.
		if len(h.versions) == 1 && h.versions[0].deleted && h.versions[0].version <= v {
			s.versionsHeld--
			h.versions = nil
		}
		return true
	})
}

// Stats returns store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Commits:      s.commits,
		Keys:         s.keys.size,
		VersionsHeld: s.versionsHeld,
		BytesWritten: s.bytesWritten,
		Horizon:      s.horizon,
		Version:      s.version,
	}
}
