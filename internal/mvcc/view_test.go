package mvcc

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

func TestViewClipsRange(t *testing.T) {
	s := NewStore()
	s.Put(keyspace.NumericKey(5), []byte("in"))
	s.Put(keyspace.NumericKey(500), []byte("secret"))

	v := NewView(s, keyspace.NumericRange(0, 100), nil)
	entries, _, err := v.SnapshotRange(keyspace.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != keyspace.NumericKey(5) {
		t.Fatalf("view leaked: %v", entries)
	}
	// Disjoint request yields nothing.
	entries, _, _ = v.SnapshotRange(keyspace.NumericRange(400, 600))
	if len(entries) != 0 {
		t.Fatalf("disjoint request leaked: %v", entries)
	}
}

func TestViewTransformProjectsValues(t *testing.T) {
	s := NewStore()
	s.Put("user/1", []byte("name=ada;ssn=123"))
	s.Put("user/2", []byte("name=bob;ssn=456"))
	s.Put("user/3", []byte("hidden"))

	// Expose only the name field; drop entries without one.
	v := NewView(s, keyspace.Prefix("user/"), func(e core.Entry) (core.Entry, bool) {
		i := bytes.Index(e.Value, []byte(";"))
		if i < 0 || !bytes.HasPrefix(e.Value, []byte("name=")) {
			return core.Entry{}, false
		}
		e.Value = e.Value[:i]
		return e, true
	})
	entries, _, err := v.SnapshotRange(keyspace.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %v", entries)
	}
	for _, e := range entries {
		if strings.Contains(string(e.Value), "ssn") {
			t.Fatalf("view exposed internals: %q", e.Value)
		}
	}
}

func TestViewCDCTransformsAndDeletes(t *testing.T) {
	s := NewStore()
	v := NewView(s, keyspace.Prefix("user/"), func(e core.Entry) (core.Entry, bool) {
		if bytes.Equal(e.Value, []byte("hide")) {
			return core.Entry{}, false
		}
		e.Value = append([]byte("pub:"), e.Value...)
		return e, true
	})
	var mu sync.Mutex
	var events []core.ChangeEvent
	v.AttachCDC(ingesterFuncs{
		append: func(ev core.ChangeEvent) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return nil
		},
		progress: func(core.ProgressEvent) error { return nil },
	})
	s.Put("user/1", []byte("x"))
	s.Put("user/1", []byte("hide")) // view drops it → consumers see delete
	s.Put("other", []byte("out of view"))
	s.Delete("user/1")

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	if string(events[0].Mut.Value) != "pub:x" {
		t.Fatalf("transform not applied: %q", events[0].Mut.Value)
	}
	if events[1].Mut.Op != core.OpDelete {
		t.Fatalf("hidden entry must surface as delete: %v", events[1])
	}
	if events[2].Mut.Op != core.OpDelete {
		t.Fatalf("raw delete passes through: %v", events[2])
	}
}

func TestWatchableStoreEndToEnd(t *testing.T) {
	ws := NewWatchableStore(core.HubConfig{})
	defer ws.Close()

	ws.Put("a", []byte("1"))
	entries, at, err := ws.SnapshotRange(keyspace.Full())
	if err != nil || len(entries) != 1 {
		t.Fatalf("snapshot = %v, %v", entries, err)
	}

	var mu sync.Mutex
	var got []core.ChangeEvent
	cancel, err := ws.Watch(keyspace.Full(), at, core.Funcs{
		Event: func(ev core.ChangeEvent) { mu.Lock(); got = append(got, ev); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	ws.Put("b", []byte("2"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch event not delivered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Key != "b" || string(got[0].Mut.Value) != "2" {
		t.Fatalf("event = %v", got[0])
	}
	if ws.Hub().Stats().Appends != 2 {
		t.Fatalf("hub appends = %d", ws.Hub().Stats().Appends)
	}
}
