package mvcc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

func TestPutGetLatest(t *testing.T) {
	s := NewStore()
	v1 := s.Put("a", []byte("1"))
	v2 := s.Put("a", []byte("2"))
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %v then %v", v1, v2)
	}
	val, ver, ok, err := s.Get("a", core.NoVersion)
	if err != nil || !ok || string(val) != "2" || ver != v2 {
		t.Fatalf("Get latest = %q/%v/%v/%v", val, ver, ok, err)
	}
	if _, _, ok, _ := s.Get("missing", core.NoVersion); ok {
		t.Fatal("missing key reported present")
	}
}

func TestSnapshotReadsAreStable(t *testing.T) {
	s := NewStore()
	v1 := s.Put("a", []byte("1"))
	s.Put("a", []byte("2"))
	s.Delete("a")

	val, _, ok, err := s.Get("a", v1)
	if err != nil || !ok || string(val) != "1" {
		t.Fatalf("read at v1 = %q/%v/%v", val, ok, err)
	}
	if _, _, ok, _ := s.Get("a", core.NoVersion); ok {
		t.Fatal("deleted key visible at latest")
	}
}

func TestTransactionAtomicity(t *testing.T) {
	s := NewStore()
	v, err := s.Commit(func(tx *Tx) error {
		tx.Put("x", []byte("1"))
		tx.Put("y", []byte("1"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both writes share one version.
	_, vx, _, _ := s.Get("x", core.NoVersion)
	_, vy, _, _ := s.Get("y", core.NoVersion)
	if vx != v || vy != v {
		t.Fatalf("writes split versions: %v %v (commit %v)", vx, vy, v)
	}
	// Abort leaves no trace.
	boom := errors.New("boom")
	if _, err := s.Commit(func(tx *Tx) error {
		tx.Put("x", []byte("2"))
		return boom
	}); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("abort err = %v", err)
	}
	val, _, _, _ := s.Get("x", core.NoVersion)
	if string(val) != "1" {
		t.Fatalf("aborted write visible: %q", val)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("old"))
	_, err := s.Commit(func(tx *Tx) error {
		if v, ok := tx.Get("k"); !ok || string(v) != "old" {
			return fmt.Errorf("committed value invisible: %q/%v", v, ok)
		}
		tx.Put("k", []byte("new"))
		if v, _ := tx.Get("k"); string(v) != "new" {
			return fmt.Errorf("own write invisible")
		}
		tx.Delete("k")
		if _, ok := tx.Get("k"); ok {
			return fmt.Errorf("own delete invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Get("k", core.NoVersion); ok {
		t.Fatal("delete did not commit")
	}
}

func TestScanOrderAndSnapshot(t *testing.T) {
	s := NewStore()
	for _, i := range []int{5, 1, 9, 3, 7} {
		s.Put(keyspace.NumericKey(i), []byte{byte(i)})
	}
	atV := s.CurrentVersion()
	s.Put(keyspace.NumericKey(4), []byte{4})
	s.Delete(keyspace.NumericKey(3))

	entries, err := s.Scan(keyspace.NumericRange(0, 8), atV, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5, 7}
	if len(entries) != len(want) {
		t.Fatalf("scan = %v", entries)
	}
	for i, e := range entries {
		if e.Key != keyspace.NumericKey(want[i]) {
			t.Fatalf("scan[%d] = %q, want %d", i, string(e.Key), want[i])
		}
	}
	// Latest scan sees the new world.
	latest, _ := s.Scan(keyspace.NumericRange(0, 8), core.NoVersion, 0)
	keys := map[keyspace.Key]bool{}
	for _, e := range latest {
		keys[e.Key] = true
	}
	if keys[keyspace.NumericKey(3)] || !keys[keyspace.NumericKey(4)] {
		t.Fatalf("latest scan wrong: %v", latest)
	}
	// Limit.
	lim, _ := s.Scan(keyspace.Full(), core.NoVersion, 2)
	if len(lim) != 2 {
		t.Fatalf("limit ignored: %v", lim)
	}
}

func TestSnapshotRange(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	entries, at, err := s.SnapshotRange(keyspace.Full())
	if err != nil || at != s.CurrentVersion() || len(entries) != 2 {
		t.Fatalf("snapshot = %v @%v err=%v", entries, at, err)
	}
}

func TestGCBeforeHorizon(t *testing.T) {
	s := NewStore()
	v1 := s.Put("a", []byte("1"))
	v2 := s.Put("a", []byte("2"))
	v3 := s.Put("a", []byte("3"))
	s.GCBefore(v2)

	if _, _, _, err := s.Get("a", v1); !errors.Is(err, ErrVersionGCed) {
		t.Fatalf("read below horizon = %v", err)
	}
	val, _, ok, err := s.Get("a", v2)
	if err != nil || !ok || string(val) != "2" {
		t.Fatalf("read at horizon = %q/%v/%v", val, ok, err)
	}
	val, _, _, _ = s.Get("a", v3)
	if string(val) != "3" {
		t.Fatal("latest lost after GC")
	}
	st := s.Stats()
	if st.VersionsHeld != 2 || st.Horizon != v2 {
		t.Fatalf("stats after GC = %+v", st)
	}
	// GC never moves backwards and clamps to current version.
	s.GCBefore(v1)
	if s.Stats().Horizon != v2 {
		t.Fatal("horizon moved backwards")
	}
	s.GCBefore(v3 + 100)
	if s.Stats().Horizon != v3 {
		t.Fatal("horizon beyond current version")
	}
}

func TestGCDropsStaleTombstones(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte("1"))
	vdel := s.Delete("a")
	s.Put("b", []byte("keep")) // unrelated live key
	s.GCBefore(vdel + 1)
	st := s.Stats()
	// "a" should hold zero versions now: its tombstone predates the horizon.
	if st.VersionsHeld != 1 {
		t.Fatalf("VersionsHeld = %d, want 1 (only b)", st.VersionsHeld)
	}
	if _, _, ok, err := s.Get("a", core.NoVersion); ok || err != nil {
		t.Fatalf("gc'd tombstone readable: ok=%v err=%v", ok, err)
	}
}

func TestValueAtOracle(t *testing.T) {
	s := NewStore()
	v1 := s.Put("k", []byte("1"))
	v2 := s.Delete("k")
	v3 := s.Put("k", []byte("3"))

	cases := []struct {
		at   core.Version
		want string
		ok   bool
	}{
		{v1, "1", true}, {v2, "", false}, {v3, "3", true}, {v1 - 1, "", false},
	}
	for _, c := range cases {
		val, ok, err := s.ValueAt("k", c.at)
		if err != nil || ok != c.ok || (ok && string(val) != c.want) {
			t.Errorf("ValueAt(%v) = %q/%v/%v, want %q/%v", c.at, val, ok, err, c.want, c.ok)
		}
	}
}

func TestCDCTapOrderingAndProgress(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	var events []core.ChangeEvent
	var progress []core.ProgressEvent
	detach := s.AttachCDC(keyspace.Full(), ingesterFuncs{
		append: func(ev core.ChangeEvent) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return nil
		},
		progress: func(p core.ProgressEvent) error {
			mu.Lock()
			progress = append(progress, p)
			mu.Unlock()
			return nil
		},
	})
	s.Put("a", []byte("1"))
	s.Commit(func(tx *Tx) error {
		tx.Put("b", []byte("2"))
		tx.Delete("a")
		return nil
	})
	detach()
	s.Put("c", []byte("after detach"))

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	if events[1].Key != "b" || events[2].Key != "a" || events[2].Mut.Op != core.OpDelete {
		t.Fatalf("txn events wrong: %v", events)
	}
	if events[1].Version != events[2].Version {
		t.Fatal("txn events must share the commit version")
	}
	// Versions never decrease in the feed.
	for i := 1; i < len(events); i++ {
		if events[i].Version < events[i-1].Version {
			t.Fatal("CDC versions regressed")
		}
	}
	// Progress after each commit, at the commit version.
	if len(progress) != 2 || progress[1].Version != events[2].Version {
		t.Fatalf("progress = %v", progress)
	}
}

func TestCDCRangeScoped(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	var events []core.ChangeEvent
	s.AttachCDC(keyspace.NumericRange(0, 10), ingesterFuncs{
		append: func(ev core.ChangeEvent) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			return nil
		},
		progress: func(core.ProgressEvent) error { return nil },
	})
	s.Put(keyspace.NumericKey(5), []byte("in"))
	s.Put(keyspace.NumericKey(50), []byte("out"))
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || events[0].Key != keyspace.NumericKey(5) {
		t.Fatalf("range tap leaked: %v", events)
	}
}

func TestEmitProgressAdvancesIdleRanges(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	var progress []core.ProgressEvent
	s.AttachCDC(keyspace.Full(), ingesterFuncs{
		append:   func(core.ChangeEvent) error { return nil },
		progress: func(p core.ProgressEvent) error { mu.Lock(); progress = append(progress, p); mu.Unlock(); return nil },
	})
	s.Put("zzz", []byte("1"))
	s.EmitProgress(keyspace.NumericRange(0, 100)) // idle range
	mu.Lock()
	defer mu.Unlock()
	last := progress[len(progress)-1]
	if last.Range != keyspace.NumericRange(0, 100) || last.Version != 1 {
		t.Fatalf("idle progress = %v", last)
	}
}

type ingesterFuncs struct {
	append   func(core.ChangeEvent) error
	progress func(core.ProgressEvent) error
}

func (f ingesterFuncs) Append(ev core.ChangeEvent) error    { return f.append(ev) }
func (f ingesterFuncs) Progress(p core.ProgressEvent) error { return f.progress(p) }

func (f ingesterFuncs) AppendBatch(evs []core.ChangeEvent) error {
	for _, ev := range evs {
		if err := f.append(ev); err != nil {
			return err
		}
	}
	return nil
}

// TestQuickSnapshotIsolation: run random ops, remembering a full model of
// history; every snapshot read must match the model exactly, before and
// after later writes.
func TestQuickSnapshotIsolation(t *testing.T) {
	keys := []keyspace.Key{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		type modelState map[keyspace.Key]string
		history := map[core.Version]modelState{0: {}}
		cur := modelState{}
		var versions []core.Version

		for i := 0; i < 60; i++ {
			n := 1 + rng.Intn(3)
			next := modelState{}
			for k, v := range cur {
				next[k] = v
			}
			v, err := s.Commit(func(tx *Tx) error {
				for j := 0; j < n; j++ {
					k := keys[rng.Intn(len(keys))]
					if rng.Intn(4) == 0 {
						tx.Delete(k)
						delete(next, k)
					} else {
						val := fmt.Sprintf("%d-%d", i, j)
						tx.Put(k, []byte(val))
						next[k] = val
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
			cur = next
			history[v] = next
			versions = append(versions, v)
		}
		// Check every key at every version against the model.
		for _, v := range versions {
			want := history[v]
			for _, k := range keys {
				val, ok, err := s.ValueAt(k, v)
				if err != nil {
					return false
				}
				wv, wok := want[k]
				if ok != wok || (ok && string(val) != wv) {
					t.Logf("seed %d: ValueAt(%q,%v) = %q/%v want %q/%v", seed, string(k), v, val, ok, wv, wok)
					return false
				}
			}
			// Scan agrees too.
			entries, err := s.Scan(keyspace.Full(), v, 0)
			if err != nil || len(entries) != len(want) {
				t.Logf("seed %d: scan at %v = %v, want %d entries", seed, v, entries, len(want))
				return false
			}
			for _, e := range entries {
				if want[e.Key] != string(e.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGCPreservesVisibleHistory: after GCBefore(h), every read at
// version >= h returns exactly what it returned before GC.
func TestQuickGCPreservesVisibleHistory(t *testing.T) {
	keys := []keyspace.Key{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		var versions []core.Version
		for i := 0; i < 40; i++ {
			k := keys[rng.Intn(len(keys))]
			var v core.Version
			if rng.Intn(4) == 0 {
				v = s.Delete(k)
			} else {
				v = s.Put(k, []byte(fmt.Sprintf("%d", i)))
			}
			versions = append(versions, v)
		}
		h := versions[rng.Intn(len(versions))]
		type obs struct {
			val string
			ok  bool
		}
		before := map[string]obs{}
		for _, v := range versions {
			if v < h {
				continue
			}
			for _, k := range keys {
				val, ok, _ := s.ValueAt(k, v)
				before[fmt.Sprintf("%s@%d", k, v)] = obs{string(val), ok}
			}
		}
		s.GCBefore(h)
		for _, v := range versions {
			if v < h {
				if _, _, err := s.ValueAt(keys[0], v); !errors.Is(err, ErrVersionGCed) {
					return false
				}
				continue
			}
			for _, k := range keys {
				val, ok, err := s.ValueAt(k, v)
				if err != nil {
					return false
				}
				want := before[fmt.Sprintf("%s@%d", k, v)]
				if ok != want.ok || (ok && string(val) != want.val) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCommits(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Put(keyspace.NumericKey(w*1000+i%10), []byte{byte(i)})
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Commits != writers*per {
		t.Fatalf("commits = %d", st.Commits)
	}
	if st.Version != core.Version(writers*per) {
		t.Fatalf("TSO skipped: %v", st.Version)
	}
}

func TestBytesWrittenAccounting(t *testing.T) {
	s := NewStore()
	s.Put("abc", bytes.Repeat([]byte("x"), 100))
	if got := s.Stats().BytesWritten; got != 3+100+16 {
		t.Fatalf("BytesWritten = %d", got)
	}
}

func BenchmarkStorePutHot(b *testing.B) {
	s := NewStore()
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keyspace.NumericKey(i%4096), val)
	}
}

func BenchmarkStoreScanRange(b *testing.B) {
	s := NewStore()
	for i := 0; i < 20000; i++ {
		s.Put(keyspace.NumericKey(i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 37) % 19000
		s.Scan(keyspace.NumericRange(lo, lo+100), core.NoVersion, 0)
	}
}

// BenchmarkStoreGCAblation quantifies the history-retention design choice:
// each iteration writes a burst of versioned history and garbage-collects to
// a horizon, reporting how many versions survive. Build and GC are timed
// together (untimed setup would dominate wall time); the interesting output
// is the versions-held metric per policy, with build cost constant across
// sub-benchmarks.
func BenchmarkStoreGCAblation(b *testing.B) {
	const writes, hotKeys = 4000, 256
	for _, keepFrac := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("keep=1/%d", keepFrac), func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				s := NewStore()
				for i := 0; i < writes; i++ {
					s.Put(keyspace.NumericKey(i%hotKeys), []byte("v"))
				}
				s.GCBefore(core.Version(writes - writes/keepFrac))
				b.ReportMetric(float64(s.Stats().VersionsHeld), "versions-held")
			}
		})
	}
}

func BenchmarkCDCFanout(b *testing.B) {
	s := NewStore()
	sink := ingesterFuncs{
		append:   func(core.ChangeEvent) error { return nil },
		progress: func(core.ProgressEvent) error { return nil },
	}
	for i := 0; i < 4; i++ {
		s.AttachCDC(keyspace.Full(), sink)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keyspace.NumericKey(i%1024), []byte("v"))
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := NewStore()
	v1 := s.Put("a", []byte("1"))
	s.Put("a", []byte("2"))
	s.Delete("b") // tombstone for a never-live key
	s.Commit(func(tx *Tx) error {
		tx.Put("c", []byte("3"))
		tx.Put("d", []byte("4"))
		return nil
	})
	s.GCBefore(v1)

	data, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.CurrentVersion() != s.CurrentVersion() {
		t.Fatalf("TSO %v vs %v", back.CurrentVersion(), s.CurrentVersion())
	}
	if back.Stats().Horizon != s.Stats().Horizon {
		t.Fatal("horizon lost")
	}
	// Every retained version reads identically.
	for v := s.Stats().Horizon; v <= s.CurrentVersion(); v++ {
		for _, k := range []keyspace.Key{"a", "b", "c", "d"} {
			wv, wok, werr := s.ValueAt(k, v)
			gv, gok, gerr := back.ValueAt(k, v)
			if (werr == nil) != (gerr == nil) || wok != gok || string(wv) != string(gv) {
				t.Fatalf("ValueAt(%q,%v): %q/%v/%v vs %q/%v/%v", k, v, wv, wok, werr, gv, gok, gerr)
			}
		}
	}
	// The restored store keeps committing from the right TSO position.
	next := back.Put("e", []byte("5"))
	if next != s.CurrentVersion()+1 {
		t.Fatalf("next version = %v", next)
	}
	// A watch system rebuilds from the restored store.
	entries, at, err := back.SnapshotRange(keyspace.Full())
	if err != nil || at != next {
		t.Fatalf("snapshot = %v @%v err=%v", entries, at, err)
	}
}

func TestLoadRejectsCorruptImages(t *testing.T) {
	if _, err := Load([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	s := NewStore()
	s.Put("b", []byte("1"))
	s.Put("a", []byte("2"))
	data, _ := s.Save()
	// Saved images are key-ordered by construction; corrupting the order is
	// detected. Build a bad image by hand.
	bad := storeImage{Version: 5, Keys: []keyImage{
		{Key: "b", Versions: []versionImage{{Version: 1}}},
		{Key: "a", Versions: []versionImage{{Version: 2}}},
	}}
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(bad)
	if _, err := Load(buf.Bytes()); err == nil {
		t.Fatal("out-of-order keys accepted")
	}
	bad2 := storeImage{Version: 1, Keys: []keyImage{
		{Key: "a", Versions: []versionImage{{Version: 5}}},
	}}
	buf.Reset()
	gob.NewEncoder(&buf).Encode(bad2)
	if _, err := Load(buf.Bytes()); err == nil {
		t.Fatal("version beyond TSO accepted")
	}
	_ = data
}
