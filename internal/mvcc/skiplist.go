package mvcc

import (
	"math/rand"

	"unbundle/internal/keyspace"
)

// maxLevel bounds the skiplist height; 2^24 keys is far beyond any
// experiment in this repository.
const maxLevel = 24

// skipNode is one key's node. The value payload is the key's version
// history, owned by the store.
type skipNode struct {
	key  keyspace.Key
	hist *history
	next [maxLevel]*skipNode
}

// skiplist is an ordered map from Key to *history. It is not internally
// synchronized; the store's lock guards it. A skiplist (rather than a sorted
// slice) keeps inserts O(log n) under the write-heavy CDC workloads the
// experiments run.
type skiplist struct {
	head  skipNode
	level int
	size  int
	rng   *rand.Rand
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{level: 1, rng: rand.New(rand.NewSource(seed))}
}

// randomLevel draws a geometric level with p = 1/4.
func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// find returns the node for key, or nil.
func (s *skiplist) find(key keyspace.Key) *history {
	n := &s.head
	for i := s.level - 1; i >= 0; i-- {
		for n.next[i] != nil && n.next[i].key < key {
			n = n.next[i]
		}
	}
	n = n.next[0]
	if n != nil && n.key == key {
		return n.hist
	}
	return nil
}

// getOrCreate returns the history for key, inserting an empty one if absent.
func (s *skiplist) getOrCreate(key keyspace.Key) *history {
	var update [maxLevel]*skipNode
	n := &s.head
	for i := s.level - 1; i >= 0; i-- {
		for n.next[i] != nil && n.next[i].key < key {
			n = n.next[i]
		}
		update[i] = n
	}
	if cand := n.next[0]; cand != nil && cand.key == key {
		return cand.hist
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = &s.head
		}
		s.level = lvl
	}
	node := &skipNode{key: key, hist: &history{}}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.size++
	return node.hist
}

// seek returns the first node with key >= k.
func (s *skiplist) seek(k keyspace.Key) *skipNode {
	n := &s.head
	for i := s.level - 1; i >= 0; i-- {
		for n.next[i] != nil && n.next[i].key < k {
			n = n.next[i]
		}
	}
	return n.next[0]
}

// ascend calls fn for every (key, history) with key in r, in key order,
// stopping early if fn returns false.
func (s *skiplist) ascend(r keyspace.Range, fn func(keyspace.Key, *history) bool) {
	if r.Empty() {
		return
	}
	for n := s.seek(r.Low); n != nil; n = n.next[0] {
		if !r.Contains(n.key) {
			return
		}
		if !fn(n.key, n.hist) {
			return
		}
	}
}
