package mvcc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

// storeImage is the serialized form of a store: every key's retained version
// chain plus the TSO and GC horizon. CDC taps are runtime wiring and are not
// serialized — after a restore, watch systems rebuild from the store via
// snapshot + watch, exactly as the unbundled model prescribes.
type storeImage struct {
	Version core.Version
	Horizon core.Version
	Keys    []keyImage
}

type keyImage struct {
	Key      keyspace.Key
	Versions []versionImage
}

type versionImage struct {
	Version core.Version
	Value   []byte
	Deleted bool
}

// Save serializes the store's full retained state.
func (s *Store) Save() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	img := storeImage{Version: s.version, Horizon: s.horizon}
	s.keys.ascend(keyspace.Full(), func(k keyspace.Key, h *history) bool {
		ki := keyImage{Key: k, Versions: make([]versionImage, 0, len(h.versions))}
		for _, vv := range h.versions {
			ki.Versions = append(ki.Versions, versionImage{Version: vv.version, Value: vv.value, Deleted: vv.deleted})
		}
		img.Keys = append(img.Keys, ki)
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("mvcc: save: %w", err)
	}
	return buf.Bytes(), nil
}

// Load reconstructs a store from a Save image: same TSO position, same
// horizon, same visible history at every retained version.
func Load(data []byte) (*Store, error) {
	var img storeImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("mvcc: load: %w", err)
	}
	s := NewStore()
	s.version = img.Version
	s.horizon = img.Horizon
	var prevKey keyspace.Key
	for i, ki := range img.Keys {
		if i > 0 && ki.Key <= prevKey {
			return nil, fmt.Errorf("mvcc: load: keys out of order at %q", string(ki.Key))
		}
		prevKey = ki.Key
		h := s.keys.getOrCreate(ki.Key)
		var prevV core.Version
		for _, vi := range ki.Versions {
			if vi.Version <= prevV {
				return nil, fmt.Errorf("mvcc: load: versions out of order for %q", string(ki.Key))
			}
			if vi.Version > img.Version {
				return nil, fmt.Errorf("mvcc: load: version %v beyond TSO %v", vi.Version, img.Version)
			}
			prevV = vi.Version
			h.versions = append(h.versions, versionedValue{version: vi.Version, value: vi.Value, deleted: vi.Deleted})
			s.versionsHeld++
		}
	}
	return s, nil
}
