package mvcc

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unbundle/internal/keyspace"
)

func TestSkiplistInsertFind(t *testing.T) {
	s := newSkiplist(1)
	if s.find("missing") != nil {
		t.Fatal("found a key in an empty list")
	}
	h1 := s.getOrCreate("b")
	h2 := s.getOrCreate("a")
	if s.getOrCreate("b") != h1 {
		t.Fatal("duplicate insert created a new node")
	}
	if s.find("a") != h2 || s.find("b") != h1 {
		t.Fatal("find returned wrong history")
	}
	if s.size != 2 {
		t.Fatalf("size = %d", s.size)
	}
}

func TestSkiplistAscendOrder(t *testing.T) {
	s := newSkiplist(2)
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		s.getOrCreate(keyspace.NumericKey(i))
	}
	var got []keyspace.Key
	s.ascend(keyspace.Full(), func(k keyspace.Key, _ *history) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 500 {
		t.Fatalf("ascend visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ascend out of order")
	}
}

func TestSkiplistAscendRangeAndEarlyStop(t *testing.T) {
	s := newSkiplist(3)
	for i := 0; i < 100; i++ {
		s.getOrCreate(keyspace.NumericKey(i))
	}
	var got []keyspace.Key
	s.ascend(keyspace.NumericRange(10, 20), func(k keyspace.Key, _ *history) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != keyspace.NumericKey(10) || got[9] != keyspace.NumericKey(19) {
		t.Fatalf("range ascend = %v", got)
	}
	// Early stop.
	n := 0
	s.ascend(keyspace.Full(), func(keyspace.Key, *history) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty range.
	s.ascend(keyspace.Range{}, func(keyspace.Key, *history) bool {
		t.Fatal("empty range visited a key")
		return false
	})
}

// TestQuickSkiplistMatchesMap: the skiplist agrees with a map + sort model
// under random inserts and seeks.
func TestQuickSkiplistMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSkiplist(seed)
		model := map[keyspace.Key]bool{}
		for i := 0; i < 300; i++ {
			k := keyspace.Key(fmt.Sprintf("k%03d", rng.Intn(150)))
			s.getOrCreate(k)
			model[k] = true
		}
		if s.size != len(model) {
			return false
		}
		// find agrees.
		for i := 0; i < 150; i++ {
			k := keyspace.Key(fmt.Sprintf("k%03d", i))
			if (s.find(k) != nil) != model[k] {
				return false
			}
		}
		// seek returns the first key >= probe.
		probe := keyspace.Key(fmt.Sprintf("k%03d", rng.Intn(150)))
		var want keyspace.Key
		var keys []keyspace.Key
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if k >= probe {
				want = k
				break
			}
		}
		node := s.seek(probe)
		if want == "" {
			return node == nil
		}
		return node != nil && node.key == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSkiplistInsert(b *testing.B) {
	s := newSkiplist(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.getOrCreate(keyspace.NumericKey(i % 100000))
	}
}

func BenchmarkSkiplistFind(b *testing.B) {
	s := newSkiplist(1)
	for i := 0; i < 100000; i++ {
		s.getOrCreate(keyspace.NumericKey(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.find(keyspace.NumericKey(i % 100000))
	}
}
