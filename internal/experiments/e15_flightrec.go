package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/flightrec"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/remote"
	"unbundle/internal/trace"
)

func init() {
	register(Experiment{
		ID:     "E15",
		Title:  "Flight recorder: a silent partition leaves a reconstructible black box",
		Anchor: "§2/§4.2 (silent failure made auditable)",
		Run:    runE15,
	})
}

// runE15 reruns the E13 half-open partition — the paper's worst failure
// shape, where nothing errors and only heartbeats can tell — with the
// flight-recorder stack wired through every layer, then plays investigator:
// after recovery, the only evidence consulted is the anomaly-triggered dump.
// The dump alone must reconstruct the outage timeline (heartbeat misses →
// disconnects → reconnects → resumes, with consistent connection
// generations) and carry the causal traces that completed through the
// remote path around it. The claim under test: watch makes divergence
// *detectable*, and the black box makes the detection *auditable* after
// the fact, at fixed memory cost and with zero operator polling.
func runE15(opts Options) (*Result, error) {
	e, _ := Get("E15")
	return run(e, opts, func(res *Result) error {
		consumers := opts.pick(2, 4)
		perPhase := opts.pick(200, 1000)
		const keys = 64

		reg := metrics.NewRegistry()
		rec := flightrec.New(flightrec.Config{Metrics: reg})
		tracer := trace.New(trace.Config{
			SampleEvery: opts.pick(8, 32),
			Metrics:     reg,
			FinalStage:  trace.StageRemoteDeliver,
		})
		ws := mvcc.NewWatchableStore(core.HubConfig{
			Retention: 1 << 15, WatcherBuffer: 1 << 16,
			Metrics: reg, Tracer: tracer, Recorder: rec,
		})
		defer ws.Close()
		srv, err := remote.ServeWith("127.0.0.1:0", ws, ws, remote.ServerConfig{
			Metrics:           reg,
			Tracer:            tracer,
			Recorder:          rec,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer srv.Close()

		// Detection and capture run exactly as in production, except the
		// tick is driven by the experiment loop instead of a wall clock.
		capt := flightrec.NewCapturer(flightrec.CaptureConfig{
			Recorder: rec,
			Tracer:   tracer,
			Metrics:  reg,
			Lags:     func() any { return ws.Hub().WatcherLags() },
		})
		mon := flightrec.NewMonitor(flightrec.MonitorConfig{
			Detectors: flightrec.StandardDetectors(reg),
			OnTrigger: func(name, reason string) { capt.Trigger(name, reason) },
			Metrics:   reg,
		})

		ctrl := remote.NewChaosController(remote.ChaosConfig{Seed: opts.Seed})
		delivered := make([]*atomic.Int64, consumers)
		for i := 0; i < consumers; i++ {
			client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{
				Metrics:           reg,
				Tracer:            tracer,
				Recorder:          rec,
				HeartbeatInterval: 20 * time.Millisecond,
				Reconnect: remote.ReconnectPolicy{
					Enabled:     true,
					MaxAttempts: -1,
					BaseBackoff: 2 * time.Millisecond,
					MaxBackoff:  50 * time.Millisecond,
					Seed:        opts.Seed + int64(i) + 1,
				},
				Dialer: ctrl.Dialer(),
			})
			if err != nil {
				return err
			}
			defer client.Close()
			delivered[i] = &atomic.Int64{}
			n := delivered[i]
			cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
				Event: func(core.ChangeEvent) { n.Add(1) },
			})
			if err != nil {
				return err
			}
			defer cancel()
		}

		v := 0
		produce := func(n int) {
			for i := 0; i < n; i++ {
				v++
				ws.Put(keyspace.NumericKey(v%keys), []byte(fmt.Sprintf("v%d", v)))
			}
		}
		allDelivered := func() bool {
			for _, n := range delivered {
				if n.Load() != int64(v) {
					return false
				}
			}
			return true
		}

		// Phase 1 — healthy traffic settles the detector baselines, just as
		// a production deployment idles through warmup ticks.
		produce(perPhase)
		if !settle(allDelivered) {
			return fmt.Errorf("healthy phase: consumers failed to converge")
		}
		for i := 0; i < 5; i++ {
			mon.Tick()
		}

		// Phase 2 — the silent partition: every live connection half-opens.
		// Reads stall, writes vanish, no socket errors. Production keeps
		// writing into the void; heartbeat deadlines are the only tell.
		dials := ctrl.Dials()
		ctrl.BlackholeLive()
		produce(perPhase)
		if !settle(func() bool { return ctrl.Dials() >= dials+consumers }) {
			return fmt.Errorf("partition: not every client reconnected")
		}
		if !settle(allDelivered) {
			return fmt.Errorf("recovery: consumers failed to converge")
		}

		// Phase 3 — the next detector tick sees the heartbeat-miss burst and
		// snaps the black box.
		mon.Tick()

		// Phase 4 — the investigation. Only the dump is consulted from here.
		dumps := capt.Dumps()
		if len(dumps) == 0 {
			return fmt.Errorf("no black-box dump captured")
		}
		dump := dumps[len(dumps)-1]

		var (
			hbMiss, srvDisc, cliDisc, recon, resume int
			discSeqByGen                            = map[int64]uint64{}
			reconPaired, reconTotal                 int
		)
		reconSeqByGen := map[int64]uint64{}
		for _, r := range dump.Records {
			switch {
			case r.Kind == flightrec.KindHeartbeatMiss:
				hbMiss++
			case r.Kind == flightrec.KindRemoteDisconnect && r.Comp == "remote.server":
				srvDisc++
			case r.Kind == flightrec.KindRemoteDisconnect && r.Comp == "remote.client":
				cliDisc++
				discSeqByGen[r.ID] = r.Seq
			case r.Kind == flightrec.KindRemoteReconnect && r.Comp == "remote.client":
				recon++
				reconSeqByGen[r.ID] = r.Seq
			case r.Kind == flightrec.KindRemoteResume:
				resume++
			}
		}
		// Generations stitch the story: every reconnect at generation G must
		// follow a recorded disconnect of an earlier generation.
		for gen, reconSeq := range reconSeqByGen {
			reconTotal++
			for dgen, discSeq := range discSeqByGen {
				if dgen < gen && discSeq < reconSeq {
					reconPaired++
					break
				}
			}
		}
		tracesComplete := 0
		for _, tr := range dump.Traces {
			if tr.Stages[trace.StageRemoteDeliver] != 0 {
				tracesComplete++
			}
		}
		hbDelta := dump.CounterDelta["remote_client_heartbeat_misses_total"] +
			dump.CounterDelta["remote_server_heartbeat_misses_total"]

		tbl := metrics.NewTable(fmt.Sprintf(
			"E15 — black box after a silent partition (%d consumers, %d events)",
			consumers, v),
			"evidence in the dump", "count")
		tbl.AddRow("trigger", fmt.Sprintf("%s (%s)", dump.Detector, dump.Reason))
		tbl.AddRow("timeline records", len(dump.Records))
		tbl.AddRow("  heartbeat misses", hbMiss)
		tbl.AddRow("  server-side disconnects", srvDisc)
		tbl.AddRow("  client-side disconnects", cliDisc)
		tbl.AddRow("  reconnects", recon)
		tbl.AddRow("  watch resumes", resume)
		tbl.AddRow("completed causal traces", len(dump.Traces))
		tbl.AddRow("heartbeat misses in counter delta", hbDelta)
		tbl.AddRow("live ring records (total)", rec.Len())
		tbl.AddNote("the partition is silent: no socket errors — every record above descends from heartbeat deadlines")
		tbl.AddNote("generations pair each reconnect to its disconnect; resumes carry the version the watch restarted from")
		res.Table = tbl

		res.check("the silent partition triggered the black box",
			dump.Detector == "heartbeat-gap" && hbDelta > 0,
			"detector %s, %d heartbeat misses in the capture window", dump.Detector, hbDelta)
		res.check("the dump alone reconstructs the outage arc",
			hbMiss > 0 && srvDisc > 0 && cliDisc > 0 && recon > 0 && resume > 0,
			"%d hb-miss, %d srv-disc, %d cli-disc, %d reconnect, %d resume records",
			hbMiss, srvDisc, cliDisc, recon, resume)
		res.check("every reconnect pairs with an earlier-generation disconnect",
			reconTotal > 0 && reconPaired == reconTotal,
			"%d/%d reconnects paired by generation", reconPaired, reconTotal)
		res.check("causal traces completed through the remote path around the outage",
			len(dump.Traces) > 0 && tracesComplete == len(dump.Traces),
			"%d traces, all with a remote-deliver stage", len(dump.Traces))
		res.check("every consumer converged after recovery (E13's contract still holds)",
			allDelivered(), "%d consumers at version %d", consumers, v)
		return nil
	})
}
