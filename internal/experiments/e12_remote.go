package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/remote"
)

func init() {
	register(Experiment{
		ID:     "E12",
		Title:  "Remote transport batching: the network boundary keeps the batched feed",
		Anchor: "§5 (standalone watch system)",
		Run:    runE12,
	})
}

// runE12 measures the remote watch transport in its two regimes over
// loopback TCP.
//
// Trickle: the producer appends one event at a time and waits for delivery —
// the latency regime. Every event rides its own wire frame (events/frame ≈ 1)
// and flush-on-queue-empty keeps delivery immediate.
//
// Firehose: the producer appends CDC-style batches at full speed — the
// throughput regime. The hub's ring drains whole runs, the transport carries
// them as single EventBatch frames, and the per-connection writer coalesces
// flushes, so frames and bytes per event collapse while the lag-or-resync
// contract stays intact (zero resyncs at a paced window below the outbox
// bound).
func runE12(opts Options) (*Result, error) {
	e, _ := Get("E12")
	return run(e, opts, func(res *Result) error {
		watchers := opts.pick(4, 8)
		trickleN := opts.pick(500, 2000)
		firehoseN := opts.pick(8000, 100000)
		const batch = 64

		type phaseStats struct {
			events        int64
			frames        int64
			bytesPerEvent float64
			evsPerFrame   float64
			resyncs       int64
			took          time.Duration
		}

		runPhase := func(n, appendBatch int) (phaseStats, error) {
			var st phaseStats
			reg := metrics.NewRegistry()
			hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
			defer hub.Close()
			srv, err := remote.ServeWith("127.0.0.1:0", hub, nil2Snap{}, remote.ServerConfig{Metrics: reg})
			if err != nil {
				return st, err
			}
			defer srv.Close()

			delivered := make([]atomic.Int64, watchers)
			var resyncs atomic.Int64
			for w := 0; w < watchers; w++ {
				c, err := remote.DialWith(srv.Addr(), remote.ClientConfig{Metrics: reg})
				if err != nil {
					return st, err
				}
				defer c.Close()
				d := &delivered[w]
				cancel, err := c.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
					Event:  func(core.ChangeEvent) { d.Add(1) },
					Resync: func(core.ResyncEvent) { resyncs.Add(1) },
				})
				if err != nil {
					return st, err
				}
				defer cancel()
			}
			minDelivered := func() int64 {
				m := delivered[0].Load()
				for i := 1; i < watchers; i++ {
					if v := delivered[i].Load(); v < m {
						m = v
					}
				}
				return m
			}

			start := time.Now()
			evs := make([]core.ChangeEvent, 0, appendBatch)
			produced := 0
			for produced < n {
				evs = evs[:0]
				for i := 0; i < appendBatch && produced < n; i++ {
					produced++
					evs = append(evs, core.ChangeEvent{
						Key:     keyspace.NumericKey(produced % 256),
						Mut:     core.Mutation{Op: core.OpPut, Value: []byte("0123456789abcdef")},
						Version: core.Version(produced),
					})
				}
				if err := hub.AppendBatch(evs); err != nil {
					return st, err
				}
				if appendBatch == 1 {
					// Trickle: fully drained between events, so every event
					// crosses the wire in its own frame.
					if !settle(func() bool { return minDelivered() >= int64(produced) }) {
						return st, fmt.Errorf("trickle delivery stalled at %d/%d", minDelivered(), produced)
					}
				} else if produced%512 == 0 {
					// Firehose: paced window below the connection outbox bound.
					target := int64(produced - 4096)
					if !settle(func() bool { return minDelivered() >= target }) {
						return st, fmt.Errorf("firehose delivery stalled at %d/%d", minDelivered(), produced)
					}
				}
			}
			if !settle(func() bool { return minDelivered() >= int64(n) }) {
				return st, fmt.Errorf("final drain stalled at %d/%d", minDelivered(), n)
			}
			st.took = time.Since(start)

			snap := reg.Snapshot()
			st.events = snap.Counters["remote_server_events_total"]
			st.frames = snap.Counters["remote_server_frames_total"]
			if st.events > 0 {
				st.bytesPerEvent = float64(snap.Counters["remote_server_bytes_total"]) / float64(st.events)
			}
			if st.frames > 0 {
				st.evsPerFrame = float64(st.events) / float64(st.frames)
			}
			st.resyncs = resyncs.Load()
			return st, nil
		}

		trickle, err := runPhase(trickleN, 1)
		if err != nil {
			return err
		}
		firehose, err := runPhase(firehoseN, batch)
		if err != nil {
			return err
		}
		fhRate := float64(firehoseN) * float64(watchers) / firehose.took.Seconds()

		tbl := metrics.NewTable("E12 — remote transport over loopback TCP, "+
			fmt.Sprintf("%d watchers", watchers),
			"regime", "events", "wire frames", "events/frame", "wire B/event", "resyncs")
		tbl.AddRow("trickle (1 event, drained)", trickle.events, trickle.frames,
			fmt.Sprintf("%.1f", trickle.evsPerFrame), fmt.Sprintf("%.1f", trickle.bytesPerEvent), trickle.resyncs)
		tbl.AddRow(fmt.Sprintf("firehose (batches of %d)", batch), firehose.events, firehose.frames,
			fmt.Sprintf("%.1f", firehose.evsPerFrame), fmt.Sprintf("%.1f", firehose.bytesPerEvent), firehose.resyncs)
		tbl.AddNote("firehose fan-out throughput: %.0f events/sec across %d watchers", fhRate, watchers)
		tbl.AddNote("frames and bytes from remote_server_* counters; one EventBatch frame carries one ring-drain run")
		res.Table = tbl

		res.check("trickle delivers every event without resync",
			trickle.resyncs == 0 && trickle.events == int64(trickleN*watchers),
			"%d events, %d resyncs", trickle.events, trickle.resyncs)
		res.check("firehose delivers every event without resync",
			firehose.resyncs == 0 && firehose.events == int64(firehoseN*watchers),
			"%d events, %d resyncs", firehose.events, firehose.resyncs)
		res.check("batched feed survives the network boundary",
			firehose.evsPerFrame >= 8,
			"%.1f events/frame under load", firehose.evsPerFrame)
		res.check("wire batching amortizes framing overhead",
			firehose.bytesPerEvent < trickle.bytesPerEvent,
			"%.1f B/event batched vs %.1f B/event trickle", firehose.bytesPerEvent, trickle.bytesPerEvent)
		return nil
	})
}

// nil2Snap is an empty Snapshotter: E12 never resyncs, so recovery reads are
// out of scope.
type nil2Snap struct{}

func (nil2Snap) SnapshotRange(keyspace.Range) ([]core.Entry, core.Version, error) {
	return nil, 0, nil
}
