package experiments

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
)

func init() {
	register(Experiment{
		ID:     "E17",
		Title:  "Overload protection: a watcher storm degrades to eviction, shedding and explicit refusal — never OOM, never silence",
		Anchor: "§3.1/§4.2 (broadcast storms; the contract under overload)",
		Run:    runE17,
	})
}

// e17Sink mirrors its watcher's range into a map, like e13Sink; gate, when
// non-nil, blocks every ApplyChange until released — the deliberately slow
// consumer whose ring the governor must eventually shed.
type e17Sink struct {
	mu    sync.Mutex
	state map[keyspace.Key]string
	gate  chan struct{}
}

func (s *e17Sink) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.state {
		if r.Contains(k) {
			delete(s.state, k)
		}
	}
	for _, e := range entries {
		s.state[e.Key] = string(e.Value)
	}
}

func (s *e17Sink) ApplyChange(ev core.ChangeEvent) {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Mut.Op == core.OpDelete {
		delete(s.state, ev.Key)
		return
	}
	s.state[ev.Key] = string(ev.Mut.Value)
}

func (s *e17Sink) AdvanceFrontier(core.ProgressEvent) {}

// runE17 drives a governed hub through a watcher storm. A handful of
// consumers stop draining entirely while a producer floods large values:
// the governor must walk its ladder in order — accelerate eviction to the
// retention floor, shed the worst-offending watchers with an explicit
// resync and a quarantine, and refuse their too-eager re-admission with a
// typed retry hint. When the storm subsides, every consumer — including
// every shed one — must converge to a byte-equal replica: degraded service
// recovers to full correctness, and at no point did the process trade the
// contract for memory.
func runE17(opts Options) (*Result, error) {
	e, _ := Get("E17")
	return run(e, opts, func(res *Result) error {
		watchers := opts.pick(6, 16)
		slow := opts.pick(2, 4)
		events := opts.pick(3000, 12000)
		valSize := opts.pick(1024, 2048)
		budget := int64(opts.pick(1<<20, 4<<20))

		reg := metrics.NewRegistry()
		gov := govern.NewGovernor(govern.Config{
			Budget:         budget,
			QuarantineBase: 400 * time.Millisecond,
			QuarantineMax:  2 * time.Second,
			Metrics:        reg,
			Seed:           opts.Seed,
		})
		defer gov.Close()
		ws := mvcc.NewWatchableStore(core.HubConfig{
			Retention:      opts.pick(256, 512),
			RetentionFloor: opts.pick(32, 64),
			WatcherBuffer:  1 << 14,
			Metrics:        reg,
			Governor:       gov,
		})
		defer ws.Close()

		// One prefix per watcher, so each watcher's range — the governor's
		// quarantine key — is distinct, and a shed aimed at one laggard
		// never collaterally blocks its neighbours' re-admission.
		gate := make(chan struct{})
		sinks := make([]*e17Sink, watchers)
		rws := make([]*core.ResyncWatcher, watchers)
		ranges := make([]keyspace.Range, watchers)
		for i := 0; i < watchers; i++ {
			ranges[i] = keyspace.Prefix(keyspace.Key(fmt.Sprintf("w%02d/", i)))
			sinks[i] = &e17Sink{state: make(map[keyspace.Key]string)}
			if i < slow {
				sinks[i].gate = gate
			}
			rws[i] = core.NewResyncWatcher(ws, ws, ranges[i], sinks[i])
			if err := rws[i].Start(); err != nil {
				return err
			}
			defer rws[i].Stop()
		}

		// Sample peak pressure while the storm runs.
		peak := 0
		stopSample := make(chan struct{})
		var sampleDone sync.WaitGroup
		sampleDone.Add(1)
		go func() {
			defer sampleDone.Done()
			for {
				select {
				case <-stopSample:
					return
				case <-time.After(200 * time.Microsecond):
					if l := gov.Snapshot().Level; l > peak {
						peak = l
					}
				}
			}
		}()

		val := make([]byte, valSize)
		for i := 1; i <= events; i++ {
			w := i % watchers
			ws.Put(keyspace.Key(fmt.Sprintf("w%02d/%04d", w, i%64)), val)
			// Yield between bursts: a real storm arrives over I/O, and on a
			// single-core runner an unbroken Put loop would starve the very
			// relief goroutine the experiment is about.
			if i%64 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		}
		close(stopSample)
		sampleDone.Wait()

		// Storm over: release the laggards and let the system heal. Shed
		// watchers now consume their explicit resync, retry, get refused by
		// the quarantine with a RetryAfter, back off, and re-admit.
		close(gate)

		converged := func() bool {
			for i, s := range sinks {
				entries, _, err := ws.SnapshotRange(ranges[i])
				if err != nil {
					return false
				}
				s.mu.Lock()
				ok := len(s.state) == len(entries)
				if ok {
					for _, e := range entries {
						if s.state[e.Key] != string(e.Value) {
							ok = false
							break
						}
					}
				}
				s.mu.Unlock()
				if !ok {
					return false
				}
			}
			return true
		}
		if !settle(converged) {
			return fmt.Errorf("consumers failed to converge after the storm subsided")
		}

		st := gov.Snapshot()
		var totalResyncs int64
		for _, w := range rws {
			totalResyncs += w.Resyncs()
		}
		snap := reg.Snapshot()

		tbl := metrics.NewTable(fmt.Sprintf(
			"E17 — %d watchers (%d stalled) vs a %d-event storm under a %d-byte budget",
			watchers, slow, events, budget),
			"metric", "value")
		tbl.AddRow("peak pressure level", fmt.Sprintf("%d (%s)", peak, govern.Pressure(peak)))
		tbl.AddRow("relief runs", st.ReliefRuns)
		tbl.AddRow("watchers shed", st.Sheds)
		tbl.AddRow("admissions refused", st.Rejects)
		tbl.AddRow("explicit resync cycles", totalResyncs)
		tbl.AddRow("final used bytes", st.UsedBytes)
		tbl.AddRow("final pressure", st.Pressure)
		tbl.AddRow("hub resyncs total", snap.Counters["core_hub_resyncs_total"])
		tbl.AddNote("ladder order: accelerate eviction -> shed worst watchers -> refuse admission with RetryAfter")
		tbl.AddNote("convergence = every consumer (shed ones included) byte-equal to the store after the storm")
		res.Table = tbl

		res.check("the storm escalated past eviction into shedding",
			peak >= int(govern.Shed) && st.Sheds >= 1,
			"peak level %d, %d sheds", peak, st.Sheds)
		res.check("relief ran before any watcher was touched",
			st.ReliefRuns >= 1, "%d relief runs", st.ReliefRuns)
		res.check("every shed was an explicit resync, not silent loss",
			totalResyncs >= st.Sheds,
			"%d resync cycles for %d sheds", totalResyncs, st.Sheds)
		res.check("a quarantined re-admission was refused with a retry hint",
			st.Rejects >= 1, "%d refusals", st.Rejects)
		res.check("every consumer converged byte-equal after the storm",
			converged(), "%d watchers, %d stalled during the storm", watchers, slow)
		res.check("the governor returned to budget once load subsided",
			st.UsedBytes <= st.BudgetBytes && st.Level < int(govern.Shed),
			"used %d of %d, pressure %s", st.UsedBytes, st.BudgetBytes, st.Pressure)
		return nil
	})
}
