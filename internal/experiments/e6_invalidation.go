package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"unbundle/internal/cache"
	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/sharder"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E6",
		Title:  "Cache invalidation under auto-sharding: the Figure 2 race, leases, fanout, watch",
		Anchor: "Figure 2, §3.2.2 vs §4.3",
		Run:    runE6,
	})
}

// runE6 runs a continuous cache workload — updates, reads, and auto-sharder
// range moves — through four invalidation topologies and scores staleness
// with an omniscient oracle. The pubsub-routed cluster accumulates
// permanently stale entries whenever a move races an update (Figure 2);
// leases close the race at an availability cost; free-consumer fanout stays
// correct but pays the full feed per pod; the watch cluster is correct with
// range-scoped delivery and no invalidation topic at all.
func runE6(opts Options) (*Result, error) {
	e, _ := Get("E6")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(400, 4000)
		steps := opts.pick(2000, 12000)
		movePeriod := 25        // a sharder move every movePeriod steps
		moveWidth := nKeys / 40 // moved-range width scales with the keyspace
		pods := []sharder.Pod{"p0", "p1", "p2", "p3"}

		type outcome struct {
			name        string
			staleReads  int64
			reads       int64
			permStale   int
			checked     int
			staleAfter  int // stale reads when every key is re-read after quiescence
			unavailable int64
			podMsgs     int64
			resyncs     int64
		}
		var outcomes []outcome

		runPubSub := func(mode cache.Mode, ttl time.Duration, label string) error {
			clock := clockwork.NewFake()
			cfg := cache.PubSubConfig{
				Clock:         clock,
				Mode:          mode,
				Pods:          pods,
				Coalesce:      true,
				RouterLag:     500 * time.Millisecond,
				LeaseDuration: 2 * time.Second,
				TTL:           ttl,
				InitialShards: 16,
			}
			c, err := cache.NewPubSubCluster(cfg)
			if err != nil {
				return err
			}
			defer c.Close()
			oracle := cache.NewOracle(c.Store())
			rng := rand.New(rand.NewSource(opts.Seed))
			stream := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.2))

			// Router bootstrap.
			clock.Advance(time.Second)
			settle(func() bool { return c.RouterGeneration() >= 1 })

			var recent []keyspace.Key
			for i := 0; i < steps; i++ {
				// 30% of writes are read-modify-write on a recently read key
				// (the dominant pattern in cached workloads); the rest follow
				// the Zipf update stream.
				var k keyspace.Key
				var v []byte
				if len(recent) > 0 && rng.Float64() < 0.3 {
					k, v = stream.NextFor(recent[rng.Intn(len(recent))])
				} else {
					k, v = stream.Next()
				}
				if err := c.Update(k, v); err != nil {
					return err
				}
				for j := 0; j < 2; j++ {
					rk := keyspace.NumericKey(rng.Intn(nKeys))
					r, err := c.Read(rk)
					if err != nil {
						return err
					}
					if !r.Unavailable {
						oracle.ScoreRead(rk, r.Value)
					}
					recent = append(recent, rk)
					if len(recent) > 32 {
						recent = recent[1:]
					}
				}
				if i%movePeriod == 0 {
					lo := rng.Intn(nKeys - moveWidth)
					target := pods[rng.Intn(len(pods))]
					_ = c.Sharder().MoveRange(keyspace.NumericRange(lo, lo+moveWidth), target)
				}
				clock.Advance(20 * time.Millisecond)
				c.Pump()
				if i%16 == 0 {
					time.Sleep(50 * time.Microsecond) // realistic pacing, matches the watch loop
				}
			}
			// Settle: let the router catch up and deliver everything.
			clock.Advance(5 * time.Second)
			settle(func() bool { return c.RouterGeneration() >= c.Sharder().Stats().Generation })
			for i := 0; i < 10; i++ {
				clock.Advance(time.Second)
				c.Pump()
			}
			stale, checked := oracle.SweepPubSub(c)
			st := oracle.Stats()
			cst := c.Stats()
			// Post-quiescence sweep read: every key, once. Any staleness now
			// is permanent — no pending invalidation can fix it.
			staleAfter := 0
			for key := 0; key < nKeys; key++ {
				rk := keyspace.NumericKey(key)
				stale, err := staleAfterQuiescence(rk, func() ([]byte, error) {
					r, err := c.Read(rk)
					return r.Value, err
				}, c.Store())
				if err != nil {
					return err
				}
				if stale {
					staleAfter++
				}
			}
			outcomes = append(outcomes, outcome{
				name:        label,
				staleReads:  st.StaleReads,
				reads:       st.Reads,
				permStale:   stale,
				checked:     checked,
				staleAfter:  staleAfter,
				unavailable: cst.Unavailable,
				podMsgs:     cst.PodMessages,
			})
			return nil
		}

		if err := runPubSub(cache.ModeRouted, 0, "pubsub-routed (Fig 2)"); err != nil {
			return err
		}
		if err := runPubSub(cache.ModeLease, 0, "pubsub-lease"); err != nil {
			return err
		}
		if err := runPubSub(cache.ModeFanout, 0, "pubsub-fanout"); err != nil {
			return err
		}

		// ---------------- watch cluster ----------------
		wc := cache.NewWatchCluster(cache.WatchConfig{
			Pods:          pods,
			InitialShards: 16,
			Coalesce:      true,
		})
		defer wc.Close()
		oracle := cache.NewOracle(wc.Store())
		rng := rand.New(rand.NewSource(opts.Seed))
		stream := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.2))
		// Wait for initial coverage.
		settle(func() bool {
			for _, p := range wc.Pods() {
				if len(p.Knowledge()) == 0 {
					return false
				}
			}
			return true
		})
		var wReads, wStale int64
		var recent []keyspace.Key
		for i := 0; i < steps; i++ {
			var k keyspace.Key
			var v []byte
			if len(recent) > 0 && rng.Float64() < 0.3 {
				k, v = stream.NextFor(recent[rng.Intn(len(recent))])
			} else {
				k, v = stream.Next()
			}
			wc.Update(k, v)
			for j := 0; j < 2; j++ {
				rk := keyspace.NumericKey(rng.Intn(nKeys))
				r, err := wc.Read(rk)
				if err != nil {
					return err
				}
				wReads++
				if !oracle.ScoreRead(rk, r.Value) {
					wStale++
				}
				recent = append(recent, rk)
				if len(recent) > 32 {
					recent = recent[1:]
				}
			}
			if i%movePeriod == 0 {
				lo := rng.Intn(nKeys - moveWidth)
				target := pods[rng.Intn(len(pods))]
				_ = wc.Sharder().MoveRange(keyspace.NumericRange(lo, lo+moveWidth), target)
			}
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond) // let the CDC→hub→pod pipeline run
			}
		}
		// Settle: watchers converge to the store.
		storeV := wc.Store().CurrentVersion()
		settle(func() bool {
			stale, _ := oracle.SweepWatch(wc)
			return stale == 0 && wc.Store().CurrentVersion() == storeV
		})
		wPermStale, wChecked := oracle.SweepWatch(wc)
		var wResyncs int64
		for _, p := range wc.Pods() {
			wResyncs += p.Resyncs()
		}
		wStaleAfter := 0
		for key := 0; key < nKeys; key++ {
			rk := keyspace.NumericKey(key)
			stale, err := staleAfterQuiescence(rk, func() ([]byte, error) {
				r, err := wc.Read(rk)
				return r.Value, err
			}, wc.Store())
			if err != nil {
				return err
			}
			if stale {
				wStaleAfter++
			}
		}
		outcomes = append(outcomes, outcome{
			name:       "watch",
			staleReads: wStale,
			reads:      wReads,
			permStale:  wPermStale,
			checked:    wChecked,
			staleAfter: wStaleAfter,
			resyncs:    wResyncs,
		})

		tbl := metrics.NewTable("E6 — invalidation under dynamic resharding",
			"topology", "reads", "stale reads", "permanently stale entries", "stale after quiescence", "unavailable reads", "per-pod feed msgs", "resyncs")
		for _, o := range outcomes {
			tbl.AddRow(o.name, o.reads, o.staleReads, fmt.Sprintf("%d/%d", o.permStale, o.checked),
				fmt.Sprintf("%d/%d", o.staleAfter, nKeys), o.unavailable, o.podMsgs, o.resyncs)
		}
		tbl.AddNote("'permanently stale' = cache entries still wrong after full quiescence: no invalidation will ever fix them")
		res.Table = tbl

		routed := outcomes[0]
		lease := outcomes[1]
		fanout := outcomes[2]
		watch := outcomes[3]
		res.check("routed pubsub leaves permanently stale entries (Figure 2)",
			routed.permStale > 0, "%d/%d entries", routed.permStale, routed.checked)
		res.check("leases close the race", lease.permStale == 0, "%d stale", lease.permStale)
		res.check("…but cost availability", lease.unavailable > routed.unavailable,
			"lease %d vs routed %d unavailable reads", lease.unavailable, routed.unavailable)
		res.check("fanout avoids permanent staleness", fanout.permStale == 0, "%d stale", fanout.permStale)
		res.check("…but every pod pays for the whole feed",
			fanout.podMsgs >= int64(steps*len(pods)), "%d pod-messages for %d updates", fanout.podMsgs, steps)
		res.check("watch has no permanently stale entries", watch.permStale == 0,
			"%d/%d entries", watch.permStale, watch.checked)
		// Any asynchronous cache shows propagation-window staleness on an
		// instantaneous oracle during the run; the end-to-end claim is about
		// what remains once everything quiesces: watch staleness is transient
		// (the event stream cures it), routed pubsub's is permanent.
		res.check("after quiescence, watch serves zero stale reads",
			watch.staleAfter == 0, "%d of %d keys", watch.staleAfter, nKeys)
		res.check("after quiescence, routed pubsub still serves stale reads",
			routed.staleAfter > 0, "%d of %d keys", routed.staleAfter, nKeys)
		return nil
	})
}

// staleAfterQuiescence re-reads a key, allowing a short grace for in-flight
// deliveries to land; only staleness that survives the grace counts.
// Permanent staleness — the Figure 2 end state — survives any grace.
func staleAfterQuiescence(k keyspace.Key, read func() ([]byte, error), store *mvcc.Store) (bool, error) {
	deadline := time.Now().Add(250 * time.Millisecond)
	for {
		v, err := read()
		if err != nil {
			return false, err
		}
		want, _, _, _ := store.Get(k, 0)
		if string(v) == string(want) {
			return false, nil
		}
		if time.Now().After(deadline) {
			return true, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}
