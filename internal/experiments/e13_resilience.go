package experiments

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/remote"
)

func init() {
	register(Experiment{
		ID:     "E13",
		Title:  "Transport resilience: partitions heal by resume-or-resync, never by silence",
		Anchor: "§4.2/§4.4 (the watch contract under failure)",
		Run:    runE13,
	})
}

// e13Sink is a SyncedConsumer mirroring the watched range into a map — the
// "replica" each consumer maintains, compared byte-for-byte against the
// source store after every partition round.
type e13Sink struct {
	mu    sync.Mutex
	state map[keyspace.Key]string
}

func (s *e13Sink) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.state {
		if r.Contains(k) {
			delete(s.state, k)
		}
	}
	for _, e := range entries {
		s.state[e.Key] = string(e.Value)
	}
}

func (s *e13Sink) ApplyChange(ev core.ChangeEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Mut.Op == core.OpDelete {
		delete(s.state, ev.Key)
		return
	}
	s.state[ev.Key] = string(ev.Mut.Value)
}

func (s *e13Sink) AdvanceFrontier(core.ProgressEvent) {}

// runE13 drives the full recovery stack — MVCC store → hub → remote server →
// chaos-wrapped TCP → reconnecting client → ResyncWatcher — through repeated
// network partitions, alternating abrupt severs with silent blackholes (the
// half-open shape that, without heartbeats, hangs a watcher forever). After
// every round each consumer's replica must equal the store exactly: the
// paper's trichotomy (current / lagging / explicitly resyncing) holds under
// failure, and "silently stale" is not a reachable state.
func runE13(opts Options) (*Result, error) {
	e, _ := Get("E13")
	return run(e, opts, func(res *Result) error {
		consumers := opts.pick(2, 4)
		rounds := opts.pick(4, 6)
		perRound := opts.pick(300, 1500)
		const keys = 128

		reg := metrics.NewRegistry()
		ws := mvcc.NewWatchableStore(core.HubConfig{Retention: 1 << 15, WatcherBuffer: 1 << 16, Metrics: reg})
		defer ws.Close()
		srv, err := remote.ServeWith("127.0.0.1:0", ws, ws, remote.ServerConfig{
			Metrics:           reg,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer srv.Close()

		ctrl := remote.NewChaosController(remote.ChaosConfig{Seed: opts.Seed})
		sinks := make([]*e13Sink, consumers)
		watchers := make([]*core.ResyncWatcher, consumers)
		for i := 0; i < consumers; i++ {
			client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{
				Metrics:           reg,
				HeartbeatInterval: 20 * time.Millisecond,
				Reconnect: remote.ReconnectPolicy{
					Enabled:     true,
					MaxAttempts: -1,
					BaseBackoff: 2 * time.Millisecond,
					MaxBackoff:  50 * time.Millisecond,
					Seed:        opts.Seed + int64(i) + 1,
				},
				Dialer: ctrl.Dialer(),
			})
			if err != nil {
				return err
			}
			defer client.Close()
			sinks[i] = &e13Sink{state: make(map[keyspace.Key]string)}
			watchers[i] = core.NewResyncWatcher(client, client, keyspace.Full(), sinks[i])
			if err := watchers[i].Start(); err != nil {
				return err
			}
			defer watchers[i].Stop()
		}

		// converged reports whether every consumer replica equals the store.
		// Only called while the producer is idle, so the snapshot is stable.
		converged := func() bool {
			entries, _, err := ws.SnapshotRange(keyspace.Full())
			if err != nil {
				return false
			}
			for _, s := range sinks {
				s.mu.Lock()
				ok := len(s.state) == len(entries)
				if ok {
					for _, e := range entries {
						if s.state[e.Key] != string(e.Value) {
							ok = false
							break
						}
					}
				}
				s.mu.Unlock()
				if !ok {
					return false
				}
			}
			return true
		}

		partitions := 0
		v := 0
		for round := 1; round <= rounds; round++ {
			for i := 0; i < perRound; i++ {
				v++
				ws.Put(keyspace.NumericKey(v%keys), []byte(fmt.Sprintf("r%d-%d", round, v)))
			}
			if !settle(converged) {
				return fmt.Errorf("round %d: consumers failed to converge (hung or stale watcher)", round)
			}
			if round < rounds {
				dials := ctrl.Dials()
				if round%2 == 1 {
					ctrl.SeverAll() // abrupt: FIN/RST visible immediately
				} else {
					ctrl.BlackholeLive() // silent: only heartbeats can tell
				}
				partitions++
				if !settle(func() bool { return ctrl.Dials() >= dials+consumers }) {
					return fmt.Errorf("partition %d: not every client reconnected", partitions)
				}
			}
		}

		snap := reg.Snapshot()
		var totalEvents, totalResyncs int64
		for _, w := range watchers {
			totalEvents += w.Events()
			totalResyncs += w.Resyncs()
		}
		reconnects := snap.Counters["remote_client_reconnects_total"]
		resumed := snap.Counters["remote_client_resumed_watches_total"]
		hb := snap.Counters["remote_client_heartbeats_total"] + snap.Counters["remote_server_heartbeats_total"]

		tbl := metrics.NewTable(fmt.Sprintf(
			"E13 — %d consumers through %d partitions (sever + blackhole alternating)",
			consumers, partitions),
			"metric", "value")
		tbl.AddRow("events produced", v)
		tbl.AddRow("events applied (all consumers)", totalEvents)
		tbl.AddRow("client reconnects", reconnects)
		tbl.AddRow("watches resumed from version", resumed)
		tbl.AddRow("explicit resync cycles", totalResyncs)
		tbl.AddRow("heartbeat frames (both ends)", hb)
		tbl.AddRow("conn drops accounted", snap.Counters["remote_server_conn_drops_total"])
		tbl.AddNote("blackholed rounds are detected purely by heartbeat deadlines; severed rounds by socket errors")
		tbl.AddNote("convergence = every consumer replica byte-equal to the store after each round")
		res.Table = tbl

		res.check("every consumer converged after every partition round",
			converged(), "%d consumers, %d partitions", consumers, partitions)
		res.check("every partition produced a reconnect per consumer",
			reconnects >= int64(partitions*consumers),
			"%d reconnects across %d partitions × %d consumers", reconnects, partitions, consumers)
		res.check("recovery was resume-or-resync, never a hung watcher",
			resumed > 0 && totalEvents >= int64(v),
			"%d watches resumed, %d events applied of %d produced", resumed, totalEvents, v)
		res.check("heartbeats flowed (the blackhole rounds depend on them)",
			hb > 0, "%d heartbeat frames", hb)
		return nil
	})
}
