package experiments

import (
	"fmt"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/ingeststore"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E11",
		Title:  "The Figure 3 design space: four storage×notification wirings behind one contract",
		Anchor: "Figure 3, §4",
		Run:    runE11,
	})
}

// runE11 runs the same keyed workload through all four quadrants of
// Figure 3 — producer storage vs ingestion storage, built-in watch vs an
// external watch system — and verifies they are observationally equivalent
// behind the core.Watchable contract: same per-key event sequences, frontier
// reaching the source version. This is the unbundling thesis in code: the
// watch contract does not care where the storage lives.
func runE11(opts Options) (*Result, error) {
	e, _ := Get("E11")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(50, 400)
		updates := opts.pick(1000, 10000)

		type quadrant struct {
			name    string
			watch   core.Watchable
			drive   func(k keyspace.Key, v []byte)
			version func() core.Version
			keyOf   func(ev core.ChangeEvent) keyspace.Key
			cleanup func()
		}
		var quads []quadrant

		// Watcher queues hold events plus per-commit progress marks.
		hubCfg := core.HubConfig{Retention: updates + 1, WatcherBuffer: 4 * updates}

		// Q1: producer storage, built-in watch (Spanner change streams,
		// Kubernetes API server).
		ws := mvcc.NewWatchableStore(hubCfg)
		quads = append(quads, quadrant{
			name:    "producer store + built-in watch",
			watch:   ws,
			drive:   func(k keyspace.Key, v []byte) { ws.Put(k, v) },
			version: ws.CurrentVersion,
			keyOf:   func(ev core.ChangeEvent) keyspace.Key { return ev.Key },
			cleanup: ws.Close,
		})

		// Q2: producer storage, external watch system (MySQL/TiDB + Snappy).
		st2 := mvcc.NewStore()
		hub2 := core.NewHub(hubCfg)
		detach2 := st2.AttachCDC(keyspace.Full(), hub2)
		quads = append(quads, quadrant{
			name:    "producer store + external watch",
			watch:   hub2,
			drive:   func(k keyspace.Key, v []byte) { st2.Put(k, v) },
			version: st2.CurrentVersion,
			keyOf:   func(ev core.ChangeEvent) keyspace.Key { return ev.Key },
			cleanup: func() { detach2(); hub2.Close() },
		})

		// Q3: ingestion storage, built-in watch ("refined Kafka": explicit
		// store, standard watch API).
		ing3 := ingeststore.NewWatchable(ingeststore.Config{}, hubCfg)
		quads = append(quads, quadrant{
			name:    "ingestion store + built-in watch",
			watch:   ing3,
			drive:   func(k keyspace.Key, v []byte) { ing3.Append(k, v) },
			version: ing3.CurrentSeq,
			keyOf:   eventSeriesKey,
			cleanup: ing3.Close,
		})

		// Q4: ingestion storage, external watch system.
		ing4 := ingeststore.NewStore(ingeststore.Config{})
		hub4 := core.NewHub(hubCfg)
		detach4 := ing4.AttachIngester(hub4)
		quads = append(quads, quadrant{
			name:    "ingestion store + external watch",
			watch:   hub4,
			drive:   func(k keyspace.Key, v []byte) { ing4.Append(k, v) },
			version: ing4.CurrentSeq,
			keyOf:   eventSeriesKey,
			cleanup: func() { detach4(); hub4.Close() },
		})

		// Drive the identical workload through each quadrant and record the
		// per-key payload sequences an observer sees.
		type obs struct {
			perKey map[keyspace.Key][]string
			events int
		}
		results := make([]obs, len(quads))
		tbl := metrics.NewTable("E11 — one workload, four wirings",
			"quadrant", "events observed", "frontier = source version", "per-key sequences")
		var firstSeqs map[keyspace.Key][]string
		allEqual := true
		frontierOK := true

		for qi, q := range quads {
			var mu sync.Mutex
			perKey := map[keyspace.Key][]string{}
			events := 0
			var frontier core.Version
			cancel, err := q.watch.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
				Event: func(ev core.ChangeEvent) {
					mu.Lock()
					k := q.keyOf(ev)
					perKey[k] = append(perKey[k], string(ev.Mut.Value))
					events++
					mu.Unlock()
				},
				Progress: func(p core.ProgressEvent) {
					mu.Lock()
					if p.Version > frontier {
						frontier = p.Version
					}
					mu.Unlock()
				},
			})
			if err != nil {
				return err
			}
			stream := workload.NewUpdateStream(workload.NewUniformKeys(opts.Seed, nKeys))
			for i := 0; i < updates; i++ {
				k, v := stream.Next()
				q.drive(k, v)
			}
			want := q.version()
			converged := settle(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return events >= updates && frontier >= want
			})
			cancel()
			q.cleanup()
			mu.Lock()
			results[qi] = obs{perKey: perKey, events: events}
			gotFrontier := frontier
			mu.Unlock()
			if !converged || gotFrontier < want {
				frontierOK = false
			}
			if qi == 0 {
				firstSeqs = perKey
			} else if !sameSequences(firstSeqs, perKey) {
				allEqual = false
			}
			tbl.AddRow(q.name, events, fmt.Sprintf("%v >= %v", gotFrontier, want),
				map[bool]string{true: "identical", false: "DIVERGED"}[qi == 0 || sameSequences(firstSeqs, perKey)])
		}
		tbl.AddNote("ingestion-store events are immutable appends; their per-series payload sequences match the producer-store per-key update sequences")
		res.Table = tbl

		res.check("all four quadrants deliver every event", func() bool {
			for _, r := range results {
				if r.events != updates {
					return false
				}
			}
			return true
		}(), "events per quadrant: %d %d %d %d", results[0].events, results[1].events, results[2].events, results[3].events)
		res.check("per-key sequences identical across quadrants", allEqual, "compared against quadrant 1")
		res.check("every frontier reached the source version", frontierOK, "progress propagated in all wirings")
		return nil
	})
}

// eventSeriesKey maps an ingestion-store event key "<series>#<seq>" back to
// its series, so sequences compare against the producer-store quadrants.
func eventSeriesKey(ev core.ChangeEvent) keyspace.Key {
	s := string(ev.Key)
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			return keyspace.Key(s[:i])
		}
	}
	return ev.Key
}

func sameSequences(a, b map[keyspace.Key][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
