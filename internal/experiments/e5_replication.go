package experiments

import (
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/replication"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E5",
		Title:  "CDC replication: scalability vs consistency across five strategies",
		Anchor: "§3.2.1 vs §4.3",
		Run:    runE5,
	})
}

// runE5 replays the §3.2.1 argument end-to-end. The ACL workload (remove a
// member from a group, then grant the group document access) is replicated
// source→target through each strategy; externalized pair-reads are sampled
// mid-flight and scored against source history.
func runE5(opts Options) (*Result, error) {
	e, _ := Get("E5")
	return run(e, opts, func(res *Result) error {
		rounds := opts.pick(30, 150)
		filler := 6

		type row struct {
			strategy replication.Strategy
			appliers int
			snapViol int64
			samples  int64
			eventual int
			steps    int
		}
		var rows []row

		for _, strat := range []replication.Strategy{
			replication.Serial,
			replication.Partitioned,
			replication.ConcurrentBlind,
			replication.ConcurrentChecked,
			replication.Watch,
		} {
			var agg row
			agg.strategy = strat
			agg.appliers = 8
			if strat == replication.Serial {
				agg.appliers = 1
			}
			// Aggregate over several seeds: the races are probabilistic.
			for seed := int64(0); seed < 5; seed++ {
				src := mvcc.NewStore()
				repl, err := replication.New(replication.Config{
					Strategy:   strat,
					Partitions: 8,
					Window:     64,
					Seed:       opts.Seed + seed,
				}, src)
				if err != nil {
					return err
				}
				check := replication.NewChecker(src)
				txns := workload.ACLScript(opts.Seed+seed, rounds, filler)
				round := 0
				steps := 0
				for i, txn := range txns {
					if _, err := src.Commit(func(tx *mvcc.Tx) error {
						for _, op := range txn.Ops {
							if op.Value == nil {
								tx.Delete(op.Key)
							} else {
								tx.Put(op.Key, op.Value)
							}
						}
						return nil
					}); err != nil {
						return err
					}
					// Appliers run behind the producer (budget < arrival rate),
					// so the concurrent strategies have a real window to race
					// over — replication pipelines are backlogged in practice.
					if i%4 == 0 {
						if repl.Step(2) {
							steps++
						}
					}
					for r := round - 1; r <= round && r >= 0 && r < rounds; r++ {
						check.SampleACLPair(repl, r)
					}
					if len(txn.Label) > 5 && txn.Label[:5] == "grant" {
						round++
					}
				}
				// Drain, counting the remaining serialized work.
				for repl.Step(16) {
					steps++
				}
				repl.Drain()
				for r := 0; r < rounds; r++ {
					check.SampleACLPair(repl, r)
				}
				div, err := check.EventualDivergence(repl)
				if err != nil {
					return err
				}
				agg.snapViol += check.SnapshotViolations
				agg.samples += check.PairSamples
				agg.eventual += div
				agg.steps += steps
				repl.Close()
			}
			rows = append(rows, agg)
		}

		tbl := metrics.NewTable("E5 — replication strategies on the ACL workload (5 seeds aggregated)",
			"strategy", "appliers", "snapshot violations", "pair samples", "eventual divergence", "drain steps")
		for _, r := range rows {
			steps := ratio(r.steps, 5)
			if r.strategy == replication.Watch {
				steps = "async (8 range appliers)"
			}
			tbl.AddRow(r.strategy.String(), r.appliers, r.snapViol, r.samples, r.eventual, steps)
		}
		tbl.AddNote("a snapshot violation = an externalized read showing 'member still in group AND group granted access', a state the source never had")
		res.Table = tbl

		get := func(s replication.Strategy) row {
			for _, r := range rows {
				if r.strategy == s {
					return r
				}
			}
			return row{}
		}
		serial := get(replication.Serial)
		part := get(replication.Partitioned)
		blind := get(replication.ConcurrentBlind)
		checked := get(replication.ConcurrentChecked)
		watch := get(replication.Watch)

		res.check("serial is fully consistent (and alone in paying serial cost)",
			serial.snapViol == 0 && serial.eventual == 0, "viol=%d div=%d", serial.snapViol, serial.eventual)
		res.check("partitioned violates snapshot consistency",
			part.snapViol > 0, "%d violations", part.snapViol)
		res.check("partitioned preserves eventual consistency",
			part.eventual == 0, "div=%d", part.eventual)
		res.check("blind concurrent apply violates eventual consistency",
			blind.eventual > 0, "div=%d", blind.eventual)
		res.check("version checks fix eventual but not snapshot consistency",
			checked.eventual == 0 && checked.snapViol > 0, "div=%d viol=%d", checked.eventual, checked.snapViol)
		res.check("watch is concurrent AND fully consistent",
			watch.snapViol == 0 && watch.eventual == 0, "viol=%d div=%d over %d samples",
			watch.snapViol, watch.eventual, watch.samples)
		return nil
	})
}
