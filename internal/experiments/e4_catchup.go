package experiments

import (
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E4",
		Title:  "Lagging consumer catch-up: drain the backlog vs snapshot-and-resume",
		Anchor: "§3.1, §4.4",
		Run:    runE4,
	})
}

// runE4 measures recovery work. A consumer misses B updates over K hot keys
// (B ≫ K). Pubsub recovery must replay all B messages in order. Watch
// recovery reads a K-entry snapshot from the store and resumes — work
// proportional to the state size, not the backlog length (§4.4 "a lagging
// consumer can use the exposed store view to efficiently fetch a snapshot").
func runE4(opts Options) (*Result, error) {
	e, _ := Get("E4")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(100, 1000)
		backlog := opts.pick(20000, 200000)

		// ---------------- pubsub ----------------
		b := pubsub.NewBroker(pubsub.BrokerConfig{})
		defer b.Close()
		if err := b.CreateTopic("updates", pubsub.TopicConfig{Partitions: 4}); err != nil {
			return err
		}
		g, err := b.Group("updates", "lagger", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return err
		}
		c, err := g.Join("m0")
		if err != nil {
			return err
		}
		stream := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.4))
		for i := 0; i < backlog; i++ {
			k, v := stream.Next()
			if _, _, err := b.Publish("updates", k, v); err != nil {
				return err
			}
		}
		// Recovery: the consumer must work through every message.
		psProcessed := 0
		psState := map[keyspace.Key]string{}
		for {
			msg, ok, err := c.Poll()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			psProcessed++
			psState[msg.Key] = string(msg.Value)
			c.Ack(msg)
		}

		// ---------------- watch ----------------
		store := mvcc.NewStore()
		hub := core.NewHub(core.HubConfig{Retention: 1024})
		defer hub.Close()
		detach := store.AttachCDC(keyspace.Full(), hub)
		defer detach()
		stream2 := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.4))
		for i := 0; i < backlog; i++ {
			k, v := stream2.Next()
			store.Put(k, v)
		}
		// The lagging watcher asks to resume from version 0; the hub no
		// longer retains that history, so it resyncs: one snapshot read.
		var mu sync.Mutex
		wEvents := 0
		wSnapshotEntries := 0
		wState := map[keyspace.Key]string{}
		recovered := make(chan struct{})
		cancel, err := hub.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
			Event: func(core.ChangeEvent) { mu.Lock(); wEvents++; mu.Unlock() },
			Resync: func(r core.ResyncEvent) {
				entries, _, err := store.SnapshotRange(r.Range)
				if err != nil {
					return
				}
				mu.Lock()
				wSnapshotEntries = len(entries)
				for _, e := range entries {
					wState[e.Key] = string(e.Value)
				}
				mu.Unlock()
				close(recovered)
			},
		})
		if err != nil {
			return err
		}
		defer cancel()
		<-recovered

		// The lag radar localizes the laggard: the watcher sits at version 0
		// against a frontier of `backlog`, and the hub has flagged it for
		// resync — the observable counterpart of pubsub's silent offset gap.
		var radarLag uint64
		radarFlagged := false
		for _, wl := range hub.WatcherLags() {
			if wl.VersionLag > radarLag {
				radarLag = wl.VersionLag
			}
			radarFlagged = radarFlagged || wl.Lagged
		}

		// Both recoveries must land on the same correct state.
		psCorrect, wCorrect := 0, 0
		truth, _ := store.Scan(keyspace.Full(), core.NoVersion, 0)
		for _, e := range truth {
			if wState[e.Key] == string(e.Value) {
				wCorrect++
			}
			if psState[e.Key] == string(e.Value) {
				psCorrect++
			}
		}
		mu.Lock()
		wWork := wSnapshotEntries + wEvents
		mu.Unlock()

		tbl := metrics.NewTable("E4 — catch-up work after missing a backlog",
			"system", "backlog", "distinct keys", "recovery units processed", "work ∝", "state correct")
		tbl.AddRow("pubsub (drain log)", backlog, nKeys, psProcessed, "backlog B", ratio(psCorrect, len(truth)))
		tbl.AddRow("watch (snapshot+resume)", backlog, nKeys, wWork, "state K", ratio(wCorrect, len(truth)))
		tbl.AddNote("the watch consumer's recovery cost is the snapshot size, independent of how long it was away")
		tbl.AddNote("lag radar at resync: version lag %d, flagged=%v — the laggard is visible on /watchers before recovery begins", radarLag, radarFlagged)
		res.Table = tbl

		res.check("pubsub drains the whole backlog", psProcessed == backlog, "processed %d of %d", psProcessed, backlog)
		res.check("watch recovery work scales with keys, not backlog",
			wWork < backlog/10, "watch %d units vs backlog %d", wWork, backlog)
		res.check("lag radar flags the laggard with the full version gap",
			radarFlagged && radarLag == uint64(backlog),
			"flagged=%v lag=%d (backlog %d)", radarFlagged, radarLag, backlog)
		res.check("both converge to the source state",
			psCorrect == len(truth) && wCorrect == len(truth),
			"pubsub %d/%d, watch %d/%d", psCorrect, len(truth), wCorrect, len(truth))
		return nil
	})
}
