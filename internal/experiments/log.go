package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Experiment drivers never write to stdout directly: tables and checks go
// through Result.Render, and incidental progress/diagnostic output goes
// through Logf below. That separation is what keeps `unbundle-bench -json`
// machine-clean — stdout carries exactly one JSON document, and everything
// human-oriented lands on stderr.

var logState = struct {
	mu      sync.Mutex
	w       io.Writer
	enabled bool
}{w: os.Stderr, enabled: true}

// SetLogging toggles progress logging (on by default). The JSON driver
// leaves it on — logs go to stderr, not stdout — but callers embedding the
// experiments in tests can silence it.
func SetLogging(enabled bool) {
	logState.mu.Lock()
	logState.enabled = enabled
	logState.mu.Unlock()
}

// SetLogWriter redirects progress logging (default os.Stderr).
func SetLogWriter(w io.Writer) {
	logState.mu.Lock()
	logState.w = w
	logState.mu.Unlock()
}

// Logf emits one progress/diagnostic line for a running experiment.
func Logf(format string, args ...any) {
	logState.mu.Lock()
	defer logState.mu.Unlock()
	if !logState.enabled || logState.w == nil {
		return
	}
	fmt.Fprintf(logState.w, "experiments: "+format+"\n", args...)
}
