package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/workqueue"
)

func init() {
	register(Experiment{
		ID:     "E8",
		Title:  "Work queueing: affinitized dynamic sharding, priority, coalescing, and reconciler correctness",
		Anchor: "§3.2.4 vs §4.3",
		Run:    runE8,
	})
}

// runE8 compares the two worker pools on one workload: entities spread over
// the key domain, per-entity warm state, a fraction of slow tasks, and
// worker churn — then runs the VM-provisioning coordinator scenario under
// chaos. Virtual time advances only while some worker has visible work or is
// mid-task, so asynchronous delivery pipelines do not distort tick-denoted
// latencies.
func runE8(opts Options) (*Result, error) {
	e, _ := Get("E8")
	return run(e, opts, func(res *Result) error {
		entities := opts.pick(64, 256)
		rounds := opts.pick(6, 16)
		const shards = 16
		slowEvery := 9 // 1 in 9 tasks is slow
		const slowCost = 80
		// Spread entities across the sharder's whole numeric domain so range
		// assignment and entity population align.
		stride := shards * 1000 / entities

		type outcome struct {
			name      string
			cheapP99  int64
			affinity  float64
			completed int64
			coalesced int64
			ticks     int64
		}
		entityKey := func(e int) keyspace.Key { return keyspace.NumericKey(e * stride) }

		runPool := func(p workqueue.Pool, name string) (outcome, error) {
			defer p.Close()
			for i := 0; i < 4; i++ {
				if err := p.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
					return outcome{}, err
				}
			}
			rng := rand.New(rand.NewSource(opts.Seed))
			var tick int64
			drainTo := func(seq int) error {
				deadline := time.Now().Add(30 * time.Second)
				for time.Now().Before(deadline) {
					st := p.Stats()
					if st.Outstanding == 0 && st.Busy == 0 {
						done := p.Done()
						ok := true
						for e := 0; e < entities; e++ {
							if done[entityKey(e)] < seq {
								ok = false
								break
							}
						}
						if ok {
							return nil
						}
						// Work exists but isn't visible yet (delivery in
						// flight): virtual time freezes while the network
						// runs.
						time.Sleep(100 * time.Microsecond)
						continue
					}
					p.Tick()
					tick++
				}
				return fmt.Errorf("%s: drain stalled", name)
			}
			// Warm-up round establishes watchers and warm state. Its tasks are
			// marked slow-class so the cold-start stampede stays out of the
			// cheap-task latency statistics both pools report.
			for e := 0; e < entities; e++ {
				p.Submit(workqueue.Work{Entity: entityKey(e), Seq: 1, Cost: slowCost, Submit: tick})
			}
			time.Sleep(2 * time.Millisecond) // deliveries land before time moves
			if err := drainTo(1); err != nil {
				return outcome{}, err
			}
			// Main rounds: burst submissions with slow tasks mixed in;
			// mid-way, churn.
			taskNo := 0
			for r := 2; r <= rounds; r++ {
				if r == rounds/2 {
					if err := p.AddWorker("w-late"); err != nil {
						return outcome{}, err
					}
					if err := p.RemoveWorker("w1"); err != nil {
						return outcome{}, err
					}
					// Let the handoff establish (snapshots, rebalance
					// notifications) before the next burst; rebalance
					// settle time is not what this experiment measures.
					time.Sleep(10 * time.Millisecond)
				}
				for e := 0; e < entities; e++ {
					cost := 1 + rng.Intn(3)
					taskNo++
					if taskNo%slowEvery == 0 {
						cost = slowCost
					}
					p.Submit(workqueue.Work{Entity: entityKey(e), Seq: r, Cost: cost, Submit: tick})
				}
				time.Sleep(2 * time.Millisecond) // deliveries land before time moves
				if err := drainTo(r); err != nil {
					return outcome{}, err
				}
			}
			st := p.Stats()
			aff := float64(st.WarmHits) / float64(st.WarmHits+st.WarmMisses)
			return outcome{
				name:      name,
				cheapP99:  st.CheapLat.P99,
				affinity:  aff,
				completed: st.Completed,
				coalesced: st.Coalesced,
				ticks:     tick,
			}, nil
		}

		ps, err := workqueue.NewPubSubPool(shards, slowCost)
		if err != nil {
			return err
		}
		psOut, err := runPool(ps, "pubsub pool")
		if err != nil {
			return err
		}
		wp := workqueue.NewWatchPool(shards, slowCost)
		wpOut, err := runPool(wp, "watch pool")
		if err != nil {
			return err
		}

		// ---------------- coordinator correctness under chaos ----------------
		fleet := workqueue.NewFleet()
		ec, err := workqueue.NewEventCoordinator(fleet)
		if err != nil {
			return err
		}
		defer ec.Close()
		nWorkloads := opts.pick(10, 40)
		for i := 0; i < nWorkloads; i++ {
			fleet.SetDesired(fmt.Sprintf("wl%d", i), 3)
		}
		ec.Step(10 * nWorkloads)
		crashes := nWorkloads / 2
		for i := 0; i < crashes; i++ {
			fleet.CrashVM(fmt.Sprintf("wl%d", i))
		}
		ec.Step(10 * nWorkloads) // nothing to process: crashes emit no events
		eventDivergence := fleet.Divergence()

		wc, err := workqueue.NewWatchCoordinator(fleet)
		if err != nil {
			return err
		}
		defer wc.Close()
		settle(func() bool {
			wc.Step(nWorkloads)
			return fleet.Divergence() == 0
		})
		watchDivergence := fleet.Divergence()

		tbl := metrics.NewTable("E8 — work queueing and the reconciler",
			"system", "cheap-task p99 (ticks)", "affinity hit rate", "completed", "coalesced", "total ticks")
		tbl.AddRow(psOut.name, psOut.cheapP99, psOut.affinity, psOut.completed, "-", psOut.ticks)
		tbl.AddRow(wpOut.name, wpOut.cheapP99, wpOut.affinity, wpOut.completed, wpOut.coalesced, wpOut.ticks)
		tbl.AddRow("event coordinator", "-", "-", "-", "-", fmt.Sprintf("diverged: %d workloads", eventDivergence))
		tbl.AddRow("watch coordinator", "-", "-", "-", "-", fmt.Sprintf("diverged: %d workloads", watchDivergence))
		tbl.AddNote("same entities, same slow-task mix, same churn (one worker joins, one leaves mid-run)")
		res.Table = tbl

		res.check("watch pool shields cheap tasks from slow ones",
			wpOut.cheapP99*2 < psOut.cheapP99, "watch p99 %d vs pubsub p99 %d", wpOut.cheapP99, psOut.cheapP99)
		res.check("watch pool keeps affinity through churn",
			wpOut.affinity > psOut.affinity, "watch %.2f vs pubsub %.2f", wpOut.affinity, psOut.affinity)
		res.check("both pools complete all rounds",
			psOut.completed > 0 && wpOut.completed > 0, "pubsub %d, watch %d", psOut.completed, wpOut.completed)
		res.check("event coordinator is blind to crashes",
			eventDivergence > 0, "%d workloads still diverged", eventDivergence)
		res.check("watch coordinator reconciles the same chaos to zero",
			watchDivergence == 0, "%d diverged", watchDivergence)
		return nil
	})
}
