// Package experiments contains one driver per reproduced figure/claim of the
// paper (the E1–E11 index in DESIGN.md). Each driver builds the systems it
// needs, runs the scenario, renders a paper-style result table, and returns
// machine-checkable assertions about the *shape* of the result (who wins,
// what is zero, what grows) — those assertions are what the integration
// tests and the claim-verification in EXPERIMENTS.md rest on.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"unbundle/internal/metrics"
)

// Options tunes a run.
type Options struct {
	// Quick shrinks parameters so the whole suite runs in seconds (used by
	// `go test`); the full-size run is the default for cmd/unbundle-bench.
	Quick bool
	// Seed drives all randomness.
	Seed int64
}

// pick returns quick or full depending on the options.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Check is one shape assertion about a claim.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Anchor string // paper anchor (figure/section)
	Table  *metrics.Table
	Checks []Check
	Took   time.Duration
}

// Failed returns the failed checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Render writes the result (table + checks) to w.
func (r *Result) Render(w io.Writer) {
	r.Table.Render(w)
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  check [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	fmt.Fprintf(w, "  (%s, %v)\n\n", r.Anchor, r.Took.Round(time.Millisecond))
}

// Experiment is a registered driver.
type Experiment struct {
	ID     string
	Title  string
	Anchor string
	Run    func(Options) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every experiment in numeric ID order (E1, E2, …, E10, E11).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	num := func(id string) int {
		n, err := strconv.Atoi(id[1:])
		if err != nil {
			return 1 << 30
		}
		return n
	}
	sort.Slice(out, func(i, j int) bool { return num(out[i].ID) < num(out[j].ID) })
	return out
}

// Get returns one experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// run wraps a driver body with timing and result assembly.
func run(e Experiment, opts Options, body func(*Result) error) (*Result, error) {
	start := time.Now()
	res := &Result{ID: e.ID, Title: e.Title, Anchor: e.Anchor}
	if err := body(res); err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	res.Took = time.Since(start)
	return res, nil
}

// check appends an assertion to the result.
func (r *Result) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// settle polls cond until it holds or ~5s pass; used to wait out async
// delivery pipelines before final sweeps.
func settle(cond func() bool) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
