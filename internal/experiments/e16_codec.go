package experiments

import (
	"fmt"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/remote"
)

func init() {
	register(Experiment{
		ID:     "E16",
		Title:  "Wire codec: binary v4 halves bytes/event with recovery parity vs gob",
		Anchor: "§4.3 (cost of the generic transport)",
		Run:    runE16,
	})
}

// e16Stats is one codec's measured behaviour under the E13 partition chaos.
type e16Stats struct {
	proto      int
	codec      string
	events     int64
	wireBytes  int64
	reconnects int64
	resumed    int64
	resyncs    int64
	v4Frames   int64
	converged  bool
}

// runE16 reruns the E13 shape — partitions healed by resume-or-resync —
// once with the client pinned to protocol v3 (gob codec) and once
// negotiating v4 (hand-rolled binary codec), on the same seed and workload.
// The recovery contract must hold identically on both: converged replicas,
// reconnect per partition, no hung watcher. What changes is only the wire
// cost: the binary codec's delta-encoded, dictionary-keyed frames must spend
// at most half the server bytes per delivered event that gob does.
func runE16(opts Options) (*Result, error) {
	e, _ := Get("E16")
	return run(e, opts, func(res *Result) error {
		rounds := opts.pick(3, 5)
		perRound := opts.pick(300, 1500)

		gob, err := runE16Codec(opts, 3, rounds, perRound)
		if err != nil {
			return fmt.Errorf("gob pass: %w", err)
		}
		bin, err := runE16Codec(opts, 0, rounds, perRound)
		if err != nil {
			return fmt.Errorf("binary pass: %w", err)
		}

		perEvent := func(s e16Stats) float64 {
			if s.events == 0 {
				return 0
			}
			return float64(s.wireBytes) / float64(s.events)
		}
		tbl := metrics.NewTable(fmt.Sprintf(
			"E16 — same partition chaos (%d rounds × %d events), gob vs binary codec",
			rounds, perRound),
			"metric", "gob (v3)", "binary (v4)")
		tbl.AddRow("negotiated protocol", gob.proto, bin.proto)
		tbl.AddRow("codec", gob.codec, bin.codec)
		tbl.AddRow("events delivered", gob.events, bin.events)
		tbl.AddRow("server wire bytes", gob.wireBytes, bin.wireBytes)
		tbl.AddRow("wire bytes/event", fmt.Sprintf("%.1f", perEvent(gob)), fmt.Sprintf("%.1f", perEvent(bin)))
		tbl.AddRow("client reconnects", gob.reconnects, bin.reconnects)
		tbl.AddRow("watches resumed", gob.resumed, bin.resumed)
		tbl.AddRow("explicit resyncs", gob.resyncs, bin.resyncs)
		tbl.AddRow("v4 frames on the wire", gob.v4Frames, bin.v4Frames)
		tbl.AddNote("identical seed, workload, and partition schedule on both passes")
		tbl.AddNote("recovery parity: the codec changes the frame bytes, never the watch contract")
		res.Table = tbl

		res.check("both codecs converged through every partition",
			gob.converged && bin.converged, "gob=%v binary=%v", gob.converged, bin.converged)
		res.check("both codecs reconnected and resumed",
			gob.reconnects > 0 && bin.reconnects > 0 && gob.resumed > 0 && bin.resumed > 0,
			"reconnects gob=%d bin=%d, resumed gob=%d bin=%d",
			gob.reconnects, bin.reconnects, gob.resumed, bin.resumed)
		res.check("negotiation pinned the expected codecs",
			gob.proto == 3 && gob.codec == "gob" && bin.proto == 4 && bin.codec == "binary" &&
				gob.v4Frames == 0 && bin.v4Frames > 0,
			"gob pass v%d/%s (%d v4 frames), binary pass v%d/%s (%d v4 frames)",
			gob.proto, gob.codec, gob.v4Frames, bin.proto, bin.codec, bin.v4Frames)
		res.check("binary codec spends ≤ half the wire bytes per event",
			perEvent(bin) > 0 && perEvent(bin) <= perEvent(gob)/2,
			"%.1f B/event binary vs %.1f gob", perEvent(bin), perEvent(gob))
		return nil
	})
}

// runE16Codec runs one codec pass: a single chaos-wrapped consumer mirroring
// the store through `rounds` rounds of writes, severed between rounds.
func runE16Codec(opts Options, maxProto, rounds, perRound int) (e16Stats, error) {
	const keys = 128
	reg := metrics.NewRegistry()
	ws := mvcc.NewWatchableStore(core.HubConfig{Retention: 1 << 15, WatcherBuffer: 1 << 16, Metrics: reg})
	defer ws.Close()
	srv, err := remote.ServeWith("127.0.0.1:0", ws, ws, remote.ServerConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return e16Stats{}, err
	}
	defer srv.Close()

	ctrl := remote.NewChaosController(remote.ChaosConfig{Seed: opts.Seed})
	client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
		MaxProtocol:       maxProto,
		Reconnect: remote.ReconnectPolicy{
			Enabled:     true,
			MaxAttempts: -1,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Seed:        opts.Seed + 1,
		},
		Dialer: ctrl.Dialer(),
	})
	if err != nil {
		return e16Stats{}, err
	}
	defer client.Close()

	sink := &e13Sink{state: make(map[keyspace.Key]string)}
	watcher := core.NewResyncWatcher(client, client, keyspace.Full(), sink)
	if err := watcher.Start(); err != nil {
		return e16Stats{}, err
	}
	defer watcher.Stop()

	converged := func() bool {
		entries, _, err := ws.SnapshotRange(keyspace.Full())
		if err != nil {
			return false
		}
		sink.mu.Lock()
		defer sink.mu.Unlock()
		if len(sink.state) != len(entries) {
			return false
		}
		for _, e := range entries {
			if sink.state[e.Key] != string(e.Value) {
				return false
			}
		}
		return true
	}

	v := 0
	for round := 1; round <= rounds; round++ {
		for i := 0; i < perRound; i++ {
			v++
			ws.Put(keyspace.NumericKey(v%keys), []byte(fmt.Sprintf("r%d-%d", round, v)))
		}
		if !settle(converged) {
			return e16Stats{}, fmt.Errorf("round %d: consumer failed to converge", round)
		}
		if round < rounds {
			dials := ctrl.Dials()
			ctrl.SeverAll()
			if !settle(func() bool { return ctrl.Dials() > dials }) {
				return e16Stats{}, fmt.Errorf("round %d: client never reconnected", round)
			}
		}
	}

	proto, codec := client.ProtocolInfo()
	snap := reg.Snapshot()
	return e16Stats{
		proto:      proto,
		codec:      codec,
		events:     watcher.Events(),
		wireBytes:  int64(snap.Counters["remote_server_bytes_total"]),
		reconnects: int64(snap.Counters["remote_client_reconnects_total"]),
		resumed:    int64(snap.Counters["remote_client_resumed_watches_total"]),
		resyncs:    watcher.Resyncs(),
		v4Frames:   int64(snap.Counters["remote_server_codec_frames_v4_total"]),
		converged:  converged(),
	}, nil
}
