package experiments

import (
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Title:  "Efficiency: hard-state write amplification and range-scoped delivery",
		Anchor: "§4.4",
		Run:    runE10,
	})
}

// runE10 quantifies the §4.4 efficiency claims. U updates flow to W
// consumers, each interested in 1/W of the keyspace.
//
//   - Hard state: the pubsub pipeline writes every update twice — once to
//     producer storage, once to the broker's durable log (≥2× write
//     amplification). The watch pipeline writes it once; the hub holds only
//     a bounded soft-state window.
//   - Delivery: pubsub partitions don't align with consumer interests, so
//     range-sharded consumers must subscribe to everything (free consumers)
//     and filter; each consumer pays for all U messages. Range watches
//     deliver each consumer only its U/W share.
func runE10(opts Options) (*Result, error) {
	e, _ := Get("E10")
	return run(e, opts, func(res *Result) error {
		nKeys := 8192
		updates := opts.pick(5000, 50000)
		consumers := 8

		// ---------------- pubsub pipeline ----------------
		store := mvcc.NewStore()
		b := pubsub.NewBroker(pubsub.BrokerConfig{})
		defer b.Close()
		if err := b.CreateTopic("feed", pubsub.TopicConfig{Partitions: 8}); err != nil {
			return err
		}
		stream := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.2))
		for i := 0; i < updates; i++ {
			k, v := stream.Next()
			store.Put(k, v)
			if _, _, err := b.Publish("feed", k, v); err != nil {
				return err
			}
		}
		// Range-sharded consumers must subscribe to the entire topic and
		// filter (§3.2.2's free-consumer fallback).
		shards := keyspace.EvenSplit(nKeys, consumers)
		var psReceived, psUseful int64
		for ci := 0; ci < consumers; ci++ {
			for p := 0; p < 8; p++ {
				fc, err := b.NewFreeConsumer("feed", p, pubsub.FromEarliest)
				if err != nil {
					return err
				}
				for {
					msg, ok := fc.Poll()
					if !ok {
						break
					}
					psReceived++
					if shards[ci].Contains(msg.Key) {
						psUseful++
					}
				}
			}
		}
		psStoreBytes := store.Stats().BytesWritten
		ts, _ := b.Stats("feed")
		psHardState := psStoreBytes + ts.BytesAppended

		// ---------------- watch pipeline ----------------
		store2 := mvcc.NewStore()
		// Watcher queues hold events AND per-commit progress marks; size for
		// both so this throughput measurement never triggers lag-out resyncs
		// (those are E2's subject, not E10's).
		// Shards pinned to 1: the bounded-soft-state check below reasons about
		// one global retention window (Retention is per shard).
		hub := core.NewHub(core.HubConfig{Retention: 4096, WatcherBuffer: 4 * updates, Shards: 1})
		defer hub.Close()
		detach := store2.AttachCDC(keyspace.Full(), hub)
		defer detach()

		var mu sync.Mutex
		var wReceived int64
		var wg sync.WaitGroup
		wg.Add(consumers)
		for _, shard := range shards {
			done := false
			cancel, err := hub.Watch(shard, core.NoVersion, core.Funcs{
				Event: func(ev core.ChangeEvent) {
					mu.Lock()
					wReceived++
					mu.Unlock()
				},
				Progress: func(p core.ProgressEvent) {
					mu.Lock()
					if !done && p.Version >= core.Version(updates) {
						done = true
						wg.Done()
					}
					mu.Unlock()
				},
			})
			if err != nil {
				return err
			}
			defer cancel()
		}
		stream2 := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.2))
		for i := 0; i < updates; i++ {
			k, v := stream2.Next()
			store2.Put(k, v)
		}
		store2.EmitProgress(keyspace.Full())
		wg.Wait()
		wHardState := store2.Stats().BytesWritten
		hubStats := hub.Stats()
		mu.Lock()
		wRecv := wReceived
		mu.Unlock()

		amplification := float64(psHardState) / float64(psStoreBytes)
		tbl := metrics.NewTable("E10 — hard state and delivery cost (U updates, 8 range-sharded consumers)",
			"pipeline", "hard-state bytes", "write amp", "msgs received (all consumers)", "useful", "soft state")
		tbl.AddRow("store + pubsub log + free consumers", psHardState,
			amplification, psReceived, psUseful, "-")
		tbl.AddRow("store + watch hub + range watches", wHardState,
			1.0, wRecv, wRecv, hubStats.RetainedEvents)
		tbl.AddNote("pubsub consumers each subscribe to the full feed and discard ~(W-1)/W of it; range watches deliver exactly the owned share")
		res.Table = tbl

		// The store's accounting includes per-version metadata overhead the
		// log doesn't have, so the payload-doubling lands a little under 2×.
		res.check("pubsub adds a second hard-state log (≈2× writes)",
			amplification > 1.5 && ts.BytesAppended > 0, "amplification %.2fx (log wrote %d bytes)", amplification, ts.BytesAppended)
		res.check("watch hard state is the store alone",
			wHardState == store2.Stats().BytesWritten, "%d bytes", wHardState)
		res.check("free consumers pay W× delivery",
			psReceived == int64(consumers*updates), "received %d for %d updates", psReceived, updates)
		res.check("range watches deliver exactly the useful share",
			wRecv == int64(updates), "received %d for %d updates", wRecv, updates)
		res.check("hub soft state is bounded",
			hubStats.RetainedEvents <= 4096, "%d retained", hubStats.RetainedEvents)
		return nil
	})
}
