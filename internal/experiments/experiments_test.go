package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment at quick scale
// and requires every shape assertion to hold — this is the reproduction's
// claim-by-claim verification.
func TestAllExperimentsQuick(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("registered %d experiments, want 16", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Table == nil {
				t.Fatal("no result table")
			}
			var sb strings.Builder
			res.Render(&sb)
			t.Log("\n" + sb.String())
			for _, c := range res.Failed() {
				t.Errorf("check failed: %s — %s", c.Name, c.Detail)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Get("E6"); !ok {
		t.Fatal("E6 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("phantom experiment")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		ids[e.ID] = true
		if e.Anchor == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestResultRender(t *testing.T) {
	e, _ := Get("E1")
	res, err := e.Run(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E1", "check [", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	_ = io.Discard
}
