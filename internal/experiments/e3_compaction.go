package experiments

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/wal"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E3",
		Title:  "Compaction defers but does not eliminate loss, and never tells subscribers",
		Anchor: "§3.1",
		Run:    runE3,
	})
}

// runE3 exercises topic compaction: a subscriber that falls behind the dirty
// window finds that intermediate versions of each key have vanished — with
// no notification that compaction happened (§3.1: "without notification,
// subscribers do not discover that unseen events have been compacted"). The
// watch counterpart makes the same information loss explicit: the lagging
// watcher receives a resync signal and knowingly rebuilds from a snapshot.
func runE3(opts Options) (*Result, error) {
	e, _ := Get("E3")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(20, 100)
		versionsPerKey := opts.pick(40, 200)
		total := nKeys * versionsPerKey

		// ---------------- pubsub side: compacted topic ----------------
		clock := clockwork.NewFake()
		b := pubsub.NewBroker(pubsub.BrokerConfig{Clock: clock})
		defer b.Close()
		if err := b.CreateTopic("compacted", pubsub.TopicConfig{
			Partitions:    2,
			Compacted:     true,
			CompactionLag: time.Hour,
			Segment:       wal.Config{SegmentMaxRecords: 32},
		}); err != nil {
			return err
		}
		// An application that needs every version (e.g. an audit trail).
		stream := workload.NewUpdateStream(workload.NewUniformKeys(opts.Seed, nKeys))
		for i := 0; i < total; i++ {
			k, v := stream.Next()
			if _, _, err := b.Publish("compacted", k, v); err != nil {
				return err
			}
		}
		// The subscriber is late: compaction runs before it reads anything.
		clock.Advance(2 * time.Hour)
		b.RunGC()

		g, err := b.Group("compacted", "late-auditor", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return err
		}
		c, err := g.Join("m0")
		if err != nil {
			return err
		}
		seen := 0
		seenPerKey := map[keyspace.Key]int{}
		for {
			msg, ok, err := c.Poll()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			seen++
			seenPerKey[msg.Key]++
			c.Ack(msg)
		}
		ts, _ := b.Stats("compacted")
		psSignals := 0 // the consumer API carried no indication of compaction

		// ---------------- watch side ----------------
		// The same lag against a watch hub with bounded soft state: the late
		// watcher is explicitly resynced and recovers last-value state (what
		// compaction *means*), knowing events were missed.
		store := mvcc.NewStore()
		hub := core.NewHub(core.HubConfig{Retention: 64})
		defer hub.Close()
		detach := store.AttachCDC(keyspace.Full(), hub)
		defer detach()

		stream2 := workload.NewUpdateStream(workload.NewUniformKeys(opts.Seed, nKeys))
		for i := 0; i < total; i++ {
			k, v := stream2.Next()
			store.Put(k, v)
		}
		var mu sync.Mutex
		wSeen := 0
		wResyncs := 0
		wState := map[keyspace.Key]string{}
		consumer := core.Funcs{
			Event: func(ev core.ChangeEvent) { mu.Lock(); wSeen++; mu.Unlock() },
			Resync: func(r core.ResyncEvent) {
				// Explicit recovery: read the snapshot, knowing the gap.
				entries, _, err := store.SnapshotRange(r.Range)
				if err != nil {
					return
				}
				mu.Lock()
				wResyncs++
				for _, e := range entries {
					wState[e.Key] = string(e.Value)
				}
				mu.Unlock()
			},
		}
		cancel, err := hub.Watch(keyspace.Full(), core.NoVersion, consumer)
		if err != nil {
			return err
		}
		defer cancel()
		settle(func() bool { mu.Lock(); defer mu.Unlock(); return wResyncs > 0 })

		// Both final states carry last values; score them.
		psCorrectLatest := 0
		for _, k := range distinctKeys(nKeys) {
			if seenPerKey[k] >= 1 {
				psCorrectLatest++
			}
		}
		mu.Lock()
		wCorrectLatest := 0
		for _, k := range distinctKeys(nKeys) {
			want, _, ok, _ := store.Get(k, core.NoVersion)
			if ok && wState[k] == string(want) {
				wCorrectLatest++
			}
		}
		wSeenFinal, wResyncsFinal := wSeen, wResyncs
		mu.Unlock()

		tbl := metrics.NewTable("E3 — late subscriber vs compaction",
			"system", "versions written", "versions observable", "compacted away", "loss signalled", "latest state recovered")
		tbl.AddRow("pubsub (compacted topic)", total, seen, ts.CompactedAway, psSignals,
			ratio(psCorrectLatest, nKeys))
		tbl.AddRow("watch (bounded soft state)", total, wSeenFinal, "(evicted)", wResyncsFinal,
			ratio(wCorrectLatest, nKeys))
		tbl.AddNote("pubsub delivered a silently thinned history; watch delivered an explicit resync plus an exact snapshot")
		res.Table = tbl

		res.check("compaction destroyed intermediate versions",
			ts.CompactedAway > 0 && seen < total, "saw %d of %d (compacted %d)", seen, total, ts.CompactedAway)
		res.check("pubsub gave the subscriber no signal", psSignals == 0, "%d signals", psSignals)
		res.check("watch signalled the gap explicitly", wResyncsFinal >= 1, "%d resyncs", wResyncsFinal)
		res.check("watch recovered exact latest state", wCorrectLatest == nKeys, "%d of %d", wCorrectLatest, nKeys)
		return nil
	})
}

func distinctKeys(n int) []keyspace.Key {
	out := make([]keyspace.Key, n)
	for i := range out {
		out[i] = keyspace.NumericKey(i)
	}
	return out
}

func ratio(a, b int) string {
	return fmt.Sprintf("%d/%d", a, b)
}
