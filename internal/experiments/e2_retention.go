package experiments

import (
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/pubsub"
	"unbundle/internal/wal"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E2",
		Title:  "Retention GC silently loses unconsumed messages; watch signals resync and converges",
		Anchor: "§3.1",
		Run:    runE2,
	})
}

// runE2 is the paper's central §3.1 scenario: a consumer stalls for longer
// than the retention period (the "data center under maintenance for days"
// incident). Pubsub GCs the backlog and the consumer resumes with no error
// and no signal — its materialized state diverges silently. The watch
// consumer gets an explicit resync, recovers from the store, and converges.
func runE2(opts Options) (*Result, error) {
	e, _ := Get("E2")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(200, 2000)
		preStall := opts.pick(500, 5000) // updates consumed normally
		duringStall := opts.pick(3000, 30000)
		postStall := opts.pick(300, 3000)

		// ---------------- pubsub side ----------------
		clock := clockwork.NewFake()
		b := pubsub.NewBroker(pubsub.BrokerConfig{Clock: clock})
		defer b.Close()
		if err := b.CreateTopic("updates", pubsub.TopicConfig{
			Partitions: 4,
			Retention:  24 * time.Hour,
			Segment:    wal.Config{SegmentMaxRecords: 64},
		}); err != nil {
			return err
		}
		g, err := b.Group("updates", "materializer", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return err
		}
		c, err := g.Join("m0")
		if err != nil {
			return err
		}

		// The consumer materializes key→value state from messages.
		psState := map[keyspace.Key]string{}
		psErrors := 0 // consumer-visible error signals
		drain := func() {
			for {
				msg, ok, err := c.Poll()
				if err != nil {
					psErrors++
					return
				}
				if !ok {
					return
				}
				psState[msg.Key] = string(msg.Value)
				c.Ack(msg)
			}
		}

		// Truth: the producer's latest value per key.
		truth := map[keyspace.Key]string{}
		stream := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.3))
		publish := func(n int) error {
			for i := 0; i < n; i++ {
				k, v := stream.Next()
				truth[k] = string(v)
				if _, _, err := b.Publish("updates", k, v); err != nil {
					return err
				}
			}
			return nil
		}

		if err := publish(preStall); err != nil {
			return err
		}
		drain()

		// The consumer's datacenter goes dark for three days; the producer
		// keeps publishing; retention is 24h.
		if err := publish(duringStall); err != nil {
			return err
		}
		clock.Advance(72 * time.Hour)
		b.RunGC()
		if err := publish(postStall); err != nil {
			return err
		}
		drain() // consumer comes back: no error, just... less history

		psDivergent := 0
		for k, v := range truth {
			if psState[k] != v {
				psDivergent++
			}
		}
		gs := g.Stats()
		ts, _ := b.Stats("updates")

		// ---------------- watch side ----------------
		store := mvcc.NewStore()
		hub := core.NewHub(core.HubConfig{Retention: 256, WatcherBuffer: 64})
		defer hub.Close()
		detach := store.AttachCDC(keyspace.Full(), hub)
		defer detach()

		wState := map[keyspace.Key]string{}
		var wMu sync.Mutex
		gate := make(chan struct{}) // closed = consumer unblocked
		consumer := &gatedConsumer{state: wState, mu: &wMu, gate: gate}
		rw := core.NewResyncWatcher(store, hub, keyspace.Full(), consumer)

		stream2 := workload.NewUpdateStream(workload.NewZipfKeys(opts.Seed, nKeys, 1.3))
		truth2 := map[keyspace.Key]string{}
		put := func(n int) {
			for i := 0; i < n; i++ {
				k, v := stream2.Next()
				truth2[k] = string(v)
				store.Put(k, v)
			}
		}
		put(preStall)
		if err := rw.Start(); err != nil {
			return err
		}
		// Stall: the consumer's callbacks block on the gate, the hub's
		// bounded buffer overflows, the watcher is lagged out.
		put(duringStall)
		close(gate) // maintenance over: consumer unblocks, resync recovers it
		put(postStall)

		converged := settle(func() bool {
			wMu.Lock()
			defer wMu.Unlock()
			for k, v := range truth2 {
				if wState[k] != v {
					return false
				}
			}
			return true
		})
		wMu.Lock()
		wDivergent := 0
		for k, v := range truth2 {
			if wState[k] != v {
				wDivergent++
			}
		}
		wMu.Unlock()

		tbl := metrics.NewTable("E2 — three-day consumer stall vs 24h retention",
			"system", "published", "destroyed", "skipped under consumer", "consumer-visible signal", "final divergent keys")
		tbl.AddRow("pubsub", preStall+duringStall+postStall, ts.GCedRecords,
			gs.SkippedMessages, psErrors, psDivergent)
		tbl.AddRow("watch", preStall+duringStall+postStall, "(soft state only)",
			"-", int(rw.Resyncs()), wDivergent)
		tbl.AddNote("'destroyed' is broker-side knowledge (log GC); the pubsub consumer API surfaced zero errors")
		tbl.AddNote("the watch consumer was told to resync and rebuilt exact state from the store")
		res.Table = tbl

		res.check("pubsub destroyed unconsumed messages", ts.GCedRecords > 0, "GCed %d records", ts.GCedRecords)
		res.check("pubsub consumer silently skipped them", gs.SkippedMessages > 0 && psErrors == 0,
			"skipped %d with %d visible errors", gs.SkippedMessages, psErrors)
		res.check("pubsub state diverged", psDivergent > 0, "%d of %d keys stale", psDivergent, len(truth))
		res.check("watch consumer was explicitly resynced", rw.Resyncs() >= 1, "%d resyncs", rw.Resyncs())
		res.check("watch state converged exactly", converged && wDivergent == 0, "%d divergent keys", wDivergent)
		return nil
	})
}

// gatedConsumer materializes watched state but blocks event application
// until its gate opens — the stalled consumer.
type gatedConsumer struct {
	mu    *sync.Mutex
	state map[keyspace.Key]string
	gate  chan struct{}
}

func (g *gatedConsumer) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for k := range g.state {
		if r.Contains(k) {
			delete(g.state, k)
		}
	}
	for _, e := range entries {
		g.state[e.Key] = string(e.Value)
	}
}

func (g *gatedConsumer) ApplyChange(ev core.ChangeEvent) {
	<-g.gate // stalled until maintenance ends
	g.mu.Lock()
	defer g.mu.Unlock()
	switch ev.Mut.Op {
	case core.OpPut:
		g.state[ev.Key] = string(ev.Mut.Value)
	case core.OpDelete:
		delete(g.state, ev.Key)
	}
}

func (g *gatedConsumer) AdvanceFrontier(core.ProgressEvent) {}
