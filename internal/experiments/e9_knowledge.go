package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"unbundle/internal/cache"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E9",
		Title:  "Knowledge regions: snapshot-consistent serving and stitching (the green box)",
		Anchor: "Figure 5, §4.3",
		Run:    runE9,
	})
}

// runE9 drives watchers whose progress arrives at different cadences per
// range (skewed frontiers, as in Figure 5), then issues multi-range queries:
// how often can a consistent version be stitched, and is every served stitch
// exactly a source snapshot? It also merges two pods' knowledge to serve a
// query neither could alone.
func runE9(opts Options) (*Result, error) {
	e, _ := Get("E9")
	return run(e, opts, func(res *Result) error {
		nKeys := opts.pick(200, 1000)
		updates := opts.pick(2000, 20000)
		queries := opts.pick(300, 2000)

		store := mvcc.NewStore()
		hub := core.NewHub(core.HubConfig{Retention: 1 << 18, WatcherBuffer: 1 << 18})
		defer hub.Close()
		// Progress cadence skew: each quarter of the keyspace reports
		// progress at its own rate (1, 4, 16, 64 commits).
		shards := keyspace.EvenSplit(nKeys, 4)
		cadences := []int{1, 4, 16, 64}
		for i, shard := range shards {
			detach := store.AttachCDC(shard, &cadencedIngester{ing: hub, every: cadences[i]})
			defer detach()
		}

		pod := cache.NewWatchPod("p0", store, hub)
		defer pod.Stop()
		if err := pod.SetRanges([]keyspace.Range{keyspace.Full()}); err != nil {
			return err
		}

		rng := rand.New(rand.NewSource(opts.Seed))
		stream := workload.NewUpdateStream(workload.NewUniformKeys(opts.Seed, nKeys))
		stitchable, verified, mismatches := 0, 0, 0
		queriesDone := 0
		for i := 0; i < updates; i++ {
			k, v := stream.Next()
			store.Put(k, v)
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond) // writer pacing: let the watch pipeline run
			}
			if queriesDone < queries && i%(updates/queries+1) == 0 {
				// A query spanning two random shards.
				a, b := rng.Intn(4), rng.Intn(4)
				ra := subRange(shards[a], rng)
				rb := subRange(shards[b], rng)
				queriesDone++
				v, ok := pod.StitchVersion(ra, rb)
				if !ok || v == core.NoVersion {
					// No common version yet (or only the vacuous pre-write
					// version 0): not servable.
					continue
				}
				stitchable++
				// Verify every stitched read against the store oracle.
				for _, r := range []keyspace.Range{ra, rb} {
					served, okSnap := pod.SnapshotAt(r, v)
					if !okSnap {
						mismatches++
						continue
					}
					truth, err := store.Scan(r, v, 0)
					if err != nil {
						return err
					}
					if !entriesEqual(served, truth) {
						mismatches++
					} else {
						verified++
					}
				}
			}
		}

		// Merged knowledge across two pods (§4.3: combine regions across
		// watchers). Each pod owns half; the union serves cross-half queries.
		podA := cache.NewWatchPod("pa", store, hub)
		defer podA.Stop()
		podB := cache.NewWatchPod("pb", store, hub)
		defer podB.Stop()
		half := keyspace.NumericRange(0, nKeys/2)
		otherHalf := keyspace.Range{Low: keyspace.NumericKey(nKeys / 2), High: keyspace.Inf}
		if err := podA.SetRanges([]keyspace.Range{half}); err != nil {
			return err
		}
		if err := podB.SetRanges([]keyspace.Range{otherHalf}); err != nil {
			return err
		}
		store.EmitProgress(keyspace.Full())
		crossQuery := []keyspace.Range{
			keyspace.NumericRange(10, 20),
			keyspace.NumericRange(nKeys/2+10, nKeys/2+20),
		}
		mergedOK := settle(func() bool {
			ka := core.NewKnowledgeSet()
			for _, reg := range podA.Knowledge() {
				ka.AddSnapshot(reg.Range, reg.Low)
				ka.ExtendTo(reg.Range, reg.High)
			}
			kb := core.NewKnowledgeSet()
			for _, reg := range podB.Knowledge() {
				kb.AddSnapshot(reg.Range, reg.Low)
				kb.ExtendTo(reg.Range, reg.High)
			}
			_, ok := ka.Union(kb).StitchVersion(crossQuery...)
			return ok
		})
		_, aAlone := coreStitch(podA, crossQuery)
		_, bAlone := coreStitch(podB, crossQuery)

		tbl := metrics.NewTable("E9 — stitching snapshot-consistent views from knowledge regions",
			"metric", "value")
		tbl.AddRow("multi-range queries issued", queriesDone)
		tbl.AddRow("stitchable (version found)", stitchable)
		tbl.AddRow("stitched reads verified against store snapshot", verified)
		tbl.AddRow("verification mismatches", mismatches)
		tbl.AddRow("single-pod serves cross-half query", fmt.Sprintf("podA=%v podB=%v", aAlone, bAlone))
		tbl.AddRow("merged knowledge serves it", mergedOK)
		tbl.AddNote("progress cadences per quarter: 1/4/16/64 commits — skewed frontiers like Figure 5's staircase")
		res.Table = tbl

		res.check("a useful fraction of queries is stitchable despite skew",
			stitchable > queriesDone/10, "%d of %d", stitchable, queriesDone)
		res.check("every stitched read is exactly a source snapshot",
			mismatches == 0 && verified > 0, "%d verified, %d mismatches", verified, mismatches)
		res.check("cross-pod queries need merged knowledge",
			!aAlone && !bAlone && mergedOK, "alone: %v/%v, merged: %v", aAlone, bAlone, mergedOK)
		return nil
	})
}

// cadencedIngester forwards all events but only every n-th progress mark,
// creating the skewed frontier.
type cadencedIngester struct {
	ing   core.Ingester
	every int
	n     int
}

func (c *cadencedIngester) Append(ev core.ChangeEvent) error { return c.ing.Append(ev) }

func (c *cadencedIngester) AppendBatch(evs []core.ChangeEvent) error {
	return c.ing.AppendBatch(evs)
}

func (c *cadencedIngester) Progress(p core.ProgressEvent) error {
	c.n++
	if c.n%c.every != 0 {
		return nil
	}
	return c.ing.Progress(p)
}

func subRange(r keyspace.Range, rng *rand.Rand) keyspace.Range {
	// A small numeric sub-range inside r (shards are numeric-aligned).
	lo := r.Low
	if lo == "" {
		lo = keyspace.NumericKey(0)
	}
	var loN int
	fmt.Sscanf(string(lo), "%d", &loN)
	start := loN + rng.Intn(50)
	return keyspace.NumericRange(start, start+5)
}

func coreStitch(pod *cache.WatchPod, ranges []keyspace.Range) (core.Version, bool) {
	return pod.StitchVersion(ranges...)
}

func entriesEqual(a, b []core.Entry) bool {
	am := map[keyspace.Key]string{}
	for _, e := range a {
		am[e.Key] = string(e.Value)
	}
	if len(am) != len(b) {
		return false
	}
	for _, e := range b {
		if am[e.Key] != string(e.Value) {
			return false
		}
	}
	return true
}
