package experiments

import (
	"strconv"
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/ingeststore"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/pubsub"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E7",
		Title:  "Event ingestion and fanout: head-of-line blocking vs bounded, resyncable lag",
		Anchor: "§3.2.3 vs §4.3",
		Run:    runE7,
	})
}

// runE7 runs an ingestion pipeline with one slow consumer among fast ones.
//
// Pubsub group: the slow member's partition backs up without bound, and
// every key hashed to that partition — healthy producers included — waits
// behind the queue (head-of-line blocking). The other members' keys are
// fine; nothing tells anyone the slow partition is rotting.
//
// Watch model: the slow consumer owns a key range; its inability to keep up
// overflows its bounded buffer and surfaces as resync signals, while its
// recovery path (re-query the ingestion store) costs state-size, not
// backlog-size. Other ranges never queue behind it.
func runE7(opts Options) (*Result, error) {
	e, _ := Get("E7")
	return run(e, opts, func(res *Result) error {
		nSeries := 64
		events := opts.pick(4000, 40000)
		const slowFactor = 10 // slow consumer: 1 event per 10 ticks
		publishTicks := events / 4
		totalTicks := publishTicks + events/4 // bounded drain budget afterwards

		// ---------------- pubsub group ----------------
		b := pubsub.NewBroker(pubsub.BrokerConfig{})
		defer b.Close()
		if err := b.CreateTopic("ingest", pubsub.TopicConfig{Partitions: 4}); err != nil {
			return err
		}
		g, err := b.Group("ingest", "fanout", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return err
		}
		members := []string{"fast0", "fast1", "fast2", "slow"}
		var consumers []*pubsub.Consumer
		for _, m := range members {
			c, err := g.Join(m)
			if err != nil {
				return err
			}
			consumers = append(consumers, c)
		}
		// Which partition does the slow member own? Keys hashing there are
		// the victims.
		slowParts := map[int]bool{}
		for part, owner := range g.Assignment() {
			if owner == "slow" {
				slowParts[part] = true
			}
		}

		keys := workload.NewUniformKeys(opts.Seed, nSeries)
		fastLat := metrics.NewHistogram()
		victimLat := metrics.NewHistogram()
		busyUntil := make([]int64, len(consumers))
		published := 0
		for tick := int64(0); tick < int64(totalTicks); tick++ {
			if tick < int64(publishTicks) {
				for i := 0; i < 4; i++ {
					k := keys.Pick()
					if _, _, err := b.Publish("ingest", k, []byte(strconv.FormatInt(tick, 10))); err != nil {
						return err
					}
					published++
				}
			}
			for ci, c := range consumers {
				if busyUntil[ci] > tick {
					continue
				}
				msg, ok, err := c.Poll()
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				cost := int64(1)
				if members[ci] == "slow" {
					cost = slowFactor
				}
				busyUntil[ci] = tick + cost
				lat := tick + cost - atoi64(msg.Value)
				if slowParts[msg.Partition] {
					victimLat.Observe(lat)
				} else {
					fastLat.Observe(lat)
				}
				c.Ack(msg)
			}
		}
		psBacklog := g.Lag()
		psFast := fastLat.Snapshot()
		psVictim := victimLat.Snapshot()

		// ---------------- watch over an ingestion store ----------------
		st := ingeststore.NewWatchable(ingeststore.Config{}, core.HubConfig{
			Retention:     events,
			WatcherBuffer: 8 * events, // fast watchers must never lag in this run
		})
		defer st.Close()

		var mu sync.Mutex
		wLat := metrics.NewHistogram()
		fastDelivered := 0
		var appended int64

		shards := keyspace.EvenSplit(nSeries, 4)
		// Three fast watchers.
		for _, shard := range shards[:3] {
			cancel, err := st.Watch(shard, core.NoVersion, core.Funcs{
				Event: func(ev core.ChangeEvent) {
					mu.Lock()
					fastDelivered++
					// Latency in "append ticks": how far production ran ahead
					// of this delivery.
					wLat.Observe((appended - atoi64(ev.Mut.Value)) / 4)
					mu.Unlock()
				},
			})
			if err != nil {
				return err
			}
			defer cancel()
		}
		// The slow watcher: a small personal buffer and a blocking callback.
		// The hub lags it out and resyncs it rather than queueing unboundedly.
		slowHub := core.NewHub(core.HubConfig{Retention: 256, WatcherBuffer: 128})
		defer slowHub.Close()
		detachSlow := st.AttachIngester(slowHub)
		defer detachSlow()
		slowResyncs := 0
		slowRecovered := 0
		cancelSlow, err := slowHub.Watch(shards[3], core.NoVersion, core.Funcs{
			Event: func(core.ChangeEvent) {
				time.Sleep(50 * time.Microsecond) // can't keep up
			},
			Resync: func(r core.ResyncEvent) {
				// Recovery reads current state from the ingestion store —
				// bounded work, explicit signal.
				evs := st.Query(r.Range, 0, 0)
				mu.Lock()
				slowResyncs++
				slowRecovered = len(evs)
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		defer cancelSlow()

		keys2 := workload.NewUniformKeys(opts.Seed, nSeries)
		for i := 0; i < events; i++ {
			mu.Lock()
			appended = int64(i)
			mu.Unlock()
			st.Append(keys2.Pick(), []byte(strconv.FormatInt(int64(i), 10)))
		}
		settle(func() bool {
			mu.Lock()
			defer mu.Unlock()
			// The slow watcher's dispatcher may be mid-batch (each event
			// sleeps); wait for its resync too, not just fast delivery.
			return fastDelivered >= events*3/4-nSeries && slowResyncs >= 1
		})
		mu.Lock()
		wSnap := wLat.Snapshot()
		fd, sr, rec := fastDelivered, slowResyncs, slowRecovered
		mu.Unlock()

		tbl := metrics.NewTable("E7 — one slow consumer in the ingestion fanout",
			"system", "events", "fast-key p99", "co-partitioned-key p99", "slow backlog at end", "slow-lag signal")
		tbl.AddRow("pubsub group", published, psFast.P99, psVictim.P99, psBacklog, "none")
		tbl.AddRow("watch ranges", events, wSnap.P99, "n/a (range-isolated)", "bounded (soft state)",
			strconv.Itoa(sr)+" resyncs")
		tbl.AddNote("pubsub latencies in virtual ticks; keys sharing the slow member's partition are the victims")
		tbl.AddNote("the slow watcher recovered via store query (%d retained events), not by draining a log", rec)
		res.Table = tbl

		res.check("pubsub slow partition backlog persists",
			psBacklog > int64(events)/20, "lag %d after %d events", psBacklog, published)
		res.check("co-partitioned keys suffer head-of-line blocking",
			psVictim.P99 > 10*psFast.P99, "victim p99 %d vs fast p99 %d", psVictim.P99, psFast.P99)
		res.check("watch fast ranges fully delivered, unaffected by the slow range",
			fd >= events*3/4-nSeries, "delivered %d of ~%d", fd, events*3/4)
		res.check("watch surfaced the slow consumer's lag explicitly",
			sr >= 1, "%d resyncs", sr)
		return nil
	})
}

func atoi64(b []byte) int64 {
	v, _ := strconv.ParseInt(string(b), 10, 64)
	return v
}
