package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/coretest"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/remote"
)

// soakHeapCeiling is the absolute HeapAlloc bound the soak enforces while
// the storm runs. It is deliberately generous — the race detector's shadow
// memory and the Go runtime dwarf the governed budget — but it is the line
// between "the governor held" and "the process would have OOMed": without
// the governor the stalled consumers' backlogs alone grow unboundedly.
const soakHeapCeiling = 512 << 20

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSoakOverloadStorm is the overload soak (`make soak`, short mode in
// `make verify`): the full governed stack — MVCC store, hub, remote server,
// TCP, reconnecting clients, ResyncWatchers — versus a large-value watcher
// storm in which a subset of consumers stops reading entirely and every
// connection is severed mid-storm, forcing a simultaneous resume storm.
//
// It must end with: the heap within its absolute ceiling throughout, the
// degradation ladder demonstrably engaged (relief runs, pressure past
// shedding), every consumer — stalled, shed, severed, refused — converged
// byte-equal with the store, the governor back under budget, and not one
// goroutine leaked. Run it under -race.
func TestSoakOverloadStorm(t *testing.T) {
	checkLeaks := coretest.GoroutineLeakGuard(t, 3)

	// Retention is kept small relative to the stalled backlog: the first
	// relief rung (accelerated eviction) can only free (retention - floor)
	// bytes per cycle, so a sustained stall must escalate to the second
	// rung — outbox overflow, shedding or refusal — rather than letting
	// eviction absorb the whole storm.
	watchers, slow, events, valSize := 64, 8, 12000, 8192
	budget := int64(4 << 20)
	retention, floor := 128, 64
	convergeIn := 120 * time.Second
	if testing.Short() {
		watchers, slow, events, valSize = 12, 3, 4000, 8192
		budget = 1 << 20
		retention, floor = 64, 32
		convergeIn = 60 * time.Second
	}

	reg := metrics.NewRegistry()
	gov := govern.NewGovernor(govern.Config{
		Budget:         budget,
		QuarantineBase: 50 * time.Millisecond,
		QuarantineMax:  500 * time.Millisecond,
		Metrics:        reg,
		Seed:           1,
	})
	ws := mvcc.NewWatchableStore(core.HubConfig{
		Retention:      retention,
		RetentionFloor: floor,
		WatcherBuffer:  1 << 14,
		Metrics:        reg,
		Governor:       gov,
	})
	srv, err := remote.ServeWith("127.0.0.1:0", ws, ws, remote.ServerConfig{
		Metrics:  reg,
		Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := remote.NewChaosController(remote.ChaosConfig{Seed: 1})

	gate := make(chan struct{})
	sinks := make([]*e17Sink, watchers)
	rws := make([]*core.ResyncWatcher, watchers)
	ranges := make([]keyspace.Range, watchers)
	clients := make([]*remote.Client, watchers)
	for i := 0; i < watchers; i++ {
		client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{
			Metrics: reg,
			Reconnect: remote.ReconnectPolicy{
				Enabled:     true,
				MaxAttempts: -1,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				Seed:        int64(i) + 1,
			},
			Dialer: ctrl.Dialer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = client
		ranges[i] = keyspace.Prefix(keyspace.Key(fmt.Sprintf("w%02d/", i)))
		sinks[i] = &e17Sink{state: make(map[keyspace.Key]string)}
		if i < slow {
			sinks[i].gate = gate
		}
		rws[i] = core.NewResyncWatcher(client, client, ranges[i], sinks[i])
		if err := rws[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Samplers: peak governor pressure, and the heap high-water mark the
	// soak exists to bound.
	peak := 0
	var maxHeap uint64
	stopSample := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stopSample:
				return
			case <-time.After(10 * time.Millisecond):
				if l := gov.Snapshot().Level; l > peak {
					peak = l
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > maxHeap {
					maxHeap = ms.HeapAlloc
				}
			}
		}
	}()

	// The storm: large values round-robin across every watcher's prefix,
	// paced so relief and delivery goroutines get scheduled on small
	// runners. Every connection is severed late in the storm — after the
	// stalled consumers' backlogs have pushed the governor up its ladder —
	// so the tail of the storm doubles as a full-fleet resume storm against
	// a governor already under pressure.
	// Half the storm lands on the stalled consumers' prefixes: their
	// backlog must decisively exceed what the kernel's socket buffers can
	// absorb (TCP send buffers auto-tune into the megabytes on loopback),
	// or every charged byte drains into the kernel and the governor never
	// feels the stall.
	val := make([]byte, valSize)
	for i := 1; i <= events; i++ {
		w := slow + (i/2)%(watchers-slow)
		if i%2 == 0 {
			w = (i / 2) % slow
		}
		ws.Put(keyspace.Key(fmt.Sprintf("w%02d/%04d", w, i%64)), val)
		if i == events/8*7 {
			ctrl.SeverAll()
		}
		if i%32 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	close(gate) // storm over: stalled consumers resume draining

	converged := func() bool {
		for i, s := range sinks {
			entries, _, err := ws.SnapshotRange(ranges[i])
			if err != nil {
				return false
			}
			s.mu.Lock()
			ok := len(s.state) == len(entries)
			if ok {
				for _, e := range entries {
					if s.state[e.Key] != string(e.Value) {
						ok = false
						break
					}
				}
			}
			s.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	}
	waitFor(t, "byte-equal convergence of every consumer", convergeIn, converged)
	// Every severed client must eventually redial — the resume storm. (A
	// stalled client can converge from frames its kernel buffered before
	// the sever and only hit the dead socket afterwards, so this completes
	// after convergence, not before.)
	waitFor(t, "severed fleet redialing", 15*time.Second, func() bool {
		return reg.Snapshot().Counters["remote_client_reconnects_total"] >= int64(watchers)
	})

	close(stopSample)
	sampleDone.Wait()
	st := gov.Snapshot()
	snap := reg.Snapshot()
	var totalResyncs int64
	for _, w := range rws {
		totalResyncs += w.Resyncs()
	}
	t.Logf("peak pressure %s, relief runs %d, sheds %d, rejects %d, overloaded frames %d, overflow resyncs %d, client resync cycles %d, reconnects %d, max heap %d MiB",
		govern.Pressure(peak), st.ReliefRuns, st.Sheds, st.Rejects,
		snap.Counters["remote_server_overloaded_total"],
		snap.Counters["remote_server_overflow_resyncs_total"],
		totalResyncs,
		snap.Counters["remote_client_reconnects_total"],
		maxHeap>>20)

	if maxHeap > soakHeapCeiling {
		t.Errorf("heap high-water %d exceeded the %d ceiling: the governor did not hold", maxHeap, int64(soakHeapCeiling))
	}
	if st.ReliefRuns < 1 {
		t.Errorf("relief never ran: the storm did not stress the governor")
	}
	// The ladder must have gone past its first rung: some combination of
	// hub sheds, refused admissions, pressure-triggered outbox overflows,
	// or overload frames on the wire. (The sampled peak can miss brief
	// excursions, so the rung-2 evidence is counters, not the gauge.)
	rung2 := st.Sheds + st.Rejects +
		snap.Counters["remote_server_overflow_resyncs_total"] +
		snap.Counters["remote_server_overloaded_total"]
	if rung2 == 0 {
		t.Errorf("the ladder never went past eviction: no sheds, rejects, overflows or overload frames")
	}
	if st.Sheds > 0 && totalResyncs == 0 {
		t.Errorf("%d watchers shed but no consumer saw a resync cycle: a shed was silent", st.Sheds)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Errorf("governor still over budget after the storm: used %d of %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Level >= int(govern.Shed) {
		t.Errorf("governor still at pressure %s after the storm subsided", st.Pressure)
	}

	for _, w := range rws {
		w.Stop()
	}
	for _, c := range clients {
		c.Close()
	}
	srv.Close()
	ws.Close()
	gov.Close()
	checkLeaks()
}
