package experiments

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/pubsub"
	"unbundle/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E1",
		Title:  "Pubsub model baseline (consumer groups share, free consumers see all) vs watch fanout",
		Anchor: "Figure 1, §2",
		Run:    runE1,
	})
}

// runE1 establishes that both systems do their basic job at rate: a consumer
// group partitions a topic's messages among members; free consumers each see
// every message; a watch hub fans out to range-scoped watchers. This is the
// working baseline the later experiments stress.
func runE1(opts Options) (*Result, error) {
	e, _ := Get("E1")
	return run(e, opts, func(res *Result) error {
		nMsgs := opts.pick(2000, 50000)
		partitions := 8
		members := 4

		// --- pubsub: group + free consumer.
		b := pubsub.NewBroker(pubsub.BrokerConfig{})
		defer b.Close()
		if err := b.CreateTopic("events", pubsub.TopicConfig{Partitions: partitions}); err != nil {
			return err
		}
		g, err := b.Group("events", "g", pubsub.GroupConfig{StartAtEarliest: true})
		if err != nil {
			return err
		}
		var consumers []*pubsub.Consumer
		for i := 0; i < members; i++ {
			c, err := g.Join(fmt.Sprintf("m%d", i))
			if err != nil {
				return err
			}
			consumers = append(consumers, c)
		}
		keys := workload.NewZipfKeys(opts.Seed, 10000, 1.2)

		pubStart := time.Now()
		for i := 0; i < nMsgs; i++ {
			if _, _, err := b.Publish("events", keys.Pick(), []byte("payload-0123456789")); err != nil {
				return err
			}
		}
		publishDur := time.Since(pubStart)

		perMember := make([]int64, members)
		consStart := time.Now()
		var groupDelivered int64
		for groupDelivered < int64(nMsgs) {
			progress := false
			for i, c := range consumers {
				msg, ok, err := c.Poll()
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				c.Ack(msg)
				perMember[i]++
				groupDelivered++
				progress = true
			}
			if !progress {
				break
			}
		}
		consumeDur := time.Since(consStart)

		var freeDelivered int64
		for p := 0; p < partitions; p++ {
			fc, err := b.NewFreeConsumer("events", p, pubsub.FromEarliest)
			if err != nil {
				return err
			}
			for {
				if _, ok := fc.Poll(); !ok {
					break
				}
				freeDelivered++
			}
		}

		// --- watch hub fanout: same volume, range-scoped watchers.
		hub := core.NewHub(core.HubConfig{Retention: nMsgs + 1, WatcherBuffer: nMsgs + 1})
		defer hub.Close()
		var wg sync.WaitGroup
		var mu sync.Mutex
		perWatcher := make([]int64, members)
		for i, shard := range keyspace.EvenSplit(10000, members) {
			i := i
			wg.Add(1)
			done := false
			cancel, err := hub.Watch(shard, core.NoVersion, core.Funcs{
				Event: func(ev core.ChangeEvent) {
					mu.Lock()
					perWatcher[i]++
					if !done && ev.Version == core.Version(nMsgs) {
						done = true
						wg.Done()
					}
					mu.Unlock()
				},
				Progress: func(p core.ProgressEvent) {
					mu.Lock()
					if !done && p.Version == core.Version(nMsgs) {
						done = true
						wg.Done()
					}
					mu.Unlock()
				},
			})
			if err != nil {
				return err
			}
			defer cancel()
		}
		keys2 := workload.NewZipfKeys(opts.Seed, 10000, 1.2)
		hubStart := time.Now()
		// The driver feeds the hub in batches, the way a batched CDC tap
		// would: per-key version order is what matters, and batch order
		// preserves it.
		const batchSize = 64
		batch := make([]core.ChangeEvent, 0, batchSize)
		for i := 1; i <= nMsgs; i++ {
			batch = append(batch, core.ChangeEvent{
				Key:     keys2.Pick(),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("payload-0123456789")},
				Version: core.Version(i),
			})
			if len(batch) == batchSize || i == nMsgs {
				if err := hub.AppendBatch(batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		hub.Progress(core.ProgressEvent{Range: keyspace.Full(), Version: core.Version(nMsgs)})
		wg.Wait()
		hubDur := time.Since(hubStart)
		var watchTotal int64
		mu.Lock()
		for _, n := range perWatcher {
			watchTotal += n
		}
		mu.Unlock()

		tbl := metrics.NewTable("E1 — baseline throughput and delivery accounting",
			"system", "consumers", "published", "delivered", "per-consumer", "rate msg/s")
		tbl.AddRow("pubsub group", members, nMsgs, groupDelivered,
			fmt.Sprintf("%v", perMember), rate(groupDelivered, publishDur+consumeDur))
		tbl.AddRow("pubsub free", 1, nMsgs, freeDelivered, "all partitions", "-")
		tbl.AddRow("watch hub", members, nMsgs, watchTotal,
			fmt.Sprintf("%v", perWatcher), rate(watchTotal, hubDur))
		tbl.AddNote("group members share the topic; free consumers and watch shards each account for every message exactly once")
		res.Table = tbl

		res.check("group delivers everything exactly once across members",
			groupDelivered == int64(nMsgs), "delivered %d of %d", groupDelivered, nMsgs)
		res.check("every member participates", minOf(perMember) > 0, "per-member %v", perMember)
		res.check("free consumer sees the whole topic",
			freeDelivered == int64(nMsgs), "saw %d of %d", freeDelivered, nMsgs)
		res.check("watch shards partition the stream exactly",
			watchTotal == int64(nMsgs), "delivered %d of %d", watchTotal, nMsgs)
		return nil
	})
}

func rate(n int64, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}

func minOf(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
