package workload

import (
	"testing"

	"unbundle/internal/keyspace"
)

func TestUniformDeterministic(t *testing.T) {
	a := NewUniformKeys(7, 100)
	b := NewUniformKeys(7, 100)
	for i := 0; i < 50; i++ {
		if a.Pick() != b.Pick() {
			t.Fatal("same seed diverged")
		}
	}
	if a.Domain() != 100 {
		t.Fatalf("domain = %d", a.Domain())
	}
}

func TestZipfIsSkewed(t *testing.T) {
	p := NewZipfKeys(1, 1000, 1.2)
	counts := map[keyspace.Key]int{}
	for i := 0; i < 10000; i++ {
		counts[p.Pick()]++
	}
	// The hottest key should carry far more than the uniform share (10).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key only %d/10000 — not skewed", max)
	}
	// Degenerate skew falls back rather than panicking.
	NewZipfKeys(1, 10, 0.5).Pick()
}

func TestUpdateStreamSequencesPerKey(t *testing.T) {
	u := NewUpdateStream(NewUniformKeys(3, 5))
	seen := map[keyspace.Key]int{}
	for i := 0; i < 200; i++ {
		k, v := u.Next()
		seen[k]++
		if got := SeqFromValue(v); got != seen[k] {
			t.Fatalf("key %q: payload seq %d, want %d", string(k), got, seen[k])
		}
		if u.SeqOf(k) != seen[k] {
			t.Fatalf("SeqOf mismatch")
		}
	}
	if u.Count() != 200 {
		t.Fatalf("count = %d", u.Count())
	}
}

func TestSeqFromValueRejectsGarbage(t *testing.T) {
	if got := SeqFromValue([]byte("not a value")); got != -1 {
		t.Fatalf("garbage parsed to %d", got)
	}
}

func TestACLScriptShape(t *testing.T) {
	txns := ACLScript(1, 3, 2)
	// Per round: setup + 2 filler + revoke + grant = 5.
	if len(txns) != 15 {
		t.Fatalf("script length = %d", len(txns))
	}
	// Round 1: revoke must precede grant, operating on the ACLPair keys.
	member, doc := ACLPair(1)
	revokeIdx, grantIdx := -1, -1
	for i, txn := range txns {
		for _, op := range txn.Ops {
			if op.Key == member && op.Value == nil {
				revokeIdx = i
			}
			if op.Key == doc {
				grantIdx = i
			}
		}
	}
	if revokeIdx == -1 || grantIdx == -1 || revokeIdx >= grantIdx {
		t.Fatalf("revoke at %d, grant at %d", revokeIdx, grantIdx)
	}
	// Deterministic.
	again := ACLScript(1, 3, 2)
	for i := range txns {
		if txns[i].Label != again[i].Label || len(txns[i].Ops) != len(again[i].Ops) {
			t.Fatal("script not deterministic")
		}
	}
}

func TestNextForTargetsKey(t *testing.T) {
	u := NewUpdateStream(NewUniformKeys(1, 10))
	k := keyspace.NumericKey(3)
	_, v1 := u.NextFor(k)
	_, v2 := u.NextFor(k)
	if SeqFromValue(v1) != 1 || SeqFromValue(v2) != 2 {
		t.Fatalf("targeted seqs = %d, %d", SeqFromValue(v1), SeqFromValue(v2))
	}
	// Interleaves correctly with the picker-driven stream.
	for i := 0; i < 50; i++ {
		u.Next()
	}
	if u.SeqOf(k) < 2 {
		t.Fatal("targeted seq lost")
	}
	if u.Count() != 52 {
		t.Fatalf("count = %d", u.Count())
	}
}
