// Package workload provides the deterministic synthetic workloads driving
// the experiments: skewed and uniform key pickers, self-describing payloads,
// and transaction scripts (including the §3.2.1 ACL scenario whose
// reordering violates snapshot consistency).
//
// Everything is seeded; two runs with the same seed produce byte-identical
// streams, which keeps experiment output reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"unbundle/internal/keyspace"
)

// KeyPicker yields keys from some distribution over a numeric key domain.
type KeyPicker interface {
	// Pick returns the next key.
	Pick() keyspace.Key
	// Domain returns the number of distinct keys.
	Domain() int
}

// uniform picks keys uniformly from [0, n).
type uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniformKeys returns a uniform picker over n numeric keys.
func NewUniformKeys(seed int64, n int) KeyPicker {
	if n <= 0 {
		panic("workload: non-positive key domain")
	}
	return &uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

func (u *uniform) Pick() keyspace.Key { return keyspace.NumericKey(u.rng.Intn(u.n)) }
func (u *uniform) Domain() int        { return u.n }

// zipf picks keys Zipf-distributed over [0, n): a few keys are hot, the
// tail is cold — the shape real invalidation and task streams have, and the
// one that makes affinity matter (E8).
type zipf struct {
	z *rand.Zipf
	n int
}

// NewZipfKeys returns a Zipf picker over n numeric keys with skew s > 1.
func NewZipfKeys(seed int64, n int, s float64) KeyPicker {
	if n <= 0 {
		panic("workload: non-positive key domain")
	}
	if s <= 1 {
		s = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	return &zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
}

func (z *zipf) Pick() keyspace.Key { return keyspace.NumericKey(int(z.z.Uint64())) }
func (z *zipf) Domain() int        { return z.n }

// UpdateStream produces a deterministic stream of (key, value) updates where
// each value encodes the key and a per-key sequence number, so any observer
// can independently verify freshness and ordering.
type UpdateStream struct {
	picker KeyPicker
	seq    map[keyspace.Key]int
	count  int64
}

// NewUpdateStream wraps a picker into an update stream.
func NewUpdateStream(picker KeyPicker) *UpdateStream {
	return &UpdateStream{picker: picker, seq: make(map[keyspace.Key]int)}
}

// Next returns the next update.
func (u *UpdateStream) Next() (keyspace.Key, []byte) {
	return u.NextFor(u.picker.Pick())
}

// NextFor returns the next update targeted at a specific key — the
// read-modify-write traffic pattern (read a row, then write it back) that
// cache-invalidation workloads are full of.
func (u *UpdateStream) NextFor(k keyspace.Key) (keyspace.Key, []byte) {
	u.seq[k]++
	u.count++
	return k, Value(k, u.seq[k])
}

// Count returns how many updates have been produced.
func (u *UpdateStream) Count() int64 { return u.count }

// SeqOf returns the last sequence number produced for k (0 if none).
func (u *UpdateStream) SeqOf(k keyspace.Key) int { return u.seq[k] }

// Value encodes a self-describing payload for key k at sequence seq.
func Value(k keyspace.Key, seq int) []byte {
	return []byte(fmt.Sprintf("%s:seq=%06d", string(k), seq))
}

// SeqFromValue parses the sequence number out of a Value payload
// (-1 when the payload is not in Value format).
func SeqFromValue(v []byte) int {
	var key string
	var seq int
	// The key itself contains no ':' (numeric keys), so Sscanf is unambiguous.
	if _, err := fmt.Sscanf(string(v), "%12s:seq=%06d", &key, &seq); err != nil {
		return -1
	}
	return seq
}

// Op is one operation of a transaction script.
type Op struct {
	Key   keyspace.Key
	Value []byte // nil = delete
}

// Txn is one atomic transaction of a script.
type Txn struct {
	Ops []Op
	// Label tags interesting transactions (e.g. the ACL pair) so checkers
	// can report which scripted scenario a violation came from.
	Label string
}

// ACLScript generates the paper's §3.2.1 anomaly workload: group-membership
// and document-ACL tables where ordering matters. Each round k:
//
//	T(2k):   remove member M from group G        (delete member row)
//	T(2k+1): grant group G access to document D  (put acl row)
//
// Applying T(2k+1) before T(2k) at the target externalizes a state — member
// still in the group AND the group having document access — that never
// existed at the source. Interleaved with filler traffic to give concurrent
// appliers room to reorder.
func ACLScript(seed int64, rounds, fillerPerRound int) []Txn {
	rng := rand.New(rand.NewSource(seed))
	var txns []Txn
	for k := 0; k < rounds; k++ {
		member := keyspace.Key(fmt.Sprintf("group/%04d/member/%04d", k, k))
		doc := keyspace.Key(fmt.Sprintf("acl/doc%04d/group%04d", k, k))
		// Establish membership (and no access) first.
		txns = append(txns, Txn{
			Label: fmt.Sprintf("setup-%d", k),
			Ops:   []Op{{Key: member, Value: []byte("member")}},
		})
		for i := 0; i < fillerPerRound; i++ {
			fk := keyspace.Key(fmt.Sprintf("filler/%06d", rng.Intn(10000)))
			txns = append(txns, Txn{
				Label: "filler",
				Ops:   []Op{{Key: fk, Value: []byte(fmt.Sprintf("f%d", rng.Int()))}},
			})
		}
		txns = append(txns, Txn{
			Label: fmt.Sprintf("revoke-%d", k),
			Ops:   []Op{{Key: member, Value: nil}}, // remove member from group
		})
		txns = append(txns, Txn{
			Label: fmt.Sprintf("grant-%d", k),
			Ops:   []Op{{Key: doc, Value: []byte("allowed")}}, // grant group access
		})
	}
	return txns
}

// ACLPair names the two keys of round k, for the anomaly checker.
func ACLPair(k int) (member, doc keyspace.Key) {
	return keyspace.Key(fmt.Sprintf("group/%04d/member/%04d", k, k)),
		keyspace.Key(fmt.Sprintf("acl/doc%04d/group%04d", k, k))
}
