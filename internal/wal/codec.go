package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"unbundle/internal/keyspace"
)

// The on-wire segment format, for durability and for shipping partitions
// between broker replicas:
//
//	magic (4) | version (2) | earliest (8) | next (8) | recordCount (4)
//	per record: offset (8) | unixNano (8) | keyLen (4) | key | valLen (4) | val
//
// earliest/next preserve the offset window exactly even when retention or
// compaction emptied it or left holes at its start. valLen == 0xFFFFFFFF
// encodes a nil value (a tombstone), which compaction treats differently
// from an empty value.

const (
	codecMagic   = 0x57414C31 // "WAL1"
	codecVersion = 1
	nilValueLen  = ^uint32(0)
)

// Marshal encodes the log's retained records.
func (l *Log) Marshal() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var recs []Record
	for _, seg := range l.segments {
		recs = append(recs, seg.records...)
	}
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.BigEndian, v) } // bytes.Buffer writes cannot fail
	w(uint32(codecMagic))
	w(uint16(codecVersion))
	w(l.earliest)
	w(l.next)
	w(uint32(len(recs)))
	for _, r := range recs {
		w(r.Offset)
		w(r.Time.UnixNano())
		w(uint32(len(r.Key)))
		buf.WriteString(string(r.Key))
		if r.Value == nil {
			w(nilValueLen)
		} else {
			w(uint32(len(r.Value)))
			buf.Write(r.Value)
		}
	}
	return buf.Bytes(), nil
}

// Unmarshal rebuilds a log from Marshal output. The result has the same
// retained records, earliest and next offsets; GC/compaction counters reset.
func Unmarshal(data []byte, cfg Config) (*Log, error) {
	r := bytes.NewReader(data)
	var magic uint32
	var version uint16
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("wal: truncated header: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("wal: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("wal: truncated header: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("wal: unsupported version %d", version)
	}
	var earliest, next int64
	if err := binary.Read(r, binary.BigEndian, &earliest); err != nil {
		return nil, fmt.Errorf("wal: truncated header: %w", err)
	}
	if err := binary.Read(r, binary.BigEndian, &next); err != nil {
		return nil, fmt.Errorf("wal: truncated header: %w", err)
	}
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("wal: truncated header: %w", err)
	}
	if earliest > next {
		return nil, fmt.Errorf("wal: corrupt window [%d, %d)", earliest, next)
	}
	l := NewLog(cfg)
	lastOffset := earliest - 1
	for i := uint32(0); i < count; i++ {
		rec, err := readRecord(r)
		if err != nil {
			return nil, fmt.Errorf("wal: record %d: %w", i, err)
		}
		if rec.Offset <= lastOffset || rec.Offset >= next {
			return nil, fmt.Errorf("wal: record %d: offset %d outside window (after %d, next %d)", i, rec.Offset, lastOffset, next)
		}
		lastOffset = rec.Offset
		seg := l.activeLocked()
		seg.records = append(seg.records, rec)
		seg.bytes += int64(len(rec.Key) + len(rec.Value))
		seg.last = rec.Time
		if len(seg.records) >= l.cfg.SegmentMaxRecords {
			seg.sealed = true
		}
	}
	l.earliest = earliest
	l.next = next
	return l, nil
}

func readRecord(r *bytes.Reader) (Record, error) {
	var rec Record
	var nanos int64
	if err := binary.Read(r, binary.BigEndian, &rec.Offset); err != nil {
		return rec, err
	}
	if err := binary.Read(r, binary.BigEndian, &nanos); err != nil {
		return rec, err
	}
	rec.Time = time.Unix(0, nanos).UTC()
	var klen uint32
	if err := binary.Read(r, binary.BigEndian, &klen); err != nil {
		return rec, err
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r, key); err != nil {
		return rec, err
	}
	rec.Key = keyspace.Key(key)
	var vlen uint32
	if err := binary.Read(r, binary.BigEndian, &vlen); err != nil {
		return rec, err
	}
	if vlen != nilValueLen {
		val := make([]byte, vlen)
		if _, err := io.ReadFull(r, val); err != nil {
			return rec, err
		}
		rec.Value = val
	}
	return rec, nil
}
