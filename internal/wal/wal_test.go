package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unbundle/internal/keyspace"
)

var t0 = time.Date(2025, 5, 14, 0, 0, 0, 0, time.UTC)

func appendN(l *Log, n int, at time.Time) {
	for i := 0; i < n; i++ {
		l.Append(keyspace.Key(fmt.Sprintf("k%d", i%5)), []byte(fmt.Sprintf("v%d", i)), at)
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	l := NewLog(Config{})
	for i := 0; i < 10; i++ {
		off := l.Append(keyspace.Key(fmt.Sprintf("k%d", i)), []byte{byte(i)}, t0)
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	recs, next, err := l.ReadBatch(0, 0)
	if err != nil || len(recs) != 10 || next != 10 {
		t.Fatalf("ReadBatch = %d recs, next %d, err %v", len(recs), next, err)
	}
	for i, r := range recs {
		if r.Offset != int64(i) || r.Key != keyspace.Key(fmt.Sprintf("k%d", i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Partial batch from the middle.
	recs, next, err = l.ReadBatch(4, 3)
	if err != nil || len(recs) != 3 || recs[0].Offset != 4 || next != 7 {
		t.Fatalf("mid batch = %v next=%d err=%v", recs, next, err)
	}
	// Reading at the head is an empty batch, not an error.
	recs, next, err = l.ReadBatch(10, 0)
	if err != nil || len(recs) != 0 || next != 10 {
		t.Fatalf("head read = %v next=%d err=%v", recs, next, err)
	}
}

func TestReadBeyondHead(t *testing.T) {
	l := NewLog(Config{})
	l.Append("k", nil, t0)
	_, _, err := l.ReadBatch(5, 0)
	var oor *OutOfRangeError
	if !errors.As(err, &oor) || oor.Next != 1 {
		t.Fatalf("err = %v", err)
	}
}

func TestRetentionByAge(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 10})
	appendN(l, 25, t0)                 // segs [0,10) [10,20) sealed, [20,25) active
	appendN(l, 5, t0.Add(2*time.Hour)) // active continues, newer

	dropped := l.RetainSince(t0.Add(time.Hour))
	if dropped != 20 {
		t.Fatalf("dropped = %d, want 20 (two sealed segments)", dropped)
	}
	if got := l.EarliestOffset(); got != 20 {
		t.Fatalf("earliest = %d, want 20", got)
	}
	// Reading the GC-ed range is an explicit out-of-range error; the caller
	// (a backlogged consumer) sees where the log now starts.
	_, _, err := l.ReadBatch(0, 0)
	var oor *OutOfRangeError
	if !errors.As(err, &oor) || oor.Earliest != 20 {
		t.Fatalf("err = %v", err)
	}
	// Surviving records all readable.
	recs, _, err := l.ReadBatch(20, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("tail read = %d recs err=%v", len(recs), err)
	}
	if st := l.Stats(); st.GCedRecords != 20 || st.Records != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetentionNeverDropsActiveSegment(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 100})
	appendN(l, 5, t0)
	if dropped := l.RetainSince(t0.Add(time.Hour)); dropped != 0 {
		t.Fatalf("active segment dropped: %d", dropped)
	}
}

func TestRetentionByBytes(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 4})
	for i := 0; i < 16; i++ {
		l.Append("key", []byte("0123456789"), t0) // 13 bytes per record, 52 per segment
	}
	dropped := l.RetainBytes(110)
	if dropped != 8 {
		t.Fatalf("dropped = %d, want 8 (two oldest segments)", dropped)
	}
	if l.EarliestOffset() != 8 {
		t.Fatalf("earliest = %d", l.EarliestOffset())
	}
}

func TestCompactionKeepsLastPerKey(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 6})
	// 12 records over keys a,b,c; two sealed segments; then a dirty tail.
	keys := []keyspace.Key{"a", "b", "c"}
	for i := 0; i < 12; i++ {
		l.Append(keys[i%3], []byte(fmt.Sprintf("v%d", i)), t0)
	}
	appendN(l, 1, t0.Add(2*time.Hour)) // active segment, after horizon

	removed := l.Compact(t0.Add(time.Hour))
	if removed != 9 {
		t.Fatalf("removed = %d, want 9 (12 sealed minus 3 survivors)", removed)
	}
	recs, _, err := l.ReadBatch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: last record per key within the sealed prefix (offsets 9,10,11)
	// plus the dirty record.
	if len(recs) != 4 {
		t.Fatalf("recs = %v", recs)
	}
	seen := map[keyspace.Key]string{}
	for _, r := range recs[:3] {
		seen[r.Key] = string(r.Value)
	}
	if seen["a"] != "v9" || seen["b"] != "v10" || seen["c"] != "v11" {
		t.Fatalf("survivors = %v", seen)
	}
	// Offsets preserved, with holes; earliest unchanged.
	if recs[0].Offset != 9 || l.EarliestOffset() != 0 {
		t.Fatalf("offsets: first=%d earliest=%d", recs[0].Offset, l.EarliestOffset())
	}
}

func TestCompactionDropsTombstonedKeys(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 4})
	l.Append("a", []byte("1"), t0)
	l.Append("a", nil, t0) // tombstone
	l.Append("b", []byte("2"), t0)
	l.Append("b", []byte("3"), t0) // seals segment
	l.Append("x", []byte("dirty"), t0.Add(2*time.Hour))

	l.Compact(t0.Add(time.Hour))
	recs, _, _ := l.ReadBatch(0, 0)
	for _, r := range recs {
		if r.Key == "a" {
			t.Fatalf("tombstoned key survived compaction: %+v", r)
		}
	}
}

func TestCodecRoundtrip(t *testing.T) {
	l := NewLog(Config{SegmentMaxRecords: 3})
	l.Append("a", []byte("1"), t0)
	l.Append("b", nil, t0.Add(time.Minute)) // nil survives as nil
	l.Append("c", []byte(""), t0)           // empty stays empty, distinct from nil
	l.Append("d", []byte("4"), t0)
	l.RetainBytes(0) // force interesting earliest? (drops sealed first segment)

	data, err := l.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data, Config{SegmentMaxRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _, _ := l.ReadBatch(l.EarliestOffset(), 0)
	gotRecs, _, _ := back.ReadBatch(back.EarliestOffset(), 0)
	if len(wantRecs) != len(gotRecs) {
		t.Fatalf("records %d vs %d", len(wantRecs), len(gotRecs))
	}
	for i := range wantRecs {
		w, g := wantRecs[i], gotRecs[i]
		if w.Offset != g.Offset || w.Key != g.Key || string(w.Value) != string(g.Value) ||
			(w.Value == nil) != (g.Value == nil) || !w.Time.Equal(g.Time) {
			t.Fatalf("record %d: %+v vs %+v", i, w, g)
		}
	}
	if back.NextOffset() != l.NextOffset() || back.EarliestOffset() != l.EarliestOffset() {
		t.Fatalf("offsets: next %d/%d earliest %d/%d",
			back.NextOffset(), l.NextOffset(), back.EarliestOffset(), l.EarliestOffset())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("nonsense"), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal(nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
}

// TestQuickOffsetsMonotonic: after any sequence of appends, retention and
// compaction, readable offsets are strictly increasing and within
// [earliest, next).
func TestQuickOffsetsMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog(Config{SegmentMaxRecords: 4})
		now := t0
		for i := 0; i < 100; i++ {
			switch rng.Intn(10) {
			case 0:
				l.RetainSince(now.Add(-time.Duration(rng.Intn(60)) * time.Minute))
			case 1:
				l.Compact(now.Add(-time.Duration(rng.Intn(60)) * time.Minute))
			case 2:
				l.RetainBytes(int64(rng.Intn(200)))
			default:
				l.Append(keyspace.Key(fmt.Sprintf("k%d", rng.Intn(4))), []byte{byte(i)}, now)
				now = now.Add(time.Duration(rng.Intn(10)) * time.Minute)
			}
		}
		recs, next, err := l.ReadBatch(l.EarliestOffset(), 0)
		if err != nil {
			return false
		}
		if next != l.NextOffset() {
			return false
		}
		prev := int64(-1)
		for _, r := range recs {
			if r.Offset <= prev || r.Offset < l.EarliestOffset() || r.Offset >= l.NextOffset() {
				return false
			}
			prev = r.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompactionPreservesLatest: compaction never loses the newest
// record of any key.
func TestQuickCompactionPreservesLatest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog(Config{SegmentMaxRecords: 5})
		latest := map[keyspace.Key]string{}
		now := t0
		for i := 0; i < 80; i++ {
			k := keyspace.Key(fmt.Sprintf("k%d", rng.Intn(6)))
			v := fmt.Sprintf("v%d", i)
			l.Append(k, []byte(v), now)
			latest[k] = v
			now = now.Add(time.Minute)
		}
		l.Compact(now.Add(time.Hour)) // everything sealed is compactable
		recs, _, err := l.ReadBatch(l.EarliestOffset(), 0)
		if err != nil {
			return false
		}
		got := map[keyspace.Key]string{}
		for _, r := range recs {
			got[r.Key] = string(r.Value)
		}
		for k, v := range latest {
			// The active (unsealed) tail still holds the newest records even
			// if the key was compacted in the prefix.
			if got[k] != v && !inActiveTail(recs, k, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func inActiveTail(recs []Record, k keyspace.Key, v string) bool {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Key == k {
			return string(recs[i].Value) == v
		}
	}
	return false
}

func BenchmarkAppend(b *testing.B) {
	l := NewLog(Config{})
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append("key", val, t0)
	}
}

func BenchmarkReadBatch(b *testing.B) {
	l := NewLog(Config{})
	for i := 0; i < 10000; i++ {
		l.Append("key", []byte("0123456789abcdef"), t0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ReadBatch(int64(i%9000), 100)
	}
}

// TestQuickCodecRoundtrip: Marshal/Unmarshal preserves the retained window
// for arbitrary logs (random appends, GC, compaction).
func TestQuickCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog(Config{SegmentMaxRecords: 5})
		now := t0
		for i := 0; i < 60; i++ {
			switch rng.Intn(8) {
			case 0:
				l.RetainSince(now.Add(-time.Duration(rng.Intn(30)) * time.Minute))
			case 1:
				l.Compact(now)
			default:
				var val []byte
				if rng.Intn(5) > 0 {
					val = []byte(fmt.Sprintf("v%d", i))
				}
				l.Append(keyspace.Key(fmt.Sprintf("k%d", rng.Intn(4))), val, now)
				now = now.Add(time.Minute)
			}
		}
		data, err := l.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data, Config{SegmentMaxRecords: 5})
		if err != nil {
			return false
		}
		want, _, err1 := l.ReadBatch(l.EarliestOffset(), 0)
		got, _, err2 := back.ReadBatch(back.EarliestOffset(), 0)
		if err1 != nil || err2 != nil || len(want) != len(got) {
			return false
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Offset != g.Offset || w.Key != g.Key ||
				string(w.Value) != string(g.Value) || (w.Value == nil) != (g.Value == nil) {
				return false
			}
		}
		return back.NextOffset() == l.NextOffset()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
