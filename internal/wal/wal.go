// Package wal implements the segmented append-only log that backs each
// pubsub topic partition: offset-addressed records, whole-segment retention
// garbage collection by age or size, and Kafka-style key compaction.
//
// This is the "bundled, durable message log" of the paper's §1/§3 — the
// hidden hard-state storage layer whose GC policies (retention, compaction)
// silently destroy unconsumed messages. The log itself is implemented
// faithfully and efficiently; the pathologies the experiments measure are
// consequences of the *contract* (offsets + bounded retention), not of any
// artificial weakness here.
package wal

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/keyspace"
)

// Record is one log entry.
type Record struct {
	Offset int64
	Key    keyspace.Key
	Value  []byte
	Time   time.Time // append time, used by time-based retention
	// Trace is the record's sampled trace ID (0 = untraced). The log carries
	// it opaquely — a plain uint64 rather than trace.ID keeps this package
	// dependency-free — so the broker's pipeline stages can stamp the same
	// trace the publisher began.
	Trace uint64
}

// OutOfRangeError reports a read outside the retained window. Earliest and
// Next bracket what is still readable. Consumers typically "auto-reset" to
// Earliest — which is exactly how backlogged pubsub consumers silently skip
// GC-ed messages (§3.1).
type OutOfRangeError struct {
	Requested int64
	Earliest  int64
	Next      int64
}

func (e *OutOfRangeError) Error() string {
	return fmt.Sprintf("wal: offset %d out of range [%d, %d)", e.Requested, e.Earliest, e.Next)
}

// Config tunes segment rolling.
type Config struct {
	// SegmentMaxRecords rolls the active segment after this many records.
	// Retention and compaction operate on whole sealed segments, as in
	// Kafka. Default 1024.
	SegmentMaxRecords int
	// SegmentMaxBytes rolls the active segment after this many payload
	// bytes. Default 1 MiB.
	SegmentMaxBytes int64
}

func (c *Config) applyDefaults() {
	if c.SegmentMaxRecords <= 0 {
		c.SegmentMaxRecords = 1024
	}
	if c.SegmentMaxBytes <= 0 {
		c.SegmentMaxBytes = 1 << 20
	}
}

// segment is a run of consecutive offsets. Only the last segment is active
// (appendable). Compaction may leave holes in a sealed segment's offsets.
type segment struct {
	base    int64 // offset of the first record originally in the segment
	records []Record
	bytes   int64
	last    time.Time // time of the newest record
	sealed  bool
}

// Stats reports log counters; BytesAppended feeds the write-amplification
// comparison in E10.
type Stats struct {
	Records       int // records currently retained
	Segments      int
	Bytes         int64 // payload bytes currently retained
	BytesAppended int64 // lifetime payload bytes written (hard state)
	Appended      int64 // lifetime records appended
	GCedRecords   int64 // records dropped by retention GC
	CompactedAway int64 // records dropped by compaction
	Earliest      int64
	Next          int64
}

// Log is an offset-addressed segmented log. Safe for concurrent use.
type Log struct {
	cfg Config

	mu       sync.Mutex
	segments []*segment
	next     int64 // next offset to assign
	earliest int64 // smallest retained offset (or == next when empty)

	appended      int64
	bytesAppended int64
	gcedRecords   int64
	compactedAway int64
}

// NewLog creates an empty log.
func NewLog(cfg Config) *Log {
	cfg.applyDefaults()
	return &Log{cfg: cfg}
}

// Append adds a record and returns its offset. now is supplied by the
// caller (the broker's clock) so retention works under virtual time.
func (l *Log) Append(key keyspace.Key, value []byte, now time.Time) int64 {
	return l.AppendTraced(key, value, now, 0)
}

// AppendTraced is Append for a record carrying a sampled trace ID.
func (l *Log) AppendTraced(key keyspace.Key, value []byte, now time.Time, traceID uint64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seg := l.activeLocked()
	off := l.next
	l.next++
	rec := Record{Offset: off, Key: key, Value: value, Time: now, Trace: traceID}
	seg.records = append(seg.records, rec)
	seg.bytes += int64(len(key) + len(value))
	seg.last = now
	l.appended++
	l.bytesAppended += int64(len(key) + len(value))
	if len(seg.records) >= l.cfg.SegmentMaxRecords || seg.bytes >= l.cfg.SegmentMaxBytes {
		seg.sealed = true
	}
	return off
}

func (l *Log) activeLocked() *segment {
	if n := len(l.segments); n > 0 && !l.segments[n-1].sealed {
		return l.segments[n-1]
	}
	seg := &segment{base: l.next}
	l.segments = append(l.segments, seg)
	return seg
}

// ReadBatch returns up to max records starting at offset from, together with
// the offset to resume from. Reading below the retained window returns
// *OutOfRangeError; reading at the head returns an empty batch.
func (l *Log) ReadBatch(from int64, max int) ([]Record, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.earliest {
		return nil, 0, &OutOfRangeError{Requested: from, Earliest: l.earliest, Next: l.next}
	}
	if from > l.next {
		return nil, 0, &OutOfRangeError{Requested: from, Earliest: l.earliest, Next: l.next}
	}
	if max <= 0 {
		max = 1 << 30
	}
	var out []Record
	cursor := from
	for _, seg := range l.segments {
		if len(seg.records) == 0 {
			continue
		}
		if seg.records[len(seg.records)-1].Offset < cursor {
			continue
		}
		for _, r := range seg.records {
			// Compaction leaves offset holes; skip below the cursor.
			if r.Offset < cursor {
				continue
			}
			out = append(out, r)
			cursor = r.Offset + 1
			if len(out) >= max {
				return out, cursor, nil
			}
		}
	}
	return out, l.next, nil
}

// EarliestOffset returns the smallest retained offset.
func (l *Log) EarliestOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.earliest
}

// NextOffset returns the offset the next append will receive.
func (l *Log) NextOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// RetainSince drops sealed segments whose newest record is older than
// cutoff — Kafka's retention.ms, applied at whole-segment granularity. It
// returns how many records were destroyed. Nothing notifies consumers: the
// silence is the point (§3.1).
func (l *Log) RetainSince(cutoff time.Time) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dropped int64
	keep := l.segments[:0]
	for _, seg := range l.segments {
		if seg.sealed && seg.last.Before(cutoff) {
			dropped += int64(len(seg.records))
			continue
		}
		keep = append(keep, seg)
	}
	l.segments = keep
	l.afterGCLocked(dropped)
	return dropped
}

// RetainBytes drops the oldest sealed segments until retained payload bytes
// fall to at most max — Kafka's retention.bytes.
func (l *Log) RetainBytes(max int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, seg := range l.segments {
		total += seg.bytes
	}
	var dropped int64
	for len(l.segments) > 0 && total > max {
		seg := l.segments[0]
		if !seg.sealed {
			break
		}
		total -= seg.bytes
		dropped += int64(len(seg.records))
		l.segments = l.segments[1:]
	}
	l.afterGCLocked(dropped)
	return dropped
}

func (l *Log) afterGCLocked(dropped int64) {
	l.gcedRecords += dropped
	// The window starts at the first retained record; compaction can leave
	// leading segments empty, so scan past them rather than concluding the
	// log is empty.
	for _, seg := range l.segments {
		if len(seg.records) > 0 {
			if first := seg.records[0].Offset; first > l.earliest {
				l.earliest = first
			}
			return
		}
	}
	l.earliest = l.next
}

// Compact rewrites sealed segments older than dirtyHorizon so that only the
// final record for each key (within the compacted prefix) survives; records
// keep their original offsets, leaving holes. Keys whose newest compacted
// record has a nil value (a tombstone) are dropped entirely. This mirrors
// Kafka log compaction: every version within the dirty window is kept, but
// history before it collapses to the last value — and, as §3.1 notes,
// subscribers are never told that intermediate events vanished.
func (l *Log) Compact(dirtyHorizon time.Time) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()

	// Latest offset per key across the compactable prefix.
	latest := map[keyspace.Key]int64{}
	var prefix []*segment
	for _, seg := range l.segments {
		if !seg.sealed || !seg.last.Before(dirtyHorizon) {
			break
		}
		prefix = append(prefix, seg)
		for _, r := range seg.records {
			latest[r.Key] = r.Offset
		}
	}
	var removed int64
	for _, seg := range prefix {
		kept := seg.records[:0]
		var bytes int64
		for _, r := range seg.records {
			if latest[r.Key] != r.Offset {
				removed++
				continue
			}
			if r.Value == nil {
				removed++ // tombstone whose key is fully compacted away
				continue
			}
			kept = append(kept, r)
			bytes += int64(len(r.Key) + len(r.Value))
		}
		seg.records = kept
		seg.bytes = bytes
	}
	l.compactedAway += removed
	// earliest is unchanged: compaction never truncates the window's start
	// offset (a hole at the start still belongs to the same window).
	return removed
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:      len(l.segments),
		BytesAppended: l.bytesAppended,
		Appended:      l.appended,
		GCedRecords:   l.gcedRecords,
		CompactedAway: l.compactedAway,
		Earliest:      l.earliest,
		Next:          l.next,
	}
	for _, seg := range l.segments {
		st.Records += len(seg.records)
		st.Bytes += seg.bytes
	}
	return st
}
