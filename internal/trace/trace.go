// Package trace implements lightweight causal tracing for the event
// pipeline: producer commit → watch-system append → watcher-queue enqueue →
// callback delivery. The paper's claims are about quantities (silent loss,
// staleness, catch-up lag) that aggregate counters cannot localize; a
// sampled per-event trace shows *where* in the pipeline an event spent its
// time, per stage, without instrumenting every event.
//
// Design constraints, in priority order:
//
//  1. Near-zero cost when disabled. Events carry a trace ID of 0 unless a
//     tracer sampled them at the source; every downstream stage guards on
//     `ev.Trace != 0` before touching the tracer, so the disabled path costs
//     one predictable branch per stage. All Tracer methods are additionally
//     nil-receiver-safe.
//  2. Bounded memory. In-flight traces live in a size-capped table (oldest
//     abandoned first); completed traces land in a fixed-size ring that the
//     debug server reads.
//  3. Deterministic in tests. Timestamps come from a clockwork.Clock, so a
//     fake clock produces exact stage latencies.
//
// The tracer aggregates per-stage latencies into registry histograms
// (trace_commit_to_append_ns, trace_append_to_enqueue_ns,
// trace_append_to_replay_ns, trace_enqueue_to_deliver_ns, trace_e2e_ns), so
// even with sampling the operator plane gets pipeline latency distributions
// for free. Replay (catch-up streaming from retained history at watch
// registration) is a stage of its own, parallel to enqueue: an event enters
// delivery by one path or the other, and Complete accepts either.
package trace

import (
	"sync"
	"sync/atomic"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// ID identifies one sampled event's trace. 0 means "not sampled" and is what
// every untraced event carries.
type ID = uint64

// Stage names a hop in the event pipeline. Stages are ordered: a trace's
// timestamps are non-decreasing in stage order.
type Stage uint8

const (
	// StageCommit is the source-of-truth write: MVCC commit, ingest-store
	// append, or pubsub publish.
	StageCommit Stage = iota
	// StageAppend is ingestion into the watch system's retained window (hub
	// shard append) or the broker's partition log.
	StageAppend
	// StageEnqueue is acceptance into a watcher's delivery queue (or the
	// consumer-visible fetch, for the pull-based pubsub baseline).
	StageEnqueue
	// StageReplay is hand-off into a watcher's catch-up stream: the event was
	// retained history at watch registration and is being re-streamed from a
	// sealed retention segment rather than enqueued live. Enqueue and replay
	// are alternative entries into delivery — a complete trace carries at
	// least one of the two (both, when a resume re-streams an event that was
	// once enqueued live for the same watch ID).
	StageReplay
	// StageDeliver is the consumer seeing the event: watch callback invoked,
	// or Poll returning the message.
	StageDeliver
	// StageRemoteEnqueue is acceptance into a remote connection's outbound
	// queue — the hand-off from the watch system's dispatch goroutine to the
	// network transport. Only stamped when the remote server is wired with a
	// tracer.
	StageRemoteEnqueue
	// StageRemoteDeliver is client-side delivery of an event received over
	// the wire: the remote client invoking the consumer's watch callback.
	// Meaningful when client and server share one process (loopback) or one
	// trace table.
	StageRemoteDeliver

	// NumStages is the stage count; a complete trace has every stage up to
	// its final stage stamped. The two remote stages sit past the default
	// final stage (StageDeliver), so in-process pipelines never wait on them.
	NumStages = int(StageRemoteDeliver) + 1
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageCommit:
		return "commit"
	case StageAppend:
		return "append"
	case StageEnqueue:
		return "enqueue"
	case StageReplay:
		return "replay"
	case StageDeliver:
		return "deliver"
	case StageRemoteEnqueue:
		return "remote-enqueue"
	case StageRemoteDeliver:
		return "remote-deliver"
	default:
		return "stage?"
	}
}

// Trace is one sampled event's stage record. Stages[i] is the UnixNano
// timestamp at which stage i was first reached (0 = not reached). Fan-out
// delivers one event to many watchers; a stage records its first occurrence,
// so a trace measures the fastest path through the pipeline.
type Trace struct {
	ID      ID
	Key     keyspace.Key
	Version uint64
	Stages  [NumStages]int64
	// Final is the stage whose stamp completes this trace (the tracer's
	// FinalStage at Begin time). The zero value means StageDeliver, the
	// in-process pipeline's terminal hop.
	Final Stage
}

// FinalStage returns the stage that completes this trace, resolving the zero
// value to StageDeliver.
func (t *Trace) FinalStage() Stage {
	if t.Final == 0 {
		return StageDeliver
	}
	return t.Final
}

// Complete reports whether every stage up to and including the trace's final
// stage was reached. Stages past the final stage are not required. Enqueue
// and replay are alternative entries into delivery, so a zero stamp for one
// of them is tolerated when the other is stamped.
func (t *Trace) Complete() bool {
	for s := 0; s <= int(t.FinalStage()); s++ {
		if t.Stages[s] != 0 {
			continue
		}
		if Stage(s) == StageEnqueue && t.Stages[StageReplay] != 0 {
			continue
		}
		if Stage(s) == StageReplay && t.Stages[StageEnqueue] != 0 {
			continue
		}
		return false
	}
	return true
}

// StageLatency returns the latency of entering stage s from the nearest
// earlier stamped stage, or ok=false when either end is missing.
func (t *Trace) StageLatency(s Stage) (ns int64, ok bool) {
	if s == StageCommit || t.Stages[s] == 0 {
		return 0, false
	}
	for p := int(s) - 1; p >= 0; p-- {
		if t.Stages[p] != 0 {
			return t.Stages[s] - t.Stages[p], true
		}
	}
	return 0, false
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery samples 1 in N source events (counter-based, so a steady
	// stream is sampled evenly). <= 0 disables sampling entirely: Begin
	// returns 0 for every event and no trace state is kept.
	SampleEvery int
	// Capacity is the completed-trace ring size (default 256).
	Capacity int
	// MaxInflight bounds the in-flight trace table; the oldest in-flight
	// trace is abandoned when a new sample would exceed it (default 1024).
	MaxInflight int
	// Clock stamps stage timestamps; nil uses the real clock. Tests inject a
	// fake for deterministic latencies.
	Clock clockwork.Clock
	// Metrics receives the tracer's counters and stage-latency histograms;
	// nil uses metrics.Default().
	Metrics *metrics.Registry
	// FinalStage is the stage whose stamp completes a trace and observes its
	// end-to-end latency. The zero value means StageDeliver (in-process
	// delivery). Deployments that serve watches over the remote transport set
	// StageRemoteDeliver so traces span commit → client callback.
	FinalStage Stage
}

// Tracer samples events at their source and records per-stage timestamps as
// the sampled events flow through the pipeline. All methods are safe for
// concurrent use and nil-receiver-safe, so components hold a possibly-nil
// *Tracer and call it unconditionally behind an `id != 0` guard.
type Tracer struct {
	every uint64
	cap   int
	maxIn int
	final Stage
	clock clockwork.Clock

	counter atomic.Uint64 // source events seen (sampling counter)
	nextID  atomic.Uint64

	sampled, completedN, abandoned *metrics.Counter
	stageHist                      [NumStages]*metrics.Histogram // entry-latency into stage i (i >= 1)
	e2e                            *metrics.Histogram

	mu     sync.Mutex
	active map[ID]*Trace
	order  []ID // in-flight IDs, oldest first (lazily compacted)
	done   []Trace
	next   int // next write slot in done
	filled bool
}

// New creates a Tracer. A SampleEvery <= 0 yields a tracer that never
// samples — the "compiled in, switched off" configuration whose overhead the
// verify gate bounds.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	if cfg.FinalStage < StageDeliver || cfg.FinalStage > StageRemoteDeliver {
		cfg.FinalStage = StageDeliver
	}
	reg := cfg.Metrics.Or()
	t := &Tracer{
		cap:        cfg.Capacity,
		maxIn:      cfg.MaxInflight,
		final:      cfg.FinalStage,
		clock:      cfg.Clock,
		sampled:    reg.Counter("trace_sampled_total"),
		completedN: reg.Counter("trace_completed_total"),
		abandoned:  reg.Counter("trace_abandoned_total"),
		e2e:        reg.Histogram("trace_e2e_ns"),
		active:     make(map[ID]*Trace),
		done:       make([]Trace, cfg.Capacity),
	}
	if cfg.SampleEvery > 0 {
		t.every = uint64(cfg.SampleEvery)
	}
	t.stageHist[StageAppend] = reg.Histogram("trace_commit_to_append_ns")
	t.stageHist[StageEnqueue] = reg.Histogram("trace_append_to_enqueue_ns")
	t.stageHist[StageReplay] = reg.Histogram("trace_append_to_replay_ns")
	t.stageHist[StageDeliver] = reg.Histogram("trace_enqueue_to_deliver_ns")
	t.stageHist[StageRemoteEnqueue] = reg.Histogram("trace_deliver_to_remote_enqueue_ns")
	t.stageHist[StageRemoteDeliver] = reg.Histogram("trace_remote_enqueue_to_deliver_ns")
	return t
}

// Enabled reports whether this tracer ever samples.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Begin is called at the source stage (commit/publish) for every event; it
// returns a fresh trace ID for the 1-in-N sampled events and 0 for the rest.
// The commit stamp is recorded for sampled events.
func (t *Tracer) Begin(key keyspace.Key, version uint64) ID {
	if t == nil || t.every == 0 {
		return 0
	}
	if t.counter.Add(1)%t.every != 0 {
		return 0
	}
	id := t.nextID.Add(1)
	now := t.clock.Now().UnixNano()
	tr := &Trace{ID: id, Key: key, Version: version, Final: t.final}
	tr.Stages[StageCommit] = now
	t.mu.Lock()
	for len(t.active) >= t.maxIn && len(t.order) > 0 {
		old := t.order[0]
		t.order = t.order[1:]
		if _, live := t.active[old]; live {
			delete(t.active, old)
			t.abandoned.Inc()
		}
	}
	t.active[id] = tr
	t.order = append(t.order, id)
	t.mu.Unlock()
	t.sampled.Inc()
	return id
}

// SetVersion back-fills the version of an in-flight trace — used by sources
// (the pubsub log) that learn the event's sequence number only after Begin.
func (t *Tracer) SetVersion(id ID, version uint64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	if tr := t.active[id]; tr != nil {
		tr.Version = version
	}
	t.mu.Unlock()
}

// Record stamps stage s on trace id, first occurrence wins. Reaching the
// trace's final stage (StageDeliver by default, StageRemoteDeliver when the
// tracer is configured for the remote transport) completes the trace: it
// moves to the completed ring and its end-to-end latency is observed. No-op
// for id 0 or a nil tracer.
func (t *Tracer) Record(id ID, s Stage) {
	if t == nil || id == 0 {
		return
	}
	now := t.clock.Now().UnixNano()
	t.mu.Lock()
	tr := t.active[id]
	if tr == nil || tr.Stages[s] != 0 {
		t.mu.Unlock()
		return
	}
	tr.Stages[s] = now
	var stageNs int64 = -1
	for p := int(s) - 1; p >= 0; p-- {
		if tr.Stages[p] != 0 {
			stageNs = now - tr.Stages[p]
			break
		}
	}
	var e2eNs int64 = -1
	if s == tr.FinalStage() {
		delete(t.active, id)
		t.done[t.next] = *tr
		t.next++
		if t.next == t.cap {
			t.next = 0
			t.filled = true
		}
		e2eNs = now - tr.Stages[StageCommit]
	}
	t.mu.Unlock()
	if stageNs >= 0 && t.stageHist[s] != nil {
		t.stageHist[s].Observe(stageNs)
	}
	if e2eNs >= 0 {
		t.e2e.Observe(e2eNs)
		t.completedN.Inc()
	}
}

// Completed returns the completed traces, newest first. The slice is a copy.
func (t *Tracer) Completed() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = t.cap
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += t.cap
		}
		out = append(out, t.done[idx])
	}
	return out
}

// CompletedCount returns how many traces have completed all stages.
func (t *Tracer) CompletedCount() int64 {
	if t == nil {
		return 0
	}
	return t.completedN.Value()
}

// InflightCount returns how many sampled traces have not yet completed.
func (t *Tracer) InflightCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}
