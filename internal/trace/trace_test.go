package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

func TestSamplingRate(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{SampleEvery: 8, Metrics: reg})
	sampled := 0
	for i := 0; i < 800; i++ {
		if tr.Begin("k", uint64(i)) != 0 {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 800 at 1-in-8, want 100", sampled)
	}
	if got := reg.Snapshot().Counters["trace_sampled_total"]; got != 100 {
		t.Fatalf("trace_sampled_total = %d, want 100", got)
	}
}

func TestDisabledAndNilTracer(t *testing.T) {
	tr := New(Config{SampleEvery: 0})
	if tr.Enabled() {
		t.Fatal("SampleEvery 0 tracer reports enabled")
	}
	if id := tr.Begin("k", 1); id != 0 {
		t.Fatalf("disabled tracer sampled an event (id %d)", id)
	}
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := nilT.Begin("k", 1); id != 0 {
		t.Fatal("nil tracer sampled")
	}
	nilT.Record(7, StageAppend) // must not panic
	nilT.SetVersion(7, 1)
	if got := nilT.Completed(); got != nil {
		t.Fatalf("nil tracer completed traces: %v", got)
	}
	if nilT.CompletedCount() != 0 || nilT.InflightCount() != 0 {
		t.Fatal("nil tracer non-zero counts")
	}
}

func TestStageStampsAndLatencies(t *testing.T) {
	fc := clockwork.NewFake()
	reg := metrics.NewRegistry()
	tr := New(Config{SampleEvery: 1, Clock: fc, Metrics: reg})

	id := tr.Begin("key-1", 42)
	if id == 0 {
		t.Fatal("1-in-1 sampling did not sample")
	}
	fc.Advance(10 * time.Millisecond)
	tr.Record(id, StageAppend)
	fc.Advance(20 * time.Millisecond)
	tr.Record(id, StageEnqueue)
	fc.Advance(30 * time.Millisecond)
	tr.Record(id, StageDeliver)

	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed %d traces, want 1", len(done))
	}
	got := done[0]
	if !got.Complete() {
		t.Fatalf("trace incomplete: %+v", got)
	}
	if got.Key != "key-1" || got.Version != 42 {
		t.Fatalf("trace identity wrong: %+v", got)
	}
	wantLat := []struct {
		s  Stage
		ns int64
	}{
		{StageAppend, int64(10 * time.Millisecond)},
		{StageEnqueue, int64(20 * time.Millisecond)},
		{StageDeliver, int64(30 * time.Millisecond)},
	}
	for _, w := range wantLat {
		ns, ok := got.StageLatency(w.s)
		if !ok || ns != w.ns {
			t.Fatalf("stage %v latency = %d,%v, want %d", w.s, ns, ok, w.ns)
		}
	}
	snap := reg.Snapshot()
	if h := snap.Histograms["trace_e2e_ns"]; h.Count != 1 || h.Max != int64(60*time.Millisecond) {
		t.Fatalf("e2e histogram = %+v, want one 60ms observation", h)
	}
	if h := snap.Histograms["trace_commit_to_append_ns"]; h.Count != 1 {
		t.Fatalf("commit→append histogram count = %d", h.Count)
	}
	if tr.CompletedCount() != 1 {
		t.Fatalf("CompletedCount = %d", tr.CompletedCount())
	}
}

func TestDuplicateStageKeepsFirstStamp(t *testing.T) {
	fc := clockwork.NewFake()
	tr := New(Config{SampleEvery: 1, Clock: fc})
	id := tr.Begin("k", 1)
	fc.Advance(time.Millisecond)
	tr.Record(id, StageAppend)
	first := fc.Now().UnixNano()
	fc.Advance(time.Second)
	tr.Record(id, StageAppend) // fan-out duplicate
	tr.Record(id, StageEnqueue)
	tr.Record(id, StageDeliver)
	done := tr.Completed()
	if len(done) != 1 || done[0].Stages[StageAppend] != first {
		t.Fatalf("duplicate stage overwrote first stamp: %+v", done)
	}
}

func TestCompletedRingEvictsOldest(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		id := tr.Begin("k", uint64(i))
		tr.Record(id, StageAppend)
		tr.Record(id, StageEnqueue)
		tr.Record(id, StageDeliver)
	}
	done := tr.Completed()
	if len(done) != 4 {
		t.Fatalf("ring holds %d, want 4", len(done))
	}
	// Newest first: versions 9, 8, 7, 6.
	for i, want := range []uint64{9, 8, 7, 6} {
		if done[i].Version != want {
			t.Fatalf("done[%d].Version = %d, want %d", i, done[i].Version, want)
		}
	}
}

func TestInflightBoundAbandonsOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{SampleEvery: 1, MaxInflight: 8, Metrics: reg})
	ids := make([]ID, 0, 20)
	for i := 0; i < 20; i++ {
		ids = append(ids, tr.Begin("k", uint64(i)))
	}
	if got := tr.InflightCount(); got != 8 {
		t.Fatalf("inflight = %d, want 8", got)
	}
	if got := reg.Snapshot().Counters["trace_abandoned_total"]; got != 12 {
		t.Fatalf("abandoned = %d, want 12", got)
	}
	// Abandoned traces ignore further stamps; live ones still complete.
	tr.Record(ids[0], StageDeliver)
	if tr.CompletedCount() != 0 {
		t.Fatal("abandoned trace completed")
	}
	tr.Record(ids[19], StageDeliver)
	if tr.CompletedCount() != 1 {
		t.Fatal("live trace did not complete")
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New(Config{SampleEvery: 2, Capacity: 128, Metrics: metrics.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.Begin(keyspace.Key(fmt.Sprintf("g%d/k%d", g, i)), uint64(i))
				if id != 0 {
					tr.Record(id, StageAppend)
					tr.Record(id, StageEnqueue)
					tr.Record(id, StageDeliver)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := tr.CompletedCount(); got != 2000 {
		t.Fatalf("completed %d, want 2000", got)
	}
	for _, d := range tr.Completed() {
		if !d.Complete() {
			t.Fatalf("incomplete trace in ring: %+v", d)
		}
	}
}
