// Package ingeststore implements the ingestion storage of the paper's §2/§4:
// an append-optimized, time-series-flavoured event store that isolates the
// main application database from ingest load, offers efficient access to
// recent events, and participates in the watch model through the
// core.Ingester/core.Watchable contracts (the right column of Figure 3).
//
// Events are immutable facts: each append materializes as a new key
// "<series>#<seq>" so that a key-range watch over a series prefix streams
// that series. Retention GC here is *not* the silent pubsub loss of §3.1:
// consumers that lag beyond retention receive an explicit resync and can
// re-read the store — the loss is visible and recoverable, by contract.
package ingeststore

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/trace"
)

// Event is one ingested record.
type Event struct {
	Series  keyspace.Key // logical stream, e.g. "sensor/42" or "weblog/eu"
	Seq     core.Version // global monotonic sequence = transaction version
	Time    time.Time    // ingest time (drives retention)
	Payload []byte
}

// Key returns the storage key an event materializes under.
func (e Event) Key() keyspace.Key {
	return EventKey(e.Series, e.Seq)
}

// EventKey builds the storage key for (series, seq). Within one series, key
// order equals seq order.
func EventKey(series keyspace.Key, seq core.Version) keyspace.Key {
	return series + keyspace.Key(fmt.Sprintf("#%020d", uint64(seq)))
}

// SeriesRange returns the key range covering every event of a series.
func SeriesRange(series keyspace.Key) keyspace.Range {
	return keyspace.Prefix(series + "#")
}

// Config tunes the store.
type Config struct {
	// Clock stamps ingested events; defaults to the real clock.
	Clock clockwork.Clock
	// Retention bounds event age; 0 keeps events forever. Retention is
	// applied by RunGC (call it from a ticker, or directly in tests).
	Retention time.Duration
	// Tracer, when non-nil, samples ingested events at the source: the
	// append under the store lock is this store's StageCommit instant.
	Tracer *trace.Tracer
}

// Stats reports store counters.
type Stats struct {
	Appends      int64
	BytesWritten int64
	Retained     int
	GCDropped    int64
	Seq          core.Version
}

// Store is an ingestion store. Safe for concurrent use.
type Store struct {
	clock     clockwork.Clock
	retention time.Duration

	mu     sync.Mutex
	tracer *trace.Tracer
	events []Event // ascending Seq; GC drops a prefix
	seq    core.Version
	taps   []tapEntry
	nextID int

	appends   int64
	bytes     int64
	gcDropped int64
}

var _ core.Snapshotter = (*Store)(nil)

// NewStore creates an ingestion store.
func NewStore(cfg Config) *Store {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	return &Store{clock: cfg.Clock, retention: cfg.Retention, tracer: cfg.Tracer}
}

// SetTracer installs (or removes, with nil) the tracer that samples this
// store's appends.
func (s *Store) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// Append ingests one event into a series and returns it (with its sequence
// number assigned). The change feed sees the event and a progress mark.
func (s *Store) Append(series keyspace.Key, payload []byte) Event {
	s.mu.Lock()
	s.seq++
	ev := Event{Series: series, Seq: s.seq, Time: s.clock.Now(), Payload: payload}
	s.events = append(s.events, ev)
	s.appends++
	s.bytes += int64(len(series) + len(payload))
	change := core.ChangeEvent{Key: ev.Key(), Mut: core.Mutation{Op: core.OpPut, Value: payload}, Version: ev.Seq}
	if s.tracer.Enabled() {
		change.Trace = s.tracer.Begin(change.Key, uint64(ev.Seq))
	}
	for _, t := range s.taps {
		_ = t.ing.Append(change)
		_ = t.ing.Progress(core.ProgressEvent{Range: keyspace.Full(), Version: ev.Seq})
	}
	s.mu.Unlock()
	return ev
}

// AppendBatch ingests a batch of events into one series under a single lock
// acquisition, feeding the change feed one AppendBatch plus one progress
// mark per tap instead of a call pair per event — the ingest-side analogue
// of the hub's batched ingest contract.
func (s *Store) AppendBatch(series keyspace.Key, payloads [][]byte) []Event {
	if len(payloads) == 0 {
		return nil
	}
	out := make([]Event, 0, len(payloads))
	changes := make([]core.ChangeEvent, 0, len(payloads))
	s.mu.Lock()
	now := s.clock.Now()
	for _, p := range payloads {
		s.seq++
		ev := Event{Series: series, Seq: s.seq, Time: now, Payload: p}
		s.events = append(s.events, ev)
		s.appends++
		s.bytes += int64(len(series) + len(p))
		out = append(out, ev)
		change := core.ChangeEvent{Key: ev.Key(), Mut: core.Mutation{Op: core.OpPut, Value: p}, Version: ev.Seq}
		if s.tracer.Enabled() {
			change.Trace = s.tracer.Begin(change.Key, uint64(ev.Seq))
		}
		changes = append(changes, change)
	}
	for _, t := range s.taps {
		_ = t.ing.AppendBatch(changes)
		_ = t.ing.Progress(core.ProgressEvent{Range: keyspace.Full(), Version: s.seq})
	}
	s.mu.Unlock()
	return out
}

// tapEntry identifies an attached ingester for detachment.
type tapEntry struct {
	id  int
	ing core.Ingester
}

// AttachIngester feeds all future events (and progress) into ing.
func (s *Store) AttachIngester(ing core.Ingester) (detach func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.taps = append(s.taps, tapEntry{id: id, ing: ing})
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, t := range s.taps {
			if t.id == id {
				s.taps = append(s.taps[:i], s.taps[i+1:]...)
				return
			}
		}
	}
}

// Query returns retained events whose storage key falls in r with
// Seq > after, oldest first, up to limit (0 = unlimited). This is the
// "query the ingestion store to obtain state" path of §4.3.
func (s *Store) Query(r keyspace.Range, after core.Version, limit int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, ev := range s.events {
		if ev.Seq <= after || !r.Contains(ev.Key()) {
			continue
		}
		out = append(out, ev)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// QuerySeries returns retained events of one series with Seq > after.
func (s *Store) QuerySeries(series keyspace.Key, after core.Version, limit int) []Event {
	return s.Query(SeriesRange(series), after, limit)
}

// SnapshotRange implements core.Snapshotter: every retained event in r, as
// immutable entries, at the current sequence number.
func (s *Store) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []core.Entry
	for _, ev := range s.events {
		k := ev.Key()
		if r.Contains(k) {
			out = append(out, core.Entry{Key: k, Value: ev.Payload, Version: ev.Seq})
		}
	}
	return out, s.seq, nil
}

// CurrentSeq returns the last assigned sequence number.
func (s *Store) CurrentSeq() core.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// RunGC drops events older than the retention window. Returns the count
// dropped. Unlike pubsub retention GC this is contractually safe: any
// watcher needing dropped history gets a resync from its watch system, and
// the store remains the queryable source of truth for what is retained.
func (s *Store) RunGC() int64 {
	if s.retention <= 0 {
		return 0
	}
	cutoff := s.clock.Now().Add(-s.retention)
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.events) && s.events[i].Time.Before(cutoff) {
		i++
	}
	if i == 0 {
		return 0
	}
	s.events = append([]Event(nil), s.events[i:]...)
	s.gcDropped += int64(i)
	return int64(i)
}

// StartGC runs RunGC on a background ticker until the returned stop
// function is called. It uses the store's clock, so fake-clock tests drive
// it by advancing time.
func (s *Store) StartGC(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	tick := s.clock.NewTicker(interval)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C():
				s.RunGC()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Stats returns counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Appends:      s.appends,
		BytesWritten: s.bytes,
		Retained:     len(s.events),
		GCDropped:    s.gcDropped,
		Seq:          s.seq,
	}
}

// Watchable bundles an ingestion store with a built-in watch hub: Figure 3's
// bottom-right quadrant — the shape a "refined Kafka" would take, with the
// storage layer explicit and the watch contract standard.
type Watchable struct {
	*Store
	hub    *core.Hub
	detach func()
}

var (
	_ core.Watchable   = (*Watchable)(nil)
	_ core.Snapshotter = (*Watchable)(nil)
)

// NewWatchable creates an ingestion store with built-in watch. If only the
// hub config names a Tracer, the store adopts it, so one configuration knob
// traces the whole pipeline.
func NewWatchable(cfg Config, hubCfg core.HubConfig) *Watchable {
	if cfg.Tracer == nil && hubCfg.Tracer.Enabled() {
		cfg.Tracer = hubCfg.Tracer
	}
	s := NewStore(cfg)
	h := core.NewHub(hubCfg)
	detach := s.AttachIngester(h)
	return &Watchable{Store: s, hub: h, detach: detach}
}

// Watch implements core.Watchable.
func (w *Watchable) Watch(r keyspace.Range, from core.Version, cb core.WatchCallback) (core.Cancel, error) {
	return w.hub.Watch(r, from, cb)
}

// Hub exposes the built-in hub for stats and failure injection.
func (w *Watchable) Hub() *core.Hub { return w.hub }

// Close detaches and shuts the hub down.
func (w *Watchable) Close() {
	w.detach()
	w.hub.Close()
}
