package ingeststore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

func TestAppendAssignsMonotonicSeq(t *testing.T) {
	s := NewStore(Config{})
	var last core.Version
	for i := 0; i < 10; i++ {
		ev := s.Append("sensor/1", []byte{byte(i)})
		if ev.Seq <= last {
			t.Fatalf("seq not monotonic: %v after %v", ev.Seq, last)
		}
		last = ev.Seq
	}
	if s.CurrentSeq() != last {
		t.Fatalf("CurrentSeq = %v, want %v", s.CurrentSeq(), last)
	}
}

func TestEventKeyOrderMatchesSeq(t *testing.T) {
	var prev keyspace.Key
	for seq := core.Version(1); seq < 1000; seq += 37 {
		k := EventKey("s", seq)
		if k <= prev {
			t.Fatalf("key order broken at seq %v", seq)
		}
		if !SeriesRange("s").Contains(k) {
			t.Fatalf("series range misses its own key %q", string(k))
		}
		prev = k
	}
	if SeriesRange("s").Contains(EventKey("s2", 1)) {
		t.Fatal("series range leaked into another series")
	}
}

func TestQuerySeriesAndAfter(t *testing.T) {
	s := NewStore(Config{})
	for i := 0; i < 5; i++ {
		s.Append("a", []byte(fmt.Sprintf("a%d", i)))
		s.Append("b", []byte(fmt.Sprintf("b%d", i)))
	}
	all := s.QuerySeries("a", 0, 0)
	if len(all) != 5 {
		t.Fatalf("series a = %d events", len(all))
	}
	after := s.QuerySeries("a", all[2].Seq, 0)
	if len(after) != 2 || string(after[0].Payload) != "a3" {
		t.Fatalf("after query = %v", after)
	}
	lim := s.QuerySeries("b", 0, 2)
	if len(lim) != 2 {
		t.Fatalf("limit ignored: %d", len(lim))
	}
}

func TestSnapshotRange(t *testing.T) {
	s := NewStore(Config{})
	s.Append("x", []byte("1"))
	s.Append("y", []byte("2"))
	entries, at, err := s.SnapshotRange(SeriesRange("x"))
	if err != nil || len(entries) != 1 || at != 2 {
		t.Fatalf("snapshot = %v @%v err=%v", entries, at, err)
	}
}

func TestRetentionGCExplicit(t *testing.T) {
	clock := clockwork.NewFake()
	s := NewStore(Config{Clock: clock, Retention: time.Hour})
	s.Append("s", []byte("old"))
	clock.Advance(2 * time.Hour)
	s.Append("s", []byte("new"))

	dropped := s.RunGC()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	evs := s.QuerySeries("s", 0, 0)
	if len(evs) != 1 || string(evs[0].Payload) != "new" {
		t.Fatalf("retained = %v", evs)
	}
	if st := s.Stats(); st.GCDropped != 1 || st.Retained != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// No retention configured: GC is a no-op.
	s2 := NewStore(Config{Clock: clock})
	s2.Append("s", nil)
	if s2.RunGC() != 0 {
		t.Fatal("GC ran without retention")
	}
}

func TestIngesterTapReceivesEvents(t *testing.T) {
	s := NewStore(Config{})
	var mu sync.Mutex
	var events []core.ChangeEvent
	var progress []core.ProgressEvent
	detach := s.AttachIngester(tapFuncs{
		app:  func(ev core.ChangeEvent) error { mu.Lock(); events = append(events, ev); mu.Unlock(); return nil },
		prog: func(p core.ProgressEvent) error { mu.Lock(); progress = append(progress, p); mu.Unlock(); return nil },
	})
	s.Append("s", []byte("1"))
	detach()
	s.Append("s", []byte("2"))

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || len(progress) != 1 {
		t.Fatalf("events=%d progress=%d", len(events), len(progress))
	}
	if events[0].Version != 1 || progress[0].Version != 1 {
		t.Fatalf("versions = %v / %v", events[0].Version, progress[0].Version)
	}
}

type tapFuncs struct {
	app  func(core.ChangeEvent) error
	prog func(core.ProgressEvent) error
}

func (f tapFuncs) Append(ev core.ChangeEvent) error    { return f.app(ev) }
func (f tapFuncs) Progress(p core.ProgressEvent) error { return f.prog(p) }

func (f tapFuncs) AppendBatch(evs []core.ChangeEvent) error {
	for _, ev := range evs {
		if err := f.app(ev); err != nil {
			return err
		}
	}
	return nil
}

func TestWatchableIngestStore(t *testing.T) {
	w := NewWatchable(Config{}, core.HubConfig{})
	defer w.Close()

	w.Append("sensor/1", []byte("a"))
	var mu sync.Mutex
	var got []core.ChangeEvent
	cancel, err := w.Watch(SeriesRange("sensor/1"), 0, core.Funcs{
		Event: func(ev core.ChangeEvent) { mu.Lock(); got = append(got, ev); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Append("sensor/1", []byte("b"))
	w.Append("sensor/2", []byte("other series"))

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d events", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("series filter leaked: %v", got)
	}
	for _, ev := range got {
		if !SeriesRange("sensor/1").Contains(ev.Key) {
			t.Fatalf("out-of-series event %v", ev)
		}
	}
}

func TestWatchableResyncAfterRetention(t *testing.T) {
	clock := clockwork.NewFake()
	w := NewWatchable(Config{Clock: clock, Retention: time.Hour}, core.HubConfig{Retention: 8})
	defer w.Close()

	// Fill beyond hub retention before the watcher arrives, so watching from
	// 0 must resync rather than silently gap.
	for i := 0; i < 50; i++ {
		w.Append("s", []byte{byte(i)})
	}
	var mu sync.Mutex
	var resyncs []core.ResyncEvent
	cancel, err := w.Watch(keyspace.Full(), 0, core.Funcs{
		Resync: func(r core.ResyncEvent) { mu.Lock(); resyncs = append(resyncs, r); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(resyncs)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no resync for pre-eviction watch")
		}
		time.Sleep(time.Millisecond)
	}
	// The consumer recovers by querying the store: explicit, not silent.
	mu.Lock()
	min := resyncs[0].MinVersion
	mu.Unlock()
	entries, at, err := w.SnapshotRange(keyspace.Full())
	if err != nil || at < min {
		t.Fatalf("recovery snapshot at %v (< %v), err=%v", at, min, err)
	}
	if len(entries) != 50 {
		t.Fatalf("recovered %d entries", len(entries))
	}
}

func TestStartGCTickerDriven(t *testing.T) {
	clock := clockwork.NewFake()
	s := NewStore(Config{Clock: clock, Retention: time.Hour})
	stop := s.StartGC(time.Minute)
	defer stop()
	s.Append("s", []byte("old"))
	// Advance past retention in GC-interval steps so the ticker fires.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().GCDropped == 0 {
		clock.Advance(10 * time.Minute)
		if time.Now().After(deadline) {
			t.Fatal("background GC never dropped the old event")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestAppendBatch(t *testing.T) {
	s := NewStore(Config{})
	var mu sync.Mutex
	var got []core.ChangeEvent
	var progress []core.ProgressEvent
	detach := s.AttachIngester(core.Batch(tapFuncs{
		app:  func(ev core.ChangeEvent) error { mu.Lock(); got = append(got, ev); mu.Unlock(); return nil },
		prog: func(p core.ProgressEvent) error { mu.Lock(); progress = append(progress, p); mu.Unlock(); return nil },
	}))
	defer detach()

	evs := s.AppendBatch("sensor/1", [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if len(evs) != 3 {
		t.Fatalf("returned %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != core.Version(i+1) {
			t.Fatalf("event %d seq = %v", i, ev.Seq)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("tap saw %d change events", len(got))
	}
	for i, ev := range got {
		if ev.Version != core.Version(i+1) {
			t.Fatalf("change %d version = %v", i, ev.Version)
		}
	}
	// One progress mark for the whole batch, claiming through the last seq.
	if len(progress) != 1 || progress[0].Version != 3 {
		t.Fatalf("progress = %+v, want one claim at seq 3", progress)
	}
	if s.Stats().Appends != 3 {
		t.Fatalf("stats appends = %d", s.Stats().Appends)
	}
}
