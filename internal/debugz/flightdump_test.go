package debugz

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/flightrec"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/remote"
	"unbundle/internal/trace"
)

// TestChaosPartitionProducesRetrievableDump is the black box's end-to-end
// proof: a scripted network partition (blackhole: reads stall, writes
// vanish) between a reconnecting watch client and its server must leave a
// dump retrievable over the debug server's /dump endpoint whose timeline
// reconstructs the outage — heartbeat misses, the disconnect, the reconnect
// and the watch resume, with consistent connection/generation/watch IDs —
// alongside the causal traces that kept flowing end to end.
func TestChaosPartitionProducesRetrievableDump(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := flightrec.New(flightrec.Config{Metrics: reg})
	tracer := trace.New(trace.Config{
		SampleEvery: 1,
		Metrics:     reg,
		FinalStage:  trace.StageRemoteDeliver,
	})
	hub := core.NewHub(core.HubConfig{
		Retention: 1 << 12, WatcherBuffer: 1 << 12,
		Metrics: reg, Tracer: tracer, Recorder: rec,
	})
	defer hub.Close()

	srv, err := remote.ServeWith("127.0.0.1:0", hub, nopSnapshotter{}, remote.ServerConfig{
		Metrics:           reg,
		Tracer:            tracer,
		Recorder:          rec,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctrl := remote.NewChaosController(remote.ChaosConfig{})
	client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{
		Metrics:           reg,
		Tracer:            tracer,
		Recorder:          rec,
		HeartbeatInterval: 20 * time.Millisecond,
		Reconnect: remote.ReconnectPolicy{
			Enabled: true, MaxAttempts: -1,
			BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 1,
		},
		Dialer: ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	capt := flightrec.NewCapturer(flightrec.CaptureConfig{
		Recorder: rec,
		Tracer:   tracer,
		Metrics:  reg,
		Lags:     func() any { return hub.WatcherLags() },
	})
	mon := flightrec.NewMonitor(flightrec.MonitorConfig{
		Detectors: flightrec.StandardDetectors(reg),
		OnTrigger: func(name, reason string) { capt.Trigger(name, reason) },
		Metrics:   reg,
	})

	dbg, err := Serve("127.0.0.1:0", Config{
		Metrics: reg,
		Flight:  rec,
		Dumps:   capt,
		Lags:    hub.WatcherLags,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	var delivered atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	produce := func(lo, hi int) {
		for i := lo; i <= hi; i++ {
			key := keyspace.Key("k")
			if err := hub.Append(core.ChangeEvent{
				Key:     key,
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
				Version: core.Version(i),
				Trace:   tracer.Begin(key, uint64(i)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Healthy traffic settles the detector baselines.
	produce(1, 50)
	waitFor(t, "first 50 events", func() bool { return delivered.Load() == 50 })
	for i := 0; i < 5; i++ {
		mon.Tick()
	}

	// The partition: half-open every live connection. Heartbeat-scaled read
	// deadlines expire on both sides; the client redials and resumes.
	ctrl.BlackholeLive()
	produce(51, 100) // lands while partitioned; resume must recover it
	waitFor(t, "client reconnect", func() bool { return ctrl.Dials() >= 2 })
	waitFor(t, "all 100 events", func() bool { return delivered.Load() == 100 })
	waitFor(t, "heartbeat miss counted", func() bool {
		return reg.Counter("remote_client_heartbeat_misses_total").Value()+
			reg.Counter("remote_server_heartbeat_misses_total").Value() > 0
	})

	// The next detector tick sees the heartbeat-miss delta and captures.
	mon.Tick()
	if v := reg.Counter("flightrec_dumps_total").Value(); v != 1 {
		t.Fatalf("flightrec_dumps_total = %d, want 1", v)
	}

	// Retrieve the black box over HTTP, exactly as an operator would.
	var index []struct {
		ID       int    `json:"id"`
		Detector string `json:"detector"`
	}
	getJSON(t, "http://"+dbg.Addr()+"/dump", &index)
	if len(index) != 1 || index[0].Detector != "heartbeat-gap" {
		t.Fatalf("dump index = %+v", index)
	}
	var dump flightrec.Dump
	getJSON(t, "http://"+dbg.Addr()+"/dump?id=1", &dump)

	// Reconstruct the outage timeline from the dump. Every expected phase
	// must be present, in causal order, with consistent IDs.
	var (
		hbMiss, srvDisc bool
		discSeqByGen    = map[int64]uint64{} // client disconnects: gen → seq
		reconSeqByGen   = map[int64]uint64{} // client reconnects: gen → seq
		resumeID        int64
		resumeVer       uint64
		seqResume       uint64
	)
	for _, r := range dump.Records {
		switch {
		case r.Kind == flightrec.KindHeartbeatMiss:
			hbMiss = true
		case r.Kind == flightrec.KindRemoteDisconnect && r.Comp == "remote.server":
			srvDisc = true
		case r.Kind == flightrec.KindRemoteDisconnect && r.Comp == "remote.client":
			discSeqByGen[r.ID] = r.Seq
		case r.Kind == flightrec.KindRemoteReconnect && r.Comp == "remote.client":
			reconSeqByGen[r.ID] = r.Seq
		case r.Kind == flightrec.KindRemoteResume:
			resumeID, resumeVer, seqResume = r.ID, r.Version, r.Seq
		}
	}
	if !hbMiss {
		t.Error("timeline missing heartbeat-miss")
	}
	if !srvDisc {
		t.Error("timeline missing server-side disconnect")
	}
	if len(discSeqByGen) == 0 || len(reconSeqByGen) == 0 || seqResume == 0 {
		t.Fatalf("timeline incomplete: disconnects %v, reconnects %v, resume seq %d",
			discSeqByGen, reconSeqByGen, seqResume)
	}
	// Every reconnect at generation G must follow a recorded disconnect of a
	// strictly earlier generation — the IDs stitch the outage together.
	for gen, reconSeq := range reconSeqByGen {
		matched := false
		for dgen, discSeq := range discSeqByGen {
			if dgen < gen && discSeq < reconSeq {
				matched = true
			}
		}
		if !matched {
			t.Errorf("reconnect gen %d (seq %d) has no preceding disconnect (have %v)",
				gen, reconSeq, discSeqByGen)
		}
	}
	if resumeID < 0 {
		t.Errorf("resume record carries no watch id")
	}
	if resumeVer == 0 || resumeVer > 100 {
		t.Errorf("resume version %d outside the delivered window", resumeVer)
	}

	// The dump's causal traces correlate with the timeline: sampled events
	// completed through the remote path during the outage window.
	if len(dump.Traces) == 0 {
		t.Error("dump carries no completed traces")
	}
	for _, tr := range dump.Traces {
		if tr.Stages[trace.StageRemoteDeliver] == 0 {
			t.Fatalf("trace %d incomplete: no remote-deliver stage", tr.ID)
		}
	}

	// The heartbeat-miss burst that triggered the capture is visible in the
	// dump's counter delta, not averaged away.
	if d := dump.CounterDelta["remote_client_heartbeat_misses_total"] +
		dump.CounterDelta["remote_server_heartbeat_misses_total"]; d == 0 {
		t.Error("dump counter delta missing the heartbeat misses")
	}

	// /flightrec serves the live ring too.
	var live []flightrec.Record
	getJSON(t, "http://"+dbg.Addr()+"/flightrec?n=512", &live)
	if len(live) == 0 {
		t.Fatal("/flightrec returned an empty timeline")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
