package debugz

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/remote"
	"unbundle/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestEndpointsWithNilSources(t *testing.T) {
	h := Handler(Config{Metrics: metrics.NewRegistry()})
	for path, wantType := range map[string]string{
		"/":         "text/plain",
		"/metrics":  "text/plain",
		"/watchers": "application/json",
		"/traces":   "application/json",
		"/regions":  "application/json",
		"/conns":    "application/json",
	} {
		rec := get(t, h, path)
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
			t.Fatalf("GET %s Content-Type = %q, want %q prefix", path, ct, wantType)
		}
	}
	// JSON endpoints with no sources serve empty arrays, not null.
	for _, path := range []string{"/watchers", "/traces", "/regions", "/conns"} {
		var v []json.RawMessage
		if err := json.Unmarshal(get(t, h, path).Body.Bytes(), &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
		if v == nil {
			t.Fatalf("GET %s returned null, want []", path)
		}
	}
	if rec := get(t, h, "/nope"); rec.Code != 404 {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/ = %d", rec.Code)
	}
}

// TestTracesEndToEndSampled drives a real store+hub pipeline with 1-in-64
// sampling and asserts the acceptance criterion: every trace the debug
// server reports carries all four pipeline stages with coherent latencies.
func TestTracesEndToEndSampled(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{SampleEvery: 64, Capacity: 256, Metrics: reg})
	// WatcherBuffer must exceed the whole run (events + progress marks): if
	// the ring overflows, the hub correctly lags the watcher out and wipes the
	// undelivered queue, and the wiped events would never reach the deliver
	// stage this test asserts on.
	ws := mvcc.NewWatchableStore(core.HubConfig{Metrics: reg, Tracer: tracer, WatcherBuffer: 1 << 13})
	defer ws.Close()

	var delivered atomic.Int64
	cancel, err := ws.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const n = 64 * 16
	for i := 0; i < n; i++ {
		ws.Put(keyspace.Key(fmt.Sprintf("k%d", i%32)), []byte{byte(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for tracer.CompletedCount() < n/64 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tracer.CompletedCount() < n/64 {
		t.Fatalf("only %d traces completed, want >= %d", tracer.CompletedCount(), n/64)
	}

	h := Handler(Config{
		Metrics: reg,
		Tracer:  tracer,
		Lags:    ws.Hub().WatcherLags,
	})
	var traces []struct {
		ID      uint64           `json:"id"`
		Version uint64           `json:"version"`
		Stages  map[string]int64 `json:"stages_unix_ns"`
		Lat     map[string]int64 `json:"stage_latency_ns"`
		E2ENs   int64            `json:"e2e_ns"`
	}
	if err := json.Unmarshal(get(t, h, "/traces").Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) < n/64 {
		t.Fatalf("/traces shows %d traces, want >= %d", len(traces), n/64)
	}
	for _, tr := range traces {
		if len(tr.Stages) < 4 {
			t.Fatalf("trace %d has %d stages, want >= 4: %v", tr.ID, len(tr.Stages), tr.Stages)
		}
		for _, s := range []string{"commit", "append", "enqueue", "deliver"} {
			if tr.Stages[s] == 0 {
				t.Fatalf("trace %d missing stage %q: %v", tr.ID, s, tr.Stages)
			}
		}
		if tr.E2ENs < 0 || tr.E2ENs != tr.Stages["deliver"]-tr.Stages["commit"] {
			t.Fatalf("trace %d e2e %d inconsistent with stamps %v", tr.ID, tr.E2ENs, tr.Stages)
		}
		if tr.Version == 0 {
			t.Fatalf("trace %d has no version", tr.ID)
		}
	}

	// /watchers agrees with Hub.Stats: the single watcher's frontier is the
	// hub's MaxSeen once everything drained.
	for delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var lags []core.WatcherLag
	if err := json.Unmarshal(get(t, h, "/watchers").Body.Bytes(), &lags); err != nil {
		t.Fatal(err)
	}
	if len(lags) != 1 {
		t.Fatalf("/watchers shows %d watchers, want 1", len(lags))
	}
	if lags[0].Frontier != ws.Hub().Stats().MaxSeen {
		t.Fatalf("/watchers frontier %v != Hub.Stats().MaxSeen %v",
			lags[0].Frontier, ws.Hub().Stats().MaxSeen)
	}
	if lags[0].Delivered != delivered.Load() {
		t.Fatalf("/watchers delivered %d != callback count %d", lags[0].Delivered, delivered.Load())
	}

	// /metrics includes the tracing histograms and the lag gauges.
	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"trace_sampled_total", "trace_e2e_ns",
		"core_hub_watcher_version_lag_max", "core_hub_watcher_time_behind_ns_max",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsSurfacesRemoteTransport drives a loopback remote pair against
// one registry and asserts the transport's frame/byte counters come out of
// /metrics with live values — the operator-facing view of the wire path.
func TestMetricsSurfacesRemoteTransport(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := remote.ServeWith("127.0.0.1:0", hub, nopSnapshotter{}, remote.ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := remote.DialWith(srv.Addr(), remote.ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var delivered atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	const n = 100
	for i := 1; i <= n; i++ {
		if err := hub.Append(core.ChangeEvent{
			Key:     keyspace.Key(fmt.Sprintf("k%d", i)),
			Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
			Version: core.Version(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() < n {
		t.Fatalf("delivered %d/%d events", delivered.Load(), n)
	}

	body := get(t, Handler(Config{Metrics: reg}), "/metrics").Body.String()
	values := map[string]int64{}
	for _, line := range strings.Split(body, "\n") {
		var name string
		var v int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &v); err == nil {
			values[name] = v
		}
	}
	for _, name := range []string{
		"remote_server_frames_total", "remote_server_bytes_total",
		"remote_server_events_total",
		"remote_client_frames_total", "remote_client_bytes_total",
		"remote_client_events_total",
	} {
		v, ok := values[name]
		if !ok {
			t.Fatalf("/metrics missing %q:\n%s", name, body)
		}
		if v <= 0 {
			t.Fatalf("/metrics %s = %d, want > 0", name, v)
		}
	}
}

type nopSnapshotter struct{}

func (nopSnapshotter) SnapshotRange(keyspace.Range) ([]core.Entry, core.Version, error) {
	return nil, 0, nil
}

func TestRegionsEndpoint(t *testing.T) {
	ks := core.NewKnowledgeSet()
	ks.AddSnapshot(keyspace.Range{Low: "a", High: "m"}, 5)
	ks.ExtendTo(keyspace.Range{Low: "a", High: "m"}, 9)
	h := Handler(Config{Regions: func() []core.KnowledgeRegion {
		return append([]core.KnowledgeRegion(nil), ks.Regions()...)
	}})
	var regions []struct {
		Low   string `json:"low"`
		High  string `json:"high"`
		VLow  uint64 `json:"version_low"`
		VHigh uint64 `json:"version_high"`
	}
	if err := json.Unmarshal(get(t, h, "/regions").Body.Bytes(), &regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %+v, want 1 region", regions)
	}
	r := regions[0]
	if r.Low != "a" || r.High != "m" || r.VLow != 5 || r.VHigh != 9 {
		t.Fatalf("region = %+v", r)
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Config{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestConnsEndpoint wires a live remote server behind /conns and asserts the
// connection's negotiated protocol and watch count come through.
func TestConnsEndpoint(t *testing.T) {
	ws := mvcc.NewWatchableStore(core.HubConfig{})
	defer ws.Close()
	srv, err := remote.Serve("127.0.0.1:0", ws, ws)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := remote.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	h := Handler(Config{Metrics: metrics.NewRegistry(), RemoteConns: srv.Conns})
	deadline := time.Now().Add(5 * time.Second)
	for {
		var conns []remote.ConnInfo
		if err := json.Unmarshal(get(t, h, "/conns").Body.Bytes(), &conns); err != nil {
			t.Fatalf("GET /conns: invalid JSON: %v", err)
		}
		if len(conns) == 1 && conns[0].Protocol == 4 && conns[0].Codec == "binary" && conns[0].Watches == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET /conns never showed the v4 watch conn: %+v", conns)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzTracksGovernorPressure drives the health probe through both
// states: 200 while the governor is steady (or merely evicting, which is
// in-contract housekeeping), 503 once it escalates to shedding, and back to
// 200 after the pressure subsides.
func TestHealthzTracksGovernorPressure(t *testing.T) {
	g := govern.NewGovernor(govern.Config{Budget: 1000, Metrics: metrics.NewRegistry()})
	defer g.Close()
	acct := g.Account("hub")
	h := Handler(Config{Metrics: metrics.NewRegistry(), Govern: g.Snapshot})

	if rec := get(t, h, "/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("steady /healthz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}

	acct.Charge(900) // 90% of budget: past ShedFrac, below RejectFrac
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shedding /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "shedding") {
		t.Fatalf("shedding /healthz body = %q, want it to say shedding", rec.Body.String())
	}

	var st govern.Stats
	if err := json.Unmarshal(get(t, h, "/govern").Body.Bytes(), &st); err != nil {
		t.Fatalf("GET /govern: invalid JSON: %v", err)
	}
	if st.BudgetBytes != 1000 || st.UsedBytes != 900 || st.Pressure != "shed" {
		t.Fatalf("GET /govern = %+v, want budget 1000 used 900 pressure shed", st)
	}
	if len(st.Accounts) != 1 || st.Accounts[0].Name != "hub" || st.Accounts[0].Used != 900 {
		t.Fatalf("GET /govern accounts = %+v, want hub at 900", st.Accounts)
	}

	acct.Release(900)
	if rec := get(t, h, "/healthz"); rec.Code != 200 {
		t.Fatalf("recovered /healthz = %d, want 200", rec.Code)
	}
}

// TestHealthzUngoverned: with no governor wired, the probe always reports
// healthy and /govern serves a zero snapshot rather than an error.
func TestHealthzUngoverned(t *testing.T) {
	h := Handler(Config{Metrics: metrics.NewRegistry()})
	rec := get(t, h, "/healthz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ungoverned") {
		t.Fatalf("/healthz = %d %q, want 200 ungoverned", rec.Code, rec.Body.String())
	}
	var st govern.Stats
	if err := json.Unmarshal(get(t, h, "/govern").Body.Bytes(), &st); err != nil {
		t.Fatalf("GET /govern: invalid JSON: %v", err)
	}
	if st.Pressure != "steady" || st.BudgetBytes != 0 {
		t.Fatalf("GET /govern = %+v, want zero steady snapshot", st)
	}
}
