// Package debugz is the operational debug server: one HTTP endpoint that
// exposes everything the observability layer collects — the metrics
// registry, the per-watcher lag radar, completed event traces with per-stage
// latencies, watcher knowledge regions, and net/http/pprof.
//
// The handlers read only snapshot APIs (Registry.WriteTo, Hub.WatcherLags,
// Tracer.Completed), so scraping the server never blocks an ingest or
// delivery path. All data sources are optional: a nil source turns its
// endpoint into an empty-but-valid response, which lets every binary wire
// the same server regardless of which subsystems it runs.
package debugz

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/flightrec"
	"unbundle/internal/govern"
	"unbundle/internal/logz"
	"unbundle/internal/metrics"
	"unbundle/internal/remote"
	"unbundle/internal/trace"
)

// Config names the data sources behind the endpoints. Every field may be
// nil; the corresponding endpoint then serves an empty result.
type Config struct {
	// Metrics backs GET /metrics (plain-text instrument dump); nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer backs GET /traces.
	Tracer *trace.Tracer
	// Lags backs GET /watchers — typically Hub.WatcherLags of the process's
	// hub, or a closure merging several hubs.
	Lags func() []core.WatcherLag
	// Regions backs GET /regions — the consumer-side knowledge regions
	// (§4.3), typically read from the process's KnowledgeSet under its own
	// lock.
	Regions func() []core.KnowledgeRegion
	// RemoteConns backs GET /conns — the remote watch server's live
	// connections with their negotiated protocol, watch count, queued
	// backlog and drain state; typically remote.Server.Conns.
	RemoteConns func() []remote.ConnInfo
	// Flight backs GET /flightrec — the live flight-recorder ring, newest
	// tail first-served (?n= bounds the tail, default 256).
	Flight *flightrec.Recorder
	// Dumps backs GET /dump — captured black-box dumps: the index without an
	// id, one full dump with ?id=N.
	Dumps *flightrec.Capturer
	// Logs backs GET /logz — the retained log ring, oldest first; nil uses
	// the process-wide ring.
	Logs func() []logz.Entry
	// Govern backs GET /govern (the memory governor's budget, per-account
	// usage, pressure level and shed/reject counters) and turns GET /healthz
	// into a load-bearing probe: 503 while the governor is shedding or
	// rejecting, 200 otherwise. Typically Governor.Snapshot. Nil serves an
	// ungoverned zero snapshot and an always-200 /healthz.
	Govern func() govern.Stats
}

// traceJSON is the wire form of one completed trace.
type traceJSON struct {
	ID      uint64           `json:"id"`
	Key     string           `json:"key"`
	Version uint64           `json:"version"`
	Stages  map[string]int64 `json:"stages_unix_ns"`
	// Latencies maps each reached stage (after the first) to the
	// nanoseconds spent entering it from the previous reached stage.
	Latencies map[string]int64 `json:"stage_latency_ns"`
	E2ENs     int64            `json:"e2e_ns"`
}

// dumpMetaJSON is the /dump index entry: a dump's identity and sizes,
// without its (potentially large) body.
type dumpMetaJSON struct {
	ID       int       `json:"id"`
	At       time.Time `json:"at"`
	Detector string    `json:"detector"`
	Reason   string    `json:"reason"`
	Records  int       `json:"records"`
	Traces   int       `json:"traces"`
	File     string    `json:"file,omitempty"`
}

// regionJSON is the wire form of one knowledge region.
type regionJSON struct {
	Low      string `json:"low"`
	High     string `json:"high"`
	VLow     uint64 `json:"version_low"`
	VHigh    uint64 `json:"version_high"`
	Rendered string `json:"rendered"`
}

// Handler builds the debug mux.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "unbundle debug server\n\n"+
			"/metrics  instrument dump (counters, gauges, histograms)\n"+
			"/watchers per-watcher staleness lag radar (JSON)\n"+
			"/traces   completed event traces, newest first (JSON)\n"+
			"/regions  consumer knowledge regions (JSON)\n"+
			"/conns    remote watch server connections (JSON)\n"+
			"/flightrec flight-recorder tail, oldest first (JSON, ?n= bounds)\n"+
			"/dump     black-box dump index; ?id=N serves one full dump (JSON)\n"+
			"/logz     retained log ring, oldest first (JSON)\n"+
			"/govern   memory governor budget, accounts and pressure (JSON)\n"+
			"/healthz  liveness probe: 503 while shedding under memory pressure\n"+
			"/debug/pprof/ runtime profiles\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = cfg.Metrics.Or().WriteTo(w)
	})

	mux.HandleFunc("/watchers", func(w http.ResponseWriter, r *http.Request) {
		lags := []core.WatcherLag{}
		if cfg.Lags != nil {
			if l := cfg.Lags(); l != nil {
				lags = l
			}
		}
		writeJSON(w, lags)
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		out := []traceJSON{}
		for _, tr := range cfg.Tracer.Completed() {
			tj := traceJSON{
				ID:        tr.ID,
				Key:       string(tr.Key),
				Version:   tr.Version,
				Stages:    make(map[string]int64, trace.NumStages),
				Latencies: make(map[string]int64, trace.NumStages-1),
			}
			for s := 0; s < trace.NumStages; s++ {
				st := trace.Stage(s)
				if tr.Stages[s] == 0 {
					continue
				}
				tj.Stages[st.String()] = tr.Stages[s]
				if ns, ok := tr.StageLatency(st); ok {
					tj.Latencies[st.String()] = ns
				}
			}
			if fin := tr.FinalStage(); tr.Stages[fin] != 0 && tr.Stages[trace.StageCommit] != 0 {
				tj.E2ENs = tr.Stages[fin] - tr.Stages[trace.StageCommit]
			}
			out = append(out, tj)
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("/regions", func(w http.ResponseWriter, r *http.Request) {
		out := []regionJSON{}
		if cfg.Regions != nil {
			for _, reg := range cfg.Regions() {
				out = append(out, regionJSON{
					Low:      string(reg.Range.Low),
					High:     string(reg.Range.High),
					VLow:     uint64(reg.Low),
					VHigh:    uint64(reg.High),
					Rendered: reg.String(),
				})
			}
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("/conns", func(w http.ResponseWriter, r *http.Request) {
		out := []remote.ConnInfo{}
		if cfg.RemoteConns != nil {
			if c := cfg.RemoteConns(); c != nil {
				out = c
			}
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("/flightrec", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		recs := []flightrec.Record{}
		if tail := cfg.Flight.Tail(n); tail != nil {
			recs = tail
		}
		writeJSON(w, recs)
	})

	mux.HandleFunc("/dump", func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("id"); q != "" {
			id, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			d, ok := cfg.Dumps.Dump(id)
			if !ok {
				http.NotFound(w, r)
				return
			}
			writeJSON(w, d)
			return
		}
		out := []dumpMetaJSON{}
		if cfg.Dumps != nil {
			for _, d := range cfg.Dumps.Dumps() {
				out = append(out, dumpMetaJSON{
					ID: d.ID, At: d.At, Detector: d.Detector, Reason: d.Reason,
					Records: len(d.Records), Traces: len(d.Traces), File: d.File,
				})
			}
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("/logz", func(w http.ResponseWriter, r *http.Request) {
		logs := cfg.Logs
		if logs == nil {
			logs = logz.Default().Records
		}
		out := logs()
		if out == nil {
			out = []logz.Entry{}
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("/govern", func(w http.ResponseWriter, r *http.Request) {
		st := govern.Stats{Pressure: govern.Steady.String()}
		if cfg.Govern != nil {
			st = cfg.Govern()
		}
		writeJSON(w, st)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Govern == nil {
			fmt.Fprint(w, "ok (ungoverned)\n")
			return
		}
		st := cfg.Govern()
		// Evict is still healthy — the system is trimming retention within
		// its contract. Shed and Reject mean watchers are being cut loose and
		// new work refused: the probe's consumer should route around us.
		if st.Level >= int(govern.Shed) {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shedding: pressure %s, used %d of %d budget bytes\n",
				st.Pressure, st.UsedBytes, st.BudgetBytes)
			return
		}
		fmt.Fprintf(w, "ok: pressure %s, used %d of %d budget bytes\n",
			st.Pressure, st.UsedBytes, st.BudgetBytes)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:0"); it returns as
// soon as the listener is bound, serving in the background.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
