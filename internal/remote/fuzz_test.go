package remote

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzDecodeFrame drives the binary decoder with arbitrary bytes, decoded
// exactly the way the read loops do: read a tag, dispatch to the matching
// decode method, repeat until the stream errors. The decoder must never
// panic, never allocate proportionally to an attacker-controlled length
// field, and must reject every malformed frame with an error (which the read
// loops turn into a typed ProtocolError plus a decode-error counter bump).
// The seed corpus is the golden wire-format fixtures, so every legitimate
// frame shape is a mutation starting point.
func FuzzDecodeFrame(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "golden", "*.hex"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no golden fixtures to seed from (run TestGoldenWireFormat -update-golden): %v", err)
	}
	for _, path := range seeds {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		frame, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		f.Add(frame)
		// A two-frame stream seeds cross-frame state (the key dictionary).
		f.Add(append(append([]byte{}, frame...), frame...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeFrameStream(t, data)
	})
}

// decodeFrameStream consumes data as one connection's binary frame stream,
// mirroring the dispatch in readFrames/serveConn. Returns on the first error.
func decodeFrameStream(t *testing.T, data []byte) {
	dec := newBinDecoder(bufio.NewReader(bytes.NewReader(data)))
	var batch eventBatchMsg
	for frames := 0; frames < 64; frames++ { // bound work per input
		tag, err := dec.readTag()
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF && len(dec.buf) > maxFrameLen {
				t.Fatalf("scratch grew past maxFrameLen: %d", len(dec.buf))
			}
			return
		}
		switch tag {
		case tagHello:
			var h helloMsg
			err = dec.decodeHello(&h)
		case tagHeartbeat, tagUpgrade:
			// Tag-only frames.
		case tagShutdown:
			var m shutdownMsg
			err = dec.decodeShutdown(&m)
		case tagWatch:
			var w watchReq
			err = dec.decodeWatch(&w)
		case tagCancel:
			var cr cancelReq
			err = dec.decodeCancel(&cr)
		case tagSnapshot:
			var sr snapshotReq
			err = dec.decodeSnapshot(&sr)
		case tagEventBatch:
			err = dec.decodeEventBatch(&batch)
		case tagProgress:
			var m progressMsg
			err = dec.decodeProgress(&m)
		case tagResync:
			var m resyncMsg
			err = dec.decodeResync(&m)
		case tagSnapChunk:
			var m snapChunk
			err = dec.decodeSnapChunk(&m)
		default:
			return // unknown tag: the read loops kill the connection here
		}
		if err != nil {
			return
		}
	}
}

// TestFuzzCorpusRegression replays the checked-in golden fixtures (and any
// saved crash corpus) through the fuzz body without the fuzzing engine, so
// plain `go test` still covers the seed inputs.
func TestFuzzCorpusRegression(t *testing.T) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "golden", "*.hex"))
	if err != nil || len(seeds) == 0 {
		t.Fatalf("no golden fixtures: %v", err)
	}
	for _, path := range seeds {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			t.Fatal(err)
		}
		decodeFrameStream(t, frame)
		decodeFrameStream(t, append(append([]byte{}, frame...), frame...))
	}
}
