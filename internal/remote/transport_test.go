package remote

import (
	"sync/atomic"
	"testing"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// TestSnapshotChunkingLargeSnapshot is the snapshot-streaming regression
// test: a snapshot far larger than the connection's write buffer and the
// outbox's event bound must stream as multiple bounded chunks, arrive
// complete, and never convert the connection's live watch into an overflow
// resync (the old single-frame snapshotResp could only win by luck here:
// one giant allocation on each end and a queue slot race with live events).
func TestSnapshotChunkingLargeSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	store := newBenchSnapStore(8192, 1024) // 8 MiB snapshot
	srv, err := ServeWith("127.0.0.1:0", hub, store, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var delivered, resyncs atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event:  func(core.ChangeEvent) { delivered.Add(1) },
		Resync: func(core.ResyncEvent) { resyncs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	appendN := func(from, n int) {
		for i := 0; i < n; i++ {
			if err := hub.Append(core.ChangeEvent{
				Key:     keyspace.NumericKey(i % 64),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
				Version: core.Version(from + i + 1),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Live events before, during (interleaved by the snapshot goroutine on
	// the server), and after the big snapshot.
	appendN(0, 100)
	waitUntil(t, "pre-snapshot events", func() bool { return delivered.Load() >= 100 })

	entries, at, err := client.SnapshotRange(keyspace.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8192 {
		t.Fatalf("snapshot returned %d entries, want 8192", len(entries))
	}
	if at != core.Version(8192) {
		t.Fatalf("snapshot at %v, want v8192", at)
	}
	for i, e := range entries {
		if len(e.Value) != 1024 {
			t.Fatalf("entry %d has %d-byte value, want 1024", i, len(e.Value))
		}
	}

	appendN(100, 100)
	waitUntil(t, "post-snapshot events", func() bool { return delivered.Load() >= 200 })

	if n := resyncs.Load(); n != 0 {
		t.Fatalf("live watch got %d resyncs during large snapshot, want 0", n)
	}
	snap := reg.Snapshot()
	if chunks := snap.Counters["remote_server_snap_chunks_total"]; chunks < 2 {
		t.Fatalf("8 MiB snapshot streamed as %d chunks, want >= 2", chunks)
	}
	if ov := snap.Counters["remote_server_overflow_resyncs_total"]; ov != 0 {
		t.Fatalf("snapshot drove %d overflow resyncs, want 0", ov)
	}
}

// TestClientMetricsAccumulateAcrossReconnects is the regression test for the
// per-Dial metrics resolution: counters are created on first use and shared
// by name within a registry, so a second Dial against the same registry must
// accumulate into the same counters — no duplicate registration, no reset,
// no lost counts.
func TestClientMetricsAccumulateAcrossReconnects(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	appendN := func(from, n int) {
		for i := 0; i < n; i++ {
			if err := hub.Append(core.ChangeEvent{
				Key:     keyspace.NumericKey(i),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
				Version: core.Version(from + i + 1),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	run := func(from core.Version, n int) *Client {
		c, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		var got atomic.Int64
		if _, err := c.Watch(keyspace.Full(), from, core.Funcs{
			Event: func(core.ChangeEvent) { got.Add(1) },
		}); err != nil {
			t.Fatal(err)
		}
		appendN(int(from), n)
		waitUntil(t, "events on this connection", func() bool { return got.Load() >= int64(n) })
		return c
	}

	c1 := run(0, 10)
	mid := reg.Snapshot()
	if n := mid.Counters["remote_client_events_total"]; n != 10 {
		t.Fatalf("first connection counted %d events, want 10", n)
	}
	c1.Close()
	waitUntil(t, "first connection loss observed", func() bool {
		return reg.Snapshot().Counters["remote_client_conn_lost_total"] == 1
	})

	c2 := run(10, 10) // second Dial, same registry: counts must continue, not reset
	defer c2.Close()

	snap := reg.Snapshot()
	if n := snap.Counters["remote_client_watches_total"]; n != 2 {
		t.Fatalf("remote_client_watches_total = %d after two dials, want 2", n)
	}
	if n := snap.Counters["remote_client_events_total"]; n != 20 {
		t.Fatalf("remote_client_events_total = %d across reconnects, want 20 (drift/reset)", n)
	}
	if n := snap.Counters["remote_client_conn_lost_total"]; n != 1 {
		t.Fatalf("remote_client_conn_lost_total = %d after one Close, want 1", n)
	}
}

// TestEventBatchesSurviveWire asserts the tentpole behaviour directly: a
// batched append crosses the wire in far fewer frames than events, instead
// of the old one-frame-per-event flattening.
func TestEventBatchesSurviveWire(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var got atomic.Int64
	var lastVer atomic.Uint64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			got.Add(1)
			lastVer.Store(uint64(ev.Version))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const total, batch = 1024, 64
	evs := make([]core.ChangeEvent, 0, batch)
	for v := 1; v <= total; v += batch {
		evs = evs[:0]
		for i := 0; i < batch; i++ {
			evs = append(evs, core.ChangeEvent{
				Key:     keyspace.NumericKey(i),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("batched")},
				Version: core.Version(v + i),
			})
		}
		if err := hub.AppendBatch(evs); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "batched events", func() bool { return got.Load() >= total })
	if v := lastVer.Load(); v != total {
		t.Fatalf("last delivered version %d, want %d (order broken)", v, total)
	}

	snap := reg.Snapshot()
	events := snap.Counters["remote_server_events_total"]
	frames := snap.Counters["remote_server_frames_total"]
	if events != total {
		t.Fatalf("remote_server_events_total = %d, want %d", events, total)
	}
	if frames >= events/2 {
		t.Fatalf("%d frames for %d events: wire batching is not happening", frames, events)
	}
	if cgot := snap.Counters["remote_client_events_total"]; cgot != total {
		t.Fatalf("remote_client_events_total = %d, want %d", cgot, total)
	}
}

// TestRemoteTraceStages runs a traced event through the full six-stage
// remote pipeline on loopback: commit → append → enqueue → deliver →
// remote-enqueue → remote-deliver, completing at the client callback.
func TestRemoteTraceStages(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{
		SampleEvery: 1,
		Metrics:     reg,
		FinalStage:  trace.StageRemoteDeliver,
	})
	hub := core.NewHub(core.HubConfig{Metrics: reg, Tracer: tracer})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const n = 32
	for i := 1; i <= n; i++ {
		key := keyspace.NumericKey(i)
		id := tracer.Begin(key, uint64(i))
		if err := hub.Append(core.ChangeEvent{
			Key:     key,
			Mut:     core.Mutation{Op: core.OpPut, Value: []byte("traced")},
			Version: core.Version(i),
			Trace:   id,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "traces completed", func() bool { return tracer.CompletedCount() >= n })

	for _, tr := range tracer.Completed() {
		if tr.FinalStage() != trace.StageRemoteDeliver {
			t.Fatalf("trace %d final stage %v, want remote-deliver", tr.ID, tr.FinalStage())
		}
		if !tr.Complete() {
			t.Fatalf("incomplete remote trace: %+v", tr)
		}
		// Enqueue and replay are alternative entries into delivery: events
		// appended after the remote watch registered are enqueued live,
		// while events the registration found in retention are re-streamed
		// with a replay stamp instead. Each trace must carry at least one of
		// the two; the monotonicity check skips whichever is absent.
		for s := 1; s < trace.NumStages; s++ {
			if tr.Stages[s] == 0 {
				if st := trace.Stage(s); (st == trace.StageEnqueue && tr.Stages[trace.StageReplay] != 0) ||
					(st == trace.StageReplay && tr.Stages[trace.StageEnqueue] != 0) {
					continue
				}
				t.Fatalf("trace %d missing stage %v: %+v", tr.ID, trace.Stage(s), tr)
			}
			for p := s - 1; p >= 0; p-- {
				if tr.Stages[p] == 0 {
					continue
				}
				if tr.Stages[s] < tr.Stages[p] {
					t.Fatalf("trace %d stage %v stamped before %v: %+v",
						tr.ID, trace.Stage(s), trace.Stage(p), tr)
				}
				break
			}
		}
	}
	if got := tracer.InflightCount(); got != 0 {
		t.Fatalf("%d traces still in flight after completion", got)
	}
}
