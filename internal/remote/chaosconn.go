package remote

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrChaosDialRefused is returned by a chaos dialer that was told to fail
// the attempt (ChaosController.FailNextDials).
var ErrChaosDialRefused = errors.New("chaosconn: dial refused by fault script")

// ErrChaosSevered is returned from reads and writes on a connection whose
// byte budget (DropAfterReadBytes / DropAfterWriteBytes) ran out.
var ErrChaosSevered = errors.New("chaosconn: connection severed by fault script")

// ChaosConfig scripts the faults a ChaosConn injects. The zero value injects
// nothing — the conn is a transparent wrapper.
type ChaosConfig struct {
	// Seed fixes the corruption RNG for reproducible runs; 0 seeds from the
	// clock.
	Seed int64
	// ReadLatency / WriteLatency delay every read / write by the given
	// duration (before deadline accounting: a latency above the peer's read
	// deadline looks exactly like a stalled network).
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// DropAfterReadBytes / DropAfterWriteBytes sever the connection (both
	// directions) once that many bytes have passed in the given direction.
	// 0 means unlimited.
	DropAfterReadBytes  int64
	DropAfterWriteBytes int64
	// CorruptOneIn flips one byte in roughly one out of every N reads —
	// the gob stream downstream fails to decode, which must surface as a
	// typed protocol error, never a hang. 0 disables corruption.
	CorruptOneIn int
	// MaxWriteChunk caps how many bytes one Write passes through, forcing
	// the short-write paths in the writer above. 0 means unlimited.
	MaxWriteChunk int
}

// ChaosController scripts faults across a set of connections — everything a
// chaos test needs to partition, stall, and heal the transport on cue. Its
// Dialer method plugs into ClientConfig.Dialer, so every connection a Client
// establishes (including reconnects) is wrapped and registered here.
type ChaosController struct {
	cfg       ChaosConfig
	failDials atomic.Int64
	holdReads atomic.Bool // controller-wide read stall (writes still pass)
	dials     atomic.Int64

	mu   sync.Mutex
	live map[*ChaosConn]struct{}
}

// NewChaosController returns a controller whose dialed connections inject
// the given faults.
func NewChaosController(cfg ChaosConfig) *ChaosController {
	return &ChaosController{cfg: cfg, live: make(map[*ChaosConn]struct{})}
}

// Dialer returns a dial function for ClientConfig.Dialer: a TCP dial whose
// connection is wrapped in a ChaosConn registered with the controller.
func (cc *ChaosController) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if n := cc.failDials.Load(); n > 0 && cc.failDials.CompareAndSwap(n, n-1) {
			return nil, ErrChaosDialRefused
		}
		conn, err := net.DialTimeout("tcp", addr, defaultDialTimeout)
		if err != nil {
			return nil, err
		}
		cc.dials.Add(1)
		return cc.Wrap(conn), nil
	}
}

// Wrap registers conn with the controller and returns its chaos wrapper.
func (cc *ChaosController) Wrap(conn net.Conn) *ChaosConn {
	ch := &ChaosConn{Conn: conn, ctrl: cc, cfg: cc.cfg}
	if cc.cfg.Seed != 0 {
		ch.rng = rand.New(rand.NewSource(cc.cfg.Seed))
	} else {
		ch.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	cc.mu.Lock()
	cc.live[ch] = struct{}{}
	cc.mu.Unlock()
	return ch
}

// Dials reports how many connections the controller's dialer established.
func (cc *ChaosController) Dials() int { return int(cc.dials.Load()) }

// FailNextDials makes the next n dial attempts fail with
// ErrChaosDialRefused, exercising the client's backoff and retry budget.
func (cc *ChaosController) FailNextDials(n int) { cc.failDials.Store(int64(n)) }

// SeverAll abruptly closes every live connection — the scripted equivalent
// of a network partition killing established flows. New dials succeed.
func (cc *ChaosController) SeverAll() {
	for _, ch := range cc.snapshot() {
		ch.Close()
	}
}

// BlackholeLive half-opens every currently live connection: reads block
// (honoring deadlines) and writes are swallowed, so without heartbeats
// neither end ever learns the peer is gone. Connections dialed afterwards
// are unaffected — the scripted NAT state reset.
func (cc *ChaosController) BlackholeLive() {
	for _, ch := range cc.snapshot() {
		ch.blackhole.Store(true)
	}
}

// HoldReads stalls reads on every connection (live and future) without
// touching writes — a reader that stops draining while the sender keeps
// sending, the shape that must convert to outbox overflow→resync upstream.
// ReleaseReads lifts the stall.
func (cc *ChaosController) HoldReads()    { cc.holdReads.Store(true) }
func (cc *ChaosController) ReleaseReads() { cc.holdReads.Store(false) }

func (cc *ChaosController) snapshot() []*ChaosConn {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]*ChaosConn, 0, len(cc.live))
	for ch := range cc.live {
		out = append(out, ch)
	}
	return out
}

func (cc *ChaosController) forget(ch *ChaosConn) {
	cc.mu.Lock()
	delete(cc.live, ch)
	cc.mu.Unlock()
}

// ChaosConn is a net.Conn wrapper that injects scripted faults: latency,
// partial writes, byte corruption, byte-budget severing, controller-driven
// read stalls and blackholes. A blocked (stalled or blackholed) read still
// honors the connection's read deadline — returning os.ErrDeadlineExceeded
// past it — because that is precisely the machinery under test: a transport
// without deadlines hangs here forever, one with them detects the fault.
type ChaosConn struct {
	net.Conn
	ctrl *ChaosController
	cfg  ChaosConfig

	readDeadline atomic.Int64 // UnixNano; 0 = none
	blackhole    atomic.Bool
	closed       atomic.Bool
	readBytes    atomic.Int64
	writeBytes   atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// blockWhile parks until cond() turns false, the read deadline expires, or
// the connection closes. It polls — chaos tests run on millisecond scales,
// and polling keeps the deadline semantics trivially correct.
func (ch *ChaosConn) blockWhile(cond func() bool) error {
	for cond() {
		if ch.closed.Load() {
			return net.ErrClosed
		}
		if d := ch.readDeadline.Load(); d != 0 && time.Now().UnixNano() >= d {
			return os.ErrDeadlineExceeded
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

func (ch *ChaosConn) Read(p []byte) (int, error) {
	if err := ch.blockWhile(func() bool {
		return ch.blackhole.Load() || ch.ctrl.holdReads.Load()
	}); err != nil {
		return 0, err
	}
	if ch.cfg.ReadLatency > 0 {
		time.Sleep(ch.cfg.ReadLatency)
	}
	if lim := ch.cfg.DropAfterReadBytes; lim > 0 && ch.readBytes.Load() >= lim {
		ch.Close()
		return 0, ErrChaosSevered
	}
	n, err := ch.Conn.Read(p)
	ch.readBytes.Add(int64(n))
	if n > 0 && ch.cfg.CorruptOneIn > 0 {
		ch.rngMu.Lock()
		if ch.rng.Intn(ch.cfg.CorruptOneIn) == 0 {
			p[ch.rng.Intn(n)] ^= 0xff
		}
		ch.rngMu.Unlock()
	}
	return n, err
}

func (ch *ChaosConn) Write(p []byte) (int, error) {
	if ch.blackhole.Load() {
		return len(p), nil // swallowed: the peer never sees it
	}
	if ch.cfg.WriteLatency > 0 {
		time.Sleep(ch.cfg.WriteLatency)
	}
	if lim := ch.cfg.DropAfterWriteBytes; lim > 0 && ch.writeBytes.Load() >= lim {
		ch.Close()
		return 0, ErrChaosSevered
	}
	if max := ch.cfg.MaxWriteChunk; max > 0 && len(p) > max {
		p = p[:max] // short write; bufio above retries the remainder
	}
	n, err := ch.Conn.Write(p)
	ch.writeBytes.Add(int64(n))
	return n, err
}

func (ch *ChaosConn) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		ch.readDeadline.Store(0)
	} else {
		ch.readDeadline.Store(t.UnixNano())
	}
	return ch.Conn.SetReadDeadline(t)
}

func (ch *ChaosConn) SetDeadline(t time.Time) error {
	if t.IsZero() {
		ch.readDeadline.Store(0)
	} else {
		ch.readDeadline.Store(t.UnixNano())
	}
	return ch.Conn.SetDeadline(t)
}

func (ch *ChaosConn) Close() error {
	ch.closed.Store(true)
	if ch.ctrl != nil {
		ch.ctrl.forget(ch)
	}
	return ch.Conn.Close()
}
