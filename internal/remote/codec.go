package remote

// Hand-rolled binary codec — wire protocol v4's frame payloads.
//
// The remote transport's CPU profile after batching (PR 4) and resilience
// (PR 5) is dominated by encoding/gob: reflection walks every ChangeEvent,
// per-message type bookkeeping taxes every frame, and decode allocates even
// when the target is reused. This codec removes all of that with a format
// shaped around what actually crosses the wire: near-monotonic versions,
// heavily repeated keys, and small values.
//
// Frame layout (both directions, after the gob tagUpgrade marker):
//
//	frame   := tag(1 byte) length(uvarint) payload(length bytes)
//
// The tag is the same one-byte tag the gob protocol uses; length covers the
// payload only. Tag-only frames (heartbeat, upgrade) carry length 0. All
// integers are unsigned LEB128 (uvarint) unless marked zigzag (varint);
// strings are uvarint length + raw bytes.
//
// Payloads:
//
//	hello      := version(uvarint) heartbeatMillis(zigzag)
//	shutdown   := reason(string)
//	watch      := id(uvarint) low(string) high(string) from(uvarint)
//	cancel     := id(uvarint)
//	snapshot   := id(uvarint) low(string) high(string)
//	progress   := id(uvarint) low(string) high(string) version(uvarint)
//	resync     := id(uvarint) low(string) high(string) minVersion(uvarint)
//	              reason(string)
//	overloaded := id(uvarint) retryAfterMillis(zigzag) reason(string)
//	eventBatch := id(uvarint) count(uvarint) event*count
//	snapChunk  := id(uvarint) count(uvarint) entry*count at(uvarint)
//	              err(string) last(1 byte)
//
//	event := flags(1 byte) key vdelta(zigzag) [valueLen(uvarint) value]
//	         [trace(uvarint)]
//	  flags bit 0-1: core.Op (1 put, 2 delete)
//	        bit 2:   key is a literal (else a dictionary reference)
//	        bit 3:   trace field present (absent = untraced, the common case)
//	        bit 4:   value present (absent = nil, e.g. deletes)
//	  key   := literal: uvarint len + bytes   ref: uvarint dictionary index
//	  vdelta is the version's zigzag delta from the previous event in the
//	  frame (first event: from 0). Batches are near-monotonic, so steady
//	  state is one byte per version.
//
//	entry := key(string) value(bytes1) vdelta(zigzag from previous entry)
//	  bytes1 is nil-preserving: 0 = nil, n+1 = n raw bytes follow.
//
// Key dictionary: each direction of a connection carries an append-only key
// dictionary, built identically by encoder and decoder from the literal keys
// in event frames, in stream order. The encoder sends a key it has seen
// before as a dictionary index; hot keys therefore cost one or two bytes
// after their first appearance, and the decoder hands out the same interned
// string without allocating. Both sides stop adding at keyDictCap by the same
// deterministic rule, so the structures never diverge. Snapshot entries do
// not touch the dictionary (their keys are mostly unique).
//
// Allocation discipline: the encoder builds each payload in one reusable
// scratch buffer and issues exactly two buffered writes per frame — zero
// allocations at steady state. The decoder reads each payload into a
// reusable scratch buffer; decoded event slices reuse the caller's backing
// array, keys come from the dictionary, and value bytes are copied out into
// one fresh block per frame (values are retainable by consumers, so they
// must not alias the scratch buffer). Decode therefore costs one allocation
// per frame carrying values, independent of event count.
//
// Hardening: the decoder trusts nothing. Frame lengths are capped at
// maxFrameLen, every inner length is validated against the remaining
// payload, event/entry counts are validated before any allocation sized by
// them, dictionary references are bounds-checked, and trailing payload bytes
// are rejected. Every violation surfaces as a plain error the read loops
// wrap into the existing typed ProtocolError and count in
// remote_{server,client}_decode_errors_total. See FuzzDecodeFrame.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/trace"
)

const (
	// maxFrameLen bounds one binary frame's payload. Nothing legitimate comes
	// close (snapshot chunks are bounded at 256KiB, event batches by the
	// connection outbox), so anything larger is a corrupt or hostile length
	// prefix and must fail fast instead of sizing an allocation.
	maxFrameLen = 64 << 20
	// keyDictCap bounds each direction's key dictionary. Beyond it keys are
	// sent literally; encoder and decoder stop growing at the same count so
	// their indices stay aligned.
	keyDictCap = 1 << 16
)

// Event flag bits (see the format comment above).
const (
	evOpMask     = 0b11
	evKeyLiteral = 1 << 2
	evHasTrace   = 1 << 3
	evHasValue   = 1 << 4
)

// frameEncoder is the codec seam on the write path: one method per frame
// type, writing a complete tagged frame into the connection's buffered
// writer. The gob implementation (gobcodec.go) is wire protocol v2/v3; the
// binary implementation below is v4. Write loops swap implementations at the
// tagUpgrade marker.
type frameEncoder interface {
	hello(h *helloMsg) error
	heartbeat() error
	upgrade() error
	shutdown(m *shutdownMsg) error
	eventBatch(id uint64, evs []core.ChangeEvent) error
	progress(id uint64, p core.ProgressEvent) error
	resync(id uint64, r core.ResyncEvent) error
	snapChunk(ch *snapChunk) error
	overloaded(m *overloadedMsg) error
	watch(w *watchReq) error
	cancelWatch(cr *cancelReq) error
	snapshot(sr *snapshotReq) error
}

// frameDecoder is the codec seam on the read path. readTag consumes one
// frame's header (and, for the binary codec, its payload bytes); the decode
// method matching the returned tag parses the payload. Tag-only frames need
// no decode call. Read loops swap implementations when the peer's tagUpgrade
// marker arrives.
type frameDecoder interface {
	readTag() (uint8, error)
	decodeHello(h *helloMsg) error
	decodeShutdown(m *shutdownMsg) error
	decodeEventBatch(m *eventBatchMsg) error
	decodeProgress(m *progressMsg) error
	decodeResync(m *resyncMsg) error
	decodeSnapChunk(m *snapChunk) error
	decodeOverloaded(m *overloadedMsg) error
	decodeWatch(w *watchReq) error
	decodeCancel(cr *cancelReq) error
	decodeSnapshot(sr *snapshotReq) error
}

// Binary decode errors. These are protocol violations (never ordinary
// connection loss), so the read loops count them as decode errors and kill
// the connection with a ProtocolError.
var (
	errFrameTooBig  = errors.New("frame length exceeds limit")
	errBadVarint    = errors.New("malformed varint")
	errShortPayload = errors.New("truncated payload")
	errTrailing     = errors.New("trailing bytes after payload")
	errBadKeyRef    = errors.New("key dictionary reference out of range")
	errBadCount     = errors.New("element count exceeds payload")
)

// binEncoder is the v4 encoder: one scratch buffer, one key dictionary, two
// buffered writes per frame. Not safe for concurrent use — each connection
// direction owns exactly one (the server's write loop, the client's encMu).
type binEncoder struct {
	w    *bufio.Writer
	buf  []byte
	hdr  []byte // frame-header scratch (persistent: a local would escape to the heap via the Write call)
	keys map[keyspace.Key]uint32
}

func newBinEncoder(w *bufio.Writer) *binEncoder {
	return &binEncoder{w: w, keys: make(map[keyspace.Key]uint32)}
}

func (e *binEncoder) u(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *binEncoder) z(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *binEncoder) str(s string) {
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes1 is the nil-preserving byte-slice encoding: 0 = nil, n+1 = n bytes.
func (e *binEncoder) bytes1(b []byte) {
	if b == nil {
		e.u(0)
		return
	}
	e.u(uint64(len(b)) + 1)
	e.buf = append(e.buf, b...)
}

// frame writes the scratch payload as one tagged frame.
func (e *binEncoder) frame(tag uint8) error {
	e.hdr = append(e.hdr[:0], tag)
	e.hdr = binary.AppendUvarint(e.hdr, uint64(len(e.buf)))
	if _, err := e.w.Write(e.hdr); err != nil {
		return err
	}
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	return err
}

func (e *binEncoder) hello(h *helloMsg) error {
	e.buf = e.buf[:0]
	e.u(uint64(h.Version))
	e.z(h.HeartbeatMillis)
	return e.frame(tagHello)
}

func (e *binEncoder) heartbeat() error {
	e.buf = e.buf[:0]
	return e.frame(tagHeartbeat)
}

func (e *binEncoder) upgrade() error {
	e.buf = e.buf[:0]
	return e.frame(tagUpgrade)
}

func (e *binEncoder) shutdown(m *shutdownMsg) error {
	e.buf = e.buf[:0]
	e.str(m.Reason)
	return e.frame(tagShutdown)
}

func (e *binEncoder) eventBatch(id uint64, evs []core.ChangeEvent) error {
	e.buf = e.buf[:0]
	e.u(id)
	e.u(uint64(len(evs)))
	prev := core.NoVersion
	for i := range evs {
		ev := &evs[i]
		flags := uint8(ev.Mut.Op) & evOpMask
		idx, known := e.keys[ev.Key]
		if !known {
			flags |= evKeyLiteral
		}
		if ev.Trace != 0 {
			flags |= evHasTrace
		}
		if ev.Mut.Value != nil {
			flags |= evHasValue
		}
		e.buf = append(e.buf, flags)
		if known {
			e.u(uint64(idx))
		} else {
			e.str(string(ev.Key))
			if len(e.keys) < keyDictCap {
				e.keys[ev.Key] = uint32(len(e.keys))
			}
		}
		e.z(int64(ev.Version) - int64(prev))
		prev = ev.Version
		if ev.Mut.Value != nil {
			e.u(uint64(len(ev.Mut.Value)))
			e.buf = append(e.buf, ev.Mut.Value...)
		}
		if ev.Trace != 0 {
			e.u(uint64(ev.Trace))
		}
	}
	return e.frame(tagEventBatch)
}

func (e *binEncoder) progress(id uint64, p core.ProgressEvent) error {
	e.buf = e.buf[:0]
	e.u(id)
	e.str(string(p.Range.Low))
	e.str(string(p.Range.High))
	e.u(uint64(p.Version))
	return e.frame(tagProgress)
}

func (e *binEncoder) resync(id uint64, r core.ResyncEvent) error {
	e.buf = e.buf[:0]
	e.u(id)
	e.str(string(r.Range.Low))
	e.str(string(r.Range.High))
	e.u(uint64(r.MinVersion))
	e.str(r.Reason)
	return e.frame(tagResync)
}

func (e *binEncoder) snapChunk(ch *snapChunk) error {
	e.buf = e.buf[:0]
	e.u(ch.ID)
	e.u(uint64(len(ch.Entries)))
	prev := core.NoVersion
	for i := range ch.Entries {
		en := &ch.Entries[i]
		e.str(string(en.Key))
		e.bytes1(en.Value)
		e.z(int64(en.Version) - int64(prev))
		prev = en.Version
	}
	e.u(uint64(ch.At))
	e.str(ch.Err)
	last := byte(0)
	if ch.Last {
		last = 1
	}
	e.buf = append(e.buf, last)
	return e.frame(tagSnapChunk)
}

func (e *binEncoder) overloaded(m *overloadedMsg) error {
	e.buf = e.buf[:0]
	e.u(m.ID)
	e.z(m.RetryAfterMillis)
	e.str(m.Reason)
	return e.frame(tagOverloaded)
}

func (e *binEncoder) watch(w *watchReq) error {
	e.buf = e.buf[:0]
	e.u(w.ID)
	e.str(string(w.Low))
	e.str(string(w.High))
	e.u(uint64(w.From))
	return e.frame(tagWatch)
}

func (e *binEncoder) cancelWatch(cr *cancelReq) error {
	e.buf = e.buf[:0]
	e.u(cr.ID)
	return e.frame(tagCancel)
}

func (e *binEncoder) snapshot(sr *snapshotReq) error {
	e.buf = e.buf[:0]
	e.u(sr.ID)
	e.str(string(sr.Low))
	e.str(string(sr.High))
	return e.frame(tagSnapshot)
}

// binDecoder is the v4 decoder: readTag pulls one whole frame (header +
// payload) into a reusable scratch buffer; the decode methods parse it with
// every length, count and reference validated. Not safe for concurrent use.
type binDecoder struct {
	r    *bufio.Reader
	buf  []byte         // frame payload scratch, reused across frames
	cur  []byte         // unparsed remainder of the current payload
	keys []keyspace.Key // receive-side key dictionary, mirrors the encoder's
}

func newBinDecoder(r *bufio.Reader) *binDecoder {
	return &binDecoder{r: r}
}

func (d *binDecoder) readTag() (uint8, error) {
	tag, err := d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, err
	}
	if n > maxFrameLen {
		return 0, fmt.Errorf("%w: %d bytes", errFrameTooBig, n)
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return 0, err
	}
	d.cur = d.buf
	return tag, nil
}

func (d *binDecoder) u() (uint64, error) {
	v, n := binary.Uvarint(d.cur)
	if n <= 0 {
		return 0, errBadVarint
	}
	d.cur = d.cur[n:]
	return v, nil
}

func (d *binDecoder) z() (int64, error) {
	v, n := binary.Varint(d.cur)
	if n <= 0 {
		return 0, errBadVarint
	}
	d.cur = d.cur[n:]
	return v, nil
}

// take returns the next n raw payload bytes. The returned slice aliases the
// scratch buffer: copy before retaining.
func (d *binDecoder) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.cur)) {
		return nil, errShortPayload
	}
	b := d.cur[:n]
	d.cur = d.cur[n:]
	return b, nil
}

func (d *binDecoder) str() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *binDecoder) key() (keyspace.Key, error) {
	s, err := d.str()
	return keyspace.Key(s), err
}

// bytes1 decodes the nil-preserving byte-slice encoding into dst's tail,
// returning the grown dst and the value's slice of it (nil for the nil
// marker). dst must have capacity for every value remaining in the frame so
// earlier values are never invalidated by growth; callers size it from the
// remaining payload length, which is always an upper bound.
func (d *binDecoder) bytes1(dst []byte) ([]byte, []byte, error) {
	n, err := d.u()
	if err != nil {
		return dst, nil, err
	}
	if n == 0 {
		return dst, nil, nil
	}
	b, err := d.take(n - 1)
	if err != nil {
		return dst, nil, err
	}
	off := len(dst)
	dst = append(dst, b...)
	return dst, dst[off:len(dst):len(dst)], nil
}

func (d *binDecoder) end() error {
	if len(d.cur) != 0 {
		return errTrailing
	}
	return nil
}

func (d *binDecoder) decodeHello(h *helloMsg) error {
	v, err := d.u()
	if err != nil {
		return err
	}
	hb, err := d.z()
	if err != nil {
		return err
	}
	h.Version = uint32(v)
	h.HeartbeatMillis = hb
	return d.end()
}

func (d *binDecoder) decodeShutdown(m *shutdownMsg) error {
	reason, err := d.str()
	if err != nil {
		return err
	}
	m.Reason = reason
	return d.end()
}

func (d *binDecoder) decodeEventBatch(m *eventBatchMsg) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	count, err := d.u()
	if err != nil {
		return err
	}
	// Every event costs at least three payload bytes (flags, key, vdelta), so
	// a count beyond the remaining payload is corrupt — reject it before it
	// sizes anything.
	if count > uint64(len(d.cur)) {
		return errBadCount
	}
	// Reuse the caller's backing array; zero recycled elements first so no
	// event's Key/Value/Trace outlives its frame through the spare capacity.
	for i := range m.Evs {
		m.Evs[i] = core.ChangeEvent{}
	}
	evs := m.Evs[:0]
	// Values are copied out of the scratch buffer into one block per frame;
	// consumers may retain them. Sized lazily from the remaining payload, an
	// upper bound on total value bytes, so append never reallocates and every
	// earlier value slice stays valid.
	var vals []byte
	var prev core.Version
	for i := uint64(0); i < count; i++ {
		fb, err := d.take(1)
		if err != nil {
			return err
		}
		flags := fb[0]
		var key keyspace.Key
		if flags&evKeyLiteral != 0 {
			key, err = d.key()
			if err != nil {
				return err
			}
			if len(d.keys) < keyDictCap {
				d.keys = append(d.keys, key)
			}
		} else {
			ref, err := d.u()
			if err != nil {
				return err
			}
			if ref >= uint64(len(d.keys)) {
				return errBadKeyRef
			}
			key = d.keys[ref]
		}
		delta, err := d.z()
		if err != nil {
			return err
		}
		ver := core.Version(uint64(int64(prev) + delta))
		prev = ver
		var value []byte
		if flags&evHasValue != 0 {
			n, err := d.u()
			if err != nil {
				return err
			}
			b, err := d.take(n)
			if err != nil {
				return err
			}
			if vals == nil {
				vals = make([]byte, 0, int(n)+len(d.cur))
			}
			off := len(vals)
			vals = append(vals, b...)
			value = vals[off:len(vals):len(vals)]
		}
		var tr trace.ID
		if flags&evHasTrace != 0 {
			tr, err = d.u()
			if err != nil {
				return err
			}
		}
		evs = append(evs, core.ChangeEvent{
			Key:     key,
			Mut:     core.Mutation{Op: core.Op(flags & evOpMask), Value: value},
			Version: ver,
			Trace:   tr,
		})
	}
	m.ID = id
	m.Evs = evs
	return d.end()
}

func (d *binDecoder) decodeProgress(m *progressMsg) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	low, err := d.key()
	if err != nil {
		return err
	}
	high, err := d.key()
	if err != nil {
		return err
	}
	v, err := d.u()
	if err != nil {
		return err
	}
	m.ID = id
	m.P = core.ProgressEvent{Range: keyspace.Range{Low: low, High: high}, Version: core.Version(v)}
	return d.end()
}

func (d *binDecoder) decodeResync(m *resyncMsg) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	low, err := d.key()
	if err != nil {
		return err
	}
	high, err := d.key()
	if err != nil {
		return err
	}
	minV, err := d.u()
	if err != nil {
		return err
	}
	reason, err := d.str()
	if err != nil {
		return err
	}
	m.ID = id
	m.R = core.ResyncEvent{
		Range:      keyspace.Range{Low: low, High: high},
		MinVersion: core.Version(minV),
		Reason:     reason,
	}
	return d.end()
}

func (d *binDecoder) decodeSnapChunk(m *snapChunk) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	count, err := d.u()
	if err != nil {
		return err
	}
	// Each entry costs at least three payload bytes (key len, value marker,
	// vdelta).
	if count > uint64(len(d.cur)) {
		return errBadCount
	}
	var entries []core.Entry
	if count > 0 {
		entries = make([]core.Entry, 0, count)
	}
	vals := make([]byte, 0, len(d.cur))
	var prev core.Version
	for i := uint64(0); i < count; i++ {
		key, err := d.key()
		if err != nil {
			return err
		}
		var value []byte
		vals, value, err = d.bytes1(vals)
		if err != nil {
			return err
		}
		delta, err := d.z()
		if err != nil {
			return err
		}
		ver := core.Version(uint64(int64(prev) + delta))
		prev = ver
		entries = append(entries, core.Entry{Key: key, Value: value, Version: ver})
	}
	at, err := d.u()
	if err != nil {
		return err
	}
	errStr, err := d.str()
	if err != nil {
		return err
	}
	lb, err := d.take(1)
	if err != nil {
		return err
	}
	m.ID = id
	m.Entries = entries
	m.At = core.Version(at)
	m.Err = errStr
	m.Last = lb[0] != 0
	return d.end()
}

func (d *binDecoder) decodeOverloaded(m *overloadedMsg) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	retry, err := d.z()
	if err != nil {
		return err
	}
	reason, err := d.str()
	if err != nil {
		return err
	}
	m.ID = id
	m.RetryAfterMillis = retry
	m.Reason = reason
	return d.end()
}

func (d *binDecoder) decodeWatch(w *watchReq) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	low, err := d.key()
	if err != nil {
		return err
	}
	high, err := d.key()
	if err != nil {
		return err
	}
	from, err := d.u()
	if err != nil {
		return err
	}
	w.ID = id
	w.Low = low
	w.High = high
	w.From = core.Version(from)
	return d.end()
}

func (d *binDecoder) decodeCancel(cr *cancelReq) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	cr.ID = id
	return d.end()
}

func (d *binDecoder) decodeSnapshot(sr *snapshotReq) error {
	id, err := d.u()
	if err != nil {
		return err
	}
	low, err := d.key()
	if err != nil {
		return err
	}
	high, err := d.key()
	if err != nil {
		return err
	}
	sr.ID = id
	sr.Low = low
	sr.High = high
	return d.end()
}
