package remote

// The gob codec — wire protocols v2 and v3, and the first frames of every v4
// connection (negotiation happens in gob; each direction switches to the
// binary codec in codec.go only after its tagUpgrade marker). Frames are the
// same tag-first shape as v4's, but the tag and each payload are separate gob
// values, so all the stream bookkeeping (type descriptors, message lengths)
// is gob's own.

import (
	"encoding/gob"

	"unbundle/internal/core"
)

type gobFrameEncoder struct {
	enc *gob.Encoder
}

func newGobFrameEncoder(enc *gob.Encoder) *gobFrameEncoder {
	return &gobFrameEncoder{enc: enc}
}

// tagged encodes the frame tag, then the payload if any.
func (e *gobFrameEncoder) tagged(tag uint8, payload any) error {
	if err := e.enc.Encode(tag); err != nil {
		return err
	}
	if payload == nil {
		return nil
	}
	return e.enc.Encode(payload)
}

func (e *gobFrameEncoder) hello(h *helloMsg) error       { return e.tagged(tagHello, h) }
func (e *gobFrameEncoder) heartbeat() error              { return e.tagged(tagHeartbeat, nil) }
func (e *gobFrameEncoder) upgrade() error                { return e.tagged(tagUpgrade, nil) }
func (e *gobFrameEncoder) shutdown(m *shutdownMsg) error { return e.tagged(tagShutdown, m) }
func (e *gobFrameEncoder) snapChunk(ch *snapChunk) error { return e.tagged(tagSnapChunk, ch) }
func (e *gobFrameEncoder) overloaded(m *overloadedMsg) error {
	return e.tagged(tagOverloaded, m)
}
func (e *gobFrameEncoder) watch(w *watchReq) error         { return e.tagged(tagWatch, w) }
func (e *gobFrameEncoder) cancelWatch(cr *cancelReq) error { return e.tagged(tagCancel, cr) }
func (e *gobFrameEncoder) snapshot(sr *snapshotReq) error  { return e.tagged(tagSnapshot, sr) }

func (e *gobFrameEncoder) eventBatch(id uint64, evs []core.ChangeEvent) error {
	m := eventBatchMsg{ID: id, Evs: evs}
	return e.tagged(tagEventBatch, &m)
}

func (e *gobFrameEncoder) progress(id uint64, p core.ProgressEvent) error {
	m := progressMsg{ID: id, P: p}
	return e.tagged(tagProgress, &m)
}

func (e *gobFrameEncoder) resync(id uint64, r core.ResyncEvent) error {
	m := resyncMsg{ID: id, R: r}
	return e.tagged(tagResync, &m)
}

type gobFrameDecoder struct {
	dec *gob.Decoder
}

func newGobFrameDecoder(dec *gob.Decoder) *gobFrameDecoder {
	return &gobFrameDecoder{dec: dec}
}

func (d *gobFrameDecoder) readTag() (uint8, error) {
	var tag uint8
	err := d.dec.Decode(&tag)
	return tag, err
}

func (d *gobFrameDecoder) decodeHello(h *helloMsg) error       { return d.dec.Decode(h) }
func (d *gobFrameDecoder) decodeShutdown(m *shutdownMsg) error { return d.dec.Decode(m) }
func (d *gobFrameDecoder) decodeProgress(m *progressMsg) error { return d.dec.Decode(m) }
func (d *gobFrameDecoder) decodeResync(m *resyncMsg) error     { return d.dec.Decode(m) }
func (d *gobFrameDecoder) decodeSnapChunk(m *snapChunk) error  { return d.dec.Decode(m) }
func (d *gobFrameDecoder) decodeOverloaded(m *overloadedMsg) error {
	return d.dec.Decode(m)
}
func (d *gobFrameDecoder) decodeWatch(w *watchReq) error        { return d.dec.Decode(w) }
func (d *gobFrameDecoder) decodeCancel(cr *cancelReq) error     { return d.dec.Decode(cr) }
func (d *gobFrameDecoder) decodeSnapshot(sr *snapshotReq) error { return d.dec.Decode(sr) }

// decodeEventBatch reuses m's Evs backing array across frames (gob grows it
// only when a batch exceeds the previous capacity). Recycled elements are
// zeroed first — gob leaves absent fields untouched, so reuse without
// clearing would leak one event's Value or Trace into the next — and zeroing
// Value forces gob to allocate fresh byte slices, which consumers are allowed
// to retain.
func (d *gobFrameDecoder) decodeEventBatch(m *eventBatchMsg) error {
	for i := range m.Evs {
		m.Evs[i] = core.ChangeEvent{}
	}
	m.ID = 0
	m.Evs = m.Evs[:0]
	return d.dec.Decode(m)
}
