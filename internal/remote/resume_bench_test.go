package remote

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// benchRemoteResumeStorm measures the server-side cost of a reconnect storm
// over the wire: `watchers` remote watches (re-)register at once, every one
// resuming from the same cut with a 1024-event backlog in the hub's
// retention — the load PR 5's auto-reconnect generates after a network blip.
// Each server-side Watch is O(segments) under the shard locks and the replay
// streams on the watch's dispatch goroutine straight into the connection's
// outbound queue, so the wire path sees the same batched frames a live drain
// produces. Watches are spread four per connection, keeping each
// connection's worst-case queued backlog well inside the server's outbound
// bound so no storm ends in an overflow resync.
// maxProto pins the client-side protocol ceiling (0 = binary v4, protoV3 =
// gob) so codec A/B runs interleave in one process.
func benchRemoteResumeStorm(b *testing.B, watchers, maxProto int) {
	const window = 1 << 13
	const backlog = 1024
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Retention: window, WatcherBuffer: window, Metrics: reg})
	defer hub.Close()
	val := []byte("0123456789abcdef")
	for i := 1; i <= window; i++ {
		if err := hub.Append(core.ChangeEvent{
			Key:     keyspace.NumericKey(i % 1024),
			Mut:     core.Mutation{Op: core.OpPut, Value: val},
			Version: core.Version(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	const perConn = 4
	conns := make([]*Client, watchers/perConn)
	for i := range conns {
		c, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg, MaxProtocol: maxProto})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	from := core.Version(window - backlog)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var seen atomic.Int64
		cancels := make([]core.Cancel, watchers)
		var wg sync.WaitGroup
		for wi := 0; wi < watchers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				cancel, err := conns[wi/perConn].Watch(keyspace.Full(), from, core.Funcs{
					Event: func(core.ChangeEvent) { seen.Add(1) },
					Resync: func(r core.ResyncEvent) {
						panic("remote resume storm: unexpected resync: " + r.Reason)
					},
				})
				if err != nil {
					panic(err)
				}
				cancels[wi] = cancel
			}(wi)
		}
		wg.Wait()
		target := int64(watchers) * backlog
		for seen.Load() < target {
			time.Sleep(50 * time.Microsecond)
		}
		for _, cancel := range cancels {
			cancel()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*watchers), "ns/watcher")
	b.ReportMetric(backlog, "events/watcher")
}

func BenchmarkRemoteResumeStorm64(b *testing.B)     { benchRemoteResumeStorm(b, 64, 0) }
func BenchmarkRemoteResumeStorm256(b *testing.B)    { benchRemoteResumeStorm(b, 256, 0) }
func BenchmarkRemoteResumeStorm64Gob(b *testing.B)  { benchRemoteResumeStorm(b, 64, protoV3) }
func BenchmarkRemoteResumeStorm256Gob(b *testing.B) { benchRemoteResumeStorm(b, 256, protoV3) }
