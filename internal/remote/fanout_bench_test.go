package remote

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// nopSnap is a Snapshotter for transport benchmarks that never resync.
type nopSnap struct{}

func (nopSnap) SnapshotRange(keyspace.Range) ([]core.Entry, core.Version, error) {
	return nil, 0, nil
}

// benchRemoteFanout measures the remote transport under fan-out: one hub
// ingesting batches of events, served over TCP to `watchers` clients each
// holding a full-range watch, so every ingested event crosses the wire once
// per client. The producer paces itself on the slowest client (staying well
// inside the server's per-connection outbound bound), so the measurement is
// steady-state wire throughput, never an overflow resync.
//
// Reported alongside ns/op:
//
//	events/sec    delivered change events per wall-clock second, summed
//	              over all clients (the fan-out throughput)
//	wire-B/event  server socket bytes per delivered event
//	events/frame  delivered events per server wire message (the wire
//	              batching ratio; 1.0 means one frame per event)
//
// maxProto pins the client-side protocol ceiling: 0 negotiates the newest
// (binary v4), protoV3 pins the gob codec — the Gob variants exist so codec
// A/B runs interleave in one process instead of comparing across sessions.
func benchRemoteFanout(b *testing.B, watchers, maxProto int) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	delivered := make([]atomic.Int64, watchers)
	for w := 0; w < watchers; w++ {
		c, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg, MaxProtocol: maxProto})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		n := &delivered[w]
		cancel, err := c.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
			Event: func(core.ChangeEvent) { n.Add(1) },
			Resync: func(r core.ResyncEvent) {
				panic("remote fanout bench: unexpected resync: " + r.Reason)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cancel()
	}

	minDelivered := func() int64 {
		min := delivered[0].Load()
		for i := 1; i < watchers; i++ {
			if v := delivered[i].Load(); v < min {
				min = v
			}
		}
		return min
	}
	waitFor := func(target int64) {
		for minDelivered() < target {
			time.Sleep(20 * time.Microsecond)
		}
	}

	// One ring-drain's worth of events per AppendBatch, the shape a batched
	// CDC feed produces; the window keeps at most `window` events in flight
	// per client, below the server's outbound bound.
	const batch = 16
	const window = 4096
	keys := make([]keyspace.Key, 1024)
	for i := range keys {
		keys[i] = keyspace.NumericKey(i)
	}
	val := []byte("0123456789abcdef")
	evs := make([]core.ChangeEvent, 0, batch)

	b.ResetTimer()
	produced := 0
	for produced < b.N {
		evs = evs[:0]
		for i := 0; i < batch && produced < b.N; i++ {
			produced++
			evs = append(evs, core.ChangeEvent{
				Key:     keys[produced%len(keys)],
				Mut:     core.Mutation{Op: core.OpPut, Value: val},
				Version: core.Version(produced),
			})
		}
		if err := hub.AppendBatch(evs); err != nil {
			b.Fatal(err)
		}
		if produced%512 == 0 {
			waitFor(int64(produced - window))
		}
	}
	waitFor(int64(b.N)) // wall time covers full wire delivery of every event
	b.StopTimer()

	total := float64(b.N) * float64(watchers)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(total/secs, "events/sec")
	}
	snap := reg.Snapshot()
	if wire := float64(snap.Counters["remote_server_bytes_total"]); wire > 0 {
		b.ReportMetric(wire/total, "wire-B/event")
	}
	if frames := float64(snap.Counters["remote_server_frames_total"]); frames > 0 {
		b.ReportMetric(total/frames, "events/frame")
	}
}

func BenchmarkRemoteFanout8(b *testing.B)     { benchRemoteFanout(b, 8, 0) }
func BenchmarkRemoteFanout64(b *testing.B)    { benchRemoteFanout(b, 64, 0) }
func BenchmarkRemoteFanout8Gob(b *testing.B)  { benchRemoteFanout(b, 8, protoV3) }
func BenchmarkRemoteFanout64Gob(b *testing.B) { benchRemoteFanout(b, 64, protoV3) }

// BenchmarkRemoteSnapshot4MB measures recovery-snapshot streaming: a client
// pulls a ~4MB range snapshot over the wire each iteration.
func BenchmarkRemoteSnapshot4MB(b *testing.B) {
	reg := metrics.NewRegistry()
	store := newBenchSnapStore(4096, 1024) // 4096 entries × 1KiB
	srv, err := ServeWith("127.0.0.1:0", nopWatch{}, store, ServerConfig{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, _, err := client.SnapshotRange(keyspace.Full())
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) != 4096 {
			b.Fatalf("snapshot returned %d entries", len(entries))
		}
	}
}

// nopWatch is a Watchable for snapshot-only benchmarks.
type nopWatch struct{}

func (nopWatch) Watch(keyspace.Range, core.Version, core.WatchCallback) (core.Cancel, error) {
	return func() {}, nil
}

// benchSnapStore serves a fixed in-memory snapshot.
type benchSnapStore struct{ entries []core.Entry }

func newBenchSnapStore(n, valSize int) *benchSnapStore {
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	s := &benchSnapStore{}
	for i := 0; i < n; i++ {
		s.entries = append(s.entries, core.Entry{
			Key:     keyspace.Key(fmt.Sprintf("key-%08d", i)),
			Value:   val,
			Version: core.Version(i + 1),
		})
	}
	return s
}

func (s *benchSnapStore) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	return s.entries, core.Version(len(s.entries)), nil
}
