// Package remote serves the watch contract over a network: a Server
// exposes any core.Watchable + core.Snapshotter on a TCP listener, and a
// Client implements the same interfaces against it, so entire consumer
// stacks (caches, replicas, workers) run unchanged against a remote watch
// system — the "standalone watch system" of the paper's §5 made standalone
// in fact.
//
// The wire protocol is length-free gob framing over one connection per
// client: requests flow client→server (watch, cancel, snapshot); events,
// progress, resyncs and snapshot results flow back, multiplexed by watch ID.
// A write stall for one slow client cannot wedge the watch system: frames
// queue in a bounded per-connection buffer and overflow converts each of the
// client's watches into a resync — the same lag-or-resync contract the hub
// itself provides (§4.4), applied at the transport layer.
package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// remoteMetrics holds the transport-layer instruments, resolved once from the
// default registry at Serve/Dial so the per-frame paths stay atomic-only.
type remoteMetrics struct {
	serverConns     *metrics.Counter
	overflowResyncs *metrics.Counter
	watchRejects    *metrics.Counter
	clientConnLost  *metrics.Counter
	clientWatches   *metrics.Counter
	clientSnapshots *metrics.Counter
	clientResyncs   *metrics.Counter
}

func newRemoteMetrics() remoteMetrics {
	reg := metrics.Default()
	return remoteMetrics{
		serverConns:     reg.Counter("remote_server_conns_total"),
		overflowResyncs: reg.Counter("remote_server_overflow_resyncs_total"),
		watchRejects:    reg.Counter("remote_server_watch_rejects_total"),
		clientConnLost:  reg.Counter("remote_client_conn_lost_total"),
		clientWatches:   reg.Counter("remote_client_watches_total"),
		clientSnapshots: reg.Counter("remote_client_snapshots_total"),
		clientResyncs:   reg.Counter("remote_client_resyncs_total"),
	}
}

// frame is the single wire message; exactly one pointer field is set.
type frame struct {
	// Client → server.
	Watch    *watchReq
	Cancel   *cancelReq
	Snapshot *snapshotReq

	// Server → client.
	Event      *eventMsg
	Progress   *progressMsg
	Resync     *resyncMsg
	SnapResult *snapshotResp
}

type watchReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
	From core.Version
}

type cancelReq struct{ ID uint64 }

type snapshotReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
}

type eventMsg struct {
	ID uint64
	Ev core.ChangeEvent
}

type progressMsg struct {
	ID uint64
	P  core.ProgressEvent
}

type resyncMsg struct {
	ID uint64
	R  core.ResyncEvent
}

type snapshotResp struct {
	ID      uint64
	Entries []core.Entry
	At      core.Version
	Err     string
}

// Server exposes a watch system and its recovery snapshots on a listener.
type Server struct {
	watch core.Watchable
	snap  core.Snapshotter
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	met    remoteMetrics
}

// Serve starts a server on addr (e.g. "127.0.0.1:0"). The returned server
// is already accepting; Addr reports the bound address.
func Serve(addr string, watch core.Watchable, snap core.Snapshotter) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen: %w", err)
	}
	s := &Server{watch: watch, snap: snap, ln: ln, conns: make(map[net.Conn]struct{}), met: newRemoteMetrics()}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serverConn is the per-connection state: a bounded outbound queue drained
// by one writer goroutine, and the active watches.
type serverConn struct {
	conn net.Conn
	met  remoteMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []frame
	dead    bool
	watches map[uint64]serverWatch
}

type serverWatch struct {
	cancel core.Cancel
	rng    keyspace.Range
}

// outboundLimit bounds the per-connection frame queue; beyond it the
// client's watches are resynced rather than buffered without bound.
const outboundLimit = 8192

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	sc := &serverConn{conn: conn, met: s.met, watches: make(map[uint64]serverWatch)}
	sc.cond = sync.NewCond(&sc.mu)
	s.met.serverConns.Inc()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sc.writeLoop()
	}()

	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			break // client gone (or sent garbage): tear the connection down
		}
		s.handleFrame(sc, f)
	}
	// Reader done: cancel watches, stop the writer, drop the connection.
	sc.mu.Lock()
	watches := sc.watches
	sc.watches = map[uint64]serverWatch{}
	sc.dead = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
	for _, w := range watches {
		w.cancel()
	}
	conn.Close()
	writerWG.Wait()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) handleFrame(sc *serverConn, f frame) {
	switch {
	case f.Watch != nil:
		req := *f.Watch
		r := keyspace.Range{Low: req.Low, High: req.High}
		id := req.ID
		cancel, err := s.watch.Watch(r, req.From, core.Funcs{
			Event:    func(ev core.ChangeEvent) { sc.send(frame{Event: &eventMsg{ID: id, Ev: ev}}) },
			Progress: func(p core.ProgressEvent) { sc.send(frame{Progress: &progressMsg{ID: id, P: p}}) },
			Resync:   func(rs core.ResyncEvent) { sc.send(frame{Resync: &resyncMsg{ID: id, R: rs}}) },
		})
		if err != nil {
			// Report the failure as an immediate resync carrying the reason;
			// the consumer's recovery path handles it uniformly.
			s.met.watchRejects.Inc()
			sc.send(frame{Resync: &resyncMsg{ID: id, R: core.ResyncEvent{Range: r, Reason: "watch rejected: " + err.Error()}}})
			return
		}
		sc.mu.Lock()
		if sc.dead {
			sc.mu.Unlock()
			cancel()
			return
		}
		sc.watches[id] = serverWatch{cancel: cancel, rng: r}
		sc.mu.Unlock()

	case f.Cancel != nil:
		sc.mu.Lock()
		w, ok := sc.watches[f.Cancel.ID]
		delete(sc.watches, f.Cancel.ID)
		sc.mu.Unlock()
		if ok {
			w.cancel()
		}

	case f.Snapshot != nil:
		req := *f.Snapshot
		resp := snapshotResp{ID: req.ID}
		entries, at, err := s.snap.SnapshotRange(keyspace.Range{Low: req.Low, High: req.High})
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Entries = entries
			resp.At = at
		}
		sc.send(frame{SnapResult: &resp})
	}
}

// send enqueues a frame for the writer. Overflow lags the whole connection
// out: the queue is replaced by per-watch resyncs.
func (sc *serverConn) send(f frame) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.dead {
		return
	}
	if len(sc.queue) >= outboundLimit && f.SnapResult == nil && f.Resync == nil {
		sc.met.overflowResyncs.Add(int64(len(sc.watches)))
		resyncs := make([]frame, 0, len(sc.watches))
		for id, w := range sc.watches {
			resyncs = append(resyncs, frame{Resync: &resyncMsg{ID: id, R: core.ResyncEvent{
				Range:  w.rng,
				Reason: "remote: connection outbound buffer overflow",
			}}})
		}
		sc.queue = resyncs
	} else {
		sc.queue = append(sc.queue, f)
	}
	sc.cond.Signal()
}

func (sc *serverConn) writeLoop() {
	enc := gob.NewEncoder(sc.conn)
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.dead {
			sc.cond.Wait()
		}
		if sc.dead {
			sc.mu.Unlock()
			return
		}
		batch := sc.queue
		sc.queue = nil
		sc.mu.Unlock()
		for _, f := range batch {
			if err := enc.Encode(&f); err != nil {
				sc.mu.Lock()
				sc.dead = true
				sc.cond.Broadcast()
				sc.mu.Unlock()
				sc.conn.Close()
				return
			}
		}
	}
}

// Close stops accepting, drops every connection and cancels their watches.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client errors.
var (
	ErrClientClosed = errors.New("remote: client closed")
)

// Client implements core.Watchable and core.Snapshotter against a Server.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	met  remoteMetrics

	mu      sync.Mutex
	encMu   sync.Mutex
	nextID  uint64
	watches map[uint64]core.WatchCallback
	snaps   map[uint64]chan snapshotResp
	closed  bool
	readErr error
}

var (
	_ core.Watchable   = (*Client)(nil)
	_ core.Snapshotter = (*Client)(nil)
)

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		met:     newRemoteMetrics(),
		watches: make(map[uint64]core.WatchCallback),
		snaps:   make(map[uint64]chan snapshotResp),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			c.fail(err)
			return
		}
		switch {
		case f.Event != nil:
			if cb := c.callback(f.Event.ID); cb != nil {
				cb.OnEvent(f.Event.Ev)
			}
		case f.Progress != nil:
			if cb := c.callback(f.Progress.ID); cb != nil {
				cb.OnProgress(f.Progress.P)
			}
		case f.Resync != nil:
			if cb := c.callback(f.Resync.ID); cb != nil {
				c.met.clientResyncs.Inc()
				cb.OnResync(f.Resync.R)
			}
		case f.SnapResult != nil:
			c.mu.Lock()
			ch := c.snaps[f.SnapResult.ID]
			delete(c.snaps, f.SnapResult.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- *f.SnapResult
			}
		}
	}
}

// fail tears the client down: every active watch receives a resync telling
// its consumer to recover through a new client — a connection loss is loss
// of soft state, nothing more.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	watches := c.watches
	c.watches = map[uint64]core.WatchCallback{}
	snaps := c.snaps
	c.snaps = map[uint64]chan snapshotResp{}
	c.mu.Unlock()
	c.met.clientConnLost.Inc()
	c.met.clientResyncs.Add(int64(len(watches)))
	for _, cb := range watches {
		cb.OnResync(core.ResyncEvent{Range: keyspace.Full(), Reason: "remote: connection lost: " + err.Error()})
	}
	for _, ch := range snaps {
		close(ch)
	}
}

func (c *Client) callback(id uint64) core.WatchCallback {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watches[id]
}

func (c *Client) sendFrame(f frame) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	return c.enc.Encode(&f)
}

// Watch implements core.Watchable over the wire.
func (c *Client) Watch(r keyspace.Range, from core.Version, cb core.WatchCallback) (core.Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", core.ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", core.ErrBadWatch, r)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.watches[id] = cb
	c.mu.Unlock()

	if err := c.sendFrame(frame{Watch: &watchReq{ID: id, Low: r.Low, High: r.High, From: from}}); err != nil {
		c.mu.Lock()
		delete(c.watches, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: watch: %w", err)
	}
	c.met.clientWatches.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			delete(c.watches, id)
			c.mu.Unlock()
			_ = c.sendFrame(frame{Cancel: &cancelReq{ID: id}})
		})
	}, nil
}

// SnapshotRange implements core.Snapshotter over the wire: the recovery read
// travels through the same connection, so a consumer needs only the client.
func (c *Client) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	ch := make(chan snapshotResp, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.snaps[id] = ch
	c.mu.Unlock()

	if err := c.sendFrame(frame{Snapshot: &snapshotReq{ID: id, Low: r.Low, High: r.High}}); err != nil {
		c.mu.Lock()
		delete(c.snaps, id)
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("remote: snapshot: %w", err)
	}
	c.met.clientSnapshots.Inc()
	resp, ok := <-ch
	if !ok {
		return nil, 0, fmt.Errorf("remote: snapshot: %w", io.ErrUnexpectedEOF)
	}
	if resp.Err != "" {
		return nil, 0, fmt.Errorf("remote: snapshot: %s", resp.Err)
	}
	return resp.Entries, resp.At, nil
}

// Close drops the connection; active watches receive a final resync.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
}
