// Package remote serves the watch contract over a network: a Server
// exposes any core.Watchable + core.Snapshotter on a TCP listener, and a
// Client implements the same interfaces against it, so entire consumer
// stacks (caches, replicas, workers) run unchanged against a remote watch
// system — the "standalone watch system" of the paper's §5 made standalone
// in fact.
//
// The wire protocol is tag-framed gob over one connection per client (see
// protocol.go): requests flow client→server (watch, cancel, snapshot);
// event batches, progress, resyncs and snapshot chunks flow back,
// multiplexed by watch ID. The transport never flattens the batched feed:
// each contiguous run of events the watch system drains for one watch
// crosses the wire as one EventBatch frame, the per-connection writer
// coalesces flushes (flush on queue-empty or a small linger, not per
// frame), and encode/decode buffers are pooled, so the per-event syscall
// and allocation costs of the old protocol are gone.
//
// A write stall for one slow client cannot wedge the watch system: frames
// queue in a bounded per-connection outbox (accounted in events, not
// frames) and overflow converts each of the client's watches into a resync
// — the same lag-or-resync contract the hub itself provides (§4.4),
// applied at the transport layer. Snapshot responses stream as bounded
// chunks with their own flow control, so a large recovery read neither
// triggers that overflow nor materializes unbounded memory on either end.
//
// # Resilience
//
// The network is allowed to fail without breaking the contract's trichotomy
// (current, lagging with a known frontier, or explicitly resyncing):
//
//   - Liveness (protocol v3): both ends exchange hello frames announcing
//     their heartbeat interval, send heartbeats on an idle stream, and arm
//     read deadlines sized to the peer's interval — a half-open connection
//     (NAT timeout, partition, peer crash) is detected in O(heartbeat
//     interval) instead of hanging a watcher forever. Write deadlines bound
//     the server's flush so a stalled reader converts to connection teardown
//     (and, before that, outbox overflow→resync), never a wedged writer.
//
//   - Recovery: a Client built with ReconnectPolicy.Enabled redials on
//     connection loss with exponential backoff + jitter and a bounded retry
//     budget, then re-establishes every live watch from its resume point
//     (the highest delivered event/progress version, tracked per watch by a
//     core.ResumePoint). Watch IDs, metrics counters and trace stages stay
//     continuous across reconnects; the consumer sees a ResyncEvent only
//     when the server's retention window genuinely cannot cover the gap.
//     In-flight snapshot reads are re-issued on the new connection.
//
//   - Graceful drain: Server.Shutdown stops accepting, sends a terminal
//     resync per watch plus a shutdown marker, flushes, and closes — so
//     clients can tell "server going away" (terminal, do not reconnect)
//     from "network died" (reconnect and resume).
//
// Faults are injected for tests via ChaosConn (chaosconn.go): scripted
// drops, stalls, blackholes, partial writes and byte corruption, behind a
// ClientConfig.Dialer hook.
package remote

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/flightrec"
	"unbundle/internal/govern"
	"unbundle/internal/keyspace"
	"unbundle/internal/logz"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// Transport tuning. These are compile-time constants: the protocol works at
// any value, the numbers only trade latency against batching.
const (
	// outboundLimit bounds a connection's outbox in queued change events
	// (progress frames count as one each); beyond it the client's watches
	// are resynced rather than buffered without bound. Resync and snapshot
	// frames are exempt — they are the recovery path.
	outboundLimit = 8192
	// connWriteBuffer is the bufio.Writer size in front of each server
	// socket; under sustained backlog it turns many small frames into few
	// large writes.
	connWriteBuffer = 64 << 10
	// connReadBuffer is the read-side bufio size on both ends.
	connReadBuffer = 32 << 10
	// flushLinger is how long encoded frames may sit unflushed while the
	// writer keeps draining; the queue-empty flush usually wins well before
	// this deadline.
	flushLinger = 500 * time.Microsecond
	// snapChunkEntries and snapChunkBytes bound one snapshot chunk —
	// whichever is reached first closes the chunk.
	snapChunkEntries = 1024
	snapChunkBytes   = 256 << 10
	// snapBacklogBytes bounds the snapshot-chunk bytes queued in one
	// connection's outbox; the snapshot streamer blocks (it runs on its own
	// goroutine) until the writer drains below it.
	snapBacklogBytes = 1 << 20
)

// Liveness tuning defaults (overridable per Server/Client config).
const (
	// defaultHeartbeatInterval is how often an idle v3 stream carries a
	// heartbeat frame in each direction.
	defaultHeartbeatInterval = time.Second
	// heartbeatTimeoutMult sizes the read deadline from the peer's announced
	// heartbeat interval: a connection silent for this many intervals is
	// declared dead.
	heartbeatTimeoutMult = 4
	// defaultWriteTimeout bounds one socket write on the server; a reader
	// stalled longer than this has its connection torn down (its watches
	// were already being lagged out by the outbox bound).
	defaultWriteTimeout = 10 * time.Second
	// defaultDialTimeout bounds one dial attempt.
	defaultDialTimeout = 5 * time.Second
)

// connLossErr reports whether err is ordinary connection loss (EOF, closed
// or reset socket, deadline expiry) rather than a protocol violation. The
// distinction feeds the decode-error counters: loss is expected and handled
// by reconnect/resync; a decode failure means the stream itself is corrupt.
func connLossErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// serverMetrics holds the server-side transport instruments, resolved once at
// Serve so the per-frame paths stay atomic-only. Instruments are created on
// first use and shared by name, so resolving the same registry twice (two
// servers, or a server restart) accumulates into the same counters — there is
// no duplicate registration and no count reset.
type serverMetrics struct {
	conns           *metrics.Counter
	overflowResyncs *metrics.Counter
	watchRejects    *metrics.Counter
	frames          *metrics.Counter // wire messages encoded (batch = 1 frame)
	bytes           *metrics.Counter // bytes written to client sockets
	events          *metrics.Counter // change events sent inside event frames
	snapChunks      *metrics.Counter // snapshot response chunks streamed
	heartbeats      *metrics.Counter // heartbeat frames sent on idle v3 conns
	hbMisses        *metrics.Counter // read deadlines expired: peer fell silent
	decodeErrs      *metrics.Counter // corrupt/unknown frames that killed a conn
	connDrops       *metrics.Counter // events+frames queued but unsent when a conn died
	drainedWatches  *metrics.Counter // watches terminally resynced by Shutdown
	codecV3Frames   *metrics.Counter // frames encoded with the gob codec (v2/v3)
	codecV4Frames   *metrics.Counter // frames encoded with the binary codec (v4)
	overloads       *metrics.Counter // watch/snapshot requests refused under memory pressure
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	reg = reg.Or()
	return serverMetrics{
		conns:           reg.Counter("remote_server_conns_total"),
		overflowResyncs: reg.Counter("remote_server_overflow_resyncs_total"),
		watchRejects:    reg.Counter("remote_server_watch_rejects_total"),
		frames:          reg.Counter("remote_server_frames_total"),
		bytes:           reg.Counter("remote_server_bytes_total"),
		events:          reg.Counter("remote_server_events_total"),
		snapChunks:      reg.Counter("remote_server_snap_chunks_total"),
		heartbeats:      reg.Counter("remote_server_heartbeats_total"),
		hbMisses:        reg.Counter("remote_server_heartbeat_misses_total"),
		decodeErrs:      reg.Counter("remote_server_decode_errors_total"),
		connDrops:       reg.Counter("remote_server_conn_drops_total"),
		drainedWatches:  reg.Counter("remote_server_drained_watches_total"),
		codecV3Frames:   reg.Counter("remote_server_codec_frames_v3_total"),
		codecV4Frames:   reg.Counter("remote_server_codec_frames_v4_total"),
		overloads:       reg.Counter("remote_server_overloaded_total"),
	}
}

// clientMetrics holds the client-side transport instruments (same sharing
// semantics as serverMetrics: per-Dial resolution from one registry lands on
// the same counters across reconnects).
type clientMetrics struct {
	connLost       *metrics.Counter
	watches        *metrics.Counter
	snapshots      *metrics.Counter
	resyncs        *metrics.Counter
	frames         *metrics.Counter // wire messages decoded
	bytes          *metrics.Counter // bytes read from the server socket
	events         *metrics.Counter // change events received inside event frames
	heartbeats     *metrics.Counter // heartbeat frames sent on idle v3 conns
	hbMisses       *metrics.Counter // read deadlines expired: server fell silent
	decodeErrs     *metrics.Counter // corrupt/unknown frames that killed a conn
	reconnects     *metrics.Counter // successful reconnects
	reconnectFails *metrics.Counter // failed dial attempts during reconnect
	resumedWatches *metrics.Counter // watches re-established from a resume point
	codecV3Frames  *metrics.Counter // frames decoded with the gob codec (v2/v3)
	codecV4Frames  *metrics.Counter // frames decoded with the binary codec (v4)
	overloaded     *metrics.Counter // requests the server refused under memory pressure
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	reg = reg.Or()
	return clientMetrics{
		connLost:       reg.Counter("remote_client_conn_lost_total"),
		watches:        reg.Counter("remote_client_watches_total"),
		snapshots:      reg.Counter("remote_client_snapshots_total"),
		resyncs:        reg.Counter("remote_client_resyncs_total"),
		frames:         reg.Counter("remote_client_frames_total"),
		bytes:          reg.Counter("remote_client_bytes_total"),
		events:         reg.Counter("remote_client_events_total"),
		heartbeats:     reg.Counter("remote_client_heartbeats_total"),
		hbMisses:       reg.Counter("remote_client_heartbeat_misses_total"),
		decodeErrs:     reg.Counter("remote_client_decode_errors_total"),
		reconnects:     reg.Counter("remote_client_reconnects_total"),
		reconnectFails: reg.Counter("remote_client_reconnect_failures_total"),
		resumedWatches: reg.Counter("remote_client_resumed_watches_total"),
		codecV3Frames:  reg.Counter("remote_client_codec_frames_v3_total"),
		codecV4Frames:  reg.Counter("remote_client_codec_frames_v4_total"),
		overloaded:     reg.Counter("remote_client_overloaded_total"),
	}
}

// ServerConfig tunes a Server beyond its defaults.
type ServerConfig struct {
	// Metrics is the registry the server's instruments resolve from; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, when non-nil, stamps trace.StageRemoteEnqueue as traced events
	// enter a connection's outbound queue. Wire the same tracer into the
	// source store / hub for end-to-end remote traces.
	Tracer *trace.Tracer
	// HeartbeatInterval is how often an idle v3 connection carries a
	// server→client heartbeat, and what the server announces in its hello
	// (the client sizes its read deadline from it). 0 uses the 1s default;
	// negative disables server heartbeats (v3 clients will still heartbeat
	// toward the server).
	HeartbeatInterval time.Duration
	// WriteTimeout bounds one socket write; a client stalled past it has its
	// connection torn down (overflow→resync already lagged its watches out).
	// 0 uses the 10s default; negative disables write deadlines.
	WriteTimeout time.Duration
	// Recorder, when non-nil, flight-records connection lifecycle events:
	// accept, heartbeat miss, overflow, drain, disconnect. Nil disables
	// recording; the per-frame paths never record either way.
	Recorder *flightrec.Recorder
	// Log receives structured records for the same transitions; nil uses
	// the process-wide logz ring under component "remote.server".
	Log *slog.Logger
	// MaxProtocol caps the wire protocol version the server negotiates in its
	// hello reply. 0 (or anything ≥ 4) negotiates up to v4 — the binary
	// codec with v4 peers, gob with older ones. 3 pins every connection to
	// gob framing regardless of what clients announce (interop testing,
	// staged rollout of mixed fleets). Values below 3 behave as 3: a client
	// that sent a hello speaks at least v3, and true v2 is a property of
	// hello-less clients, not of the server.
	MaxProtocol int
	// Governor, when non-nil, puts the server under the process memory
	// governor: outbound connection queues are charged to its "remote"
	// account, and snapshot requests are admission-controlled — refused with
	// a retry-after hint (tagOverloaded for v3+ peers, an error chunk for v2)
	// while the governor is at Reject pressure. Watch admission is the watch
	// source's own concern (a governed hub refuses there); this server maps
	// that refusal onto the wire.
	Governor *govern.Governor
}

// Server exposes a watch system and its recovery snapshots on a listener.
type Server struct {
	watch      core.Watchable
	snap       core.Snapshotter
	ln         net.Listener
	tracer     *trace.Tracer
	rec        *flightrec.Recorder
	log        *slog.Logger
	hbInterval time.Duration
	writeTO    time.Duration
	maxProto   int // highest protocol version negotiated (3 or 4)
	gov        *govern.Governor
	acct       *govern.Account // the governor's "remote" account (nil when ungoverned)
	connSeq    atomic.Int64    // connection ids, for flight-record correlation

	mu     sync.Mutex
	conns  map[*serverConn]struct{}
	closed bool
	wg     sync.WaitGroup
	met    serverMetrics
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with default
// configuration. The returned server is already accepting; Addr reports the
// bound address.
func Serve(addr string, watch core.Watchable, snap core.Snapshotter) (*Server, error) {
	return ServeWith(addr, watch, snap, ServerConfig{})
}

// ServeWith starts a server with explicit configuration.
func ServeWith(addr string, watch core.Watchable, snap core.Snapshotter, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen: %w", err)
	}
	hb := cfg.HeartbeatInterval
	if hb == 0 {
		hb = defaultHeartbeatInterval
	}
	wto := cfg.WriteTimeout
	if wto == 0 {
		wto = defaultWriteTimeout
	}
	log := cfg.Log
	if log == nil {
		log = logz.Logger("remote.server")
	}
	maxP := cfg.MaxProtocol
	if maxP == 0 || maxP > protoV4 {
		maxP = protoV4
	}
	if maxP < protoV3 {
		maxP = protoV3
	}
	s := &Server{
		watch:      watch,
		snap:       snap,
		ln:         ln,
		tracer:     cfg.Tracer,
		rec:        cfg.Recorder,
		log:        log,
		hbInterval: hb,
		writeTO:    wto,
		maxProto:   maxP,
		conns:      make(map[*serverConn]struct{}),
		met:        newServerMetrics(cfg.Metrics),
	}
	if cfg.Governor != nil {
		s.gov = cfg.Governor
		s.acct = cfg.Governor.Account("remote")
		// The transport's rung on the degradation ladder, after the hub has
		// evicted retention and shed its own laggards: convert the fattest
		// connection's queued backlog into per-watch resyncs.
		s.gov.RegisterReliever(30, "remote-overflow", s.relieveOverflow)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &serverConn{
			id:      s.connSeq.Add(1),
			conn:    conn,
			met:     s.met,
			tracer:  s.tracer,
			rec:     s.rec,
			log:     s.log,
			writeTO: s.writeTO,
			acct:    s.acct,
			done:    make(chan struct{}),
			watches: make(map[uint64]serverWatch),
		}
		sc.cond = sync.NewCond(&sc.mu)
		sc.spaceCond = sync.NewCond(&sc.mu)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

// outFrame is one queued outbound message; tag selects which payload field
// is live. Event batches hold a pooled slice released after encode.
type outFrame struct {
	tag       uint8
	id        uint64
	evs       *[]core.ChangeEvent // tagEventBatch
	prog      core.ProgressEvent  // tagProgress
	resync    core.ResyncEvent    // tagResync
	chunk     *snapChunk          // tagSnapChunk
	chunkSize int                 // approx payload bytes, for snapshot flow control
	aux       any                 // tagHello (*helloMsg), tagShutdown (*shutdownMsg), tagOverloaded (*overloadedMsg)
	bytes     int64               // governor footprint charged to the "remote" account (0 when ungoverned)
}

// frameDropWeight is the loss accounting for one queued-but-unsent frame:
// event batches weigh their event count, per-watch control frames weigh one,
// liveness frames weigh nothing. Summed into remote_server_conn_drops_total
// when a connection dies with a non-empty outbox, so transport loss the
// resync contract will heal is still visible to operators.
func frameDropWeight(f *outFrame) int64 {
	switch f.tag {
	case tagEventBatch:
		return int64(len(*f.evs))
	case tagProgress, tagResync, tagSnapChunk, tagOverloaded:
		return 1
	}
	return 0
}

// serverConn is the per-connection state: a bounded outbound queue drained
// by one writer goroutine, and the active watches.
type serverConn struct {
	id      int64 // server-assigned, correlates this conn's flight records
	conn    net.Conn
	met     serverMetrics
	tracer  *trace.Tracer
	rec     *flightrec.Recorder
	log     *slog.Logger
	writeTO time.Duration
	acct    *govern.Account // governor's "remote" account; nil when ungoverned

	proto    atomic.Int32 // negotiated protocol (0 until hello; then ≥ protoV3)
	peerHB   atomic.Int64 // client's announced heartbeat interval (nanoseconds)
	lastSend atomic.Int64 // UnixNano of the last flush, for idle detection
	done     chan struct{}
	dieOnce  sync.Once

	mu         sync.Mutex
	cond       *sync.Cond // wakes the writer when the queue fills
	spaceCond  *sync.Cond // wakes snapshot streamers when chunk backlog drains
	queue      []outFrame
	queuedEvs  int // change events (and progress frames) queued, vs outboundLimit
	chunkBytes int // snapshot chunk payload bytes queued, vs snapBacklogBytes
	dead       bool
	draining   bool // Shutdown sent terminal resyncs; flush and close
	watches    map[uint64]serverWatch
}

type serverWatch struct {
	cancel core.Cancel
	rng    keyspace.Range
}

func (s *Server) serveConn(sc *serverConn) {
	defer s.wg.Done()
	s.met.conns.Inc()
	peer := sc.conn.RemoteAddr().String()
	s.rec.Record(flightrec.KindRemoteConnect, flightrec.Event{Comp: "remote.server", ID: sc.id, Detail: peer})
	s.log.Info("connection accepted", "conn", sc.id, "peer", peer)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sc.writeLoop()
	}()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		sc.heartbeatLoop(s.hbInterval)
	}()

	br := bufio.NewReaderSize(sc.conn, connReadBuffer)
	var dec frameDecoder = newGobFrameDecoder(gob.NewDecoder(br))
	// Read deadlines are re-armed coarsely — only once a quarter of the
	// timeout has elapsed — so a busy connection pays one deadline syscall
	// per TO/4 rather than per frame. The effective timeout stretches to at
	// most 1.25×, well inside the 4× heartbeat multiplier's slack.
	var armedAt time.Time
	var armedTO time.Duration
	var readErr error
	for {
		if sc.proto.Load() >= protoV3 {
			to := readTimeoutFor(sc.peerHB.Load())
			if now := time.Now(); to != armedTO || now.Sub(armedAt) > to/4 {
				sc.conn.SetReadDeadline(now.Add(to))
				armedAt, armedTO = now, to
			}
		}
		tag, err := dec.readTag()
		if err != nil {
			readErr = err
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// The peer fell silent past its heartbeat budget: the
				// half-open-connection case, distinct from ordinary loss.
				s.met.hbMisses.Inc()
				s.rec.Record(flightrec.KindHeartbeatMiss, flightrec.Event{
					Comp: "remote.server", ID: sc.id, Detail: "peer silent past heartbeat deadline",
				})
				s.log.Warn("heartbeat missed: peer silent", "conn", sc.id)
			} else if !connLossErr(err) {
				s.met.decodeErrs.Inc()
				readErr = &ProtocolError{Op: "tag", Err: err}
			}
			break // client gone (or sent garbage): tear the connection down
		}
		if tag == tagUpgrade {
			// The client's codec switch marker: every client→server frame
			// from here on is binary. The bufio.Reader carries over — gob
			// consumes exactly its own bytes, so the stream position is
			// deterministic at the marker.
			dec = newBinDecoder(br)
			continue
		}
		if !s.handleRequest(sc, dec, tag) {
			break
		}
	}
	// Reader done: cancel watches, stop the writer, drop the connection.
	sc.mu.Lock()
	watches := sc.watches
	sc.watches = map[uint64]serverWatch{}
	sc.dead = true
	sc.cond.Broadcast()
	sc.spaceCond.Broadcast()
	sc.mu.Unlock()
	for _, w := range watches {
		w.cancel()
	}
	sc.die()
	writerWG.Wait()
	<-hbDone
	// Account what the outbox never managed to send: without this a
	// connection dying with queued frames would vanish with no drop counter
	// anywhere, hiding transport loss the resync contract papers over.
	sc.mu.Lock()
	var drops, freed int64
	for i := range sc.queue {
		f := &sc.queue[i]
		drops += frameDropWeight(f)
		freed += f.bytes
		if f.tag == tagEventBatch {
			putEvs(f.evs)
		}
		sc.queue[i] = outFrame{}
	}
	sc.queue = nil
	sc.mu.Unlock()
	sc.acct.Release(freed)
	if drops > 0 {
		s.met.connDrops.Add(drops)
	}
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
	cause := ""
	if readErr != nil {
		cause = readErr.Error()
	}
	s.rec.Record(flightrec.KindRemoteDisconnect, flightrec.Event{
		Comp: "remote.server", ID: sc.id, N: drops, Detail: cause,
	})
	s.log.Info("connection closed", "conn", sc.id, "drops", drops, "cause", cause)
}

// readTimeoutFor sizes a read deadline from the peer's announced heartbeat
// interval (nanoseconds); 0 or negative falls back to the default interval.
func readTimeoutFor(peerHB int64) time.Duration {
	iv := time.Duration(peerHB)
	if iv <= 0 {
		iv = defaultHeartbeatInterval
	}
	return iv * heartbeatTimeoutMult
}

// heartbeatLoop keeps an idle v3 connection visibly alive: whenever no frame
// has been flushed for a full interval, a heartbeat frame is queued. v2
// connections (no hello) never receive one.
func (sc *serverConn) heartbeatLoop(interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sc.done:
			return
		case <-t.C:
		}
		if sc.proto.Load() < protoV3 {
			continue
		}
		if time.Since(time.Unix(0, sc.lastSend.Load())) < interval {
			continue
		}
		sc.mu.Lock()
		if !sc.dead && !sc.draining {
			sc.queue = append(sc.queue, outFrame{tag: tagHeartbeat})
			sc.met.heartbeats.Inc()
			sc.cond.Signal()
		}
		sc.mu.Unlock()
	}
}

// handleRequest decodes and dispatches one client request; false tears the
// connection down.
func (s *Server) handleRequest(sc *serverConn, dec frameDecoder, tag uint8) bool {
	bad := func(err error) bool {
		if !connLossErr(err) {
			s.met.decodeErrs.Inc()
		}
		return false
	}
	switch tag {
	case tagHello:
		var h helloMsg
		if err := dec.decodeHello(&h); err != nil {
			return bad(err)
		}
		sc.peerHB.Store(int64(time.Duration(h.HeartbeatMillis) * time.Millisecond))
		// Negotiate: the connection speaks the lower of what the client
		// announced and what this server allows, never below v3 (the client
		// sent a hello, so it understands at least the liveness layer).
		neg := int(h.Version)
		if neg > s.maxProto {
			neg = s.maxProto
		}
		if neg < protoV3 {
			neg = protoV3
		}
		sc.proto.Store(int32(neg))
		reply := &helloMsg{Version: uint32(neg), HeartbeatMillis: s.hbInterval.Milliseconds()}
		sc.mu.Lock()
		if !sc.dead {
			sc.queue = append(sc.queue, outFrame{tag: tagHello, aux: reply})
			if neg >= protoV4 {
				// Queued in the same critical section as the hello reply so
				// no other frame (a heartbeat, an early event batch) can slip
				// between them: the upgrade marker must be the first thing
				// the client sees after the reply, and everything after it is
				// binary.
				sc.queue = append(sc.queue, outFrame{tag: tagUpgrade})
			}
			sc.cond.Signal()
		}
		sc.mu.Unlock()
	case tagHeartbeat:
		// Liveness only; the read deadline reset on the next loop iteration
		// is the entire effect.
	case tagWatch:
		var req watchReq
		if err := dec.decodeWatch(&req); err != nil {
			return bad(err)
		}
		s.handleWatch(sc, req)
	case tagCancel:
		var req cancelReq
		if err := dec.decodeCancel(&req); err != nil {
			return bad(err)
		}
		sc.mu.Lock()
		w, ok := sc.watches[req.ID]
		delete(sc.watches, req.ID)
		sc.mu.Unlock()
		if ok {
			w.cancel()
		}
	case tagSnapshot:
		var req snapshotReq
		if err := dec.decodeSnapshot(&req); err != nil {
			return bad(err)
		}
		// Stream on a dedicated goroutine so the reader keeps serving
		// cancels (and further requests) while a large snapshot drains.
		s.wg.Add(1)
		go s.streamSnapshot(sc, req)
	default:
		s.met.decodeErrs.Inc()
		return false // protocol violation
	}
	return true
}

// connWatchSink feeds one watch's stream into the connection outbox. It
// implements core.EventBatchCallback, so the hub's dispatch loop hands whole
// ring-drain batches straight through to the wire.
type connWatchSink struct {
	sc *serverConn
	id uint64
}

func (cs connWatchSink) OnEvent(ev core.ChangeEvent) {
	evs := [1]core.ChangeEvent{ev}
	cs.sc.sendEvents(cs.id, evs[:])
}

func (cs connWatchSink) OnEventBatch(evs []core.ChangeEvent) { cs.sc.sendEvents(cs.id, evs) }

func (cs connWatchSink) OnProgress(p core.ProgressEvent) { cs.sc.sendProgress(cs.id, p) }

func (cs connWatchSink) OnResync(r core.ResyncEvent) { cs.sc.sendResync(cs.id, r) }

func (s *Server) handleWatch(sc *serverConn, req watchReq) {
	r := keyspace.Range{Low: req.Low, High: req.High}
	sc.mu.Lock()
	if sc.draining || sc.dead {
		// A watch racing the drain gets no stream; the client's teardown
		// path resyncs every unestablished watch when the connection ends.
		sc.mu.Unlock()
		return
	}
	sc.mu.Unlock()
	cancel, err := s.watch.Watch(r, req.From, connWatchSink{sc: sc, id: req.ID})
	if err != nil {
		// A governed watch source refuses admission under memory pressure
		// with a retry-after hint; v3+ peers get it as an overloaded frame so
		// their reconnect/backoff machinery can wait the pressure out instead
		// of treating the refusal as lost history.
		var ov *govern.Overloaded
		if errors.As(err, &ov) {
			s.met.overloads.Inc()
			if sc.proto.Load() >= protoV3 {
				sc.sendOverloaded(req.ID, ov)
			} else {
				sc.sendResync(req.ID, core.ResyncEvent{Range: r, Reason: "watch rejected: " + err.Error()})
			}
			return
		}
		// Report the failure as an immediate resync carrying the reason;
		// the consumer's recovery path handles it uniformly.
		s.met.watchRejects.Inc()
		sc.sendResync(req.ID, core.ResyncEvent{Range: r, Reason: "watch rejected: " + err.Error()})
		return
	}
	sc.mu.Lock()
	if sc.dead || sc.draining {
		sc.mu.Unlock()
		cancel()
		return
	}
	sc.watches[req.ID] = serverWatch{cancel: cancel, rng: r}
	sc.mu.Unlock()
}

// evsFootprint estimates the governor footprint of one outbound event batch:
// payload bytes plus a flat per-event struct overhead.
func evsFootprint(evs []core.ChangeEvent) int64 {
	var n int64
	for i := range evs {
		n += int64(len(evs[i].Key)+len(evs[i].Mut.Value)) + 32
	}
	return n
}

// sendEvents copies one batch into a pooled slice and enqueues it as a
// single event-batch frame. Overflow (measured in queued events, so a giant
// batch cannot sneak past a frame-count bound) lags the whole connection out.
func (sc *serverConn) sendEvents(id uint64, evs []core.ChangeEvent) {
	if len(evs) == 0 {
		return
	}
	sc.mu.Lock()
	if sc.dead || sc.draining {
		sc.mu.Unlock()
		return
	}
	if sc.queuedEvs+len(evs) > outboundLimit {
		sc.overflowLocked()
		sc.mu.Unlock()
		return
	}
	p := getEvs(len(evs))
	*p = append(*p, evs...)
	var fp int64
	if sc.acct != nil {
		fp = evsFootprint(evs)
		sc.acct.Charge(fp)
	}
	sc.queue = append(sc.queue, outFrame{tag: tagEventBatch, id: id, evs: p, bytes: fp})
	sc.queuedEvs += len(evs)
	if sc.tracer.Enabled() {
		for i := range evs {
			if evs[i].Trace != 0 {
				sc.tracer.Record(evs[i].Trace, trace.StageRemoteEnqueue)
			}
		}
	}
	sc.cond.Signal()
	sc.mu.Unlock()
}

func (sc *serverConn) sendProgress(id uint64, p core.ProgressEvent) {
	sc.mu.Lock()
	if sc.dead || sc.draining {
		sc.mu.Unlock()
		return
	}
	if sc.queuedEvs+1 > outboundLimit {
		sc.overflowLocked()
		sc.mu.Unlock()
		return
	}
	sc.queue = append(sc.queue, outFrame{tag: tagProgress, id: id, prog: p})
	sc.queuedEvs++
	sc.cond.Signal()
	sc.mu.Unlock()
}

// sendResync enqueues unconditionally: resyncs are the contract's loss
// signal and are never dropped by the bound they enforce. (During a drain
// the watch already received its terminal resync, so later ones are noise
// and are skipped.)
func (sc *serverConn) sendResync(id uint64, r core.ResyncEvent) {
	sc.mu.Lock()
	if !sc.dead && !sc.draining {
		sc.queue = append(sc.queue, outFrame{tag: tagResync, id: id, resync: r})
		sc.cond.Signal()
	}
	sc.mu.Unlock()
}

// overflowLocked converts the connection's backlog into per-watch resyncs:
// queued event and progress frames are dropped (their watches are being
// resynced anyway), while queued resyncs and snapshot chunks survive — the
// recovery path must not be starved by the overflow it heals. Caller holds
// sc.mu.
func (sc *serverConn) overflowLocked() {
	sc.met.overflowResyncs.Add(int64(len(sc.watches)))
	sc.rec.Record(flightrec.KindRemoteOverflow, flightrec.Event{
		Comp: "remote.server", ID: sc.id, N: int64(len(sc.watches)), Detail: "outbound buffer overflow",
	})
	if sc.log != nil { // tests build bare serverConns without a logger
		sc.log.Warn("outbound buffer overflow, resyncing watches", "conn", sc.id, "watches", len(sc.watches))
	}
	kept := make([]outFrame, 0, len(sc.watches)+4)
	for id, w := range sc.watches {
		kept = append(kept, outFrame{tag: tagResync, id: id, resync: core.ResyncEvent{
			Range:  w.rng,
			Reason: "remote: connection outbound buffer overflow",
		}})
	}
	var freed int64
	for i := range sc.queue {
		f := &sc.queue[i]
		switch f.tag {
		// Recovery frames survive — and so do protocol-state frames: dropping
		// a queued hello reply or upgrade marker would desync the codec
		// negotiation, dropping a shutdown marker would turn a graceful
		// drain into an apparent network death, and dropping an overloaded
		// frame would leave a refused client waiting forever.
		case tagResync, tagSnapChunk, tagHello, tagUpgrade, tagShutdown, tagOverloaded:
			kept = append(kept, *f)
		case tagEventBatch:
			putEvs(f.evs)
			freed += f.bytes
		}
		sc.queue[i] = outFrame{}
	}
	sc.queue = kept
	sc.queuedEvs = 0
	sc.cond.Signal()
	sc.acct.Release(freed)
}

// streamSnapshot reads the range snapshot and streams it as bounded chunks,
// blocking on the connection's chunk-backlog bound rather than queueing the
// whole result. Runs on its own goroutine, tracked by the server waitgroup.
func (s *Server) streamSnapshot(sc *serverConn, req snapshotReq) {
	defer s.wg.Done()
	// Admission-control recovery reads: materializing a large snapshot while
	// the governor is already at Reject pressure would deepen the overload
	// that triggered the recovery. Keyed by peer so a quarantine aimed at
	// this client's address never bleeds onto its neighbours.
	if err := s.gov.Admit("snapshot:" + sc.conn.RemoteAddr().String()); err != nil {
		var ov *govern.Overloaded
		if errors.As(err, &ov) {
			s.met.overloads.Inc()
			if sc.proto.Load() >= protoV3 {
				sc.sendOverloaded(req.ID, ov)
			} else {
				msg := "server overloaded: " + ov.Reason
				sc.sendChunk(&snapChunk{ID: req.ID, Err: msg, Last: true}, len(msg)+32)
			}
			return
		}
	}
	entries, at, err := s.snap.SnapshotRange(keyspace.Range{Low: req.Low, High: req.High})
	if err != nil {
		sc.sendChunk(&snapChunk{ID: req.ID, Err: err.Error(), Last: true}, len(err.Error())+32)
		return
	}
	off := 0
	for {
		n, size := 0, 0
		for off+n < len(entries) && n < snapChunkEntries && size < snapChunkBytes {
			e := &entries[off+n]
			size += len(e.Key) + len(e.Value) + 16
			n++
		}
		chunk := &snapChunk{
			ID:      req.ID,
			Entries: entries[off : off+n],
			At:      at,
			Last:    off+n == len(entries),
		}
		if !sc.sendChunk(chunk, size+32) || chunk.Last {
			return
		}
		off += n
	}
}

// sendChunk enqueues one snapshot chunk, waiting while the connection's
// queued chunk bytes exceed snapBacklogBytes. Returns false once the
// connection is dead.
func (sc *serverConn) sendChunk(ch *snapChunk, size int) bool {
	sc.mu.Lock()
	for !sc.dead && !sc.draining && sc.chunkBytes > snapBacklogBytes {
		sc.spaceCond.Wait()
	}
	if sc.dead || sc.draining {
		sc.mu.Unlock()
		return false
	}
	var fp int64
	if sc.acct != nil {
		fp = int64(size)
		sc.acct.Charge(fp)
	}
	sc.queue = append(sc.queue, outFrame{tag: tagSnapChunk, id: ch.ID, chunk: ch, chunkSize: size, bytes: fp})
	sc.chunkBytes += size
	sc.cond.Signal()
	sc.mu.Unlock()
	return true
}

// sendOverloaded refuses one watch or snapshot request with the governor's
// retry-after hint. Like sendResync it bypasses the outbox bound: it is the
// back-pressure signal itself and must not be starved by the backlog it is
// there to shed.
func (sc *serverConn) sendOverloaded(id uint64, ov *govern.Overloaded) {
	m := &overloadedMsg{ID: id, RetryAfterMillis: ov.RetryAfter.Milliseconds(), Reason: ov.Reason}
	sc.mu.Lock()
	if !sc.dead && !sc.draining {
		sc.queue = append(sc.queue, outFrame{tag: tagOverloaded, id: id, aux: m})
		sc.cond.Signal()
	}
	sc.mu.Unlock()
}

// die tears the connection down and wakes every waiter. Idempotent.
func (sc *serverConn) die() {
	sc.dieOnce.Do(func() { close(sc.done) })
	sc.mu.Lock()
	sc.dead = true
	sc.cond.Broadcast()
	sc.spaceCond.Broadcast()
	sc.mu.Unlock()
	sc.conn.Close()
}

// beginDrain converts the connection to graceful-shutdown mode: every live
// watch gets a terminal resync, a shutdown marker follows (v3 peers only),
// new frames are refused, and the writer closes the connection once the
// queue has flushed. Watch cancels run outside the lock.
func (sc *serverConn) beginDrain(reason string) {
	sc.mu.Lock()
	if sc.dead || sc.draining {
		sc.mu.Unlock()
		return
	}
	var cancels []core.Cancel
	n := 0
	for id, w := range sc.watches {
		sc.queue = append(sc.queue, outFrame{tag: tagResync, id: id, resync: core.ResyncEvent{
			Range:  w.rng,
			Reason: reason,
		}})
		cancels = append(cancels, w.cancel)
		n++
	}
	sc.watches = map[uint64]serverWatch{}
	if sc.proto.Load() >= protoV3 {
		sc.queue = append(sc.queue, outFrame{tag: tagShutdown, aux: &shutdownMsg{Reason: reason}})
	}
	sc.draining = true
	sc.cond.Signal()
	sc.spaceCond.Broadcast() // unblock snapshot streamers; their conn is going away
	sc.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	if n > 0 {
		sc.met.drainedWatches.Add(int64(n))
	}
	sc.rec.Record(flightrec.KindRemoteDrain, flightrec.Event{
		Comp: "remote.server", ID: sc.id, N: int64(n), Detail: reason,
	})
	if sc.log != nil { // tests build bare serverConns without a logger
		sc.log.Info("connection draining", "conn", sc.id, "watches", n, "reason", reason)
	}
}

// writeLoop drains the outbox through one buffered gob stream. Flush policy:
// flush when the queue runs empty (the common low-load case, giving
// per-batch latency), or when encoded frames have lingered past flushLinger
// under sustained backlog; bufio additionally writes through whenever the
// buffer fills. The result is a few large socket writes instead of one small
// write per event. Every socket write sits under the configured write
// deadline, so a stalled reader tears the connection down instead of
// wedging this loop. When the connection is draining, the loop flushes the
// final frames and closes.
func (sc *serverConn) writeLoop() {
	bw := bufio.NewWriterSize(&countingWriter{w: sc.conn, c: sc.met.bytes}, connWriteBuffer)
	var enc frameEncoder = newGobFrameEncoder(gob.NewEncoder(bw))
	binary := false // flips at the tagUpgrade marker
	var local []outFrame
	var lastFlush time.Time
	flush := func() bool {
		if err := bw.Flush(); err != nil {
			sc.die()
			return false
		}
		lastFlush = time.Now()
		sc.lastSend.Store(lastFlush.UnixNano())
		return true
	}
	// fail counts the frames an encode/flush error strands (the current
	// frame onward) before tearing the connection down.
	fail := func(local []outFrame, from int) {
		var drops, freed int64
		for i := from; i < len(local); i++ {
			drops += frameDropWeight(&local[i])
			freed += local[i].bytes
			if local[i].tag == tagEventBatch {
				putEvs(local[i].evs)
			}
		}
		if drops > 0 {
			sc.met.connDrops.Add(drops)
		}
		sc.acct.Release(freed)
		sc.die()
	}
	for {
		sc.mu.Lock()
		if len(sc.queue) == 0 && !sc.dead && bw.Buffered() > 0 {
			// Queue drained: flush what the last rounds encoded before
			// sleeping, so the tail of a burst is never held hostage by the
			// linger.
			sc.mu.Unlock()
			if sc.writeTO > 0 {
				sc.conn.SetWriteDeadline(time.Now().Add(sc.writeTO))
			}
			if !flush() {
				return
			}
			sc.mu.Lock()
		}
		for len(sc.queue) == 0 && !sc.dead {
			if sc.draining {
				// Drain complete: final frames are flushed (above), close.
				sc.mu.Unlock()
				sc.die()
				return
			}
			sc.cond.Wait()
		}
		if sc.dead {
			sc.mu.Unlock()
			return
		}
		local, sc.queue = sc.queue, local[:0]
		sc.queuedEvs = 0
		sc.mu.Unlock()

		if sc.writeTO > 0 {
			sc.conn.SetWriteDeadline(time.Now().Add(sc.writeTO))
		}
		for i := range local {
			f := &local[i]
			var err error
			switch f.tag {
			case tagEventBatch:
				err = enc.eventBatch(f.id, *f.evs)
			case tagProgress:
				err = enc.progress(f.id, f.prog)
			case tagResync:
				err = enc.resync(f.id, f.resync)
			case tagSnapChunk:
				err = enc.snapChunk(f.chunk)
			case tagHello:
				err = enc.hello(f.aux.(*helloMsg))
			case tagShutdown:
				err = enc.shutdown(f.aux.(*shutdownMsg))
			case tagOverloaded:
				err = enc.overloaded(f.aux.(*overloadedMsg))
			case tagHeartbeat:
				err = enc.heartbeat()
			case tagUpgrade:
				// The codec switch point: the marker itself goes out in gob,
				// every frame after it in binary. Swapping here — in stream
				// order, on the writer goroutine — is what makes the switch
				// unambiguous for the client's decoder.
				if err = enc.upgrade(); err == nil {
					enc = newBinEncoder(bw)
					binary = true
				}
			}
			if err != nil {
				fail(local, i)
				return
			}
			sc.met.frames.Inc()
			if binary && f.tag != tagUpgrade {
				sc.met.codecV4Frames.Inc()
			} else {
				sc.met.codecV3Frames.Inc()
			}
			switch f.tag {
			case tagEventBatch:
				sc.met.events.Add(int64(len(*f.evs)))
				putEvs(f.evs)
			case tagSnapChunk:
				sc.met.snapChunks.Inc()
				sc.mu.Lock()
				sc.chunkBytes -= f.chunkSize
				sc.spaceCond.Signal()
				sc.mu.Unlock()
			}
			if f.bytes > 0 {
				// Encoded into the socket buffer: off the governed outbox.
				sc.acct.Release(f.bytes)
			}
			local[i] = outFrame{}
			if bw.Buffered() > 0 && time.Since(lastFlush) > flushLinger {
				if !flush() {
					// Frames past i were encoded into the dead buffer.
					fail(local, i+1)
					return
				}
			}
		}
	}
}

// ConnInfo is one connection's state, for the debug plane (debugz /conns).
type ConnInfo struct {
	RemoteAddr   string `json:"remote_addr"`
	Protocol     int    `json:"protocol"` // 2 (legacy), 3 (liveness) or 4 (binary codec)
	Codec        string `json:"codec"`    // "gob" or "binary"
	Watches      int    `json:"watches"`
	QueuedEvents int    `json:"queued_events"`
	Draining     bool   `json:"draining"`
}

// codecName names the frame codec a negotiated protocol version implies.
func codecName(proto int) string {
	if proto >= protoV4 {
		return "binary"
	}
	return "gob"
}

// Conns snapshots the server's live connections.
// relieveOverflow is the governor's transport reliever: while the process
// is over budget it repeatedly finds the connection holding the most
// charged outbound bytes — a peer that stopped reading while the storm kept
// producing — and overflows its backlog into explicit per-watch resyncs,
// releasing the whole charge at once. This is the same safety valve the
// outboundLimit bound triggers, pulled earlier by memory pressure instead
// of waiting for the event-count bound. Runs on the governor's relief
// goroutine; locks are taken one connection at a time, never nested.
func (s *Server) relieveOverflow(need int64) int64 {
	var freed int64
	for freed < need {
		s.mu.Lock()
		scs := make([]*serverConn, 0, len(s.conns))
		for sc := range s.conns {
			scs = append(scs, sc)
		}
		s.mu.Unlock()
		var worst *serverConn
		var worstBytes int64
		for _, sc := range scs {
			sc.mu.Lock()
			var b int64
			for i := range sc.queue {
				b += sc.queue[i].bytes
			}
			sc.mu.Unlock()
			if b > worstBytes {
				worst, worstBytes = sc, b
			}
		}
		if worst == nil || worstBytes == 0 {
			return freed
		}
		worst.mu.Lock()
		// Re-check under the lock: the write loop may have drained it since.
		var b int64
		for i := range worst.queue {
			b += worst.queue[i].bytes
		}
		if b > 0 {
			worst.overflowLocked()
		}
		worst.mu.Unlock()
		if b == 0 {
			return freed
		}
		freed += b
	}
	return freed
}

func (s *Server) Conns() []ConnInfo {
	s.mu.Lock()
	scs := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		scs = append(scs, sc)
	}
	s.mu.Unlock()
	out := make([]ConnInfo, 0, len(scs))
	for _, sc := range scs {
		info := ConnInfo{RemoteAddr: sc.conn.RemoteAddr().String(), Protocol: protoV2}
		if p := int(sc.proto.Load()); p >= protoV3 {
			info.Protocol = p
		}
		info.Codec = codecName(info.Protocol)
		sc.mu.Lock()
		info.Watches = len(sc.watches)
		info.QueuedEvents = sc.queuedEvs
		info.Draining = sc.draining
		sc.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// Shutdown drains the server gracefully: it stops accepting, sends every
// live watch a terminal resync followed by a shutdown marker, flushes each
// connection's queued frames, and closes. Clients therefore learn "server
// going away" explicitly — a reconnecting client will not burn its retry
// budget against a deliberate drain. If ctx expires first, remaining
// connections are torn down abruptly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	scs := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		scs = append(scs, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sc := range scs {
		sc.beginDrain("remote: server draining")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, sc := range scs {
			sc.die()
		}
		<-done
		return ctx.Err()
	}
}

// Close stops accepting, drops every connection and cancels their watches.
// Unlike Shutdown it does not drain: clients observe an abrupt connection
// loss, exactly as if the network had died.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	scs := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		scs = append(scs, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sc := range scs {
		sc.die()
	}
	s.wg.Wait()
}

// Client errors.
var (
	ErrClientClosed = errors.New("remote: client closed")
	// ErrServerDraining marks a terminal client failure caused by a graceful
	// server shutdown: the server announced the drain, so reconnecting is
	// pointless and the consumer must recover against a new endpoint.
	ErrServerDraining = errors.New("remote: server draining")
	// ErrReconnectBudget marks a terminal client failure after the reconnect
	// retry budget was exhausted without re-establishing a connection.
	ErrReconnectBudget = errors.New("remote: reconnect budget exhausted")
)

// ReconnectPolicy governs a Client's automatic recovery from connection
// loss. The zero value disables reconnection (a loss terminally resyncs
// every watch, the pre-resilience behaviour).
type ReconnectPolicy struct {
	// Enabled turns auto-reconnect on.
	Enabled bool
	// MaxAttempts is the budget of consecutive failed dial attempts before
	// the client gives up and terminally resyncs its watches. 0 means the
	// default (8); negative means unlimited.
	MaxAttempts int
	// BaseBackoff is the first retry delay; each failure doubles it up to
	// MaxBackoff, and every wait is jittered in [d/2, d). Defaults 25ms / 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed fixes the jitter source for deterministic tests; 0 seeds from
	// the clock.
	Seed int64
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// ClientConfig tunes a Client beyond its defaults.
type ClientConfig struct {
	// Metrics is the registry the client's instruments resolve from; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, when non-nil, stamps trace.StageRemoteDeliver as traced events
	// are handed to the consumer callback.
	Tracer *trace.Tracer
	// HeartbeatInterval is how often an idle connection carries a
	// client→server heartbeat, announced to the server in the hello so it
	// can size its read deadline. 0 uses the 1s default. Negative speaks
	// protocol v2: no hello, no heartbeats, no read deadline — the
	// pre-resilience wire behaviour.
	HeartbeatInterval time.Duration
	// Reconnect governs automatic recovery from connection loss.
	Reconnect ReconnectPolicy
	// Dialer overrides how connections are established (fault injection,
	// proxies). nil uses net.DialTimeout("tcp", addr, 5s). The dialer is
	// invoked again on every reconnect attempt.
	Dialer func(addr string) (net.Conn, error)
	// Recorder, when non-nil, flight-records the client's connection
	// lifecycle: connect, heartbeat miss, disconnect, reconnect, and each
	// watch resumed. Nil disables recording.
	Recorder *flightrec.Recorder
	// Log receives structured records for the same transitions; nil uses
	// the process-wide logz ring under component "remote.client".
	Log *slog.Logger
	// MaxProtocol caps the wire protocol version announced in the hello.
	// 0 (or anything ≥ 4) announces v4 — the binary codec when the server
	// agrees. 3 pins the connection to gob framing. 2 or less speaks legacy
	// v2: no hello, no heartbeats, no read deadlines — equivalent to a
	// negative HeartbeatInterval.
	MaxProtocol int
}

// snapResult resolves one in-flight snapshot request.
type snapResult struct {
	entries []core.Entry
	at      core.Version
	err     string
	// overloaded carries a typed admission refusal so callers (most
	// importantly core.ResyncWatcher's recovery loop) can honor the server's
	// retry-after hint via errors.As instead of string-matching err.
	overloaded *govern.Overloaded
}

// snapAccum accumulates a streamed snapshot's chunks until Last. On
// reconnect the request is re-issued and the accumulator reset, so a
// snapshot read survives connection loss transparently.
type snapAccum struct {
	rng     keyspace.Range
	entries []core.Entry
	at      core.Version
	ch      chan snapResult
}

// clientWatch is one logical watch, stable across reconnects: the ID the
// server multiplexes on, the consumer callback, and the resume point the
// watch is re-established from after a reconnect.
type clientWatch struct {
	id  uint64
	rng keyspace.Range
	cb  core.WatchCallback
	// resume tracks the highest version this watch has consumed (event or
	// progress); a reconnect re-watches from here, so the stream continues
	// without duplicates and without a resync unless the server's retention
	// can no longer cover the gap.
	resume core.ResumePoint
	// terminal is set once a resync has been delivered (or the client shut
	// down): the watch is dead per the contract — the consumer recovers via
	// snapshot+rewatch — so it is neither resumed nor fed further frames.
	terminal atomic.Bool
}

// clientConn is one physical connection's state. The Client swaps these on
// reconnect; everything logical (watches, snapshots, metrics, trace IDs)
// lives on the Client and survives the swap.
type clientConn struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  frameEncoder // guarded by Client.encMu (swapped at the codec upgrade)
	gen  int

	proto    atomic.Int32 // negotiated protocol (0 until the server's hello)
	peerHB   atomic.Int64 // server's announced heartbeat interval (ns)
	lastSend atomic.Int64
	done     chan struct{} // closed on teardown; stops the heartbeat loop
	readDone chan struct{} // closed when the read loop has fully exited
	dieOnce  sync.Once
}

func (cc *clientConn) die() {
	cc.dieOnce.Do(func() { close(cc.done) })
	cc.conn.Close()
}

// Client implements core.Watchable and core.Snapshotter against a Server.
// With ReconnectPolicy.Enabled it survives connection loss: watches resume
// from their last delivered/progress version on a fresh connection, and the
// consumer sees a ResyncEvent only when the server can no longer supply the
// gap. Watch IDs and metrics counters stay continuous across reconnects.
type Client struct {
	addr     string
	met      clientMetrics
	tracer   *trace.Tracer
	rec      *flightrec.Recorder
	log      *slog.Logger
	hbIv     time.Duration // negative: speak v2 (no hello/heartbeats)
	announce int           // protocol version sent in the hello (3 or 4)
	policy   ReconnectPolicy
	dialer   func(addr string) (net.Conn, error)
	jitter   *rand.Rand // used only by the single active reconnect loop

	ctx       context.Context
	cancelCtx context.CancelFunc

	mu         sync.Mutex
	cur        *clientConn // nil while disconnected
	gen        int         // bumped whenever cur changes
	lastRead   chan struct{}
	nextID     uint64
	watches    map[uint64]*clientWatch
	snaps      map[uint64]*snapAccum
	closed     bool
	draining   bool  // server announced shutdown
	failed     error // terminal: budget exhausted, drain, or close
	terminated bool  // terminal callbacks already delivered

	encMu sync.Mutex // serializes frame encoding on the current connection
}

var (
	_ core.Watchable   = (*Client)(nil)
	_ core.Snapshotter = (*Client)(nil)
)

// Dial connects to a Server with default configuration.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientConfig{})
}

// DialWith connects to a Server with explicit configuration.
func DialWith(addr string, cfg ClientConfig) (*Client, error) {
	hb := cfg.HeartbeatInterval
	if hb == 0 {
		hb = defaultHeartbeatInterval
	}
	announce := protoV4
	if cfg.MaxProtocol != 0 && cfg.MaxProtocol < announce {
		announce = cfg.MaxProtocol
	}
	if announce < protoV3 {
		// v2 is the hello-less protocol; announcing less than v3 means not
		// announcing at all, which also switches off the liveness layer.
		announce = protoV2
		hb = -1
	}
	dialer := cfg.Dialer
	if dialer == nil {
		dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, defaultDialTimeout)
		}
	}
	seed := cfg.Reconnect.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ctx, cancel := context.WithCancel(context.Background())
	log := cfg.Log
	if log == nil {
		log = logz.Logger("remote.client")
	}
	c := &Client{
		addr:      addr,
		met:       newClientMetrics(cfg.Metrics),
		tracer:    cfg.Tracer,
		rec:       cfg.Recorder,
		log:       log,
		hbIv:      hb,
		announce:  announce,
		policy:    cfg.Reconnect.withDefaults(),
		dialer:    dialer,
		jitter:    rand.New(rand.NewSource(seed)),
		ctx:       ctx,
		cancelCtx: cancel,
		watches:   make(map[uint64]*clientWatch),
		snaps:     make(map[uint64]*snapAccum),
	}
	conn, err := dialer(addr)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("remote: dial: %w", err)
	}
	cc := c.installConn(conn)
	if cc == nil {
		cancel()
		conn.Close()
		return nil, ErrClientClosed
	}
	if err := c.handshake(cc); err != nil {
		cc.die()
		cancel()
		return nil, fmt.Errorf("remote: dial: %w", err)
	}
	c.startConn(cc)
	c.rec.Record(flightrec.KindRemoteConnect, flightrec.Event{Comp: "remote.client", ID: int64(cc.gen), Detail: addr})
	c.log.Info("connected", "addr", addr, "gen", cc.gen)
	return c, nil
}

// installConn makes conn the client's current connection and returns its
// state, or nil if the client closed meanwhile.
func (c *Client) installConn(conn net.Conn) *clientConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.gen++
	cc := &clientConn{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 4<<10),
		gen:      c.gen,
		done:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
	cc.enc = newGobFrameEncoder(gob.NewEncoder(cc.bw))
	c.cur = cc
	c.lastRead = cc.readDone
	return cc
}

// handshake opens the stream with a hello announcing our protocol version
// and heartbeat interval. With a negative heartbeat interval the client
// speaks v2: no hello at all.
func (c *Client) handshake(cc *clientConn) error {
	if c.hbIv < 0 {
		return nil
	}
	h := &helloMsg{Version: uint32(c.announce), HeartbeatMillis: c.hbIv.Milliseconds()}
	return c.sendOn(cc, func(e frameEncoder) error { return e.hello(h) })
}

// startConn launches the per-connection goroutines.
func (c *Client) startConn(cc *clientConn) {
	go c.readLoop(cc)
	go c.heartbeatLoop(cc)
}

// sendOn encodes one frame on the given connection and flushes: client→server
// traffic is sparse control flow, not the hot path. The frame is built by
// send against whichever codec the connection currently speaks — encMu makes
// the read against the codec upgrade swap safe.
func (c *Client) sendOn(cc *clientConn, send func(frameEncoder) error) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := send(cc.enc); err != nil {
		return err
	}
	if err := cc.bw.Flush(); err != nil {
		return err
	}
	cc.lastSend.Store(time.Now().UnixNano())
	return nil
}

// upgradeSend switches the connection's send side to the binary codec:
// the gob tagUpgrade marker goes out first (so the server knows exactly
// where in the stream the switch happens), then the encoder is swapped.
// Serialized against every in-flight sendOn by encMu.
func (c *Client) upgradeSend(cc *clientConn) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := cc.enc.upgrade(); err != nil {
		return err
	}
	if err := cc.bw.Flush(); err != nil {
		return err
	}
	cc.enc = newBinEncoder(cc.bw)
	cc.lastSend.Store(time.Now().UnixNano())
	return nil
}

// conn returns the current connection, or nil while disconnected.
func (c *Client) connNow() *clientConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// ProtocolInfo reports the current connection's negotiated protocol version
// and frame codec ("gob" or "binary"), for operator surfaces (watchtail,
// debug planes). Version 0 means no connection, or the server's hello has
// not arrived yet; version 2 means the client speaks legacy v2.
func (c *Client) ProtocolInfo() (version int, codec string) {
	cc := c.connNow()
	if cc == nil {
		return 0, ""
	}
	p := int(cc.proto.Load())
	if p == 0 && c.hbIv < 0 {
		p = protoV2
	}
	if p == 0 {
		return 0, ""
	}
	return p, codecName(p)
}

// heartbeatLoop keeps an idle v3 stream visibly alive toward the server,
// which sizes its read deadline from the interval we announced.
func (c *Client) heartbeatLoop(cc *clientConn) {
	if c.hbIv <= 0 {
		return
	}
	t := time.NewTicker(c.hbIv)
	defer t.Stop()
	for {
		select {
		case <-cc.done:
			return
		case <-t.C:
		}
		if time.Since(time.Unix(0, cc.lastSend.Load())) < c.hbIv {
			continue
		}
		if err := c.sendOn(cc, func(e frameEncoder) error { return e.heartbeat() }); err != nil {
			c.connFailed(cc, err)
			return
		}
		c.met.heartbeats.Inc()
	}
}

// readLoop decodes the server stream for one connection, then hands the
// failure to connFailed. readDone is closed before connFailed runs so that
// anything waiting to take over delivery (reconnect, terminal teardown)
// knows no further callbacks can come from this connection.
func (c *Client) readLoop(cc *clientConn) {
	err := c.readFrames(cc)
	close(cc.readDone)
	c.connFailed(cc, err)
}

// readFrames decodes frames until the connection fails, returning the
// failure. The event-batch decode target is persistent: its Evs backing
// array is reused across batches (both codecs grow it only when a batch
// exceeds the previous capacity; the per-frame recycled-element zeroing
// lives in the decoders). The stream starts gob and switches to the binary
// codec at the server's tagUpgrade marker.
func (c *Client) readFrames(cc *clientConn) error {
	br := bufio.NewReaderSize(&countingReader{r: cc.conn, c: c.met.bytes}, connReadBuffer)
	var dec frameDecoder = newGobFrameDecoder(gob.NewDecoder(br))
	usingBin := false
	var batch eventBatchMsg
	fail := func(op string, err error) error {
		if connLossErr(err) {
			return err
		}
		c.met.decodeErrs.Inc()
		return &ProtocolError{Op: op, Err: err}
	}
	// Coarse deadline re-arm (see serveConn): one syscall per TO/4, not per
	// frame, stretching the effective timeout to at most 1.25×.
	var armedAt time.Time
	var armedTO time.Duration
	for {
		var to time.Duration
		if cc.proto.Load() >= protoV3 {
			to = readTimeoutFor(cc.peerHB.Load())
		} else if c.hbIv > 0 {
			// Provisional deadline until the server's hello arrives, sized
			// from our own interval: a connection blackholed right after
			// dial must not hang the read loop forever either.
			to = readTimeoutFor(int64(c.hbIv))
		}
		if to != 0 {
			if now := time.Now(); to != armedTO || now.Sub(armedAt) > to/4 {
				cc.conn.SetReadDeadline(now.Add(to))
				armedAt, armedTO = now, to
			}
		}
		tag, err := dec.readTag()
		if err != nil {
			return fail("tag", err)
		}
		if usingBin {
			c.met.codecV4Frames.Inc()
		} else {
			c.met.codecV3Frames.Inc()
		}
		switch tag {
		case tagHello:
			var h helloMsg
			if err := dec.decodeHello(&h); err != nil {
				return fail("hello", err)
			}
			cc.peerHB.Store(int64(time.Duration(h.HeartbeatMillis) * time.Millisecond))
			neg := int(h.Version)
			if neg < protoV3 {
				neg = protoV3
			}
			if neg > c.announce {
				neg = c.announce
			}
			cc.proto.Store(int32(neg))
			if neg >= protoV4 {
				// The server agreed on v4: announce our own codec switch with
				// a gob tagUpgrade marker and swap the send side to binary.
				// (The server's receive side stays gob until the marker
				// arrives, so frames already sent are unaffected.)
				if err := c.upgradeSend(cc); err != nil {
					return err
				}
			}
		case tagUpgrade:
			// The server's codec switch marker: every server→client frame
			// from here on is binary.
			dec = newBinDecoder(br)
			usingBin = true
		case tagHeartbeat:
			// Liveness only: the next loop iteration re-arms the deadline.
		case tagShutdown:
			var m shutdownMsg
			if err := dec.decodeShutdown(&m); err != nil {
				return fail("shutdown", err)
			}
			c.mu.Lock()
			c.draining = true
			c.mu.Unlock()
		case tagEventBatch:
			if err := dec.decodeEventBatch(&batch); err != nil {
				return fail("event batch", err)
			}
			c.met.frames.Inc()
			c.met.events.Add(int64(len(batch.Evs)))
			c.deliverBatch(&batch)
		case tagProgress:
			var m progressMsg
			if err := dec.decodeProgress(&m); err != nil {
				return fail("progress", err)
			}
			c.met.frames.Inc()
			if w := c.watchFor(m.ID); w != nil {
				w.resume.NoteProgress(m.P)
				w.cb.OnProgress(m.P)
			}
		case tagResync:
			var m resyncMsg
			if err := dec.decodeResync(&m); err != nil {
				return fail("resync", err)
			}
			c.met.frames.Inc()
			if w := c.watchFor(m.ID); w != nil {
				w.terminal.Store(true)
				c.met.resyncs.Inc()
				w.cb.OnResync(m.R)
			}
		case tagSnapChunk:
			var m snapChunk
			if err := dec.decodeSnapChunk(&m); err != nil {
				return fail("snapshot chunk", err)
			}
			c.met.frames.Inc()
			c.handleSnapChunk(&m)
		case tagOverloaded:
			var m overloadedMsg
			if err := dec.decodeOverloaded(&m); err != nil {
				return fail("overloaded", err)
			}
			c.met.frames.Inc()
			c.handleOverloaded(&m)
		default:
			c.met.decodeErrs.Inc()
			return &ProtocolError{Op: "tag", Err: fmt.Errorf("unknown frame tag %d", tag)}
		}
	}
}

// watchFor returns the live (non-terminal) watch for id.
func (c *Client) watchFor(id uint64) *clientWatch {
	c.mu.Lock()
	w := c.watches[id]
	c.mu.Unlock()
	if w == nil || w.terminal.Load() {
		return nil
	}
	return w
}

func (c *Client) deliverBatch(m *eventBatchMsg) {
	w := c.watchFor(m.ID)
	if w == nil {
		return
	}
	traced := c.tracer.Enabled()
	for i := range m.Evs {
		ev := m.Evs[i]
		if traced && ev.Trace != 0 {
			c.tracer.Record(ev.Trace, trace.StageRemoteDeliver)
		}
		w.resume.NoteEvent(ev)
		w.cb.OnEvent(ev)
	}
}

func (c *Client) handleSnapChunk(m *snapChunk) {
	c.mu.Lock()
	acc := c.snaps[m.ID]
	if acc == nil {
		c.mu.Unlock()
		return
	}
	if m.Err != "" {
		delete(c.snaps, m.ID)
		c.mu.Unlock()
		acc.ch <- snapResult{err: m.Err}
		return
	}
	acc.entries = append(acc.entries, m.Entries...)
	acc.at = m.At
	if !m.Last {
		c.mu.Unlock()
		return
	}
	delete(c.snaps, m.ID)
	res := snapResult{entries: acc.entries, at: acc.at}
	c.mu.Unlock()
	acc.ch <- res
}

// handleOverloaded resolves a server-side admission refusal for one request.
// A refused snapshot fails with the typed error (its caller owns the retry
// policy). A refused watch is retried here after the server's retry-after
// hint — the watch was never established server-side, so nothing else will
// revive it — unless reconnection is disabled, in which case the refusal
// degrades to the pre-resilience contract: a terminal resync.
func (c *Client) handleOverloaded(m *overloadedMsg) {
	retry := time.Duration(m.RetryAfterMillis) * time.Millisecond
	if retry <= 0 {
		retry = 100 * time.Millisecond
	}
	c.met.overloaded.Inc()
	c.mu.Lock()
	if acc := c.snaps[m.ID]; acc != nil {
		delete(c.snaps, m.ID)
		c.mu.Unlock()
		acc.ch <- snapResult{overloaded: &govern.Overloaded{RetryAfter: retry, Reason: m.Reason}}
		return
	}
	c.mu.Unlock()
	w := c.watchFor(m.ID)
	if w == nil {
		return
	}
	if !c.policy.Enabled {
		w.terminal.Store(true)
		c.met.resyncs.Inc()
		w.cb.OnResync(core.ResyncEvent{Range: w.rng, Reason: "server overloaded: " + m.Reason})
		return
	}
	// Extra jitter on top of the server's (already jittered) hint, from the
	// global source: c.jitter belongs to the reconnect loop's goroutine.
	wait := retry + time.Duration(rand.Int63n(int64(retry)/4+1))
	c.log.Warn("watch refused: server overloaded, backing off",
		"id", m.ID, "reason", m.Reason, "retry_in", wait)
	time.AfterFunc(wait, func() { c.retryWatch(w) })
}

// retryWatch re-requests one admission-refused watch from its resume point.
// No-op when the watch was cancelled, went terminal, or the client failed
// meanwhile; when the connection is down, the reconnect path re-establishes
// the watch along with the rest.
func (c *Client) retryWatch(w *clientWatch) {
	c.mu.Lock()
	if c.closed || c.failed != nil || c.watches[w.id] != w || w.terminal.Load() {
		c.mu.Unlock()
		return
	}
	cc := c.cur
	c.mu.Unlock()
	if cc == nil {
		return
	}
	req := &watchReq{ID: w.id, Low: w.rng.Low, High: w.rng.High, From: w.resume.Version()}
	if err := c.sendOn(cc, func(e frameEncoder) error { return e.watch(req) }); err != nil {
		c.connFailed(cc, err)
	}
}

// connFailed handles the loss of one connection. Exactly one caller per
// connection transitions the client: either into a reconnect (resume every
// watch on a fresh connection) or into terminal teardown (resync every
// watch, fail every snapshot). Later callers and stale connections no-op.
func (c *Client) connFailed(cc *clientConn, err error) {
	cc.die()
	c.mu.Lock()
	if c.cur != cc {
		c.mu.Unlock()
		return // stale: a newer connection (or this failure) was already handled
	}
	c.cur = nil
	c.gen++
	gen := c.gen
	closed, draining := c.closed, c.draining
	reconnect := c.policy.Enabled && !closed && !draining
	c.mu.Unlock()

	c.met.connLost.Inc()
	if errors.Is(err, os.ErrDeadlineExceeded) {
		c.met.hbMisses.Inc()
		c.rec.Record(flightrec.KindHeartbeatMiss, flightrec.Event{
			Comp: "remote.client", ID: int64(cc.gen), Detail: "server silent past heartbeat deadline",
		})
		c.log.Warn("heartbeat missed: server silent", "gen", cc.gen)
	}
	cause := ""
	if err != nil {
		cause = err.Error()
	}
	c.rec.Record(flightrec.KindRemoteDisconnect, flightrec.Event{
		Comp: "remote.client", ID: int64(cc.gen), Detail: cause,
	})
	c.log.Warn("connection lost", "gen", cc.gen, "cause", cause, "reconnect", reconnect)
	switch {
	case closed:
		c.terminate("remote: client closed", ErrClientClosed)
	case draining:
		c.terminate("remote: server draining", ErrServerDraining)
	case !reconnect:
		c.terminate("remote: connection lost: "+err.Error(), err)
	default:
		go c.reconnectLoop(gen, cc.readDone)
	}
}

// terminate delivers the terminal teardown exactly once: every non-terminal
// watch gets a final resync with the given reason, every in-flight snapshot
// fails, and the client refuses further requests with err. It waits for the
// last read loop to exit first, so terminal callbacks never race delivery.
func (c *Client) terminate(reason string, err error) {
	c.mu.Lock()
	if c.terminated {
		c.mu.Unlock()
		return
	}
	c.terminated = true
	if c.failed == nil {
		c.failed = err
	}
	last := c.lastRead
	c.mu.Unlock()
	if last != nil {
		<-last
	}

	c.mu.Lock()
	var watches []*clientWatch
	for _, w := range c.watches {
		if !w.terminal.Load() {
			w.terminal.Store(true)
			watches = append(watches, w)
		}
	}
	snaps := c.snaps
	c.snaps = map[uint64]*snapAccum{}
	c.mu.Unlock()

	if len(watches) > 0 {
		c.met.resyncs.Add(int64(len(watches)))
	}
	c.log.Warn("client terminated", "reason", reason, "watches", len(watches))
	for _, w := range watches {
		w.cb.OnResync(core.ResyncEvent{Range: w.rng, Reason: reason})
	}
	for _, acc := range snaps {
		acc.ch <- snapResult{err: reason}
	}
}

// reconnectLoop redials with exponential backoff + jitter until the retry
// budget runs out, then terminates the client. Exactly one loop is active at
// a time (connFailed spawns it only for the generation it retired), so the
// jitter source needs no lock. It first waits for the failed connection's
// read loop to exit, guaranteeing the resume points are final and no two
// goroutines ever deliver to the same callback.
func (c *Client) reconnectLoop(gen int, prevRead chan struct{}) {
	select {
	case <-prevRead:
	case <-c.ctx.Done():
		c.terminate("remote: client closed", ErrClientClosed)
		return
	}
	backoff := c.policy.BaseBackoff
	for attempt := 1; ; attempt++ {
		wait := backoff/2 + time.Duration(c.jitter.Int63n(int64(backoff/2)+1))
		select {
		case <-c.ctx.Done():
			c.terminate("remote: client closed", ErrClientClosed)
			return
		case <-time.After(wait):
		}
		c.mu.Lock()
		stale := c.closed || c.gen != gen
		c.mu.Unlock()
		if stale {
			return
		}
		conn, err := c.dialer(c.addr)
		if err == nil {
			if err = c.resume(gen, conn); err == nil {
				return
			}
			conn.Close()
		}
		c.met.reconnectFails.Inc()
		if c.policy.MaxAttempts >= 0 && attempt >= c.policy.MaxAttempts {
			c.terminate(
				fmt.Sprintf("remote: connection lost; reconnect gave up after %d attempts: %v", attempt, err),
				fmt.Errorf("%w after %d attempts: %v", ErrReconnectBudget, attempt, err))
			return
		}
		if backoff *= 2; backoff > c.policy.MaxBackoff {
			backoff = c.policy.MaxBackoff
		}
	}
}

// resume installs conn as the new current connection and re-establishes the
// client's logical state on it: hello, then every live watch from its resume
// point, then every pending snapshot from scratch. Watch IDs are reused, so
// server-side multiplexing, client metrics and trace stages all continue as
// if the connection had never dropped.
func (c *Client) resume(gen int, conn net.Conn) error {
	c.mu.Lock()
	if c.closed || c.gen != gen {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.gen++
	cc := &clientConn{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 4<<10),
		gen:      c.gen,
		done:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
	cc.enc = newGobFrameEncoder(gob.NewEncoder(cc.bw))
	c.cur = cc
	c.lastRead = cc.readDone
	gen = c.gen
	var watches []*clientWatch
	for _, w := range c.watches {
		if !w.terminal.Load() {
			watches = append(watches, w)
		}
	}
	var snaps []*snapAccum
	snapIDs := make([]uint64, 0, len(c.snaps))
	for id, acc := range c.snaps {
		acc.entries = nil // restart accumulation: the old stream died mid-way
		acc.at = 0
		snaps = append(snaps, acc)
		snapIDs = append(snapIDs, id)
	}
	c.mu.Unlock()

	if err := c.handshake(cc); err != nil {
		c.dropConn(cc)
		return err
	}
	for _, w := range watches {
		from := w.resume.Version()
		req := &watchReq{ID: w.id, Low: w.rng.Low, High: w.rng.High, From: from}
		if err := c.sendOn(cc, func(e frameEncoder) error { return e.watch(req) }); err != nil {
			c.dropConn(cc)
			return err
		}
		c.met.resumedWatches.Inc()
		c.rec.Record(flightrec.KindRemoteResume, flightrec.Event{
			Comp: "remote.client", ID: int64(w.id), Version: uint64(from),
		})
	}
	for i, acc := range snaps {
		req := &snapshotReq{ID: snapIDs[i], Low: acc.rng.Low, High: acc.rng.High}
		if err := c.sendOn(cc, func(e frameEncoder) error { return e.snapshot(req) }); err != nil {
			c.dropConn(cc)
			return err
		}
	}
	c.met.reconnects.Inc()
	c.rec.Record(flightrec.KindRemoteReconnect, flightrec.Event{
		Comp: "remote.client", ID: int64(cc.gen), N: int64(len(watches)),
	})
	c.log.Info("reconnected", "gen", cc.gen, "watches_resumed", len(watches), "snapshots_restarted", len(snaps))
	c.startConn(cc)
	return nil
}

// dropConn retires a connection that failed during resume, before its read
// loop ever started: the caller (the reconnect loop) keeps driving recovery.
func (c *Client) dropConn(cc *clientConn) {
	cc.die()
	close(cc.readDone)
	c.mu.Lock()
	if c.cur == cc {
		c.cur = nil
		c.gen++
	}
	c.mu.Unlock()
}

// Watch implements core.Watchable over the wire. With reconnection enabled
// the watch survives connection loss transparently (resuming from its last
// delivered/progress version); it fails over to an explicit resync only when
// the server cannot supply the gap, the reconnect budget runs out, or the
// server drains.
func (c *Client) Watch(r keyspace.Range, from core.Version, cb core.WatchCallback) (core.Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", core.ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", core.ErrBadWatch, r)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: watch: %w", err)
	}
	c.nextID++
	id := c.nextID
	w := &clientWatch{id: id, rng: r, cb: cb}
	w.resume.Reset(from)
	c.watches[id] = w
	cc := c.cur
	c.mu.Unlock()

	if cc != nil {
		req := &watchReq{ID: id, Low: r.Low, High: r.High, From: from}
		if err := c.sendOn(cc, func(e frameEncoder) error { return e.watch(req) }); err != nil {
			if !c.policy.Enabled {
				c.mu.Lock()
				delete(c.watches, id)
				c.mu.Unlock()
				return nil, fmt.Errorf("remote: watch: %w", err)
			}
			// The connection is dying; the reconnect path re-establishes
			// this watch along with the rest.
			c.connFailed(cc, err)
		}
	}
	// cc == nil: a reconnect is in flight and will establish the watch.
	c.met.watches.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			delete(c.watches, id)
			cc := c.cur
			c.mu.Unlock()
			if cc != nil {
				_ = c.sendOn(cc, func(e frameEncoder) error { return e.cancelWatch(&cancelReq{ID: id}) })
			}
		})
	}, nil
}

// SnapshotRange implements core.Snapshotter over the wire: the recovery read
// travels through the same connection, so a consumer needs only the client.
// The response arrives as bounded chunks reassembled here. With reconnection
// enabled the request is re-issued on a fresh connection if the current one
// dies mid-stream; it fails only on terminal client failure.
func (c *Client) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	acc := &snapAccum{rng: r, ch: make(chan snapResult, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("remote: snapshot: %w", err)
	}
	c.nextID++
	id := c.nextID
	c.snaps[id] = acc
	cc := c.cur
	c.mu.Unlock()

	if cc != nil {
		req := &snapshotReq{ID: id, Low: r.Low, High: r.High}
		if err := c.sendOn(cc, func(e frameEncoder) error { return e.snapshot(req) }); err != nil {
			if !c.policy.Enabled {
				c.mu.Lock()
				delete(c.snaps, id)
				c.mu.Unlock()
				return nil, 0, fmt.Errorf("remote: snapshot: %w", err)
			}
			c.connFailed(cc, err)
		}
	}
	c.met.snapshots.Inc()
	res, ok := <-acc.ch
	if !ok {
		return nil, 0, fmt.Errorf("remote: snapshot: %w", io.ErrUnexpectedEOF)
	}
	if res.overloaded != nil {
		return nil, 0, fmt.Errorf("remote: snapshot: %w", res.overloaded)
	}
	if res.err != "" {
		return nil, 0, fmt.Errorf("remote: snapshot: %s", res.err)
	}
	return res.entries, res.at, nil
}

// Close drops the connection and stops any reconnect in flight; active
// watches receive a final resync. Safe to call at any point, including
// mid-dial and mid-decode: the read loop owns delivery until it exits, and
// the terminal callbacks run only after it has.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cc := c.cur
	c.mu.Unlock()
	c.cancelCtx()
	if cc != nil {
		cc.die() // the read loop fails next and routes into terminate
	} else {
		// Disconnected (reconnect was in flight): nothing will fail on our
		// behalf, deliver the terminal teardown directly.
		c.met.connLost.Inc()
		c.terminate("remote: client closed", ErrClientClosed)
	}
}
