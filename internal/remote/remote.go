// Package remote serves the watch contract over a network: a Server
// exposes any core.Watchable + core.Snapshotter on a TCP listener, and a
// Client implements the same interfaces against it, so entire consumer
// stacks (caches, replicas, workers) run unchanged against a remote watch
// system — the "standalone watch system" of the paper's §5 made standalone
// in fact.
//
// The wire protocol is tag-framed gob over one connection per client (see
// protocol.go): requests flow client→server (watch, cancel, snapshot);
// event batches, progress, resyncs and snapshot chunks flow back,
// multiplexed by watch ID. The transport never flattens the batched feed:
// each contiguous run of events the watch system drains for one watch
// crosses the wire as one EventBatch frame, the per-connection writer
// coalesces flushes (flush on queue-empty or a small linger, not per
// frame), and encode/decode buffers are pooled, so the per-event syscall
// and allocation costs of the old protocol are gone.
//
// A write stall for one slow client cannot wedge the watch system: frames
// queue in a bounded per-connection outbox (accounted in events, not
// frames) and overflow converts each of the client's watches into a resync
// — the same lag-or-resync contract the hub itself provides (§4.4),
// applied at the transport layer. Snapshot responses stream as bounded
// chunks with their own flow control, so a large recovery read neither
// triggers that overflow nor materializes unbounded memory on either end.
package remote

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// Transport tuning. These are compile-time constants: the protocol works at
// any value, the numbers only trade latency against batching.
const (
	// outboundLimit bounds a connection's outbox in queued change events
	// (progress frames count as one each); beyond it the client's watches
	// are resynced rather than buffered without bound. Resync and snapshot
	// frames are exempt — they are the recovery path.
	outboundLimit = 8192
	// connWriteBuffer is the bufio.Writer size in front of each server
	// socket; under sustained backlog it turns many small frames into few
	// large writes.
	connWriteBuffer = 64 << 10
	// connReadBuffer is the read-side bufio size on both ends.
	connReadBuffer = 32 << 10
	// flushLinger is how long encoded frames may sit unflushed while the
	// writer keeps draining; the queue-empty flush usually wins well before
	// this deadline.
	flushLinger = 500 * time.Microsecond
	// snapChunkEntries and snapChunkBytes bound one snapshot chunk —
	// whichever is reached first closes the chunk.
	snapChunkEntries = 1024
	snapChunkBytes   = 256 << 10
	// snapBacklogBytes bounds the snapshot-chunk bytes queued in one
	// connection's outbox; the snapshot streamer blocks (it runs on its own
	// goroutine) until the writer drains below it.
	snapBacklogBytes = 1 << 20
)

// serverMetrics holds the server-side transport instruments, resolved once at
// Serve so the per-frame paths stay atomic-only. Instruments are created on
// first use and shared by name, so resolving the same registry twice (two
// servers, or a server restart) accumulates into the same counters — there is
// no duplicate registration and no count reset.
type serverMetrics struct {
	conns           *metrics.Counter
	overflowResyncs *metrics.Counter
	watchRejects    *metrics.Counter
	frames          *metrics.Counter // wire messages encoded (batch = 1 frame)
	bytes           *metrics.Counter // bytes written to client sockets
	events          *metrics.Counter // change events sent inside event frames
	snapChunks      *metrics.Counter // snapshot response chunks streamed
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	reg = reg.Or()
	return serverMetrics{
		conns:           reg.Counter("remote_server_conns_total"),
		overflowResyncs: reg.Counter("remote_server_overflow_resyncs_total"),
		watchRejects:    reg.Counter("remote_server_watch_rejects_total"),
		frames:          reg.Counter("remote_server_frames_total"),
		bytes:           reg.Counter("remote_server_bytes_total"),
		events:          reg.Counter("remote_server_events_total"),
		snapChunks:      reg.Counter("remote_server_snap_chunks_total"),
	}
}

// clientMetrics holds the client-side transport instruments (same sharing
// semantics as serverMetrics: per-Dial resolution from one registry lands on
// the same counters across reconnects).
type clientMetrics struct {
	connLost  *metrics.Counter
	watches   *metrics.Counter
	snapshots *metrics.Counter
	resyncs   *metrics.Counter
	frames    *metrics.Counter // wire messages decoded
	bytes     *metrics.Counter // bytes read from the server socket
	events    *metrics.Counter // change events received inside event frames
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	reg = reg.Or()
	return clientMetrics{
		connLost:  reg.Counter("remote_client_conn_lost_total"),
		watches:   reg.Counter("remote_client_watches_total"),
		snapshots: reg.Counter("remote_client_snapshots_total"),
		resyncs:   reg.Counter("remote_client_resyncs_total"),
		frames:    reg.Counter("remote_client_frames_total"),
		bytes:     reg.Counter("remote_client_bytes_total"),
		events:    reg.Counter("remote_client_events_total"),
	}
}

// ServerConfig tunes a Server beyond its defaults.
type ServerConfig struct {
	// Metrics is the registry the server's instruments resolve from; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, when non-nil, stamps trace.StageRemoteEnqueue as traced events
	// enter a connection's outbound queue. Wire the same tracer into the
	// source store / hub for end-to-end remote traces.
	Tracer *trace.Tracer
}

// Server exposes a watch system and its recovery snapshots on a listener.
type Server struct {
	watch  core.Watchable
	snap   core.Snapshotter
	ln     net.Listener
	tracer *trace.Tracer

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	met    serverMetrics
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with default
// configuration. The returned server is already accepting; Addr reports the
// bound address.
func Serve(addr string, watch core.Watchable, snap core.Snapshotter) (*Server, error) {
	return ServeWith(addr, watch, snap, ServerConfig{})
}

// ServeWith starts a server with explicit configuration.
func ServeWith(addr string, watch core.Watchable, snap core.Snapshotter, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen: %w", err)
	}
	s := &Server{
		watch:  watch,
		snap:   snap,
		ln:     ln,
		tracer: cfg.Tracer,
		conns:  make(map[net.Conn]struct{}),
		met:    newServerMetrics(cfg.Metrics),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// outFrame is one queued outbound message; tag selects which payload field
// is live. Event batches hold a pooled slice released after encode.
type outFrame struct {
	tag       uint8
	id        uint64
	evs       *[]core.ChangeEvent // tagEventBatch
	prog      core.ProgressEvent  // tagProgress
	resync    core.ResyncEvent    // tagResync
	chunk     *snapChunk          // tagSnapChunk
	chunkSize int                 // approx payload bytes, for snapshot flow control
}

// serverConn is the per-connection state: a bounded outbound queue drained
// by one writer goroutine, and the active watches.
type serverConn struct {
	conn   net.Conn
	met    serverMetrics
	tracer *trace.Tracer

	mu         sync.Mutex
	cond       *sync.Cond // wakes the writer when the queue fills
	spaceCond  *sync.Cond // wakes snapshot streamers when chunk backlog drains
	queue      []outFrame
	queuedEvs  int // change events (and progress frames) queued, vs outboundLimit
	chunkBytes int // snapshot chunk payload bytes queued, vs snapBacklogBytes
	dead       bool
	watches    map[uint64]serverWatch
}

type serverWatch struct {
	cancel core.Cancel
	rng    keyspace.Range
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	sc := &serverConn{conn: conn, met: s.met, tracer: s.tracer, watches: make(map[uint64]serverWatch)}
	sc.cond = sync.NewCond(&sc.mu)
	sc.spaceCond = sync.NewCond(&sc.mu)
	s.met.conns.Inc()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sc.writeLoop()
	}()

	dec := gob.NewDecoder(bufio.NewReaderSize(conn, connReadBuffer))
	for {
		var tag uint8
		if err := dec.Decode(&tag); err != nil {
			break // client gone (or sent garbage): tear the connection down
		}
		if !s.handleRequest(sc, dec, tag) {
			break
		}
	}
	// Reader done: cancel watches, stop the writer, drop the connection.
	sc.mu.Lock()
	watches := sc.watches
	sc.watches = map[uint64]serverWatch{}
	sc.dead = true
	sc.cond.Broadcast()
	sc.spaceCond.Broadcast()
	sc.mu.Unlock()
	for _, w := range watches {
		w.cancel()
	}
	conn.Close()
	writerWG.Wait()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleRequest decodes and dispatches one client request; false tears the
// connection down.
func (s *Server) handleRequest(sc *serverConn, dec *gob.Decoder, tag uint8) bool {
	switch tag {
	case tagWatch:
		var req watchReq
		if dec.Decode(&req) != nil {
			return false
		}
		s.handleWatch(sc, req)
	case tagCancel:
		var req cancelReq
		if dec.Decode(&req) != nil {
			return false
		}
		sc.mu.Lock()
		w, ok := sc.watches[req.ID]
		delete(sc.watches, req.ID)
		sc.mu.Unlock()
		if ok {
			w.cancel()
		}
	case tagSnapshot:
		var req snapshotReq
		if dec.Decode(&req) != nil {
			return false
		}
		// Stream on a dedicated goroutine so the reader keeps serving
		// cancels (and further requests) while a large snapshot drains.
		s.wg.Add(1)
		go s.streamSnapshot(sc, req)
	default:
		return false // protocol violation
	}
	return true
}

// connWatchSink feeds one watch's stream into the connection outbox. It
// implements core.EventBatchCallback, so the hub's dispatch loop hands whole
// ring-drain batches straight through to the wire.
type connWatchSink struct {
	sc *serverConn
	id uint64
}

func (cs connWatchSink) OnEvent(ev core.ChangeEvent) {
	evs := [1]core.ChangeEvent{ev}
	cs.sc.sendEvents(cs.id, evs[:])
}

func (cs connWatchSink) OnEventBatch(evs []core.ChangeEvent) { cs.sc.sendEvents(cs.id, evs) }

func (cs connWatchSink) OnProgress(p core.ProgressEvent) { cs.sc.sendProgress(cs.id, p) }

func (cs connWatchSink) OnResync(r core.ResyncEvent) { cs.sc.sendResync(cs.id, r) }

func (s *Server) handleWatch(sc *serverConn, req watchReq) {
	r := keyspace.Range{Low: req.Low, High: req.High}
	cancel, err := s.watch.Watch(r, req.From, connWatchSink{sc: sc, id: req.ID})
	if err != nil {
		// Report the failure as an immediate resync carrying the reason;
		// the consumer's recovery path handles it uniformly.
		s.met.watchRejects.Inc()
		sc.sendResync(req.ID, core.ResyncEvent{Range: r, Reason: "watch rejected: " + err.Error()})
		return
	}
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		cancel()
		return
	}
	sc.watches[req.ID] = serverWatch{cancel: cancel, rng: r}
	sc.mu.Unlock()
}

// sendEvents copies one batch into a pooled slice and enqueues it as a
// single event-batch frame. Overflow (measured in queued events, so a giant
// batch cannot sneak past a frame-count bound) lags the whole connection out.
func (sc *serverConn) sendEvents(id uint64, evs []core.ChangeEvent) {
	if len(evs) == 0 {
		return
	}
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		return
	}
	if sc.queuedEvs+len(evs) > outboundLimit {
		sc.overflowLocked()
		sc.mu.Unlock()
		return
	}
	p := getEvs(len(evs))
	*p = append(*p, evs...)
	sc.queue = append(sc.queue, outFrame{tag: tagEventBatch, id: id, evs: p})
	sc.queuedEvs += len(evs)
	if sc.tracer.Enabled() {
		for i := range evs {
			if evs[i].Trace != 0 {
				sc.tracer.Record(evs[i].Trace, trace.StageRemoteEnqueue)
			}
		}
	}
	sc.cond.Signal()
	sc.mu.Unlock()
}

func (sc *serverConn) sendProgress(id uint64, p core.ProgressEvent) {
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		return
	}
	if sc.queuedEvs+1 > outboundLimit {
		sc.overflowLocked()
		sc.mu.Unlock()
		return
	}
	sc.queue = append(sc.queue, outFrame{tag: tagProgress, id: id, prog: p})
	sc.queuedEvs++
	sc.cond.Signal()
	sc.mu.Unlock()
}

// sendResync enqueues unconditionally: resyncs are the contract's loss
// signal and are never dropped by the bound they enforce.
func (sc *serverConn) sendResync(id uint64, r core.ResyncEvent) {
	sc.mu.Lock()
	if !sc.dead {
		sc.queue = append(sc.queue, outFrame{tag: tagResync, id: id, resync: r})
		sc.cond.Signal()
	}
	sc.mu.Unlock()
}

// overflowLocked converts the connection's backlog into per-watch resyncs:
// queued event and progress frames are dropped (their watches are being
// resynced anyway), while queued resyncs and snapshot chunks survive — the
// recovery path must not be starved by the overflow it heals. Caller holds
// sc.mu.
func (sc *serverConn) overflowLocked() {
	sc.met.overflowResyncs.Add(int64(len(sc.watches)))
	kept := make([]outFrame, 0, len(sc.watches)+4)
	for id, w := range sc.watches {
		kept = append(kept, outFrame{tag: tagResync, id: id, resync: core.ResyncEvent{
			Range:  w.rng,
			Reason: "remote: connection outbound buffer overflow",
		}})
	}
	for i := range sc.queue {
		f := &sc.queue[i]
		switch f.tag {
		case tagResync, tagSnapChunk:
			kept = append(kept, *f)
		case tagEventBatch:
			putEvs(f.evs)
		}
		sc.queue[i] = outFrame{}
	}
	sc.queue = kept
	sc.queuedEvs = 0
	sc.cond.Signal()
}

// streamSnapshot reads the range snapshot and streams it as bounded chunks,
// blocking on the connection's chunk-backlog bound rather than queueing the
// whole result. Runs on its own goroutine, tracked by the server waitgroup.
func (s *Server) streamSnapshot(sc *serverConn, req snapshotReq) {
	defer s.wg.Done()
	entries, at, err := s.snap.SnapshotRange(keyspace.Range{Low: req.Low, High: req.High})
	if err != nil {
		sc.sendChunk(&snapChunk{ID: req.ID, Err: err.Error(), Last: true}, len(err.Error())+32)
		return
	}
	off := 0
	for {
		n, size := 0, 0
		for off+n < len(entries) && n < snapChunkEntries && size < snapChunkBytes {
			e := &entries[off+n]
			size += len(e.Key) + len(e.Value) + 16
			n++
		}
		chunk := &snapChunk{
			ID:      req.ID,
			Entries: entries[off : off+n],
			At:      at,
			Last:    off+n == len(entries),
		}
		if !sc.sendChunk(chunk, size+32) || chunk.Last {
			return
		}
		off += n
	}
}

// sendChunk enqueues one snapshot chunk, waiting while the connection's
// queued chunk bytes exceed snapBacklogBytes. Returns false once the
// connection is dead.
func (sc *serverConn) sendChunk(ch *snapChunk, size int) bool {
	sc.mu.Lock()
	for !sc.dead && sc.chunkBytes > snapBacklogBytes {
		sc.spaceCond.Wait()
	}
	if sc.dead {
		sc.mu.Unlock()
		return false
	}
	sc.queue = append(sc.queue, outFrame{tag: tagSnapChunk, id: ch.ID, chunk: ch, chunkSize: size})
	sc.chunkBytes += size
	sc.cond.Signal()
	sc.mu.Unlock()
	return true
}

// markDead tears the connection's write side down and wakes every waiter.
func (sc *serverConn) markDead() {
	sc.mu.Lock()
	sc.dead = true
	sc.cond.Broadcast()
	sc.spaceCond.Broadcast()
	sc.mu.Unlock()
	sc.conn.Close()
}

// writeLoop drains the outbox through one buffered gob stream. Flush policy:
// flush when the queue runs empty (the common low-load case, giving
// per-batch latency), or when encoded frames have lingered past flushLinger
// under sustained backlog; bufio additionally writes through whenever the
// buffer fills. The result is a few large socket writes instead of one small
// write per event.
func (sc *serverConn) writeLoop() {
	bw := bufio.NewWriterSize(&countingWriter{w: sc.conn, c: sc.met.bytes}, connWriteBuffer)
	enc := gob.NewEncoder(bw)
	var local []outFrame
	var lastFlush time.Time
	flush := func() bool {
		if err := bw.Flush(); err != nil {
			sc.markDead()
			return false
		}
		lastFlush = time.Now()
		return true
	}
	for {
		sc.mu.Lock()
		if len(sc.queue) == 0 && !sc.dead && bw.Buffered() > 0 {
			// Queue drained: flush what the last rounds encoded before
			// sleeping, so the tail of a burst is never held hostage by the
			// linger.
			sc.mu.Unlock()
			if !flush() {
				return
			}
			sc.mu.Lock()
		}
		for len(sc.queue) == 0 && !sc.dead {
			sc.cond.Wait()
		}
		if sc.dead {
			sc.mu.Unlock()
			return
		}
		local, sc.queue = sc.queue, local[:0]
		sc.queuedEvs = 0
		sc.mu.Unlock()

		for i := range local {
			f := &local[i]
			err := enc.Encode(f.tag)
			if err == nil {
				switch f.tag {
				case tagEventBatch:
					m := eventBatchMsg{ID: f.id, Evs: *f.evs}
					err = enc.Encode(&m)
				case tagProgress:
					m := progressMsg{ID: f.id, P: f.prog}
					err = enc.Encode(&m)
				case tagResync:
					m := resyncMsg{ID: f.id, R: f.resync}
					err = enc.Encode(&m)
				case tagSnapChunk:
					err = enc.Encode(f.chunk)
				}
			}
			if err != nil {
				sc.markDead()
				return
			}
			sc.met.frames.Inc()
			switch f.tag {
			case tagEventBatch:
				sc.met.events.Add(int64(len(*f.evs)))
				putEvs(f.evs)
			case tagSnapChunk:
				sc.met.snapChunks.Inc()
				sc.mu.Lock()
				sc.chunkBytes -= f.chunkSize
				sc.spaceCond.Signal()
				sc.mu.Unlock()
			}
			local[i] = outFrame{}
			if bw.Buffered() > 0 && time.Since(lastFlush) > flushLinger {
				if !flush() {
					return
				}
			}
		}
	}
}

// Close stops accepting, drops every connection and cancels their watches.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client errors.
var (
	ErrClientClosed = errors.New("remote: client closed")
)

// ClientConfig tunes a Client beyond its defaults.
type ClientConfig struct {
	// Metrics is the registry the client's instruments resolve from; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, when non-nil, stamps trace.StageRemoteDeliver as traced events
	// are handed to the consumer callback.
	Tracer *trace.Tracer
}

// snapResult resolves one in-flight snapshot request.
type snapResult struct {
	entries []core.Entry
	at      core.Version
	err     string
}

// snapAccum accumulates a streamed snapshot's chunks until Last.
type snapAccum struct {
	entries []core.Entry
	at      core.Version
	ch      chan snapResult
}

// Client implements core.Watchable and core.Snapshotter against a Server.
type Client struct {
	conn   net.Conn
	bw     *bufio.Writer
	enc    *gob.Encoder
	met    clientMetrics
	tracer *trace.Tracer

	mu      sync.Mutex
	encMu   sync.Mutex
	nextID  uint64
	watches map[uint64]core.WatchCallback
	snaps   map[uint64]*snapAccum
	closed  bool
	readErr error
}

var (
	_ core.Watchable   = (*Client)(nil)
	_ core.Snapshotter = (*Client)(nil)
)

// Dial connects to a Server with default configuration.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientConfig{})
}

// DialWith connects to a Server with explicit configuration.
func DialWith(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial: %w", err)
	}
	bw := bufio.NewWriterSize(conn, 4<<10)
	c := &Client{
		conn:    conn,
		bw:      bw,
		enc:     gob.NewEncoder(bw),
		met:     newClientMetrics(cfg.Metrics),
		tracer:  cfg.Tracer,
		watches: make(map[uint64]core.WatchCallback),
		snaps:   make(map[uint64]*snapAccum),
	}
	go c.readLoop()
	return c, nil
}

// readLoop decodes the server stream. The event-batch decode target is
// persistent: its Evs backing array is reused across batches (gob grows it
// only when a batch exceeds the previous capacity). Every recycled element is
// zeroed before decoding — gob leaves absent fields untouched, so reuse
// without clearing would leak one event's Value or Trace into the next — and
// zeroing Value forces gob to allocate fresh byte slices, which consumers are
// allowed to retain.
func (c *Client) readLoop() {
	dec := gob.NewDecoder(bufio.NewReaderSize(&countingReader{r: c.conn, c: c.met.bytes}, connReadBuffer))
	var batch eventBatchMsg
	for {
		var tag uint8
		if err := dec.Decode(&tag); err != nil {
			c.fail(err)
			return
		}
		var err error
		switch tag {
		case tagEventBatch:
			for i := range batch.Evs {
				batch.Evs[i] = core.ChangeEvent{}
			}
			batch.ID = 0
			batch.Evs = batch.Evs[:0]
			if err = dec.Decode(&batch); err == nil {
				c.met.frames.Inc()
				c.met.events.Add(int64(len(batch.Evs)))
				c.deliverBatch(&batch)
			}
		case tagProgress:
			var m progressMsg
			if err = dec.Decode(&m); err == nil {
				c.met.frames.Inc()
				if cb := c.callback(m.ID); cb != nil {
					cb.OnProgress(m.P)
				}
			}
		case tagResync:
			var m resyncMsg
			if err = dec.Decode(&m); err == nil {
				c.met.frames.Inc()
				if cb := c.callback(m.ID); cb != nil {
					c.met.resyncs.Inc()
					cb.OnResync(m.R)
				}
			}
		case tagSnapChunk:
			var m snapChunk
			if err = dec.Decode(&m); err == nil {
				c.met.frames.Inc()
				c.handleSnapChunk(&m)
			}
		default:
			err = fmt.Errorf("remote: unknown frame tag %d", tag)
		}
		if err != nil {
			c.fail(err)
			return
		}
	}
}

func (c *Client) deliverBatch(m *eventBatchMsg) {
	cb := c.callback(m.ID)
	if cb == nil {
		return
	}
	traced := c.tracer.Enabled()
	for i := range m.Evs {
		ev := m.Evs[i]
		if traced && ev.Trace != 0 {
			c.tracer.Record(ev.Trace, trace.StageRemoteDeliver)
		}
		cb.OnEvent(ev)
	}
}

func (c *Client) handleSnapChunk(m *snapChunk) {
	c.mu.Lock()
	acc := c.snaps[m.ID]
	if acc == nil {
		c.mu.Unlock()
		return
	}
	if m.Err != "" {
		delete(c.snaps, m.ID)
		c.mu.Unlock()
		acc.ch <- snapResult{err: m.Err}
		return
	}
	acc.entries = append(acc.entries, m.Entries...)
	acc.at = m.At
	if !m.Last {
		c.mu.Unlock()
		return
	}
	delete(c.snaps, m.ID)
	res := snapResult{entries: acc.entries, at: acc.at}
	c.mu.Unlock()
	acc.ch <- res
}

// fail tears the client down: every active watch receives a resync telling
// its consumer to recover through a new client — a connection loss is loss
// of soft state, nothing more.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	watches := c.watches
	c.watches = map[uint64]core.WatchCallback{}
	snaps := c.snaps
	c.snaps = map[uint64]*snapAccum{}
	c.mu.Unlock()
	c.met.connLost.Inc()
	c.met.resyncs.Add(int64(len(watches)))
	for _, cb := range watches {
		cb.OnResync(core.ResyncEvent{Range: keyspace.Full(), Reason: "remote: connection lost: " + err.Error()})
	}
	for _, acc := range snaps {
		close(acc.ch)
	}
}

func (c *Client) callback(id uint64) core.WatchCallback {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watches[id]
}

// send encodes one request and flushes immediately: client→server traffic is
// sparse control flow, not the hot path.
func (c *Client) send(tag uint8, payload any) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := c.enc.Encode(tag); err != nil {
		return err
	}
	if err := c.enc.Encode(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Watch implements core.Watchable over the wire.
func (c *Client) Watch(r keyspace.Range, from core.Version, cb core.WatchCallback) (core.Cancel, error) {
	if cb == nil {
		return nil, fmt.Errorf("%w: nil callback", core.ErrBadWatch)
	}
	if r.Empty() {
		return nil, fmt.Errorf("%w: empty range %v", core.ErrBadWatch, r)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.watches[id] = cb
	c.mu.Unlock()

	if err := c.send(tagWatch, &watchReq{ID: id, Low: r.Low, High: r.High, From: from}); err != nil {
		c.mu.Lock()
		delete(c.watches, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: watch: %w", err)
	}
	c.met.watches.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			delete(c.watches, id)
			c.mu.Unlock()
			_ = c.send(tagCancel, &cancelReq{ID: id})
		})
	}, nil
}

// SnapshotRange implements core.Snapshotter over the wire: the recovery read
// travels through the same connection, so a consumer needs only the client.
// The response arrives as bounded chunks reassembled here.
func (c *Client) SnapshotRange(r keyspace.Range) ([]core.Entry, core.Version, error) {
	acc := &snapAccum{ch: make(chan snapResult, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.snaps[id] = acc
	c.mu.Unlock()

	if err := c.send(tagSnapshot, &snapshotReq{ID: id, Low: r.Low, High: r.High}); err != nil {
		c.mu.Lock()
		delete(c.snaps, id)
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("remote: snapshot: %w", err)
	}
	c.met.snapshots.Inc()
	res, ok := <-acc.ch
	if !ok {
		return nil, 0, fmt.Errorf("remote: snapshot: %w", io.ErrUnexpectedEOF)
	}
	if res.err != "" {
		return nil, 0, fmt.Errorf("remote: snapshot: %s", res.err)
	}
	return res.entries, res.at, nil
}

// Close drops the connection; active watches receive a final resync.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
}
