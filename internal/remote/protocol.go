package remote

import (
	"fmt"
	"io"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Wire protocol (v3, batched + liveness): every message is a one-byte tag
// followed by its payload, both encoded on a single gob stream per direction.
// Tag-first framing lets each side decode into a type-specific target — which
// is what makes decode-buffer reuse possible — instead of a union struct whose
// unused pointer fields gob must consider on every message.
//
// Client → server: tagHello, tagWatch, tagCancel, tagSnapshot, tagHeartbeat.
// Server → client: tagHello, tagEventBatch, tagProgress, tagResync,
// tagSnapChunk, tagHeartbeat, tagShutdown.
//
// v2 carried a whole ring-drain's worth of events per watch in one
// tagEventBatch frame and streamed snapshot responses as bounded tagSnapChunk
// frames. v3 adds the liveness layer: a v3 client opens the stream with
// tagHello announcing its version and heartbeat interval, the server replies
// in kind, and both ends then (a) send tagHeartbeat on an idle stream and (b)
// arm read deadlines sized to the peer's announced interval, so a half-open
// connection is detected in O(heartbeat interval) instead of hanging forever.
// tagShutdown is the graceful-drain marker: the server sends it after the
// terminal per-watch resyncs so clients can tell "server going away" (do not
// reconnect) from "network died" (reconnect and resume).
//
// Negotiation is first-frame based, so v2 peers keep working: a client that
// never sends tagHello is treated as v2 — no heartbeats, no read deadline, no
// shutdown marker on that connection.
const (
	tagWatch uint8 = iota + 1
	tagCancel
	tagSnapshot
	tagEventBatch
	tagProgress
	tagResync
	tagSnapChunk
	tagHello
	tagHeartbeat
	tagShutdown
)

// Protocol versions. protoV2 is the batched pre-liveness protocol (no hello
// exchanged); protoV3 adds hello/heartbeat/shutdown frames.
const (
	protoV2 = 2
	protoV3 = 3
)

// helloMsg opens a v3 stream in each direction: the sender's protocol
// version and the interval at which it will emit heartbeats on an idle
// stream. The receiver sizes its read deadline from HeartbeatMillis, so the
// two ends never need to agree on one global interval.
type helloMsg struct {
	Version         uint32
	HeartbeatMillis int64
}

// shutdownMsg is the graceful-drain marker (v3 only). It follows the terminal
// per-watch resync frames; after it the server flushes and closes.
type shutdownMsg struct {
	Reason string
}

// ProtocolError reports a wire-level violation: a corrupt frame, an unknown
// tag, or a payload gob refuses to decode. It is terminal for the connection
// it occurred on — the stream position is unrecoverable after a failed
// decode — and is counted in remote_{server,client}_decode_errors_total.
type ProtocolError struct {
	Op  string // what was being decoded ("tag", "watch request", ...)
	Err error
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("remote: protocol error decoding %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying decode error.
func (e *ProtocolError) Unwrap() error { return e.Err }

type watchReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
	From core.Version
}

type cancelReq struct{ ID uint64 }

type snapshotReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
}

// eventBatchMsg carries one contiguous run of change events for one watch —
// the unit the hub's dispatch loop hands over via core.EventBatchCallback,
// preserved across the wire instead of flattened into per-event frames.
type eventBatchMsg struct {
	ID  uint64
	Evs []core.ChangeEvent
}

type progressMsg struct {
	ID uint64
	P  core.ProgressEvent
}

type resyncMsg struct {
	ID uint64
	R  core.ResyncEvent
}

// snapChunk is one bounded slice of a streamed snapshot response. The client
// accumulates Entries across chunks until Last; Err (with Last=true) aborts
// the snapshot. At repeats the snapshot version on every chunk.
type snapChunk struct {
	ID      uint64
	Entries []core.Entry
	At      core.Version
	Err     string
	Last    bool
}

// evsPool recycles the event slices that carry batches from the hub's
// dispatch goroutine into a connection's outbound queue. A pooled slice is
// cleared before reuse so no event payload outlives its frame.
var evsPool = sync.Pool{
	New: func() any {
		s := make([]core.ChangeEvent, 0, 64)
		return &s
	},
}

func getEvs(n int) *[]core.ChangeEvent {
	p := evsPool.Get().(*[]core.ChangeEvent)
	if cap(*p) < n {
		*p = make([]core.ChangeEvent, 0, n)
	}
	return p
}

func putEvs(p *[]core.ChangeEvent) {
	s := (*p)[:cap(*p)]
	for i := range s {
		s[i] = core.ChangeEvent{} // release Value/Key refs held by the pool
	}
	*p = s[:0]
	evsPool.Put(p)
}

// countingWriter counts bytes that actually reach the underlying socket (it
// sits below any buffering, so the counter reflects wire traffic).
type countingWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(int64(n))
	}
	return n, err
}

// countingReader mirrors countingWriter on the receive side.
type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(int64(n))
	}
	return n, err
}
