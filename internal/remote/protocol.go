package remote

import (
	"fmt"
	"io"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Wire protocol (v4, batched + liveness + binary codec): every message is a
// tag-first frame. The tag set is shared by both codecs; what changes between
// protocol versions is how the payload bytes are produced.
//
// Client → server: tagHello, tagWatch, tagCancel, tagSnapshot, tagHeartbeat,
// tagUpgrade. Server → client: tagHello, tagEventBatch, tagProgress,
// tagResync, tagSnapChunk, tagHeartbeat, tagShutdown, tagUpgrade.
//
// v2 carried a whole ring-drain's worth of events per watch in one
// tagEventBatch frame and streamed snapshot responses as bounded tagSnapChunk
// frames, gob-encoded. v3 added the liveness layer: a v3 client opens the
// stream with tagHello announcing its version and heartbeat interval, the
// server replies in kind, and both ends then (a) send tagHeartbeat on an idle
// stream and (b) arm read deadlines sized to the peer's announced interval,
// so a half-open connection is detected in O(heartbeat interval) instead of
// hanging forever. tagShutdown is the graceful-drain marker: the server sends
// it after the terminal per-watch resyncs so clients can tell "server going
// away" (do not reconnect) from "network died" (reconnect and resume).
//
// v4 keeps the v3 frame vocabulary and replaces reflection-based gob with the
// hand-rolled binary codec in codec.go on the hot wire path. Negotiation
// stays first-frame based and per-direction explicit:
//
//   - A v4 client sends its gob hello announcing Version 4. A v4 server
//     replies with a gob hello carrying the negotiated version (min of the
//     two), and — when that is 4 — follows it immediately with a gob
//     tagUpgrade marker; every server→client frame after the marker is
//     binary.
//   - The client, upon decoding a hello reply with Version ≥ 4, emits its own
//     gob tagUpgrade marker and switches its send side to binary; every
//     client→server frame after that marker is binary. Frames the client sent
//     before learning the server's version (watches racing the handshake) are
//     gob, and the server keeps decoding gob until the marker arrives.
//
// Because each direction's sender embeds the switch point in its own stream,
// neither end ever guesses where the codec changes, and mixed pairs degrade
// cleanly: a v3 peer never announces 4, so no tagUpgrade is ever sent to a
// peer that would not understand it, and the connection simply stays on gob.
// A client that never sends tagHello remains v2 — no heartbeats, no read
// deadlines, no shutdown marker, gob everywhere.
const (
	tagWatch uint8 = iota + 1
	tagCancel
	tagSnapshot
	tagEventBatch
	tagProgress
	tagResync
	tagSnapChunk
	tagHello
	tagHeartbeat
	tagShutdown
	// tagUpgrade is the codec switch marker (v4): the sender's next frame on
	// this direction — and every frame after it — uses the binary codec. Only
	// ever sent to a peer that announced protocol ≥ 4 in the hello exchange.
	tagUpgrade
	// tagOverloaded (server → client, v3+) rejects one watch or snapshot
	// request with a retry-after hint: the serving stack is admission-
	// controlling under memory pressure (govern.ErrOverloaded). Unlike
	// tagResync it is not a statement about lost history — the client should
	// back off and re-request, resuming from its frontier. v2 peers never
	// announced a hello, so they fall back to a terminal resync (watch) or an
	// error chunk (snapshot) instead.
	tagOverloaded
)

// Protocol versions. protoV2 is the batched pre-liveness protocol (no hello
// exchanged); protoV3 adds hello/heartbeat/shutdown frames; protoV4 switches
// the frame payloads from gob to the hand-rolled binary codec.
const (
	protoV2 = 2
	protoV3 = 3
	protoV4 = 4
)

// helloMsg opens a v3 stream in each direction: the sender's protocol
// version and the interval at which it will emit heartbeats on an idle
// stream. The receiver sizes its read deadline from HeartbeatMillis, so the
// two ends never need to agree on one global interval.
type helloMsg struct {
	Version         uint32
	HeartbeatMillis int64
}

// shutdownMsg is the graceful-drain marker (v3 only). It follows the terminal
// per-watch resync frames; after it the server flushes and closes.
type shutdownMsg struct {
	Reason string
}

// ProtocolError reports a wire-level violation: a corrupt frame, an unknown
// tag, or a payload gob refuses to decode. It is terminal for the connection
// it occurred on — the stream position is unrecoverable after a failed
// decode — and is counted in remote_{server,client}_decode_errors_total.
type ProtocolError struct {
	Op  string // what was being decoded ("tag", "watch request", ...)
	Err error
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("remote: protocol error decoding %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying decode error.
func (e *ProtocolError) Unwrap() error { return e.Err }

type watchReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
	From core.Version
}

type cancelReq struct{ ID uint64 }

type snapshotReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
}

// eventBatchMsg carries one contiguous run of change events for one watch —
// the unit the hub's dispatch loop hands over via core.EventBatchCallback,
// preserved across the wire instead of flattened into per-event frames.
type eventBatchMsg struct {
	ID  uint64
	Evs []core.ChangeEvent
}

type progressMsg struct {
	ID uint64
	P  core.ProgressEvent
}

type resyncMsg struct {
	ID uint64
	R  core.ResyncEvent
}

// overloadedMsg rejects the watch or snapshot request with the given ID.
// RetryAfterMillis carries the governor's backoff hint so remote clients
// wait out the server's pressure instead of hammering it.
type overloadedMsg struct {
	ID               uint64
	RetryAfterMillis int64
	Reason           string
}

// snapChunk is one bounded slice of a streamed snapshot response. The client
// accumulates Entries across chunks until Last; Err (with Last=true) aborts
// the snapshot. At repeats the snapshot version on every chunk.
type snapChunk struct {
	ID      uint64
	Entries []core.Entry
	At      core.Version
	Err     string
	Last    bool
}

// evsPool recycles the event slices that carry batches from the hub's
// dispatch goroutine into a connection's outbound queue. A pooled slice is
// cleared before reuse so no event payload outlives its frame.
var evsPool = sync.Pool{
	New: func() any {
		s := make([]core.ChangeEvent, 0, 64)
		return &s
	},
}

func getEvs(n int) *[]core.ChangeEvent {
	p := evsPool.Get().(*[]core.ChangeEvent)
	if cap(*p) < n {
		*p = make([]core.ChangeEvent, 0, n)
	}
	return p
}

func putEvs(p *[]core.ChangeEvent) {
	s := (*p)[:cap(*p)]
	for i := range s {
		s[i] = core.ChangeEvent{} // release Value/Key refs held by the pool
	}
	*p = s[:0]
	evsPool.Put(p)
}

// countingWriter counts bytes that actually reach the underlying socket (it
// sits below any buffering, so the counter reflects wire traffic).
type countingWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(int64(n))
	}
	return n, err
}

// countingReader mirrors countingWriter on the receive side.
type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(int64(n))
	}
	return n, err
}
