package remote

import (
	"io"
	"sync"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// Wire protocol (v2, batched): every message is a one-byte tag followed by
// its payload, both encoded on a single gob stream per direction. Tag-first
// framing lets each side decode into a type-specific target — which is what
// makes decode-buffer reuse possible — instead of a union struct whose unused
// pointer fields gob must consider on every message.
//
// Client → server: tagWatch, tagCancel, tagSnapshot.
// Server → client: tagEventBatch, tagProgress, tagResync, tagSnapChunk.
//
// The old per-event protocol encoded (and usually wrote) one frame per change
// event; v2 carries a whole ring-drain's worth of events per watch in one
// tagEventBatch frame and streams snapshot responses as bounded tagSnapChunk
// frames ending with Last=true.
const (
	tagWatch uint8 = iota + 1
	tagCancel
	tagSnapshot
	tagEventBatch
	tagProgress
	tagResync
	tagSnapChunk
)

type watchReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
	From core.Version
}

type cancelReq struct{ ID uint64 }

type snapshotReq struct {
	ID   uint64
	Low  keyspace.Key
	High keyspace.Key
}

// eventBatchMsg carries one contiguous run of change events for one watch —
// the unit the hub's dispatch loop hands over via core.EventBatchCallback,
// preserved across the wire instead of flattened into per-event frames.
type eventBatchMsg struct {
	ID  uint64
	Evs []core.ChangeEvent
}

type progressMsg struct {
	ID uint64
	P  core.ProgressEvent
}

type resyncMsg struct {
	ID uint64
	R  core.ResyncEvent
}

// snapChunk is one bounded slice of a streamed snapshot response. The client
// accumulates Entries across chunks until Last; Err (with Last=true) aborts
// the snapshot. At repeats the snapshot version on every chunk.
type snapChunk struct {
	ID      uint64
	Entries []core.Entry
	At      core.Version
	Err     string
	Last    bool
}

// evsPool recycles the event slices that carry batches from the hub's
// dispatch goroutine into a connection's outbound queue. A pooled slice is
// cleared before reuse so no event payload outlives its frame.
var evsPool = sync.Pool{
	New: func() any {
		s := make([]core.ChangeEvent, 0, 64)
		return &s
	},
}

func getEvs(n int) *[]core.ChangeEvent {
	p := evsPool.Get().(*[]core.ChangeEvent)
	if cap(*p) < n {
		*p = make([]core.ChangeEvent, 0, n)
	}
	return p
}

func putEvs(p *[]core.ChangeEvent) {
	s := (*p)[:cap(*p)]
	for i := range s {
		s[i] = core.ChangeEvent{} // release Value/Key refs held by the pool
	}
	*p = s[:0]
	evsPool.Put(p)
}

// countingWriter counts bytes that actually reach the underlying socket (it
// sits below any buffering, so the counter reflects wire traffic).
type countingWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(int64(n))
	}
	return n, err
}

// countingReader mirrors countingWriter on the receive side.
type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(int64(n))
	}
	return n, err
}
